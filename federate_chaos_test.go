// Per-source fault isolation: taking one federation backend's data
// services hard-down (every ds/billing/* fault point at rate 1.0) must
// leave the other backends untouched — their queries stay error-free and
// byte-identical to the fault-free run — while the degraded backend's
// circuit breaker opens without tripping anyone else's. Runs under -race
// via the chaos target.
package aqualogic

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/demo"
	"repro/internal/resilient"
	"repro/internal/xdm"
)

func TestChaosFederatedSourceIsolation(t *testing.T) {
	sz := demo.FederatedSizes{Accounts: 12, Invoices: 24, Orders: 36, Shards: 3}
	// Partial mode: the degraded billing shard of ORDERS is skipped rather
	// than failing the whole scatter (the mediator's partial-results mode).
	p := federatedPlatform(t, sz, true)
	inj := p.EnableFaults(FaultConfig{Seed: 42, Rate: 0, Kinds: []FaultKind{FaultPermanent}})
	p.EnableResilience(ResilienceConfig{
		MaxRetries:      1,
		BaseBackoff:     100 * time.Microsecond,
		BreakerCooldown: time.Hour, // stay open for the whole test
	})

	healthy := []string{
		"SELECT ACCOUNTID, NAME FROM ACCOUNTS ORDER BY ACCOUNTID",
		"SELECT REGION, COUNTRY FROM REGIONS ORDER BY REGION",
		"SELECT A.REGION, R.COUNTRY FROM ACCOUNTS A, REGIONS R WHERE A.REGION = R.REGION ORDER BY A.ACCOUNTID",
	}
	run := func(q string) (string, error) {
		cq, err := p.Compile(q, ModeXML)
		if err != nil {
			return "", err
		}
		seq, err := p.Engine.EvalPlanWithTrace(context.Background(), cq.Plan, nil, nil)
		if err != nil {
			return "", err
		}
		return xdm.MarshalSequence(seq), nil
	}

	// Fault-free baselines.
	baseline := map[string]string{}
	for _, q := range healthy {
		got, err := run(q)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		baseline[q] = got
	}

	// Take every billing data service hard-down.
	inj.SetSiteRate("ds/billing/", 1.0)

	// Drive the billing backend until its breaker opens (threshold is 5
	// consecutive faults; permanent faults are not retried).
	var billingErr error
	for i := 0; i < 12; i++ {
		if _, billingErr = run("SELECT INVOICEID FROM INVOICES"); billingErr == nil {
			t.Fatalf("degraded billing query must fail")
		}
	}
	var qe *QueryError
	if !errors.As(billingErr, &qe) {
		t.Fatalf("billing failure must be a typed QueryError, got %T: %v", billingErr, billingErr)
	}

	// The healthy backends answer byte-identically throughout.
	for i := 0; i < 8; i++ {
		for _, q := range healthy {
			got, err := run(q)
			if err != nil {
				t.Fatalf("healthy %q failed while billing degraded: %v", q, err)
			}
			if got != baseline[q] {
				t.Fatalf("healthy %q diverged while billing degraded\nnow:      %s\nbaseline: %s", q, got, baseline[q])
			}
		}
	}

	// The partitioned scan still answers in partial mode (the billing
	// shard is skipped, the central and files shards still stream).
	if _, err := run("SELECT ORDERID, ITEM FROM ORDERS"); err != nil {
		t.Fatalf("partial-mode scatter must tolerate the degraded shard: %v", err)
	}

	// Exactly the billing breakers opened.
	health := p.FederationStats()
	if len(health) != 3 {
		t.Fatalf("FederationStats reported %d sources", len(health))
	}
	var billingOpen bool
	for _, h := range health {
		for svc, state := range h.Breakers {
			if strings.EqualFold(h.Name, demo.SourceBilling) {
				if state == resilient.BreakerOpen {
					billingOpen = true
				}
				continue
			}
			if state != resilient.BreakerClosed {
				t.Fatalf("breaker %s on healthy source %s is %v", svc, h.Name, state)
			}
		}
	}
	if !billingOpen {
		t.Fatalf("billing breaker never opened: %+v", health)
	}
}
