package aqualogic

import (
	"database/sql"
	"strings"
	"testing"
	"time"

	"repro/internal/xdm"
)

func TestDemoQuery(t *testing.T) {
	p := Demo()
	rows, err := p.Query("SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID < ? ORDER BY CUSTOMERID", 1003)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("rows = %d", rows.Len())
	}
	rows.Next()
	id, ok, err := rows.Int64(0)
	if err != nil || !ok || id != 1000 {
		t.Fatalf("id = %d %v %v", id, ok, err)
	}
}

func TestQueryModeEquivalence(t *testing.T) {
	p := Demo()
	q := "SELECT CITY, COUNT(*) AS N FROM CUSTOMERS GROUP BY CITY ORDER BY 2 DESC, CITY"
	a, err := p.QueryMode(ModeText, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.QueryMode(ModeXML, q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("text %d vs xml %d rows", a.Len(), b.Len())
	}
	for a.Next() && b.Next() {
		s1, ok1, _ := a.String(0)
		s2, ok2, _ := b.String(0)
		if s1 != s2 || ok1 != ok2 {
			t.Fatalf("city %q/%v vs %q/%v", s1, ok1, s2, ok2)
		}
	}
}

func TestParamCountMismatch(t *testing.T) {
	p := Demo()
	if _, err := p.Query("SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID = ?"); err == nil {
		t.Fatal("missing parameter should error")
	}
	if _, err := p.Query("SELECT CUSTOMERID FROM CUSTOMERS", 1); err == nil {
		t.Fatal("extra parameter should error")
	}
}

func TestTranslateText(t *testing.T) {
	p := Demo()
	xq, err := p.TranslateText("SELECT * FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xq, "for $var1FR1 in ns0:CUSTOMERS()") {
		t.Fatalf("xquery:\n%s", xq)
	}
}

func TestRegisterDriverRoundTrip(t *testing.T) {
	p := Demo()
	p.RegisterDriver("facade-test")
	db, err := sql.Open("aqualogic", "facade-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM CUSTOMERS").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("count = %d", n)
	}
}

func TestMetadataLatencyAndCache(t *testing.T) {
	p := Demo()
	p.MetadataLatency = time.Millisecond
	if _, err := p.Query("SELECT CUSTOMERID FROM CUSTOMERS"); err != nil {
		t.Fatal(err)
	}
	// A distinct statement over the same table recompiles (compile-cache
	// miss) but finds the table metadata already cached.
	if _, err := p.Query("SELECT CUSTOMERNAME FROM CUSTOMERS"); err != nil {
		t.Fatal(err)
	}
	stats := p.MetadataStats()
	if stats.Misses != 1 || stats.Hits < 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Repeating a statement verbatim is a compile-cache hit: no translation,
	// no catalog traffic at all.
	if _, err := p.Query("SELECT CUSTOMERID FROM CUSTOMERS"); err != nil {
		t.Fatal(err)
	}
	cs := p.CompileStats()
	if cs.Hits < 1 || cs.Misses != 2 {
		t.Fatalf("compile stats = %+v", cs)
	}
	if after := p.MetadataStats(); after.Misses != stats.Misses {
		t.Fatalf("compile-cache hit still fetched metadata: %+v", after)
	}
}

func TestCustomPlatform(t *testing.T) {
	app := &Application{Name: "MyApp"}
	app.AddDSFile(&DSFile{
		Path: "Sales",
		Name: "REGIONS",
		Functions: []*Function{
			NewRelationalImport("Sales", "REGIONS", []Column{
				{Name: "REGIONID", Type: SQLInteger},
				{Name: "NAME", Type: SQLVarchar, Nullable: true},
			}),
		},
	})
	engine := NewEngine()
	RegisterRows(engine, "ld:Sales/REGIONS", "REGIONS", []*Element{
		NewRow("REGIONS", "REGIONID", "1", "NAME", "West"),
		NewRow("REGIONS", "REGIONID", "2", "NAME", "East"),
		NewRow("REGIONS", "REGIONID", "3", "NAME", ""), // NULL name
	})
	p := New(app, engine)
	rows, err := p.Query("SELECT NAME FROM REGIONS ORDER BY REGIONID")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for rows.Next() {
		s, ok, _ := rows.String(0)
		if !ok {
			s = "NULL"
		}
		got = append(got, s)
	}
	if strings.Join(got, ",") != "West,East,NULL" {
		t.Fatalf("got %v", got)
	}
}

func TestToAtomic(t *testing.T) {
	cases := []any{int(1), int32(2), int64(3), float32(1.5), float64(2.5),
		true, "x", []byte("y"), time.Now(), xdm.Integer(9)}
	for _, c := range cases {
		if _, err := ToAtomic(c); err != nil {
			t.Fatalf("ToAtomic(%T): %v", c, err)
		}
	}
	if _, err := ToAtomic(struct{}{}); err == nil {
		t.Fatal("unsupported type should error")
	}
}

func TestNewRowSkipsEmptyValues(t *testing.T) {
	row := NewRow("R", "A", "1", "B", "")
	if row.FirstChildElement("A") == nil {
		t.Fatal("A missing")
	}
	if row.FirstChildElement("B") != nil {
		t.Fatal("empty value should be skipped (NULL)")
	}
}

// openSQL opens a database/sql handle for a registered server name.
func openSQL(t *testing.T, name string) *sql.DB {
	t.Helper()
	db, err := sql.Open("aqualogic", name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}
