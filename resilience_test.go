// Regression net for the overload-resilience surfaces: the error-kind
// taxonomy a remote caller sees (server shed vs its own cancellation vs
// transport fault), execute/fetch idempotency replay at the wire level,
// fetch against a restarted server, and hedged-fetch hygiene. These pin
// the contracts the retry layer and the P12 experiment depend on.
package aqualogic

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aqerr"
	"repro/internal/remoteclient"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestShedVsCancelTaxonomyAcrossWire pins the three-way error taxonomy a
// remote caller must be able to branch on:
//   - server shed   → KindUnavailable, carrying a Retry-After hint
//   - caller cancel → KindTimeout, errors.Is(context.Canceled)
//
// and that the two never blur: a shed is not Is(Canceled), a cancel
// carries no Retry-After.
func TestShedVsCancelTaxonomyAcrossWire(t *testing.T) {
	_, _, c := newLoopback(t, server.Config{
		MaxConcurrentQueries: 1,
		AdmissionWait:        time.Millisecond,
		SessionIdleTimeout:   time.Minute,
	})
	ctx := context.Background()

	holder, err := c.QueryStreamMode(ctx, ModeText, "SELECT CUSTOMERID FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()

	// Shed arm: admission rejects, typed, with backoff guidance.
	_, err = c.QueryStreamMode(ctx, ModeText, "SELECT CITY FROM CUSTOMERS")
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindUnavailable {
		t.Fatalf("shed: %v, want unavailable QueryError", err)
	}
	if aqerr.RetryAfterHint(err) <= 0 {
		t.Fatalf("shed lost its Retry-After hint across the wire: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("shed misclassified as caller cancellation: %v", err)
	}

	// Cancel arm: the caller's own context, not server capacity.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	_, err = c.QueryStreamMode(cctx, ModeText, "SELECT CITY FROM CUSTOMERS")
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindTimeout {
		t.Fatalf("cancel: %v, want timeout-kind QueryError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel: %v, want errors.Is(context.Canceled)", err)
	}
	if aqerr.RetryAfterHint(err) > 0 {
		t.Fatalf("cancellation acquired a Retry-After hint: %v", err)
	}
}

// TestExecuteReplayIdempotency pins exec-key replay at the wire level: a
// retried execute re-presenting the same idempotency key gets the same
// cursor back instead of evaluating twice.
func TestExecuteReplayIdempotency(t *testing.T) {
	_, srv, _ := newLoopback(t, server.Config{FetchRows: 4, SessionIdleTimeout: time.Minute})
	h := srv.Handler()

	var hs wire.HandshakeResponse
	if we := postWire(t, h, wire.PathHandshake, wire.HandshakeRequest{}, &hs); we != nil {
		t.Fatalf("handshake: %v", we)
	}
	req := wire.ExecuteRequest{
		Session: hs.Session,
		SQL:     "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID < 1003",
		ExecKey: "retry-1",
	}
	var first, second wire.ExecuteResponse
	if we := postWire(t, h, wire.PathExecute, req, &first); we != nil {
		t.Fatalf("execute: %v", we)
	}
	if we := postWire(t, h, wire.PathExecute, req, &second); we != nil {
		t.Fatalf("replayed execute: %v", we)
	}
	if second.Cursor != first.Cursor {
		t.Fatalf("replay opened a new cursor: %d vs %d", second.Cursor, first.Cursor)
	}
	st := srv.Stats()
	if st.ExecReplays != 1 {
		t.Fatalf("ExecReplays = %d, want 1", st.ExecReplays)
	}
	if st.CursorsOpened != 1 {
		t.Fatalf("replayed execute evaluated twice: %d cursors opened", st.CursorsOpened)
	}

	// A different key is a different execution.
	req.ExecKey = "retry-2"
	var third wire.ExecuteResponse
	if we := postWire(t, h, wire.PathExecute, req, &third); we != nil {
		t.Fatalf("fresh execute: %v", we)
	}
	if third.Cursor == first.Cursor {
		t.Fatal("distinct exec keys shared a cursor")
	}
}

// TestFetchSeqReplay pins sequenced-fetch semantics: re-presenting the
// current sequence number replays the identical chunk (the hedged/retry
// path), the successor advances, and anything else is a typed permanent
// out-of-order error rather than silent data corruption.
func TestFetchSeqReplay(t *testing.T) {
	_, srv, _ := newLoopback(t, server.Config{FetchRows: 2, SessionIdleTimeout: time.Minute})
	h := srv.Handler()

	var hs wire.HandshakeResponse
	if we := postWire(t, h, wire.PathHandshake, wire.HandshakeRequest{}, &hs); we != nil {
		t.Fatalf("handshake: %v", we)
	}
	var ex wire.ExecuteResponse
	if we := postWire(t, h, wire.PathExecute, wire.ExecuteRequest{
		Session: hs.Session, SQL: "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID < 1006",
	}, &ex); we != nil {
		t.Fatalf("execute: %v", we)
	}
	fetch := func(seq int64) wire.FetchResponse {
		var fr wire.FetchResponse
		if we := postWire(t, h, wire.PathFetch, wire.FetchRequest{
			Session: hs.Session, Cursor: ex.Cursor, Seq: seq,
		}, &fr); we != nil {
			t.Fatalf("fetch seq %d: %v", seq, we)
		}
		return fr
	}

	one := fetch(1)
	if one.Error != nil || len(one.Rows) != 2 {
		t.Fatalf("first chunk: %+v", one)
	}
	replay := fetch(1)
	if len(replay.Rows) != len(one.Rows) || replay.EOF != one.EOF {
		t.Fatalf("seq-1 replay diverged: %+v vs %+v", replay, one)
	}
	if rb, ob := mustJSON(t, replay.Rows), mustJSON(t, one.Rows); rb != ob {
		t.Fatalf("seq-1 replay rows diverged: %s vs %s", rb, ob)
	}
	if st := srv.Stats(); st.FetchReplays != 1 {
		t.Fatalf("FetchReplays = %d, want 1", st.FetchReplays)
	}

	// Skipping ahead is a hard protocol error, not quiet row loss.
	var oo wire.FetchResponse
	if we := postWire(t, h, wire.PathFetch, wire.FetchRequest{
		Session: hs.Session, Cursor: ex.Cursor, Seq: 3,
	}, &oo); we == nil {
		t.Fatal("out-of-order fetch succeeded")
	} else if aqerr.ParseKind(we.Kind) != aqerr.KindPermanent {
		t.Fatalf("out-of-order fetch: kind %s, want permanent", we.Kind)
	}

	// The successor still advances normally after the rejected skip.
	two := fetch(2)
	if two.Error != nil || len(two.Rows) != 2 {
		t.Fatalf("second chunk after replay: %+v", two)
	}
	if mustJSON(t, two.Rows) == mustJSON(t, one.Rows) {
		t.Fatal("advance re-delivered the first chunk")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFetchAgainstRestartedServer pins the restart story: a client whose
// server went away mid-stream gets a prompt typed unavailable (the new
// process does not know the session), never a hang or a silent empty
// result — and a fresh dial against the restarted server works.
func TestFetchAgainstRestartedServer(t *testing.T) {
	p := Demo()
	srv1 := server.New(p, server.Config{FetchRows: 2, SessionIdleTimeout: time.Minute})

	// One stable URL whose backing server can be swapped: a restart that
	// keeps the address but loses all session state.
	var current atomic.Pointer[http.Handler]
	h1 := srv1.Handler()
	current.Store(&h1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*current.Load()).ServeHTTP(w, r)
	}))
	defer ts.Close()

	c, err := remoteclient.DialOptions(ts.URL, remoteclient.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.QueryStreamMode(context.Background(), ModeText, "SELECT CUSTOMERID FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}

	// Restart: new server instance, same address, sessions gone.
	srv2 := server.New(p, server.Config{FetchRows: 2, SessionIdleTimeout: time.Minute})
	defer srv2.Close()
	h2 := srv2.Handler()
	current.Store(&h2)
	srv1.Close()

	start := time.Now()
	for rows.Next() {
	}
	err = rows.Err()
	elapsed := time.Since(start)
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindUnavailable {
		t.Fatalf("fetch after restart: %v, want unavailable QueryError", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("restart detection took %v, want prompt", elapsed)
	}
	rows.Close()

	// Retriable from scratch: a new handshake against the same URL serves.
	c2, err := remoteclient.Dial(ts.URL)
	if err != nil {
		t.Fatalf("redial after restart: %v", err)
	}
	defer c2.Close()
	fresh, err := c2.QueryStreamMode(context.Background(), ModeText, "SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID = 1005")
	if err != nil {
		t.Fatalf("query after restart: %v", err)
	}
	if out, err := drainClose(fresh); err != nil || out == "" {
		t.Fatalf("restarted server rows: %q err=%v", out, err)
	}
}

// TestHedgedFetchNoLeak pins hedging hygiene: with a deliberately slow
// fetch path and an aggressive hedge delay, streams still deliver exact
// rows (the server replays the same sequence number identically), hedges
// actually fire, and the losing requests never leak goroutines.
func TestHedgedFetchNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := Demo()
	srv := server.New(p, server.Config{FetchRows: 2, SessionIdleTimeout: time.Minute})
	defer srv.Close()

	inner := srv.Handler()
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == wire.PathFetch {
			time.Sleep(8 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	})

	hedgesBefore := Stats().FetchHedges
	c, err := remoteclient.LoopbackOptions(slow, remoteclient.Options{
		HedgeDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ""
	for i := 0; i < 5; i++ {
		rows, err := c.QueryStreamMode(context.Background(), ModeText,
			"SELECT CUSTOMERID, CITY FROM CUSTOMERS WHERE CUSTOMERID < 1008")
		if err != nil {
			t.Fatal(err)
		}
		got, err := drainClose(rows)
		if err != nil {
			t.Fatalf("hedged stream: %v", err)
		}
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("hedged stream diverged between runs\ngot:  %s\nwant: %s", got, want)
		}
	}
	if Stats().FetchHedges == hedgesBefore {
		t.Fatal("hedge never fired despite slow fetches")
	}
	_ = c.Close()
	srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after hedged streams: baseline %d, now %d",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
