GO ?= go
FUZZTIME ?= 10s

.PHONY: ci vet build test race fuzz bench clean

ci: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz smoke: run each native fuzz target briefly. Corpus crashers found
# by longer runs land in testdata/fuzz/ and replay as regular tests.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseSelect -fuzztime=$(FUZZTIME) ./internal/sqlparser/
	$(GO) test -run='^$$' -fuzz=FuzzTranslate -fuzztime=$(FUZZTIME) ./internal/translator/

bench:
	$(GO) run ./cmd/benchharness -stagejson BENCH_stages.json

clean:
	$(GO) clean -testcache
