GO ?= go
FUZZTIME ?= 10s

.PHONY: ci vet build test race chaos soak federate-smoke fuzz bench bench-smoke serve-smoke clean

ci: vet build race chaos soak federate-smoke serve-smoke bench-smoke fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos soak: the fault-injection net at several fault rates under the
# race detector — zero escaped panics, typed errors only, retried
# successes byte-identical to the fault-free run.
chaos:
	$(GO) test -race -count=1 -run='TestChaos' .

# Network chaos soak: the netchaos TCP proxy unit suite plus the full
# remote stack (resilient client over real HTTP/TCP) under injected
# connection resets, slow links, black holes, and mid-response
# truncation — every query byte-identical to the oracle or a typed
# error, zero leaked goroutines, all under the race detector. Also
# gates the overload-resilience harness and the replay/hedging
# regression net.
soak:
	$(GO) test -race -count=1 ./internal/netchaos/
	$(GO) test -race -count=1 -run='TestNetChaosDifferential|TestShedVsCancel|TestExecuteReplay|TestFetchSeqReplay|TestFetchAgainstRestarted|TestHedgedFetch' .
	$(GO) test -race -count=1 -run='TestOverloadSweepSmall' ./internal/bench/

# Federation smoke: the multi-source mediation stack end-to-end — the
# federated catalog, shard-pinned pushdown, and the per-source stats
# surface — against the single-source oracle.
federate-smoke:
	$(GO) test -race -count=1 -run='TestFederated' .

# Fuzz smoke: run each native fuzz target briefly. Corpus crashers found
# by longer runs land in testdata/fuzz/ and replay as regular tests.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseSelect -fuzztime=$(FUZZTIME) ./internal/sqlparser/
	$(GO) test -run='^$$' -fuzz=FuzzPathFrontend -fuzztime=$(FUZZTIME) ./internal/pathfront/
	$(GO) test -run='^$$' -fuzz=FuzzTranslate -fuzztime=$(FUZZTIME) ./internal/translator/
	$(GO) test -run='^$$' -fuzz=FuzzFaultedEval -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzCompiledDifferential -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzStreamDifferential -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzServeDifferential -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzParallelDifferential -fuzztime=$(FUZZTIME) ./internal/xqeval/
	$(GO) test -run='^$$' -fuzz=FuzzFederatedDifferential -fuzztime=$(FUZZTIME) .

bench:
	$(GO) run ./cmd/benchharness -stagejson BENCH_stages.json -evaljson BENCH_eval.json -faultjson BENCH_faults.json -compilejson BENCH_compile.json -streamjson BENCH_stream.json -servejson BENCH_serve.json -overloadjson BENCH_overload.json -federatejson BENCH_federate.json

# Serve smoke: the network front end end-to-end — loopback and real-TCP
# conformance against the in-process oracle, the wire session-state
# machine, and a clean shutdown with no leaked goroutines.
serve-smoke:
	$(GO) test -count=1 -run='TestServe|TestRowsErr' .

# Benchmark smoke: one iteration of every benchmark, so CI catches
# benchmarks that no longer compile or fail at runtime.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

clean:
	$(GO) clean -testcache
