package aqualogic

import (
	"fmt"
	"sync"
	"testing"
)

// TestPlatformConcurrentUse exercises the facade from many goroutines:
// Translate, Query, Explain, MetadataStats and DefineView all share the
// platform's lazily-built metadata cache, so this pins the guarded
// initialization path under -race.
func TestPlatformConcurrentUse(t *testing.T) {
	p := Demo()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := p.Translate("SELECT CUSTOMERID FROM CUSTOMERS", ModeXML); err != nil {
						t.Errorf("translate: %v", err)
						return
					}
				case 1:
					rows, err := p.Query("SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID < 1010")
					if err != nil {
						t.Errorf("query: %v", err)
						return
					}
					if rows.Len() == 0 {
						t.Error("query returned no rows")
						return
					}
				case 2:
					if _, tr, err := p.Explain("SELECT COUNT(*) FROM PAYMENTS", ModeXML); err != nil || tr == nil {
						t.Errorf("explain: %v", err)
						return
					}
				case 3:
					_ = p.MetadataStats()
				}
			}
		}(g)
	}
	wg.Wait()

	stats := p.MetadataStats()
	if stats.Hits+stats.Misses == 0 {
		t.Fatal("no cache traffic recorded")
	}
}

// TestPlatformConcurrentViews races DefineView (which invalidates the
// metadata cache) against queries that repopulate it.
func TestPlatformConcurrentViews(t *testing.T) {
	p := Demo()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("V_%d_%d", g, i)
				if err := p.DefineView("Views", name, "SELECT CUSTOMERID, CITY FROM CUSTOMERS"); err != nil {
					t.Errorf("define view: %v", err)
					return
				}
				rows, err := p.Query("SELECT CITY FROM " + name + " WHERE CUSTOMERID = 1000")
				if err != nil {
					t.Errorf("query view: %v", err)
					return
				}
				if rows.Len() != 1 {
					t.Errorf("view %s: %d rows", name, rows.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
