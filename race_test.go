package aqualogic

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/remoteclient"
	"repro/internal/server"
)

// TestPlatformConcurrentUse exercises the facade from many goroutines:
// Translate, Query, Explain, MetadataStats and DefineView all share the
// platform's lazily-built metadata cache, so this pins the guarded
// initialization path under -race.
func TestPlatformConcurrentUse(t *testing.T) {
	p := Demo()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := p.Translate("SELECT CUSTOMERID FROM CUSTOMERS", ModeXML); err != nil {
						t.Errorf("translate: %v", err)
						return
					}
				case 1:
					rows, err := p.Query("SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID < 1010")
					if err != nil {
						t.Errorf("query: %v", err)
						return
					}
					if rows.Len() == 0 {
						t.Error("query returned no rows")
						return
					}
				case 2:
					if _, tr, err := p.Explain("SELECT COUNT(*) FROM PAYMENTS", ModeXML); err != nil || tr == nil {
						t.Errorf("explain: %v", err)
						return
					}
				case 3:
					_ = p.MetadataStats()
				}
			}
		}(g)
	}
	wg.Wait()

	stats := p.MetadataStats()
	if stats.Hits+stats.Misses == 0 {
		t.Fatal("no cache traffic recorded")
	}
}

// TestPlatformConcurrentViews races DefineView (which invalidates the
// metadata cache) against queries that repopulate it.
func TestPlatformConcurrentViews(t *testing.T) {
	p := Demo()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("V_%d_%d", g, i)
				if err := p.DefineView("Views", name, "SELECT CUSTOMERID, CITY FROM CUSTOMERS"); err != nil {
					t.Errorf("define view: %v", err)
					return
				}
				rows, err := p.Query("SELECT CITY FROM " + name + " WHERE CUSTOMERID = 1000")
				if err != nil {
					t.Errorf("query view: %v", err)
					return
				}
				if rows.Len() != 1 {
					t.Errorf("view %s: %d rows", name, rows.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServeConcurrentSessions hammers the network front end from many
// loopback clients at once — prepare/execute/fetch/close interleaved with
// mid-stream disconnects (a cursor abandoned after one row and closed out
// of band) and metadata browsing — under -race. Afterward the server must
// hold no open cursors, no in-flight admissions, and no extra goroutines:
// the leak contract for a server facing thousands of flaky clients.
func TestServeConcurrentSessions(t *testing.T) {
	p := Demo()
	srv := server.New(p, server.Config{
		FetchRows:            3,
		MaxConcurrentQueries: 8,
		AdmissionWait:        5 * time.Second, // queue briefly instead of shedding
		SessionIdleTimeout:   time.Minute,
	})
	h := srv.Handler()
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := remoteclient.Loopback(h)
			if err != nil {
				t.Errorf("worker %d: handshake: %v", g, err)
				return
			}
			st, err := c.Prepare(context.Background(), "SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID = ?", ModeText)
			if err != nil {
				t.Errorf("worker %d: prepare: %v", g, err)
				return
			}
			for i := 0; i < 8; i++ {
				switch (g + i) % 3 {
				case 0: // full drain of a prepared execution
					rows, err := st.Execute(context.Background(), 1000+(g+i)%50)
					if err != nil {
						t.Errorf("worker %d: execute: %v", g, err)
						return
					}
					if _, err := marshalStreamed(rows); err != nil {
						t.Errorf("worker %d: drain: %v", g, err)
						return
					}
					rows.Close()
				case 1: // mid-stream disconnect: one row, then walk away
					rows, err := c.QueryStreamMode(context.Background(), ModeXML,
						"SELECT C.CUSTOMERID FROM CUSTOMERS C, PAYMENTS P")
					if err != nil {
						t.Errorf("worker %d: big execute: %v", g, err)
						return
					}
					if !rows.Next() {
						t.Errorf("worker %d: no first row: %v", g, rows.Err())
						return
					}
					rows.Close() // cancels the server-side evaluation
				case 2: // metadata browse
					if _, err := c.Lookup(catalog.TableRef{Table: "CUSTOMERS"}); err != nil {
						t.Errorf("worker %d: lookup: %v", g, err)
						return
					}
				}
			}
			// A third of the workers abandon their session without closing
			// it (their cursors are already closed; the session itself is
			// cheap and reaped later).
			if g%3 != 0 {
				if err := c.Close(); err != nil {
					t.Errorf("worker %d: close: %v", g, err)
				}
			}
		}(g)
	}
	wg.Wait()

	if st := srv.Stats(); st.CursorsOpen != 0 || st.QueriesInFlight != 0 {
		t.Fatalf("server holds state after all clients finished: %+v", st)
	}
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
