// Differential conformance net for the network front end: the wire path —
// aqlserve's server over the facade, spoken to through the remote client —
// must be observationally identical to the in-process platform. Every
// statement in the compiled corpus, in both result modes, must deliver
// byte-identical rows through a loopback server, and every failing
// statement must surface the same typed-error kind remotely as locally.
// The session-state machine (reaping, double close, fetch past EOF,
// admission rejection, prepared statements across CREATE VIEW) is pinned
// at the wire level, request by request.
package aqualogic

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/faultnet"
	"repro/internal/remoteclient"
	"repro/internal/server"
	"repro/internal/wire"
)

// The facade must keep satisfying the server's backend surface.
var _ server.Backend = (*Platform)(nil)

// newLoopback builds a demo platform, a server over it, and a loopback
// client — the standard harness for wire conformance tests.
func newLoopback(t *testing.T, cfg server.Config) (*Platform, *server.Server, *remoteclient.Client) {
	t.Helper()
	p := Demo()
	srv := server.New(p, cfg)
	c, err := remoteclient.Loopback(srv.Handler())
	if err != nil {
		srv.Close()
		t.Fatalf("loopback handshake: %v", err)
	}
	t.Cleanup(func() {
		_ = c.Close()
		srv.Close()
	})
	return p, srv, c
}

// errKindName classifies an error the way both sides of the wire must
// agree on: the QueryError kind, or "unknown" for untyped errors (which
// travel as kind "unknown" and come back as KindUnknown QueryErrors).
func errKindName(err error) string {
	var qe *aqerr.QueryError
	if errors.As(err, &qe) {
		return qe.Kind.String()
	}
	return aqerr.KindUnknown.String()
}

// drainClose marshals a streaming result and releases its cursor.
func drainClose(r *Rows) (string, error) {
	s, err := marshalStreamed(r)
	r.Close()
	return s, err
}

// TestServedMatchesInProcess is the differential conformance net: the
// full corpus, both result modes, served over the wire (with a small
// fetch chunk so every statement crosses multiple fetches) against the
// in-process platform. Rows must match byte for byte; failing statements
// must fail with the same typed-error kind on both paths.
func TestServedMatchesInProcess(t *testing.T) {
	p, _, c := newLoopback(t, server.Config{FetchRows: 3, SessionIdleTimeout: time.Minute})
	for _, mode := range []ResultMode{ModeXML, ModeText} {
		for _, sql := range compiledCorpus() {
			args := chaosArgs(strings.Count(sql, "?"))
			local, err := p.QueryMode(mode, sql, args...)
			if err != nil {
				t.Fatalf("mode %v: %q: in-process: %v", mode, sql, err)
			}
			want := marshalRows(local)
			remote, err := c.QueryStreamMode(context.Background(), mode, sql, args...)
			if err != nil {
				t.Fatalf("mode %v: %q: served: %v", mode, sql, err)
			}
			got, err := drainClose(remote)
			if err != nil {
				t.Fatalf("mode %v: %q: served iteration: %v", mode, sql, err)
			}
			if got != want {
				t.Fatalf("mode %v: %q: served rows diverged from in-process\ngot:  %s\nwant: %s",
					mode, sql, got, want)
			}
		}
	}

	// Failing statements: the typed-error kind must survive the wire.
	failing := []string{
		"SELECT NOPE FROM NO_SUCH_TABLE",
		"SELECT FROM WHERE",
		"SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID = ? AND CITY = ? AND STATUS = ?",
		"SELECT CUSTOMERID FROM",
	}
	for _, sql := range failing {
		_, lerr := p.QueryMode(ModeText, sql)
		_, rerr := c.QueryStreamMode(context.Background(), ModeText, sql)
		if lerr == nil || rerr == nil {
			t.Fatalf("%q: expected both paths to fail (local=%v remote=%v)", sql, lerr, rerr)
		}
		if lk, rk := errKindName(lerr), errKindName(rerr); lk != rk {
			t.Fatalf("%q: error kind diverged: in-process %s, served %s (%v vs %v)", sql, lk, rk, lerr, rerr)
		}
	}
}

// FuzzServeDifferential extends the conformance net to arbitrary accepted
// SQL: whatever the statement, a doubly-successful run must produce
// byte-identical rows served and in-process.
func FuzzServeDifferential(f *testing.F) {
	for _, s := range compiledCorpus() {
		f.Add(s)
	}
	p := Demo()
	srv := server.New(p, server.Config{FetchRows: 5, SessionIdleTimeout: time.Hour})
	defer srv.Close()
	c, err := remoteclient.Loopback(srv.Handler())
	if err != nil {
		f.Fatalf("loopback handshake: %v", err)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		for _, mode := range []ResultMode{ModeXML, ModeText} {
			cq, err := p.Compile(sql, mode)
			if err != nil || cq.Res.ParamCount > 2 {
				return
			}
			if strings.Contains(cq.XQuery(), "fn:current-") {
				return // nondeterministic between the two evaluations
			}
			args := chaosArgs(cq.Res.ParamCount)
			local, lerr := p.QueryMode(mode, sql, args...)
			var want string
			if lerr == nil {
				want = marshalRows(local)
			}
			remote, rerr := c.QueryStreamMode(context.Background(), mode, sql, args...)
			var got string
			if rerr == nil {
				got, rerr = drainClose(remote)
			}
			if lerr != nil || rerr != nil {
				// Dynamic error timing is not part of the contract; value
				// divergence on double success is the bug.
				return
			}
			if got != want {
				t.Fatalf("mode %v: %q: served diverged from in-process\ngot:  %s\nwant: %s",
					mode, sql, got, want)
			}
		}
	})
}

// postWire performs one raw wire exchange against a handler — the
// request-by-request view the session-lifecycle tests need. A non-OK
// response returns the decoded wire error.
func postWire(t *testing.T, h http.Handler, path string, in, out any) *wire.Error {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("%s: encode: %v", path, err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		var er wire.ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == nil {
			t.Fatalf("%s: HTTP %d with undecodable error body %q", path, rec.Code, rec.Body.String())
		}
		return er.Error
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: decode response: %v", path, err)
		}
	}
	return nil
}

// TestServeSessionLifecycle pins the session-state machine at the wire
// level: fetch past EOF re-reports EOF, closing a cursor twice is a safe
// no-op, closing a session twice is idempotent, and using a closed
// session is a typed unavailable error.
func TestServeSessionLifecycle(t *testing.T) {
	_, srv, _ := newLoopback(t, server.Config{FetchRows: 4, SessionIdleTimeout: time.Minute})
	h := srv.Handler()

	var hs wire.HandshakeResponse
	if we := postWire(t, h, wire.PathHandshake, wire.HandshakeRequest{}, &hs); we != nil {
		t.Fatalf("handshake: %v", we)
	}

	var ex wire.ExecuteResponse
	if we := postWire(t, h, wire.PathExecute, wire.ExecuteRequest{
		Session: hs.Session, SQL: "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID < 1003",
	}, &ex); we != nil {
		t.Fatalf("execute: %v", we)
	}

	var rows int
	for {
		var fr wire.FetchResponse
		if we := postWire(t, h, wire.PathFetch, wire.FetchRequest{Session: hs.Session, Cursor: ex.Cursor}, &fr); we != nil {
			t.Fatalf("fetch: %v", we)
		}
		if fr.Error != nil {
			t.Fatalf("fetch error: %v", fr.Error)
		}
		rows += len(fr.Rows)
		if fr.EOF {
			break
		}
	}
	if rows != 3 {
		t.Fatalf("fetched %d rows, want 3", rows)
	}

	// Fetch past EOF: EOF again, not an error, no rows.
	var past wire.FetchResponse
	if we := postWire(t, h, wire.PathFetch, wire.FetchRequest{Session: hs.Session, Cursor: ex.Cursor}, &past); we != nil {
		t.Fatalf("fetch past EOF: %v", we)
	}
	if !past.EOF || past.Error != nil || len(past.Rows) != 0 {
		t.Fatalf("fetch past EOF: got %+v, want bare EOF", past)
	}

	// Double close-cursor: first close reports a live cursor, the second
	// is a successful no-op.
	var cc wire.CloseCursorResponse
	if we := postWire(t, h, wire.PathCloseCursor, wire.CloseCursorRequest{Session: hs.Session, Cursor: ex.Cursor}, &cc); we != nil || !cc.Closed {
		t.Fatalf("close cursor: closed=%v err=%v", cc.Closed, we)
	}
	if we := postWire(t, h, wire.PathCloseCursor, wire.CloseCursorRequest{Session: hs.Session, Cursor: ex.Cursor}, &cc); we != nil || cc.Closed {
		t.Fatalf("double close cursor: closed=%v err=%v, want idempotent no-op", cc.Closed, we)
	}

	// Fetch on the closed cursor is a typed permanent error.
	if we := postWire(t, h, wire.PathFetch, wire.FetchRequest{Session: hs.Session, Cursor: ex.Cursor}, &past); we == nil {
		t.Fatal("fetch on closed cursor succeeded")
	} else if aqerr.ParseKind(we.Kind) != aqerr.KindPermanent {
		t.Fatalf("fetch on closed cursor: kind %s, want permanent", we.Kind)
	}

	// Executing an unknown prepared statement is permanent, not a crash.
	if we := postWire(t, h, wire.PathExecute, wire.ExecuteRequest{Session: hs.Session, Stmt: 9999}, &ex); we == nil {
		t.Fatal("execute of unknown statement succeeded")
	} else if aqerr.ParseKind(we.Kind) != aqerr.KindPermanent {
		t.Fatalf("unknown statement: kind %s, want permanent", we.Kind)
	}

	// Session close is idempotent; everything after it is unavailable.
	var cs wire.CloseSessionResponse
	if we := postWire(t, h, wire.PathCloseSession, wire.CloseSessionRequest{Session: hs.Session}, &cs); we != nil {
		t.Fatalf("close session: %v", we)
	}
	if we := postWire(t, h, wire.PathCloseSession, wire.CloseSessionRequest{Session: hs.Session}, &cs); we != nil {
		t.Fatalf("double close session: %v", we)
	}
	if we := postWire(t, h, wire.PathExecute, wire.ExecuteRequest{Session: hs.Session, SQL: "SELECT 1 FROM CUSTOMERS"}, &ex); we == nil {
		t.Fatal("execute on closed session succeeded")
	} else if aqerr.ParseKind(we.Kind) != aqerr.KindUnavailable {
		t.Fatalf("execute on closed session: kind %s, want unavailable", we.Kind)
	}
}

// TestServeSessionReap pins the abandoned-client guard: a session idle
// past the timeout is reaped, its cursor is closed (cancelling the
// evaluation and returning the admission slot), and later requests on the
// session are typed unavailable errors.
func TestServeSessionReap(t *testing.T) {
	_, srv, c := newLoopback(t, server.Config{
		FetchRows:          2,
		SessionIdleTimeout: 40 * time.Millisecond,
	})

	// Open a cursor over a large join and abandon it mid-stream.
	rows, err := c.QueryStreamMode(context.Background(), ModeText,
		"SELECT C.CUSTOMERID FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// No Close, no more fetches: the client just goes away.

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.SessionsReaped >= 1 && st.CursorsReaped >= 1 && st.QueriesInFlight == 0 && st.CursorsOpen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reaper never cleaned up: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The reaped session is gone: new work on it is typed unavailable.
	_, err = c.QueryStreamMode(context.Background(), ModeText, "SELECT CUSTOMERID FROM CUSTOMERS")
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindUnavailable {
		t.Fatalf("execute on reaped session: %v, want unavailable QueryError", err)
	}
}

// TestServeAdmissionControl pins the load-shed path: with one admission
// slot held by an undrained cursor, the next execute is rejected with a
// typed unavailable error and counted; releasing the cursor frees the
// slot.
func TestServeAdmissionControl(t *testing.T) {
	_, srv, c := newLoopback(t, server.Config{
		MaxConcurrentQueries: 1,
		AdmissionWait:        time.Millisecond,
		SessionIdleTimeout:   time.Minute,
	})
	ctx := context.Background()

	holder, err := c.QueryStreamMode(ctx, ModeText, "SELECT CUSTOMERID FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}

	_, err = c.QueryStreamMode(ctx, ModeText, "SELECT CITY FROM CUSTOMERS")
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindUnavailable {
		t.Fatalf("over-admission execute: %v, want unavailable QueryError", err)
	}
	if st := srv.Stats(); st.AdmissionRejected < 1 || st.QueriesInFlight != 1 {
		t.Fatalf("admission counters: %+v", st)
	}

	holder.Close() // releases the slot
	again, err := c.QueryStreamMode(ctx, ModeText, "SELECT CITY FROM CUSTOMERS")
	if err != nil {
		t.Fatalf("execute after release: %v", err)
	}
	if _, err := drainClose(again); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.QueriesInFlight != 0 {
		t.Fatalf("in-flight not drained: %+v", st)
	}
}

// TestServePreparedAcrossViewChange pins prepared statements against
// catalog churn: a CREATE VIEW mid-session bumps the metadata generation,
// and the next execution of an already-prepared statement recompiles
// against the new catalog instead of running a stale plan.
func TestServePreparedAcrossViewChange(t *testing.T) {
	_, _, c := newLoopback(t, server.Config{SessionIdleTimeout: time.Minute})
	ctx := context.Background()

	st, err := c.Prepare(ctx, "SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID = ?", ModeText)
	if err != nil {
		t.Fatal(err)
	}
	if st.ParamCount() != 1 || len(st.Columns()) != 1 {
		t.Fatalf("prepared shape: params=%d cols=%d", st.ParamCount(), len(st.Columns()))
	}
	first, err := st.Execute(ctx, 1005)
	if err != nil {
		t.Fatal(err)
	}
	want, err := drainClose(first)
	if err != nil {
		t.Fatal(err)
	}

	missesBefore := Stats().CompileCacheMisses
	if err := c.DefineView(ctx, "Views", "V_SERVE_CHURN", "SELECT CUSTOMERID, CITY FROM CUSTOMERS"); err != nil {
		t.Fatalf("create view: %v", err)
	}

	second, err := st.Execute(ctx, 1005)
	if err != nil {
		t.Fatalf("execute after view change: %v", err)
	}
	got, err := drainClose(second)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("prepared result changed across unrelated view churn\ngot:  %s\nwant: %s", got, want)
	}
	if misses := Stats().CompileCacheMisses; misses <= missesBefore {
		t.Fatalf("execution after CREATE VIEW reused a stale compile (misses %d -> %d)", missesBefore, misses)
	}

	// The new view is queryable in the same session.
	vrows, err := c.QueryStreamMode(ctx, ModeText, "SELECT CITY FROM V_SERVE_CHURN WHERE CUSTOMERID = 1005")
	if err != nil {
		t.Fatalf("query new view: %v", err)
	}
	if out, err := drainClose(vrows); err != nil || !strings.Contains(out, "|") {
		t.Fatalf("view rows: %q err=%v", out, err)
	}
}

// TestRowsErrDistinguishesCancelFromServerFault is the regression net for
// Rows.Err classification when a stream dies: a client-side context
// cancellation must surface as a timeout-kind QueryError still matching
// errors.Is(err, context.Canceled), while a server-side failure must keep
// its own typed kind — the two are programmatically distinguishable.
func TestRowsErrDistinguishesCancelFromServerFault(t *testing.T) {
	const bigJoin = "SELECT C.CUSTOMERID FROM CUSTOMERS C, PAYMENTS P"

	t.Run("in-process cancel", func(t *testing.T) {
		p := Demo()
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := p.QueryStreamMode(ctx, ModeText, bigJoin)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		if !rows.Next() {
			t.Fatalf("no first row: %v", rows.Err())
		}
		cancel()
		for rows.Next() {
		}
		err = rows.Err()
		var qe *aqerr.QueryError
		if !errors.As(err, &qe) || qe.Kind != aqerr.KindTimeout {
			t.Fatalf("Err() = %v, want timeout-kind QueryError", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Err() = %v, want errors.Is(context.Canceled)", err)
		}
	})

	t.Run("remote cancel", func(t *testing.T) {
		_, srv, c := newLoopback(t, server.Config{FetchRows: 2, SessionIdleTimeout: time.Minute})
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := c.QueryStreamMode(ctx, ModeText, bigJoin)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("no first row: %v", rows.Err())
		}
		cancel()
		for rows.Next() {
		}
		err = rows.Err()
		var qe *aqerr.QueryError
		if !errors.As(err, &qe) || qe.Kind != aqerr.KindTimeout {
			t.Fatalf("Err() = %v, want timeout-kind QueryError", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Err() = %v, want errors.Is(context.Canceled)", err)
		}
		// Cursor cleanup survives the cancelled stream context.
		rows.Close()
		if st := srv.Stats(); st.CursorsOpen != 0 || st.QueriesInFlight != 0 {
			t.Fatalf("server state after cancelled client: %+v", st)
		}
	})

	t.Run("server fault", func(t *testing.T) {
		inj := faultnet.New(faultnet.Config{Seed: 11, Rate: 0, Kinds: []faultnet.Kind{faultnet.KindTransient}})
		_, _, c := newLoopback(t, server.Config{
			FetchRows:          2,
			SessionIdleTimeout: time.Minute,
			Faults:             inj,
		})
		rows, err := c.QueryStreamMode(context.Background(), ModeText, bigJoin)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		if !rows.Next() {
			t.Fatalf("no first row: %v", rows.Err())
		}
		inj.SetRate(1) // every later fetch fails server-side
		for rows.Next() {
		}
		err = rows.Err()
		var qe *aqerr.QueryError
		if !errors.As(err, &qe) || qe.Kind != aqerr.KindTransient {
			t.Fatalf("Err() = %v, want transient-kind QueryError", err)
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("server fault misclassified as client cancel: %v", err)
		}
	})
}

// TestServeMetadataSurface pins the remote catalog surface: the client is
// a catalog.Source whose lookups, typed not-found errors, and listings
// match the in-process catalog.
func TestServeMetadataSurface(t *testing.T) {
	p, _, c := newLoopback(t, server.Config{SessionIdleTimeout: time.Minute})

	meta, err := c.Lookup(catalog.TableRef{Table: "CUSTOMERS"})
	if err != nil {
		t.Fatalf("remote lookup: %v", err)
	}
	local, err := p.Metadata().Lookup(catalog.TableRef{Table: "CUSTOMERS"})
	if err != nil {
		t.Fatalf("local lookup: %v", err)
	}
	if meta.Schema != local.Schema {
		t.Fatalf("metadata diverged: remote schema %q, local %q", meta.Schema, local.Schema)
	}

	if _, err := c.Lookup(catalog.TableRef{Table: "NO_SUCH_TABLE"}); err == nil {
		t.Fatal("lookup of missing table succeeded")
	} else {
		var nf *catalog.NotFoundError
		if !errors.As(err, &nf) {
			t.Fatalf("missing table error: %v, want catalog.NotFoundError", err)
		}
	}

	remoteTables, err := c.Tables()
	if err != nil {
		t.Fatal(err)
	}
	localTables, err := p.Metadata().Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(remoteTables) != len(localTables) || len(remoteTables) == 0 {
		t.Fatalf("table listing diverged: remote %d, local %d", len(remoteTables), len(localTables))
	}

	// EXPLAIN over the wire matches the in-process compile.
	text, err := c.Explain(context.Background(), "SELECT CUSTOMERID FROM CUSTOMERS", ModeText)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "-- plan:") || !strings.Contains(text, "for $") {
		t.Fatalf("explain text missing plan or XQuery:\n%s", text)
	}
}

// TestServeSmoke is the end-to-end TCP path behind `make serve-smoke`: a
// real listener, a dialed client, a conformance subset, then a clean
// drain — no leaked goroutines, no open server state.
func TestServeSmoke(t *testing.T) {
	baseline := runtime.NumGoroutine()

	p := Demo()
	srv := server.New(p, server.Config{SessionIdleTimeout: time.Minute})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = hs.Serve(ln)
	}()

	c, err := remoteclient.Dial("http://" + ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for _, sql := range compiledCorpus()[:5] {
		args := chaosArgs(strings.Count(sql, "?"))
		local, err := p.QueryMode(ModeText, sql, args...)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := c.Query(context.Background(), sql, args...)
		if err != nil {
			t.Fatalf("%q over TCP: %v", sql, err)
		}
		got, err := drainClose(remote)
		if err != nil {
			t.Fatal(err)
		}
		if want := marshalRows(local); got != want {
			t.Fatalf("%q over TCP diverged\ngot:  %s\nwant: %s", sql, got, want)
		}
	}
	if _, err := c.ServerStats(context.Background()); err != nil {
		t.Fatalf("stats endpoint: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}

	sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil {
		t.Fatalf("http shutdown: %v", err)
	}
	<-serveDone
	srv.Close()

	if st := srv.Stats(); st.SessionsOpen != 0 || st.CursorsOpen != 0 || st.QueriesInFlight != 0 {
		t.Fatalf("server state after shutdown: %+v", st)
	}
	// Transport teardown is asynchronous; allow it to settle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
