package aqualogic_test

import (
	"fmt"
	"log"

	aqualogic "repro"
)

// ExamplePlatform_TranslateText shows the paper's core transformation: a
// SQL SELECT over a data service presented as a table becomes an XQuery
// over the data service function.
func ExamplePlatform_TranslateText() {
	p := aqualogic.Demo()
	xq, err := p.TranslateText("SELECT CUSTOMERID ID FROM CUSTOMERS WHERE CUSTOMERID = 1000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xq)
	// Output:
	// import schema namespace ns0 =
	//   "ld:TestDataServices/CUSTOMERS" at
	//   "ld:TestDataServices/schemas/CUSTOMERS.xsd";
	//
	// <RECORDSET>
	//   {
	//     for $var1FR1 in ns0:CUSTOMERS()
	//     where ($var1FR1/CUSTOMERID = xs:integer(1000))
	//     return
	//       <RECORD>
	//         <ID>{fn:data($var1FR1/CUSTOMERID)}</ID>
	//       </RECORD>
	//   }
	// </RECORDSET>
}

// ExamplePlatform_Query runs SQL end to end against a custom data service.
func ExamplePlatform_Query() {
	app := &aqualogic.Application{Name: "MiniApp"}
	app.AddDSFile(&aqualogic.DSFile{
		Path: "Mini",
		Name: "ITEMS",
		Functions: []*aqualogic.Function{
			aqualogic.NewRelationalImport("Mini", "ITEMS", []aqualogic.Column{
				{Name: "ID", Type: aqualogic.SQLInteger},
				{Name: "NAME", Type: aqualogic.SQLVarchar, Nullable: true},
			}),
		},
	})
	engine := aqualogic.NewEngine()
	aqualogic.RegisterRows(engine, "ld:Mini/ITEMS", "ITEMS", []*aqualogic.Element{
		aqualogic.NewRow("ITEMS", "ID", "2", "NAME", "bolt"),
		aqualogic.NewRow("ITEMS", "ID", "1", "NAME", "nut"),
		aqualogic.NewRow("ITEMS", "ID", "3", "NAME", ""),
	})

	p := aqualogic.New(app, engine)
	rows, err := p.Query("SELECT ID, NAME FROM ITEMS ORDER BY ID")
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		id, _, _ := rows.Int64(0)
		name, ok, _ := rows.String(1)
		if !ok {
			name = "NULL"
		}
		fmt.Printf("%d %s\n", id, name)
	}
	// Output:
	// 1 nut
	// 2 bolt
	// 3 NULL
}
