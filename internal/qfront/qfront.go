// Package qfront defines the frontend-neutral typed query AST that every
// query language front end compiles to, plus the Frontend seam the
// translation kernel consumes.
//
// The paper's architecture is a SQL-92 surface feeding a reusable
// translation core (resultset nodes, query contexts, function mapping,
// type inference). This package is that seam made explicit: a front end
// (SQL-92 in internal/sqlparser, the path-template language in
// internal/pathfront) lexes and parses its own concrete syntax and emits
// the shared AST defined here. Everything downstream — semantic
// validation, RSN restructuring, XQuery generation, planning, compile
// caching, streaming — is front-end agnostic.
//
// The AST keeps SQL's relational shape (SELECT blocks, table references,
// the SQL-92 expression repertoire) because that is what the kernel's
// query-context machinery (§3.4.3 of the paper) is built around; front
// ends with different surface syntax map onto it, the way SPARQL2Query
// frameworks map graph patterns onto relational blocks. Node.SQL()
// renders the canonical relational form of any node, which doubles as
// the cross-dialect differential-testing oracle.
package qfront

import "fmt"

// Pos is a 1-based source position in the original query text, whatever
// the dialect.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("line %d, column %d", p.Line, p.Col) }

// SQLKeywords is the SQL-92 reserved-word subset the canonical rendering
// (Node.SQL) must re-delimit when it appears as an identifier. The SQL
// front end shares this map so its lexer and the renderer can never
// disagree about what is reserved.
var SQLKeywords = map[string]bool{
	"ALL": true, "AND": true, "ANY": true, "AS": true, "ASC": true,
	"AVG": true, "BETWEEN": true, "BOTH": true, "BY": true, "CASE": true,
	"CAST": true, "CHAR": true, "CHARACTER": true, "COALESCE": true,
	"COUNT": true, "CROSS": true, "CURRENT_DATE": true, "CURRENT_TIME": true,
	"CURRENT_TIMESTAMP": true, "DATE": true, "DEC": true, "DECIMAL": true,
	"DESC": true, "DISTINCT": true, "DOUBLE": true, "ELSE": true, "END": true,
	"ESCAPE": true, "EXCEPT": true, "EXISTS": true, "EXTRACT": true,
	"FETCH": true, "FIRST": true,
	"FALSE": true, "FLOAT": true, "FOR": true, "FROM": true, "FULL": true,
	"GROUP": true, "HAVING": true, "IN": true, "INNER": true, "INT": true,
	"INTEGER": true, "INTERSECT": true, "IS": true, "JOIN": true,
	"LEADING": true, "LEFT": true, "LIKE": true, "LOWER": true, "MAX": true,
	"MIN": true, "NATURAL": true, "NOT": true, "NULL": true, "NULLIF": true,
	"NEXT": true, "NUMERIC": true, "ON": true, "ONLY": true, "OR": true,
	"ORDER": true, "OUTER": true,
	"POSITION": true, "PRECISION": true, "REAL": true, "RIGHT": true,
	"ROW": true, "ROWS": true,
	"SELECT": true, "SMALLINT": true, "SOME": true, "SUBSTRING": true,
	"SUM": true, "THEN": true, "TIME": true, "TIMESTAMP": true,
	"TRAILING": true, "TRIM": true, "TRUE": true, "UNION": true,
	"UPPER": true, "USING": true, "VARCHAR": true, "WHEN": true,
	"WHERE": true, "WITH": true,
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || (b >= '0' && b <= '9') || b == '$' || b == '#'
}
