package qfront

import (
	"fmt"
	"strings"
)

// Node is any AST node. Every node carries its source position for
// error reporting during semantic validation.
type Node interface {
	Position() Pos
	// SQL renders the node back to SQL text (canonicalized: uppercase
	// keywords, explicit parentheses where the parse implied them).
	SQL() string
}

// SelectStmt is a full <query expression>: a query body (possibly a set
// operation tree) with an optional trailing ORDER BY.
type SelectStmt struct {
	Pos     Pos
	Body    QueryExpr
	OrderBy []OrderItem
	// Limit is the row count of a FETCH FIRST n ROWS ONLY clause — the
	// SQL:2008 spelling reporting tools use for top-N queries, accepted
	// here as an extension beyond SQL-92. -1 means no limit.
	Limit int
	// ParamCount is the number of `?` markers found in the statement,
	// filled in by the parser for prepared-statement support.
	ParamCount int
}

// Position implements Node.
func (s *SelectStmt) Position() Pos { return s.Pos }

// SQL implements Node.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString(s.Body.SQL())
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.SQL())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " FETCH FIRST %d ROWS ONLY", s.Limit)
	}
	return b.String()
}

// QueryExpr is a query body: a single SELECT block, or a set operation
// combining two query bodies.
type QueryExpr interface {
	Node
	queryExpr()
}

// QuerySpec is one SELECT–FROM–WHERE–GROUP BY–HAVING block. This is the SQL
// "view" abstraction the paper's resultset nodes are built around.
type QuerySpec struct {
	Pos      Pos
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

func (*QuerySpec) queryExpr() {}

// Position implements Node.
func (q *QuerySpec) Position() Pos { return q.Pos }

// SQL implements Node.
func (q *QuerySpec) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range q.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.SQL())
	}
	if len(q.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range q.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.SQL())
		}
	}
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.SQL())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
	}
	if q.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(q.Having.SQL())
	}
	return b.String()
}

// SetOpType is a SQL set operation.
type SetOpType int

// Set operations.
const (
	SetUnion SetOpType = iota
	SetExcept
	SetIntersect
)

func (t SetOpType) String() string {
	switch t {
	case SetUnion:
		return "UNION"
	case SetExcept:
		return "EXCEPT"
	case SetIntersect:
		return "INTERSECT"
	default:
		return fmt.Sprintf("SetOpType(%d)", int(t))
	}
}

// SetOpExpr combines two query bodies with UNION/EXCEPT/INTERSECT.
// All preserves duplicates (UNION ALL etc.); the default is set semantics.
type SetOpExpr struct {
	Pos   Pos
	Op    SetOpType
	All   bool
	Left  QueryExpr
	Right QueryExpr
}

func (*SetOpExpr) queryExpr() {}

// Position implements Node.
func (s *SetOpExpr) Position() Pos { return s.Pos }

// SQL implements Node.
func (s *SetOpExpr) SQL() string {
	op := s.Op.String()
	if s.All {
		op += " ALL"
	}
	return fmt.Sprintf("(%s) %s (%s)", s.Left.SQL(), op, s.Right.SQL())
}

// SelectItem is one projection item: an expression with an optional alias,
// or a wildcard (`*` or `T.*`).
type SelectItem struct {
	Pos       Pos
	Expr      Expr   // nil when Wildcard
	Alias     string // AS name (empty when none)
	Wildcard  bool
	Qualifier string // for T.* wildcards; empty for bare *
}

// Position implements Node.
func (s SelectItem) Position() Pos { return s.Pos }

// SQL implements Node.
func (s SelectItem) SQL() string {
	if s.Wildcard {
		if s.Qualifier != "" {
			return s.Qualifier + ".*"
		}
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.SQL() + " AS " + quoteIdentIfNeeded(s.Alias)
	}
	return s.Expr.SQL()
}

// OrderItem is one ORDER BY entry. An integer literal expression is a
// SQL-92 ordinal reference into the select list.
type OrderItem struct {
	Pos  Pos
	Expr Expr
	Desc bool
}

// Position implements Node.
func (o OrderItem) Position() Pos { return o.Pos }

// SQL implements Node.
func (o OrderItem) SQL() string {
	s := o.Expr.SQL()
	if o.Desc {
		s += " DESC"
	}
	return s
}

// TableRef is a FROM-clause item.
type TableRef interface {
	Node
	tableRef()
}

// TableName references a base table: [catalog.][schema.]name [AS alias].
// In the AquaLogic mapping, catalog is the application, schema the .ds file
// path, and name the data service function.
type TableName struct {
	Pos     Pos
	Catalog string
	Schema  string
	Name    string
	Alias   string
}

func (*TableName) tableRef() {}

// Position implements Node.
func (t *TableName) Position() Pos { return t.Pos }

// SQL implements Node.
func (t *TableName) SQL() string {
	var parts []string
	if t.Catalog != "" {
		parts = append(parts, quoteIdentIfNeeded(t.Catalog))
	}
	if t.Schema != "" {
		parts = append(parts, quoteIdentIfNeeded(t.Schema))
	}
	parts = append(parts, quoteIdentIfNeeded(t.Name))
	s := strings.Join(parts, ".")
	if t.Alias != "" {
		s += " AS " + quoteIdentIfNeeded(t.Alias)
	}
	return s
}

// RangeVar returns the name that qualifies columns of this table: the alias
// if present, else the table name.
func (t *TableName) RangeVar() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// DerivedTable is a parenthesized subquery in the FROM clause. SQL-92
// requires an alias.
type DerivedTable struct {
	Pos           Pos
	Query         *SelectStmt
	Alias         string
	ColumnAliases []string // optional derived column list: AS T (c1, c2)
}

func (*DerivedTable) tableRef() {}

// Position implements Node.
func (d *DerivedTable) Position() Pos { return d.Pos }

// SQL implements Node.
func (d *DerivedTable) SQL() string {
	s := "(" + d.Query.SQL() + ") AS " + quoteIdentIfNeeded(d.Alias)
	if len(d.ColumnAliases) > 0 {
		quoted := make([]string, len(d.ColumnAliases))
		for i, a := range d.ColumnAliases {
			quoted[i] = quoteIdentIfNeeded(a)
		}
		s += " (" + strings.Join(quoted, ", ") + ")"
	}
	return s
}

// JoinType is a SQL join flavor.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeftOuter
	JoinRightOuter
	JoinFullOuter
	JoinCross
)

func (t JoinType) String() string {
	switch t {
	case JoinInner:
		return "INNER JOIN"
	case JoinLeftOuter:
		return "LEFT OUTER JOIN"
	case JoinRightOuter:
		return "RIGHT OUTER JOIN"
	case JoinFullOuter:
		return "FULL OUTER JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return fmt.Sprintf("JoinType(%d)", int(t))
	}
}

// JoinExpr is a joined table. Exactly one of Cond, Using, or Natural
// describes the join condition for non-cross joins.
type JoinExpr struct {
	Pos     Pos
	Type    JoinType
	Left    TableRef
	Right   TableRef
	Cond    Expr     // ON condition
	Using   []string // USING (col, ...)
	Natural bool
	Alias   string // a parenthesized join can carry an alias: (A JOIN B ...) AS P
}

func (*JoinExpr) tableRef() {}

// Position implements Node.
func (j *JoinExpr) Position() Pos { return j.Pos }

// SQL implements Node.
func (j *JoinExpr) SQL() string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(j.Left.SQL())
	b.WriteString(" ")
	if j.Natural {
		b.WriteString("NATURAL ")
	}
	b.WriteString(j.Type.String())
	b.WriteString(" ")
	b.WriteString(j.Right.SQL())
	if j.Cond != nil {
		b.WriteString(" ON ")
		b.WriteString(j.Cond.SQL())
	}
	if len(j.Using) > 0 {
		quoted := make([]string, len(j.Using))
		for i, u := range j.Using {
			quoted[i] = quoteIdentIfNeeded(u)
		}
		b.WriteString(" USING (")
		b.WriteString(strings.Join(quoted, ", "))
		b.WriteString(")")
	}
	b.WriteString(")")
	if j.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(quoteIdentIfNeeded(j.Alias))
	}
	return b.String()
}

// quoteIdentIfNeeded renders an identifier bare only when it would lex
// back as a single identifier token: names that are empty, digit-leading,
// reserved words, or carry punctuation (all reachable through delimited
// identifiers in the source) are re-delimited, so SQL() always re-parses.
func quoteIdentIfNeeded(s string) string {
	if bareIdent(s) && !SQLKeywords[strings.ToUpper(s)] {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// bareIdent reports whether s lexes as one plain identifier token. '/' is
// tolerated mid-name for the schema-path identifiers of the AquaLogic
// artifact mapping (catalog paths like TestDataServices/schemas).
func bareIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentPart(s[i]) && s[i] != '/' {
			return false
		}
	}
	return true
}

// funcNameSQL renders a function name: keyword-named built-ins (COUNT,
// LEFT, …) must stay bare to parse as calls; other names follow
// identifier quoting.
func funcNameSQL(s string) string {
	if SQLKeywords[strings.ToUpper(s)] {
		return s
	}
	return quoteIdentIfNeeded(s)
}
