package qfront

import (
	"fmt"
	"strings"
)

// Expr is a SQL value or boolean expression node.
type Expr interface {
	Node
	expr()
}

// ColumnRef is a (possibly qualified) column reference. Qualifier is the
// range variable / table name part ("CUSTOMERS" in CUSTOMERS.CUSTOMERID),
// empty for unqualified references; longer chains (schema.table.column)
// keep the extra leading parts in SchemaParts.
type ColumnRef struct {
	Pos         Pos
	SchemaParts []string // leading qualifiers beyond the range variable
	Qualifier   string
	Column      string
}

func (*ColumnRef) expr() {}

// Position implements Node.
func (c *ColumnRef) Position() Pos { return c.Pos }

// SQL implements Node.
func (c *ColumnRef) SQL() string {
	var parts []string
	for _, p := range c.SchemaParts {
		parts = append(parts, quoteIdentIfNeeded(p))
	}
	if c.Qualifier != "" {
		parts = append(parts, quoteIdentIfNeeded(c.Qualifier))
	}
	parts = append(parts, quoteIdentIfNeeded(c.Column))
	return strings.Join(parts, ".")
}

// LiteralType classifies literal constants.
type LiteralType int

// Literal types.
const (
	LitInteger LiteralType = iota
	LitDecimal
	LitFloat
	LitString
	LitBoolean
	LitNull
	LitDate      // DATE 'YYYY-MM-DD'
	LitTime      // TIME 'HH:MM:SS'
	LitTimestamp // TIMESTAMP 'YYYY-MM-DD HH:MM:SS'
)

// Literal is a constant. Text is the canonical lexical form (for strings,
// unquoted and unescaped).
type Literal struct {
	Pos  Pos
	Type LiteralType
	Text string
}

func (*Literal) expr() {}

// Position implements Node.
func (l *Literal) Position() Pos { return l.Pos }

// SQL implements Node.
func (l *Literal) SQL() string {
	switch l.Type {
	case LitString:
		return "'" + strings.ReplaceAll(l.Text, "'", "''") + "'"
	case LitNull:
		return "NULL"
	case LitDate:
		return "DATE '" + l.Text + "'"
	case LitTime:
		return "TIME '" + l.Text + "'"
	case LitTimestamp:
		return "TIMESTAMP '" + l.Text + "'"
	default:
		return l.Text
	}
}

// Param is a `?` parameter marker; Index is its 1-based position in the
// statement, assigned left to right as JDBC does.
type Param struct {
	Pos   Pos
	Index int
}

func (*Param) expr() {}

// Position implements Node.
func (p *Param) Position() Pos { return p.Pos }

// SQL implements Node.
func (p *Param) SQL() string { return "?" }

// UnaryOp is a unary operator.
type UnaryOp int

// Unary operators.
const (
	UnaryMinus UnaryOp = iota
	UnaryPlus
	UnaryNot
)

func (op UnaryOp) String() string {
	switch op {
	case UnaryMinus:
		return "-"
	case UnaryPlus:
		return "+"
	case UnaryNot:
		return "NOT"
	default:
		return fmt.Sprintf("UnaryOp(%d)", int(op))
	}
}

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Pos     Pos
	Op      UnaryOp
	Operand Expr
}

func (*UnaryExpr) expr() {}

// Position implements Node.
func (u *UnaryExpr) Position() Pos { return u.Pos }

// SQL implements Node.
func (u *UnaryExpr) SQL() string {
	if u.Op == UnaryNot {
		return "NOT (" + u.Operand.SQL() + ")"
	}
	operand := u.Operand.SQL()
	// Adjacent minus signs would lex as a SQL line comment, so a nested
	// negation renders parenthesized to stay re-parseable.
	if u.Op == UnaryMinus && strings.HasPrefix(operand, "-") {
		return u.Op.String() + "(" + operand + ")"
	}
	return u.Op.String() + operand
}

// BinaryOp is a binary operator (arithmetic, comparison, logical, concat).
type BinaryOp int

// Binary operators.
const (
	BinAdd BinaryOp = iota
	BinSub
	BinMul
	BinDiv
	BinConcat
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinAnd
	BinOr
)

func (op BinaryOp) String() string {
	switch op {
	case BinAdd:
		return "+"
	case BinSub:
		return "-"
	case BinMul:
		return "*"
	case BinDiv:
		return "/"
	case BinConcat:
		return "||"
	case BinEq:
		return "="
	case BinNe:
		return "<>"
	case BinLt:
		return "<"
	case BinLe:
		return "<="
	case BinGt:
		return ">"
	case BinGe:
		return ">="
	case BinAnd:
		return "AND"
	case BinOr:
		return "OR"
	default:
		return fmt.Sprintf("BinaryOp(%d)", int(op))
	}
}

// Comparison reports whether the operator is a comparison operator.
func (op BinaryOp) Comparison() bool { return op >= BinEq && op <= BinGe }

// Logical reports whether the operator is AND or OR.
func (op BinaryOp) Logical() bool { return op == BinAnd || op == BinOr }

// Arithmetic reports whether the operator is numeric arithmetic.
func (op BinaryOp) Arithmetic() bool { return op >= BinAdd && op <= BinDiv }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Pos   Pos
	Op    BinaryOp
	Left  Expr
	Right Expr
}

func (*BinaryExpr) expr() {}

// Position implements Node.
func (b *BinaryExpr) Position() Pos { return b.Pos }

// SQL implements Node.
func (b *BinaryExpr) SQL() string {
	if b.Op.Logical() {
		return "(" + b.Left.SQL() + " " + b.Op.String() + " " + b.Right.SQL() + ")"
	}
	return b.Left.SQL() + " " + b.Op.String() + " " + b.Right.SQL()
}

// FuncCall is a function invocation: scalar (UPPER, CONCAT, …) or aggregate
// (COUNT, SUM, AVG, MIN, MAX). COUNT(*) sets Star; COUNT(DISTINCT x) sets
// Distinct.
type FuncCall struct {
	Pos      Pos
	Name     string // canonical uppercase
	Args     []Expr
	Distinct bool
	Star     bool
}

func (*FuncCall) expr() {}

// Position implements Node.
func (f *FuncCall) Position() Pos { return f.Pos }

// SQL implements Node.
func (f *FuncCall) SQL() string {
	if f.Star {
		return funcNameSQL(f.Name) + "(*)"
	}
	var args []string
	for _, a := range f.Args {
		args = append(args, a.SQL())
	}
	inner := strings.Join(args, ", ")
	if f.Distinct {
		inner = "DISTINCT " + inner
	}
	return funcNameSQL(f.Name) + "(" + inner + ")"
}

// aggregateNames is the SQL-92 aggregate function set.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the call is a SQL-92 aggregate.
func (f *FuncCall) IsAggregate() bool { return aggregateNames[f.Name] }

// WhenClause is one WHEN…THEN… arm of a CASE expression.
type WhenClause struct {
	When Expr
	Then Expr
}

// CaseExpr is a CASE expression. Operand is non-nil for the simple form
// (CASE x WHEN v THEN …), nil for the searched form (CASE WHEN cond THEN …).
type CaseExpr struct {
	Pos     Pos
	Operand Expr
	Whens   []WhenClause
	Else    Expr
}

func (*CaseExpr) expr() {}

// Position implements Node.
func (c *CaseExpr) Position() Pos { return c.Pos }

// SQL implements Node.
func (c *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	if c.Operand != nil {
		b.WriteString(" " + c.Operand.SQL())
	}
	for _, w := range c.Whens {
		b.WriteString(" WHEN " + w.When.SQL() + " THEN " + w.Then.SQL())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

// TypeName is a SQL data type as written in a CAST.
type TypeName struct {
	Name      string // canonical: INTEGER, SMALLINT, DECIMAL, FLOAT, DOUBLE, CHAR, VARCHAR, DATE, TIME, TIMESTAMP
	Precision int    // -1 when unspecified
	Scale     int    // -1 when unspecified
}

// SQL renders the type.
func (t TypeName) SQL() string {
	switch {
	case t.Precision >= 0 && t.Scale >= 0:
		return fmt.Sprintf("%s(%d, %d)", t.Name, t.Precision, t.Scale)
	case t.Precision >= 0:
		return fmt.Sprintf("%s(%d)", t.Name, t.Precision)
	default:
		return t.Name
	}
}

// CastExpr is CAST(expr AS type).
type CastExpr struct {
	Pos     Pos
	Operand Expr
	Type    TypeName
}

func (*CastExpr) expr() {}

// Position implements Node.
func (c *CastExpr) Position() Pos { return c.Pos }

// SQL implements Node.
func (c *CastExpr) SQL() string {
	return "CAST(" + c.Operand.SQL() + " AS " + c.Type.SQL() + ")"
}

// BetweenExpr is x [NOT] BETWEEN low AND high.
type BetweenExpr struct {
	Pos     Pos
	Not     bool
	Operand Expr
	Low     Expr
	High    Expr
}

func (*BetweenExpr) expr() {}

// Position implements Node.
func (b *BetweenExpr) Position() Pos { return b.Pos }

// SQL implements Node.
func (b *BetweenExpr) SQL() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return b.Operand.SQL() + " " + not + "BETWEEN " + b.Low.SQL() + " AND " + b.High.SQL()
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	Pos      Pos
	Not      bool
	Operand  Expr
	List     []Expr      // nil when Subquery form
	Subquery *SelectStmt // nil when list form
}

func (*InExpr) expr() {}

// Position implements Node.
func (i *InExpr) Position() Pos { return i.Pos }

// SQL implements Node.
func (i *InExpr) SQL() string {
	not := ""
	if i.Not {
		not = "NOT "
	}
	if i.Subquery != nil {
		return i.Operand.SQL() + " " + not + "IN (" + i.Subquery.SQL() + ")"
	}
	var parts []string
	for _, e := range i.List {
		parts = append(parts, e.SQL())
	}
	return i.Operand.SQL() + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
}

// ExistsExpr is EXISTS (subquery).
type ExistsExpr struct {
	Pos      Pos
	Subquery *SelectStmt
}

func (*ExistsExpr) expr() {}

// Position implements Node.
func (e *ExistsExpr) Position() Pos { return e.Pos }

// SQL implements Node.
func (e *ExistsExpr) SQL() string { return "EXISTS (" + e.Subquery.SQL() + ")" }

// LikeExpr is x [NOT] LIKE pattern [ESCAPE esc].
type LikeExpr struct {
	Pos     Pos
	Not     bool
	Operand Expr
	Pattern Expr
	Escape  Expr // nil when absent
}

func (*LikeExpr) expr() {}

// Position implements Node.
func (l *LikeExpr) Position() Pos { return l.Pos }

// SQL implements Node.
func (l *LikeExpr) SQL() string {
	not := ""
	if l.Not {
		not = "NOT "
	}
	s := l.Operand.SQL() + " " + not + "LIKE " + l.Pattern.SQL()
	if l.Escape != nil {
		s += " ESCAPE " + l.Escape.SQL()
	}
	return s
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	Pos     Pos
	Not     bool
	Operand Expr
}

func (*IsNullExpr) expr() {}

// Position implements Node.
func (i *IsNullExpr) Position() Pos { return i.Pos }

// SQL implements Node.
func (i *IsNullExpr) SQL() string {
	if i.Not {
		return i.Operand.SQL() + " IS NOT NULL"
	}
	return i.Operand.SQL() + " IS NULL"
}

// SubqueryExpr is a scalar subquery used in expression position.
type SubqueryExpr struct {
	Pos   Pos
	Query *SelectStmt
}

func (*SubqueryExpr) expr() {}

// Position implements Node.
func (s *SubqueryExpr) Position() Pos { return s.Pos }

// SQL implements Node.
func (s *SubqueryExpr) SQL() string { return "(" + s.Query.SQL() + ")" }

// Quantifier is ANY/SOME or ALL in a quantified comparison.
type Quantifier int

// Quantifiers.
const (
	QuantAny Quantifier = iota // ANY and SOME are synonyms
	QuantAll
)

func (q Quantifier) String() string {
	if q == QuantAll {
		return "ALL"
	}
	return "ANY"
}

// QuantifiedExpr is x <op> ANY|ALL (subquery).
type QuantifiedExpr struct {
	Pos      Pos
	Op       BinaryOp // a comparison operator
	Quant    Quantifier
	Left     Expr
	Subquery *SelectStmt
}

func (*QuantifiedExpr) expr() {}

// Position implements Node.
func (q *QuantifiedExpr) Position() Pos { return q.Pos }

// SQL implements Node.
func (q *QuantifiedExpr) SQL() string {
	return q.Left.SQL() + " " + q.Op.String() + " " + q.Quant.String() + " (" + q.Subquery.SQL() + ")"
}

// RowExpr is a SQL-92 row value constructor: (a, b, …). It may appear as
// an operand of comparison and IN predicates; the translator expands row
// comparisons into column-wise conjunctions (equality) or lexicographic
// chains (ordering).
type RowExpr struct {
	Pos   Pos
	Items []Expr
}

func (*RowExpr) expr() {}

// Position implements Node.
func (r *RowExpr) Position() Pos { return r.Pos }

// SQL implements Node.
func (r *RowExpr) SQL() string {
	parts := make([]string, len(r.Items))
	for i, e := range r.Items {
		parts[i] = e.SQL()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
