package qfront

// WalkExpr calls fn for e and every sub-expression of e, top-down. If fn
// returns false, the walk does not descend into that expression's children.
// Subqueries embedded in expressions are NOT entered; callers that need to
// see inside subqueries handle SubqueryExpr/InExpr/ExistsExpr/QuantifiedExpr
// themselves (the translator treats each subquery as its own context).
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch e := e.(type) {
	case *UnaryExpr:
		WalkExpr(e.Operand, fn)
	case *BinaryExpr:
		WalkExpr(e.Left, fn)
		WalkExpr(e.Right, fn)
	case *FuncCall:
		for _, a := range e.Args {
			WalkExpr(a, fn)
		}
	case *CaseExpr:
		WalkExpr(e.Operand, fn)
		for _, w := range e.Whens {
			WalkExpr(w.When, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(e.Else, fn)
	case *CastExpr:
		WalkExpr(e.Operand, fn)
	case *BetweenExpr:
		WalkExpr(e.Operand, fn)
		WalkExpr(e.Low, fn)
		WalkExpr(e.High, fn)
	case *InExpr:
		WalkExpr(e.Operand, fn)
		for _, item := range e.List {
			WalkExpr(item, fn)
		}
	case *LikeExpr:
		WalkExpr(e.Operand, fn)
		WalkExpr(e.Pattern, fn)
		WalkExpr(e.Escape, fn)
	case *IsNullExpr:
		WalkExpr(e.Operand, fn)
	case *QuantifiedExpr:
		WalkExpr(e.Left, fn)
	case *RowExpr:
		for _, item := range e.Items {
			WalkExpr(item, fn)
		}
	}
}

// ContainsAggregate reports whether the expression contains an aggregate
// function call at this query's level (not inside a nested subquery).
func ContainsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			found = true
			return false
		}
		return !found
	})
	return found
}

// CollectColumnRefs returns every column reference in the expression, in
// source order, without entering subqueries.
func CollectColumnRefs(e Expr) []*ColumnRef {
	var refs []*ColumnRef
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			refs = append(refs, c)
		}
		return true
	})
	return refs
}

// CollectAggregates returns every aggregate call in the expression, in
// source order, without entering subqueries.
func CollectAggregates(e Expr) []*FuncCall {
	var aggs []*FuncCall
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			aggs = append(aggs, f)
			return false // arguments of an aggregate are inside it
		}
		return true
	})
	return aggs
}

// CollectParams returns every parameter marker in the expression tree.
func CollectParams(e Expr) []*Param {
	var params []*Param
	WalkExpr(e, func(x Expr) bool {
		if p, ok := x.(*Param); ok {
			params = append(params, p)
		}
		return true
	})
	return params
}

// WalkTableRefs calls fn for every table reference under refs, including
// the branches of join trees. Derived-table subqueries are not entered.
func WalkTableRefs(refs []TableRef, fn func(TableRef)) {
	var walk func(TableRef)
	walk = func(r TableRef) {
		fn(r)
		if j, ok := r.(*JoinExpr); ok {
			walk(j.Left)
			walk(j.Right)
		}
	}
	for _, r := range refs {
		walk(r)
	}
}
