package qfront

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obsv"
)

// Dialect names a query language front end. It participates in compile
// cache keys and travels over the wire protocol, so values must be
// short, stable, lowercase identifiers.
type Dialect string

// Registered dialects. DialectSQL is the wire default: every protocol
// field that carries a dialect treats the empty string as SQL so
// pre-dialect clients keep working unchanged.
const (
	DialectSQL  Dialect = "sql"
	DialectPath Dialect = "path"
)

// Frontend is a query language front end: stage one of the paper's
// three-stage pipeline, factored out so the kernel (stages two and
// three) never sees concrete syntax. A front end owns its lexer and
// parser, reports errors with positions in its own surface syntax, and
// emits the shared typed AST.
type Frontend interface {
	// Dialect returns the front end's registered name.
	Dialect() Dialect

	// Parse lexes and parses query text into the shared AST. It records
	// its own stage spans (lex, parse) on tr — a nil trace is valid and
	// must cost nothing. Errors are typed with positions in the
	// dialect's own syntax.
	Parse(text string, tr *obsv.Trace) (*SelectStmt, error)

	// Normalize returns the canonical cache-key form of query text:
	// whitespace/comment/case differences that cannot change meaning in
	// this dialect collapse to one spelling. It must be cheap relative
	// to Parse and fail on text the dialect cannot lex.
	Normalize(text string) (string, error)
}

var (
	regMu     sync.RWMutex
	frontends = map[Dialect]Frontend{}
)

// Register makes a front end available by dialect name. Like
// database/sql drivers, front ends self-register from an init function;
// a duplicate or empty dialect is a programming error and panics.
func Register(f Frontend) {
	d := f.Dialect()
	if d == "" {
		panic("qfront: Register with empty dialect")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := frontends[d]; dup {
		panic(fmt.Sprintf("qfront: Register called twice for dialect %q", d))
	}
	frontends[d] = f
}

// Lookup resolves a dialect name to its registered front end. The empty
// dialect resolves to SQL, preserving wire and DSN compatibility with
// pre-dialect clients.
func Lookup(d Dialect) (Frontend, error) {
	if d == "" {
		d = DialectSQL
	}
	regMu.RLock()
	f, ok := frontends[d]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown query dialect %q (registered: %v)", d, Dialects())
	}
	return f, nil
}

// Dialects returns the registered dialect names, sorted.
func Dialects() []Dialect {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Dialect, 0, len(frontends))
	for d := range frontends {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
