package qcache

import (
	"context"
	"errors"
	"testing"

	"repro/internal/obsv"
	"repro/internal/qfront"
	"repro/internal/translator"
)

// collidingFront is the worst case for the cache key: two dialects whose
// Normalize output is the raw text, so two fronts given identical text
// produce identical normalized forms. Only the Dialect component of the
// key can keep their artifacts apart.
type collidingFront struct {
	d qfront.Dialect
}

func (f collidingFront) Dialect() qfront.Dialect { return f.d }

func (f collidingFront) Parse(text string, tr *obsv.Trace) (*qfront.SelectStmt, error) {
	return nil, errors.New("collidingFront does not parse")
}

func (f collidingFront) Normalize(text string) (string, error) { return text, nil }

// TestDialectSplitsTheKey is the audit ISSUE satellite (a) asks for: two
// dialects presenting byte-identical statement text — and even identical
// normalized text — must never share or clobber one cache entry.
func TestDialectSplitsTheKey(t *testing.T) {
	c := New(Config{})
	text := "identical statement text in two languages"
	alpha, beta := collidingFront{d: "alpha"}, collidingFront{d: "beta"}

	compiles := 0
	mint := func(tag string) CompileFunc {
		return func(ctx context.Context, s string) (*CompiledQuery, error) {
			compiles++
			return &CompiledQuery{SQL: tag}, nil
		}
	}
	a1, _, err := c.Get(context.Background(), alpha, text, translator.ModeText, mint("alpha artifact"))
	if err != nil {
		t.Fatal(err)
	}
	b1, _, err := c.Get(context.Background(), beta, text, translator.ModeText, mint("beta artifact"))
	if err != nil {
		t.Fatal(err)
	}
	if compiles != 2 {
		t.Fatalf("compile ran %d times, want 2 (dialects shared one entry)", compiles)
	}
	if a1 == b1 || a1.SQL == b1.SQL {
		t.Fatalf("dialects collided: %q vs %q", a1.SQL, b1.SQL)
	}

	// Each dialect's repeat lookup hits its own artifact, not the other's.
	a2, hit, err := c.Get(context.Background(), alpha, text, translator.ModeText, mint("never minted"))
	if err != nil {
		t.Fatal(err)
	}
	if !hit || a2 != a1 {
		t.Fatal("alpha's second lookup did not hit alpha's artifact")
	}
	if compiles != 2 {
		t.Fatalf("repeat lookup recompiled (%d compiles)", compiles)
	}

	// Peek sees each dialect's artifact under its own key only.
	if got, ok := c.Peek(beta, text, translator.ModeText); !ok || got != b1 {
		t.Fatal("beta's Peek missed beta's artifact")
	}
	if got, ok := c.Peek(collidingFront{d: "gamma"}, text, translator.ModeText); ok {
		t.Fatalf("unregistered dialect peeked another dialect's artifact: %q", got.SQL)
	}
	if s := c.Stats(); s.Size != 2 {
		t.Fatalf("cache holds %d entries, want 2", s.Size)
	}
}
