package qcache

import (
	"context"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/translator"
)

// TestStatsGenerationRetiresArtifacts mirrors the catalog-generation test
// for the evaluator's statistics epoch: an explicit stats refresh
// (ANALYZE) must retire every artifact whose plan was costed against the
// old numbers, while a steady epoch keeps serving the cached compile.
func TestStatsGenerationRetiresArtifacts(t *testing.T) {
	var sgen uint64
	c := New(Config{StatsGeneration: func() uint64 { return sgen }})
	calls := 0
	get := func() {
		if _, _, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", translator.ModeText, fakeCompile(&calls)); err != nil {
			t.Fatal(err)
		}
	}
	get()
	get()
	if calls != 1 {
		t.Fatalf("same stats generation recompiled (%d)", calls)
	}
	cq, hit, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", translator.ModeText, fakeCompile(&calls))
	if err != nil || !hit {
		t.Fatalf("expected a hit: hit=%v err=%v", hit, err)
	}
	if cq.StatsGen != sgen {
		t.Fatalf("artifact stats generation = %d, want %d", cq.StatsGen, sgen)
	}

	sgen++ // stats refreshed underneath (ANALYZE)
	get()
	if calls != 2 {
		t.Fatalf("stats-generation bump did not retire the artifact (%d compiles)", calls)
	}
	if s := c.Stats(); s.StatsGeneration != sgen {
		t.Fatalf("stats generation in Stats() = %d, want %d", s.StatsGeneration, sgen)
	}
}
