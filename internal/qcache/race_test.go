package qcache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sqlparser"
	"repro/internal/translator"
)

// TestStampedeSingleFlight is the cache-stampede contract under -race: any
// number of goroutines racing a cold key trigger exactly one compile, and
// everyone gets the same artifact.
func TestStampedeSingleFlight(t *testing.T) {
	c := New(Config{})
	var compiles atomic.Int64
	slow := func(ctx context.Context, sql string) (*CompiledQuery, error) {
		compiles.Add(1)
		time.Sleep(5 * time.Millisecond) // hold the flight open so everyone piles on
		return &CompiledQuery{SQL: sql}, nil
	}

	const goroutines = 32
	start := make(chan struct{})
	results := make([]*CompiledQuery, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			cq, _, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", translator.ModeText, slow)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = cq
		}(g)
	}
	close(start)
	wg.Wait()

	if n := compiles.Load(); n != 1 {
		t.Fatalf("stampede compiled %d times, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d got a different artifact", g)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Shared != goroutines-1 {
		t.Fatalf("hits=%d shared=%d, want %d reuses total", s.Hits, s.Shared, goroutines-1)
	}
}

// TestEvictionChurn hammers a cache far smaller than its key space from
// many goroutines: LRU bookkeeping must stay consistent (size within
// bounds, no lost entries panicking the list) under constant eviction.
func TestEvictionChurn(t *testing.T) {
	const maxEntries = 4
	c := New(Config{MaxEntries: maxEntries})
	compile := func(ctx context.Context, sql string) (*CompiledQuery, error) {
		return &CompiledQuery{SQL: sql}, nil
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sql := fmt.Sprintf("SELECT C%d FROM T", (g*7+i)%16)
				if _, _, err := c.Get(context.Background(), sqlparser.Front{}, sql, translator.ModeText, compile); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := c.Stats()
	if s.Size > maxEntries {
		t.Fatalf("size %d exceeds bound %d", s.Size, maxEntries)
	}
	if s.Evictions == 0 {
		t.Fatal("churn over 16 keys with 4 slots produced no evictions")
	}
	if s.Misses+s.Hits+s.Shared != 8*200 {
		t.Fatalf("lookup accounting off: %+v", s)
	}
}

// TestInvalidationDuringChurn interleaves Invalidate with concurrent
// lookups: no artifact compiled against a pre-flush epoch may be served
// after the flush settles, and the cache must stay internally consistent.
func TestInvalidationDuringChurn(t *testing.T) {
	var gen atomic.Uint64
	c := New(Config{Generation: gen.Load})
	compile := func(ctx context.Context, sql string) (*CompiledQuery, error) {
		return &CompiledQuery{SQL: sql}, nil
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sql := fmt.Sprintf("SELECT C%d FROM T", i%8)
				cq, _, err := c.Get(context.Background(), sqlparser.Front{}, sql, translator.ModeText, compile)
				if err != nil {
					t.Error(err)
					return
				}
				if cq.SQL != sql {
					t.Errorf("got artifact for %q, want %q", cq.SQL, sql)
					return
				}
			}
		}(g)
	}
	// The invalidator plays the catalog refresher: bump the generation and
	// flush, repeatedly, mid-churn.
	for i := 0; i < 50; i++ {
		gen.Add(1)
		c.Invalidate()
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	s := c.Stats()
	if s.Invalidations != 50 {
		t.Fatalf("invalidations = %d", s.Invalidations)
	}
	if s.Generation != gen.Load() {
		t.Fatalf("generation = %d, want %d", s.Generation, gen.Load())
	}
}

// TestConcurrentStatsAndGet pins that Stats() can be scraped while the
// cache is being populated and flushed (the aqlshell \q path).
func TestConcurrentStatsAndGet(t *testing.T) {
	c := New(Config{MaxEntries: 8})
	compile := func(ctx context.Context, sql string) (*CompiledQuery, error) {
		return &CompiledQuery{SQL: sql}, nil
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				switch i % 3 {
				case 0:
					sql := fmt.Sprintf("SELECT C%d FROM T", i%12)
					if _, _, err := c.Get(context.Background(), sqlparser.Front{}, sql, translator.ModeText, compile); err != nil {
						t.Error(err)
						return
					}
				case 1:
					_ = c.Stats()
				case 2:
					if _, ok := c.Peek(sqlparser.Front{}, "SELECT C0 FROM T", translator.ModeText); ok {
						continue
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
