package qcache

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/obsv"
	"repro/internal/sqlparser"
	"repro/internal/translator"
)

// fakeCompile returns a CompileFunc that fabricates artifacts and counts
// invocations — cache-mechanics tests don't need a real translation.
func fakeCompile(calls *int) CompileFunc {
	return func(ctx context.Context, sql string) (*CompiledQuery, error) {
		*calls++
		return &CompiledQuery{SQL: sql}, nil
	}
}

func TestNormalizeCanonicalizes(t *testing.T) {
	spellings := []string{
		"SELECT CUSTOMERID FROM CUSTOMERS",
		"select customerid from customers",
		"SELECT\n\tCUSTOMERID\n FROM   CUSTOMERS",
	}
	first, err := (sqlparser.Front{}).Normalize(spellings[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spellings[1:] {
		got, err := (sqlparser.Front{}).Normalize(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("Normalize(%q) = %q, want %q", s, got, first)
		}
	}
}

func TestNormalizeDistinguishesTokenTypes(t *testing.T) {
	// A delimited identifier spelled like a keyword must not key with the
	// keyword; likewise a string literal spelled like an identifier.
	pairs := [][2]string{
		{`SELECT A FROM T`, `SELECT "A" FROM T`},
		{`SELECT A FROM T WHERE B = 'C'`, `SELECT A FROM T WHERE B = C`},
		{`SELECT A FROM T WHERE B = 1`, `SELECT A FROM T WHERE B = '1'`},
	}
	for _, p := range pairs {
		a, err := (sqlparser.Front{}).Normalize(p[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := (sqlparser.Front{}).Normalize(p[1])
		if err != nil {
			t.Fatal(err)
		}
		if a == b {
			t.Fatalf("%q and %q normalized identically: %q", p[0], p[1], a)
		}
	}
}

func TestGetCachesByNormalizedSQL(t *testing.T) {
	c := New(Config{})
	calls := 0
	get := func(sql string) *CompiledQuery {
		cq, _, err := c.Get(context.Background(), sqlparser.Front{}, sql, translator.ModeText, fakeCompile(&calls))
		if err != nil {
			t.Fatal(err)
		}
		return cq
	}
	first := get("SELECT CUSTOMERID FROM CUSTOMERS")
	same := get("select  customerid  from customers") // re-spelled, same key
	if calls != 1 {
		t.Fatalf("compile ran %d times, want 1", calls)
	}
	if first != same {
		t.Fatal("re-spelled statement did not reuse the artifact")
	}
	if first.NormalizedSQL == "" {
		t.Fatal("cached artifact missing NormalizedSQL")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.Size != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestModeSplitsTheKey(t *testing.T) {
	c := New(Config{})
	calls := 0
	for _, mode := range []translator.ResultMode{translator.ModeText, translator.ModeXML} {
		if _, _, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", mode, fakeCompile(&calls)); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Fatalf("modes shared one artifact (compile ran %d times)", calls)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	calls := 0
	get := func(sql string) {
		if _, _, err := c.Get(context.Background(), sqlparser.Front{}, sql, translator.ModeText, fakeCompile(&calls)); err != nil {
			t.Fatal(err)
		}
	}
	get("SELECT A FROM T")
	get("SELECT B FROM T")
	get("SELECT A FROM T") // promote A
	get("SELECT C FROM T") // evicts B, the least recently used
	if s := c.Stats(); s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats = %+v", s)
	}
	before := calls
	get("SELECT A FROM T") // still cached
	if calls != before {
		t.Fatal("promoted entry was evicted")
	}
	get("SELECT B FROM T") // evicted: recompiles
	if calls != before+1 {
		t.Fatal("evicted entry was still cached")
	}
}

func TestNegativeMaxEntriesDisablesCaching(t *testing.T) {
	c := New(Config{MaxEntries: -1})
	calls := 0
	for i := 0; i < 3; i++ {
		cq, hit, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", translator.ModeText, fakeCompile(&calls))
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("bypass mode reported a hit")
		}
		if cq.NormalizedSQL == "" {
			t.Fatal("bypass mode should still normalize for callers")
		}
	}
	if calls != 3 {
		t.Fatalf("compile ran %d times, want 3", calls)
	}
	if s := c.Stats(); s.Size != 0 {
		t.Fatalf("bypass mode cached: %+v", s)
	}
}

func TestFailuresAreNotCached(t *testing.T) {
	c := New(Config{})
	calls := 0
	boom := errors.New("boom")
	fail := func(ctx context.Context, sql string) (*CompiledQuery, error) {
		calls++
		return nil, boom
	}
	for i := 0; i < 2; i++ {
		if _, _, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", translator.ModeText, fail); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failure was cached (compile ran %d times)", calls)
	}
	if s := c.Stats(); s.Size != 0 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUnlexableSQLBypassesCache(t *testing.T) {
	c := New(Config{})
	calls := 0
	boom := errors.New("parse boom")
	fail := func(ctx context.Context, sql string) (*CompiledQuery, error) {
		calls++
		return nil, boom
	}
	bad := "SELECT 'unterminated FROM T"
	if _, err := (sqlparser.Front{}).Normalize(bad); err == nil {
		t.Fatal("test needs SQL that fails to lex")
	}
	if _, _, err := c.Get(context.Background(), sqlparser.Front{}, bad, translator.ModeText, fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v (compile's canonical error should surface)", err)
	}
	if calls != 1 {
		t.Fatalf("compile ran %d times", calls)
	}
	if s := c.Stats(); s.Misses != 0 {
		t.Fatalf("bypassed lookup counted as a miss: %+v", s)
	}
}

func TestInvalidateFlushesAndRecompiles(t *testing.T) {
	c := New(Config{})
	calls := 0
	get := func() {
		if _, _, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", translator.ModeText, fakeCompile(&calls)); err != nil {
			t.Fatal(err)
		}
	}
	get()
	c.Invalidate()
	if s := c.Stats(); s.Size != 0 || s.Invalidations != 1 {
		t.Fatalf("stats = %+v", s)
	}
	get()
	if calls != 2 {
		t.Fatalf("compile ran %d times, want 2 (flush must recompile)", calls)
	}
}

func TestGenerationRetiresArtifacts(t *testing.T) {
	var gen uint64
	c := New(Config{Generation: func() uint64 { return gen }})
	calls := 0
	get := func() {
		if _, _, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", translator.ModeText, fakeCompile(&calls)); err != nil {
			t.Fatal(err)
		}
	}
	get()
	get()
	if calls != 1 {
		t.Fatalf("same generation recompiled (%d)", calls)
	}
	gen++ // the catalog changed underneath
	get()
	if calls != 2 {
		t.Fatalf("generation bump did not retire the artifact (%d compiles)", calls)
	}
	if s := c.Stats(); s.Generation != gen {
		t.Fatalf("stats generation = %d, want %d", s.Generation, gen)
	}
}

func TestInvalidateDuringFlightDropsArtifact(t *testing.T) {
	c := New(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		_, _, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", translator.ModeText,
			func(ctx context.Context, sql string) (*CompiledQuery, error) {
				close(entered)
				<-release
				return &CompiledQuery{SQL: sql}, nil
			})
		if err != nil {
			t.Error(err)
		}
	}()
	<-entered
	c.Invalidate() // flush while the compile is still in flight
	close(release)
	<-finished

	// The in-flight artifact must not land in the post-flush cache.
	calls := 0
	if _, _, err := c.Get(context.Background(), sqlparser.Front{}, "SELECT A FROM T", translator.ModeText, fakeCompile(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("stale in-flight artifact survived Invalidate")
	}
}

func TestCompileBuildsFullArtifact(t *testing.T) {
	app, _, engine := demo.Setup(demo.Sizes{Customers: 4, PaymentsPerCustomer: 1, Orders: 2, ItemsPerOrder: 1})
	tr := translator.New(catalog.NewCache(app))
	tr.Options.Mode = translator.ModeText
	tr.Options.DefaultCatalog = app.Name

	trace := obsv.NewTrace("")
	cq, err := Compile(context.Background(), tr, engine, sqlparser.Front{}, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?", trace)
	if err != nil {
		t.Fatal(err)
	}
	if cq.Plan == nil || cq.Res == nil || cq.Trace == nil {
		t.Fatalf("incomplete artifact: %+v", cq)
	}
	if got := cq.ExternalVars(); len(got) != 1 || got[0] != "p1" {
		t.Fatalf("external vars = %v", got)
	}
	if !strings.Contains(cq.XQuery(), "ns0:CUSTOMERS()") {
		t.Fatalf("serialized form missing data service call:\n%s", cq.XQuery())
	}
	var sawCompile bool
	for _, ev := range trace.Stages() {
		if ev.Stage == obsv.StageCompile {
			sawCompile = true
		}
	}
	if !sawCompile {
		t.Fatal("trace missing the compile stage span")
	}
}

func TestCompileRejectsUncheckableQuery(t *testing.T) {
	app, _, engine := demo.Setup(demo.Sizes{Customers: 1, PaymentsPerCustomer: 1, Orders: 1, ItemsPerOrder: 1})
	tr := translator.New(catalog.NewCache(app))
	tr.Options.Mode = translator.ModeText
	tr.Options.DefaultCatalog = app.Name
	// The translator resolves names against the catalog, so a bad table
	// fails before the static check; this pins that Compile propagates it.
	if _, err := Compile(context.Background(), tr, engine, sqlparser.Front{}, "SELECT X FROM NO_SUCH_TABLE", obsv.NewTrace("")); err == nil {
		t.Fatal("expected error for unknown table")
	}
}
