// Package qcache is the compiled-query layer: it turns the translator's
// output into a first-class CompiledQuery artifact (translation + static
// check + immutable evaluator plan, with the compile-time stage trace
// attached) and caches those artifacts process-shared, keyed by
// (dialect, normalized query text, result mode, catalog generation,
// statistics generation).
//
// The paper's architecture puts a textual XQuery boundary between the
// JDBC driver and the DSP server: the driver serializes the generated
// query, the server re-parses, re-checks, and re-plans it on every
// statement. In-process, that boundary is pure waste. This package ends
// it: the translator's xquery AST is handed to the evaluator directly
// (xqeval.Engine.CompileAST — check + plan, no parse), and the finished
// artifact is reused across repeated statements, connections, and the
// facade. The textual serialize∘parse path survives as the sql2xq/xqrun
// process boundary and as the differential oracle the tests compare
// against.
//
// Cache semantics:
//
//   - keying — the query text is normalized by its own front end
//     (qfront.Frontend.Normalize: case-folded keywords and identifiers,
//     collapsed whitespace and comments), so trivially re-spelled
//     statements share one artifact; the dialect, result mode, and the
//     catalog's metadata generation complete the key, so two dialects
//     can never collide on identical text and a catalog invalidation, a
//     refresh that changes a table, or a degradation event silently
//     retires every artifact compiled before it;
//   - single-flight population — concurrent misses on one key share one
//     compile;
//   - size bounds — at most MaxEntries artifacts are retained, evicted in
//     least-recently-used order;
//   - failures are never cached — a statement that fails to translate or
//     check recompiles (and re-fails) on each attempt, matching the
//     catalog cache's rule that only answers are cacheable.
package qcache

import (
	"container/list"
	"context"
	"strconv"
	"sync"

	"repro/internal/obsv"
	"repro/internal/qfront"
	"repro/internal/translator"
	"repro/internal/xqeval"
)

// DefaultMaxEntries bounds the cache when Config.MaxEntries is zero.
const DefaultMaxEntries = 256

// CompiledQuery is the compiled artifact every execution layer consumes:
// the completed translation (generated AST, result schema, parameter
// info, query contexts), the evaluator's immutable plan, and the stage
// trace recorded while compiling. It is immutable after Compile returns;
// any number of concurrent evaluations may share it.
type CompiledQuery struct {
	// Dialect names the front end the statement text is written in.
	Dialect qfront.Dialect
	// SQL is the statement text the artifact was compiled from, in the
	// artifact's dialect (the field predates the second front end).
	SQL string
	// NormalizedSQL is the canonical key form (set when cached).
	NormalizedSQL string
	// Mode is the §4 result-handling mode the query was generated for.
	Mode translator.ResultMode
	// Generation is the catalog metadata epoch the artifact was keyed
	// under (zero when the metadata source does not version itself).
	Generation uint64
	// StatsGen is the evaluator's source-statistics epoch the artifact's
	// plan was costed under; a stats refresh retires the cache entry.
	StatsGen uint64
	// Res is the completed translation: AST, result schema, contexts.
	Res *translator.Result
	// Plan is the evaluator's immutable execution plan over Res.Query. It
	// carries the streaming decomposition (Plan.Stream) built at compile
	// time, so a cached statement streams rows without re-analyzing the
	// query shape on each execution.
	Plan *xqeval.Plan
	// Trace holds the compile-time stage spans (lex … serialize, compile);
	// EXPLAIN renders it instead of re-translating.
	Trace *obsv.Trace
	// Sources lists the federation backends the statement's table
	// references resolved against, in first-touch order (nil outside a
	// federation). SourceGens records the per-source generation each was
	// at when the artifact was stored; a hit revalidates them so one
	// backend's invalidation retires only the artifacts that touched it.
	Sources    []string
	SourceGens map[string]uint64
	// CostScore is the plan's admission score (Plan.CostEstimate), computed
	// once at compile time so cost-aware admission is cache-hot: the server
	// weighs a statement without touching the plan again.
	CostScore int64
}

// Cost returns the artifact's admission score, always ≥ 1.
func (cq *CompiledQuery) Cost() int64 {
	if cq == nil || cq.CostScore < 1 {
		return 1
	}
	return cq.CostScore
}

// XQuery serializes the generated query — the textual form the legacy
// boundary ships; the compiled path never needs it to execute.
func (cq *CompiledQuery) XQuery() string { return cq.Res.XQuery() }

// ExternalVars lists the external variable names ($p1…$pN) the artifact's
// plan expects bound at evaluation time.
func (cq *CompiledQuery) ExternalVars() []string { return externalVars(cq.Res.ParamCount) }

// Streamable reports whether executions of this artifact deliver rows
// through a pull cursor (compile-time decomposition succeeded) rather than
// materializing the full result before the first row.
func (cq *CompiledQuery) Streamable() bool { return cq.Plan.Stream.Streamable() }

func externalVars(n int) []string {
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "p" + strconv.Itoa(i+1)
	}
	return out
}

// Compile runs the whole compile pipeline once: translate (traced), then
// statically check and plan the generated AST against the engine —
// recorded as the compile stage span. It is the canonical CompileFunc
// body; callers wrap it to choose the translator and trace hook.
func Compile(ctx context.Context, tr *translator.Translator, engine *xqeval.Engine, fe qfront.Frontend, text string, trace *obsv.Trace) (*CompiledQuery, error) {
	res, err := tr.TranslateFrontend(ctx, fe, text, trace)
	if err != nil {
		return nil, err
	}
	sp := trace.StartStage(obsv.StageCompile)
	sp.SetInput(len(text))
	plan, err := engine.CompileAST(res.Query, externalVars(res.ParamCount))
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Add("external", int64(res.ParamCount))
	sp.End()
	return &CompiledQuery{Dialect: fe.Dialect(), SQL: text, Mode: res.Mode, Res: res, Plan: plan, Trace: trace, CostScore: plan.CostEstimate()}, nil
}

// GenerationSource is the metadata-versioning surface the cache keys on;
// catalog.Cache implements it.
type GenerationSource interface {
	Generation() uint64
}

// CompileFunc populates one cache miss. It receives the original (not
// normalized) query text.
type CompileFunc func(ctx context.Context, sql string) (*CompiledQuery, error)

// Config parameterizes a Cache.
type Config struct {
	// MaxEntries bounds the cache (LRU eviction beyond it). Zero means
	// DefaultMaxEntries; negative disables caching entirely — every Get
	// compiles (the degraded configuration, for memory-starved embedders).
	MaxEntries int
	// Generation supplies the catalog metadata epoch for keying; nil pins
	// generation zero (unversioned metadata).
	Generation func() uint64
	// StatsGeneration supplies the evaluator's source-statistics epoch
	// (xqeval.Engine.StatsGeneration); nil pins it to zero. Keying on it
	// retires artifacts whose plans were costed against stale statistics:
	// the next Get recompiles and picks up the fresh numbers.
	StatsGeneration func() uint64
	// SourceGeneration supplies the per-backend epoch for one named
	// federation source (typically the backend's metadata generation plus
	// its source-scoped statistics generation — both monotonic, so their
	// sum changes whenever either does). When set, cache hits revalidate
	// every source the artifact touched, so invalidating one backend
	// retires only the artifacts compiled against it while the rest of
	// the cache stays warm. Nil disables per-source validation (the
	// single-source configuration, where the global Generation covers
	// everything).
	SourceGeneration func(source string) uint64
}

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Shared        int64
	Evictions     int64
	Invalidations int64
	// SourceRetirements counts entries dropped because one of their
	// federation sources advanced its generation since the store.
	SourceRetirements int64
	// Size is the current entry count; MaxEntries the configured bound.
	Size       int
	MaxEntries int
	// Generation is the metadata epoch current lookups key under;
	// StatsGeneration is the statistics epoch.
	Generation      uint64
	StatsGeneration uint64
}

// Key identifies one cached artifact. Dialect is part of the key, so
// identical query text submitted under two front ends can never share
// (or clobber) an artifact.
type Key struct {
	Dialect    qfront.Dialect
	SQL        string // normalized form, in the key's dialect
	Mode       translator.ResultMode
	Generation uint64
	// StatsGen is the source-statistics epoch the artifact's plan was
	// costed under.
	StatsGen uint64
}

// Cache is the shared compiled-query cache. It is safe for concurrent
// use; one instance is shared by every connection of a driver Server and
// by the facade of the owning Platform.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used; values are *entry
	flights map[Key]*flight
	epoch   uint64 // advanced by Invalidate; in-flight compiles from an older epoch are not stored
	stats   Stats
}

type entry struct {
	key Key
	cq  *CompiledQuery
}

// flight is one in-progress compile; concurrent lookups of the same key
// wait on done and share the result.
type flight struct {
	done chan struct{}
	cq   *CompiledQuery
	err  error
}

// New builds a cache with the given configuration.
func New(cfg Config) *Cache {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	return &Cache{
		cfg:     cfg,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		flights: make(map[Key]*flight),
	}
}

func (c *Cache) generation() uint64 {
	if c.cfg.Generation == nil {
		return 0
	}
	return c.cfg.Generation()
}

func (c *Cache) statsGeneration() uint64 {
	if c.cfg.StatsGeneration == nil {
		return 0
	}
	return c.cfg.StatsGeneration()
}

// Get returns the compiled artifact for sql in the given mode, compiling
// (at most once per key, however many callers race) on a miss. hit
// reports whether the artifact was reused — from the cache or from
// another caller's in-flight compile — rather than compiled by this call.
// SQL that does not lex bypasses the cache so compile surfaces the
// canonical error.
func (c *Cache) Get(ctx context.Context, fe qfront.Frontend, text string, mode translator.ResultMode, compile CompileFunc) (*CompiledQuery, bool, error) {
	norm, err := fe.Normalize(text)
	if err != nil {
		cq, cerr := compile(ctx, text)
		return cq, false, cerr
	}
	if c.cfg.MaxEntries < 0 {
		cq, cerr := compile(ctx, text)
		if cq != nil {
			cq.NormalizedSQL = norm
		}
		return cq, false, cerr
	}
	// The generation reads happen before c.mu so a Generation func that
	// consults other locks (the platform's metadata stack) never nests
	// inside the cache's.
	key := Key{Dialect: fe.Dialect(), SQL: norm, Mode: mode, Generation: c.generation(), StatsGen: c.statsGeneration()}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		cq := el.Value.(*entry).cq
		if len(cq.SourceGens) == 0 || c.cfg.SourceGeneration == nil {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			c.mu.Unlock()
			obsv.Global.CompileCacheHits.Inc()
			return cq, true, nil
		}
		// Per-source validation calls the SourceGeneration func, which may
		// take platform locks — release c.mu around it, like the key reads.
		c.mu.Unlock()
		fresh := c.sourcesFresh(cq)
		c.mu.Lock()
		if fresh {
			if el, ok := c.entries[key]; ok {
				c.lru.MoveToFront(el)
			}
			c.stats.Hits++
			c.mu.Unlock()
			obsv.Global.CompileCacheHits.Inc()
			return cq, true, nil
		}
		// One of the artifact's backends invalidated: retire this entry
		// (only this entry — artifacts over other sources stay warm) and
		// fall through to the miss path.
		if el, ok := c.entries[key]; ok && el.Value.(*entry).cq == cq {
			c.lru.Remove(el)
			delete(c.entries, key)
			c.stats.SourceRetirements++
			c.reportSizeLocked()
		}
	}
	if fl, ok := c.flights[key]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		obsv.Global.CompileCacheShared.Inc()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if fl.err != nil {
			return nil, false, fl.err
		}
		return fl.cq, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	epoch := c.epoch
	c.stats.Misses++
	c.mu.Unlock()
	obsv.Global.CompileCacheMisses.Inc()

	cq, err := compile(ctx, text)
	if err == nil {
		// Stamp the per-source generations the artifact was stored under.
		// The sources are only known after translation, so the gens are
		// read post-compile: an invalidation racing the compile can stamp
		// a generation the compile's lookups mostly preceded — the same
		// narrow window the global key accepts between its pre-compile
		// read and the store, and closed the same way (the next
		// invalidation advances the gen again and retires the entry).
		c.stampSources(cq)
	}

	c.mu.Lock()
	if err == nil {
		cq.NormalizedSQL = norm
		cq.Generation = key.Generation
		cq.StatsGen = key.StatsGen
		if c.epoch == epoch {
			c.storeLocked(key, cq)
		}
	}
	fl.cq, fl.err = cq, err
	delete(c.flights, key)
	c.mu.Unlock()
	close(fl.done)
	return cq, false, err
}

// stampSources copies the translation's resolved source list onto the
// artifact and records each source's current generation. Called outside
// c.mu (the SourceGeneration func may take platform locks).
func (c *Cache) stampSources(cq *CompiledQuery) {
	if c.cfg.SourceGeneration == nil || cq == nil || cq.Res == nil || len(cq.Res.Sources) == 0 {
		return
	}
	cq.Sources = cq.Res.Sources
	cq.SourceGens = make(map[string]uint64, len(cq.Sources))
	for _, s := range cq.Sources {
		cq.SourceGens[s] = c.cfg.SourceGeneration(s)
	}
}

// sourcesFresh reports whether every backend the artifact touched is
// still at the generation it was stored under. Called outside c.mu.
func (c *Cache) sourcesFresh(cq *CompiledQuery) bool {
	for s, gen := range cq.SourceGens {
		if c.cfg.SourceGeneration(s) != gen {
			return false
		}
	}
	return true
}

// Peek reports whether an artifact for text/mode in fe's dialect is
// cached under the current generation, without populating or promoting
// it.
func (c *Cache) Peek(fe qfront.Frontend, text string, mode translator.ResultMode) (*CompiledQuery, bool) {
	norm, err := fe.Normalize(text)
	if err != nil || c.cfg.MaxEntries < 0 {
		return nil, false
	}
	key := Key{Dialect: fe.Dialect(), SQL: norm, Mode: mode, Generation: c.generation(), StatsGen: c.statsGeneration()}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	cq := el.Value.(*entry).cq
	c.mu.Unlock()
	if len(cq.SourceGens) > 0 && c.cfg.SourceGeneration != nil && !c.sourcesFresh(cq) {
		return nil, false
	}
	return cq, true
}

// storeLocked inserts (or refreshes) an artifact and evicts beyond the
// size bound. Callers hold c.mu.
func (c *Cache) storeLocked(key Key, cq *CompiledQuery) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).cq = cq
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, cq: cq})
	for c.lru.Len() > c.cfg.MaxEntries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.stats.Evictions++
		obsv.Global.CompileCacheEvictions.Inc()
	}
	c.reportSizeLocked()
}

// reportSizeLocked keeps the process-wide size gauge in step with this
// cache's contribution. Callers hold c.mu.
func (c *Cache) reportSizeLocked() {
	if delta := c.lru.Len() - c.stats.Size; delta != 0 {
		obsv.Global.CompileCacheSize.Add(int64(delta))
	}
	c.stats.Size = c.lru.Len()
}

// Invalidate drops every cached artifact (a data service redeployment,
// resilience-layer rebuild, or explicit flush). In-flight compiles that
// started before the flush complete but are not stored.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*list.Element)
	c.lru = list.New()
	c.epoch++
	c.stats.Invalidations++
	obsv.Global.CompileCacheInvalidations.Inc()
	c.reportSizeLocked()
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() Stats {
	gen := c.generation()
	sgen := c.statsGeneration()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.lru.Len()
	s.MaxEntries = c.cfg.MaxEntries
	s.Generation = gen
	s.StatsGeneration = sgen
	return s
}
