// Package driver implements the Go analog of the paper's JDBC driver: a
// database/sql/driver over the SQL-to-XQuery translator and an XQuery
// engine. SQL arrives through the standard database/sql API, is translated
// per statement (once, at Prepare time — the prepared-statement path), and
// executes against the registered in-memory DSP stand-in.
//
// Beyond SELECT, the driver supports the metadata-browsing and
// stored-procedure surfaces reporting tools use:
//
//	SHOW CATALOGS / SHOW SCHEMAS / SHOW TABLES / SHOW PROCEDURES
//	SHOW COLUMNS FROM <table>
//	CALL <function>(args…)   — parameterized data service functions
//
// The DSN names a registered server, optionally selecting the §4 result
// mode and the query dialect: "demo", "demo?mode=text" (default),
// "demo?mode=xml", "demo?dialect=path" (default "sql").
package driver

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/qcache"
	"repro/internal/qfront"
	"repro/internal/xqeval"
)

// Server is one AquaLogic-style deployment: the application metadata and
// the engine serving its data service functions.
type Server struct {
	App    *catalog.Application
	Engine *xqeval.Engine
	// Meta optionally overrides the metadata source seen by translators
	// (e.g. a latency-simulating catalog.Remote). Defaults to App.
	Meta catalog.Source
	// Cache optionally supplies the server's shared compiled-query cache
	// (the Platform facade passes its own, so facade queries and driver
	// statements share one artifact pool). When nil, a server-private
	// cache is built on first use, keyed on Meta's metadata generation
	// when Meta versions itself.
	Cache *qcache.Cache
	// DefineView, when set, enables the CREATE VIEW statement: it should
	// register a logical data service for the given schema path, view
	// name, and SELECT body (the Platform facade wires its DefineView
	// here).
	DefineView func(path, name, sql string) error
	// QueryTimeout, when positive, bounds every statement execution that
	// arrives without its own deadline — including the non-context
	// Query/Exec paths, which database/sql cannot otherwise cancel.
	QueryTimeout time.Duration

	cacheMu sync.Mutex
}

func (s *Server) metaSource() catalog.Source {
	if s.Meta != nil {
		return s.Meta
	}
	return s.App
}

// compileCache returns the server's shared compiled-query cache, building
// a private one lazily when the embedder supplied none. Every connection
// of the server populates and consumes the same cache: a statement
// prepared on one connection is a compile-cache hit on all of them.
func (s *Server) compileCache() *qcache.Cache {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if s.Cache == nil {
		cfg := qcache.Config{}
		if gs, ok := s.metaSource().(qcache.GenerationSource); ok {
			cfg.Generation = gs.Generation
		}
		s.Cache = qcache.New(cfg)
	}
	return s.Cache
}

var (
	registryMu sync.RWMutex
	registry   = map[string]*Server{}
)

// RegisterServer installs a server under a DSN name.
func RegisterServer(name string, s *Server) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = s
}

// lookupServer resolves a DSN name.
func lookupServer(name string) (*Server, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Driver implements driver.Driver.
type Driver struct{}

// Open implements driver.Driver.
func (Driver) Open(dsn string) (driver.Conn, error) {
	name := dsn
	mode := "text"
	dialect := qfront.DialectSQL
	if i := strings.IndexByte(dsn, '?'); i >= 0 {
		name = dsn[:i]
		for _, kv := range strings.Split(dsn[i+1:], "&") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("aqualogic: malformed DSN option %q", kv)
			}
			switch k {
			case "mode":
				if v != "text" && v != "xml" {
					return nil, fmt.Errorf("aqualogic: unknown result mode %q", v)
				}
				mode = v
			case "dialect":
				dialect = qfront.Dialect(v)
			default:
				return nil, fmt.Errorf("aqualogic: unknown DSN option %q", k)
			}
		}
	}
	fe, err := qfront.Lookup(dialect)
	if err != nil {
		return nil, fmt.Errorf("aqualogic: %v", err)
	}
	srv, ok := lookupServer(name)
	if !ok {
		return nil, fmt.Errorf("aqualogic: no registered server %q", name)
	}
	return newConn(srv, mode, fe), nil
}

func init() {
	sql.Register("aqualogic", Driver{})
}
