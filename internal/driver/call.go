package driver

import (
	"context"
	"database/sql/driver"
	"fmt"
	"strings"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/resultset"
	"repro/internal/sqlparser"
	"repro/internal/xdm"
)

// callStmt invokes a parameterized data service function — what the
// paper's Figure 2 surfaces as a SQL stored procedure. Both the bare and
// the JDBC-escape forms are accepted:
//
//	CALL getCustomerById(?)
//	{call getCustomerById(1003)}
type callStmt struct {
	conn     *conn
	meta     *catalog.TableMeta
	args     []callArg
	numInput int
}

// callArg is one argument: either a literal value or a parameter marker.
type callArg struct {
	value      xdm.Atomic // nil for parameter markers
	paramIndex int        // 1-based, 0 for literals
}

func newCallStmt(ctx context.Context, c *conn, query string) (driver.Stmt, error) {
	body := strings.TrimSpace(query)
	if strings.HasPrefix(body, "{") {
		body = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(body, "{"), "}"))
	}
	toks, err := sqlparser.Lex(body)
	if err != nil {
		return nil, err
	}
	// Expected shape: CALL name[.name…] ( arg, … )
	i := 0
	next := func() sqlparser.Token { t := toks[i]; i++; return t }
	t := next()
	if !strings.EqualFold(t.Text, "CALL") {
		return nil, fmt.Errorf("aqualogic: expected CALL, found %s", t)
	}
	var nameParts []string
	for {
		t = next()
		if t.Type != sqlparser.TokIdent && t.Type != sqlparser.TokQuotedIdent {
			return nil, fmt.Errorf("aqualogic: expected procedure name, found %s", t)
		}
		nameParts = append(nameParts, t.Text)
		if !toks[i].IsOp(".") {
			break
		}
		i++
	}
	s := &callStmt{conn: c}
	ref := tableRefFromName(strings.Join(nameParts, "."))
	meta, err := catalog.LookupContext(ctx, c.cache, ref)
	if err != nil {
		return nil, err
	}
	if meta.Function.IsTable() {
		return nil, fmt.Errorf("aqualogic: %s is a table, not a procedure; use SELECT", meta.Function.Name)
	}
	s.meta = meta

	if !next().IsOp("(") {
		return nil, fmt.Errorf("aqualogic: expected '(' after procedure name")
	}
	if toks[i].IsOp(")") {
		i++
	} else {
		for {
			t = next()
			arg := callArg{}
			switch t.Type {
			case sqlparser.TokParam:
				s.numInput++
				arg.paramIndex = s.numInput
			case sqlparser.TokInteger:
				v, err := xdm.ParseAtomic(t.Text, xdm.TypeInteger)
				if err != nil {
					return nil, err
				}
				arg.value = v
			case sqlparser.TokDecimal, sqlparser.TokFloat:
				v, err := xdm.ParseAtomic(t.Text, xdm.TypeDecimal)
				if err != nil {
					return nil, err
				}
				arg.value = v
			case sqlparser.TokString:
				arg.value = xdm.String(t.Text)
			default:
				return nil, fmt.Errorf("aqualogic: unsupported procedure argument %s", t)
			}
			s.args = append(s.args, arg)
			t = next()
			if t.IsOp(")") {
				break
			}
			if !t.IsOp(",") {
				return nil, fmt.Errorf("aqualogic: expected ',' or ')', found %s", t)
			}
		}
	}
	if toks[i].Type != sqlparser.TokEOF {
		return nil, fmt.Errorf("aqualogic: unexpected %s after CALL statement", toks[i])
	}
	if len(s.args) != len(meta.Function.Params) {
		return nil, fmt.Errorf("aqualogic: %s expects %d argument(s), got %d",
			meta.Function.Name, len(meta.Function.Params), len(s.args))
	}
	return s, nil
}

// Close implements driver.Stmt.
func (s *callStmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *callStmt) NumInput() int { return s.numInput }

// Exec implements driver.Stmt.
func (s *callStmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("aqualogic: CALL statements return rows; use Query")
}

// Query implements driver.Stmt: the function is invoked directly through
// the engine and its flat rows decode with the function's column schema.
func (s *callStmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.queryContext(context.Background(), args)
}

// QueryContext implements driver.StmtQueryContext for CALL statements.
func (s *callStmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	plain := make([]driver.Value, len(args))
	for i, a := range args {
		plain[i] = a.Value
	}
	return s.queryContext(ctx, plain)
}

func (s *callStmt) queryContext(ctx context.Context, args []driver.Value) (dr driver.Rows, err error) {
	defer aqerr.Recover("call", &err)
	ctx, cancel := s.conn.withTimeout(ctx)
	defer cancel()
	f := s.meta.Function
	callArgs := make([]xdm.Sequence, len(s.args))
	for i, a := range s.args {
		if a.paramIndex > 0 {
			if a.paramIndex > len(args) {
				return nil, fmt.Errorf("aqualogic: missing value for parameter %d", a.paramIndex)
			}
			v, err := toAtomic(args[a.paramIndex-1])
			if err != nil {
				return nil, err
			}
			callArgs[i] = xdm.SequenceOf(v)
		} else {
			callArgs[i] = xdm.SequenceOf(a.value)
		}
		// Cast to the declared parameter type when possible.
		if want := f.Params[i].Type.Atomic(); !callArgs[i].Empty() && want != xdm.TypeUntyped {
			if cast, err := xdm.Cast(callArgs[i][0].(xdm.Atomic), want); err == nil {
				callArgs[i] = xdm.SequenceOf(cast)
			}
		}
	}

	out, err := s.invoke(ctx, callArgs)
	if err != nil {
		return nil, aqerr.Wrap("call "+f.Name, err)
	}
	cols := make([]resultset.Column, len(f.Columns))
	for i, c := range f.Columns {
		cols[i] = resultset.Column{Label: c.Name, ElementName: c.Name, Type: c.Type, Nullable: c.Nullable}
	}
	// The function returns raw row elements; wrap them in a RECORDSET for
	// the XML decoder.
	rs := xdm.NewElement("RECORDSET")
	for _, it := range out {
		el, ok := it.(*xdm.Element)
		if !ok {
			return nil, fmt.Errorf("aqualogic: %s returned a non-element item", f.Name)
		}
		rec := xdm.NewElement("RECORD")
		for _, c := range el.Children {
			rec.AddChild(c)
		}
		rs.AddChild(rec)
	}
	rows, err := resultset.FromXML(xdm.SequenceOf(rs), cols)
	if err != nil {
		return nil, err
	}
	// Stored-procedure results are materialized by construction (the whole
	// function result is in hand); a cursor view joins them to the streaming
	// driver path.
	return &driverRows{cur: rows.Cursor()}, nil
}

func (s *callStmt) invoke(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
	return s.conn.engine.CallContext(ctx, s.meta.Function.Namespace, s.meta.Function.Name, args)
}
