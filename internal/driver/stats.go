package driver

import (
	"repro/internal/catalog"
	"repro/internal/obsv"
	"repro/internal/qcache"
)

// ConnStats is a point-in-time observability snapshot of one connection:
// the pipeline counters and per-stage timing histograms accumulated by
// every statement prepared and executed on it, plus its metadata-cache
// counters (§3.5) and the server-shared compile cache's counters (the
// Compile field aggregates across every connection of the server, since
// the compiled-query cache is shared). Process-wide totals live in
// obsv.Global.
type ConnStats struct {
	Pipeline obsv.Snapshot
	Cache    catalog.CacheStats
	Compile  qcache.Stats
}

// StatsReporter is implemented by this driver's connections, so embedders
// can scrape per-connection metrics through database/sql:
//
//	conn, _ := db.Conn(ctx)
//	conn.Raw(func(dc any) error {
//	    stats := dc.(driver.StatsReporter).Stats()
//	    …
//	    return nil
//	})
type StatsReporter interface {
	Stats() ConnStats
}

// Stats implements StatsReporter.
func (c *conn) Stats() ConnStats {
	return ConnStats{Pipeline: c.obs.Snapshot(), Cache: c.cache.Stats(),
		Compile: c.srv.compileCache().Stats()}
}

// observeStage folds a completed stage event into the connection's and
// the process-wide stage histograms — the hook every statement's trace
// carries.
func (c *conn) observeStage(ev obsv.StageEvent) {
	c.obs.ObserveStage(ev)
	if ev.Stage == obsv.StageEvaluate {
		c.obs.EvalSteps.Add(ev.DetailValue("steps"))
	}
	obsv.Global.ObserveStage(ev)
}
