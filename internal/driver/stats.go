package driver

import (
	"repro/internal/catalog"
	"repro/internal/obsv"
)

// ConnStats is a point-in-time observability snapshot of one connection:
// the pipeline counters and per-stage timing histograms accumulated by
// every statement prepared and executed on it, plus its metadata-cache
// counters (§3.5). Process-wide totals live in obsv.Global.
type ConnStats struct {
	Pipeline obsv.Snapshot
	Cache    catalog.CacheStats
}

// StatsReporter is implemented by this driver's connections, so embedders
// can scrape per-connection metrics through database/sql:
//
//	conn, _ := db.Conn(ctx)
//	conn.Raw(func(dc any) error {
//	    stats := dc.(driver.StatsReporter).Stats()
//	    …
//	    return nil
//	})
type StatsReporter interface {
	Stats() ConnStats
}

// Stats implements StatsReporter.
func (c *conn) Stats() ConnStats {
	return ConnStats{Pipeline: c.obs.Snapshot(), Cache: c.cache.Stats()}
}

// observeStage folds a completed stage event into the connection's and
// the process-wide stage histograms — the hook every statement's trace
// carries.
func (c *conn) observeStage(ev obsv.StageEvent) {
	c.obs.ObserveStage(ev)
	if ev.Stage == obsv.StageEvaluate {
		c.obs.EvalSteps.Add(ev.DetailValue("steps"))
	}
	obsv.Global.ObserveStage(ev)
}
