package driver

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/demo"
)

var registerOnce sync.Once

func openDemo(t *testing.T, opts string) *sql.DB {
	t.Helper()
	registerOnce.Do(func() {
		app, _, engine := demo.Setup(demo.DefaultSizes)
		RegisterServer("demo", &Server{App: app, Engine: engine})
	})
	db, err := sql.Open("aqualogic", "demo"+opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

var isolatedSeq atomic.Int64

// openIsolated registers a fresh demo server under a unique DSN and opens
// it: nothing is shared with other tests. The compile cache is per server,
// so tests asserting on cold-vs-warm compile or catalog behavior (EXPLAIN
// goldens, cache-effect lines, translate-once counters) must use this —
// on the shared "demo" server another test may already have compiled the
// same statement.
func openIsolated(t *testing.T, opts string) *sql.DB {
	t.Helper()
	app, _, engine := demo.Setup(demo.DefaultSizes)
	name := fmt.Sprintf("demo-isolated-%d", isolatedSeq.Add(1))
	RegisterServer(name, &Server{App: app, Engine: engine})
	db, err := sql.Open("aqualogic", name+opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestQueryThroughDatabaseSQL(t *testing.T) {
	db := openDemo(t, "")
	rows, err := db.Query("SELECT CUSTOMERID, CUSTOMERNAME, CITY FROM CUSTOMERS ORDER BY CUSTOMERID")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(cols, ",") != "CUSTOMERID,CUSTOMERNAME,CITY" {
		t.Fatalf("columns = %v", cols)
	}
	count := 0
	var lastID int64 = -1
	for rows.Next() {
		var id int64
		var name string
		var city sql.NullString
		if err := rows.Scan(&id, &name, &city); err != nil {
			t.Fatal(err)
		}
		if id <= lastID {
			t.Fatalf("ids not ascending: %d after %d", id, lastID)
		}
		lastID = id
		count++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if count != demo.DefaultSizes.Customers {
		t.Fatalf("rows = %d", count)
	}
}

func TestNullScanning(t *testing.T) {
	db := openDemo(t, "")
	rows, err := db.Query("SELECT CITY FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	sawNull, sawValue := false, false
	for rows.Next() {
		var city sql.NullString
		if err := rows.Scan(&city); err != nil {
			t.Fatal(err)
		}
		if city.Valid {
			sawValue = true
		} else {
			sawNull = true
		}
	}
	if !sawNull || !sawValue {
		t.Fatalf("sawNull=%v sawValue=%v (demo data has both)", sawNull, sawValue)
	}
}

func TestPreparedStatementReuse(t *testing.T) {
	db := openDemo(t, "")
	stmt, err := db.Prepare("SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for _, id := range []int{1000, 1001, 1002} {
		var name string
		if err := stmt.QueryRow(id).Scan(&name); err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
		if name == "" {
			t.Fatalf("id %d: empty name", id)
		}
	}
}

func TestAggregationThroughDriver(t *testing.T) {
	db := openDemo(t, "")
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM PAYMENTS").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected payments")
	}
	var total float64
	if err := db.QueryRow("SELECT SUM(PAYMENT) FROM PAYMENTS").Scan(&total); err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatalf("total = %v", total)
	}
}

func TestXMLModeMatchesTextMode(t *testing.T) {
	text := openDemo(t, "?mode=text")
	xml := openDemo(t, "?mode=xml")
	q := "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERID"
	collect := func(db *sql.DB) []string {
		rows, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var out []string
		for rows.Next() {
			var id int64
			var name string
			if err := rows.Scan(&id, &name); err != nil {
				t.Fatal(err)
			}
			out = append(out, name)
		}
		return out
	}
	a, b := collect(text), collect(xml)
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatal("text and XML modes disagree")
	}
}

func TestShowStatements(t *testing.T) {
	db := openDemo(t, "")

	var cat string
	if err := db.QueryRow("SHOW CATALOGS").Scan(&cat); err != nil {
		t.Fatal(err)
	}
	if cat != "TestApp" {
		t.Fatalf("catalog = %q", cat)
	}

	rows, err := db.Query("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	tables := 0
	for rows.Next() {
		var c, s, n, typ string
		if err := rows.Scan(&c, &s, &n, &typ); err != nil {
			t.Fatal(err)
		}
		if typ != "TABLE" {
			t.Fatalf("type = %q", typ)
		}
		tables++
	}
	rows.Close()
	if tables != 4 {
		t.Fatalf("tables = %d", tables)
	}

	rows, err = db.Query("SHOW COLUMNS FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	colCount := 0
	for rows.Next() {
		var name, typ, nullable string
		var pos int64
		if err := rows.Scan(&name, &typ, &nullable, &pos); err != nil {
			t.Fatal(err)
		}
		colCount++
	}
	rows.Close()
	if colCount != 4 {
		t.Fatalf("columns = %d", colCount)
	}

	rows, err = db.Query("SHOW PROCEDURES")
	if err != nil {
		t.Fatal(err)
	}
	procs := 0
	for rows.Next() {
		var c, s, n string
		var params int64
		if err := rows.Scan(&c, &s, &n, &params); err != nil {
			t.Fatal(err)
		}
		if n != "getCustomerById" || params != 1 {
			t.Fatalf("proc = %s(%d)", n, params)
		}
		procs++
	}
	rows.Close()
	if procs != 1 {
		t.Fatalf("procs = %d", procs)
	}

	if _, err := db.Query("SHOW NONSENSE"); err == nil {
		t.Fatal("unknown SHOW should fail")
	}
}

func TestCallProcedure(t *testing.T) {
	db := openDemo(t, "")
	var id int64
	var name string
	var city, signup sql.NullString
	err := db.QueryRow("CALL getCustomerById(?)", 1003).Scan(&id, &name, &city, &signup)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1003 || name == "" {
		t.Fatalf("got %d %q", id, name)
	}
	// Literal-argument and JDBC-escape forms.
	if err := db.QueryRow("CALL getCustomerById(1004)").Scan(&id, &name, &city, &signup); err != nil {
		t.Fatal(err)
	}
	if id != 1004 {
		t.Fatalf("id = %d", id)
	}
	if err := db.QueryRow("{call getCustomerById('1005')}").Scan(&id, &name, &city, &signup); err != nil {
		t.Fatal(err)
	}
	if id != 1005 {
		t.Fatalf("id = %d", id)
	}
}

func TestCallErrors(t *testing.T) {
	db := openDemo(t, "")
	if _, err := db.Query("CALL CUSTOMERS()"); err == nil || !strings.Contains(err.Error(), "is a table") {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Query("CALL getCustomerById()"); err == nil || !strings.Contains(err.Error(), "expects 1 argument") {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Query("CALL noSuchProc(1)"); err == nil {
		t.Fatal("unknown procedure should fail")
	}
}

func TestReadOnlyRefusals(t *testing.T) {
	db := openDemo(t, "")
	if _, err := db.Exec("SELECT * FROM CUSTOMERS"); err == nil {
		t.Fatal("Exec should be refused")
	}
	if _, err := db.Begin(); err == nil {
		t.Fatal("transactions should be refused")
	}
	if _, err := db.Query("INSERT INTO CUSTOMERS VALUES (1)"); err == nil {
		t.Fatal("non-SELECT should fail to parse")
	}
}

func TestBadDSN(t *testing.T) {
	if db, err := sql.Open("aqualogic", "nope"); err == nil {
		if err := db.Ping(); err == nil {
			t.Fatal("unknown server should fail")
		}
		db.Close()
	}
	if db, err := sql.Open("aqualogic", "demo?mode=bogus"); err == nil {
		if err := db.Ping(); err == nil {
			t.Fatal("bad mode should fail")
		}
		db.Close()
	}
	if db, err := sql.Open("aqualogic", "demo?nonsense"); err == nil {
		if err := db.Ping(); err == nil {
			t.Fatal("malformed option should fail")
		}
		db.Close()
	}
}

func TestSemanticErrorSurfacesAtPrepare(t *testing.T) {
	db := openDemo(t, "")
	_, err := db.Prepare("SELECT NOPE FROM CUSTOMERS")
	if err == nil || !strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := openDemo(t, "")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n int64
			if err := db.QueryRow("SELECT COUNT(*) FROM CUSTOMERS").Scan(&n); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestQueryContextCancellation(t *testing.T) {
	db := openDemo(t, "")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	// A triple cross join over the demo tables is far too large to finish
	// within the deadline.
	_, err := db.QueryContext(ctx, `
		SELECT COUNT(*) FROM CUSTOMERS A, CUSTOMERS B, CUSTOMERS C, PO_CUSTOMERS D`)
	if err == nil {
		t.Fatal("expected cancellation")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestExplainStatement(t *testing.T) {
	db := openDemo(t, "")
	rows, err := db.Query("EXPLAIN SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var lines []string
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	plan := strings.Join(lines, "\n")
	for _, want := range []string{
		"query contexts", "CTX0 (marker)", "CTX1:", "CTX2:",
		"generated XQuery", "let $tempvar", "RECORDSET",
	} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
	if _, err := db.Query("EXPLAIN SELECT NOPE FROM CUSTOMERS"); err == nil {
		t.Fatal("EXPLAIN of invalid SQL should fail")
	}
}

func TestColumnTypes(t *testing.T) {
	db := openDemo(t, "")
	rows, err := db.Query("SELECT CUSTOMERID, CUSTOMERNAME, CITY FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	types, err := rows.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	if types[0].DatabaseTypeName() != "INTEGER" || types[1].DatabaseTypeName() != "VARCHAR" {
		t.Fatalf("type names = %s, %s", types[0].DatabaseTypeName(), types[1].DatabaseTypeName())
	}
	if nullable, ok := types[0].Nullable(); !ok || nullable {
		t.Fatal("CUSTOMERID should be non-nullable")
	}
	if nullable, ok := types[2].Nullable(); !ok || !nullable {
		t.Fatal("CITY should be nullable")
	}
	// VARCHAR length facet (surfaced through DecimalSize, the
	// database/sql accessor for driver precision/scale).
	if p, _, ok := types[1].DecimalSize(); !ok || p != 64 {
		t.Fatalf("CUSTOMERNAME precision = %d ok=%v", p, ok)
	}
}

func TestColumnTypesDecimalFacets(t *testing.T) {
	db := openDemo(t, "")
	rows, err := db.Query("SELECT PAYMENT, CAST(PAYMENT AS DECIMAL(12, 3)) FROM PAYMENTS")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	types, err := rows.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	p, s, ok := types[0].DecimalSize()
	if !ok || p != 10 || s != 2 {
		t.Fatalf("PAYMENT facets = %d,%d ok=%v", p, s, ok)
	}
	p, s, ok = types[1].DecimalSize()
	if !ok || p != 12 || s != 3 {
		t.Fatalf("CAST facets = %d,%d ok=%v", p, s, ok)
	}
}

func TestTimeParameterAgainstDateColumn(t *testing.T) {
	db := openDemo(t, "")
	cutoff := time.Date(2004, 1, 1, 0, 0, 0, 0, time.UTC)
	var n int64
	err := db.QueryRow("SELECT COUNT(*) FROM CUSTOMERS WHERE SIGNUPDATE >= ?", cutoff).Scan(&n)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected signups on or after 2004")
	}
	var all int64
	if err := db.QueryRow("SELECT COUNT(*) FROM CUSTOMERS WHERE SIGNUPDATE IS NOT NULL").Scan(&all); err != nil {
		t.Fatal(err)
	}
	if n > all {
		t.Fatalf("filtered %d > total %d", n, all)
	}
}

func TestCreateViewWithoutHookRefused(t *testing.T) {
	db := openDemo(t, "")
	_, err := db.Exec("CREATE VIEW X AS SELECT 1")
	if err == nil || !strings.Contains(err.Error(), "does not support CREATE VIEW") {
		t.Fatalf("err = %v", err)
	}
}
