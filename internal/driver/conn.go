package driver

import (
	"context"
	"database/sql/driver"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/obsv"
	"repro/internal/qcache"
	"repro/internal/qfront"
	"repro/internal/resultset"
	"repro/internal/translator"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// conn is one connection: a translator with its own metadata cache (the
// paper's per-connection fetch-and-cache behavior) plus the execution
// engine and the per-connection metrics behind Stats(). Compiled-query
// artifacts are not per-connection: they live in the server's shared
// compile cache, so translation work done on any connection is reused by
// all of them.
type conn struct {
	srv        *Server
	engine     *xqeval.Engine
	translator *translator.Translator
	cache      *catalog.Cache
	mode       translator.ResultMode
	frontend   qfront.Frontend
	obs        *obsv.Metrics
	closed     bool
}

func newConn(srv *Server, mode string, fe qfront.Frontend) *conn {
	cache := catalog.NewCache(srv.metaSource())
	tr := translator.New(cache)
	tr.Options.DefaultCatalog = srv.App.Name
	if mode == "xml" {
		tr.Options.Mode = translator.ModeXML
	} else {
		tr.Options.Mode = translator.ModeText
	}
	return &conn{srv: srv, engine: srv.Engine, translator: tr, cache: cache,
		mode: tr.Options.Mode, frontend: fe, obs: &obsv.Metrics{}}
}

// compile resolves query through the server's shared compile cache,
// translating + checking + planning only on a miss (single-flight across
// racing connections). hit reports artifact reuse; only fresh compiles
// count toward the connection's QueriesTranslated.
func (c *conn) compile(ctx context.Context, query string) (cq *qcache.CompiledQuery, hit bool, err error) {
	cq, hit, err = c.srv.compileCache().Get(ctx, c.frontend, query, c.mode, func(ctx context.Context, text string) (*qcache.CompiledQuery, error) {
		tr := obsv.NewTrace(text)
		tr.Hook = c.observeStage
		return qcache.Compile(ctx, c.translator, c.engine, c.frontend, text, tr)
	})
	if err != nil {
		c.obs.TranslateErrors.Inc()
		return nil, false, err
	}
	if !hit {
		c.obs.QueriesTranslated.Inc()
	}
	return cq, hit, nil
}

// Prepare implements driver.Conn: statements translate once here and
// execute many times with different parameters.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext: translation-time
// metadata fetches observe the caller's deadline, and a panic anywhere in
// the translation pipeline surfaces as a typed SQL error instead of
// killing the embedding process.
func (c *conn) PrepareContext(ctx context.Context, query string) (st driver.Stmt, err error) {
	defer aqerr.Recover("prepare", &err)
	if c.closed {
		return nil, driver.ErrBadConn
	}
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	trimmed := strings.TrimSpace(query)
	upper := strings.ToUpper(trimmed)
	switch {
	case strings.HasPrefix(upper, "SHOW "):
		return newShowStmt(c, trimmed)
	case strings.HasPrefix(upper, "CALL ") || strings.HasPrefix(upper, "{CALL"):
		return newCallStmt(ctx, c, trimmed)
	case strings.HasPrefix(upper, "EXPLAIN "):
		return newExplainStmt(ctx, c, strings.TrimSpace(trimmed[len("EXPLAIN"):]))
	case strings.HasPrefix(upper, "CREATE VIEW "):
		return newCreateViewStmt(c, trimmed)
	}
	// Compile once through the server's shared cache: translate, statically
	// check, and plan the generated AST directly (no serialize→reparse).
	// The artifact is immutable, so one prepared statement can execute it
	// concurrently, and a repeat of the same statement — on this or any
	// other connection — reuses it without compiling.
	cq, _, err := c.compile(ctx, query)
	if err != nil {
		return nil, aqerr.Wrap("prepare", err)
	}
	return &stmt{conn: c, cq: cq}, nil
}

// withTimeout applies the server's QueryTimeout to contexts that carry no
// deadline of their own — how the non-context Query/Exec entry points
// (which reach here with context.Background()) still get bounded.
func (c *conn) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.srv.QueryTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, c.srv.QueryTimeout)
		}
	}
	return ctx, func() {}
}

// Close implements driver.Conn.
func (c *conn) Close() error {
	c.closed = true
	return nil
}

// Begin implements driver.Conn. The platform is read-only (XQuery 1.0 has
// no updates), so transactions are refused.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("aqualogic: transactions are not supported (data services are read-only)")
}

// stmt is a prepared SELECT holding its compiled-query artifact.
type stmt struct {
	conn *conn
	cq   *qcache.CompiledQuery
}

// Close implements driver.Stmt.
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *stmt) NumInput() int { return s.cq.Res.ParamCount }

// Exec implements driver.Stmt; the driver is read-only.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("aqualogic: only SELECT statements are supported")
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.queryContext(context.Background(), args)
}

// QueryContext implements driver.StmtQueryContext: the evaluation observes
// cancellation and deadlines at tuple boundaries.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	plain := make([]driver.Value, len(args))
	for i, a := range args {
		plain[i] = a.Value
	}
	return s.queryContext(ctx, plain)
}

func (s *stmt) queryContext(ctx context.Context, args []driver.Value) (dr driver.Rows, err error) {
	// A panic below (engine bug, malformed injected data) becomes a typed
	// internal error at this boundary instead of unwinding into database/sql.
	defer aqerr.Recover("query", &err)
	ctx, cancel := s.conn.withTimeout(ctx)
	// The evaluation outlives this call: rows stream out of a still-running
	// query, so the context's cancel transfers to the returned driver.Rows
	// (released by its Close). Cancel locally only on the error paths.
	defer func() {
		if err != nil {
			cancel()
		}
	}()
	ext := make(map[string]xdm.Sequence, len(args))
	for i, a := range args {
		v, err := toAtomic(a)
		if err != nil {
			return nil, fmt.Errorf("aqualogic: parameter %d: %v", i+1, err)
		}
		ext[fmt.Sprintf("p%d", i+1)] = xdm.SequenceOf(v)
	}
	// The trace is named by the source SQL, not the serialized XQuery: the
	// compiled path never needs the textual form to execute.
	tr := obsv.NewTrace(s.cq.SQL)
	tr.Hook = s.conn.observeStage
	cur := s.conn.engine.EvalStream(ctx, s.cq.Plan, ext, tr)
	// Priming pulls the first chunk, so errors raised before any row exists
	// (unbound sources, bad parameters, source faults at open) surface here
	// synchronously, as they did on the materialized path.
	if err := cur.Prime(); err != nil {
		cur.Close()
		return nil, aqerr.Wrap("query", err)
	}
	s.conn.obs.QueriesExecuted.Inc()
	cols := make([]resultset.Column, len(s.cq.Res.Columns))
	for i, c := range s.cq.Res.Columns {
		cols[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName,
			Type: c.Type, Nullable: c.Nullable, Precision: c.Precision, Scale: c.Scale}
	}
	var rc resultset.RowCursor
	if s.cq.Res.Mode == translator.ModeText {
		rc = resultset.StreamText(cur, cols)
	} else {
		rc = resultset.StreamXML(cur, cols)
	}
	// Decoding now interleaves with consumption, so the decode span brackets
	// the cursor's whole delivery window and closes with the row count.
	return &driverRows{cur: rc, conn: s.conn, cancel: cancel, sp: tr.StartStage(obsv.StageDecode)}, nil
}

// toAtomic converts a database/sql parameter to an atomic value.
func toAtomic(v driver.Value) (xdm.Atomic, error) {
	switch v := v.(type) {
	case int64:
		return xdm.Integer(v), nil
	case float64:
		return xdm.Double(v), nil
	case bool:
		return xdm.Boolean(v), nil
	case string:
		return xdm.String(v), nil
	case []byte:
		return xdm.String(string(v)), nil
	case time.Time:
		return xdm.DateTime{T: v}, nil
	case nil:
		return nil, fmt.Errorf("NULL parameters are not supported (comparisons with NULL are never true in SQL)")
	default:
		return nil, fmt.Errorf("unsupported parameter type %T", v)
	}
}

// driverRows adapts a pull row cursor to driver.Rows. Rows decode one at a
// time as database/sql's Rows.Next pulls them; Close terminates a
// still-running evaluation early by cancelling its context.
type driverRows struct {
	cur    resultset.RowCursor
	conn   *conn              // nil for ancillary statements (CALL)
	cancel context.CancelFunc // nil when no live evaluation is attached
	sp     *obsv.Span         // decode span, closed with the delivered row count
	n      int64              // rows delivered
	closed bool
}

// Columns implements driver.Rows.
func (r *driverRows) Columns() []string {
	cols := r.cur.Columns()
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Label
	}
	return out
}

// Close implements driver.Rows. It is idempotent and releases everything
// exactly once: the cursor (dropping buffered rows), then the evaluation
// context, so a result set abandoned mid-stream cancels the query instead
// of evaluating tuples nobody will read.
func (r *driverRows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.cur.Close()
	if r.cancel != nil {
		r.cancel()
	}
	if r.sp != nil {
		r.sp.SetOutput(int(r.n))
		r.sp.End()
	}
	if r.conn != nil {
		r.conn.obs.RowsStreamed.Add(r.n)
	}
	return err
}

// Next implements driver.Rows: one pull on the cursor per row. Errors that
// strike mid-stream (source faults, cancellation) surface here as typed
// query errors through sql.Rows.Err.
func (r *driverRows) Next(dest []driver.Value) error {
	if r.closed {
		return io.EOF
	}
	row, err := r.cur.Next()
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return aqerr.Wrap("query", err)
	}
	r.n++
	for i := range dest {
		if i >= len(row) {
			return fmt.Errorf("aqualogic: column index %d out of range (0..%d)", i, len(row)-1)
		}
		dest[i] = fromAtomic(row[i])
	}
	return nil
}

// ColumnTypeDatabaseTypeName implements driver.RowsColumnTypeDatabaseTypeName:
// rows.ColumnTypes() reports the SQL type of each output column.
func (r *driverRows) ColumnTypeDatabaseTypeName(index int) string {
	return r.cur.Columns()[index].Type.String()
}

// ColumnTypeNullable implements driver.RowsColumnTypeNullable.
func (r *driverRows) ColumnTypeNullable(index int) (nullable, ok bool) {
	return r.cur.Columns()[index].Nullable, true
}

// ColumnTypePrecisionScale implements driver.RowsColumnTypePrecisionScale
// for columns with declared facets (DECIMAL(p,s), VARCHAR(n)).
func (r *driverRows) ColumnTypePrecisionScale(index int) (precision, scale int64, ok bool) {
	c := r.cur.Columns()[index]
	if c.Precision == 0 && c.Scale == 0 {
		return 0, 0, false
	}
	return int64(c.Precision), int64(c.Scale), true
}

// fromAtomic converts an atomic value to a driver.Value.
func fromAtomic(v xdm.Atomic) driver.Value {
	switch v := v.(type) {
	case nil:
		return nil
	case xdm.Integer:
		return int64(v)
	case xdm.Decimal:
		return float64(v)
	case xdm.Double:
		return float64(v)
	case xdm.Boolean:
		return bool(v)
	case xdm.Date:
		return v.T
	case xdm.Time:
		return v.T
	case xdm.DateTime:
		return v.T
	default:
		return v.Lexical()
	}
}
