package driver

import (
	"context"
	"database/sql/driver"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMixedQueries drives one *sql.DB from many goroutines
// with a rotating workload. The pool hands out multiple driver
// connections and reuses prepared statements across goroutines, so this
// exercises conn, stmt, the per-connection metrics, and the shared
// catalog cache under -race.
func TestConcurrentMixedQueries(t *testing.T) {
	db := openDemo(t, "")
	queries := []string{
		"SELECT CUSTOMERID FROM CUSTOMERS",
		"SELECT CUSTOMERNAME, CITY FROM CUSTOMERS WHERE CUSTOMERID < 1025",
		"SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID",
		"SELECT COUNT(*) FROM PO_ITEMS",
	}

	const goroutines = 12
	const iters = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(g+i)%len(queries)]
				rows, err := db.Query(q)
				if err != nil {
					t.Errorf("query %q: %v", q, err)
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				if err := rows.Err(); err != nil {
					t.Errorf("rows %q: %v", q, err)
				}
				rows.Close()
				if n == 0 {
					t.Errorf("query %q returned no rows", q)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentSharedStmt reuses a single prepared statement from many
// goroutines — database/sql explicitly allows this, so the driver's Stmt
// (including the cached XQuery text and trace hooks) must be re-entrant.
func TestConcurrentSharedStmt(t *testing.T) {
	db := openDemo(t, "")
	stmt, err := db.Prepare("SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()

	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 10; i++ {
				var name string
				if err := stmt.QueryRow(1000 + (g*10+i)%50).Scan(&name); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
				if name == "" {
					t.Errorf("empty customer name")
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentStats interleaves queries with Stats() snapshots taken
// through sql.Conn.Raw — the documented way to read per-connection
// pipeline metrics — plus EXPLAIN traffic on other connections.
func TestConcurrentStats(t *testing.T) {
	db := openDemo(t, "")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rows, err := db.Query("EXPLAIN SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID > 5")
				if err != nil {
					t.Errorf("explain: %v", err)
					return
				}
				for rows.Next() {
				}
				rows.Close()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				conn, err := db.Conn(context.Background())
				if err != nil {
					t.Errorf("conn: %v", err)
					return
				}
				err = conn.Raw(func(dc any) error {
					st, ok := dc.(StatsReporter)
					if !ok {
						return fmt.Errorf("driver conn %T does not report stats", dc)
					}
					s := st.Stats()
					if s.Pipeline.QueriesTranslated < 0 {
						return fmt.Errorf("negative translate count")
					}
					return nil
				})
				if err != nil {
					t.Error(err)
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
}

// TestConnImplementsStatsReporter pins the Raw-accessible interface.
func TestConnImplementsStatsReporter(t *testing.T) {
	var _ StatsReporter = (*conn)(nil)
	var _ driver.Conn = (*conn)(nil)
}

// TestConcurrentPrepareStampede races many pool connections preparing the
// same cold statement: the server's shared compile cache must single-
// flight the compile — exactly one translation however many connections
// collide — and every statement must still execute correctly.
func TestConcurrentPrepareStampede(t *testing.T) {
	db := openIsolated(t, "")
	db.SetMaxOpenConns(16)

	const goroutines = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			var n int64
			if err := db.QueryRow("SELECT COUNT(*) FROM CUSTOMERS").Scan(&n); err != nil {
				t.Errorf("query: %v", err)
				return
			}
			if n == 0 {
				t.Error("no rows")
			}
		}()
	}
	close(start)
	wg.Wait()

	conn, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Raw(func(dc any) error {
		s := dc.(StatsReporter).Stats().Compile
		if s.Misses != 1 {
			return fmt.Errorf("stampede compiled %d times, want 1 (stats %+v)", s.Misses, s)
		}
		if s.Hits+s.Shared != goroutines-1 {
			return fmt.Errorf("hits=%d shared=%d, want %d reuses", s.Hits, s.Shared, goroutines-1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
