package driver

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the EXPLAIN golden files")

// explainCases are representative of each query shape the translator
// handles; each gets a golden file under testdata/explain capturing the
// full EXPLAIN output (stage trace, cache effect, query contexts,
// generated XQuery) with durations normalized out.
var explainCases = []struct {
	name string
	sql  string
}{
	{"simple", "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS"},
	{"wildcard", "SELECT * FROM CUSTOMERS"},
	{"join", "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID"},
	{"outerjoin", "SELECT A.CUSTOMERNAME, B.PAYMENT FROM CUSTOMERS A LEFT OUTER JOIN PAYMENTS B ON A.CUSTOMERID = B.CUSTID"},
	{"groupby", "SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1"},
	{"union", "SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS"},
	{"subquery", "SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10"},
	{"insubquery", "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS WHERE PAYMENT > 100)"},
	{"distinct_orderby", "SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY DESC"},
	{"functions", "SELECT UPPER(CUSTOMERNAME), LENGTH(CITY) FROM CUSTOMERS WHERE CITY IS NOT NULL"},
	{"parameters", "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ? AND CITY = ?"},
}

var durationRE = regexp.MustCompile(`\b\d+(\.\d+)?(ns|µs|ms|s)\b`)
var spacesRE = regexp.MustCompile(`[ \t]+`)

// normalizeExplain makes EXPLAIN output reproducible: wall times become
// <DUR> and the column padding that depended on their width collapses to
// single spaces. Everything else — stage order, sizes, detail counters,
// cache counts, contexts, XQuery — is deterministic and kept verbatim.
func normalizeExplain(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		line = durationRE.ReplaceAllString(line, "<DUR>")
		line = strings.TrimRight(spacesRE.ReplaceAllString(line, " "), " ")
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func runExplain(t *testing.T, sqlText string) string {
	t.Helper()
	// A fresh server per statement gives each EXPLAIN a cold compile cache
	// and a cold connection catalog cache, so hit/miss deltas in the golden
	// files are deterministic regardless of what other tests compiled.
	db := openIsolated(t, "")
	rows, err := db.Query("EXPLAIN " + sqlText)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", sqlText, err)
	}
	defer rows.Close()
	var lines []string
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return strings.Join(lines, "\n") + "\n"
}

func TestExplainGolden(t *testing.T) {
	for _, tc := range explainCases {
		t.Run(tc.name, func(t *testing.T) {
			got := normalizeExplain(runExplain(t, tc.sql))
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output changed for %q\n--- got ---\n%s\n--- want ---\n%s", tc.sql, got, want)
			}
		})
	}
}

// TestExplainStageOrder pins the acceptance contract independent of the
// golden files: every EXPLAIN reports the pipeline stages in execution
// order with their timings, and the catalog-cache effect line.
func TestExplainStageOrder(t *testing.T) {
	out := runExplain(t, "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID")
	stages := []string{"lex", "parse", "semantic-validate", "restructure", "generate", "serialize", "compile"}
	idx := -1
	for _, stage := range stages {
		re := regexp.MustCompile(`(?m)^` + stage + ` +\d+(\.\d+)?(ns|µs|ms|s)\b`)
		loc := re.FindStringIndex(out)
		if loc == nil {
			t.Fatalf("stage %q with timing missing from EXPLAIN output:\n%s", stage, out)
		}
		if loc[0] <= idx {
			t.Fatalf("stage %q out of order", stage)
		}
		idx = loc[0]
	}
	for _, want := range []string{
		"-- stage trace:",
		"tables=2",
		"contexts=1",
		"-- compile cache: miss (compiled now)",
		"-- catalog cache: hits=0 misses=2",
		"-- query contexts (stage one):",
		"-- generated XQuery (stage three):",
		"-- query plan (evaluator):",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN output missing %q:\n%s", want, out)
		}
	}
}

// TestExplainRepeatedCacheHits checks the cache-effect lines on a warm
// server: the first EXPLAIN compiles (catalog miss included), the second
// reuses the cached artifact — no translation, no catalog traffic, and
// the stage trace rendered is the original compile's.
func TestExplainRepeatedCacheHits(t *testing.T) {
	db := openIsolated(t, "")
	conn, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	read := func() string {
		rows, err := conn.QueryContext(context.Background(), "EXPLAIN SELECT CUSTOMERID FROM CUSTOMERS")
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var lines []string
		for rows.Next() {
			var line string
			if err := rows.Scan(&line); err != nil {
				t.Fatal(err)
			}
			lines = append(lines, line)
		}
		return strings.Join(lines, "\n")
	}
	first, second := read(), read()
	if !strings.Contains(first, "-- compile cache: miss (compiled now)") {
		t.Fatalf("cold compile line missing:\n%s", first)
	}
	if !strings.Contains(first, "-- catalog cache: hits=0 misses=1") {
		t.Fatalf("cold cache line missing:\n%s", first)
	}
	if !strings.Contains(second, "-- compile cache: hit") {
		t.Fatalf("warm compile line missing:\n%s", second)
	}
	if !strings.Contains(second, "-- catalog cache: hits=0 misses=0 (connection totals: hits=0 misses=1)") {
		t.Fatalf("warm cache line should show no catalog traffic:\n%s", second)
	}
	// A cached EXPLAIN still renders the full artifact.
	if !strings.Contains(second, "-- stage trace:") || !strings.Contains(second, "-- query plan (evaluator):") {
		t.Fatalf("cached EXPLAIN missing sections:\n%s", second)
	}
}

// TestExplainTranslatesOnce is the regression test for the EXPLAIN
// double-translation bug: one EXPLAIN statement performs exactly one
// translation (it used to translate for the trace and let Prepare
// translate again), and EXPLAIN of a statement the server already
// compiled performs none.
func TestExplainTranslatesOnce(t *testing.T) {
	db := openIsolated(t, "")
	conn, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	translated := func() int64 {
		var n int64
		if err := conn.Raw(func(dc any) error {
			n = dc.(StatsReporter).Stats().Pipeline.QueriesTranslated
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	run := func(q string) {
		rows, err := conn.QueryContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		rows.Close()
	}

	run("EXPLAIN SELECT CITY FROM CUSTOMERS")
	if n := translated(); n != 1 {
		t.Fatalf("one EXPLAIN translated %d times, want exactly 1", n)
	}
	// EXPLAIN again, then execute the same statement: both reuse the
	// artifact the first EXPLAIN compiled.
	run("EXPLAIN SELECT CITY FROM CUSTOMERS")
	run("SELECT CITY FROM CUSTOMERS")
	if n := translated(); n != 1 {
		t.Fatalf("cached EXPLAIN + execute re-translated (total %d, want 1)", n)
	}
}
