package driver

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the EXPLAIN golden files")

// explainCases are representative of each query shape the translator
// handles; each gets a golden file under testdata/explain capturing the
// full EXPLAIN output (stage trace, cache effect, query contexts,
// generated XQuery) with durations normalized out.
var explainCases = []struct {
	name string
	sql  string
}{
	{"simple", "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS"},
	{"wildcard", "SELECT * FROM CUSTOMERS"},
	{"join", "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID"},
	{"outerjoin", "SELECT A.CUSTOMERNAME, B.PAYMENT FROM CUSTOMERS A LEFT OUTER JOIN PAYMENTS B ON A.CUSTOMERID = B.CUSTID"},
	{"groupby", "SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1"},
	{"union", "SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS"},
	{"subquery", "SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10"},
	{"insubquery", "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS WHERE PAYMENT > 100)"},
	{"distinct_orderby", "SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY DESC"},
	{"functions", "SELECT UPPER(CUSTOMERNAME), LENGTH(CITY) FROM CUSTOMERS WHERE CITY IS NOT NULL"},
	{"parameters", "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ? AND CITY = ?"},
}

var durationRE = regexp.MustCompile(`\b\d+(\.\d+)?(ns|µs|ms|s)\b`)
var spacesRE = regexp.MustCompile(`[ \t]+`)

// normalizeExplain makes EXPLAIN output reproducible: wall times become
// <DUR> and the column padding that depended on their width collapses to
// single spaces. Everything else — stage order, sizes, detail counters,
// cache counts, contexts, XQuery — is deterministic and kept verbatim.
func normalizeExplain(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		line = durationRE.ReplaceAllString(line, "<DUR>")
		line = strings.TrimRight(spacesRE.ReplaceAllString(line, " "), " ")
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func runExplain(t *testing.T, sqlText string) string {
	t.Helper()
	// A fresh pool per statement gives each EXPLAIN a cold connection
	// cache, so hit/miss deltas in the golden files are deterministic.
	db := openDemo(t, "")
	rows, err := db.Query("EXPLAIN " + sqlText)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", sqlText, err)
	}
	defer rows.Close()
	var lines []string
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return strings.Join(lines, "\n") + "\n"
}

func TestExplainGolden(t *testing.T) {
	for _, tc := range explainCases {
		t.Run(tc.name, func(t *testing.T) {
			got := normalizeExplain(runExplain(t, tc.sql))
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output changed for %q\n--- got ---\n%s\n--- want ---\n%s", tc.sql, got, want)
			}
		})
	}
}

// TestExplainStageOrder pins the acceptance contract independent of the
// golden files: every EXPLAIN reports the pipeline stages in execution
// order with their timings, and the catalog-cache effect line.
func TestExplainStageOrder(t *testing.T) {
	out := runExplain(t, "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID")
	stages := []string{"lex", "parse", "semantic-validate", "restructure", "generate", "serialize"}
	idx := -1
	for _, stage := range stages {
		re := regexp.MustCompile(`(?m)^` + stage + ` +\d+(\.\d+)?(ns|µs|ms|s)\b`)
		loc := re.FindStringIndex(out)
		if loc == nil {
			t.Fatalf("stage %q with timing missing from EXPLAIN output:\n%s", stage, out)
		}
		if loc[0] <= idx {
			t.Fatalf("stage %q out of order", stage)
		}
		idx = loc[0]
	}
	for _, want := range []string{
		"-- stage trace:",
		"tables=2",
		"contexts=1",
		"-- catalog cache: hits=0 misses=2",
		"-- query contexts (stage one):",
		"-- generated XQuery (stage three):",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN output missing %q:\n%s", want, out)
		}
	}
}

// TestExplainRepeatedCacheHits checks the cache-effect line on a warm
// connection: translating the same statement twice over one connection
// turns the misses into hits.
func TestExplainRepeatedCacheHits(t *testing.T) {
	db := openDemo(t, "")
	conn, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	read := func() string {
		rows, err := conn.QueryContext(context.Background(), "EXPLAIN SELECT CUSTOMERID FROM CUSTOMERS")
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var lines []string
		for rows.Next() {
			var line string
			if err := rows.Scan(&line); err != nil {
				t.Fatal(err)
			}
			lines = append(lines, line)
		}
		return strings.Join(lines, "\n")
	}
	first, second := read(), read()
	if !strings.Contains(first, "-- catalog cache: hits=0 misses=1") {
		t.Fatalf("cold cache line missing:\n%s", first)
	}
	if !strings.Contains(second, "-- catalog cache: hits=1 misses=0 (connection totals: hits=1 misses=1)") {
		t.Fatalf("warm cache line missing:\n%s", second)
	}
}
