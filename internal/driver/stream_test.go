// Streaming behavior at the driver boundary: rows from a still-running
// evaluation, early termination through Close, and statement reuse while
// streams are in flight.
package driver

import (
	"context"
	sqldriver "database/sql/driver"
	"io"
	"sync"
	"testing"

	"repro/internal/demo"
	"repro/internal/obsv"
	"repro/internal/sqlparser"
)

// streamConn builds a private server over a customers-only dataset and
// opens one raw connection on it, bypassing database/sql so the test can
// drive driver.Rows directly.
func streamConn(t *testing.T, customers int) *conn {
	t.Helper()
	app, _, engine := demo.Setup(demo.Sizes{Customers: customers, PaymentsPerCustomer: 0, Orders: 1, ItemsPerOrder: 1})
	return newConn(&Server{App: app, Engine: engine}, "text", sqlparser.Front{})
}

// evalStepsDelta runs fn and reports how many evaluator steps the process
// spent inside it. Driver tests do not run in parallel, so the global
// counter's delta is attributable to fn.
func evalStepsDelta(fn func()) int64 {
	before := obsv.Global.Snapshot().EvalSteps
	fn()
	return obsv.Global.Snapshot().EvalSteps - before
}

// TestClosedRowsCancelEvaluation is the early-termination regression: a
// result set abandoned after a few rows must cancel the evaluation, not
// let it run to completion behind the scenes. The pin is self-calibrating:
// the same statement drained fully fixes the full-evaluation step cost,
// and the abandoned run must spend a small fraction of it.
func TestClosedRowsCancelEvaluation(t *testing.T) {
	c := streamConn(t, 700) // cross join: 490 000 tuples if run to completion
	st, err := c.PrepareContext(context.Background(), "SELECT A.CUSTOMERID FROM CUSTOMERS A, CUSTOMERS B")
	if err != nil {
		t.Fatal(err)
	}
	s := st.(*stmt)
	dest := make([]sqldriver.Value, 1)

	fullSteps := evalStepsDelta(func() {
		rows, err := s.Query(nil)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if err := rows.Next(dest); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
	})

	var rows sqldriver.Rows
	closedSteps := evalStepsDelta(func() {
		var err error
		rows, err = s.Query(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := rows.Next(dest); err != nil {
				t.Fatalf("row %d: %v", i, err)
			}
		}
		// Close cancels the evaluation context and waits for the producer
		// to exit, so the step counter has folded when it returns.
		if err := rows.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})

	if closedSteps*10 > fullSteps {
		t.Fatalf("abandoned stream spent %d evaluator steps; full evaluation costs %d — Close did not cancel",
			closedSteps, fullSteps)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if err := rows.Next(dest); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}

// TestRowsCloseReleasesOnce: repeated Close calls on a live stream are
// safe, report each row exactly once through the connection metrics, and
// leave the statement reusable.
func TestRowsCloseReleasesOnce(t *testing.T) {
	c := streamConn(t, 50)
	st, err := c.PrepareContext(context.Background(), "SELECT CUSTOMERID FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	s := st.(*stmt)
	for round := 0; round < 3; round++ {
		rows, err := s.Query(nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		dest := make([]sqldriver.Value, 1)
		for i := 0; i < 2; i++ {
			if err := rows.Next(dest); err != nil {
				t.Fatalf("round %d row %d: %v", round, i, err)
			}
		}
		before := c.obs.Snapshot().RowsStreamed
		for i := 0; i < 3; i++ {
			if err := rows.Close(); err != nil {
				t.Fatalf("round %d close %d: %v", round, i, err)
			}
		}
		if got := c.obs.Snapshot().RowsStreamed - before; got != 2 {
			t.Fatalf("round %d: %d rows counted across 3 Closes, want 2 (exactly once)", round, got)
		}
	}
}

// TestStreamingStatementReuseRace hammers one prepared statement from
// several goroutines, each opening a stream, reading a prefix, and
// abandoning it — the reuse pattern connection pools produce — while
// others drain theirs fully. Run under -race this pins the cursor
// hand-off between statement, rows, and evaluation goroutine.
func TestStreamingStatementReuseRace(t *testing.T) {
	db := openDemo(t, "")
	stmt, err := db.Prepare("SELECT P.PAYMENT, C.CUSTOMERNAME FROM PAYMENTS P, CUSTOMERS C WHERE P.CUSTID = C.CUSTOMERID")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				rows, err := stmt.Query()
				if err != nil {
					t.Errorf("goroutine %d round %d: %v", g, round, err)
					return
				}
				limit := -1 // drain fully
				if g%2 == 0 {
					limit = g + round // abandon after a prefix
				}
				n := 0
				for rows.Next() {
					var pay float64
					var name string
					if err := rows.Scan(&pay, &name); err != nil {
						t.Errorf("goroutine %d round %d: %v", g, round, err)
						break
					}
					n++
					if limit >= 0 && n > limit {
						break
					}
				}
				if err := rows.Close(); err != nil {
					t.Errorf("goroutine %d round %d close: %v", g, round, err)
				}
				if err := rows.Err(); err != nil {
					t.Errorf("goroutine %d round %d err: %v", g, round, err)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRowsSurviveStatementClose: database/sql may close the statement
// while its rows are still being read (Close on a pool-owned stmt); the
// in-flight stream must keep delivering.
func TestRowsSurviveStatementClose(t *testing.T) {
	db := openDemo(t, "")
	stmt, err := db.Prepare("SELECT CUSTOMERID FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := stmt.Close(); err != nil {
		t.Fatal(err)
	}
	n := 1
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("streamed %d rows after statement close, want 50", n)
	}
}
