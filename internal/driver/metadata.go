package driver

import (
	"context"
	"database/sql/driver"
	"fmt"
	"io"
	"strings"

	"repro/internal/catalog"
)

// showStmt answers the metadata-browsing statements reporting tools issue
// before building queries — the DatabaseMetaData surface of a JDBC driver,
// expressed as SHOW pseudo-statements:
//
//	SHOW CATALOGS
//	SHOW SCHEMAS
//	SHOW TABLES
//	SHOW PROCEDURES
//	SHOW COLUMNS FROM <table>
type showStmt struct {
	conn *conn
	kind string
	arg  string
}

func newShowStmt(c *conn, query string) (driver.Stmt, error) {
	fields := strings.Fields(query)
	if len(fields) < 2 {
		return nil, fmt.Errorf("aqualogic: malformed SHOW statement")
	}
	kind := strings.ToUpper(fields[1])
	s := &showStmt{conn: c, kind: kind}
	switch kind {
	case "CATALOGS", "SCHEMAS", "TABLES", "PROCEDURES":
		if len(fields) != 2 {
			return nil, fmt.Errorf("aqualogic: SHOW %s takes no arguments", kind)
		}
	case "COLUMNS":
		if len(fields) != 4 || !strings.EqualFold(fields[2], "FROM") {
			return nil, fmt.Errorf("aqualogic: usage: SHOW COLUMNS FROM <table>")
		}
		s.arg = fields[3]
	default:
		return nil, fmt.Errorf("aqualogic: unknown SHOW statement %q", fields[1])
	}
	return s, nil
}

// Close implements driver.Stmt.
func (s *showStmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *showStmt) NumInput() int { return 0 }

// Exec implements driver.Stmt.
func (s *showStmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("aqualogic: SHOW statements are queries")
}

// Query implements driver.Stmt.
func (s *showStmt) Query(args []driver.Value) (driver.Rows, error) {
	switch s.kind {
	case "CATALOGS":
		return &staticRows{cols: []string{"TABLE_CAT"}, rows: [][]driver.Value{{s.conn.srv.App.Name}}}, nil

	case "SCHEMAS":
		tables, err := s.conn.srv.metaSource().Tables()
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		out := &staticRows{cols: []string{"TABLE_SCHEM", "TABLE_CATALOG"}}
		for _, t := range tables {
			if !seen[t.Schema] {
				seen[t.Schema] = true
				out.rows = append(out.rows, []driver.Value{t.Schema, s.conn.srv.App.Name})
			}
		}
		return out, nil

	case "TABLES":
		tables, err := s.conn.srv.metaSource().Tables()
		if err != nil {
			return nil, err
		}
		out := &staticRows{cols: []string{"TABLE_CAT", "TABLE_SCHEM", "TABLE_NAME", "TABLE_TYPE"}}
		for _, t := range tables {
			out.rows = append(out.rows, []driver.Value{s.conn.srv.App.Name, t.Schema, t.Function.Name, "TABLE"})
		}
		return out, nil

	case "PROCEDURES":
		procs, err := s.conn.srv.metaSource().Procedures()
		if err != nil {
			return nil, err
		}
		out := &staticRows{cols: []string{"PROCEDURE_CAT", "PROCEDURE_SCHEM", "PROCEDURE_NAME", "NUM_PARAMS"}}
		for _, p := range procs {
			out.rows = append(out.rows, []driver.Value{
				s.conn.srv.App.Name, p.Schema, p.Function.Name, int64(len(p.Function.Params)),
			})
		}
		return out, nil

	case "COLUMNS":
		meta, err := s.conn.cache.Lookup(tableRefFromName(s.arg))
		if err != nil {
			return nil, err
		}
		out := &staticRows{cols: []string{"COLUMN_NAME", "TYPE_NAME", "IS_NULLABLE", "ORDINAL_POSITION"}}
		for i, c := range meta.Function.Columns {
			nullable := "NO"
			if c.Nullable {
				nullable = "YES"
			}
			out.rows = append(out.rows, []driver.Value{c.Name, c.Type.String(), nullable, int64(i + 1)})
		}
		return out, nil
	}
	return nil, fmt.Errorf("aqualogic: unknown SHOW statement %q", s.kind)
}

// tableRefFromName splits an optionally qualified table name.
func tableRefFromName(name string) catalog.TableRef {
	parts := strings.Split(name, ".")
	switch len(parts) {
	case 1:
		return catalog.TableRef{Table: parts[0]}
	case 2:
		return catalog.TableRef{Schema: parts[0], Table: parts[1]}
	default:
		return catalog.TableRef{
			Catalog: parts[0],
			Schema:  strings.Join(parts[1:len(parts)-1], "."),
			Table:   parts[len(parts)-1],
		}
	}
}

// staticRows is a fixed in-memory driver.Rows.
type staticRows struct {
	cols []string
	rows [][]driver.Value
	pos  int
}

// Columns implements driver.Rows.
func (r *staticRows) Columns() []string { return r.cols }

// Close implements driver.Rows.
func (r *staticRows) Close() error { return nil }

// Next implements driver.Rows.
func (r *staticRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rows) {
		return io.EOF
	}
	copy(dest, r.rows[r.pos])
	r.pos++
	return nil
}

// newExplainStmt resolves the statement through the server's shared
// compile cache — compiling only when no artifact exists, exactly like
// Prepare — and renders the artifact: the compile-time stage trace (wall
// time, sizes, stage detail), the compile- and catalog-cache effects, the
// query-context tree (the paper's Figure 4 view), the generated XQuery,
// and the evaluator plan, one line per row. EXPLAIN of a statement the
// server has already compiled performs no translation at all: every
// section, including the stage trace, comes from the cached artifact.
func newExplainStmt(ctx context.Context, c *conn, sql string) (driver.Stmt, error) {
	before := c.cache.Stats()
	cq, hit, err := c.compile(ctx, sql)
	if err != nil {
		return nil, err
	}
	after := c.cache.Stats()

	status := "miss (compiled now)"
	if hit {
		status = "hit (stage trace below is the original compile's)"
	}
	out := &staticRows{cols: []string{"PLAN"}}
	addLines := func(s string) {
		for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
			out.rows = append(out.rows, []driver.Value{line})
		}
	}
	addLines(fmt.Sprintf("-- dialect: %s", cq.Dialect))
	if len(cq.Res.Sources) > 0 {
		// Scan attribution: which federation backends the statement's
		// table references resolved against, in first-touch order.
		addLines(fmt.Sprintf("-- sources: %s", strings.Join(cq.Res.Sources, ", ")))
	}
	addLines("-- stage trace:")
	addLines(cq.Trace.RenderString(true))
	addLines(fmt.Sprintf("-- compile cache: %s", status))
	addLines(fmt.Sprintf("-- catalog cache: hits=%d misses=%d (connection totals: hits=%d misses=%d)",
		after.Hits-before.Hits, after.Misses-before.Misses, after.Hits, after.Misses))
	addLines("-- query contexts (stage one):")
	addLines(cq.Res.Contexts.Tree())
	addLines("-- generated XQuery (stage three):")
	addLines(cq.XQuery())
	addLines("-- query plan (evaluator):")
	for _, line := range cq.Plan.Describe() {
		addLines(line)
	}
	addLines(fmt.Sprintf("-- streaming: %s", cq.Plan.Stream.Describe()))
	return &explainStmt{rows: out}, nil
}

type explainStmt struct {
	rows *staticRows
}

// Close implements driver.Stmt.
func (s *explainStmt) Close() error { return nil }

// NumInput implements driver.Stmt. EXPLAIN renders parameter markers
// without binding them.
func (s *explainStmt) NumInput() int { return 0 }

// Exec implements driver.Stmt.
func (s *explainStmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("aqualogic: EXPLAIN is a query")
}

// Query implements driver.Stmt.
func (s *explainStmt) Query(args []driver.Value) (driver.Rows, error) {
	cp := *s.rows
	cp.pos = 0
	return &cp, nil
}

// newCreateViewStmt parses CREATE VIEW [schema.]name AS <select> and
// registers a logical data service through the server's DefineView hook —
// the SQL-tool-facing way to author the paper's logical layer.
func newCreateViewStmt(c *conn, stmtText string) (driver.Stmt, error) {
	if c.srv.DefineView == nil {
		return nil, fmt.Errorf("aqualogic: this server does not support CREATE VIEW")
	}
	rest := strings.TrimSpace(stmtText[len("CREATE VIEW"):])
	// The view name runs to the AS keyword (case-insensitive, own token).
	fields := strings.Fields(rest)
	if len(fields) < 3 || !strings.EqualFold(fields[1], "AS") {
		return nil, fmt.Errorf("aqualogic: usage: CREATE VIEW <name> AS SELECT …")
	}
	qualified := fields[0]
	after := strings.TrimSpace(rest[len(qualified):])
	if len(after) < 3 || !strings.EqualFold(after[:2], "AS") {
		return nil, fmt.Errorf("aqualogic: usage: CREATE VIEW <name> AS SELECT …")
	}
	body := strings.TrimSpace(after[2:])

	path, name := "Views", qualified
	if i := strings.LastIndexByte(qualified, '.'); i >= 0 {
		path, name = qualified[:i], qualified[i+1:]
	}
	return &createViewStmt{conn: c, path: path, name: strings.ToUpper(name), body: body}, nil
}

type createViewStmt struct {
	conn             *conn
	path, name, body string
}

// Close implements driver.Stmt.
func (s *createViewStmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *createViewStmt) NumInput() int { return 0 }

// Exec implements driver.Stmt: view creation is DDL, executed not queried.
func (s *createViewStmt) Exec(args []driver.Value) (driver.Result, error) {
	if err := s.conn.srv.DefineView(s.path, s.name, s.body); err != nil {
		return nil, err
	}
	// New metadata invalidates this connection's catalog cache and every
	// compiled artifact on the server (a query naming the new view may
	// have compiled to a not-found error moments ago).
	s.conn.cache.Invalidate()
	s.conn.srv.compileCache().Invalidate()
	return driver.RowsAffected(0), nil
}

// Query implements driver.Stmt.
func (s *createViewStmt) Query(args []driver.Value) (driver.Rows, error) {
	if _, err := s.Exec(args); err != nil {
		return nil, err
	}
	return &staticRows{cols: []string{"CREATED"}, rows: [][]driver.Value{{s.name}}}, nil
}
