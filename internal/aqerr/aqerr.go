// Package aqerr defines the typed error vocabulary of the resilience
// layer. Once query processing spans a wire (the paper's driver talks to a
// remote DSP server for both metadata and data), infrastructure failures
// become part of the query processor's contract: callers need to know
// whether an error is worth retrying, whether the backend is down, or
// whether the query itself is at fault. QueryError carries that
// classification from wherever a failure is first seen — the metadata
// fetch, a data service call, an evaluator resource guard, or a recovered
// panic at the driver boundary — up through database/sql unchanged.
//
// The package is a leaf: catalog, xqeval, faultnet, resilient, driver and
// the facade all share it without import cycles.
package aqerr

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obsv"
)

// Kind classifies a QueryError for programmatic handling.
type Kind int

// Error kinds, ordered roughly by how a caller should react.
const (
	// KindUnknown is an unclassified failure.
	KindUnknown Kind = iota
	// KindTransient marks a failure that a retry may fix (network blip,
	// injected transient fault, recovered data-service panic).
	KindTransient
	// KindPermanent marks a failure retries cannot fix (backend rejects
	// the call deterministically).
	KindPermanent
	// KindUnavailable marks fast-fail conditions: an open circuit breaker,
	// or retries exhausted against a failing backend.
	KindUnavailable
	// KindTimeout marks context deadline expiry or cancellation.
	KindTimeout
	// KindResourceLimit marks a query aborted by a resource guard
	// (max rows, max tuples, recursion depth).
	KindResourceLimit
	// KindInternal marks a recovered panic at the driver boundary — an
	// engine bug surfaced as a SQL error instead of a dead process.
	KindInternal
)

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindPermanent:
		return "permanent"
	case KindUnavailable:
		return "unavailable"
	case KindTimeout:
		return "timeout"
	case KindResourceLimit:
		return "resource-limit"
	case KindInternal:
		return "internal"
	default:
		return "unknown"
	}
}

// ParseKind inverts Kind.String — how the wire protocol reconstructs a
// typed error kind on the client side of a server boundary.
func ParseKind(s string) Kind {
	switch s {
	case "transient":
		return KindTransient
	case "permanent":
		return KindPermanent
	case "unavailable":
		return KindUnavailable
	case "timeout":
		return KindTimeout
	case "resource-limit":
		return KindResourceLimit
	case "internal":
		return KindInternal
	default:
		return KindUnknown
	}
}

// QueryError is the typed error the resilience layer surfaces through the
// driver and facade.
type QueryError struct {
	Kind Kind
	// Op names the failing operation ("metadata lookup CUSTOMERS",
	// "data service PAYMENTS", "evaluate").
	Op  string
	Err error
	// RetryAfter is an optional backoff hint attached to shed responses
	// (KindUnavailable from admission control): how long the origin
	// suggests waiting before retrying. Zero means no hint. Clients treat
	// a hinted unavailable as retriable; an unhinted one (session gone,
	// breaker open) as retriable only from scratch.
	RetryAfter time.Duration
}

// Error implements error.
func (e *QueryError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("aqualogic: %s: %s error", e.Op, e.Kind)
	}
	return fmt.Sprintf("aqualogic: %s: %s: %v", e.Op, e.Kind, e.Err)
}

// Unwrap exposes the cause, so errors.Is(err, context.DeadlineExceeded)
// and friends keep working through the classification wrapper.
func (e *QueryError) Unwrap() error { return e.Err }

// New builds a QueryError.
func New(kind Kind, op string, err error) *QueryError {
	return &QueryError{Kind: kind, Op: op, Err: err}
}

// Errorf builds a QueryError with a formatted message cause.
func Errorf(kind Kind, op, format string, args ...any) *QueryError {
	return &QueryError{Kind: kind, Op: op, Err: fmt.Errorf(format, args...)}
}

// transienter is implemented by errors that know their own retryability
// (faultnet's injected errors in particular).
type transienter interface{ Transient() bool }

// faulter is implemented by errors that represent infrastructure faults
// rather than query-semantic failures; circuit breakers count these.
type faulter interface{ Fault() bool }

// Transient reports whether err is worth retrying: a QueryError of
// KindTransient, or any error in the chain implementing
// `Transient() bool` true.
func Transient(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if qe, ok := e.(*QueryError); ok && qe.Kind == KindTransient {
			return true
		}
		if t, ok := e.(transienter); ok {
			return t.Transient()
		}
	}
	return false
}

// Fault reports whether err represents an infrastructure fault (the class
// a circuit breaker should count) as opposed to a query-semantic error or
// a caller-initiated cancellation.
func Fault(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	for e := err; e != nil; e = errors.Unwrap(e) {
		if f, ok := e.(faulter); ok {
			return f.Fault()
		}
		if qe, ok := e.(*QueryError); ok {
			switch qe.Kind {
			case KindTransient, KindPermanent, KindUnavailable, KindInternal:
				return true
			}
		}
	}
	return false
}

// Wrap classifies err under op: context errors become KindTimeout,
// transient errors KindTransient, infrastructure faults KindPermanent, and
// anything else passes through unchanged (query-semantic errors keep
// their own types). Already-classified QueryErrors pass through.
func Wrap(op string, err error) error {
	if err == nil {
		return nil
	}
	var qe *QueryError
	if errors.As(err, &qe) {
		return err
	}
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return &QueryError{Kind: KindTimeout, Op: op, Err: err}
	case Transient(err):
		return &QueryError{Kind: KindTransient, Op: op, Err: err}
	case Fault(err):
		return &QueryError{Kind: KindPermanent, Op: op, Err: err}
	default:
		return err
	}
}

// RetryAfterHint extracts the deepest RetryAfter hint in err's chain, or
// zero when no QueryError in the chain carries one.
func RetryAfterHint(err error) time.Duration {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if qe, ok := e.(*QueryError); ok && qe.RetryAfter > 0 {
			return qe.RetryAfter
		}
	}
	return 0
}

// Recover converts an in-flight panic into a KindInternal QueryError —
// the driver-boundary guard that turns engine panics into SQL errors
// instead of killing the embedding process. Use as:
//
//	defer aqerr.Recover("query", &err)
func Recover(op string, errp *error) {
	if r := recover(); r != nil {
		obsv.Global.PanicsRecovered.Inc()
		*errp = Errorf(KindInternal, op, "recovered panic: %v", r)
	}
}
