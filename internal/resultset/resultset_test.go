package resultset

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/xdm"
)

func testCols() []Column {
	return []Column{
		{Label: "ID", ElementName: "ID", Type: catalog.SQLInteger},
		{Label: "NAME", ElementName: "NAME", Type: catalog.SQLVarchar, Nullable: true},
		{Label: "AMOUNT", ElementName: "AMOUNT", Type: catalog.SQLDecimal, Nullable: true},
	}
}

func buildXML() xdm.Sequence {
	rs := xdm.NewElement("RECORDSET")
	r1 := xdm.NewElement("RECORD")
	r1.AddChild(xdm.NewTextElement("ID", "1"))
	r1.AddChild(xdm.NewTextElement("NAME", "Acme <Widgets> & Sons"))
	r1.AddChild(xdm.NewTextElement("AMOUNT", "100.50"))
	r2 := xdm.NewElement("RECORD")
	r2.AddChild(xdm.NewTextElement("ID", "2"))
	// NAME absent (NULL), AMOUNT absent (NULL)
	rs.AddChild(r1)
	rs.AddChild(r2)
	return xdm.SequenceOf(rs)
}

func TestFromXML(t *testing.T) {
	rows, err := FromXML(buildXML(), testCols())
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if !rows.Next() {
		t.Fatal("Next")
	}
	id, ok, err := rows.Int64(0)
	if err != nil || !ok || id != 1 {
		t.Fatalf("id = %d %v %v", id, ok, err)
	}
	name, ok, _ := rows.String(1)
	if !ok || name != "Acme <Widgets> & Sons" {
		t.Fatalf("name = %q", name)
	}
	amt, ok, _ := rows.Float64(2)
	if !ok || amt != 100.50 {
		t.Fatalf("amount = %v", amt)
	}
	if !rows.Next() {
		t.Fatal("Next 2")
	}
	if null, _ := rows.IsNull(1); !null {
		t.Fatal("row 2 NAME should be NULL")
	}
	if _, ok, _ := rows.Float64(2); ok {
		t.Fatal("row 2 AMOUNT should be NULL")
	}
	if rows.Next() {
		t.Fatal("cursor should be exhausted")
	}
}

func TestCursorDiscipline(t *testing.T) {
	rows, err := FromXML(buildXML(), testCols())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Value(0); err == nil {
		t.Fatal("Value before Next should error")
	}
	for rows.Next() {
	}
	if _, err := rows.Value(0); err == nil {
		t.Fatal("Value after exhaustion should error")
	}
	rows.Reset()
	if !rows.Next() {
		t.Fatal("Reset should rewind")
	}
	if _, err := rows.Value(99); err == nil {
		t.Fatal("out-of-range column should error")
	}
}

func TestColumnIndex(t *testing.T) {
	rows, _ := FromXML(buildXML(), testCols())
	i, err := rows.ColumnIndex("name")
	if err != nil || i != 1 {
		t.Fatalf("index = %d %v", i, err)
	}
	if _, err := rows.ColumnIndex("missing"); err == nil {
		t.Fatal("missing label should error")
	}
}

func TestFromXMLString(t *testing.T) {
	payload := `<RECORDSET><RECORD><ID>7</ID><NAME>Sue</NAME></RECORD></RECORDSET>`
	rows, err := FromXMLString(payload, testCols())
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	id, _, _ := rows.Int64(0)
	if id != 7 {
		t.Fatalf("id = %d", id)
	}
	// Missing AMOUNT is NULL.
	if null, _ := rows.IsNull(2); !null {
		t.Fatal("AMOUNT should be NULL")
	}
}

func TestFromXMLErrors(t *testing.T) {
	if _, err := FromXML(nil, testCols()); err == nil {
		t.Fatal("empty sequence should fail")
	}
	if _, err := FromXML(xdm.SequenceOf(xdm.NewElement("OTHER")), testCols()); err == nil {
		t.Fatal("wrong root should fail")
	}
	bad := xdm.NewElement("RECORDSET")
	rec := xdm.NewElement("RECORD")
	rec.AddChild(xdm.NewTextElement("ID", "notanumber"))
	bad.AddChild(rec)
	if _, err := FromXML(xdm.SequenceOf(bad), testCols()); err == nil {
		t.Fatal("untypeable value should fail")
	}
}

func TestFromText(t *testing.T) {
	payload := ">1<Acme &lt;Widgets&gt; &amp; Sons<100.50" + ">2<&null;<&null;"
	rows, err := FromText(payload, testCols())
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	rows.Next()
	name, _, _ := rows.String(1)
	if name != "Acme <Widgets> & Sons" {
		t.Fatalf("name = %q", name)
	}
	rows.Next()
	if null, _ := rows.IsNull(1); !null {
		t.Fatal("NULL token should decode as NULL")
	}
}

func TestFromTextEmpty(t *testing.T) {
	rows, err := FromText("", testCols())
	if err != nil || rows.Len() != 0 {
		t.Fatalf("rows = %v err = %v", rows.Len(), err)
	}
}

func TestFromTextErrors(t *testing.T) {
	if _, err := FromText("1<2<3", testCols()); err == nil {
		t.Fatal("missing leading delimiter should fail")
	}
	if _, err := FromText(">1<2", testCols()); err == nil {
		t.Fatal("field-count mismatch should fail")
	}
	if _, err := FromText(">x<y<1.5", testCols()); err == nil {
		t.Fatal("untypeable integer should fail")
	}
}

func TestFromTextDistinguishesNullFromEmptyString(t *testing.T) {
	payload := ">1<<1.0" + ">2<&null;<2.0"
	rows, err := FromText(payload, testCols())
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	s, ok, _ := rows.String(1)
	if !ok || s != "" {
		t.Fatalf("row 1 name = %q ok=%v, want empty string", s, ok)
	}
	rows.Next()
	if null, _ := rows.IsNull(1); !null {
		t.Fatal("row 2 name should be NULL")
	}
}

func TestTypedGetters(t *testing.T) {
	cols := []Column{
		{Label: "B", ElementName: "B", Type: catalog.SQLBoolean},
		{Label: "D", ElementName: "D", Type: catalog.SQLDate},
		{Label: "TS", ElementName: "TS", Type: catalog.SQLTimestamp},
	}
	rows, err := FromText(">true<2006-07-05<2006-07-05T10:30:00", cols)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	b, ok, err := rows.Bool(0)
	if err != nil || !ok || !b {
		t.Fatalf("bool = %v %v %v", b, ok, err)
	}
	d, ok, err := rows.Time(1)
	if err != nil || !ok || d.Year() != 2006 || d.Month() != 7 {
		t.Fatalf("date = %v %v %v", d, ok, err)
	}
	ts, ok, err := rows.Time(2)
	if err != nil || !ok || ts.Hour() != 10 {
		t.Fatalf("ts = %v %v %v", ts, ok, err)
	}
}

func TestGetterConversionErrors(t *testing.T) {
	cols := []Column{{Label: "S", ElementName: "S", Type: catalog.SQLVarchar}}
	rows, _ := FromText(">hello", cols)
	rows.Next()
	if _, _, err := rows.Int64(0); err == nil {
		t.Fatal("string→int should error")
	}
	if _, _, err := rows.Time(0); err == nil {
		t.Fatal("string→time should error")
	}
}

func TestDuplicateElementNamesMatchPositionally(t *testing.T) {
	cols := []Column{
		{Label: "X", ElementName: "X", Type: catalog.SQLInteger},
		{Label: "X", ElementName: "X", Type: catalog.SQLInteger},
	}
	rows, err := FromXMLString("<RECORDSET><RECORD><X>1</X><X>2</X></RECORD></RECORDSET>", cols)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	a, _, _ := rows.Int64(0)
	b, _, _ := rows.Int64(1)
	if a != 1 || b != 2 {
		t.Fatalf("got %d %d", a, b)
	}
}

func TestUnknownTypeStaysString(t *testing.T) {
	cols := []Column{{Label: "U", ElementName: "U", Type: catalog.SQLUnknown}}
	rows, err := FromText(">anything", cols)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	s, ok, _ := rows.String(0)
	if !ok || s != "anything" {
		t.Fatalf("got %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	rows, _ := FromXML(buildXML(), testCols())
	out := rows.Table()
	if !strings.Contains(out, "ID") || !strings.Contains(out, "NULL") || !strings.Contains(out, "Acme") {
		t.Fatalf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}
