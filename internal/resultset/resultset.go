// Package resultset implements the JDBC-driver side of the paper's §4
// result handling: converting XQuery results into row/column result sets.
//
// Two decoding paths exist, mirroring the paper's experiment:
//
//   - XML materialization (the baseline): the query returns the natural
//     <RECORDSET><RECORD>…</RECORD></RECORDSET> XML, which the client
//     parses into a tree and walks into rows;
//   - text decoding (§4's optimization): the query is wrapped to return a
//     single string of delimiter-separated values (rows prefixed by '>',
//     columns separated by '<', values XML-escaped so delimiters cannot
//     occur in data), which the client splits and types using the computed
//     result schema.
//
// SQL NULL is an absent element on the XML path and the "&null;" token on
// the text path (a token real data cannot produce, since escaping rewrites
// '&' to "&amp;").
package resultset

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/obsv"
	"repro/internal/xdm"
)

// Delimiters of the text-encoded format (§4).
const (
	RowDelimiter    = ">"
	ColumnDelimiter = "<"
	NullToken       = "&null;"
)

// Column is the computed result schema for one output column.
type Column struct {
	Label       string
	ElementName string
	Type        catalog.SQLType
	Nullable    bool
	// Precision and Scale are declared facets (zero when unspecified).
	Precision int
	Scale     int
}

// Rows is a result set. It is forward-only streaming while a row cursor
// is attached (rows decode one pull at a time), and materialized/scrollable
// otherwise. Scroll operations (Len, Reset) on a streaming Rows first drain
// the cursor via Materialize.
type Rows struct {
	cols []Column
	// data[r][c] is nil for SQL NULL.
	data [][]xdm.Atomic
	pos  int // 0 = before first row

	cur    RowCursor // non-nil while streaming
	curRow []xdm.Atomic
	onRow  bool
	err    error
}

// Columns returns the result schema.
func (r *Rows) Columns() []Column { return r.cols }

// Len returns the number of rows. On a streaming result it materializes the
// remaining rows first.
func (r *Rows) Len() int {
	if r.cur != nil {
		r.Materialize()
	}
	return len(r.data)
}

// Next advances the cursor; it must be called before the first row, JDBC
// style. It returns false past the last row and on a streaming error —
// check Err after a false return to tell the two apart.
func (r *Rows) Next() bool {
	if r.cur != nil {
		row, err := r.cur.Next()
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			r.endStream(err)
			r.onRow = false
			return false
		}
		r.curRow, r.onRow = row, true
		return true
	}
	if r.pos > len(r.data) {
		return false
	}
	r.pos++
	r.onRow = false
	return r.pos <= len(r.data)
}

// endStream detaches and closes the cursor, keeping the first error seen.
// The kept error is classified at this boundary: a caller-side
// cancellation (the consumer's context expiring, or a transport the
// consumer tore down) surfaces as a timeout-kind QueryError, while a
// server-side failure keeps the typed kind it arrived with — so a stream
// that stops early is never a silent short read, and the two ways it can
// stop are distinguishable through Err.
func (r *Rows) endStream(err error) {
	if r.cur != nil {
		cerr := r.cur.Close()
		if err == nil {
			err = cerr
		}
		r.cur = nil
	}
	if err != nil && r.err == nil {
		r.err = aqerr.Wrap("stream", err)
	}
}

// Err returns the first error hit while streaming rows, if any, as a
// typed error: cancellations and deadline expiries carry
// aqerr.KindTimeout, transport and backend failures their own kinds
// (errors.Is still sees the underlying cause through the wrapper).
// Materialized result sets never have one.
func (r *Rows) Err() error { return r.err }

// Materialize drains any remaining streamed rows into the scrollable buffer
// and rewinds the cursor before the first buffered row. Rows already
// consumed with Next are not recovered. It returns the first streaming
// error, also available via Err.
func (r *Rows) Materialize() error {
	for r.cur != nil {
		row, err := r.cur.Next()
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			r.endStream(err)
			break
		}
		r.data = append(r.data, row)
		obsv.Global.RowsMaterialized.Inc()
	}
	r.pos = 0
	r.onRow = false
	return r.err
}

// Reset rewinds the cursor before the first row, materializing a streaming
// result first.
func (r *Rows) Reset() {
	if r.cur != nil {
		r.Materialize()
		return
	}
	r.pos = 0
	r.onRow = false
}

// Close releases the decoded row data and, for streaming results, closes
// the underlying cursor, cancelling any still-running evaluation. The
// schema stays available for metadata calls. Close is idempotent; after it,
// Next reports no rows.
func (r *Rows) Close() {
	r.endStream(nil)
	r.data = nil
	r.pos = 0
	r.onRow = false
	r.curRow = nil
}

func (r *Rows) current() ([]xdm.Atomic, error) {
	if r.onRow {
		return r.curRow, nil
	}
	if r.pos == 0 {
		return nil, fmt.Errorf("resultset: Next has not been called")
	}
	if r.pos > len(r.data) {
		return nil, fmt.Errorf("resultset: cursor is past the last row")
	}
	return r.data[r.pos-1], nil
}

// Value returns the current row's column i (0-based) as an atomic value;
// nil with ok=true means SQL NULL.
func (r *Rows) Value(i int) (v xdm.Atomic, err error) {
	row, err := r.current()
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(r.cols) {
		return nil, fmt.Errorf("resultset: column index %d out of range (0..%d)", i, len(r.cols)-1)
	}
	return row[i], nil
}

// IsNull reports whether the current row's column i is SQL NULL.
func (r *Rows) IsNull(i int) (bool, error) {
	v, err := r.Value(i)
	if err != nil {
		return false, err
	}
	return v == nil, nil
}

// String returns column i as a string. NULL yields ok=false.
func (r *Rows) String(i int) (s string, ok bool, err error) {
	v, err := r.Value(i)
	if err != nil || v == nil {
		return "", false, err
	}
	return v.Lexical(), true, nil
}

// Int64 returns column i as an int64.
func (r *Rows) Int64(i int) (n int64, ok bool, err error) {
	v, err := r.Value(i)
	if err != nil || v == nil {
		return 0, false, err
	}
	c, err := xdm.Cast(v, xdm.TypeInteger)
	if err != nil {
		return 0, false, fmt.Errorf("resultset: column %d: %v", i, err)
	}
	return int64(c.(xdm.Integer)), true, nil
}

// Float64 returns column i as a float64.
func (r *Rows) Float64(i int) (f float64, ok bool, err error) {
	v, err := r.Value(i)
	if err != nil || v == nil {
		return 0, false, err
	}
	c, err := xdm.Cast(v, xdm.TypeDouble)
	if err != nil {
		return 0, false, fmt.Errorf("resultset: column %d: %v", i, err)
	}
	return float64(c.(xdm.Double)), true, nil
}

// Bool returns column i as a bool.
func (r *Rows) Bool(i int) (b bool, ok bool, err error) {
	v, err := r.Value(i)
	if err != nil || v == nil {
		return false, false, err
	}
	c, err := xdm.Cast(v, xdm.TypeBoolean)
	if err != nil {
		return false, false, fmt.Errorf("resultset: column %d: %v", i, err)
	}
	return bool(c.(xdm.Boolean)), true, nil
}

// Time returns column i as a time.Time (dates/times/timestamps).
func (r *Rows) Time(i int) (t time.Time, ok bool, err error) {
	v, err := r.Value(i)
	if err != nil || v == nil {
		return time.Time{}, false, err
	}
	switch c := v.(type) {
	case xdm.Date:
		return c.T, true, nil
	case xdm.Time:
		return c.T, true, nil
	case xdm.DateTime:
		return c.T, true, nil
	}
	c, cerr := xdm.Cast(v, xdm.TypeDateTime)
	if cerr != nil {
		if d, derr := xdm.Cast(v, xdm.TypeDate); derr == nil {
			return d.(xdm.Date).T, true, nil
		}
		return time.Time{}, false, fmt.Errorf("resultset: column %d: %v", i, cerr)
	}
	return c.(xdm.DateTime).T, true, nil
}

// ColumnIndex finds a column by label (case-insensitive), returning the
// first match, as JDBC does for duplicate labels.
func (r *Rows) ColumnIndex(label string) (int, error) {
	for i, c := range r.cols {
		if strings.EqualFold(c.Label, label) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("resultset: no column labelled %q", label)
}

// FromXML materializes a result set from the XML result shape: a sequence
// holding one RECORDSET element. This is the baseline path the paper's §4
// improves on — the whole tree exists before decoding begins.
func FromXML(result xdm.Sequence, cols []Column) (*Rows, error) {
	it, err := result.Singleton()
	if err != nil {
		return nil, fmt.Errorf("resultset: expected a single RECORDSET element: %v", err)
	}
	root, ok := it.(*xdm.Element)
	if !ok || root.Name.Local != "RECORDSET" {
		return nil, fmt.Errorf("resultset: expected RECORDSET element, got %v", it)
	}
	rows := &Rows{cols: cols}
	for _, rec := range root.ChildElements("RECORD") {
		row, err := decodeRecord(rec, cols)
		if err != nil {
			return nil, err
		}
		rows.data = append(rows.data, row)
	}
	obsv.Global.RowsMaterialized.Add(int64(len(rows.data)))
	return rows, nil
}

// FromXMLString parses serialized XML then materializes it — the full
// client-side cost of the XML path (parse + walk), used by the §4
// benchmark.
func FromXMLString(payload string, cols []Column) (*Rows, error) {
	root, err := xdm.ParseElement(payload)
	if err != nil {
		return nil, fmt.Errorf("resultset: %v", err)
	}
	return FromXML(xdm.SequenceOf(root), cols)
}

// FromText decodes the §4 text-encoded result: the single string produced
// by the translator's wrapper query.
func FromText(payload string, cols []Column) (*Rows, error) {
	rows := &Rows{cols: cols}
	if payload == "" {
		return rows, nil
	}
	if !strings.HasPrefix(payload, RowDelimiter) {
		return nil, fmt.Errorf("resultset: malformed text payload: missing leading row delimiter")
	}
	for _, rowText := range strings.Split(payload[1:], RowDelimiter) {
		row, err := decodeTextRow(rowText, cols)
		if err != nil {
			return nil, err
		}
		rows.data = append(rows.data, row)
	}
	obsv.Global.RowsMaterialized.Add(int64(len(rows.data)))
	return rows, nil
}

// parseValue types a lexical value using the computed result schema.
// Unknown-typed columns stay as strings.
func parseValue(text string, c Column) (xdm.Atomic, error) {
	t := c.Type.Atomic()
	if t == xdm.TypeUntyped {
		return xdm.String(text), nil
	}
	v, err := xdm.ParseAtomic(text, t)
	if err != nil {
		return nil, fmt.Errorf("resultset: column %s: %v", c.Label, err)
	}
	return v, nil
}

// unescape reverses fn-bea:xml-escape.
var unescaper = strings.NewReplacer("&lt;", "<", "&gt;", ">", "&amp;", "&")

func unescape(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return unescaper.Replace(s)
}

// Table renders the rows as an ASCII table (used by the shell and
// examples). It consumes from the current cursor position.
func (r *Rows) Table() string {
	widths := make([]int, len(r.cols))
	for i, c := range r.cols {
		widths[i] = len(c.Label)
	}
	var cells [][]string
	for r.Next() {
		row := make([]string, len(r.cols))
		for i := range r.cols {
			s, ok, err := r.String(i)
			switch {
			case err != nil:
				row[i] = "!" + err.Error()
			case !ok:
				row[i] = "NULL"
			default:
				row[i] = s
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells = append(cells, row)
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v)
			for p := len(v); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	labels := make([]string, len(r.cols))
	for i, c := range r.cols {
		labels[i] = c.Label
	}
	writeRow(labels)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
