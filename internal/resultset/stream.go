// stream.go is the incremental side of §4 result handling: pull-based
// decoders that type one row per Next instead of materializing the whole
// result first. Both decoding paths exist in streaming form — the XML path
// consumes RECORD elements as the evaluator produces them, and the text
// path tokenizes the delimiter-separated payload as its fragments arrive —
// so the driver's JDBC-style result sets can deliver a first row while the
// query is still running.
package resultset

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obsv"
	"repro/internal/xdm"
)

// ItemStream is the pull end of an evaluation: Next returns the next chunk
// of result items and io.EOF after the last one; Close releases the
// producer. xqeval.Cursor implements it (kept as a small local interface
// so resultset stays independent of the evaluator).
type ItemStream interface {
	Next() (xdm.Sequence, error)
	Close() error
}

// rowAligned is the optional hint that every chunk is exactly one result
// row, letting the decoders skip buffering.
type rowAligned interface {
	RowAligned() bool
}

// RowCursor is the Volcano-style typed row cursor the whole result path is
// built on: Next returns one decoded row (nil atomics are SQL NULL) and
// io.EOF after the last row; Close is idempotent and releases the
// underlying evaluation.
type RowCursor interface {
	Columns() []Column
	Next() ([]xdm.Atomic, error)
	Close() error
}

func isAligned(src ItemStream) bool {
	ra, ok := src.(rowAligned)
	return ok && ra.RowAligned()
}

// StreamXML decodes the XML result shape incrementally: aligned streams
// deliver one RECORD element per chunk; a materialized fallback chunk
// holding the whole RECORDSET is expanded in place.
func StreamXML(src ItemStream, cols []Column) RowCursor {
	return &xmlCursor{src: src, cols: cols, aligned: isAligned(src)}
}

type xmlCursor struct {
	src     ItemStream
	cols    []Column
	aligned bool
	queue   []*xdm.Element
	closed  bool
}

func (c *xmlCursor) Columns() []Column { return c.cols }

func (c *xmlCursor) Next() ([]xdm.Atomic, error) {
	for {
		if len(c.queue) > 0 {
			rec := c.queue[0]
			c.queue = c.queue[1:]
			row, err := decodeRecord(rec, c.cols)
			if err != nil {
				return nil, err
			}
			obsv.Global.RowsStreamed.Inc()
			return row, nil
		}
		if c.closed {
			return nil, io.EOF
		}
		chunk, err := c.src.Next()
		if err != nil {
			return nil, err // io.EOF included
		}
		for _, it := range chunk {
			el, ok := it.(*xdm.Element)
			switch {
			case ok && el.Name.Local == "RECORD":
				c.queue = append(c.queue, el)
			case ok && el.Name.Local == "RECORDSET":
				c.queue = append(c.queue, el.ChildElements("RECORD")...)
			case c.aligned:
				// Aligned chunks are RECORDSET content items: anything that
				// is not a RECORD element is dropped, exactly as FromXML's
				// ChildElements walk drops it.
			default:
				return nil, fmt.Errorf("resultset: expected RECORDSET element, got %v", it)
			}
		}
	}
}

func (c *xmlCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.queue = nil
	return c.src.Close()
}

// StreamText decodes the §4 text-encoded result incrementally. Aligned
// streams deliver one row's token sequence per chunk and decode it
// immediately; unaligned fragments are buffered and split on the row
// delimiter, which escaping guarantees cannot occur inside values.
func StreamText(src ItemStream, cols []Column) RowCursor {
	return &textCursor{src: src, cols: cols, aligned: isAligned(src)}
}

type textCursor struct {
	src     ItemStream
	cols    []Column
	aligned bool

	pending []string // complete, undecoded row texts (leading '>' stripped)
	partial string   // bytes after the last row delimiter seen
	started bool     // leading row delimiter consumed
	srcEOF  bool
	closed  bool
}

func (c *textCursor) Columns() []Column { return c.cols }

func (c *textCursor) Next() ([]xdm.Atomic, error) {
	for {
		if len(c.pending) > 0 {
			rowText := c.pending[0]
			c.pending = c.pending[1:]
			row, err := decodeTextRow(rowText, c.cols)
			if err != nil {
				return nil, err
			}
			obsv.Global.RowsStreamed.Inc()
			return row, nil
		}
		if c.closed || c.srcEOF {
			return nil, io.EOF
		}
		chunk, err := c.src.Next()
		if err == io.EOF {
			c.srcEOF = true
			// Flush the trailing buffered row; aligned rows complete per
			// chunk, and an empty payload has none.
			if !c.aligned && c.started {
				c.pending = append(c.pending, c.partial)
				c.partial = ""
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, it := range chunk {
			b.WriteString(xdm.StringValue(it))
		}
		if err := c.feed(b.String()); err != nil {
			return nil, err
		}
	}
}

// feed appends one payload fragment, splitting complete rows off into the
// pending queue. Aligned chunks are one whole row each — delimiter
// included — and complete immediately.
func (c *textCursor) feed(text string) error {
	if c.aligned {
		if !strings.HasPrefix(text, RowDelimiter) {
			return fmt.Errorf("resultset: malformed text payload: missing leading row delimiter")
		}
		c.pending = append(c.pending, text[1:])
		return nil
	}
	if !c.started {
		if text == "" {
			return nil
		}
		if !strings.HasPrefix(text, RowDelimiter) {
			return fmt.Errorf("resultset: malformed text payload: missing leading row delimiter")
		}
		c.started = true
		text = text[1:]
	} else {
		text = c.partial + text
		c.partial = ""
	}
	parts := strings.Split(text, RowDelimiter)
	c.pending = append(c.pending, parts[:len(parts)-1]...)
	c.partial = parts[len(parts)-1]
	return nil
}

func (c *textCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.pending, c.partial = nil, ""
	return c.src.Close()
}

// decodeRecord types one RECORD element against the result schema —
// the per-row core FromXML loops over.
func decodeRecord(rec *xdm.Element, cols []Column) ([]xdm.Atomic, error) {
	row := make([]xdm.Atomic, len(cols))
	// Columns with duplicate element names are matched positionally
	// among same-named children.
	used := map[string]int{}
	for i, c := range cols {
		matches := rec.ChildElements(c.ElementName)
		idx := used[c.ElementName]
		used[c.ElementName]++
		if idx >= len(matches) {
			row[i] = nil // absent element = NULL
			continue
		}
		v, err := parseValue(matches[idx].StringValue(), c)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// decodeTextRow types one delimiter-separated row (leading row delimiter
// already stripped) — the per-row core FromText loops over.
func decodeTextRow(rowText string, cols []Column) ([]xdm.Atomic, error) {
	fields := strings.Split(rowText, ColumnDelimiter)
	if len(fields) != len(cols) {
		return nil, fmt.Errorf("resultset: row has %d fields, schema has %d columns", len(fields), len(cols))
	}
	row := make([]xdm.Atomic, len(cols))
	for i, field := range fields {
		if field == NullToken {
			row[i] = nil
			continue
		}
		v, err := parseValue(unescape(field), cols[i])
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// NewStreaming wraps a row cursor as a Rows: a thin pull view until the
// caller needs scrollability (Len, Reset), at which point the remaining
// rows materialize via Materialize.
func NewStreaming(cur RowCursor) *Rows {
	return &Rows{cols: cur.Columns(), cur: cur}
}

// Cursor returns a pull view over this result set, consuming from the
// current position — how already-materialized results (stored procedures,
// metadata statements) join the cursor-shaped driver path.
func (r *Rows) Cursor() RowCursor { return &materializedCursor{r: r} }

type materializedCursor struct {
	r *Rows
}

func (c *materializedCursor) Columns() []Column { return c.r.Columns() }

func (c *materializedCursor) Next() ([]xdm.Atomic, error) {
	if !c.r.Next() {
		if err := c.r.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	return c.r.current()
}

func (c *materializedCursor) Close() error {
	c.r.Close()
	return nil
}
