package bench

import (
	"testing"

	"repro"
)

// TestServeSweepSmall pins the P10 harness itself: a scaled-down fleet
// must complete error-free, record every op class with sane quantiles,
// and leak nothing after the drain.
func TestServeSweepSmall(t *testing.T) {
	r, err := RunServeSweep(aqualogic.Demo(), 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ops) != 4 {
		t.Fatalf("op classes recorded: %d, want 4 (%+v)", len(r.Ops), r.Ops)
	}
	total := 0
	for _, op := range r.Ops {
		total += op.Count
		if op.Errors != 0 {
			t.Errorf("op %s: %d errors under a healthy server", op.Op, op.Errors)
		}
		if op.P50NS <= 0 || op.P99NS < op.P50NS || op.P999NS < op.P99NS || op.MaxNS < op.P999NS {
			t.Errorf("op %s: non-monotone quantiles %+v", op.Op, op)
		}
	}
	if total != 64*4 {
		t.Fatalf("recorded %d ops, want %d", total, 64*4)
	}
	if r.GoroutinesLeaked != 0 {
		t.Fatalf("goroutines leaked after drain: %d", r.GoroutinesLeaked)
	}
	if r.GoroutinePeak <= r.GoroutineBaseline {
		t.Fatalf("sampler never saw the fleet: baseline %d, peak %d", r.GoroutineBaseline, r.GoroutinePeak)
	}
	if r.Server.SessionsOpened < 64 || r.Server.PeakInFlight < 1 {
		t.Fatalf("server counters implausible: %+v", r.Server)
	}
}
