package bench

import (
	"fmt"
	"io"
	"time"
)

// Report runs every experiment and prints the tables EXPERIMENTS.md
// records, in the order of the experiment index in DESIGN.md.
func Report(w io.Writer) error {
	if err := ReportResultHandling(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := ReportTranslation(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := ReportMetadataCache(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := ReportStageBreakdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := ReportEvalJoin(w, DefaultEvalJoinSizes); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := ReportFaultSweep(w, DefaultFaultRates, DefaultFaultRuns); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := ReportCompile(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := ReportStream(w, DefaultStreamRows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	// A reduced P11 sweep: one cardinality just above the parallel
	// threshold keeps the human-readable report quick; the full rows ×
	// workers table is what -evaljson records.
	if err := ReportEvalParallel(w, []int{8192}, DefaultEvalParallelWorkers); err != nil {
		return err
	}
	fmt.Fprintln(w)
	// A reduced P13 sweep for the same reason; -federatejson records the
	// full shards × rows table.
	return ReportFederate(w, []int{4}, []int{4000})
}

// ResultHandlingPoint is one cell of the §4 sweep.
type ResultHandlingPoint struct {
	Rows, Cols            int
	XMLBytes, TextBytes   int
	XMLDecode, TextDecode time.Duration
	SpeedupDecode         float64
	BytesRatio            float64
}

// RunResultHandling measures XML vs text decoding across a size sweep.
func RunResultHandling(rowCounts, colCounts []int, iters int) ([]ResultHandlingPoint, error) {
	var out []ResultHandlingPoint
	for _, cols := range colCounts {
		for _, rows := range rowCounts {
			p, err := BuildPayloads(rows, cols)
			if err != nil {
				return nil, err
			}
			xmlTime, err := timeIt(iters, func() error {
				_, err := p.DecodeXML()
				return err
			})
			if err != nil {
				return nil, err
			}
			textTime, err := timeIt(iters, func() error {
				_, err := p.DecodeText()
				return err
			})
			if err != nil {
				return nil, err
			}
			pt := ResultHandlingPoint{
				Rows: rows, Cols: cols,
				XMLBytes: len(p.XML), TextBytes: len(p.Text),
				XMLDecode:  xmlTime / time.Duration(iters),
				TextDecode: textTime / time.Duration(iters),
			}
			if textTime > 0 {
				pt.SpeedupDecode = float64(xmlTime) / float64(textTime)
			}
			if pt.TextBytes > 0 {
				pt.BytesRatio = float64(pt.XMLBytes) / float64(pt.TextBytes)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// ReportResultHandling prints the P1 table.
func ReportResultHandling(w io.Writer) error {
	fmt.Fprintln(w, "P1  Result handling: XML materialization vs text-delimited (§4)")
	fmt.Fprintln(w, "rows   cols   xml-bytes  text-bytes  bytes-ratio  xml-decode   text-decode  speedup")
	points, err := RunResultHandling([]int{100, 1000, 10000}, []int{2, 4, 8}, 20)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-6d %-6d %-10d %-11d %-12.2f %-12s %-12s %.2fx\n",
			p.Rows, p.Cols, p.XMLBytes, p.TextBytes, p.BytesRatio,
			p.XMLDecode.Round(time.Microsecond), p.TextDecode.Round(time.Microsecond), p.SpeedupDecode)
	}
	return nil
}

// TranslationPoint is one row of the P2 table.
type TranslationPoint struct {
	Name    string
	PerCall time.Duration
}

// RunTranslation measures translation latency per workload class (warm
// metadata cache, mirroring a driver connection in steady state).
func RunTranslation(iters int) ([]TranslationPoint, error) {
	tr, _ := NewDemoTranslator(0, true)
	var out []TranslationPoint
	for _, q := range TranslationWorkload {
		// Warm up (also surfaces translation errors).
		if _, err := tr.Translate(q.SQL); err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		total, err := timeIt(iters, func() error {
			_, err := tr.Translate(q.SQL)
			return err
		})
		if err != nil {
			return nil, err
		}
		out = append(out, TranslationPoint{Name: q.Name, PerCall: total / time.Duration(iters)})
	}
	return out, nil
}

// ReportTranslation prints the P2 table.
func ReportTranslation(w io.Writer) error {
	fmt.Fprintln(w, "P2  Translation latency per query class (§3.2 efficiency goal)")
	fmt.Fprintln(w, "class      per-translate")
	points, err := RunTranslation(200)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-10s %s\n", p.Name, p.PerCall.Round(time.Microsecond))
	}
	return nil
}

// CachePoint is one row of the P3 table.
type CachePoint struct {
	Mode    string
	PerCall time.Duration
}

// RunMetadataCache measures translate latency with a simulated remote
// metadata API: cold (cache invalidated every call) vs warm.
func RunMetadataCache(latency time.Duration, iters int) ([]CachePoint, error) {
	sql := "SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENT FROM CUSTOMERS INNER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"

	coldTr, coldCache := NewDemoTranslator(latency, true)
	cold, err := timeIt(iters, func() error {
		coldCache.Invalidate()
		_, err := coldTr.Translate(sql)
		return err
	})
	if err != nil {
		return nil, err
	}

	warmTr, _ := NewDemoTranslator(latency, true)
	if _, err := warmTr.Translate(sql); err != nil {
		return nil, err
	}
	warm, err := timeIt(iters, func() error {
		_, err := warmTr.Translate(sql)
		return err
	})
	if err != nil {
		return nil, err
	}
	return []CachePoint{
		{Mode: "cold (fetch per query)", PerCall: cold / time.Duration(iters)},
		{Mode: "warm (cached)", PerCall: warm / time.Duration(iters)},
	}, nil
}

// ReportMetadataCache prints the P3 table.
func ReportMetadataCache(w io.Writer) error {
	latency := 500 * time.Microsecond
	fmt.Fprintf(w, "P3  Metadata cache under simulated remote latency (%s per fetch, §3.5)\n", latency)
	fmt.Fprintln(w, "mode                     per-translate")
	points, err := RunMetadataCache(latency, 50)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-24s %s\n", p.Mode, p.PerCall.Round(time.Microsecond))
	}
	return nil
}

func timeIt(iters int, f func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}
