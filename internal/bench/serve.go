// serve.go is the P10 experiment: the network front end under massive
// client concurrency. Thousands of simulated reporting clients — each the
// examples/reporting mix of metadata browsing, an aggregate report join,
// and prepared-statement drill-downs — hammer one server through the
// loopback transport (in-process request dispatch, so client count is
// bounded by goroutines rather than sockets). The harness records exact
// per-op-class latency quantiles (p50/p99/p999), the goroutine and heap
// ceilings the server holds under that load, and — the leak contract —
// whether a single goroutine survives the drain.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/remoteclient"
	"repro/internal/resultset"
	"repro/internal/server"
	"repro/internal/translator"
	"repro/internal/wire"
)

// Default shape of the P10 sweep: the paper's "thousands of concurrent
// users" claim, scaled to one process.
const (
	DefaultServeClients = 1000
	DefaultServeOps     = 6
)

// The client mix, mirroring examples/reporting.
const (
	serveReportSQL = `SELECT C.CITY, COUNT(*) AS ORDERS, SUM(O.TOTAL) AS REVENUE
		FROM CUSTOMERS C INNER JOIN PO_CUSTOMERS O ON C.CUSTOMERID = O.CUSTOMERID
		WHERE C.CITY IS NOT NULL GROUP BY C.CITY HAVING COUNT(*) > 1 ORDER BY 3 DESC`
	serveDrillSQL = `SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS C
		WHERE NOT EXISTS (SELECT 1 FROM PO_CUSTOMERS O WHERE O.CUSTOMERID = C.CUSTOMERID)
		AND CUSTOMERID < ? ORDER BY CUSTOMERID`
	servePointSQL = "SELECT CITY FROM CUSTOMERS WHERE CUSTOMERID = ?"
)

// ServeOpPoint is the latency distribution of one op class, quantiles
// computed exactly over every recorded sample.
type ServeOpPoint struct {
	Op     string `json:"op"`
	Count  int    `json:"count"`
	Errors int    `json:"errors"`
	// FirstError is the first error message this op class saw, kept so a
	// nonzero Errors count in a recorded run is diagnosable after the fact.
	FirstError string `json:"first_error,omitempty"`
	P50NS      int64  `json:"p50_ns"`
	P99NS      int64  `json:"p99_ns"`
	P999NS     int64  `json:"p999_ns"`
	MaxNS      int64  `json:"max_ns"`
}

// ServeReport is the whole P10 run.
type ServeReport struct {
	Experiment   string `json:"experiment"`
	Clients      int    `json:"clients"`
	OpsPerClient int    `json:"ops_per_client"`
	DurationNS   int64  `json:"duration_ns"`
	// ThroughputOpsSec counts completed ops (across classes) per second of
	// wall clock.
	ThroughputOpsSec float64        `json:"throughput_ops_sec"`
	Ops              []ServeOpPoint `json:"ops"`
	// Goroutine and heap ceilings sampled while the fleet was running,
	// and the leak check after the drain: GoroutinesLeaked is how many
	// goroutines outlived (baseline-relative) the last client and the
	// server shutdown — the acceptance number is zero.
	GoroutineBaseline int    `json:"goroutine_baseline"`
	GoroutinePeak     int    `json:"goroutine_peak"`
	GoroutinesLeaked  int    `json:"goroutines_leaked"`
	HeapPeakBytes     uint64 `json:"heap_peak_bytes"`
	// Server counters at the end of the run.
	Server wire.ServerStats `json:"server"`
}

// quantileNS returns the exact q-quantile of a sorted sample.
func quantileNS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * q)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// serveSamples is one client's recorded latencies, merged after the run
// so the hot path takes no shared lock.
type serveSamples struct {
	lat    map[string][]int64
	errs   map[string]int
	errMsg map[string]string
}

// RunServeSweep runs the P10 load: clients concurrent simulated users,
// each performing opsPerClient operations of the reporting mix against
// one loopback server fronting b (callers pass the demo platform; this
// package cannot build it itself without an import cycle through the
// root package's tests).
func RunServeSweep(b server.Backend, clients, opsPerClient int) (*ServeReport, error) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	srv := server.New(b, server.Config{
		MaxSessions:        clients + 16,
		AdmissionWait:      10 * time.Second, // a loaded server queues the fleet, it does not shed it
		SessionIdleTimeout: time.Minute,
		FetchRows:          64,
	})
	h := srv.Handler()

	// Ceiling sampler: goroutine count and live heap while the fleet runs.
	var peakGoroutines int
	var peakHeap uint64
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var ms runtime.MemStats
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-t.C:
				if n := runtime.NumGoroutine(); n > peakGoroutines {
					peakGoroutines = n
				}
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap {
					peakHeap = ms.HeapAlloc
				}
			}
		}
	}()

	start := time.Now()
	all := make([]*serveSamples, clients)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			s := &serveSamples{lat: map[string][]int64{}, errs: map[string]int{}, errMsg: map[string]string{}}
			all[ci] = s
			c, err := remoteclient.Loopback(h)
			if err != nil {
				fail(fmt.Errorf("client %d: handshake: %w", ci, err))
				return
			}
			defer c.Close()
			drill, err := c.Prepare(context.Background(), serveDrillSQL, translator.ModeText)
			if err != nil {
				fail(fmt.Errorf("client %d: prepare: %w", ci, err))
				return
			}
			rec := func(op string, t0 time.Time, err error) {
				s.lat[op] = append(s.lat[op], time.Since(t0).Nanoseconds())
				if err != nil {
					s.errs[op]++
					if s.errMsg[op] == "" {
						s.errMsg[op] = err.Error()
					}
				}
			}
			for i := 0; i < opsPerClient; i++ {
				switch (ci + i) % 4 {
				case 0: // metadata browse
					t0 := time.Now()
					_, err := c.Lookup(catalog.TableRef{Table: "CUSTOMERS"})
					rec("browse", t0, err)
				case 1: // aggregate report join
					t0 := time.Now()
					err := serveDrain(c.Query(context.Background(), serveReportSQL))
					rec("report", t0, err)
				case 2: // prepared drill-down
					t0 := time.Now()
					err := serveDrain(drill.Execute(context.Background(), 1000+ci%50))
					rec("drill", t0, err)
				case 3: // prepared-shape point lookup, ad hoc
					t0 := time.Now()
					err := serveDrain(c.Query(context.Background(), servePointSQL, 1000+(ci+i)%50))
					rec("point", t0, err)
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(samplerStop)
	<-samplerDone
	if firstErr != nil {
		srv.Close()
		return nil, firstErr
	}

	stats := srv.Stats()
	srv.Close()

	// Drain check: every client goroutine, evaluation, and server-owned
	// goroutine must be gone. GC pressure and timer goroutines settle
	// asynchronously, so poll briefly before declaring a leak.
	leaked := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		leaked = runtime.NumGoroutine() - baseline
		if leaked <= 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leaked < 0 {
		leaked = 0
	}

	// Merge per-client samples into per-class distributions.
	merged := map[string][]int64{}
	errs := map[string]int{}
	errMsgs := map[string]string{}
	for _, s := range all {
		if s == nil {
			continue
		}
		for op, v := range s.lat {
			merged[op] = append(merged[op], v...)
		}
		for op, n := range s.errs {
			errs[op] += n
		}
		for op, m := range s.errMsg {
			if errMsgs[op] == "" {
				errMsgs[op] = m
			}
		}
	}
	ops := make([]ServeOpPoint, 0, len(merged))
	total := 0
	for op, v := range merged {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		total += len(v)
		ops = append(ops, ServeOpPoint{
			Op:         op,
			Count:      len(v),
			Errors:     errs[op],
			FirstError: errMsgs[op],
			P50NS:      quantileNS(v, 0.50),
			P99NS:      quantileNS(v, 0.99),
			P999NS:     quantileNS(v, 0.999),
			MaxNS:      v[len(v)-1],
		})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Op < ops[j].Op })

	return &ServeReport{
		Experiment:        "P10 network front end: concurrent reporting clients over the wire protocol",
		Clients:           clients,
		OpsPerClient:      opsPerClient,
		DurationNS:        elapsed.Nanoseconds(),
		ThroughputOpsSec:  float64(total) / elapsed.Seconds(),
		Ops:               ops,
		GoroutineBaseline: baseline,
		GoroutinePeak:     peakGoroutines,
		GoroutinesLeaked:  leaked,
		HeapPeakBytes:     peakHeap,
		Server:            stats,
	}, nil
}

// serveDrain consumes a streaming result to EOF and closes it, returning
// the first error seen on the way.
func serveDrain(rows *resultset.Rows, err error) error {
	if err != nil {
		return err
	}
	for rows.Next() {
	}
	err = rows.Err()
	rows.Close()
	return err
}

// ReportServe prints the P10 table.
func ReportServe(w io.Writer, r *ServeReport) {
	fmt.Fprintf(w, "\nP10 — network front end under load (%d clients × %d ops, %.2fs, %.0f ops/s)\n",
		r.Clients, r.OpsPerClient, time.Duration(r.DurationNS).Seconds(), r.ThroughputOpsSec)
	fmt.Fprintf(w, "%-8s %8s %6s %12s %12s %12s %12s\n", "op", "count", "errs", "p50", "p99", "p999", "max")
	for _, op := range r.Ops {
		fmt.Fprintf(w, "%-8s %8d %6d %12s %12s %12s %12s\n", op.Op, op.Count, op.Errors,
			time.Duration(op.P50NS), time.Duration(op.P99NS), time.Duration(op.P999NS), time.Duration(op.MaxNS))
		if op.FirstError != "" {
			fmt.Fprintf(w, "         first error: %s\n", op.FirstError)
		}
	}
	fmt.Fprintf(w, "goroutines: baseline %d, peak %d, leaked after drain %d; heap peak %.1f MiB\n",
		r.GoroutineBaseline, r.GoroutinePeak, r.GoroutinesLeaked, float64(r.HeapPeakBytes)/(1<<20))
	fmt.Fprintf(w, "server: %d sessions, peak %d queries in flight, %d admission rejections, %d cursors reaped\n",
		r.Server.SessionsOpened, r.Server.PeakInFlight, r.Server.AdmissionRejected, r.Server.CursorsReaped)
}

// WriteServeJSON runs the P10 sweep and writes it as machine-readable
// JSON (conventionally BENCH_serve.json).
func WriteServeJSON(path string, b server.Backend, clients, opsPerClient int) error {
	r, err := RunServeSweep(b, clients, opsPerClient)
	if err != nil {
		return err
	}
	ReportServe(os.Stdout, r)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
