package bench

import "testing"

// TestRunEvalParallelSmall exercises the P11 sweep at a cardinality just
// above the parallel threshold: the parallel run must byte-match serial
// (RunEvalParallel errors on divergence) and every point must be timed.
func TestRunEvalParallelSmall(t *testing.T) {
	points, err := RunEvalParallel([]int{5000}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.Nanos <= 0 || p.SerialNanos <= 0 {
			t.Fatalf("point not timed: %+v", p)
		}
		if p.Rows != 5000 || p.GoMaxProcs < 1 {
			t.Fatalf("point malformed: %+v", p)
		}
	}
	if points[0].Workers != 1 || points[0].SpeedupVs1 != 1 {
		t.Fatalf("baseline point malformed: %+v", points[0])
	}
}

// TestRunEvalParallelRequiresBaseline locks the workers=1-first contract.
func TestRunEvalParallelRequiresBaseline(t *testing.T) {
	if _, err := RunEvalParallel([]int{100}, []int{2, 4}); err == nil {
		t.Fatal("sweep without a workers=1 baseline must be rejected")
	}
}
