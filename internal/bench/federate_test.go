package bench

import (
	"context"
	"testing"

	"repro/internal/xqeval"
)

// TestRunFederateSmall exercises the P13 sweep at one small point: the
// pushdown arm must byte-match the full scatter (RunFederate errors on
// divergence), the pinned scan must touch exactly one shard, and the full
// scatter must touch all of them.
func TestRunFederateSmall(t *testing.T) {
	points, err := RunFederate([]int{4}, []int{2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	scatter, pruned := points[0], points[1]
	if scatter.Pushdown || !pruned.Pushdown {
		t.Fatalf("arm order malformed: %+v", points)
	}
	if scatter.ShardCalls != 4 || pruned.ShardCalls != 1 {
		t.Fatalf("shard calls: scatter=%d pruned=%d, want 4 and 1", scatter.ShardCalls, pruned.ShardCalls)
	}
	if scatter.Nanos <= 0 || pruned.Nanos <= 0 || pruned.ScatterNanos != scatter.Nanos {
		t.Fatalf("points not timed: %+v", points)
	}
}

// TestRunFederateRejectsDegenerate locks the >= 2 shard contract — one
// shard is not a federation.
func TestRunFederateRejectsDegenerate(t *testing.T) {
	if _, err := RunFederate([]int{1}, []int{100}); err == nil {
		t.Fatal("sweep with a single shard must be rejected")
	}
}

// BenchmarkFederatedShardScan is the bench-smoke entry for the federated
// path: one pinned scatter-gather scan per iteration, pushdown enabled.
func BenchmarkFederatedShardScan(b *testing.B) {
	q, err := xqeval.Compile(FederateQuery)
	if err != nil {
		b.Fatal(err)
	}
	e := federateEngine(2000, 4)
	plan, err := e.CompileAST(q, nil)
	if err != nil {
		b.Fatal(err)
	}
	e.SetExec(xqeval.ExecConfig{Workers: federateWorkers})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := drainStreamed(e.EvalStream(ctx, plan, nil, nil)); err != nil {
			b.Fatal(err)
		}
	}
}
