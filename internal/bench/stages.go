package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/obsv"
	"repro/internal/translator"
)

// StageClassPoint is one row of the P5 experiment: cumulative per-stage
// wall time for one workload class, recorded through the observability
// layer's stage hooks rather than end-to-end timers — the breakdown that
// shows where a query class actually spends its time.
type StageClassPoint struct {
	Name  string `json:"class"`
	Iters int    `json:"iters"`
	// StageNanos maps stage name → cumulative nanoseconds across all
	// iterations (translation stages plus evaluate).
	StageNanos map[string]int64 `json:"stage_nanos"`
	// Detail carries one representative translation's stage detail
	// (contexts, tables, wildcards, variables, evaluator steps).
	Detail map[string]int64 `json:"detail"`
}

// TotalNanos sums the point's stages.
func (p StageClassPoint) TotalNanos() int64 {
	var n int64
	for _, v := range p.StageNanos {
		n += v
	}
	return n
}

// RunStageBreakdown translates and evaluates every workload class iters
// times with a stage trace attached, accumulating per-stage wall time.
func RunStageBreakdown(iters int) ([]StageClassPoint, error) {
	app, _, engine := demo.Setup(demo.DefaultSizes)
	trans := translator.New(catalog.NewCache(app))
	var out []StageClassPoint
	for _, q := range TranslationWorkload {
		// Warm up metadata and surface errors before measuring.
		if _, err := trans.Translate(q.SQL); err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		pt := StageClassPoint{
			Name:       q.Name,
			Iters:      iters,
			StageNanos: map[string]int64{},
			Detail:     map[string]int64{},
		}
		for i := 0; i < iters; i++ {
			tr := obsv.NewTrace(q.SQL)
			res, err := trans.TranslateTraced(q.SQL, tr)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.Name, err)
			}
			if _, err := engine.EvalWithTrace(context.Background(), res.Query, nil, tr); err != nil {
				return nil, fmt.Errorf("%s: evaluate: %w", q.Name, err)
			}
			tr.MergeStageNanos(pt.StageNanos)
			if i == 0 {
				for _, ev := range tr.Stages() {
					for _, d := range ev.Detail {
						pt.Detail[d.Key] += d.Value
					}
				}
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// ReportStageBreakdown prints the P5 table: mean per-stage time per class.
func ReportStageBreakdown(w io.Writer) error {
	const iters = 50
	fmt.Fprintln(w, "P5  Per-stage pipeline breakdown (obsv stage traces)")
	points, err := RunStageBreakdown(iters)
	if err != nil {
		return err
	}
	stages := []string{}
	for st := obsv.Stage(0); st < obsv.NumStages; st++ {
		stages = append(stages, st.String())
	}
	fmt.Fprintf(w, "%-10s", "class")
	for _, s := range stages {
		fmt.Fprintf(w, " %-12s", s)
	}
	fmt.Fprintf(w, " %s\n", "total")
	for _, p := range points {
		fmt.Fprintf(w, "%-10s", p.Name)
		for _, s := range stages {
			mean := time.Duration(p.StageNanos[s] / int64(p.Iters))
			fmt.Fprintf(w, " %-12s", mean.Round(100*time.Nanosecond))
		}
		fmt.Fprintf(w, " %s\n", time.Duration(p.TotalNanos()/int64(p.Iters)).Round(100*time.Nanosecond))
	}
	return nil
}

// StageReport is the JSON document WriteStageJSON produces (BENCH_stages.json).
type StageReport struct {
	Experiment string            `json:"experiment"`
	Iters      int               `json:"iters"`
	Classes    []StageClassPoint `json:"classes"`
}

// WriteStageJSON runs the stage breakdown and writes it as JSON to path
// (conventionally BENCH_stages.json) — the machine-readable form later
// perf PRs diff against.
func WriteStageJSON(path string, iters int) error {
	points, err := RunStageBreakdown(iters)
	if err != nil {
		return err
	}
	doc := StageReport{Experiment: "P5 per-stage pipeline breakdown", Iters: iters, Classes: points}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
