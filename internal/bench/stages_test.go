package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunStageBreakdown(t *testing.T) {
	points, err := RunStageBreakdown(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(TranslationWorkload) {
		t.Fatalf("%d points for %d classes", len(points), len(TranslationWorkload))
	}
	for _, p := range points {
		for _, stage := range []string{"lex", "parse", "semantic-validate", "restructure", "generate", "serialize", "evaluate"} {
			if _, ok := p.StageNanos[stage]; !ok {
				t.Errorf("class %s missing stage %q: %v", p.Name, stage, p.StageNanos)
			}
		}
		if p.TotalNanos() <= 0 {
			t.Errorf("class %s has no recorded time", p.Name)
		}
		if p.Detail["contexts"] == 0 {
			t.Errorf("class %s detail missing contexts: %v", p.Name, p.Detail)
		}
	}
}

func TestWriteStageJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_stages.json")
	if err := WriteStageJSON(path, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc StageReport
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Iters != 1 || len(doc.Classes) != len(TranslationWorkload) {
		t.Fatalf("report = %+v", doc)
	}
	for _, c := range doc.Classes {
		if c.StageNanos["restructure"] <= 0 {
			t.Errorf("class %s: restructure time missing after JSON round trip", c.Name)
		}
	}
}
