package bench

import (
	"strings"
	"testing"
	"time"
)

func TestWideTableShape(t *testing.T) {
	app, engine := WideTable(10, 5)
	meta, err := app.Lookup(tableRef("W"))
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Function.Columns) != 5 {
		t.Fatalf("columns = %d", len(meta.Function.Columns))
	}
	rows, err := engine.Call("ld:Bench/W", "W", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestBuildPayloadsDecodeEquivalence(t *testing.T) {
	p, err := BuildPayloads(50, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.XML == "" || p.Text == "" {
		t.Fatal("empty payloads")
	}
	xmlRows, err := p.DecodeXML()
	if err != nil {
		t.Fatal(err)
	}
	textRows, err := p.DecodeText()
	if err != nil {
		t.Fatal(err)
	}
	if xmlRows.Len() != 50 || textRows.Len() != 50 {
		t.Fatalf("rows = %d / %d", xmlRows.Len(), textRows.Len())
	}
	// Both paths must decode to identical values, including NULLs and
	// values containing markup characters.
	for xmlRows.Next() && textRows.Next() {
		for i := range p.Columns {
			a, aok, err := xmlRows.String(i)
			if err != nil {
				t.Fatal(err)
			}
			b, bok, err := textRows.String(i)
			if err != nil {
				t.Fatal(err)
			}
			if a != b || aok != bok {
				t.Fatalf("column %d differs: xml %q/%v vs text %q/%v", i, a, aok, b, bok)
			}
		}
	}
}

func TestPayloadsContainEscapedData(t *testing.T) {
	p, err := BuildPayloads(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The generator plants "100% & <sons>" strings; both encodings must
	// carry them escaped.
	if !strings.Contains(p.XML, "&amp;") || !strings.Contains(p.Text, "&amp;") {
		t.Fatal("expected escaped ampersands in payloads")
	}
}

func TestRunResultHandlingSmall(t *testing.T) {
	points, err := RunResultHandling([]int{20}, []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	pt := points[0]
	if pt.XMLBytes <= pt.TextBytes {
		t.Fatalf("XML should be larger: %d vs %d", pt.XMLBytes, pt.TextBytes)
	}
	if pt.SpeedupDecode <= 0 || pt.BytesRatio <= 1 {
		t.Fatalf("point = %+v", pt)
	}
}

func TestRunTranslationCoversWorkload(t *testing.T) {
	points, err := RunTranslation(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(TranslationWorkload) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.PerCall <= 0 {
			t.Fatalf("%s: zero duration", p.Name)
		}
	}
}

func TestRunMetadataCacheColdSlower(t *testing.T) {
	points, err := RunMetadataCache(200*time.Microsecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	cold, warm := points[0].PerCall, points[1].PerCall
	if cold <= warm {
		t.Fatalf("cold (%v) should exceed warm (%v)", cold, warm)
	}
}

func TestReportRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full report sweep in -short mode")
	}
	var sb strings.Builder
	// A reduced sweep through the public pieces keeps this test fast.
	if _, err := RunResultHandling([]int{50}, []int{2}, 2); err != nil {
		t.Fatal(err)
	}
	if err := ReportTranslation(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "complex") {
		t.Fatalf("report output:\n%s", sb.String())
	}
}
