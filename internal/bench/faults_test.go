package bench

import "testing"

// TestRunFaultSweepSmall exercises the P7 sweep at a size small enough
// for the test suite: at rate 0 both arms must go clean; at a high rate
// the defended arm must survive strictly more queries than the
// undefended one and show retries spent doing it.
func TestRunFaultSweepSmall(t *testing.T) {
	points, err := RunFaultSweep([]float64{0, 0.2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	clean := points[0]
	if clean.Undefended.Errors != 0 || clean.Defended.Errors != 0 {
		t.Fatalf("rate 0 had errors: %+v", clean)
	}
	faulty := points[1]
	if faulty.Undefended.Errors == 0 {
		t.Fatalf("rate 0.2 undefended arm saw no faults: %+v", faulty)
	}
	if faulty.Defended.OK <= faulty.Undefended.OK {
		t.Fatalf("defenses did not improve survival: %+v", faulty)
	}
	if faulty.Retries == 0 {
		t.Fatalf("defended arm reported no retries: %+v", faulty)
	}
}
