// overload.go is the P12 experiment: end-to-end overload resilience.
// A fleet of closed-loop clients offers the server twice its weighted
// admission capacity, sustained. The contract under that abuse has
// three clauses, each measured here: queries the server accepts keep a
// bounded tail (p99 within a small multiple of the uncontended p99 —
// overload slows admitted work, it does not collapse it), queries the
// server sheds fail fast with a typed unavailable inside the admission
// deadline (never a hang, never an untyped error), and when the fleet
// drains, not one goroutine survives.
//
// The sweep runs two phases against separately configured servers. The
// uncontended phase measures the workload's natural p99 at half
// capacity; the overload phase then sets the admission deadline to 2×
// that figure — the deadline-aware queue bounds every accepted query's
// wait, so accepted p99 ≤ uncontended p99 + deadline ≈ 3× uncontended
// by construction, and everything that cannot start inside the
// deadline is shed instead of served late.
package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/aqerr"
	"repro/internal/remoteclient"
	"repro/internal/server"
	"repro/internal/translator"
	"repro/internal/wire"
)

// Default shape of the P12 sweep. Capacity is deliberately small: the
// point of admission control is to pin in-flight work at what the box
// can actually serve, and the benchmark box may have a single core —
// both phases then run the same admitted concurrency and the comparison
// isolates queueing + shedding overhead, not CPU sharing.
const (
	DefaultOverloadCapacity = 2
	DefaultOverloadOps      = 40
)

// The overload mix: an aggregate join interleaved with point lookups.
// Which one the server's cost model scores heavier is decided at run
// time (lazy scan observation re-costs statements as the warm-up phase
// executes them), so the sweep calibrates CostPerSlot after phase 1
// from the settled estimates rather than assuming a ranking.
const (
	overloadReportSQL = serveReportSQL
	overloadPointSQL  = servePointSQL
)

// OverloadPhase is one phase's measured outcome.
type OverloadPhase struct {
	Name    string `json:"name"`
	Clients int    `json:"clients"`
	Ops     int    `json:"ops"`
	// Accepted ops completed normally; Shed ops failed fast with a typed
	// unavailable (or deadline) error. Untyped counts everything else —
	// the acceptance number is zero.
	Accepted     int    `json:"accepted"`
	Shed         int    `json:"shed"`
	Untyped      int    `json:"untyped"`
	FirstUntyped string `json:"first_untyped,omitempty"`
	DurationNS   int64  `json:"duration_ns"`

	AcceptedP50NS int64 `json:"accepted_p50_ns"`
	AcceptedP99NS int64 `json:"accepted_p99_ns"`
	AcceptedMaxNS int64 `json:"accepted_max_ns"`
	// Shed latency is time-to-typed-failure: how long a rejected caller
	// waited to learn it was rejected.
	ShedP50NS int64 `json:"shed_p50_ns"`
	ShedP99NS int64 `json:"shed_p99_ns"`
	ShedMaxNS int64 `json:"shed_max_ns"`
}

// OverloadReport is the whole P12 run.
type OverloadReport struct {
	Experiment string `json:"experiment"`
	// Capacity is the weighted admission capacity (slots); the overload
	// phase offers 2× that in closed-loop clients.
	Capacity        int   `json:"capacity"`
	AdmissionWaitNS int64 `json:"admission_wait_ns"`

	// Calibration read back from the server's own settled cost estimates
	// after the warm-up phase: the heavier statement's compiled cost and
	// admission weight versus the cheaper statement's (always weight 1).
	CostPerSlot int64 `json:"cost_per_slot"`
	HeavyCost   int64 `json:"heavy_cost"`
	CheapCost   int64 `json:"cheap_cost"`
	HeavyWeight int64 `json:"heavy_weight"`
	HeavyIsJoin bool  `json:"heavy_is_join"`

	Uncontended OverloadPhase `json:"uncontended"`
	Overload    OverloadPhase `json:"overload"`

	// AcceptedP99Ratio is overload accepted p99 over uncontended p99 —
	// the bounded-tail clause; the recorded acceptance bound is 3.
	AcceptedP99Ratio float64 `json:"accepted_p99_ratio"`

	GoroutineBaseline int `json:"goroutine_baseline"`
	GoroutinePeak     int `json:"goroutine_peak"`
	GoroutinesLeaked  int `json:"goroutines_leaked"`
	// Overload-phase server counters: the shed split by reason and the
	// brownout level live here.
	Server wire.ServerStats `json:"server"`
}

// runOverloadPhase drives clients closed-loop clients (each its own wire
// session, retries disabled so every shed is observed raw) for
// opsPerClient ops of the report/point mix.
func runOverloadPhase(h http.Handler, name string, clients, opsPerClient int) (OverloadPhase, error) {
	type sample struct {
		accepted []int64
		shed     []int64
		untyped  int
		first    string
	}
	all := make([]sample, clients)
	start := time.Now()
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			s := &all[ci]
			c, err := remoteclient.LoopbackOptions(h, remoteclient.Options{MaxRetries: -1})
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("client %d: handshake: %w", ci, err)
				}
				errMu.Unlock()
				return
			}
			defer c.Close()
			for i := 0; i < opsPerClient; i++ {
				sql, args := overloadPointSQL, []any{1000 + (ci+i)%50}
				if (ci+i)%3 == 0 {
					sql, args = overloadReportSQL, nil
				}
				t0 := time.Now()
				err := serveDrain(c.Query(context.Background(), sql, args...))
				lat := time.Since(t0).Nanoseconds()
				switch {
				case err == nil:
					s.accepted = append(s.accepted, lat)
				case isTypedShed(err):
					s.shed = append(s.shed, lat)
				default:
					s.untyped++
					if s.first == "" {
						s.first = err.Error()
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return OverloadPhase{}, firstErr
	}

	var accepted, shed []int64
	untyped := 0
	first := ""
	for i := range all {
		accepted = append(accepted, all[i].accepted...)
		shed = append(shed, all[i].shed...)
		untyped += all[i].untyped
		if first == "" {
			first = all[i].first
		}
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	sort.Slice(shed, func(i, j int) bool { return shed[i] < shed[j] })
	p := OverloadPhase{
		Name: name, Clients: clients, Ops: clients * opsPerClient,
		Accepted: len(accepted), Shed: len(shed), Untyped: untyped, FirstUntyped: first,
		DurationNS:    elapsed.Nanoseconds(),
		AcceptedP50NS: quantileNS(accepted, 0.50),
		AcceptedP99NS: quantileNS(accepted, 0.99),
		ShedP50NS:     quantileNS(shed, 0.50),
		ShedP99NS:     quantileNS(shed, 0.99),
	}
	if n := len(accepted); n > 0 {
		p.AcceptedMaxNS = accepted[n-1]
	}
	if n := len(shed); n > 0 {
		p.ShedMaxNS = shed[n-1]
	}
	return p, nil
}

// isTypedShed reports whether err is an acceptable overload outcome: a
// typed unavailable (admission shed, brownout) or a typed deadline
// failure. Anything else under pure overload — no fault injection here —
// is a defense gap.
func isTypedShed(err error) bool {
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) {
		return false
	}
	return qe.Kind == aqerr.KindUnavailable || qe.Kind == aqerr.KindTimeout
}

// RunOverloadSweep runs the P12 overload study against b with the given
// weighted admission capacity.
func RunOverloadSweep(b server.Backend, capacity, opsPerClient int) (*OverloadReport, error) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	var peakGoroutines int
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-t.C:
				if n := runtime.NumGoroutine(); n > peakGoroutines {
					peakGoroutines = n
				}
			}
		}
	}()
	stopSampler := func() {
		close(samplerStop)
		<-samplerDone
	}

	// Phase 1 — uncontended: as many clients as the server will admit at
	// once, generous admission deadline, no sheds expected. This
	// calibrates the workload's p99 at exactly the concurrency the
	// overload phase is allowed to run (so the ratio isolates
	// queueing + shedding overhead), and warms the engine's lazy scan
	// statistics so phase 2 sees settled cost estimates.
	uncontendedSrv := server.New(b, server.Config{
		MaxConcurrentQueries: capacity,
		CostPerSlot:          -1, // count-only: phase 1 measures the workload, not the policy
		AdmissionWait:        10 * time.Second,
		SessionIdleTimeout:   time.Minute,
		FetchRows:            64,
	})
	uncontended, err := runOverloadPhase(uncontendedSrv.Handler(), "uncontended", capacity, opsPerClient)
	uncontendedSrv.Close()
	if err != nil {
		stopSampler()
		return nil, err
	}

	// Cost calibration, from the same compile cache phase 2's server will
	// hit: one admission slot per cheapest-statement cost, so the cheap
	// class weighs 1 and the heavy class ≥2 — the discrimination
	// cost-aware admission and brownout act on. Which statement is heavy
	// is the cost model's call, read back here, not assumed.
	costOf := func(sql string) int64 {
		cq, cerr := b.CompileContext(context.Background(), sql, translator.ModeText)
		if cerr != nil {
			return 1
		}
		return cq.Cost()
	}
	reportCost, pointCost := costOf(overloadReportSQL), costOf(overloadPointSQL)
	heavyCost, cheapCost := reportCost, pointCost
	if pointCost > reportCost {
		heavyCost, cheapCost = pointCost, reportCost
	}
	costPerSlot := cheapCost + 1
	heavyWeight := 1 + (heavyCost-1)/costPerSlot
	if heavyWeight > int64(capacity) {
		heavyWeight = int64(capacity)
	}

	// Phase 2 — sustained 2× overload. The admission deadline is 2× the
	// uncontended p99 (floored so tiny workloads don't round it to
	// nothing): every accepted query waited at most that long before
	// starting, bounding accepted p99 at ~3× uncontended, and everything
	// that could not start inside it is shed instead of served late.
	wait := 2 * time.Duration(uncontended.AcceptedP99NS)
	if wait < 5*time.Millisecond {
		wait = 5 * time.Millisecond
	}
	// The queue holds half the capacity: at 2× closed-loop load the line
	// is always longer than that, so the excess is genuinely shed
	// (queue-full, then brownout once pressure registers) rather than
	// parked — a queue sized to absorb the whole overload would just
	// relabel the latency.
	queue := capacity / 2
	if queue < 1 {
		queue = 1
	}
	overloadSrv := server.New(b, server.Config{
		MaxConcurrentQueries: capacity,
		CostPerSlot:          costPerSlot,
		MaxQueryWeight:       int64(capacity),
		AdmissionWait:        wait,
		AdmissionQueue:       queue,
		BrownoutDecay:        100 * time.Millisecond,
		SessionIdleTimeout:   time.Minute,
		FetchRows:            64,
	})
	overload, err := runOverloadPhase(overloadSrv.Handler(), "overload 2x", capacity*2, opsPerClient)
	stats := overloadSrv.Stats()
	overloadSrv.Close()
	stopSampler()
	if err != nil {
		return nil, err
	}

	// Drain check: the acceptance number is zero goroutines leaked.
	leaked := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		leaked = runtime.NumGoroutine() - baseline
		if leaked <= 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leaked < 0 {
		leaked = 0
	}

	ratio := 0.0
	if uncontended.AcceptedP99NS > 0 {
		ratio = float64(overload.AcceptedP99NS) / float64(uncontended.AcceptedP99NS)
	}
	return &OverloadReport{
		Experiment:        "P12 overload resilience: sustained 2x load vs cost-aware admission, deadline queue, brownout",
		Capacity:          capacity,
		AdmissionWaitNS:   wait.Nanoseconds(),
		CostPerSlot:       costPerSlot,
		HeavyCost:         heavyCost,
		CheapCost:         cheapCost,
		HeavyWeight:       heavyWeight,
		HeavyIsJoin:       reportCost >= pointCost,
		Uncontended:       uncontended,
		Overload:          overload,
		AcceptedP99Ratio:  ratio,
		GoroutineBaseline: baseline,
		GoroutinePeak:     peakGoroutines,
		GoroutinesLeaked:  leaked,
		Server:            stats,
	}, nil
}

// ReportOverload prints the P12 table.
func ReportOverload(w io.Writer, r *OverloadReport) {
	fmt.Fprintf(w, "\nP12 — overload resilience (capacity %d slots, admission deadline %s)\n",
		r.Capacity, time.Duration(r.AdmissionWaitNS))
	heavy := "point lookup"
	if r.HeavyIsJoin {
		heavy = "aggregate join"
	}
	fmt.Fprintf(w, "cost calibration: heavy class = %s (cost %d, weight %d); cheap cost %d, %d cost units/slot\n",
		heavy, r.HeavyCost, r.HeavyWeight, r.CheapCost, r.CostPerSlot)
	fmt.Fprintf(w, "%-12s %7s %7s %7s %7s %12s %12s %12s %12s\n",
		"phase", "clients", "accept", "shed", "untyped", "acc p50", "acc p99", "shed p50", "shed p99")
	for _, p := range []OverloadPhase{r.Uncontended, r.Overload} {
		fmt.Fprintf(w, "%-12s %7d %7d %7d %7d %12s %12s %12s %12s\n",
			p.Name, p.Clients, p.Accepted, p.Shed, p.Untyped,
			time.Duration(p.AcceptedP50NS), time.Duration(p.AcceptedP99NS),
			time.Duration(p.ShedP50NS), time.Duration(p.ShedP99NS))
		if p.FirstUntyped != "" {
			fmt.Fprintf(w, "             first untyped: %s\n", p.FirstUntyped)
		}
	}
	fmt.Fprintf(w, "accepted p99 under 2x overload = %.2fx uncontended (acceptance bound 3x)\n", r.AcceptedP99Ratio)
	fmt.Fprintf(w, "sheds by reason: queue-full=%d queue-timeout=%d brownout=%d (brownout level at end: %d)\n",
		r.Server.ShedQueueFull, r.Server.ShedQueueTimeout, r.Server.ShedBrownout, r.Server.BrownoutLevel)
	fmt.Fprintf(w, "goroutines: baseline %d, peak %d, leaked after drain %d\n",
		r.GoroutineBaseline, r.GoroutinePeak, r.GoroutinesLeaked)
}

// WriteOverloadJSON runs the P12 sweep and writes it as machine-readable
// JSON (conventionally BENCH_overload.json).
func WriteOverloadJSON(path string, b server.Backend, capacity, opsPerClient int) error {
	r, err := RunOverloadSweep(b, capacity, opsPerClient)
	if err != nil {
		return err
	}
	ReportOverload(os.Stdout, r)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
