package bench

import (
	"testing"
	"time"

	"repro"
)

// TestOverloadSweepSmall pins the P12 harness and the overload contract
// it measures, at a scale safe for CI: under 2× sustained load every op
// either completes or sheds with a typed error (zero untyped), sheds
// fail fast relative to the admission deadline, and the drain leaks
// nothing. The 3× accepted-p99 bound is recorded, not asserted here —
// a loaded CI box adds scheduler noise the experiment run does not have —
// but a collapse past 10× still fails.
func TestOverloadSweepSmall(t *testing.T) {
	r, err := RunOverloadSweep(aqualogic.Demo(), DefaultOverloadCapacity, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []OverloadPhase{r.Uncontended, r.Overload} {
		if p.Untyped != 0 {
			t.Errorf("phase %s: %d untyped failures (first: %s)", p.Name, p.Untyped, p.FirstUntyped)
		}
		if p.Accepted+p.Shed+p.Untyped != p.Ops {
			t.Errorf("phase %s: ops unaccounted: %d+%d+%d != %d",
				p.Name, p.Accepted, p.Shed, p.Untyped, p.Ops)
		}
	}
	if r.Uncontended.Shed != 0 {
		t.Errorf("uncontended phase shed %d ops", r.Uncontended.Shed)
	}
	if r.Overload.Shed == 0 {
		t.Error("overload phase shed nothing — admission control never engaged")
	}
	// Fast-fail: a shed answers well inside the admission deadline plus
	// scheduling slack; it must never cost what a served query costs.
	if limit := r.AdmissionWaitNS + (100 * time.Millisecond).Nanoseconds(); r.Overload.ShedP99NS > limit {
		t.Errorf("shed p99 %s exceeds admission deadline %s + slack",
			time.Duration(r.Overload.ShedP99NS), time.Duration(r.AdmissionWaitNS))
	}
	if r.AcceptedP99Ratio > 10 {
		t.Errorf("accepted p99 collapsed under overload: %.1fx uncontended", r.AcceptedP99Ratio)
	}
	if r.HeavyWeight < 2 {
		t.Errorf("cost calibration produced no discrimination: heavy weight %d", r.HeavyWeight)
	}
	if r.GoroutinesLeaked != 0 {
		t.Fatalf("goroutines leaked after drain: %d", r.GoroutinesLeaked)
	}
}
