package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"syscall"
	"time"

	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// evalparallel.go is the P11 workload: morsel-style parallel execution of a
// scan that performs one simulated remote data-service call per row — the
// shape the paper's distributed join strategies (§3.3) care about, where
// per-row latency, not CPU, dominates. The sweep times the same compiled
// query at several worker counts and byte-compares every parallel run
// against workers=1, which is the plain serial path.
//
// The simulated remote call blocks in a real nanosleep syscall rather than
// time.Sleep: a blocking syscall releases the goroutine's P to the runtime,
// so worker overlap (and therefore speedup) is visible even on a single-CPU
// host, exactly as it would be against a network data service.

// EvalParallelQuery is the P11 query: an invariant scan whose per-row work
// is one dependent remote call. Written directly in XQuery because the
// interesting axis is the evaluator, not the translator.
const EvalParallelQuery = `import schema namespace b = "ld:BenchParallel" at "BenchParallel.xsd";
for $c in b:CUSTOMERS()
return <RECORD>{$c/CUSTOMERID}{b:CUSTDETAIL($c/CUSTOMERID)}</RECORD>`

// DefaultEvalParallelRows is the outer-scan cardinality sweep.
var DefaultEvalParallelRows = []int{10_000, 100_000}

// DefaultEvalParallelWorkers is the degree-of-parallelism sweep; it must
// start at 1, the serial baseline every other point is compared against.
var DefaultEvalParallelWorkers = []int{1, 2, 4, 8}

// evalParallelCallNanos is the simulated per-row remote latency requested
// from the kernel. The effective floor is higher (timer slack), which is
// fine: the sweep reports measured wall time, not the nominal latency.
const evalParallelCallNanos = 100_000

// EvalParallelPoint is one row of the P11 table.
type EvalParallelPoint struct {
	// Workload names the swept query shape.
	Workload string `json:"workload"`
	// Rows is the outer-scan cardinality (one remote call per row).
	Rows int `json:"rows"`
	// Workers is the configured degree of parallelism; 1 is the serial path.
	Workers int `json:"workers"`
	// GoMaxProcs records the host parallelism the run had available —
	// context for the speedup (remote-latency workloads overlap even at 1).
	GoMaxProcs int `json:"gomaxprocs"`
	// Nanos is the measured wall time of one full evaluation.
	Nanos int64 `json:"ns"`
	// SerialNanos is the workers=1 wall time for the same cardinality,
	// repeated on every point so each row is self-contained.
	SerialNanos int64 `json:"serial_ns"`
	// SpeedupVs1 is SerialNanos / Nanos.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// evalParallelEngine registers the P11 sources: CUSTOMERS with n rows, and
// CUSTDETAIL, a per-row "remote" call that blocks in a nanosleep syscall
// before returning a detail element derived from its argument.
func evalParallelEngine(n int) *xqeval.Engine {
	customers := make([]*xdm.Element, n)
	for i := 0; i < n; i++ {
		row := xdm.NewElement("CUSTOMERS")
		row.AddChild(xdm.NewTextElement("CUSTOMERID", fmt.Sprintf("%d", 1000+i)))
		row.AddChild(xdm.NewTextElement("CUSTOMERNAME", fmt.Sprintf("Customer %d", i)))
		customers[i] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:BenchParallel", "CUSTOMERS", customers)
	e.RegisterContext("ld:BenchParallel", "CUSTDETAIL", func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		ts := syscall.Timespec{Nsec: evalParallelCallNanos}
		syscall.Nanosleep(&ts, nil)
		id := ""
		if len(args) == 1 && len(args[0]) == 1 {
			if el, ok := args[0][0].(*xdm.Element); ok {
				id = el.StringValue()
			} else {
				id = args[0][0].String()
			}
		}
		det := xdm.NewElement("CUSTDETAIL")
		det.AddChild(xdm.NewTextElement("CUSTID", id))
		det.AddChild(xdm.NewTextElement("TIER", fmt.Sprintf("T%d", len(id)%3)))
		return xdm.SequenceOf(det), nil
	})
	return e
}

// drainStreamed pulls a cursor dry, folding each chunk's serialization
// into a rolling FNV-1a digest and dropping the rows immediately — the
// consumption pattern of a real streaming client, and deliberately free of
// a growing materialized result whose GC scans would otherwise dominate
// the large points on a small host. The digest still pins byte-identity
// across worker counts: same rows in the same order, same digest.
func drainStreamed(cur *xqeval.Cursor) (digest uint64, rows int64, err error) {
	defer cur.Close()
	digest = 14695981039346656037 // FNV-1a offset basis
	for {
		chunk, err := cur.Next()
		if err == io.EOF {
			return digest, rows, nil
		}
		if err != nil {
			return digest, rows, err
		}
		for _, b := range []byte(xdm.MarshalSequence(chunk)) {
			digest ^= uint64(b)
			digest *= 1099511628211 // FNV-1a prime
		}
		rows++
	}
}

// RunEvalParallel sweeps rows × workers over the P11 remote-call scan. The
// query is compiled once per cardinality through the stats-aware path
// (CompileAST, the production pipeline), executed through the streaming
// cursor — the pipeline the morsel merger feeds in production — and
// re-run under each worker count; every run's output must be
// byte-identical (same row digest and count) to the workers=1 run of the
// same cardinality.
func RunEvalParallel(rowSizes, workerCounts []int) ([]EvalParallelPoint, error) {
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		return nil, fmt.Errorf("eval parallel sweep: worker counts must start at 1 (the serial baseline), got %v", workerCounts)
	}
	q, err := xqeval.Compile(EvalParallelQuery)
	if err != nil {
		return nil, fmt.Errorf("eval parallel workload: %w", err)
	}
	ctx := context.Background()
	gmp := runtime.GOMAXPROCS(0)

	var out []EvalParallelPoint
	for _, n := range rowSizes {
		e := evalParallelEngine(n)
		plan, err := e.CompileAST(q, nil)
		if err != nil {
			return nil, fmt.Errorf("eval parallel compile (%d rows): %w", n, err)
		}
		var baseDigest uint64
		var baseRows, serialNanos int64
		for _, w := range workerCounts {
			e.SetExec(xqeval.ExecConfig{Workers: w})
			runtime.GC() // level the GC debt left by earlier points
			start := time.Now()
			digest, rows, err := drainStreamed(e.EvalStream(ctx, plan, nil, nil))
			if err != nil {
				return nil, fmt.Errorf("eval parallel %d rows × %d workers: %w", n, w, err)
			}
			elapsed := time.Since(start).Nanoseconds()
			if w == 1 {
				baseDigest, baseRows, serialNanos = digest, rows, elapsed
			} else if digest != baseDigest || rows != baseRows {
				return nil, fmt.Errorf("eval parallel %d rows × %d workers: output diverges from serial", n, w)
			}
			pt := EvalParallelPoint{
				Workload: "remote-call scan", Rows: n, Workers: w,
				GoMaxProcs: gmp, Nanos: elapsed, SerialNanos: serialNanos,
			}
			if elapsed > 0 {
				pt.SpeedupVs1 = float64(serialNanos) / float64(elapsed)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// ReportEvalParallel prints the P11 table.
func ReportEvalParallel(w io.Writer, rowSizes, workerCounts []int) error {
	fmt.Fprintln(w, "P11 Parallel execution: morsel workers over a remote-call scan")
	fmt.Fprintf(w, "rows    workers  gomaxprocs  elapsed      speedup vs 1\n")
	points, err := RunEvalParallel(rowSizes, workerCounts)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-7d %-8d %-11d %-12s %.1fx\n",
			p.Rows, p.Workers, p.GoMaxProcs,
			time.Duration(p.Nanos).Round(time.Millisecond), p.SpeedupVs1)
	}
	return nil
}
