package bench

import "testing"

// TestRunEvalJoinSmall exercises the P6 sweep at a size small enough for
// the test suite: the point must verify naive == planned (RunEvalJoin
// errors on divergence), report the exact join cardinality, and show the
// planned pipeline no slower than naive.
func TestRunEvalJoinSmall(t *testing.T) {
	points, err := RunEvalJoin([]int{60})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	pt := points[0]
	if pt.Rows != 60 {
		t.Fatalf("join rows = %d, want 60 (every payment matches one customer)", pt.Rows)
	}
	if pt.NaiveNanos <= 0 || pt.PlannedNanos <= 0 {
		t.Fatalf("point not timed: %+v", pt)
	}
	if pt.Speedup < 1 {
		t.Fatalf("planned slower than naive at 60x60: %+v", pt)
	}
}
