package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/translator"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// EvalJoinSQL is the P6 workload: the paper's canonical two-table equi-join
// (Example 5's shape), which the translator renders as a nested double-for
// FLWOR and the evaluator's planner turns into a hash join.
const EvalJoinSQL = "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID"

// DefaultEvalJoinSizes is the per-side cardinality sweep recorded in
// EXPERIMENTS.md (each point joins N customers against N payments).
var DefaultEvalJoinSizes = []int{100, 500, 1000, 2000}

// EvalJoinPoint is one row of the P6 table: the same translated query
// executed by the naive nested-loop pipeline and by the planned pipeline
// over identical data, with the results checked equal.
type EvalJoinPoint struct {
	Left         int     `json:"left"`
	Right        int     `json:"right"`
	Rows         int     `json:"rows"`
	NaiveIters   int     `json:"naive_iters"`
	PlannedIters int     `json:"planned_iters"`
	NaiveNanos   int64   `json:"naive_ns"`
	PlannedNanos int64   `json:"planned_ns"`
	Speedup      float64 `json:"speedup"`
}

// evalJoinEngine registers synthetic CUSTOMERS (left rows) and PAYMENTS
// (right rows) with exact cardinalities under the demo namespaces. Every
// payment's CUSTID hits exactly one customer, so the join yields `right`
// rows while the naive pipeline still enumerates left×right pairs.
func evalJoinEngine(left, right int) *xqeval.Engine {
	customers := make([]*xdm.Element, left)
	for i := 0; i < left; i++ {
		row := xdm.NewElement("CUSTOMERS")
		row.AddChild(xdm.NewTextElement("CUSTOMERID", fmt.Sprintf("%d", 1000+i)))
		row.AddChild(xdm.NewTextElement("CUSTOMERNAME", fmt.Sprintf("Customer %d", i)))
		customers[i] = row
	}
	payments := make([]*xdm.Element, right)
	for j := 0; j < right; j++ {
		row := xdm.NewElement("PAYMENTS")
		row.AddChild(xdm.NewTextElement("PAYMENTID", fmt.Sprintf("%d", j+1)))
		row.AddChild(xdm.NewTextElement("CUSTID", fmt.Sprintf("%d", 1000+j%left)))
		row.AddChild(xdm.NewTextElement("PAYMENT", fmt.Sprintf("%d.%02d", j%900+5, j%100)))
		payments[j] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:TestDataServices/CUSTOMERS", "CUSTOMERS", customers)
	e.RegisterRows("ld:TestDataServices/PAYMENTS", "PAYMENTS", payments)
	return e
}

// RunEvalJoin sweeps join cardinality, timing the translated join query
// naive vs planned on identical engines and verifying both pipelines
// produce byte-identical results at every point.
func RunEvalJoin(sizes []int) ([]EvalJoinPoint, error) {
	trans := translator.New(catalog.NewCache(catalog.Demo()))
	trans.Options.Mode = translator.ModeXML
	res, err := trans.Translate(EvalJoinSQL)
	if err != nil {
		return nil, fmt.Errorf("eval join workload: %w", err)
	}
	plan := xqeval.NewPlan(res.Query)
	ctx := context.Background()

	var out []EvalJoinPoint
	for _, n := range sizes {
		e := evalJoinEngine(n, n)
		// The naive pipeline materializes the full cross product, so large
		// points get a single timed iteration; the planned pipeline is
		// cheap enough to average over several.
		naiveIters := 3
		if n*n >= 250_000 {
			naiveIters = 1
		}
		plannedIters := 10

		var naiveOut xdm.Sequence
		start := time.Now()
		for i := 0; i < naiveIters; i++ {
			naiveOut, err = e.EvalNaiveWithTrace(ctx, res.Query, nil, nil)
			if err != nil {
				return nil, fmt.Errorf("naive eval %dx%d: %w", n, n, err)
			}
		}
		naive := time.Since(start) / time.Duration(naiveIters)

		var plannedOut xdm.Sequence
		start = time.Now()
		for i := 0; i < plannedIters; i++ {
			plannedOut, err = e.EvalPlanWithTrace(ctx, plan, nil, nil)
			if err != nil {
				return nil, fmt.Errorf("planned eval %dx%d: %w", n, n, err)
			}
		}
		planned := time.Since(start) / time.Duration(plannedIters)

		if got, want := xdm.MarshalSequence(plannedOut), xdm.MarshalSequence(naiveOut); got != want {
			return nil, fmt.Errorf("eval join %dx%d: planned and naive results diverge", n, n)
		}
		rows := 0
		if it, err := naiveOut.Singleton(); err == nil {
			if el, ok := it.(*xdm.Element); ok {
				rows = len(el.ChildElements("RECORD"))
			}
		}
		pt := EvalJoinPoint{
			Left: n, Right: n, Rows: rows,
			NaiveIters: naiveIters, PlannedIters: plannedIters,
			NaiveNanos: naive.Nanoseconds(), PlannedNanos: planned.Nanoseconds(),
		}
		if planned > 0 {
			pt.Speedup = float64(naive) / float64(planned)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ReportEvalJoin prints the P6 table.
func ReportEvalJoin(w io.Writer, sizes []int) error {
	fmt.Fprintln(w, "P6  Evaluator join planning: naive nested loop vs hash join")
	fmt.Fprintln(w, "left   right  rows   naive        planned      speedup")
	points, err := RunEvalJoin(sizes)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-6d %-6d %-6d %-12s %-12s %.1fx\n",
			p.Left, p.Right, p.Rows,
			time.Duration(p.NaiveNanos).Round(10*time.Microsecond),
			time.Duration(p.PlannedNanos).Round(10*time.Microsecond),
			p.Speedup)
	}
	return nil
}

// EvalJoinReport is the JSON document WriteEvalJoinJSON produces
// (BENCH_eval.json). It carries two sweeps: the P6 naive-vs-planned join
// table, and the P11 workers axis (morsel-parallel execution of a
// remote-call scan, every point byte-compared against the serial run).
type EvalJoinReport struct {
	Experiment         string              `json:"experiment"`
	SQL                string              `json:"sql"`
	Points             []EvalJoinPoint     `json:"points"`
	ParallelExperiment string              `json:"parallel_experiment,omitempty"`
	ParallelQuery      string              `json:"parallel_query,omitempty"`
	ParallelPoints     []EvalParallelPoint `json:"parallel_points,omitempty"`
}

// WriteEvalJoinJSON runs the join-cardinality sweep and the parallel
// workers sweep and writes both as JSON to path (conventionally
// BENCH_eval.json) — the machine-readable record the planner's
// ≥5×-at-1k×1k and the parallel executor's ≥3×-at-8-workers acceptance
// bars are checked against.
func WriteEvalJoinJSON(path string, sizes []int) error {
	points, err := RunEvalJoin(sizes)
	if err != nil {
		return err
	}
	parPoints, err := RunEvalParallel(DefaultEvalParallelRows, DefaultEvalParallelWorkers)
	if err != nil {
		return err
	}
	doc := EvalJoinReport{
		Experiment:         "P6 evaluator join planning: naive nested loop vs hash join",
		SQL:                EvalJoinSQL,
		Points:             points,
		ParallelExperiment: "P11 morsel-parallel execution: workers sweep over a remote-call scan (byte-identical to serial)",
		ParallelQuery:      EvalParallelQuery,
		ParallelPoints:     parPoints,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
