package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/obsv"
	"repro/internal/qcache"
	"repro/internal/sqlparser"
	"repro/internal/translator"
	"repro/internal/xqeval"
)

// CompilePoint is one row of the P8 experiment: per-call latency of the
// three compile paths for one workload class. "Textual" is the legacy
// boundary the paper's driver/server split forces — translate, serialize,
// re-parse, check, plan; "cold" is the compiled-query path — translate,
// then check + plan the AST directly; "cached" is a shared-compile-cache
// hit on the same statement.
type CompilePoint struct {
	Name  string `json:"class"`
	Iters int    `json:"iters"`
	// Per-call wall time in nanoseconds for each path.
	TextualNS int64 `json:"textual_ns"`
	ColdNS    int64 `json:"cold_ns"`
	CachedNS  int64 `json:"cached_ns"`
	// Speedups of the cached path (textual_ns/cached_ns, cold_ns/cached_ns)
	// and of cold over textual (the serialize∘parse tax).
	SpeedupCachedVsTextual float64 `json:"speedup_cached_vs_textual"`
	SpeedupCachedVsCold    float64 `json:"speedup_cached_vs_cold"`
	SpeedupColdVsTextual   float64 `json:"speedup_cold_vs_textual"`
}

func externalNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "p" + strconv.Itoa(i+1)
	}
	return out
}

// RunCompileSweep measures the P8 compile paths per workload class over a
// warm metadata cache (steady-state driver behavior; the metadata fetch
// cost is P3's experiment, not this one).
func RunCompileSweep(iters int) ([]CompilePoint, error) {
	app, _, engine := demo.Setup(demo.DefaultSizes)
	trans := translator.New(catalog.NewCache(app))
	ctx := context.Background()

	var out []CompilePoint
	for _, q := range TranslationWorkload {
		// Warm up metadata and surface errors before measuring.
		warm, err := trans.Translate(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		ext := externalNames(warm.ParamCount)

		textual, err := timeIt(iters, func() error {
			res, err := trans.Translate(q.SQL)
			if err != nil {
				return err
			}
			text := res.Query.Serialize()
			parsed, err := xqeval.Compile(text)
			if err != nil {
				return err
			}
			if _, err := engine.CompileAST(parsed, ext); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: textual: %w", q.Name, err)
		}

		cold, err := timeIt(iters, func() error {
			res, err := trans.Translate(q.SQL)
			if err != nil {
				return err
			}
			if _, err := engine.CompileAST(res.Query, ext); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: cold: %w", q.Name, err)
		}

		cache := qcache.New(qcache.Config{})
		compile := func(ctx context.Context, sql string) (*qcache.CompiledQuery, error) {
			return qcache.Compile(ctx, trans, engine, sqlparser.Front{}, sql, obsv.NewTrace(sql))
		}
		if _, _, err := cache.Get(ctx, sqlparser.Front{}, q.SQL, warm.Mode, compile); err != nil {
			return nil, fmt.Errorf("%s: prime: %w", q.Name, err)
		}
		cached, err := timeIt(iters, func() error {
			_, hit, err := cache.Get(ctx, sqlparser.Front{}, q.SQL, warm.Mode, compile)
			if err != nil {
				return err
			}
			if !hit {
				return fmt.Errorf("primed lookup missed")
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: cached: %w", q.Name, err)
		}

		pt := CompilePoint{
			Name:      q.Name,
			Iters:     iters,
			TextualNS: textual.Nanoseconds() / int64(iters),
			ColdNS:    cold.Nanoseconds() / int64(iters),
			CachedNS:  cached.Nanoseconds() / int64(iters),
		}
		if pt.CachedNS > 0 {
			pt.SpeedupCachedVsTextual = float64(pt.TextualNS) / float64(pt.CachedNS)
			pt.SpeedupCachedVsCold = float64(pt.ColdNS) / float64(pt.CachedNS)
		}
		if pt.ColdNS > 0 {
			pt.SpeedupColdVsTextual = float64(pt.TextualNS) / float64(pt.ColdNS)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ReportCompile prints the P8 table.
func ReportCompile(w io.Writer) error {
	const iters = 200
	fmt.Fprintln(w, "P8  Compile paths: legacy textual vs compiled-query, cold vs cached")
	fmt.Fprintln(w, "class      textual      cold         cached       cold/textual cached/cold")
	points, err := RunCompileSweep(iters)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-10s %-12s %-12s %-12s %-12s %.0fx\n",
			p.Name,
			time.Duration(p.TextualNS).Round(100*time.Nanosecond),
			time.Duration(p.ColdNS).Round(100*time.Nanosecond),
			time.Duration(p.CachedNS).Round(10*time.Nanosecond),
			fmt.Sprintf("%.2fx", p.SpeedupColdVsTextual),
			p.SpeedupCachedVsCold)
	}
	return nil
}

// CompileReport is the JSON document WriteCompileJSON produces
// (BENCH_compile.json).
type CompileReport struct {
	Experiment string         `json:"experiment"`
	Iters      int            `json:"iters"`
	Classes    []CompilePoint `json:"classes"`
}

// WriteCompileJSON runs the compile sweep and writes it as JSON to path
// (conventionally BENCH_compile.json).
func WriteCompileJSON(path string, iters int) error {
	points, err := RunCompileSweep(iters)
	if err != nil {
		return err
	}
	doc := CompileReport{Experiment: "P8 compile paths: textual vs cold vs cached", Iters: iters, Classes: points}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
