package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCompileSweepCoversWorkload(t *testing.T) {
	points, err := RunCompileSweep(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(TranslationWorkload) {
		t.Fatalf("%d points for %d classes", len(points), len(TranslationWorkload))
	}
	for _, p := range points {
		if p.TextualNS <= 0 || p.ColdNS <= 0 || p.CachedNS <= 0 {
			t.Fatalf("%s: non-positive timing: %+v", p.Name, p)
		}
		// Timing assertions stay qualitative in tests (CI machines jitter);
		// the quantitative gap is BENCH_compile.json's job. But a cache hit
		// that does translation work would be a correctness bug, so pin the
		// order weakly: cached must not dwarf the full compile paths.
		if p.CachedNS > 10*p.TextualNS {
			t.Fatalf("%s: cached path slower than 10x textual: %+v", p.Name, p)
		}
	}
}

func TestReportCompile(t *testing.T) {
	var b strings.Builder
	if err := ReportCompile(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"P8", "textual", "cached", "simple", "complex"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCompileJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_compile.json")
	if err := WriteCompileJSON(path, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"P8 compile paths", "textual_ns", "cached_ns", "speedup_cached_vs_textual"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %q:\n%s", want, data)
		}
	}
}
