package bench

import "testing"

// TestRunStreamSweepSmall exercises the P9 sweep end to end at small
// cardinalities: both delivery paths run, the workload plans as
// streamable, and first-row latency never exceeds total latency.
func TestRunStreamSweepSmall(t *testing.T) {
	points, err := RunStreamSweep([]int{1, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.StreamTTFRNS <= 0 || p.MaterializedTTFRNS <= 0 {
			t.Fatalf("rows=%d: missing TTFR: %+v", p.Rows, p)
		}
		if p.StreamTTFRNS > p.StreamTotalNS || p.MaterializedTTFRNS > p.MaterializedTotalNS {
			t.Fatalf("rows=%d: first row after last row: %+v", p.Rows, p)
		}
	}
}
