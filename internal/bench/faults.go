package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/faultnet"
	"repro/internal/obsv"
	"repro/internal/resilient"
	"repro/internal/resultset"
	"repro/internal/translator"
	"repro/internal/xdm"
)

// FaultSweepSQL is the P7 workload: the same canonical equi-join as P6,
// executed end to end (translate + evaluate + decode) so injected faults
// hit both the metadata path and the data service calls.
const FaultSweepSQL = EvalJoinSQL

// DefaultFaultRates is the per-call fault-probability sweep recorded in
// EXPERIMENTS.md.
var DefaultFaultRates = []float64{0, 0.01, 0.05, 0.1, 0.2}

// DefaultFaultRuns is queries per arm per rate.
const DefaultFaultRuns = 60

// faultSweepSizes keeps the demo dataset small enough that the sweep
// measures fault handling, not join throughput.
var faultSweepSizes = demo.Sizes{Customers: 30, PaymentsPerCustomer: 2, Orders: 20, ItemsPerOrder: 2}

// faultSweepKinds excludes stalls and panics so the undefended arm — no
// recovery boundary, no deadline — survives to be measured; the remaining
// kinds (transient, permanent, latency, truncation) exercise every
// defense the sweep quantifies.
var faultSweepKinds = []faultnet.Kind{
	faultnet.KindTransient, faultnet.KindPermanent,
	faultnet.KindLatency, faultnet.KindTruncate,
}

// FaultArm is one defended-or-not measurement at a fault rate.
type FaultArm struct {
	OK     int     `json:"ok"`
	Errors int     `json:"errors"`
	Nanos  int64   `json:"ns_per_query"`
	QPS    float64 `json:"qps"`
}

// FaultPoint is one row of the P7 table: identical workload and fault
// schedule, with and without the resilience layer armed.
type FaultPoint struct {
	Rate       float64  `json:"rate"`
	Runs       int      `json:"runs"`
	Undefended FaultArm `json:"undefended"`
	Defended   FaultArm `json:"defended"`
	// Retries is the retry count the defended arm spent at this rate.
	Retries int64 `json:"defended_retries"`
}

// runFaultArm assembles the chaos-wrapped pipeline the facade's
// EnableFaults + EnableResilience would build (this package sits below
// the facade, so it wires the same stack from the parts): demo app →
// fault injection (→ retries) → metadata cache, and the engine
// middlewares in the same inside-out order — then times `runs` queries.
func runFaultArm(rate float64, defended bool, runs int) (FaultArm, error) {
	app, _, engine := demo.Setup(faultSweepSizes)
	inj := faultnet.New(faultnet.Config{
		Seed: 97, Rate: rate,
		Latency: 200 * time.Microsecond,
		Kinds:   faultSweepKinds,
	})
	engine.Use(inj.Middleware())
	var src catalog.Source = inj.Source(app)
	cfg := resilient.Config{
		MaxRetries:       4,
		BaseBackoff:      200 * time.Microsecond,
		BreakerThreshold: 50,
		BreakerCooldown:  5 * time.Millisecond,
	}.WithDefaults()
	if defended {
		engine.Use(resilient.NewEngineGuard(cfg).Middleware())
		src = resilient.NewSource(src, cfg)
	}
	cache := catalog.NewCache(src)
	if defended {
		cache.FreshFor = time.Hour // stale-while-revalidate armed
	}
	trans := translator.New(cache)
	trans.Options.Mode = translator.ModeText
	trans.Options.DefaultCatalog = app.Name

	// Warm the metadata cache outside the timed window, as P3 does.
	if _, err := trans.Translate(FaultSweepSQL); err != nil && rate == 0 {
		return FaultArm{}, fmt.Errorf("fault sweep warmup: %w", err)
	}

	query := func() error {
		res, err := trans.Translate(FaultSweepSQL)
		if err != nil {
			return err
		}
		out, err := engine.EvalWith(res.Query, nil)
		if err != nil {
			return err
		}
		it, err := out.Singleton()
		if err != nil {
			return err
		}
		cols := make([]resultset.Column, len(res.Columns))
		for i, c := range res.Columns {
			cols[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName, Type: c.Type, Nullable: c.Nullable}
		}
		_, err = resultset.FromText(xdm.StringValue(it), cols)
		return err
	}

	var arm FaultArm
	start := time.Now()
	for i := 0; i < runs; i++ {
		if err := query(); err != nil {
			arm.Errors++
		} else {
			arm.OK++
		}
	}
	elapsed := time.Since(start)
	arm.Nanos = elapsed.Nanoseconds() / int64(runs)
	if elapsed > 0 {
		arm.QPS = float64(runs) / elapsed.Seconds()
	}
	return arm, nil
}

// RunFaultSweep measures query success rate and throughput across fault
// rates, with the resilience layer disarmed and armed, over the same
// deterministic fault schedule (fixed seed).
func RunFaultSweep(rates []float64, runs int) ([]FaultPoint, error) {
	var out []FaultPoint
	for _, rate := range rates {
		retriesBefore := obsv.Global.Snapshot().Retries
		undefended, err := runFaultArm(rate, false, runs)
		if err != nil {
			return nil, err
		}
		defended, err := runFaultArm(rate, true, runs)
		if err != nil {
			return nil, err
		}
		out = append(out, FaultPoint{
			Rate: rate, Runs: runs,
			Undefended: undefended,
			Defended:   defended,
			Retries:    obsv.Global.Snapshot().Retries - retriesBefore,
		})
	}
	return out, nil
}

// ReportFaultSweep prints the P7 table.
func ReportFaultSweep(w io.Writer, rates []float64, runs int) error {
	fmt.Fprintln(w, "P7  Fault sweep: query survival with and without the resilience layer")
	fmt.Fprintln(w, "rate   undefended-ok  defended-ok  undefended   defended     retries")
	points, err := RunFaultSweep(rates, runs)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-6.2f %-14s %-12s %-12s %-12s %d\n",
			p.Rate,
			fmt.Sprintf("%d/%d", p.Undefended.OK, p.Runs),
			fmt.Sprintf("%d/%d", p.Defended.OK, p.Runs),
			time.Duration(p.Undefended.Nanos).Round(10*time.Microsecond),
			time.Duration(p.Defended.Nanos).Round(10*time.Microsecond),
			p.Retries)
	}
	return nil
}

// FaultSweepReport is the JSON document WriteFaultSweepJSON produces
// (BENCH_faults.json).
type FaultSweepReport struct {
	Experiment string       `json:"experiment"`
	SQL        string       `json:"sql"`
	FaultKinds string       `json:"fault_kinds"`
	Points     []FaultPoint `json:"points"`
}

// WriteFaultSweepJSON runs the fault-rate sweep and writes it as JSON to
// path (conventionally BENCH_faults.json) — the machine-readable record
// behind the resilience layer's graceful-degradation claim.
func WriteFaultSweepJSON(path string, rates []float64, runs int) error {
	points, err := RunFaultSweep(rates, runs)
	if err != nil {
		return err
	}
	names := make([]string, len(faultSweepKinds))
	for i, k := range faultSweepKinds {
		names[i] = k.String()
	}
	doc := FaultSweepReport{
		Experiment: "P7 fault sweep: query survival and throughput vs fault rate, defended and undefended",
		SQL:        FaultSweepSQL,
		FaultKinds: strings.Join(names, ","),
		Points:     points,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
