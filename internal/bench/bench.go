// Package bench is the experiment harness behind EXPERIMENTS.md: workload
// generators and runners that regenerate the paper's quantitative content.
// The paper's only measurement claim is §4's — replacing XML materialization
// with text-delimited results "measurably improved" performance — so the
// headline experiment (P1) sweeps result sizes across both result-handling
// modes. Supporting experiments cover translation throughput (P2, the §3.2
// efficiency goal) and the metadata cache (P3, §3.5).
package bench

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/resultset"
	"repro/internal/translator"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// WideTable builds a catalog + engine holding one table W with the given
// column count (alternating integer/string/decimal columns, one in eight
// values NULL) and row count — the §4 sweep's data source.
func WideTable(rows, cols int) (*catalog.Application, *xqeval.Engine) {
	if cols < 1 {
		cols = 1
	}
	columns := make([]catalog.Column, cols)
	for i := range columns {
		name := fmt.Sprintf("C%d", i)
		switch i % 3 {
		case 0:
			columns[i] = catalog.Column{Name: name, Type: catalog.SQLInteger, Nullable: i > 0}
		case 1:
			columns[i] = catalog.Column{Name: name, Type: catalog.SQLVarchar, Nullable: true, Precision: 32}
		default:
			columns[i] = catalog.Column{Name: name, Type: catalog.SQLDecimal, Nullable: true, Precision: 10, Scale: 2}
		}
	}
	app := &catalog.Application{Name: "BenchApp"}
	app.AddDSFile(&catalog.DSFile{
		Path:      "Bench",
		Name:      "W",
		Functions: []*catalog.Function{catalog.NewRelationalImport("Bench", "W", columns)},
	})

	data := make([]*xdm.Element, rows)
	for r := 0; r < rows; r++ {
		row := xdm.NewElement("W")
		for c := 0; c < cols; c++ {
			if c > 0 && (r+c)%8 == 0 {
				continue // NULL
			}
			var v string
			switch c % 3 {
			case 0:
				v = fmt.Sprintf("%d", r*31+c)
			case 1:
				v = fmt.Sprintf("value-%d-%d 100%% & <sons>", r, c)
			default:
				v = fmt.Sprintf("%d.%02d", r%1000, c%100)
			}
			row.AddChild(xdm.NewTextElement(columns[c].Name, v))
		}
		data[r] = row
	}
	engine := xqeval.New()
	engine.RegisterRows("ld:Bench/W", "W", data)
	return app, engine
}

// Payloads holds one query's serialized results in both §4 modes, plus the
// decoding schemas — the inputs to the result-handling measurement.
type Payloads struct {
	Rows, Cols int
	XML        string
	Text       string
	Columns    []resultset.Column
}

// BuildPayloads executes SELECT * over a WideTable in both modes and
// serializes the results, so decode costs can be measured in isolation
// (the client-side cost §4 talks about).
func BuildPayloads(rows, cols int) (*Payloads, error) {
	app, engine := WideTable(rows, cols)

	trXML := translator.New(app)
	resXML, err := trXML.Translate("SELECT * FROM W")
	if err != nil {
		return nil, err
	}
	outXML, err := engine.Eval(resXML.Query)
	if err != nil {
		return nil, err
	}
	it, err := outXML.Singleton()
	if err != nil {
		return nil, err
	}
	root, ok := it.(*xdm.Element)
	if !ok {
		return nil, fmt.Errorf("bench: XML result is not an element")
	}

	trText := translator.New(app)
	trText.Options.Mode = translator.ModeText
	resText, err := trText.Translate("SELECT * FROM W")
	if err != nil {
		return nil, err
	}
	outText, err := engine.Eval(resText.Query)
	if err != nil {
		return nil, err
	}
	itText, err := outText.Singleton()
	if err != nil {
		return nil, err
	}

	colsMeta := make([]resultset.Column, len(resXML.Columns))
	for i, c := range resXML.Columns {
		colsMeta[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName, Type: c.Type, Nullable: c.Nullable}
	}
	return &Payloads{
		Rows:    rows,
		Cols:    cols,
		XML:     xdm.Marshal(root),
		Text:    xdm.StringValue(itText),
		Columns: colsMeta,
	}, nil
}

// DecodeXML runs the baseline client path: parse the XML payload and
// materialize rows.
func (p *Payloads) DecodeXML() (*resultset.Rows, error) {
	return resultset.FromXMLString(p.XML, p.Columns)
}

// DecodeText runs the §4 client path: split and type the text payload.
func (p *Payloads) DecodeText() (*resultset.Rows, error) {
	return resultset.FromText(p.Text, p.Columns)
}

// TranslationWorkload is the P2 query mix, one query per complexity class
// the paper's examples span.
var TranslationWorkload = []struct {
	Name string
	SQL  string
}{
	{"simple", "SELECT * FROM CUSTOMERS"},
	{"filter", "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CITY = 'Springfield' AND CUSTOMERID BETWEEN 1000 AND 1040"},
	{"join", "SELECT CUSTOMERS.CUSTOMERNAME, PO_CUSTOMERS.TOTAL FROM CUSTOMERS INNER JOIN PO_CUSTOMERS ON CUSTOMERS.CUSTOMERID = PO_CUSTOMERS.CUSTOMERID"},
	{"outerjoin", "SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENT FROM CUSTOMERS LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"},
	{"subquery", "SELECT INFO.ID FROM (SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS) AS INFO WHERE INFO.ID > 1010"},
	{"grouped", "SELECT CITY, COUNT(*), SUM(CUSTOMERID) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1 ORDER BY 2 DESC"},
	{"complex", `SELECT C.CITY, COUNT(*) CNT, MAX(P.TOTAL) M
		FROM CUSTOMERS C INNER JOIN PO_CUSTOMERS P ON C.CUSTOMERID = P.CUSTOMERID
		WHERE P.STATUS IN ('OPEN', 'SHIPPED') AND C.CUSTOMERNAME LIKE '%s%'
		GROUP BY C.CITY ORDER BY CNT DESC`},
}

// NewDemoTranslator builds a translator over the demo catalog (optionally
// behind a simulated-latency remote and cache) for P2/P3.
func NewDemoTranslator(latency time.Duration, cached bool) (*translator.Translator, *catalog.Cache) {
	var src catalog.Source = catalog.Demo()
	if latency > 0 {
		src = &catalog.Remote{Inner: src, Latency: latency}
	}
	var cache *catalog.Cache
	if cached {
		cache = catalog.NewCache(src)
		src = cache
	}
	return translator.New(src), cache
}

// DemoEngine builds the demo engine at a given customer scale for
// end-to-end execution benchmarks.
func DemoEngine(customers int) (*catalog.Application, *xqeval.Engine) {
	sz := demo.DefaultSizes
	sz.Customers = customers
	sz.Orders = customers * 2
	app, _, engine := demo.Setup(sz)
	return app, engine
}

// tableRef builds an unqualified table reference (test helper surface).
func tableRef(name string) catalog.TableRef { return catalog.TableRef{Table: name} }
