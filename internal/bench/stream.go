package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/obsv"
	"repro/internal/qcache"
	"repro/internal/resultset"
	"repro/internal/sqlparser"
	"repro/internal/translator"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// StreamSweepSQL is the P9 workload: a projection scan whose result grows
// linearly with the table, §4 text mode — the shape where time-to-first-row
// and result-set footprint separate the two delivery disciplines most
// cleanly (no join or sort stage to mask the pipeline itself).
const StreamSweepSQL = "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS"

// DefaultStreamRows is the row-count sweep recorded in EXPERIMENTS.md.
var DefaultStreamRows = []int{1, 10000, 100000}

// StreamPoint is one row of the P9 experiment, comparing the pull-cursor
// delivery path against the materialize-then-decode path on the same
// compiled plan.
type StreamPoint struct {
	Rows int `json:"rows"`
	// Time to first row: query start until the first decoded row is in the
	// caller's hands.
	StreamTTFRNS       int64 `json:"stream_ttfr_ns"`
	MaterializedTTFRNS int64 `json:"materialized_ttfr_ns"`
	// Total latency: query start until the last row has been consumed.
	StreamTotalNS       int64 `json:"stream_total_ns"`
	MaterializedTotalNS int64 `json:"materialized_total_ns"`
	// Live-heap high-water mark of result delivery: bytes pinned with the
	// full materialized result held versus bytes in flight halfway through
	// a streamed consumption (both GC-settled deltas over a quiet baseline).
	StreamLiveHeapBytes       int64 `json:"stream_live_heap_bytes"`
	MaterializedLiveHeapBytes int64 `json:"materialized_live_heap_bytes"`
	// TTFRSpeedup is materialized_ttfr_ns / stream_ttfr_ns — how much
	// sooner the first row reaches the client on the cursor path.
	TTFRSpeedup float64 `json:"ttfr_speedup"`
}

// streamBenchEnv is one compiled setup: an engine over a customers-only
// dataset of the requested cardinality plus the compiled artifact.
type streamBenchEnv struct {
	engine *xqeval.Engine
	cq     *qcache.CompiledQuery
	cols   []resultset.Column
}

func newStreamBenchEnv(rows int) (*streamBenchEnv, error) {
	app, _, engine := demo.Setup(demo.Sizes{Customers: rows, PaymentsPerCustomer: 0, Orders: 1, ItemsPerOrder: 1})
	trans := translator.New(catalog.NewCache(app))
	trans.Options.DefaultCatalog = app.Name
	trans.Options.Mode = translator.ModeText
	cq, err := qcache.Compile(context.Background(), trans, engine, sqlparser.Front{}, StreamSweepSQL, obsv.NewTrace(StreamSweepSQL))
	if err != nil {
		return nil, err
	}
	if !cq.Streamable() {
		return nil, fmt.Errorf("P9 workload did not plan as streamable")
	}
	cols := make([]resultset.Column, len(cq.Res.Columns))
	for i, c := range cq.Res.Columns {
		cols[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName, Type: c.Type, Nullable: c.Nullable}
	}
	return &streamBenchEnv{engine: engine, cq: cq, cols: cols}, nil
}

// runMaterialized is the pre-cursor delivery path: evaluate the plan to
// completion, decode the whole §4 text payload, then iterate. Returns the
// result set (for heap pinning), time to first row, and total time.
func (env *streamBenchEnv) runMaterialized() (*resultset.Rows, time.Duration, time.Duration, error) {
	start := time.Now()
	out, err := env.engine.EvalPlanWithTrace(context.Background(), env.cq.Plan, nil, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	it, err := out.Singleton()
	if err != nil {
		return nil, 0, 0, err
	}
	r, err := resultset.FromText(xdm.StringValue(it), env.cols)
	if err != nil {
		return nil, 0, 0, err
	}
	if !r.Next() {
		return nil, 0, 0, fmt.Errorf("materialized result is empty")
	}
	ttfr := time.Since(start)
	for r.Next() {
	}
	return r, ttfr, time.Since(start), nil
}

// runStreamed is the cursor path: rows decode one pull at a time out of a
// still-running evaluation. consume is called once per decoded row (with
// the 1-based row index) so callers can sample mid-stream state.
func (env *streamBenchEnv) runStreamed(consume func(i int)) (time.Duration, time.Duration, error) {
	start := time.Now()
	cur := env.engine.EvalStream(context.Background(), env.cq.Plan, nil, nil)
	rc := resultset.StreamText(cur, env.cols)
	defer rc.Close()
	var ttfr time.Duration
	n := 0
	for {
		_, err := rc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		n++
		if n == 1 {
			ttfr = time.Since(start)
		}
		if consume != nil {
			consume(n)
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("streamed result is empty")
	}
	return ttfr, time.Since(start), nil
}

// liveHeap returns the GC-settled heap in use right now.
func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// RunStreamSweep measures the P9 points across a row-count sweep.
func RunStreamSweep(rowCounts []int) ([]StreamPoint, error) {
	var out []StreamPoint
	for _, rows := range rowCounts {
		env, err := newStreamBenchEnv(rows)
		if err != nil {
			return nil, fmt.Errorf("rows=%d: %w", rows, err)
		}

		// Warm both paths once so neither timing pays first-touch costs.
		if r, _, _, err := env.runMaterialized(); err != nil {
			return nil, fmt.Errorf("rows=%d: materialized warmup: %w", rows, err)
		} else {
			r.Close()
		}
		if _, _, err := env.runStreamed(nil); err != nil {
			return nil, fmt.Errorf("rows=%d: streamed warmup: %w", rows, err)
		}

		pt := StreamPoint{Rows: rows}

		// Latency passes (no GC sampling in the timed region).
		r, mttfr, mtotal, err := env.runMaterialized()
		if err != nil {
			return nil, fmt.Errorf("rows=%d: materialized: %w", rows, err)
		}
		r.Close()
		pt.MaterializedTTFRNS = mttfr.Nanoseconds()
		pt.MaterializedTotalNS = mtotal.Nanoseconds()

		sttfr, stotal, err := env.runStreamed(nil)
		if err != nil {
			return nil, fmt.Errorf("rows=%d: streamed: %w", rows, err)
		}
		pt.StreamTTFRNS = sttfr.Nanoseconds()
		pt.StreamTotalNS = stotal.Nanoseconds()
		if pt.StreamTTFRNS > 0 {
			pt.TTFRSpeedup = float64(pt.MaterializedTTFRNS) / float64(pt.StreamTTFRNS)
		}

		// Footprint passes: live heap with the whole result pinned versus
		// live heap sampled halfway through a streamed read.
		base := liveHeap()
		r, _, _, err = env.runMaterialized()
		if err != nil {
			return nil, fmt.Errorf("rows=%d: materialized heap pass: %w", rows, err)
		}
		pt.MaterializedLiveHeapBytes = max64(0, liveHeap()-base)
		r.Close()

		base = liveHeap()
		var streamed int64
		half := rows / 2
		_, _, err = env.runStreamed(func(i int) {
			if i == half || (half == 0 && i == 1) {
				streamed = max64(0, liveHeap()-base)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("rows=%d: streamed heap pass: %w", rows, err)
		}
		pt.StreamLiveHeapBytes = streamed

		out = append(out, pt)
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ReportStream prints the P9 table.
func ReportStream(w io.Writer, rowCounts []int) error {
	fmt.Fprintln(w, "P9  Streaming delivery: pull cursor vs materialize-then-decode (text mode)")
	fmt.Fprintln(w, "rows     ttfr(stream) ttfr(mat)    total(stream) total(mat)   heap(stream) heap(mat)")
	points, err := RunStreamSweep(rowCounts)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-8d %-12s %-12s %-13s %-12s %-12s %s\n",
			p.Rows,
			time.Duration(p.StreamTTFRNS).Round(time.Microsecond),
			time.Duration(p.MaterializedTTFRNS).Round(time.Microsecond),
			time.Duration(p.StreamTotalNS).Round(time.Microsecond),
			time.Duration(p.MaterializedTotalNS).Round(time.Microsecond),
			fmtBytes(p.StreamLiveHeapBytes),
			fmtBytes(p.MaterializedLiveHeapBytes))
	}
	return nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// StreamReport is the JSON document WriteStreamJSON produces
// (BENCH_stream.json).
type StreamReport struct {
	Experiment string        `json:"experiment"`
	SQL        string        `json:"sql"`
	Points     []StreamPoint `json:"points"`
}

// WriteStreamJSON runs the stream sweep and writes it as JSON to path
// (conventionally BENCH_stream.json).
func WriteStreamJSON(path string, rowCounts []int) error {
	points, err := RunStreamSweep(rowCounts)
	if err != nil {
		return err
	}
	doc := StreamReport{
		Experiment: "P9 streaming delivery: pull cursor vs materialize-then-decode",
		SQL:        StreamSweepSQL,
		Points:     points,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
