package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obsv"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// federate.go is the P13 workload: scatter-gather execution of a
// horizontally partitioned data service whose shards live on simulated
// remote sources — the paper's mediation scenario, where the optimizer's
// job is to touch as few sources as possible. Each shard call blocks in a
// real nanosleep syscall (like P11, so backend latency overlaps even on a
// one-CPU host) before returning its rows. The sweep times the same
// shard-key-pinned query with partition pushdown on (the executor prunes
// the scatter to the one shard the pinned key can live on, and filters and
// projects rows at the shard boundary) and off (every shard's full rows
// flow into the central pipeline), byte-comparing the two runs: pushdown
// may only change where work happens, never the answer.

// FederateQuery is the P13 query: a scan of the partitioned ORDERS service
// pinned to one shard-key value. Written directly in XQuery because the
// interesting axis is the federated executor, not the translator.
const FederateQuery = `import schema namespace b = "ld:BenchFed" at "BenchFed.xsd";
for $o in b:ORDERS()
where $o/ACCOUNTID = 103
return <RECORD>{$o/ORDERID}{$o/ACCOUNTID}{$o/ITEM}</RECORD>`

// DefaultFederateShards is the shard-count sweep.
var DefaultFederateShards = []int{2, 4, 8, 16}

// DefaultFederateRows is the total-cardinality sweep (rows are spread
// round-robin across the shards by account id).
var DefaultFederateRows = []int{4_000, 40_000}

// federateCallNanos is the simulated per-shard-call source latency — one
// network round trip to a remote backend, paid once per shard touched.
const federateCallNanos = 200_000

// federateWorkers bounds the scatter's concurrent shard calls, so a full
// scatter over more shards than workers pays multiple latency rounds while
// a pruned scan pays exactly one.
const federateWorkers = 4

// federateIters is the per-arm repeat count; each point reports the best
// run, which is the stable estimator for a latency-floor workload.
const federateIters = 3

// FederatePoint is one row of the P13 table.
type FederatePoint struct {
	// Workload names the swept query shape.
	Workload string `json:"workload"`
	// Shards is the partition width of the ORDERS service.
	Shards int `json:"shards"`
	// Rows is the total cardinality across all shards.
	Rows int `json:"rows"`
	// Pushdown reports whether shard pruning + per-shard filter/projection
	// were enabled for this run.
	Pushdown bool `json:"pushdown"`
	// ShardCalls is the number of shard (remote source) calls the run made.
	ShardCalls int64 `json:"shard_calls"`
	// Nanos is the measured wall time of the best run.
	Nanos int64 `json:"ns"`
	// ScatterNanos is the pushdown-off wall time for the same point,
	// repeated on every row so each is self-contained.
	ScatterNanos int64 `json:"scatter_ns"`
	// SpeedupVsScatter is ScatterNanos / Nanos.
	SpeedupVsScatter float64 `json:"speedup_vs_scatter"`
}

// FederateReport is the JSON document benchharness -federatejson writes.
type FederateReport struct {
	Experiment string          `json:"experiment"`
	Query      string          `json:"query"`
	Points     []FederatePoint `json:"points"`
}

// federateEngine builds a partitioned ORDERS service with the given total
// cardinality spread over the given number of shards, each shard a
// simulated remote source: its function sleeps one federateCallNanos
// round trip, then returns the shard's rows.
func federateEngine(totalRows, shards int) *xqeval.Engine {
	perShard := make([]xdm.Sequence, shards)
	for i := 0; i < totalRows; i++ {
		acct := 100 + i%977
		sh := acct % shards
		row := xdm.NewElement("ORDERS")
		row.AddChild(xdm.NewTextElement("ORDERID", fmt.Sprintf("%d", 5000+i)))
		row.AddChild(xdm.NewTextElement("ACCOUNTID", fmt.Sprintf("%d", acct)))
		row.AddChild(xdm.NewTextElement("ITEM", fmt.Sprintf("SKU-%d", i%97)))
		perShard[sh] = append(perShard[sh], row)
	}
	e := xqeval.New()
	specShards := make([]xqeval.ShardSpec, shards)
	for s := 0; s < shards; s++ {
		rows := perShard[s]
		src := fmt.Sprintf("shard%d", s)
		local := fmt.Sprintf("ORDERS_S%d", s)
		e.RegisterSourceContext(src, "ld:BenchFed", local, func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			ts := syscall.Timespec{Nsec: federateCallNanos}
			syscall.Nanosleep(&ts, nil)
			return rows, nil
		})
		specShards[s] = xqeval.ShardSpec{Source: src, Namespace: "ld:BenchFed", Local: local}
	}
	e.RegisterPartitioned("ld:BenchFed", "ORDERS", &xqeval.PartitionSpec{
		Key:    "ACCOUNTID",
		Shards: specShards,
		ShardFor: func(v xdm.Atomic) int {
			n, err := strconv.Atoi(strings.TrimSpace(v.Lexical()))
			if err != nil || n < 0 {
				return -1
			}
			return n % shards
		},
	})
	return e
}

// runFederateArm times one pushdown arm: best wall time over federateIters
// runs through the streaming cursor, plus the run's output digest, row
// count, and shard-call count (identical across iterations, so the last
// run's counters stand for the point).
func runFederateArm(e *xqeval.Engine, plan *xqeval.Plan, pushdown bool) (best int64, digest uint64, rows, calls int64, err error) {
	e.SetExec(xqeval.ExecConfig{Workers: federateWorkers, DisablePartitionPushdown: !pushdown})
	ctx := context.Background()
	for it := 0; it < federateIters; it++ {
		callsBefore := obsv.Global.ShardScans.Load()
		start := time.Now()
		d, n, err := drainStreamed(e.EvalStream(ctx, plan, nil, nil))
		if err != nil {
			return 0, 0, 0, 0, err
		}
		elapsed := time.Since(start).Nanoseconds()
		if it == 0 {
			best, digest, rows = elapsed, d, n
		} else if d != digest || n != rows {
			return 0, 0, 0, 0, fmt.Errorf("federate arm: output unstable across iterations")
		} else if elapsed < best {
			best = elapsed
		}
		calls = obsv.Global.ShardScans.Load() - callsBefore
	}
	return best, digest, rows, calls, nil
}

// RunFederate sweeps shard count × total cardinality over the pinned
// federated scan, timing each point with partition pushdown off (full
// scatter-gather: every shard called, every row shipped centrally) and on
// (shard pruning plus per-shard filter and projection). The two arms must
// be byte-identical — pushdown is an execution strategy, not a semantics
// change — and the pushdown-on arm of a pinned query must touch exactly
// one shard.
func RunFederate(shardCounts, rowSizes []int) ([]FederatePoint, error) {
	q, err := xqeval.Compile(FederateQuery)
	if err != nil {
		return nil, fmt.Errorf("federate workload: %w", err)
	}
	var out []FederatePoint
	for _, shards := range shardCounts {
		if shards < 2 {
			return nil, fmt.Errorf("federate sweep: shard counts must be >= 2, got %d", shards)
		}
		for _, rows := range rowSizes {
			e := federateEngine(rows, shards)
			// CompileAST is the stats-aware production path; only its plans
			// see the partition spec and scatter. (xqeval.Compile above only
			// parsed the query text.)
			plan, err := e.CompileAST(q, nil)
			if err != nil {
				return nil, fmt.Errorf("federate compile (%d shards × %d rows): %w", shards, rows, err)
			}
			scatterNs, scatterDigest, scatterRows, scatterCalls, err := runFederateArm(e, plan, false)
			if err != nil {
				return nil, fmt.Errorf("federate %d shards × %d rows, full scatter: %w", shards, rows, err)
			}
			prunedNs, prunedDigest, prunedRows, prunedCalls, err := runFederateArm(e, plan, true)
			if err != nil {
				return nil, fmt.Errorf("federate %d shards × %d rows, pushdown: %w", shards, rows, err)
			}
			if prunedDigest != scatterDigest || prunedRows != scatterRows {
				return nil, fmt.Errorf("federate %d shards × %d rows: pushdown output diverges from full scatter", shards, rows)
			}
			if scatterCalls != int64(shards) {
				return nil, fmt.Errorf("federate %d shards × %d rows: full scatter made %d shard calls, want %d",
					shards, rows, scatterCalls, shards)
			}
			if prunedCalls != 1 {
				return nil, fmt.Errorf("federate %d shards × %d rows: pinned pushdown made %d shard calls, want 1",
					shards, rows, prunedCalls)
			}
			mk := func(pushdown bool, ns, calls int64) FederatePoint {
				pt := FederatePoint{
					Workload: "shard-key-pinned federated scan",
					Shards:   shards, Rows: rows, Pushdown: pushdown,
					ShardCalls: calls, Nanos: ns, ScatterNanos: scatterNs,
				}
				if ns > 0 {
					pt.SpeedupVsScatter = float64(scatterNs) / float64(ns)
				}
				return pt
			}
			out = append(out, mk(false, scatterNs, scatterCalls), mk(true, prunedNs, prunedCalls))
		}
	}
	return out, nil
}

// ReportFederate prints the P13 table.
func ReportFederate(w io.Writer, shardCounts, rowSizes []int) error {
	fmt.Fprintln(w, "P13 Federated execution: shard pruning vs full scatter-gather on a pinned scan")
	fmt.Fprintf(w, "shards  rows    pushdown  shard calls  elapsed      speedup vs scatter\n")
	points, err := RunFederate(shardCounts, rowSizes)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-7d %-7d %-9v %-12d %-12s %.1fx\n",
			p.Shards, p.Rows, p.Pushdown, p.ShardCalls,
			time.Duration(p.Nanos).Round(time.Microsecond), p.SpeedupVsScatter)
	}
	return nil
}

// WriteFederateJSON runs the P13 sweep and writes it as JSON.
func WriteFederateJSON(path string, shardCounts, rowSizes []int) error {
	points, err := RunFederate(shardCounts, rowSizes)
	if err != nil {
		return err
	}
	doc := FederateReport{
		Experiment: "P13 federated scatter-gather: partition pushdown (shard pruning + per-shard filter/projection) vs full scatter on a shard-key-pinned scan",
		Query:      FederateQuery,
		Points:     points,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
