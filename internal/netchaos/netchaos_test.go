package netchaos

import (
	"bytes"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// echoServer accepts connections and echoes bytes until its listener
// closes (proxy shutdown severs its connections, ending the copies).
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close(); <-done }
}

// blastServer writes payload to every connection, then closes it —
// one-directional traffic so only the server→client pump rolls faults.
func blastServer(t *testing.T, payload []byte) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = c.Write(payload)
			}(c)
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close(); <-done }
}

func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPassThrough pins the control arm: with no injector, the proxy is
// byte-transparent in both directions and Close leaks nothing.
func TestPassThrough(t *testing.T) {
	baseline := runtime.NumGoroutine()
	addr, stop := echoServer(t)
	defer stop()
	px, err := New(Config{Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("aqualogic"), 11111) // ~100KB, many chunks
	go func() {
		_, _ = conn.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("echo through proxy: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("bytes diverged through pass-through proxy")
	}
	_ = conn.Close()
	if err := px.Close(); err != nil {
		t.Fatalf("proxy close: %v", err)
	}
	if px.Accepted() != 1 || px.Severed() != 0 {
		t.Fatalf("pass-through counters: accepted=%d severed=%d", px.Accepted(), px.Severed())
	}
	stop()
	checkGoroutines(t, baseline)
}

// dialOutcome probes one connection through the proxy: true when an
// 8-byte echo round-trips, false when any fault severed it.
func dialOutcome(t *testing.T, addr string) bool {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return false
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("12345678")); err != nil {
		return false
	}
	buf := make([]byte, 8)
	_, err = io.ReadFull(conn, buf)
	return err == nil
}

// TestDeterministicResetSchedule pins the schedule contract: the same
// seed over the same sequential connection sequence produces the same
// reset pattern, and a 50% rate actually expresses both outcomes.
func TestDeterministicResetSchedule(t *testing.T) {
	run := func() []bool {
		addr, stop := echoServer(t)
		defer stop()
		// Each connection rolls three sites (accept, c2s, s2c), so the
		// per-connection survival rate is (1-Rate)³ — 0.25 keeps both
		// outcomes likely across 16 connections.
		inj := faultnet.New(faultnet.Config{Seed: 7, Rate: 0.25, Kinds: []faultnet.Kind{faultnet.KindPermanent}})
		px, err := New(Config{Target: addr, Faults: inj})
		if err != nil {
			t.Fatal(err)
		}
		defer px.Close()
		out := make([]bool, 16)
		for i := range out {
			out[i] = dialOutcome(t, px.Addr())
		}
		return out
	}
	first, second := run(), run()
	passed, reset := 0, 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("schedule not deterministic: conn %d differs (%v vs %v)", i, first, second)
		}
		if first[i] {
			passed++
		} else {
			reset++
		}
	}
	if passed == 0 || reset == 0 {
		t.Fatalf("reset rate expressed only one outcome: %d passed, %d reset", passed, reset)
	}
}

// TestTruncateMidResponse pins mid-response truncation: the client
// receives a strict prefix of the server's payload and then a prompt
// connection error — never the full payload, never a hang.
func TestTruncateMidResponse(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 4096)
	addr, stop := blastServer(t, payload)
	defer stop()
	inj := faultnet.New(faultnet.Config{Seed: 3, Rate: 1,
		Kinds: []faultnet.Kind{faultnet.KindTruncate}})
	px, err := New(Config{Target: addr, Faults: inj, ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(conn)
	if len(got) >= len(payload) {
		t.Fatalf("truncation never fired: received %d of %d bytes", len(got), len(payload))
	}
	if px.Severed() == 0 {
		t.Fatal("no connection recorded as severed")
	}
}

// TestBlackHoleReleasedByClose pins the stall fault and shutdown
// hygiene: a black-holed connection transfers nothing, and Close()
// unblocks it promptly instead of waiting out the stall watchdog.
func TestBlackHoleReleasedByClose(t *testing.T) {
	baseline := runtime.NumGoroutine()
	addr, stop := echoServer(t)
	defer stop()
	inj := faultnet.New(faultnet.Config{Seed: 1, Rate: 1, StallTimeout: 30 * time.Second,
		Kinds: []faultnet.Kind{faultnet.KindStall}})
	px, err := New(Config{Target: addr, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, _ = conn.Write([]byte("hello?"))
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := conn.Read(buf)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("black hole answered: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	start := time.Now()
	if err := px.Close(); err != nil {
		t.Fatalf("proxy close: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("close waited out the stall (%v) instead of cancelling it", d)
	}
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("black-holed read returned data")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("black-holed connection still blocked after proxy close")
	}
	stop()
	checkGoroutines(t, baseline)
}
