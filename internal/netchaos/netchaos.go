// Package netchaos is the network-level arm of the chaos layer: a TCP
// proxy that sits between a real client and a real server and injects
// the failures only a socket can produce — connections reset at accept,
// reads and writes slowed to a crawl, black holes that accept bytes and
// answer nothing, and responses cut off mid-stream. Where faultnet
// attacks the platform's internal surfaces (metadata lookups, data
// service calls, server request handlers), netchaos attacks the wire
// itself, underneath HTTP, so the remote client's defenses — typed
// transport classification, retries with replay keys, breakers — are
// exercised by byte-level damage no in-process fault can model.
//
// Fault decisions ride faultnet's deterministic schedule machinery: the
// proxy registers three fault points with the shared Injector —
// "net/accept" rolled once per accepted connection, "net/c2s" and
// "net/s2c" rolled once per forwarded chunk — so a soak under a fixed
// seed and a fixed rate sequence replays the same abuse.
//
// Kind mapping at the socket level:
//
//	KindPermanent  connection reset (RST, not FIN) — at accept or mid-stream
//	KindTransient  mid-stream close of both directions
//	KindLatency    the chunk is delayed by the spike duration (slow link)
//	KindStall      black hole: bytes stop flowing until the stall watchdog
//	               or proxy shutdown, then the connection severs
//	KindTruncate   half the chunk is forwarded, then the connection severs
//	               (mid-response truncation; rolled only server→client)
//	KindPanic      never rolled at net sites — there is no process to crash
package netchaos

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultnet"
)

// Config parameterizes a Proxy.
type Config struct {
	// Target is the upstream server's host:port (required).
	Target string
	// Listen is the address to bind (default "127.0.0.1:0").
	Listen string
	// Faults drives the fault schedule. nil is valid: the proxy forwards
	// everything untouched — the control arm of a chaos sweep.
	Faults *faultnet.Injector
	// ChunkBytes is the copy granularity, the unit latency and
	// truncation faults act on (default 512).
	ChunkBytes int
	// DialTimeout bounds the upstream dial (default 5s).
	DialTimeout time.Duration
}

// Proxy is one listening chaos proxy. Close is idempotent, severs every
// live connection, and does not return until every proxy goroutine has
// exited — a closed proxy leaks nothing.
type Proxy struct {
	ln     net.Listener
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg       sync.WaitGroup
	accepted atomic.Int64
	severed  atomic.Int64
}

// New binds the listener and starts accepting. The proxy is live on
// Addr() when New returns.
func New(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("netchaos: Target required")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 512
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netchaos: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Proxy{ln: ln, cfg: cfg, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening host:port.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted returns how many connections the proxy has accepted.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Severed returns how many connections a fault tore down.
func (p *Proxy) Severed() int64 { return p.severed.Load() }

// Close stops accepting, severs every live connection, and waits for
// all proxy goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.cancel()
	err := p.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	p.wg.Wait()
	return err
}

// track registers live connections for Close; it fails (closing the
// conns) when the proxy is already shutting down.
func (p *Proxy) track(conns ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		for _, c := range conns {
			_ = c.Close()
		}
		return false
	}
	for _, c := range conns {
		p.conns[c] = struct{}{}
	}
	return true
}

func (p *Proxy) untrack(conns ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range conns {
		delete(p.conns, c)
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go p.serve(conn)
	}
}

// reset tears a connection down with an RST instead of a graceful FIN —
// what a crashed peer or a middlebox kill looks like to the other side.
func reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// serve proxies one accepted connection: an accept-time fault may kill
// or delay it before the upstream dial; after that, two pumps forward
// bytes chunk by chunk, each rolling per-chunk faults on its own site.
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	if !p.track(client) {
		return
	}
	if p.cfg.Faults != nil {
		if k, fired := p.cfg.Faults.Roll("net/accept", faultnet.KindTruncate, faultnet.KindPanic); fired {
			switch k {
			case faultnet.KindTransient, faultnet.KindPermanent:
				p.severed.Add(1)
				p.untrack(client)
				reset(client)
				return
			case faultnet.KindStall:
				// Black hole: the TCP handshake succeeded, nothing answers.
				_ = p.cfg.Faults.Perform(p.ctx, "net/accept", k)
				p.severed.Add(1)
				p.untrack(client)
				_ = client.Close()
				return
			case faultnet.KindLatency:
				_ = p.cfg.Faults.Perform(p.ctx, "net/accept", k)
			}
		}
	}
	upstream, err := net.DialTimeout("tcp", p.cfg.Target, p.cfg.DialTimeout)
	if err != nil {
		p.untrack(client)
		_ = client.Close()
		return
	}
	if !p.track(upstream) {
		p.untrack(client)
		_ = client.Close()
		return
	}
	var once sync.Once
	sever := func(rst bool) {
		once.Do(func() {
			p.untrack(client, upstream)
			if rst {
				reset(client)
				reset(upstream)
			} else {
				_ = client.Close()
				_ = upstream.Close()
			}
		})
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.pump(upstream, client, "net/c2s", []faultnet.Kind{faultnet.KindTruncate, faultnet.KindPanic}, sever)
	}()
	p.pump(client, upstream, "net/s2c", []faultnet.Kind{faultnet.KindPanic}, sever)
}

// pump copies src→dst in chunks, rolling the site's fault schedule once
// per chunk. Any fault that stops the flow severs both directions: a
// half-dead proxy connection would otherwise hang the HTTP client on a
// response that can never complete.
func (p *Proxy) pump(dst, src net.Conn, site string, exclude []faultnet.Kind, sever func(rst bool)) {
	defer sever(false)
	buf := make([]byte, p.cfg.ChunkBytes)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			payload := buf[:n]
			if p.cfg.Faults != nil {
				if k, fired := p.cfg.Faults.Roll(site, exclude...); fired {
					switch k {
					case faultnet.KindLatency:
						// A slow link: the chunk arrives late, intact.
						if p.cfg.Faults.Perform(p.ctx, site, k) != nil {
							return // proxy shutting down mid-delay
						}
					case faultnet.KindStall:
						// Black hole mid-stream: bytes stop, the connection
						// stays up until the watchdog or shutdown, then severs.
						_ = p.cfg.Faults.Perform(p.ctx, site, k)
						p.severed.Add(1)
						return
					case faultnet.KindTruncate:
						// Mid-response truncation: a prefix of the chunk
						// lands, then the connection dies.
						_, _ = dst.Write(payload[:len(payload)/2])
						p.severed.Add(1)
						return
					case faultnet.KindTransient:
						p.severed.Add(1)
						return
					case faultnet.KindPermanent:
						p.severed.Add(1)
						sever(true)
						return
					}
				}
			}
			if _, werr := dst.Write(payload); werr != nil {
				return
			}
		}
		if rerr != nil {
			return // EOF or peer reset: propagate the close to both sides
		}
	}
}
