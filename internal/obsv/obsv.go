// Package obsv is the observability layer of the translation pipeline: a
// lightweight stage tracer plus process-wide metrics, threaded through
// every stage the paper's architecture names (§3.4.1's progressive
// translation, the §3.5 metadata cache, §4 result materialization, and the
// engine standing in for the DSP server).
//
// The design has two halves:
//
//   - Trace — a per-query record of stage spans (lex, parse,
//     semantic-validate, restructure, generate, serialize, evaluate,
//     decode) with wall time, input/output sizes, and stage-specific
//     detail counters (wildcards expanded, contexts created, variables
//     generated, evaluator steps, …). A nil *Trace is a valid no-op
//     tracer, so pipeline code threads it unconditionally.
//
//   - Metrics — process- or connection-scoped atomic counters and duration
//     histograms aggregating queries translated, cache hits/misses, rows
//     materialized, evaluator steps, and cumulative per-stage time.
//     Metrics values are updated with atomics only; they are safe for
//     concurrent use from any number of goroutines.
//
// Consumers observe the layer three ways: EXPLAIN-style rendered traces
// (Trace.Render), snapshot scraping (Metrics.Snapshot), and structured
// hooks (Trace.Hook, a func(StageEvent) invoked as each stage closes).
package obsv

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage identifies one pipeline stage, in pipeline order.
type Stage int

// The pipeline stages. Lex through Serialize are the translator's
// (§3.4.1); Evaluate is the engine's; Decode is the result-set
// materialization of §4; Compile is the post-translation static check +
// plan construction that turns a translation into an executable
// CompiledQuery (the internal/qcache boundary).
const (
	StageLex Stage = iota
	StageParse
	StageValidate
	StageRestructure
	StageGenerate
	StageSerialize
	StageEvaluate
	StageDecode
	StageCompile
	NumStages // count sentinel, not a stage
)

var stageNames = [NumStages]string{
	"lex",
	"parse",
	"semantic-validate",
	"restructure",
	"generate",
	"serialize",
	"evaluate",
	"decode",
	"compile",
}

// String returns the stage's wire name (stable: golden tests and the
// bench JSON schema depend on these).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Detail is one stage-specific counter, e.g. {"wildcards", 4}.
type Detail struct {
	Key   string
	Value int64
}

// StageEvent is the completed record of one stage — what hooks receive
// and what a Trace accumulates.
type StageEvent struct {
	Stage    Stage
	Duration time.Duration
	// InSize and OutSize are stage input/output sizes in natural units
	// (bytes for lex/serialize, tokens for parse, rows for evaluate …);
	// zero when not meaningful.
	InSize  int
	OutSize int
	Detail  []Detail
}

// DetailValue returns the named detail counter (0 if absent).
func (ev StageEvent) DetailValue(key string) int64 {
	for _, d := range ev.Detail {
		if d.Key == key {
			return d.Value
		}
	}
	return 0
}

// Trace records the stage spans of one query's trip through the pipeline.
// All methods are safe on a nil receiver (no-ops), so pipeline code can
// thread a *Trace without nil checks. A non-nil Trace is safe for use
// from one goroutine at a time per span, which matches the pipeline: the
// stages of one query run sequentially.
type Trace struct {
	// SQL is the traced statement (for rendering).
	SQL string
	// Hook, when set, is invoked synchronously with each completed
	// StageEvent — the structured-observation surface the bench harness
	// and the driver's per-connection metrics use.
	Hook func(StageEvent)

	mu     sync.Mutex
	stages []StageEvent
}

// NewTrace starts an empty trace for a statement.
func NewTrace(sql string) *Trace { return &Trace{SQL: sql} }

// Span is an open stage measurement; End closes it into the trace.
// A nil *Span (from a nil Trace) ignores all calls.
type Span struct {
	t      *Trace
	stage  Stage
	start  time.Time
	in     int
	out    int
	detail []Detail
}

// StartStage opens a span for a stage. On a nil Trace it returns a nil
// Span, which is itself a no-op.
func (t *Trace) StartStage(s Stage) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, stage: s, start: time.Now()}
}

// SetInput records the stage's input size.
func (sp *Span) SetInput(n int) {
	if sp != nil {
		sp.in = n
	}
}

// SetOutput records the stage's output size.
func (sp *Span) SetOutput(n int) {
	if sp != nil {
		sp.out = n
	}
}

// Add records (or accumulates into) a stage-specific detail counter.
func (sp *Span) Add(key string, v int64) {
	if sp == nil {
		return
	}
	for i := range sp.detail {
		if sp.detail[i].Key == key {
			sp.detail[i].Value += v
			return
		}
	}
	sp.detail = append(sp.detail, Detail{Key: key, Value: v})
}

// End closes the span, appending its StageEvent to the trace and firing
// the trace hook.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	ev := StageEvent{
		Stage:    sp.stage,
		Duration: time.Since(sp.start),
		InSize:   sp.in,
		OutSize:  sp.out,
		Detail:   sp.detail,
	}
	sp.t.mu.Lock()
	sp.t.stages = append(sp.t.stages, ev)
	hook := sp.t.Hook
	sp.t.mu.Unlock()
	if hook != nil {
		hook(ev)
	}
}

// Record appends an externally measured stage event (used when a stage is
// timed by code that cannot hold a Span, e.g. accumulated sub-steps).
func (t *Trace) Record(ev StageEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, ev)
	hook := t.Hook
	t.mu.Unlock()
	if hook != nil {
		hook(ev)
	}
}

// Stages returns the recorded events in completion order.
func (t *Trace) Stages() []StageEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageEvent, len(t.stages))
	copy(out, t.stages)
	return out
}

// Stage returns the first recorded event for a stage (zero event, false
// if the stage never ran).
func (t *Trace) Stage(s Stage) (StageEvent, bool) {
	for _, ev := range t.Stages() {
		if ev.Stage == s {
			return ev, true
		}
	}
	return StageEvent{}, false
}

// Total sums the recorded stage durations.
func (t *Trace) Total() time.Duration {
	var d time.Duration
	for _, ev := range t.Stages() {
		d += ev.Duration
	}
	return d
}

// Render writes the trace as the fixed-width stage table EXPLAIN and the
// CLIs print. withDurations=false replaces times with "-" (golden tests
// normalize this way; EXPLAIN output is normalized by regex instead).
func (t *Trace) Render(w io.Writer, withDurations bool) {
	events := t.Stages()
	fmt.Fprintf(w, "%-18s %-10s %-8s %-8s %s\n", "stage", "time", "in", "out", "detail")
	for _, ev := range events {
		dur := "-"
		if withDurations {
			dur = ev.Duration.Round(100 * time.Nanosecond).String()
		}
		fmt.Fprintf(w, "%-18s %-10s %-8s %-8s %s\n",
			ev.Stage, dur, sizeCell(ev.InSize), sizeCell(ev.OutSize), renderDetail(ev.Detail))
	}
	if withDurations {
		fmt.Fprintf(w, "total: %s\n", t.Total().Round(100*time.Nanosecond))
	}
}

// RenderString is Render into a string.
func (t *Trace) RenderString(withDurations bool) string {
	var b strings.Builder
	t.Render(&b, withDurations)
	return b.String()
}

func sizeCell(n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

func renderDetail(details []Detail) string {
	if len(details) == 0 {
		return "-"
	}
	parts := make([]string, len(details))
	for i, d := range details {
		parts[i] = fmt.Sprintf("%s=%d", d.Key, d.Value)
	}
	return strings.Join(parts, " ")
}

// MergeStageNanos folds a trace's durations into a per-stage-name
// nanosecond map — the accumulation shape the bench harness writes to
// JSON.
func (t *Trace) MergeStageNanos(into map[string]int64) {
	for _, ev := range t.Stages() {
		into[ev.Stage.String()] += ev.Duration.Nanoseconds()
	}
}

// SortedKeys returns a detail/stage map's keys sorted (stable JSON and
// rendering order for aggregated maps).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
