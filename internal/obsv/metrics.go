package obsv

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. a cache's current size) —
// unlike Counter it can move both ways and be set outright.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// SetMax raises the gauge to n if n is larger — a concurrency-safe
// high-water mark (used for peak in-flight rows across cursors).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// histBuckets is the number of power-of-two latency buckets: bucket i
// holds observations in [2^i µs, 2^(i+1) µs), bucket 0 holds < 2 µs, and
// the last bucket holds everything from ~2.1 s up.
const histBuckets = 22

// Histogram is a lock-free duration histogram with power-of-two
// microsecond buckets — coarse, but enough to find a hot path's shape
// without a metrics dependency.
type Histogram struct {
	count   atomic.Int64
	sumNano atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNano.Add(d.Nanoseconds())
	h.buckets[bucketFor(d)].Add(1)
}

func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us)) // 1µs → 1, 2-3µs → 2, …
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i (the last
// bucket is unbounded and reports a negative duration).
func BucketBound(i int) time.Duration {
	if i >= histBuckets-1 {
		return -1
	}
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	SumNano int64
	Buckets [histBuckets]int64
}

// Mean returns the mean observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNano / s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q ≤ 1)
// from the bucket boundaries. The rank rounds up, so small counts behave
// sensibly (p99 of 3 observations is the maximum, not the 2nd-smallest).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= target {
			if b := BucketBound(i); b >= 0 {
				return b
			}
			break
		}
	}
	// Landed in the unbounded bucket: the mean is the best cheap bound.
	return time.Duration(s.SumNano / s.Count)
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNano = h.sumNano.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// LabeledCounter is a counter partitioned by a string label (e.g. scans
// per federated source). It trades the plain counters' lock-freedom for a
// mutex-guarded map — fine for per-scan granularity, wrong for per-row.
type LabeledCounter struct {
	mu sync.Mutex
	v  map[string]int64
}

// Add adds n under label.
func (c *LabeledCounter) Add(label string, n int64) {
	c.mu.Lock()
	if c.v == nil {
		c.v = make(map[string]int64)
	}
	c.v[label] += n
	c.mu.Unlock()
}

// Snapshot copies the per-label values (nil when nothing was counted).
func (c *LabeledCounter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.v) == 0 {
		return nil
	}
	out := make(map[string]int64, len(c.v))
	for k, v := range c.v {
		out[k] = v
	}
	return out
}

// Metrics aggregates pipeline activity. The zero value is ready to use;
// every field updates atomically, so one Metrics may be shared by any
// number of goroutines. The process-wide instance is Global; the driver
// additionally keeps one per connection for its Stats() surface.
type Metrics struct {
	// QueriesTranslated counts completed translations;
	// TranslateErrors counts translations rejected at any stage.
	QueriesTranslated Counter
	TranslateErrors   Counter
	// QueriesExecuted counts engine evaluations of translated queries.
	QueriesExecuted Counter
	// CacheHits/CacheMisses count metadata-cache lookups (§3.5).
	CacheHits   Counter
	CacheMisses Counter
	// RowsMaterialized counts result-set rows decoded whole (§4, both
	// paths); RowsStreamed counts rows delivered one pull at a time
	// through the streaming decoders.
	RowsMaterialized Counter
	RowsStreamed     Counter
	// TimeToFirstRow observes the latency from opening a streaming cursor
	// to its first row becoming available; PeakInFlightRows is the
	// high-water mark of rows buffered between producer and consumer
	// across all cursors (bounded by the cursor channel's capacity).
	TimeToFirstRow   Histogram
	PeakInFlightRows Gauge
	// EvalSteps counts evaluator expression steps (the engine's unit of
	// work).
	EvalSteps Counter
	// PlansBuilt counts evaluator query plans constructed; the remaining
	// Plan* counters aggregate the planner's static decisions across those
	// plans, and TuplesPruned counts tuples the planned executor skipped
	// relative to the naive nested-loop pipeline (hash-join misses plus
	// pushed-predicate rejections).
	PlansBuilt            Counter
	PlanHashJoins         Counter
	PlanPredicatesPushed  Counter
	PlanInvariantsHoisted Counter
	TuplesPruned          Counter

	// Parallel-execution counters (internal/xqeval parallel.go):
	// ParallelWorkers counts morsel workers spawned across all parallel
	// segments, MorselsProcessed counts morsels flushed through the ordered
	// merge, and MergeBacklog is the high-water mark of completed morsels
	// waiting on the merge point (bounded by the speculation window).
	// SourceStatsHits/Misses count the planner's statistics lookups
	// (stats.go) — misses mean a plan was built before its sources were
	// observed.
	ParallelWorkers   Counter
	MorselsProcessed  Counter
	MergeBacklog      Gauge
	SourceStatsHits   Counter
	SourceStatsMisses Counter

	// Federation counters (internal/xqeval partition.go): FederatedScans
	// counts scatter-gather evaluations of partitioned scans, ShardScans
	// the individual shard calls they made, ShardsPruned the shards a
	// pinned shard key let the executor skip entirely, and ShardsSkipped
	// the degraded shards a partial-tolerant scan dropped. SourceScans
	// attributes shard calls to their federated source.
	FederatedScans Counter
	ShardScans     Counter
	ShardsPruned   Counter
	ShardsSkipped  Counter
	SourceScans    LabeledCounter

	// Compile-cache counters (internal/qcache): lookups of CompiledQuery
	// artifacts at the compiled-query boundary. Hits reuse a compiled
	// artifact, misses compile one, shared lookups coalesced onto another
	// caller's in-flight compile, evictions are LRU drops under the size
	// bound, and invalidations are whole-cache flushes (catalog change or
	// degradation). Size is the current entry count across the process.
	CompileCacheHits          Counter
	CompileCacheMisses        Counter
	CompileCacheShared        Counter
	CompileCacheEvictions     Counter
	CompileCacheInvalidations Counter
	CompileCacheSize          Gauge

	// Resilience counters (fault injection and the defenses around it).
	// FaultsInjected counts chaos-layer injections (internal/faultnet);
	// the rest count the production-side reactions: retry attempts beyond
	// the first try, operations rescued by those retries, breaker state
	// transitions to open, calls rejected fast by an open breaker,
	// metadata lookups served stale during a backend outage, lookups
	// coalesced onto another in-flight fetch, panics converted to typed
	// errors, and queries aborted by a resource guard.
	FaultsInjected     Counter
	Retries            Counter
	RetrySuccesses     Counter
	BreakerOpens       Counter
	BreakerFastFails   Counter
	StaleServes        Counter
	SingleFlightShared Counter
	PanicsRecovered    Counter
	ResourceLimitHits  Counter

	// Server front-end counters (internal/server): wire-protocol sessions
	// opened over the server's lifetime and open right now, sessions
	// closed by the idle reaper, queries admitted and in flight (with the
	// high-water mark), executions rejected by admission control, and
	// server-side cursors opened / reaped from abandoned sessions (each
	// reaped cursor is a cancelled evaluation that would otherwise have
	// pinned a producer goroutine and its buffered rows).
	SessionsOpened      Counter
	SessionsActive      Gauge
	SessionsReaped      Counter
	QueriesInFlight     Gauge
	PeakQueriesInFlight Gauge
	AdmissionRejected   Counter
	CursorsOpened       Counter
	CursorsReaped       Counter

	// Overload-resilience counters. Server side: cost-aware admission holds
	// a weighted semaphore (weights in slots, one slot = CostPerSlot of
	// predicted work), a bounded FIFO queue in front of it, and a brownout
	// level that halves the admissible weight ceiling per step; sheds are
	// counted by reason. Replays are idempotent retries served from cursor
	// state (execute by idempotency key, fetch by chunk sequence number)
	// instead of re-evaluated. Client side: remoteclient retry attempts
	// beyond the first and how many operations they rescued, plus hedged
	// fetch duplicates and how often the hedge beat the primary.
	WeightedInFlight     Gauge
	WeightedPeak         Gauge
	AdmissionQueueDepth  Gauge
	AdmissionQueuePeak   Gauge
	ShedQueueFull        Counter
	ShedQueueTimeout     Counter
	ShedBrownout         Counter
	BrownoutLevel        Gauge
	BrownoutEngaged      Counter
	ExecReplays          Counter
	FetchReplays         Counter
	RemoteRetries        Counter
	RemoteRetrySuccesses Counter
	FetchHedges          Counter
	HedgeWins            Counter

	stageTime [NumStages]Histogram
}

// Global is the process-wide metrics instance the pipeline reports into.
var Global = &Metrics{}

// ObserveStage folds one completed stage event into the per-stage
// histograms (usable directly as a Trace hook).
func (m *Metrics) ObserveStage(ev StageEvent) {
	if ev.Stage < 0 || ev.Stage >= NumStages {
		return
	}
	m.stageTime[ev.Stage].Observe(ev.Duration)
}

// StageTime returns the histogram for one stage.
func (m *Metrics) StageTime(s Stage) *Histogram { return &m.stageTime[s] }

// StageSnapshot is the exported view of one stage's aggregate timing.
type StageSnapshot struct {
	Stage   string
	Count   int64
	TotalNS int64
	MeanNS  int64
	P99NS   int64
}

// Snapshot is a point-in-time copy of a Metrics — the scrape surface for
// embedders (plain values, no atomics).
type Snapshot struct {
	QueriesTranslated    int64
	TranslateErrors      int64
	QueriesExecuted      int64
	CacheHits            int64
	CacheMisses          int64
	RowsMaterialized     int64
	RowsStreamed         int64
	TimeToFirstRowCount  int64
	TimeToFirstRowMeanNS int64
	TimeToFirstRowP99NS  int64
	PeakInFlightRows     int64
	EvalSteps            int64
	PlansBuilt           int64
	HashJoins            int64
	PredicatesPushed     int64
	InvariantsHoisted    int64
	TuplesPruned         int64

	ParallelWorkers   int64
	MorselsProcessed  int64
	MergeBacklog      int64
	SourceStatsHits   int64
	SourceStatsMisses int64

	FederatedScans int64
	ShardScans     int64
	ShardsPruned   int64
	ShardsSkipped  int64
	// SourceScans maps federated source name → shard calls attributed to
	// it; nil when the process never ran a federated scan.
	SourceScans map[string]int64

	CompileCacheHits          int64
	CompileCacheMisses        int64
	CompileCacheShared        int64
	CompileCacheEvictions     int64
	CompileCacheInvalidations int64
	CompileCacheSize          int64

	FaultsInjected     int64
	Retries            int64
	RetrySuccesses     int64
	BreakerOpens       int64
	BreakerFastFails   int64
	StaleServes        int64
	SingleFlightShared int64
	PanicsRecovered    int64
	ResourceLimitHits  int64

	SessionsOpened      int64
	SessionsActive      int64
	SessionsReaped      int64
	QueriesInFlight     int64
	PeakQueriesInFlight int64
	AdmissionRejected   int64
	CursorsOpened       int64
	CursorsReaped       int64

	WeightedInFlight     int64
	WeightedPeak         int64
	AdmissionQueueDepth  int64
	AdmissionQueuePeak   int64
	ShedQueueFull        int64
	ShedQueueTimeout     int64
	ShedBrownout         int64
	BrownoutLevel        int64
	BrownoutEngaged      int64
	ExecReplays          int64
	FetchReplays         int64
	RemoteRetries        int64
	RemoteRetrySuccesses int64
	FetchHedges          int64
	HedgeWins            int64

	Stages []StageSnapshot // pipeline order; stages never seen are omitted
}

// Snapshot captures the current values.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		QueriesTranslated: m.QueriesTranslated.Load(),
		TranslateErrors:   m.TranslateErrors.Load(),
		QueriesExecuted:   m.QueriesExecuted.Load(),
		CacheHits:         m.CacheHits.Load(),
		CacheMisses:       m.CacheMisses.Load(),
		RowsMaterialized:  m.RowsMaterialized.Load(),
		RowsStreamed:      m.RowsStreamed.Load(),
		PeakInFlightRows:  m.PeakInFlightRows.Load(),
		EvalSteps:         m.EvalSteps.Load(),
		PlansBuilt:        m.PlansBuilt.Load(),
		HashJoins:         m.PlanHashJoins.Load(),
		PredicatesPushed:  m.PlanPredicatesPushed.Load(),
		InvariantsHoisted: m.PlanInvariantsHoisted.Load(),
		TuplesPruned:      m.TuplesPruned.Load(),

		ParallelWorkers:   m.ParallelWorkers.Load(),
		MorselsProcessed:  m.MorselsProcessed.Load(),
		MergeBacklog:      m.MergeBacklog.Load(),
		SourceStatsHits:   m.SourceStatsHits.Load(),
		SourceStatsMisses: m.SourceStatsMisses.Load(),

		FederatedScans: m.FederatedScans.Load(),
		ShardScans:     m.ShardScans.Load(),
		ShardsPruned:   m.ShardsPruned.Load(),
		ShardsSkipped:  m.ShardsSkipped.Load(),
		SourceScans:    m.SourceScans.Snapshot(),

		CompileCacheHits:          m.CompileCacheHits.Load(),
		CompileCacheMisses:        m.CompileCacheMisses.Load(),
		CompileCacheShared:        m.CompileCacheShared.Load(),
		CompileCacheEvictions:     m.CompileCacheEvictions.Load(),
		CompileCacheInvalidations: m.CompileCacheInvalidations.Load(),
		CompileCacheSize:          m.CompileCacheSize.Load(),

		FaultsInjected:     m.FaultsInjected.Load(),
		Retries:            m.Retries.Load(),
		RetrySuccesses:     m.RetrySuccesses.Load(),
		BreakerOpens:       m.BreakerOpens.Load(),
		BreakerFastFails:   m.BreakerFastFails.Load(),
		StaleServes:        m.StaleServes.Load(),
		SingleFlightShared: m.SingleFlightShared.Load(),
		PanicsRecovered:    m.PanicsRecovered.Load(),
		ResourceLimitHits:  m.ResourceLimitHits.Load(),

		SessionsOpened:      m.SessionsOpened.Load(),
		SessionsActive:      m.SessionsActive.Load(),
		SessionsReaped:      m.SessionsReaped.Load(),
		QueriesInFlight:     m.QueriesInFlight.Load(),
		PeakQueriesInFlight: m.PeakQueriesInFlight.Load(),
		AdmissionRejected:   m.AdmissionRejected.Load(),
		CursorsOpened:       m.CursorsOpened.Load(),
		CursorsReaped:       m.CursorsReaped.Load(),

		WeightedInFlight:     m.WeightedInFlight.Load(),
		WeightedPeak:         m.WeightedPeak.Load(),
		AdmissionQueueDepth:  m.AdmissionQueueDepth.Load(),
		AdmissionQueuePeak:   m.AdmissionQueuePeak.Load(),
		ShedQueueFull:        m.ShedQueueFull.Load(),
		ShedQueueTimeout:     m.ShedQueueTimeout.Load(),
		ShedBrownout:         m.ShedBrownout.Load(),
		BrownoutLevel:        m.BrownoutLevel.Load(),
		BrownoutEngaged:      m.BrownoutEngaged.Load(),
		ExecReplays:          m.ExecReplays.Load(),
		FetchReplays:         m.FetchReplays.Load(),
		RemoteRetries:        m.RemoteRetries.Load(),
		RemoteRetrySuccesses: m.RemoteRetrySuccesses.Load(),
		FetchHedges:          m.FetchHedges.Load(),
		HedgeWins:            m.HedgeWins.Load(),
	}
	if ttfr := m.TimeToFirstRow.Snapshot(); ttfr.Count > 0 {
		s.TimeToFirstRowCount = ttfr.Count
		s.TimeToFirstRowMeanNS = ttfr.Mean().Nanoseconds()
		s.TimeToFirstRowP99NS = ttfr.Quantile(0.99).Nanoseconds()
	}
	for st := Stage(0); st < NumStages; st++ {
		hs := m.stageTime[st].Snapshot()
		if hs.Count == 0 {
			continue
		}
		s.Stages = append(s.Stages, StageSnapshot{
			Stage:   st.String(),
			Count:   hs.Count,
			TotalNS: hs.SumNano,
			MeanNS:  hs.Mean().Nanoseconds(),
			P99NS:   hs.Quantile(0.99).Nanoseconds(),
		})
	}
	return s
}

// Render writes the snapshot as the aligned text block `\s` in aqlshell
// prints.
func (s Snapshot) Render(w io.Writer) {
	fmt.Fprintf(w, "queries translated: %d (errors: %d), executed: %d\n",
		s.QueriesTranslated, s.TranslateErrors, s.QueriesExecuted)
	fmt.Fprintf(w, "metadata cache: hits=%d misses=%d\n", s.CacheHits, s.CacheMisses)
	fmt.Fprintf(w, "rows materialized: %d, evaluator steps: %d\n",
		s.RowsMaterialized, s.EvalSteps)
	if s.RowsStreamed > 0 || s.TimeToFirstRowCount > 0 {
		fmt.Fprintf(w, "streaming: rows=%d, first-row mean=%s p99<=%s (%d cursors), peak in-flight rows=%d\n",
			s.RowsStreamed,
			time.Duration(s.TimeToFirstRowMeanNS).Round(time.Microsecond),
			time.Duration(s.TimeToFirstRowP99NS).Round(time.Microsecond),
			s.TimeToFirstRowCount, s.PeakInFlightRows)
	}
	if s.PlansBuilt > 0 {
		fmt.Fprintf(w, "planner: plans=%d hash joins=%d predicates pushed=%d invariants hoisted=%d tuples pruned=%d\n",
			s.PlansBuilt, s.HashJoins, s.PredicatesPushed, s.InvariantsHoisted, s.TuplesPruned)
	}
	if s.SourceStatsHits+s.SourceStatsMisses > 0 {
		fmt.Fprintf(w, "source stats: hits=%d misses=%d\n", s.SourceStatsHits, s.SourceStatsMisses)
	}
	if s.ParallelWorkers > 0 {
		fmt.Fprintf(w, "parallel: workers=%d morsels=%d peak merge backlog=%d\n",
			s.ParallelWorkers, s.MorselsProcessed, s.MergeBacklog)
	}
	if s.FederatedScans > 0 {
		s.RenderFederation(w)
	}
	if s.CompileCacheHits+s.CompileCacheMisses+s.CompileCacheShared > 0 {
		s.RenderCompileCache(w)
	}
	if s.resilienceActive() {
		s.RenderResilience(w)
	}
	if s.SessionsOpened+s.SessionsActive+s.AdmissionRejected+s.CursorsOpened > 0 {
		s.RenderServer(w)
	}
	if len(s.Stages) > 0 {
		fmt.Fprintf(w, "%-18s %-8s %-12s %-12s %s\n", "stage", "count", "total", "mean", "p99<=")
		for _, st := range s.Stages {
			fmt.Fprintf(w, "%-18s %-8d %-12s %-12s %s\n", st.Stage, st.Count,
				time.Duration(st.TotalNS).Round(time.Microsecond),
				time.Duration(st.MeanNS).Round(time.Microsecond),
				time.Duration(st.P99NS).Round(time.Microsecond))
		}
	}
}

// RenderCompileCache writes the compile-cache counter block (aqlshell's
// `\q`), unconditionally — zeros included, so a cache that has never been
// consulted is also visible.
func (s Snapshot) RenderCompileCache(w io.Writer) {
	fmt.Fprintf(w, "compile cache: hits=%d misses=%d shared=%d evictions=%d invalidations=%d size=%d\n",
		s.CompileCacheHits, s.CompileCacheMisses, s.CompileCacheShared,
		s.CompileCacheEvictions, s.CompileCacheInvalidations, s.CompileCacheSize)
}

// RenderServer writes the network-server counter block (aqlshell's `\v`),
// unconditionally — zeros included, so an idle server is also visible.
func (s Snapshot) RenderServer(w io.Writer) {
	fmt.Fprintf(w, "server sessions: open=%d opened=%d reaped=%d\n",
		s.SessionsActive, s.SessionsOpened, s.SessionsReaped)
	fmt.Fprintf(w, "server queries: in-flight=%d peak=%d admission-rejected=%d\n",
		s.QueriesInFlight, s.PeakQueriesInFlight, s.AdmissionRejected)
	fmt.Fprintf(w, "server admission: weighted in-flight=%d peak=%d queue depth=%d peak=%d brownout level=%d (engaged %d)\n",
		s.WeightedInFlight, s.WeightedPeak, s.AdmissionQueueDepth, s.AdmissionQueuePeak,
		s.BrownoutLevel, s.BrownoutEngaged)
	fmt.Fprintf(w, "server shed: queue-full=%d queue-timeout=%d brownout=%d, replays: exec=%d fetch=%d\n",
		s.ShedQueueFull, s.ShedQueueTimeout, s.ShedBrownout, s.ExecReplays, s.FetchReplays)
	fmt.Fprintf(w, "server cursors: opened=%d reaped=%d\n",
		s.CursorsOpened, s.CursorsReaped)
}

// RenderFederation writes the federated-scan counter block (aqlshell's
// `\f`), unconditionally — zeros included, so a federation that has never
// scattered is also visible.
func (s Snapshot) RenderFederation(w io.Writer) {
	fmt.Fprintf(w, "federation: scans=%d shard calls=%d pruned=%d skipped=%d\n",
		s.FederatedScans, s.ShardScans, s.ShardsPruned, s.ShardsSkipped)
	if len(s.SourceScans) > 0 {
		names := make([]string, 0, len(s.SourceScans))
		for n := range s.SourceScans {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "federation per-source scans:")
		for _, n := range names {
			fmt.Fprintf(w, " %s=%d", n, s.SourceScans[n])
		}
		fmt.Fprintln(w)
	}
}

// resilienceActive reports whether any resilience counter has moved (the
// block is omitted from Render for fault-free, defense-free processes).
func (s Snapshot) resilienceActive() bool {
	return s.FaultsInjected+s.Retries+s.RetrySuccesses+s.BreakerOpens+
		s.BreakerFastFails+s.StaleServes+s.SingleFlightShared+
		s.PanicsRecovered+s.ResourceLimitHits > 0
}

// RenderResilience writes the resilience counter block (aqlshell's `\r`),
// unconditionally — zeros included, so degradation that has NOT happened
// is also visible.
func (s Snapshot) RenderResilience(w io.Writer) {
	fmt.Fprintf(w, "faults injected: %d, panics recovered: %d, resource-limit aborts: %d\n",
		s.FaultsInjected, s.PanicsRecovered, s.ResourceLimitHits)
	fmt.Fprintf(w, "retries: %d (rescued: %d), breaker: opened=%d fast-fails=%d\n",
		s.Retries, s.RetrySuccesses, s.BreakerOpens, s.BreakerFastFails)
	fmt.Fprintf(w, "metadata degradation: stale serves=%d, single-flight shared=%d\n",
		s.StaleServes, s.SingleFlightShared)
	fmt.Fprintf(w, "remote client: retries=%d (rescued: %d), hedged fetches=%d (hedge won: %d)\n",
		s.RemoteRetries, s.RemoteRetrySuccesses, s.FetchHedges, s.HedgeWins)
}
