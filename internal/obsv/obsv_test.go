package obsv

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.StartStage(StageLex)
	sp.SetInput(10)
	sp.SetOutput(20)
	sp.Add("x", 1)
	sp.End() // must not panic
	if got := tr.Stages(); got != nil {
		t.Fatalf("nil trace Stages() = %v, want nil", got)
	}
	if tr.Total() != 0 {
		t.Fatalf("nil trace Total() = %v", tr.Total())
	}
	tr.Record(StageEvent{Stage: StageParse})
}

func TestTraceRecordsStagesInOrder(t *testing.T) {
	tr := NewTrace("SELECT 1")
	var hooked []Stage
	tr.Hook = func(ev StageEvent) { hooked = append(hooked, ev.Stage) }

	for _, s := range []Stage{StageLex, StageParse, StageGenerate} {
		sp := tr.StartStage(s)
		sp.Add("n", int64(s))
		sp.End()
	}
	events := tr.Stages()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	want := []Stage{StageLex, StageParse, StageGenerate}
	for i, ev := range events {
		if ev.Stage != want[i] {
			t.Fatalf("event %d = %v, want %v", i, ev.Stage, want[i])
		}
		if ev.DetailValue("n") != int64(want[i]) {
			t.Fatalf("event %d detail = %d", i, ev.DetailValue("n"))
		}
	}
	if len(hooked) != 3 || hooked[2] != StageGenerate {
		t.Fatalf("hook saw %v", hooked)
	}
}

func TestSpanAddAccumulates(t *testing.T) {
	tr := NewTrace("")
	sp := tr.StartStage(StageRestructure)
	sp.Add("tables", 1)
	sp.Add("tables", 2)
	sp.Add("wildcards", 5)
	sp.End()
	ev := tr.Stages()[0]
	if ev.DetailValue("tables") != 3 || ev.DetailValue("wildcards") != 5 {
		t.Fatalf("detail = %+v", ev.Detail)
	}
	if ev.DetailValue("absent") != 0 {
		t.Fatalf("absent detail should read 0")
	}
}

func TestStageNames(t *testing.T) {
	// Wire names are a stable surface (golden tests, BENCH JSON).
	want := map[Stage]string{
		StageLex:         "lex",
		StageParse:       "parse",
		StageValidate:    "semantic-validate",
		StageRestructure: "restructure",
		StageGenerate:    "generate",
		StageSerialize:   "serialize",
		StageEvaluate:    "evaluate",
		StageDecode:      "decode",
		StageCompile:     "compile",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if !strings.HasPrefix(Stage(99).String(), "stage(") {
		t.Errorf("out-of-range stage renders as %q", Stage(99).String())
	}
}

func TestRenderWithoutDurations(t *testing.T) {
	tr := NewTrace("SELECT 1")
	sp := tr.StartStage(StageLex)
	sp.SetInput(8)
	sp.SetOutput(3)
	sp.End()
	out := tr.RenderString(false)
	if !strings.Contains(out, "lex") || !strings.Contains(out, "8") {
		t.Fatalf("render = %q", out)
	}
	for _, line := range strings.Split(out, "\n")[1:] {
		if strings.Contains(line, "µs") || strings.Contains(line, "ms") {
			t.Fatalf("duration leaked into normalized render: %q", line)
		}
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(100 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if m := s.Mean(); m < 500*time.Microsecond || m > 2*time.Millisecond {
		t.Fatalf("mean = %v", m)
	}
	// p50 should land in a small bucket, the max in a big one.
	if q := s.Quantile(0.5); q > 64*time.Microsecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := s.Quantile(1.0); q < 50*time.Millisecond {
		t.Fatalf("p100 = %v", q)
	}
	// The rank rounds up: p99.9 of 100 observations is the maximum.
	if q := s.Quantile(0.999); q < 50*time.Millisecond {
		t.Fatalf("p99.9 = %v", q)
	}
	// Small-count sanity: p99 of 3 observations is the maximum, never
	// below the mean.
	var small Histogram
	small.Observe(2 * time.Microsecond)
	small.Observe(2 * time.Microsecond)
	small.Observe(40 * time.Microsecond)
	ss := small.Snapshot()
	if q := ss.Quantile(0.99); q < ss.Mean() {
		t.Fatalf("p99 %v below mean %v", q, ss.Mean())
	}
}

func TestBucketForRange(t *testing.T) {
	if b := bucketFor(0); b != 0 {
		t.Fatalf("bucketFor(0) = %d", b)
	}
	if b := bucketFor(time.Hour); b != histBuckets-1 {
		t.Fatalf("bucketFor(hour) = %d", b)
	}
	if BucketBound(histBuckets-1) != -1 {
		t.Fatalf("last bucket should be unbounded")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := &Metrics{}
	m.QueriesTranslated.Add(5)
	m.CacheHits.Inc()
	m.CacheMisses.Add(2)
	m.RowsMaterialized.Add(100)
	m.EvalSteps.Add(999)
	m.ObserveStage(StageEvent{Stage: StageParse, Duration: time.Millisecond})
	m.ObserveStage(StageEvent{Stage: StageParse, Duration: 3 * time.Millisecond})

	s := m.Snapshot()
	if s.QueriesTranslated != 5 || s.CacheHits != 1 || s.CacheMisses != 2 ||
		s.RowsMaterialized != 100 || s.EvalSteps != 999 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Stages) != 1 || s.Stages[0].Stage != "parse" || s.Stages[0].Count != 2 {
		t.Fatalf("stages = %+v", s.Stages)
	}
	if s.Stages[0].MeanNS != (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("mean = %d", s.Stages[0].MeanNS)
	}

	var b strings.Builder
	s.Render(&b)
	if !strings.Contains(b.String(), "hits=1 misses=2") {
		t.Fatalf("render = %q", b.String())
	}
}

func TestMetricsConcurrent(t *testing.T) {
	// Exercised under -race: concurrent observation and snapshotting must
	// be safe.
	m := &Metrics{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.QueriesTranslated.Inc()
				m.ObserveStage(StageEvent{Stage: StageEvaluate, Duration: time.Microsecond})
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if m.QueriesTranslated.Load() != 4000 {
		t.Fatalf("count = %d", m.QueriesTranslated.Load())
	}
	if m.StageTime(StageEvaluate).Snapshot().Count != 4000 {
		t.Fatalf("stage count = %d", m.StageTime(StageEvaluate).Snapshot().Count)
	}
}

func TestMergeStageNanosAndSortedKeys(t *testing.T) {
	tr := NewTrace("")
	tr.Record(StageEvent{Stage: StageLex, Duration: 5 * time.Nanosecond})
	tr.Record(StageEvent{Stage: StageParse, Duration: 7 * time.Nanosecond})
	tr.Record(StageEvent{Stage: StageLex, Duration: 3 * time.Nanosecond})
	into := map[string]int64{}
	tr.MergeStageNanos(into)
	if into["lex"] != 8 || into["parse"] != 7 {
		t.Fatalf("merged = %v", into)
	}
	keys := SortedKeys(into)
	if len(keys) != 2 || keys[0] != "lex" || keys[1] != "parse" {
		t.Fatalf("keys = %v", keys)
	}
}
