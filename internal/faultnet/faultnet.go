// Package faultnet is the chaos layer of the resilience net: it wraps the
// two remote surfaces of the platform — the catalog metadata source and
// the engine's data service functions — and injects the failures a real
// deployment sees on the wire: transient errors, permanent errors, latency
// spikes, stalls that hang until cancelled, truncated row sequences, and
// outright panics.
//
// Injection is deterministic. Each call site (one metadata table, one data
// service function) keeps its own call counter, and the fault decision for
// call n at site s is a pure function of (Seed, s, n) — independent of
// goroutine interleaving, so a soak test that replays the same queries
// under the same seed sees the same faults, even under -race with worker
// pools.
package faultnet

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/obsv"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindTransient is a retryable failure (network blip).
	KindTransient Kind = iota
	// KindPermanent is a deterministic failure retries cannot fix.
	KindPermanent
	// KindLatency delays the call by the configured spike duration.
	KindLatency
	// KindStall hangs until the caller's context is cancelled (bounded by
	// the stall watchdog so an uncancellable caller cannot deadlock).
	KindStall
	// KindTruncate returns a prefix of the real row sequence together
	// with a transient error, modeling a connection dropped mid-stream.
	KindTruncate
	// KindPanic panics inside the call, exercising recovery boundaries.
	KindPanic

	numKinds int = iota
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindPermanent:
		return "permanent"
	case KindLatency:
		return "latency"
	case KindStall:
		return "stall"
	case KindTruncate:
		return "truncate"
	case KindPanic:
		return "panic"
	default:
		return "unknown"
	}
}

// Error is an injected failure. It implements the Transient/Fault
// classification interfaces the resilience layer keys off.
type Error struct {
	Site string
	Kind Kind
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faultnet: injected %s fault at %s", e.Kind, e.Site)
}

// Transient reports whether a retry may succeed.
func (e *Error) Transient() bool {
	return e.Kind == KindTransient || e.Kind == KindTruncate
}

// Fault marks injected errors as infrastructure faults for breakers.
func (e *Error) Fault() bool { return true }

// Config parameterizes an Injector.
type Config struct {
	// Seed selects the deterministic fault schedule.
	Seed uint64
	// Rate is the per-call fault probability in [0, 1].
	Rate float64
	// Latency is the spike duration for KindLatency (default 2ms).
	Latency time.Duration
	// StallTimeout bounds KindStall for callers without a deadline
	// (default 30s); the stall then resolves to a transient error.
	StallTimeout time.Duration
	// Kinds restricts injection to the listed kinds; empty means all.
	Kinds []Kind
}

// Injector decides, per call site and call number, whether and how to
// misbehave. One Injector is shared by all wrapped surfaces so its
// registry shows the whole deployment's fault points.
type Injector struct {
	cfg      Config
	kinds    []Kind
	rateBits atomic.Uint64 // Config.Rate as Float64bits, adjustable mid-run

	mu    sync.Mutex
	sites map[string]*site

	// siteRates holds per-prefix rate overrides (longest prefix wins),
	// letting a chaos test take one backend hard-down while the rest of
	// the deployment runs at the base rate.
	rateMu    sync.RWMutex
	siteRates []siteRate
}

// siteRate is one per-prefix rate override.
type siteRate struct {
	prefix string
	rate   float64
}

// site is one registered fault point.
type site struct {
	name     string
	hash     uint64
	calls    atomic.Int64
	seq      atomic.Uint64
	injected [numKinds]atomic.Int64
}

// New builds an injector. A Rate of zero is valid: every surface stays
// wrapped (the registry still records call counts) but no fault fires —
// the control arm of fault-sweep benchmarks.
func New(cfg Config) *Injector {
	if cfg.Latency <= 0 {
		cfg.Latency = 2 * time.Millisecond
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 30 * time.Second
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindTransient, KindPermanent, KindLatency, KindStall, KindTruncate, KindPanic}
	}
	inj := &Injector{cfg: cfg, kinds: kinds, sites: make(map[string]*site)}
	inj.rateBits.Store(math.Float64bits(cfg.Rate))
	return inj
}

// SetRate changes the fault probability mid-run — how a soak takes a
// healthy deployment hard-down (rate 1) or heals it (rate 0) without
// rebuilding the wrapped surfaces. Site counters keep running, so the
// schedule stays deterministic for a fixed sequence of rate changes.
func (inj *Injector) SetRate(rate float64) {
	inj.rateBits.Store(math.Float64bits(rate))
}

// Rate returns the current fault probability.
func (inj *Injector) Rate() float64 {
	return math.Float64frombits(inj.rateBits.Load())
}

// SetSiteRate overrides the fault probability for every site whose name
// starts with prefix ("ds/billing/" takes one backend's data services
// hard-down without touching the rest). The longest matching prefix wins;
// setting a negative rate removes the override. The schedule stays
// deterministic: overrides change only the acceptance threshold, not the
// per-site counters or the pseudo-random stream.
func (inj *Injector) SetSiteRate(prefix string, rate float64) {
	inj.rateMu.Lock()
	defer inj.rateMu.Unlock()
	for i, sr := range inj.siteRates {
		if sr.prefix == prefix {
			if rate < 0 {
				inj.siteRates = append(inj.siteRates[:i], inj.siteRates[i+1:]...)
			} else {
				inj.siteRates[i].rate = rate
			}
			return
		}
	}
	if rate < 0 {
		return
	}
	inj.siteRates = append(inj.siteRates, siteRate{prefix: prefix, rate: rate})
}

// rateFor resolves the effective rate for a site name: the longest
// matching prefix override, or the global rate when none matches.
func (inj *Injector) rateFor(name string) float64 {
	inj.rateMu.RLock()
	defer inj.rateMu.RUnlock()
	rate := inj.Rate()
	best := -1
	for _, sr := range inj.siteRates {
		if len(sr.prefix) > best && len(sr.prefix) <= len(name) && name[:len(sr.prefix)] == sr.prefix {
			best = len(sr.prefix)
			rate = sr.rate
		}
	}
	return rate
}

func (inj *Injector) site(name string) *site {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	s, ok := inj.sites[name]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(name))
		s = &site{name: name, hash: h.Sum64()}
		inj.sites[name] = s
	}
	return s
}

// splitmix64 is the finalizer from Vigna's SplitMix64 — enough mixing to
// turn (seed ^ site ^ counter) into an independent-looking stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll decides call n's fate at a site: the returned Kind is valid only
// when inject is true. allowed filters the kinds this surface can express.
func (inj *Injector) roll(s *site, allowed []Kind) (Kind, bool) {
	s.calls.Add(1)
	n := s.seq.Add(1)
	rate := inj.rateFor(s.name)
	if rate <= 0 {
		return 0, false
	}
	r := splitmix64(inj.cfg.Seed ^ s.hash ^ n)
	// 53 uniform bits → [0,1).
	if float64(r>>11)/float64(1<<53) >= rate {
		return 0, false
	}
	kinds := allowed
	if len(kinds) == 0 {
		kinds = inj.kinds
	}
	k := kinds[splitmix64(r)%uint64(len(kinds))]
	s.injected[k].Add(1)
	obsv.Global.FaultsInjected.Inc()
	return k, true
}

// allowedFor intersects the injector's configured kinds with what a
// surface can express (metadata lookups have no row stream to truncate).
func (inj *Injector) allowedFor(exclude ...Kind) []Kind {
	out := make([]Kind, 0, len(inj.kinds))
	for _, k := range inj.kinds {
		skip := false
		for _, x := range exclude {
			if k == x {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, k)
		}
	}
	return out
}

// delay waits for d or the context, whichever first.
func delay(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// perform executes one injected fault (except truncation, which the data
// wrapper handles inline because it needs the real rows). The returned
// error is nil for pure-latency faults.
func (inj *Injector) perform(ctx context.Context, st *site, k Kind) error {
	switch k {
	case KindTransient, KindTruncate:
		return &Error{Site: st.name, Kind: KindTransient}
	case KindPermanent:
		return &Error{Site: st.name, Kind: KindPermanent}
	case KindLatency:
		return delay(ctx, inj.cfg.Latency)
	case KindStall:
		if err := delay(ctx, inj.cfg.StallTimeout); err != nil {
			return err // cancelled — the expected way out of a stall
		}
		// Watchdog fired: an uncancellable caller gets a transient error
		// rather than a deadlock.
		return &Error{Site: st.name, Kind: KindStall}
	case KindPanic:
		panic(fmt.Sprintf("faultnet: injected panic at %s", st.name))
	}
	return nil
}

// Roll registers (on first use) and rolls an ad-hoc named fault point —
// how surfaces outside the built-in metadata/data wrappers join the net
// (the network server's srv/* request sites). The returned Kind is valid
// only when inject is true; the caller then realizes it with Perform, or
// handles it inline when the fault needs the caller's data (truncation).
func (inj *Injector) Roll(name string, exclude ...Kind) (Kind, bool) {
	return inj.roll(inj.site(name), inj.allowedFor(exclude...))
}

// Perform realizes one rolled fault at a named point: transient/permanent
// return their typed errors, latency sleeps and returns nil, a stall hangs
// until the context is cancelled (bounded by the watchdog), and a panic
// panics — callers are expected to sit behind a recovery boundary, as the
// server's handlers do. KindTruncate returns the transient error; the
// caller is responsible for shortening its own payload first.
func (inj *Injector) Perform(ctx context.Context, name string, k Kind) error {
	return inj.perform(ctx, inj.site(name), k)
}

// Source wraps a metadata source in the chaos layer. Each table reference
// is its own fault point ("meta/CATALOG.SCHEMA.TABLE").
func (inj *Injector) Source(inner catalog.Source) catalog.Source {
	return &faultSource{inj: inj, inner: inner}
}

// SourceNamed wraps one federation backend's metadata source, prefixing
// its fault points with the backend name ("meta/billing/CATALOG.TABLE")
// so SetSiteRate can target a single backend's metadata plane.
func (inj *Injector) SourceNamed(name string, inner catalog.Source) catalog.Source {
	return &faultSource{inj: inj, inner: inner, prefix: "meta/" + name + "/"}
}

type faultSource struct {
	inj    *Injector
	inner  catalog.Source
	prefix string // "" means the default "meta/" prefix
}

func (f *faultSource) Lookup(ref catalog.TableRef) (*catalog.TableMeta, error) {
	return f.LookupContext(context.Background(), ref)
}

func (f *faultSource) LookupContext(ctx context.Context, ref catalog.TableRef) (*catalog.TableMeta, error) {
	prefix := f.prefix
	if prefix == "" {
		prefix = "meta/"
	}
	st := f.inj.site(prefix + ref.String())
	// Metadata lookups return a single struct — nothing to truncate.
	if k, ok := f.inj.roll(st, f.inj.allowedFor(KindTruncate)); ok {
		if err := f.inj.perform(ctx, st, k); err != nil {
			return nil, err
		}
	}
	return catalog.LookupContext(ctx, f.inner, ref)
}

func (f *faultSource) Tables() ([]*catalog.TableMeta, error)     { return f.inner.Tables() }
func (f *faultSource) Procedures() ([]*catalog.TableMeta, error) { return f.inner.Procedures() }

// Middleware returns the engine middleware injecting faults into data
// service calls. Install it before the resilience middleware so defenses
// wrap faults, not the other way around.
func (inj *Injector) Middleware() xqeval.Middleware {
	return func(name string, fn xqeval.ContextFunc) xqeval.ContextFunc {
		return func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			st := inj.site("ds/" + name)
			k, ok := inj.roll(st, nil)
			if !ok {
				return fn(ctx, args)
			}
			if k == KindTruncate {
				rows, err := fn(ctx, args)
				if err != nil {
					return nil, err
				}
				// A dropped connection mid-stream: some rows arrived, then
				// the transient error. Never silent — the partial sequence
				// always travels with the error, so no caller can mistake
				// it for a complete result.
				return rows[:len(rows)/2], &Error{Site: st.name, Kind: KindTruncate}
			}
			if err := inj.perform(ctx, st, k); err != nil {
				return nil, err
			}
			return fn(ctx, args) // latency spike resolved; real call proceeds
		}
	}
}

// SiteReport is one fault point's registry entry.
type SiteReport struct {
	Name  string
	Calls int64
	// Injected[k] counts injections of Kind(k).
	Injected [6]int64
}

// Total sums the site's injections across kinds.
func (r SiteReport) Total() int64 {
	var n int64
	for _, v := range r.Injected {
		n += v
	}
	return n
}

// Report lists every registered fault point, sorted by name.
func (inj *Injector) Report() []SiteReport {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]SiteReport, 0, len(inj.sites))
	for _, s := range inj.sites {
		r := SiteReport{Name: s.name, Calls: s.calls.Load()}
		for k := 0; k < numKinds; k++ {
			r.Injected[k] = s.injected[k].Load()
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
