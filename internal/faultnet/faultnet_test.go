package faultnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// schedule replays n rolls at one site and records which calls fault.
func schedule(inj *Injector, siteName string, n int) []Kind {
	out := make([]Kind, n)
	st := inj.site(siteName)
	for i := 0; i < n; i++ {
		k, ok := inj.roll(st, nil)
		if ok {
			out[i] = k
		} else {
			out[i] = -1
		}
	}
	return out
}

func TestScheduleDeterministic(t *testing.T) {
	a := schedule(New(Config{Seed: 42, Rate: 0.3}), "ds/X", 200)
	b := schedule(New(Config{Seed: 42, Rate: 0.3}), "ds/X", 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(New(Config{Seed: 43, Rate: 0.3}), "ds/X", 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleInterleavingIndependent(t *testing.T) {
	// Two sites hammered from many goroutines: each site's k-th call must
	// fault exactly as in a serial replay, regardless of interleaving.
	mk := func() *Injector { return New(Config{Seed: 7, Rate: 0.25}) }
	serialX := schedule(mk(), "ds/X", 100)
	serialY := schedule(mk(), "ds/Y", 100)

	inj := mk()
	var wg sync.WaitGroup
	gotX := make([]Kind, 100)
	gotY := make([]Kind, 100)
	for _, w := range []struct {
		name string
		got  []Kind
	}{{"ds/X", gotX}, {"ds/Y", gotY}} {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := inj.site(w.name)
			for i := 0; i < 100; i++ {
				if k, ok := inj.roll(st, nil); ok {
					w.got[i] = k
				} else {
					w.got[i] = -1
				}
			}
		}()
	}
	wg.Wait()
	for i := range serialX {
		if gotX[i] != serialX[i] || gotY[i] != serialY[i] {
			t.Fatalf("interleaved schedule diverged at call %d", i)
		}
	}
}

func TestErrorClassification(t *testing.T) {
	tr := &Error{Site: "s", Kind: KindTransient}
	if !aqerr.Transient(tr) || !aqerr.Fault(tr) {
		t.Fatal("transient fault should classify transient+fault")
	}
	pe := &Error{Site: "s", Kind: KindPermanent}
	if aqerr.Transient(pe) || !aqerr.Fault(pe) {
		t.Fatal("permanent fault should classify fault but not transient")
	}
	tc := &Error{Site: "s", Kind: KindTruncate}
	if !aqerr.Transient(tc) {
		t.Fatal("truncation should be retryable")
	}
}

func TestStallObservesCancellation(t *testing.T) {
	inj := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindStall}, StallTimeout: time.Minute})
	src := inj.Source(catalog.Demo())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := catalog.LookupContext(ctx, src, catalog.TableRef{Table: "CUSTOMERS"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("stall ignored cancellation")
	}
}

func TestStallWatchdog(t *testing.T) {
	inj := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindStall}, StallTimeout: 10 * time.Millisecond})
	src := inj.Source(catalog.Demo())
	_, err := src.Lookup(catalog.TableRef{Table: "CUSTOMERS"})
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindStall {
		t.Fatalf("err = %v, want watchdog stall error", err)
	}
}

func TestTruncationCarriesError(t *testing.T) {
	e := xqeval.New()
	rows := make([]*xdm.Element, 10)
	for i := range rows {
		rows[i] = xdm.NewElement("R")
	}
	e.RegisterRows("urn:t", "T", rows)
	inj := New(Config{Seed: 5, Rate: 1, Kinds: []Kind{KindTruncate}})
	e.Use(inj.Middleware())
	out, err := e.Call("urn:t", "T", nil)
	if err == nil {
		t.Fatal("truncated call must surface an error — partial rows are never silent")
	}
	if !aqerr.Transient(err) {
		t.Fatalf("truncation error %v should be transient", err)
	}
	if len(out) >= 10 {
		t.Fatalf("rows = %d, want a strict prefix", len(out))
	}
}

func TestPanicKindPanics(t *testing.T) {
	e := xqeval.New()
	e.RegisterRows("urn:t", "T", nil)
	inj := New(Config{Seed: 5, Rate: 1, Kinds: []Kind{KindPanic}})
	e.Use(inj.Middleware())
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
	}()
	e.Call("urn:t", "T", nil)
}

func TestZeroRateInjectsNothing(t *testing.T) {
	inj := New(Config{Seed: 9, Rate: 0})
	src := inj.Source(catalog.Demo())
	for i := 0; i < 50; i++ {
		if _, err := src.Lookup(catalog.TableRef{Table: "CUSTOMERS"}); err != nil {
			t.Fatal(err)
		}
	}
	rep := inj.Report()
	if len(rep) != 1 || rep[0].Calls != 50 || rep[0].Total() != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRegistryTracksSites(t *testing.T) {
	inj := New(Config{Seed: 3, Rate: 0.5, Kinds: []Kind{KindTransient, KindPermanent, KindLatency}, Latency: time.Microsecond})
	src := inj.Source(catalog.Demo())
	for i := 0; i < 40; i++ {
		src.Lookup(catalog.TableRef{Table: "CUSTOMERS"})
		src.Lookup(catalog.TableRef{Table: "PAYMENTS"})
	}
	rep := inj.Report()
	if len(rep) != 2 {
		t.Fatalf("sites = %d, want 2", len(rep))
	}
	var total int64
	for _, r := range rep {
		if r.Calls != 40 {
			t.Fatalf("%s calls = %d", r.Name, r.Calls)
		}
		total += r.Total()
	}
	if total == 0 {
		t.Fatal("rate 0.5 over 80 calls should inject at least once")
	}
}
