package demo

// federate.go generates the multi-source demo deployment: a central
// application plus two extra federation backends (a billing system and an
// XML-file-backed source), with one table horizontally partitioned into
// shards that live on different sources. It is the fixture behind the
// federated differential tests, the per-source chaos test, and the P13
// federation benchmark. OracleSetup builds the same tables as one
// single-source application serving identical rows in identical order —
// the byte-identity oracle the federated deployment is held to.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// Federation backend names (the central backend is the App's own name,
// FederatedAppName).
const (
	FederatedAppName = "TestApp"
	SourceBilling    = "billing"
	SourceFiles      = "files"
)

// FederatedSizes parameterizes the multi-source dataset.
type FederatedSizes struct {
	Accounts int
	Invoices int
	Orders   int
	// Shards is the number of ORDERS shards (assigned round-robin across
	// the central, billing, and files sources).
	Shards int
}

// DefaultFederatedSizes is the dataset used by tests.
var DefaultFederatedSizes = FederatedSizes{Accounts: 30, Invoices: 60, Orders: 120, Shards: 3}

// NamedBackend is one extra federation backend to register with
// Platform.AddSource.
type NamedBackend struct {
	Name   string
	Source catalog.Source
}

// FederatedFixture is the assembled multi-source deployment.
type FederatedFixture struct {
	// App is the central backend's metadata (accounts plus the logical
	// partitioned ORDERS table).
	App *catalog.Application
	// Engine serves every source's rows: central functions are untagged,
	// the other backends' functions are source-tagged (per-source fault
	// sites and breakers), and ORDERS is registered partitioned.
	Engine *xqeval.Engine
	// Extra lists the non-central backends in registration order.
	Extra []NamedBackend
	// Spec is the ORDERS partition spec (exposed for tests).
	Spec *xqeval.PartitionSpec
}

// regionsXML is the files backend: a whole application defined as an XML
// document, the way a file-backed data service ships its metadata and
// rows together.
const regionsXML = `<application name="Files">
  <dataservice path="Files" name="REGIONS">
    <function name="REGIONS">
      <column name="REGION" type="VARCHAR" nullable="false"/>
      <column name="COUNTRY" type="VARCHAR"/>
      <rows>
        <REGIONS><REGION>NA</REGION><COUNTRY>US</COUNTRY></REGIONS>
        <REGIONS><REGION>EMEA</REGION><COUNTRY>DE</COUNTRY></REGIONS>
        <REGIONS><REGION>APAC</REGION><COUNTRY>JP</COUNTRY></REGIONS>
        <REGIONS><REGION>LATAM</REGION><COUNTRY>BR</COUNTRY></REGIONS>
      </rows>
    </function>
  </dataservice>
  <dataservice path="Files" name="RATES">
    <function name="RATES">
      <column name="CURRENCY" type="VARCHAR" nullable="false"/>
      <column name="RATE" type="DECIMAL"/>
      <rows>
        <RATES><CURRENCY>EUR</CURRENCY><RATE>1.08</RATE></RATES>
        <RATES><CURRENCY>JPY</CURRENCY><RATE>0.0067</RATE></RATES>
      </rows>
    </function>
  </dataservice>
</application>`

var regions = []string{"NA", "EMEA", "APAC", "LATAM"}

// federatedData is every generated row set, shared by the federated and
// oracle engines so both serve identical bytes.
type federatedData struct {
	accounts []*xdm.Element
	invoices []*xdm.Element
	// orderShards[i] holds shard i's ORDERS rows; the logical table is
	// their in-order concatenation.
	orderShards [][]*xdm.Element
	// filesApp/filesRows are the parsed XML backend.
	filesApp  *catalog.Application
	filesRows map[string][]*xdm.Element
}

func generateFederated(sz FederatedSizes) *federatedData {
	if sz.Shards < 1 {
		sz.Shards = 1
	}
	r := &rng{state: 20060705}
	d := &federatedData{orderShards: make([][]*xdm.Element, sz.Shards)}

	for i := 0; i < sz.Accounts; i++ {
		id := 100 + i
		row := xdm.NewElement("ACCOUNTS")
		row.AddChild(xdm.NewTextElement("ACCOUNTID", itoa(id)))
		row.AddChild(xdm.NewTextElement("NAME",
			fmt.Sprintf("%s %s", firstNames[r.intn(len(firstNames))], companySuffixes[r.intn(len(companySuffixes))])))
		row.AddChild(xdm.NewTextElement("REGION", regions[r.intn(len(regions))]))
		d.accounts = append(d.accounts, row)
	}

	for i := 0; i < sz.Invoices; i++ {
		row := xdm.NewElement("INVOICES")
		row.AddChild(xdm.NewTextElement("INVOICEID", itoa(9000+i)))
		row.AddChild(xdm.NewTextElement("ACCOUNTID", itoa(100+r.intn(maxInt(sz.Accounts, 1)))))
		cents := 500 + r.intn(900000)
		row.AddChild(xdm.NewTextElement("AMOUNT", fmt.Sprintf("%d.%02d", cents/100, cents%100)))
		row.AddChild(xdm.NewTextElement("STATUS", statuses[r.intn(len(statuses))]))
		d.invoices = append(d.invoices, row)
	}

	for i := 0; i < sz.Orders; i++ {
		acct := 100 + r.intn(maxInt(sz.Accounts, 1))
		row := xdm.NewElement("ORDERS")
		row.AddChild(xdm.NewTextElement("ORDERID", itoa(5000+i)))
		row.AddChild(xdm.NewTextElement("ACCOUNTID", itoa(acct)))
		row.AddChild(xdm.NewTextElement("ITEM", products[r.intn(len(products))]))
		row.AddChild(xdm.NewTextElement("QTY", itoa(1+r.intn(20))))
		// Shard assignment must agree with the spec's ShardFor: rows for
		// an account live on exactly one shard, which is what makes
		// equality pruning on ACCOUNTID sound.
		shard := acct % sz.Shards
		d.orderShards[shard] = append(d.orderShards[shard], row)
	}

	app, rows, err := catalog.LoadXMLApplication(strings.NewReader(regionsXML))
	if err != nil {
		panic("demo: bad embedded files application: " + err.Error())
	}
	d.filesApp, d.filesRows = app, rows
	return d
}

func accountsFn() *catalog.Function {
	return catalog.NewRelationalImport("Central", "ACCOUNTS", []catalog.Column{
		{Name: "ACCOUNTID", Type: catalog.SQLInteger},
		{Name: "NAME", Type: catalog.SQLVarchar},
		{Name: "REGION", Type: catalog.SQLVarchar},
	})
}

func ordersFn() *catalog.Function {
	return catalog.NewRelationalImport("Central", "ORDERS", []catalog.Column{
		{Name: "ORDERID", Type: catalog.SQLInteger},
		{Name: "ACCOUNTID", Type: catalog.SQLInteger},
		{Name: "ITEM", Type: catalog.SQLVarchar},
		{Name: "QTY", Type: catalog.SQLInteger},
	})
}

func invoicesFn() *catalog.Function {
	return catalog.NewRelationalImport("Billing", "INVOICES", []catalog.Column{
		{Name: "INVOICEID", Type: catalog.SQLInteger},
		{Name: "ACCOUNTID", Type: catalog.SQLInteger},
		{Name: "AMOUNT", Type: catalog.SQLDecimal},
		{Name: "STATUS", Type: catalog.SQLVarchar},
	})
}

// billingRatesFn collides with the files backend's RATES table on purpose:
// resolving unqualified RATES across the federation raises the typed
// cross-source AmbiguousError.
func billingRatesFn() *catalog.Function {
	return catalog.NewRelationalImport("Billing", "RATES", []catalog.Column{
		{Name: "CURRENCY", Type: catalog.SQLVarchar},
		{Name: "RATE", Type: catalog.SQLDecimal},
	})
}

var billingRates = []*xdm.Element{
	NewFlatRow("RATES", "CURRENCY", "EUR", "RATE", "1.10"),
	NewFlatRow("RATES", "CURRENCY", "GBP", "RATE", "1.27"),
}

// NewFlatRow builds a flat row element from column/value pairs.
func NewFlatRow(name string, pairs ...string) *xdm.Element {
	row := xdm.NewElement(name)
	for i := 0; i+1 < len(pairs); i += 2 {
		row.AddChild(xdm.NewTextElement(pairs[i], pairs[i+1]))
	}
	return row
}

// ordersSpec builds the ORDERS partition spec: shard i serves the rows of
// accounts with ACCOUNTID ≡ i (mod shards), hosted round-robin on the
// central, billing, and files sources.
func ordersSpec(shards int, partial bool) *xqeval.PartitionSpec {
	ns := "ld:Central/ORDERS"
	hosts := []string{FederatedAppName, SourceBilling, SourceFiles}
	spec := &xqeval.PartitionSpec{Key: "ACCOUNTID", Partial: partial}
	for i := 0; i < shards; i++ {
		spec.Shards = append(spec.Shards, xqeval.ShardSpec{
			Source:    hosts[i%len(hosts)],
			Namespace: ns,
			Local:     "ORDERS_S" + strconv.Itoa(i),
		})
	}
	spec.ShardFor = func(v xdm.Atomic) int {
		n, err := strconv.Atoi(strings.TrimSpace(v.Lexical()))
		if err != nil || n < 0 {
			return -1
		}
		return n % shards
	}
	return spec
}

// FederatedSetup builds the multi-source deployment: central metadata and
// engine, the extra backends for Platform.AddSource, and the partitioned
// ORDERS table with shards tagged to their hosting sources. partial
// selects the mediator's partial-results mode (degraded shards are
// skipped rather than failing the scan).
func FederatedSetup(sz FederatedSizes, partial bool) *FederatedFixture {
	d := generateFederated(sz)

	app := &catalog.Application{Name: FederatedAppName}
	app.AddDSFile(&catalog.DSFile{Path: "Central", Name: "ACCOUNTS", Functions: []*catalog.Function{accountsFn()}})
	app.AddDSFile(&catalog.DSFile{Path: "Central", Name: "ORDERS", Functions: []*catalog.Function{ordersFn()}})

	billing := &catalog.Application{Name: "Billing"}
	billing.AddDSFile(&catalog.DSFile{Path: "Billing", Name: "INVOICES", Functions: []*catalog.Function{invoicesFn()}})
	billing.AddDSFile(&catalog.DSFile{Path: "Billing", Name: "RATES", Functions: []*catalog.Function{billingRatesFn()}})

	e := xqeval.New()
	e.RegisterRows("ld:Central/ACCOUNTS", "ACCOUNTS", d.accounts)
	e.RegisterSourceRows(SourceBilling, "ld:Billing/INVOICES", "INVOICES", d.invoices)
	e.RegisterSourceRows(SourceBilling, "ld:Billing/RATES", "RATES", billingRates)
	for nsKey, rows := range d.filesRows {
		// nsKey is "ld:<path>/<name>"; the local name is the last segment.
		local := nsKey[strings.LastIndexByte(nsKey, '/')+1:]
		e.RegisterSourceRows(SourceFiles, nsKey, local, rows)
	}

	spec := ordersSpec(len(d.orderShards), partial)
	for i, sh := range spec.Shards {
		e.RegisterSourceRows(sh.Source, sh.Namespace, sh.Local, d.orderShards[i])
	}
	e.RegisterPartitioned("ld:Central/ORDERS", "ORDERS", spec)

	return &FederatedFixture{
		App:    app,
		Engine: e,
		Extra: []NamedBackend{
			{Name: SourceBilling, Source: billing},
			{Name: SourceFiles, Source: d.filesApp},
		},
		Spec: spec,
	}
}

// OracleSetup builds the single-source oracle: one application holding
// every federated table, one engine serving identical rows — ORDERS as a
// plain function returning the shard concatenation. Federated execution
// is held byte-identical to this deployment.
func OracleSetup(sz FederatedSizes) (*catalog.Application, *xqeval.Engine) {
	d := generateFederated(sz)

	app := &catalog.Application{Name: FederatedAppName}
	app.AddDSFile(&catalog.DSFile{Path: "Central", Name: "ACCOUNTS", Functions: []*catalog.Function{accountsFn()}})
	app.AddDSFile(&catalog.DSFile{Path: "Central", Name: "ORDERS", Functions: []*catalog.Function{ordersFn()}})
	app.AddDSFile(&catalog.DSFile{Path: "Billing", Name: "INVOICES", Functions: []*catalog.Function{invoicesFn()}})
	for _, ds := range d.filesApp.DSFiles {
		app.AddDSFile(ds)
	}

	e := xqeval.New()
	e.RegisterRows("ld:Central/ACCOUNTS", "ACCOUNTS", d.accounts)
	e.RegisterRows("ld:Billing/INVOICES", "INVOICES", d.invoices)
	for nsKey, rows := range d.filesRows {
		local := nsKey[strings.LastIndexByte(nsKey, '/')+1:]
		e.RegisterRows(nsKey, local, rows)
	}
	var orders []*xdm.Element
	for _, shard := range d.orderShards {
		orders = append(orders, shard...)
	}
	e.RegisterRows("ld:Central/ORDERS", "ORDERS", orders)
	return app, e
}
