package demo

import (
	"testing"

	"repro/internal/xdm"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultSizes)
	b := Generate(DefaultSizes)
	if len(a.Customers) != len(b.Customers) || len(a.Payments) != len(b.Payments) {
		t.Fatal("sizes differ between runs")
	}
	for i := range a.Customers {
		if xdm.Marshal(a.Customers[i]) != xdm.Marshal(b.Customers[i]) {
			t.Fatalf("customer %d differs between runs", i)
		}
	}
	for i := range a.Payments {
		if xdm.Marshal(a.Payments[i]) != xdm.Marshal(b.Payments[i]) {
			t.Fatalf("payment %d differs between runs", i)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	d := Generate(Sizes{Customers: 40, PaymentsPerCustomer: 2, Orders: 80, ItemsPerOrder: 2})
	if len(d.Customers) != 40 {
		t.Fatalf("customers = %d", len(d.Customers))
	}
	if len(d.POCustomers) != 80 {
		t.Fatalf("orders = %d", len(d.POCustomers))
	}
	if len(d.Payments) == 0 || len(d.POItems) == 0 {
		t.Fatal("payments/items empty")
	}
	// NULL-bearing columns exist (the outer-join-interesting cases).
	nullCity := false
	for _, c := range d.Customers {
		if c.FirstChildElement("CITY") == nil {
			nullCity = true
		}
		if c.FirstChildElement("CUSTOMERID") == nil {
			t.Fatal("CUSTOMERID must never be NULL")
		}
	}
	if !nullCity {
		t.Fatal("expected some NULL cities")
	}
	// Some customers have no payments.
	paid := map[string]bool{}
	for _, p := range d.Payments {
		paid[p.FirstChildElement("CUSTID").StringValue()] = true
	}
	unpaid := 0
	for _, c := range d.Customers {
		if !paid[c.FirstChildElement("CUSTOMERID").StringValue()] {
			unpaid++
		}
	}
	if unpaid == 0 {
		t.Fatal("expected some customers without payments")
	}
	// Order foreign keys reference existing customers.
	ids := map[string]bool{}
	for _, c := range d.Customers {
		ids[c.FirstChildElement("CUSTOMERID").StringValue()] = true
	}
	for _, o := range d.POCustomers {
		if !ids[o.FirstChildElement("CUSTOMERID").StringValue()] {
			t.Fatal("dangling order foreign key")
		}
	}
}

func TestSetupServesAllTables(t *testing.T) {
	app, data, engine := Setup(Sizes{Customers: 5, PaymentsPerCustomer: 1, Orders: 5, ItemsPerOrder: 1})
	if app == nil || engine == nil {
		t.Fatal("nil setup")
	}
	for _, tc := range []struct {
		ns, fn string
		want   int
	}{
		{"ld:TestDataServices/CUSTOMERS", "CUSTOMERS", len(data.Customers)},
		{"ld:TestDataServices/PAYMENTS", "PAYMENTS", len(data.Payments)},
		{"ld:TestDataServices/PO_CUSTOMERS", "PO_CUSTOMERS", len(data.POCustomers)},
		{"ld:TestDataServices/PO_ITEMS", "PO_ITEMS", len(data.POItems)},
	} {
		out, err := engine.Call(tc.ns, tc.fn, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.fn, err)
		}
		if len(out) != tc.want {
			t.Fatalf("%s rows = %d, want %d", tc.fn, len(out), tc.want)
		}
	}
}

func TestGetCustomerById(t *testing.T) {
	_, data, engine := Setup(Sizes{Customers: 3, PaymentsPerCustomer: 1, Orders: 1, ItemsPerOrder: 1})
	want := data.Customers[1].FirstChildElement("CUSTOMERID").StringValue()
	out, err := engine.Call("ld:TestDataServices/CUSTOMERS", "getCustomerById",
		[]xdm.Sequence{xdm.SequenceOf(xdm.String(want))})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	if out[0].(*xdm.Element).FirstChildElement("CUSTOMERID").StringValue() != want {
		t.Fatal("wrong customer returned")
	}
	// Missing id returns no rows; wrong arity errors.
	out, err = engine.Call("ld:TestDataServices/CUSTOMERS", "getCustomerById",
		[]xdm.Sequence{xdm.SequenceOf(xdm.String("999999"))})
	if err != nil || len(out) != 0 {
		t.Fatalf("missing id: %v %v", out, err)
	}
	if _, err := engine.Call("ld:TestDataServices/CUSTOMERS", "getCustomerById", nil); err == nil {
		t.Fatal("wrong arity should error")
	}
}
