// Package demo generates the deterministic synthetic dataset behind the
// paper's example tables (CUSTOMERS, PAYMENTS, PO_CUSTOMERS, PO_ITEMS) and
// registers it with an XQuery engine as data service functions. It is the
// workload generator for tests, examples and the benchmark harness: row
// counts are parameterized so the §4 result-handling experiment can sweep
// data sizes.
//
// Generation is deterministic (a fixed linear congruential generator) so
// every run, test and benchmark sees identical data.
package demo

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// Sizes parameterizes the generated dataset.
type Sizes struct {
	Customers int
	// PaymentsPerCustomer is the average; actual counts vary 0..2×avg,
	// and roughly one in eight customers has no payments at all (the
	// outer-join-interesting case).
	PaymentsPerCustomer int
	Orders              int
	ItemsPerOrder       int
}

// DefaultSizes is the dataset used by examples and tests.
var DefaultSizes = Sizes{Customers: 50, PaymentsPerCustomer: 2, Orders: 120, ItemsPerOrder: 3}

// Dataset holds generated rows per table.
type Dataset struct {
	Customers   []*xdm.Element
	Payments    []*xdm.Element
	POCustomers []*xdm.Element
	POItems     []*xdm.Element
}

// rng is a small deterministic linear congruential generator; math/rand
// would work too, but a local LCG guarantees stability across Go versions.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 33
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var firstNames = []string{
	"Joe", "Sue", "Ann", "Bob", "Eve", "Max", "Ida", "Ned", "Ora", "Pat",
	"Quinn", "Rex", "Tess", "Uma", "Vic", "Wren", "Xena", "Yuri", "Zoe", "Al",
}

var companySuffixes = []string{
	"Widget Stores", "Supermart", "Distributors", "Parts and Service",
	"Logistics", "Holdings", "Trading Co", "Industries",
}

var cities = []string{
	"Springfield", "Riverton", "Lakeside", "Hillcrest", "Marble Falls",
	"Oak Grove", "Fairview", "", // empty → NULL city
}

var products = []string{
	"Widget", "Sprocket", "Gizmo", "Flange", "Gear", "Bracket", "Coupling",
}

var statuses = []string{"OPEN", "SHIPPED", "CLOSED", "HOLD"}

// Generate builds a dataset of the given sizes.
func Generate(sz Sizes) *Dataset {
	r := &rng{state: 20060705}
	d := &Dataset{}

	for i := 0; i < sz.Customers; i++ {
		id := 1000 + i
		row := xdm.NewElement("CUSTOMERS")
		row.AddChild(xdm.NewTextElement("CUSTOMERID", itoa(id)))
		name := fmt.Sprintf("%s %s", firstNames[r.intn(len(firstNames))], companySuffixes[r.intn(len(companySuffixes))])
		row.AddChild(xdm.NewTextElement("CUSTOMERNAME", name))
		if city := cities[r.intn(len(cities))]; city != "" {
			row.AddChild(xdm.NewTextElement("CITY", city))
		}
		if r.intn(10) != 0 { // one in ten has NULL signup date
			row.AddChild(xdm.NewTextElement("SIGNUPDATE",
				fmt.Sprintf("200%d-%02d-%02d", r.intn(6), 1+r.intn(12), 1+r.intn(28))))
		}
		d.Customers = append(d.Customers, row)
	}

	payID := 1
	for i := 0; i < sz.Customers; i++ {
		custID := 1000 + i
		if r.intn(8) == 0 {
			continue // customer with no payments
		}
		n := r.intn(2*sz.PaymentsPerCustomer + 1)
		for j := 0; j < n; j++ {
			row := xdm.NewElement("PAYMENTS")
			row.AddChild(xdm.NewTextElement("PAYMENTID", itoa(payID)))
			payID++
			row.AddChild(xdm.NewTextElement("CUSTID", itoa(custID)))
			cents := 500 + r.intn(100000)
			row.AddChild(xdm.NewTextElement("PAYMENT", fmt.Sprintf("%d.%02d", cents/100, cents%100)))
			row.AddChild(xdm.NewTextElement("PAYDATE",
				fmt.Sprintf("200%d-%02d-%02d", 3+r.intn(3), 1+r.intn(12), 1+r.intn(28))))
			d.Payments = append(d.Payments, row)
		}
	}

	for i := 0; i < sz.Orders; i++ {
		orderID := 5000 + i
		row := xdm.NewElement("PO_CUSTOMERS")
		row.AddChild(xdm.NewTextElement("ORDERID", itoa(orderID)))
		custID := 1000 + r.intn(maxInt(sz.Customers, 1))
		row.AddChild(xdm.NewTextElement("CUSTOMERID", itoa(custID)))
		row.AddChild(xdm.NewTextElement("ORDERDATE",
			fmt.Sprintf("200%d-%02d-%02d", 4+r.intn(2), 1+r.intn(12), 1+r.intn(28))))
		row.AddChild(xdm.NewTextElement("STATUS", statuses[r.intn(len(statuses))]))
		cents := 1000 + r.intn(500000)
		row.AddChild(xdm.NewTextElement("TOTAL", fmt.Sprintf("%d.%02d", cents/100, cents%100)))
		d.POCustomers = append(d.POCustomers, row)

		itemCount := 1 + r.intn(2*sz.ItemsPerOrder)
		for j := 0; j < itemCount; j++ {
			item := xdm.NewElement("PO_ITEMS")
			item.AddChild(xdm.NewTextElement("ITEMID", itoa(orderID*100+j)))
			item.AddChild(xdm.NewTextElement("ORDERID", itoa(orderID)))
			item.AddChild(xdm.NewTextElement("PRODUCT", products[r.intn(len(products))]))
			item.AddChild(xdm.NewTextElement("QUANTITY", itoa(1+r.intn(20))))
			cents := 100 + r.intn(20000)
			item.AddChild(xdm.NewTextElement("PRICE", fmt.Sprintf("%d.%02d", cents/100, cents%100)))
			d.POItems = append(d.POItems, item)
		}
	}
	return d
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewEngine builds an XQuery engine with the dataset registered under the
// demo application's namespaces, including the parameterized
// getCustomerById function (the stored-procedure example).
func NewEngine(d *Dataset) *xqeval.Engine {
	e := xqeval.New()
	e.RegisterRows("ld:TestDataServices/CUSTOMERS", "CUSTOMERS", d.Customers)
	e.RegisterRows("ld:TestDataServices/PAYMENTS", "PAYMENTS", d.Payments)
	e.RegisterRows("ld:TestDataServices/PO_CUSTOMERS", "PO_CUSTOMERS", d.POCustomers)
	e.RegisterRows("ld:TestDataServices/PO_ITEMS", "PO_ITEMS", d.POItems)

	customers := d.Customers
	e.Register("ld:TestDataServices/CUSTOMERS", "getCustomerById",
		func(args []xdm.Sequence) (xdm.Sequence, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("getCustomerById expects 1 argument, got %d", len(args))
			}
			if args[0].Empty() {
				return nil, nil
			}
			want := xdm.StringValue(args[0][0])
			var out xdm.Sequence
			for _, c := range customers {
				if el := c.FirstChildElement("CUSTOMERID"); el != nil && el.StringValue() == want {
					out = append(out, c)
				}
			}
			return out, nil
		})
	return e
}

// Setup is the one-call fixture: demo metadata, generated data, and an
// engine serving it.
func Setup(sz Sizes) (*catalog.Application, *Dataset, *xqeval.Engine) {
	app := catalog.Demo()
	data := Generate(sz)
	return app, data, NewEngine(data)
}
