package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/aqerr"
	"repro/internal/obsv"
	"repro/internal/wire"
)

// Handler exposes the server over HTTP. Every endpoint is a POST of one
// JSON request to one wire path; failures travel as a wire.Error body
// with a kind-derived status code. Each handler sits behind a panic
// recovery boundary (aqerr.Recover), so an injected srv/* panic — or a
// real engine bug — becomes a typed internal error on one request, not a
// dead server process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle(mux, wire.PathHandshake, s.handshake)
	handle(mux, wire.PathPrepare, s.prepare)
	handle(mux, wire.PathExecute, s.execute)
	handle(mux, wire.PathFetch, s.fetch)
	handle(mux, wire.PathCloseCursor, s.closeCursor)
	handle(mux, wire.PathCloseSession, func(ctx context.Context, req wire.CloseSessionRequest) (wire.CloseSessionResponse, error) {
		return wire.CloseSessionResponse{}, s.closeSession(ctx, req)
	})
	handle(mux, wire.PathExplain, s.explain)
	handle(mux, wire.PathCreateView, func(ctx context.Context, req wire.CreateViewRequest) (wire.CreateViewResponse, error) {
		return wire.CreateViewResponse{}, s.createView(ctx, req)
	})
	handle(mux, wire.PathMetaLookup, s.lookupMeta)
	handle(mux, wire.PathMetaTables, func(ctx context.Context, req wire.MetasRequest) (wire.MetasResponse, error) {
		if err := s.fault(ctx, "srv/meta"); err != nil {
			return wire.MetasResponse{}, aqerr.Wrap("metadata tables", err)
		}
		metas, err := s.b.Metadata().Tables()
		return wire.MetasResponse{Metas: metas}, aqerr.Wrap("metadata tables", err)
	})
	handle(mux, wire.PathMetaProcs, func(ctx context.Context, req wire.MetasRequest) (wire.MetasResponse, error) {
		if err := s.fault(ctx, "srv/meta"); err != nil {
			return wire.MetasResponse{}, aqerr.Wrap("metadata procedures", err)
		}
		metas, err := s.b.Metadata().Procedures()
		return wire.MetasResponse{Metas: metas}, aqerr.Wrap("metadata procedures", err)
	})
	handle(mux, wire.PathStats, func(ctx context.Context, req wire.StatsRequest) (wire.StatsResponse, error) {
		return wire.StatsResponse{Server: s.Stats(), Pipeline: obsv.Global.Snapshot()}, nil
	})
	return mux
}

// handle registers one JSON-over-POST endpoint with the shared decode /
// recover / encode discipline.
func handle[Req, Resp any](mux *http.ServeMux, path string, fn func(ctx context.Context, req Req) (Resp, error)) {
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeWireError(w, aqerr.Errorf(aqerr.KindPermanent, "decode", "malformed request: %v", err))
			return
		}
		// Honor the client's deadline budget on every verb: the request
		// context is clamped to the remaining budget, so server-side work
		// the caller has already given up on is cancelled, not completed.
		ctx := r.Context()
		if ms := r.Header.Get(wire.BudgetHeader); ms != "" {
			if n, perr := strconv.ParseInt(ms, 10, 64); perr == nil && n > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(n)*time.Millisecond)
				defer cancel()
			}
		}
		resp, err := func() (resp Resp, err error) {
			defer aqerr.Recover("serve "+path, &err)
			return fn(ctx, req)
		}()
		if err != nil {
			writeWireError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

// writeWireError encodes a typed failure as a wire.Error body. The HTTP
// status mirrors the kind so generic middleware can reason about it, but
// clients rebuild the typed error from the body's kind string.
func writeWireError(w http.ResponseWriter, err error) {
	we := wireError("serve", err)
	status := http.StatusBadRequest
	switch aqerr.ParseKind(we.Kind) {
	case aqerr.KindTransient:
		status = http.StatusBadGateway
	case aqerr.KindUnavailable:
		status = http.StatusServiceUnavailable
	case aqerr.KindTimeout:
		status = http.StatusGatewayTimeout
	case aqerr.KindResourceLimit:
		status = http.StatusInsufficientStorage
	case aqerr.KindInternal, aqerr.KindUnknown:
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: we})
}
