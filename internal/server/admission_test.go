package server

// White-box tests for the weighted admission semaphore: cost→weight
// conversion, queue overflow and timeout sheds (typed, with Retry-After),
// deadline-budget truncation of the queue wait, and the brownout ladder —
// heavy queries shed under pressure while weight-1 traffic always flows,
// and the level decays once pressure stops.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/aqerr"
)

// admissionConfig mirrors what server.New hands newAdmission after
// normalization: every field explicit, no zero-default surprises.
func admissionConfig() Config {
	return Config{
		MaxConcurrentQueries: 4,
		CostPerSlot:          1000,
		MaxQueryWeight:       4,
		AdmissionWait:        20 * time.Millisecond,
		AdmissionQueue:       2,
		BrownoutDecay:        50 * time.Millisecond,
	}
}

func TestWeightForConversion(t *testing.T) {
	a := newAdmission(admissionConfig())
	cases := []struct {
		cost, want int64
	}{
		{0, 1}, {1, 1}, {999, 1}, {1000, 1}, {1001, 2},
		{2500, 3}, {3001, 4},
		{1 << 40, 4}, // clamped at MaxQueryWeight
	}
	for _, c := range cases {
		if got := a.weightFor(c.cost); got != c.want {
			t.Errorf("weightFor(%d) = %d, want %d", c.cost, got, c.want)
		}
	}

	countOnly := admissionConfig()
	countOnly.CostPerSlot = -1
	a = newAdmission(countOnly)
	if got := a.weightFor(1 << 40); got != 1 {
		t.Errorf("count-only weightFor = %d, want 1", got)
	}
}

// shedKind asserts err is a typed unavailable with a positive Retry-After
// hint — the contract every shed must satisfy so clients can back off.
func shedKind(t *testing.T, err error, what string) *aqerr.QueryError {
	t.Helper()
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindUnavailable {
		t.Fatalf("%s: %v, want unavailable QueryError", what, err)
	}
	if aqerr.RetryAfterHint(err) <= 0 {
		t.Fatalf("%s: no Retry-After hint on %v", what, err)
	}
	return qe
}

func TestQueueFullShedsTyped(t *testing.T) {
	a := newAdmission(admissionConfig())
	ctx := context.Background()
	// Saturate capacity so later arrivals queue.
	if err := a.admit(ctx, 4, 0); err != nil {
		t.Fatal(err)
	}
	// Fill the queue with parked waiters.
	parked := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { parked <- a.admit(ctx, 1, 0) }()
	}
	waitForQueueDepth(t, a, 2)

	start := time.Now()
	err := a.admit(ctx, 1, 0)
	shedKind(t, err, "queue-full admit")
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("queue-full shed took %v, want immediate", d)
	}

	// The parked waiters shed on timeout, also typed.
	for i := 0; i < 2; i++ {
		shedKind(t, <-parked, "queue-timeout admit")
	}
	_, _, _, _, full, timeout, _, _ := a.snapshot()
	if full != 1 || timeout != 2 {
		t.Fatalf("shed counters full=%d timeout=%d, want 1/2", full, timeout)
	}
	a.release(4)
}

func waitForQueueDepth(t *testing.T, a *admission, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		a.mu.Lock()
		n := a.queue.Len()
		a.mu.Unlock()
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBudgetTruncatesWait pins deadline-budget propagation into the
// queue: a caller whose remaining budget is shorter than AdmissionWait
// waits only its budget, and the failure is its deadline (timeout kind,
// errors.Is DeadlineExceeded), not server capacity.
func TestBudgetTruncatesWait(t *testing.T) {
	cfg := admissionConfig()
	cfg.AdmissionWait = 5 * time.Second // queue wait alone would be slow
	a := newAdmission(cfg)
	if err := a.admit(context.Background(), 4, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.admit(context.Background(), 1, 10*time.Millisecond)
	elapsed := time.Since(start)
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindTimeout {
		t.Fatalf("budget-bounded admit: %v, want timeout QueryError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budget-bounded admit: %v, want errors.Is(DeadlineExceeded)", err)
	}
	if elapsed > time.Second {
		t.Fatalf("budget 10ms waited %v", elapsed)
	}
	a.release(4)
}

// TestBrownoutShedsHeavyKeepsCheap pins the degradation ladder: after a
// pressure event the heavy class sheds immediately with a typed error
// naming the level, weight-1 queries still admit, and a quiet decay
// interval restores full service.
func TestBrownoutShedsHeavyKeepsCheap(t *testing.T) {
	a := newAdmission(admissionConfig())
	a.mu.Lock()
	a.raisePressureLocked(time.Now())
	level := a.brownoutLevel
	a.mu.Unlock()
	if level != 1 {
		t.Fatalf("level after one pressure event = %d, want 1", level)
	}

	// Heavy (weight 3 > ceiling 2 at level 1) sheds instantly.
	start := time.Now()
	err := a.admit(context.Background(), 3, 0)
	shedKind(t, err, "brownout admit")
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("brownout shed took %v, want immediate", d)
	}

	// Weight-1 traffic is never brownout-shed.
	if err := a.admit(context.Background(), 1, 0); err != nil {
		t.Fatalf("weight-1 under brownout: %v", err)
	}
	a.release(1)

	_, _, _, _, _, _, brown, _ := a.snapshot()
	if brown != 1 {
		t.Fatalf("shedBrownout = %d, want 1", brown)
	}

	// After a full quiet decay interval the heavy class admits again.
	a.mu.Lock()
	a.lastPressure = time.Now().Add(-time.Second)
	a.mu.Unlock()
	if err := a.admit(context.Background(), 3, 0); err != nil {
		t.Fatalf("heavy after decay: %v", err)
	}
	a.release(3)
	_, _, _, _, _, _, _, lvl := a.snapshot()
	if lvl != 0 {
		t.Fatalf("level after decay = %d, want 0", lvl)
	}
}

// TestBrownoutCeilingFloor pins the ladder bottom: the level never rises
// past the point where the ceiling reaches weight 1 — below that there is
// nothing left to shed by cost.
func TestBrownoutCeilingFloor(t *testing.T) {
	a := newAdmission(admissionConfig()) // maxWeight 4 → maxLevel 2
	if a.maxLevel != 2 {
		t.Fatalf("maxLevel = %d, want 2", a.maxLevel)
	}
	now := time.Now()
	a.mu.Lock()
	for i := 0; i < 10; i++ {
		// Space the events out past decay/4 so each one escalates.
		a.raisePressureLocked(now.Add(time.Duration(i) * time.Hour))
	}
	level := a.brownoutLevel
	ceiling := a.ceilingLocked()
	a.mu.Unlock()
	if level != 2 || ceiling != 1 {
		t.Fatalf("saturated ladder: level=%d ceiling=%d, want 2/1", level, ceiling)
	}
}

// TestWeightedReleaseWakesQueue pins FIFO hand-off: releasing a heavy
// grant admits the parked waiters in order, and the weighted gauge
// returns to zero when everything releases.
func TestWeightedReleaseWakesQueue(t *testing.T) {
	a := newAdmission(admissionConfig())
	ctx := context.Background()
	if err := a.admit(ctx, 4, 0); err != nil {
		t.Fatal(err)
	}
	granted := make(chan int, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			if err := a.admit(ctx, 2, 0); err == nil {
				granted <- i
			} else {
				granted <- -1
			}
		}()
		waitForQueueDepth(t, a, i+1)
	}
	a.release(4) // both weight-2 waiters fit at once
	for i := 0; i < 2; i++ {
		if got := <-granted; got == -1 {
			t.Fatal("queued waiter shed instead of granted after release")
		}
	}
	a.release(2)
	a.release(2)
	inFlight, peak, _, _, _, _, _, _ := a.snapshot()
	if inFlight != 0 || peak != 4 {
		t.Fatalf("after full release: inFlight=%d peak=%d, want 0/4", inFlight, peak)
	}
}
