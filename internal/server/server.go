// Package server is the network front end of the platform: the AquaLogic
// DSP server process the paper's thin JDBC driver talks to. Everything the
// repo previously did in-process behind the facade — metadata lookups,
// SQL→XQuery compilation, streaming evaluation, §4 result decoding — is
// exposed here over an HTTP/JSON wire protocol (internal/wire) with
// per-session prepared-statement and cursor tables, connection/session
// limits, admission control, and idle-session reaping.
//
// The server is deliberately a thin shell over a Backend (the aqualogic
// Platform satisfies it): translation, planning, caching, resilience, and
// streaming all stay where they are. What the server adds is the
// multi-tenant discipline a wire boundary forces:
//
//   - Sessions. A handshake opens a session; prepared statements and open
//     cursors are per-session state, bounded by MaxSessions. Sessions idle
//     longer than SessionIdleTimeout are reaped — their cursors closed,
//     which cancels the underlying evaluations, so an abandoned client
//     cannot pin evaluator goroutines or buffered rows.
//   - Admission control. A concurrency semaphore bounds evaluations in
//     flight; executions beyond it wait briefly and are then rejected with
//     a typed unavailable error rather than queueing without bound.
//   - Backpressure. Rows leave the server only through fetch calls. The
//     evaluator's bounded-channel cursor (PR 5) blocks the producer once
//     its 64-row buffer fills, so a slow reader holds a query's whole
//     memory footprint to one channel's worth of rows — and a reader that
//     never returns is eventually reaped, which cancels the evaluation.
//
// Fault points named srv/* hook the request surface into the faultnet
// chaos layer, and every counter the server keeps (sessions, in-flight
// queries, admission rejections, cursors reaped) reports through obsv.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/faultnet"
	"repro/internal/obsv"
	"repro/internal/qcache"
	"repro/internal/qfront"
	"repro/internal/resultset"
	"repro/internal/translator"
	"repro/internal/wire"
	"repro/internal/xdm"
)

// Backend is the query-processing surface the server fronts. The
// aqualogic.Platform satisfies it; tests may substitute fakes.
type Backend interface {
	// CompileContext translates, checks, and plans a SELECT through the
	// shared compile cache.
	CompileContext(ctx context.Context, sql string, mode translator.ResultMode) (*qcache.CompiledQuery, error)
	// CompileDialect is CompileContext with an explicit query dialect:
	// the statement text is parsed by the dialect's registered front end.
	CompileDialect(ctx context.Context, dialect qfront.Dialect, text string, mode translator.ResultMode) (*qcache.CompiledQuery, error)
	// QueryStreamMode compiles (cached), binds parameters, and starts a
	// streaming evaluation.
	QueryStreamMode(ctx context.Context, mode translator.ResultMode, sql string, args ...any) (*resultset.Rows, error)
	// QueryDialect is QueryStreamMode with an explicit query dialect.
	QueryDialect(ctx context.Context, dialect qfront.Dialect, mode translator.ResultMode, text string, args ...any) (*resultset.Rows, error)
	// DefineView registers a logical data service (CREATE VIEW).
	DefineView(path, name, sql string) error
	// Metadata is the catalog source metadata endpoints serve from.
	Metadata() catalog.Source
}

// Config bounds one server instance. Zero fields take the defaults below.
type Config struct {
	// MaxSessions caps concurrently open sessions (default 4096).
	MaxSessions int
	// MaxConcurrentQueries sizes the admission semaphore: evaluations in
	// flight at once, across all sessions (default 256).
	MaxConcurrentQueries int
	// AdmissionWait is how long an execute waits for an admission slot
	// before being rejected with a typed unavailable error (default 50ms).
	// A client that sent a shorter deadline budget waits only that long.
	AdmissionWait time.Duration
	// CostPerSlot converts a compiled query's cost estimate (predicted
	// tuple visits) into admission slots: weight = 1 + (cost-1)/CostPerSlot,
	// so statements under one slot's worth of work weigh 1. Zero takes the
	// default (10000); negative disables cost weighting entirely — every
	// query weighs 1, the legacy count-only admission.
	CostPerSlot int64
	// MaxQueryWeight clamps one query's admission weight so a single
	// monster statement cannot starve the server (default
	// MaxConcurrentQueries/4, minimum 1).
	MaxQueryWeight int64
	// AdmissionQueue bounds how many executions may wait for admission at
	// once; arrivals beyond it shed immediately (default
	// 4×MaxConcurrentQueries).
	AdmissionQueue int
	// BrownoutDecay is how long the brownout level takes to step down one
	// notch after pressure (queue overflow / queue timeout) stops
	// (default 250ms).
	BrownoutDecay time.Duration
	// SessionIdleTimeout reaps sessions (and their cursors: the attached
	// evaluations are cancelled) that have not issued a request for this
	// long (default 60s; negative disables reaping).
	SessionIdleTimeout time.Duration
	// FetchRows is the per-fetch row chunk cap when the client does not
	// ask for a specific size (default 256).
	FetchRows int
	// QueryTimeout bounds each evaluation's lifetime from execute to last
	// fetch (0 = unbounded). A cursor still open at the deadline surfaces
	// a timeout-kind error on its next fetch.
	QueryTimeout time.Duration
	// Faults, when set, arms the srv/* fault points: every request site
	// misbehaves on the injector's deterministic schedule.
	Faults *faultnet.Injector
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 4096
	}
	if c.MaxConcurrentQueries == 0 {
		c.MaxConcurrentQueries = 256
	}
	if c.AdmissionWait == 0 {
		c.AdmissionWait = 50 * time.Millisecond
	}
	if c.SessionIdleTimeout == 0 {
		c.SessionIdleTimeout = 60 * time.Second
	}
	if c.FetchRows <= 0 {
		c.FetchRows = 256
	}
	if c.CostPerSlot == 0 {
		c.CostPerSlot = 10000
	}
	if c.MaxQueryWeight <= 0 {
		c.MaxQueryWeight = int64(c.MaxConcurrentQueries) / 4
		if c.MaxQueryWeight < 1 {
			c.MaxQueryWeight = 1
		}
	}
	if c.AdmissionQueue == 0 {
		c.AdmissionQueue = 4 * c.MaxConcurrentQueries
	}
	if c.BrownoutDecay == 0 {
		c.BrownoutDecay = 250 * time.Millisecond
	}
	return c
}

// Server owns the session table and the admission semaphore. Create with
// New, expose with Handler, shut down with Close.
type Server struct {
	b   Backend
	cfg Config

	baseCtx context.Context // parent of every evaluation; Close cancels it
	stop    context.CancelFunc

	adm *admission // cost-weighted admission slots + queue + brownout

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool

	nextSession atomic.Int64
	reaperDone  chan struct{}

	// Instance counters (the process-wide mirrors live in obsv.Global).
	sessionsOpened    atomic.Int64
	sessionsReaped    atomic.Int64
	cursorsOpened     atomic.Int64
	cursorsReaped     atomic.Int64
	cursorsOpen       atomic.Int64
	inFlight          atomic.Int64
	peakInFlight      atomic.Int64
	admissionRejected atomic.Int64
	execReplays       atomic.Int64
	fetchReplays      atomic.Int64
}

// New builds a server over a backend. The returned server is serving
// state immediately; wire it to HTTP with Handler.
func New(b Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		b:        b,
		cfg:      cfg,
		baseCtx:  ctx,
		stop:     cancel,
		adm:      newAdmission(cfg),
		sessions: make(map[string]*session),
	}
	if cfg.SessionIdleTimeout > 0 {
		s.reaperDone = make(chan struct{})
		go s.reapLoop()
	}
	return s
}

// Close shuts the server down: no new requests are accepted, every open
// session is closed (cancelling its in-flight evaluations), and the idle
// reaper exits. After Close returns no server-owned goroutine is running.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	open := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		open = append(open, ss)
	}
	s.sessions = map[string]*session{}
	s.mu.Unlock()

	for _, ss := range open {
		ss.close(false)
		obsv.Global.SessionsActive.Add(-1)
	}
	s.stop()
	if s.reaperDone != nil {
		<-s.reaperDone
	}
}

// Stats snapshots the instance counters.
func (s *Server) Stats() wire.ServerStats {
	s.mu.Lock()
	open := int64(len(s.sessions))
	s.mu.Unlock()
	wif, wpeak, qdepth, qpeak, shedFull, shedTimeout, shedBrownout, level := s.adm.snapshot()
	return wire.ServerStats{
		SessionsOpen:      open,
		SessionsOpened:    s.sessionsOpened.Load(),
		SessionsReaped:    s.sessionsReaped.Load(),
		CursorsOpen:       s.cursorsOpen.Load(),
		CursorsOpened:     s.cursorsOpened.Load(),
		CursorsReaped:     s.cursorsReaped.Load(),
		QueriesInFlight:   s.inFlight.Load(),
		PeakInFlight:      s.peakInFlight.Load(),
		AdmissionRejected: s.admissionRejected.Load(),

		WeightedInFlight: wif,
		WeightedCapacity: s.adm.capacity,
		WeightedPeak:     wpeak,
		QueueDepth:       qdepth,
		QueuePeak:        qpeak,
		ShedQueueFull:    shedFull,
		ShedQueueTimeout: shedTimeout,
		ShedBrownout:     shedBrownout,
		BrownoutLevel:    level,
		ExecReplays:      s.execReplays.Load(),
		FetchReplays:     s.fetchReplays.Load(),
	}
}

// reapLoop closes sessions idle past the configured timeout.
func (s *Server) reapLoop() {
	defer close(s.reaperDone)
	interval := s.cfg.SessionIdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.reapIdle(time.Now())
		}
	}
}

// reapIdle closes every session whose last request is older than the idle
// timeout. Reaping closes the session's cursors, which cancels their
// evaluations — the leak guard for abandoned clients.
func (s *Server) reapIdle(now time.Time) {
	cutoff := now.Add(-s.cfg.SessionIdleTimeout).UnixNano()
	s.mu.Lock()
	var idle []*session
	for id, ss := range s.sessions {
		if ss.lastUsed.Load() < cutoff {
			idle = append(idle, ss)
			delete(s.sessions, id)
		}
	}
	s.mu.Unlock()
	for _, ss := range idle {
		ss.close(true)
		s.sessionsReaped.Add(1)
		obsv.Global.SessionsReaped.Inc()
		obsv.Global.SessionsActive.Add(-1)
	}
}

// admit takes weight admission slots through the cost-aware semaphore,
// waiting at most AdmissionWait (or the client's remaining deadline
// budget, whichever is shorter). The typed unavailable error it returns
// on a shed — with its Retry-After hint — is the load signal clients
// back off on.
func (s *Server) admit(ctx context.Context, weight int64, budget time.Duration) error {
	if err := s.adm.admit(ctx, weight, budget); err != nil {
		s.admissionRejected.Add(1)
		obsv.Global.AdmissionRejected.Inc()
		return err
	}
	n := s.inFlight.Add(1)
	obsv.Global.QueriesInFlight.Add(1)
	obsv.Global.PeakQueriesInFlight.SetMax(n)
	for {
		p := s.peakInFlight.Load()
		if n <= p || s.peakInFlight.CompareAndSwap(p, n) {
			break
		}
	}
	return nil
}

// release returns a query's admission slots.
func (s *Server) release(weight int64) {
	s.adm.release(weight)
	s.inFlight.Add(-1)
	obsv.Global.QueriesInFlight.Add(-1)
}

// fault rolls the named srv/* fault point and realizes the scheduled
// fault, if any. Truncation has no meaning for unary request sites and is
// realized as its transient error; the fetch path handles it inline
// instead, where there are rows to truncate.
func (s *Server) fault(ctx context.Context, site string) error {
	if s.cfg.Faults == nil {
		return nil
	}
	k, ok := s.cfg.Faults.Roll(site)
	if !ok {
		return nil
	}
	return s.cfg.Faults.Perform(ctx, site, k)
}

// session is one wire client's server-side state.
type session struct {
	id  string
	srv *Server

	lastUsed atomic.Int64 // unix nanos of the last request

	mu      sync.Mutex
	stmts   map[int64]*prepared
	cursors map[int64]*cursor
	// execKeys maps an execute idempotency token to the cursor it opened:
	// a retried execute replays the cursor instead of re-evaluating.
	execKeys map[string]int64
	nextID   int64
	closed   bool
}

// prepared is one prepared-statement table entry. Only the statement
// text, dialect, and mode are pinned: each execution re-resolves the
// compiled artifact through the shared compile cache, so a catalog change
// (CREATE VIEW bumping the metadata generation) transparently recompiles
// instead of executing against a stale plan.
type prepared struct {
	sql     string
	dialect qfront.Dialect
	mode    translator.ResultMode
}

// cursor is one open server-side cursor: a streaming result set plus the
// admission slots its evaluation occupies.
type cursor struct {
	rows    *resultset.Rows
	cols    []wire.Column
	cancel  context.CancelFunc
	weight  int64  // admission slots held until release
	execKey string // idempotency token that opened this cursor, if any

	mu       sync.Mutex
	eof      bool
	failed   *wire.Error // sticky: re-reported on every later fetch
	released bool        // admission slots returned
	// Sequenced-fetch replay state: the last chunk produced and its
	// sequence number. A retried or hedged fetch re-presenting lastSeq
	// gets lastResp byte-identically instead of advancing the cursor.
	lastSeq  int64
	lastResp wire.FetchResponse
}

// handshake opens a session.
func (s *Server) handshake(ctx context.Context, req wire.HandshakeRequest) (wire.HandshakeResponse, error) {
	if err := s.fault(ctx, "srv/handshake"); err != nil {
		return wire.HandshakeResponse{}, aqerr.Wrap("handshake", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return wire.HandshakeResponse{}, aqerr.Errorf(aqerr.KindUnavailable, "handshake", "server is shut down")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.admissionRejected.Add(1)
		obsv.Global.AdmissionRejected.Inc()
		return wire.HandshakeResponse{}, aqerr.Errorf(aqerr.KindUnavailable, "handshake",
			"session limit reached (%d open)", s.cfg.MaxSessions)
	}
	id := fmt.Sprintf("s%06x", s.nextSession.Add(1))
	ss := &session{
		id:       id,
		srv:      s,
		stmts:    make(map[int64]*prepared),
		cursors:  make(map[int64]*cursor),
		execKeys: make(map[string]int64),
	}
	ss.lastUsed.Store(time.Now().UnixNano())
	s.sessions[id] = ss
	s.sessionsOpened.Add(1)
	obsv.Global.SessionsOpened.Inc()
	obsv.Global.SessionsActive.Add(1)
	return wire.HandshakeResponse{Session: id}, nil
}

// lookupSession resolves a session token, touching its idle clock. A
// token the server no longer knows — never issued, closed, or reaped —
// is an unavailable-kind error: the client must open a new session.
func (s *Server) lookupSession(id string) (*session, error) {
	s.mu.Lock()
	ss, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return nil, aqerr.Errorf(aqerr.KindUnavailable, "session", "unknown or expired session %q", id)
	}
	ss.lastUsed.Store(time.Now().UnixNano())
	return ss, nil
}

// closeSession ends a session explicitly.
func (s *Server) closeSession(ctx context.Context, req wire.CloseSessionRequest) error {
	if err := s.fault(ctx, "srv/session-close"); err != nil {
		return aqerr.Wrap("close session", err)
	}
	s.mu.Lock()
	ss, ok := s.sessions[req.Session]
	delete(s.sessions, req.Session)
	s.mu.Unlock()
	if !ok {
		return nil // idempotent
	}
	ss.close(false)
	obsv.Global.SessionsActive.Add(-1)
	return nil
}

// close tears a session down: every open cursor is closed, cancelling its
// evaluation and returning its admission slot. reaped marks the teardown
// as the idle reaper's (for the cursor-leak counters).
func (ss *session) close(reaped bool) {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	cursors := make([]*cursor, 0, len(ss.cursors))
	for _, c := range ss.cursors {
		cursors = append(cursors, c)
	}
	ss.cursors = map[int64]*cursor{}
	ss.stmts = map[int64]*prepared{}
	ss.execKeys = map[string]int64{}
	ss.mu.Unlock()
	for _, c := range cursors {
		c.closeCursor(ss.srv)
		if reaped {
			ss.srv.cursorsReaped.Add(1)
			obsv.Global.CursorsReaped.Inc()
		}
	}
}

// closeCursor releases one cursor exactly once: the streaming result set
// closes (cancelling the producer through the cursor plumbing), the
// evaluation context is cancelled, and the admission slot returns.
func (c *cursor) closeCursor(s *Server) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rows.Close()
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	c.releaseLocked(s)
	s.cursorsOpen.Add(-1)
}

// releaseLocked returns the admission slots once per cursor (EOF, error,
// or close — whichever happens first).
func (c *cursor) releaseLocked(s *Server) {
	if !c.released {
		c.released = true
		s.release(c.weight)
	}
}

// prepare compiles a statement into the session's prepared table.
func (s *Server) prepare(ctx context.Context, req wire.PrepareRequest) (wire.PrepareResponse, error) {
	ss, err := s.lookupSession(req.Session)
	if err != nil {
		return wire.PrepareResponse{}, err
	}
	if err := s.fault(ctx, "srv/prepare"); err != nil {
		return wire.PrepareResponse{}, aqerr.Wrap("prepare", err)
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		return wire.PrepareResponse{}, err
	}
	dialect, err := parseDialect(req.Dialect)
	if err != nil {
		return wire.PrepareResponse{}, err
	}
	cq, err := s.b.CompileDialect(ctx, dialect, req.SQL, mode)
	if err != nil {
		return wire.PrepareResponse{}, aqerr.Wrap("prepare", err)
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return wire.PrepareResponse{}, aqerr.Errorf(aqerr.KindUnavailable, "session", "session %q is closed", ss.id)
	}
	ss.nextID++
	id := ss.nextID
	ss.stmts[id] = &prepared{sql: req.SQL, dialect: dialect, mode: mode}
	return wire.PrepareResponse{
		Stmt:       id,
		Columns:    wireColumns(resultColumns(cq)),
		ParamCount: cq.Res.ParamCount,
	}, nil
}

// execute starts an evaluation — of a prepared statement or of ad-hoc SQL
// — under cost-aware admission control, and registers the resulting
// cursor. A request re-presenting an idempotency key the session has
// already executed replays the original cursor instead of evaluating
// again: a response lost on the wire costs the retrying client nothing
// and never duplicates work.
func (s *Server) execute(ctx context.Context, req wire.ExecuteRequest) (wire.ExecuteResponse, error) {
	ss, err := s.lookupSession(req.Session)
	if err != nil {
		return wire.ExecuteResponse{}, err
	}
	if err := s.fault(ctx, "srv/execute"); err != nil {
		return wire.ExecuteResponse{}, aqerr.Wrap("execute", err)
	}

	if req.ExecKey != "" {
		ss.mu.Lock()
		if id, ok := ss.execKeys[req.ExecKey]; ok {
			cur := ss.cursors[id]
			ss.mu.Unlock()
			if cur != nil {
				s.execReplays.Add(1)
				obsv.Global.ExecReplays.Inc()
				return wire.ExecuteResponse{Cursor: id, Columns: cur.cols}, nil
			}
			// The cursor this key opened is already closed: the original
			// response was evidently acted on, so a late retry is a
			// protocol-level duplicate, not a lost response.
			return wire.ExecuteResponse{}, aqerr.Errorf(aqerr.KindPermanent, "execute",
				"idempotency key %q refers to a closed cursor", req.ExecKey)
		}
		ss.mu.Unlock()
	}

	sqlText, dialect, mode := req.SQL, qfront.DialectSQL, translator.ModeText
	if req.Stmt != 0 {
		ss.mu.Lock()
		st, ok := ss.stmts[req.Stmt]
		ss.mu.Unlock()
		if !ok {
			return wire.ExecuteResponse{}, aqerr.Errorf(aqerr.KindPermanent, "execute",
				"unknown prepared statement %d", req.Stmt)
		}
		sqlText, dialect, mode = st.sql, st.dialect, st.mode
	} else {
		if mode, err = parseMode(req.Mode); err != nil {
			return wire.ExecuteResponse{}, err
		}
		if dialect, err = parseDialect(req.Dialect); err != nil {
			return wire.ExecuteResponse{}, err
		}
	}

	args := make([]any, len(req.Args))
	for i, a := range req.Args {
		if a == nil {
			return wire.ExecuteResponse{}, aqerr.Errorf(aqerr.KindPermanent, "execute",
				"parameter %d: NULL parameters are not supported", i+1)
		}
		v, err := xdm.ParseAtomic(a.V, xdm.AtomicType(a.T))
		if err != nil {
			return wire.ExecuteResponse{}, aqerr.Errorf(aqerr.KindPermanent, "execute", "parameter %d: %v", i+1, err)
		}
		args[i] = v
	}

	// Score the statement through the compile cache (hot for anything seen
	// before) so admission weighs predicted cost. Statements that fail to
	// compile score the minimum weight and fail below, in evaluation,
	// where the error has always surfaced.
	weight := int64(1)
	if cq, cerr := s.b.CompileDialect(ctx, dialect, sqlText, mode); cerr == nil {
		weight = s.adm.weightFor(cq.Cost())
	}
	budget := time.Duration(req.BudgetMS) * time.Millisecond
	if err := s.admit(ctx, weight, budget); err != nil {
		return wire.ExecuteResponse{}, err
	}
	// The evaluation outlives this request: it is parented on the server's
	// base context (not the HTTP request's), bounded by QueryTimeout —
	// clamped to the client's remaining deadline budget, so work the
	// caller has already abandoned is never evaluated — and cancelled by
	// cursor close or session reaping.
	timeout := s.cfg.QueryTimeout
	if budget > 0 && (timeout <= 0 || budget < timeout) {
		timeout = budget
	}
	evalCtx, cancel := context.WithCancel(s.baseCtx)
	if timeout > 0 {
		evalCtx, cancel = context.WithTimeout(s.baseCtx, timeout)
	}
	rows, err := s.b.QueryDialect(evalCtx, dialect, mode, sqlText, args...)
	if err != nil {
		cancel()
		s.release(weight)
		return wire.ExecuteResponse{}, aqerr.Wrap("execute", err)
	}
	cols := wireColumns(rows.Columns())
	cur := &cursor{rows: rows, cols: cols, cancel: cancel, weight: weight, execKey: req.ExecKey}

	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		cur.closeCursor(s)
		s.cursorsOpen.Add(1) // closeCursor decremented a cursor never counted open
		return wire.ExecuteResponse{}, aqerr.Errorf(aqerr.KindUnavailable, "session", "session %q is closed", ss.id)
	}
	ss.nextID++
	id := ss.nextID
	ss.cursors[id] = cur
	if req.ExecKey != "" {
		ss.execKeys[req.ExecKey] = id
	}
	ss.mu.Unlock()

	s.cursorsOpened.Add(1)
	s.cursorsOpen.Add(1)
	obsv.Global.CursorsOpened.Inc()
	return wire.ExecuteResponse{Cursor: id, Columns: cols}, nil
}

// fetch pulls the next chunk of rows from a cursor. EOF and errors are
// sticky: fetching past the end re-reports them instead of failing the
// session. A truncation fault injected at this site returns the chunk's
// prefix together with the transient error — partial data never travels
// silently.
func (s *Server) fetch(ctx context.Context, req wire.FetchRequest) (wire.FetchResponse, error) {
	ss, err := s.lookupSession(req.Session)
	if err != nil {
		return wire.FetchResponse{}, err
	}
	ss.mu.Lock()
	cur, ok := ss.cursors[req.Cursor]
	ss.mu.Unlock()
	if !ok {
		return wire.FetchResponse{}, aqerr.Errorf(aqerr.KindPermanent, "fetch", "unknown cursor %d", req.Cursor)
	}

	var truncate bool
	if s.cfg.Faults != nil {
		if k, fired := s.cfg.Faults.Roll("srv/fetch"); fired {
			if k == faultnet.KindTruncate {
				truncate = true
			} else if err := s.cfg.Faults.Perform(ctx, "srv/fetch", k); err != nil {
				return wire.FetchResponse{}, aqerr.Wrap("fetch", err)
			}
		}
	}

	limit := req.MaxRows
	if limit <= 0 || limit > s.cfg.FetchRows {
		limit = s.cfg.FetchRows
	}

	cur.mu.Lock()
	defer cur.mu.Unlock()
	if req.Seq != 0 {
		// Sequenced fetch: replay the cached chunk for the current number,
		// advance for the next, reject anything else. This is what makes
		// fetch idempotent — a retried or hedged duplicate of chunk n gets
		// the same bytes, never a skipped or doubled chunk.
		switch {
		case req.Seq == cur.lastSeq:
			s.fetchReplays.Add(1)
			obsv.Global.FetchReplays.Inc()
			return cur.lastResp, nil
		case req.Seq != cur.lastSeq+1:
			return wire.FetchResponse{}, aqerr.Errorf(aqerr.KindPermanent, "fetch",
				"fetch sequence %d out of order (expected %d or %d)", req.Seq, cur.lastSeq, cur.lastSeq+1)
		}
	}
	finish := func(resp wire.FetchResponse) (wire.FetchResponse, error) {
		if req.Seq != 0 {
			cur.lastSeq = req.Seq
			cur.lastResp = resp
		}
		return resp, nil
	}
	if cur.failed != nil {
		return finish(wire.FetchResponse{Error: cur.failed})
	}
	if cur.eof {
		return finish(wire.FetchResponse{EOF: true})
	}
	resp := wire.FetchResponse{}
	for len(resp.Rows) < limit {
		if !cur.rows.Next() {
			if rerr := cur.rows.Err(); rerr != nil {
				cur.failed = wireError("fetch", rerr)
				resp.Error = cur.failed
			} else {
				cur.eof = true
				resp.EOF = true
			}
			cur.releaseLocked(s) // evaluation finished; free the slot early
			break
		}
		row := make([]*wire.Atom, len(cur.cols))
		for i := range cur.cols {
			v, verr := cur.rows.Value(i)
			if verr != nil {
				cur.failed = wireError("fetch", verr)
				resp.Error = cur.failed
				cur.releaseLocked(s)
				return finish(resp)
			}
			if v != nil {
				row[i] = &wire.Atom{T: int(v.Type()), V: v.Lexical()}
			}
		}
		resp.Rows = append(resp.Rows, row)
	}
	if truncate {
		// A connection dropped mid-chunk: the prefix travels with the
		// transient error, exactly like faultnet's data-surface truncation.
		// The replay cache keeps the intact chunk — the damage is to this
		// transmission, not the cursor, so a sequenced retry recovers the
		// full chunk instead of replaying the fault.
		if req.Seq != 0 {
			cur.lastSeq = req.Seq
			cur.lastResp = resp
		}
		resp.Rows = resp.Rows[:len(resp.Rows)/2]
		resp.EOF = false
		ferr := &faultnet.Error{Site: "srv/fetch", Kind: faultnet.KindTruncate}
		resp.Error = wireError("fetch", aqerr.Wrap("fetch", ferr))
		return resp, nil
	}
	return finish(resp)
}

// closeCursor releases one cursor. Closing an unknown (or already closed)
// cursor is a successful no-op, so double close is safe on a retrying
// transport.
func (s *Server) closeCursor(ctx context.Context, req wire.CloseCursorRequest) (wire.CloseCursorResponse, error) {
	ss, err := s.lookupSession(req.Session)
	if err != nil {
		return wire.CloseCursorResponse{}, err
	}
	if err := s.fault(ctx, "srv/cursor-close"); err != nil {
		return wire.CloseCursorResponse{}, aqerr.Wrap("close cursor", err)
	}
	ss.mu.Lock()
	cur, ok := ss.cursors[req.Cursor]
	delete(ss.cursors, req.Cursor)
	if ok && cur.execKey != "" {
		delete(ss.execKeys, cur.execKey)
	}
	ss.mu.Unlock()
	if !ok {
		return wire.CloseCursorResponse{Closed: false}, nil
	}
	cur.closeCursor(s)
	return wire.CloseCursorResponse{Closed: true}, nil
}

// explain compiles a statement and renders its plan, streaming
// decomposition, and generated XQuery.
func (s *Server) explain(ctx context.Context, req wire.ExplainRequest) (wire.ExplainResponse, error) {
	if _, err := s.lookupSession(req.Session); err != nil {
		return wire.ExplainResponse{}, err
	}
	if err := s.fault(ctx, "srv/explain"); err != nil {
		return wire.ExplainResponse{}, aqerr.Wrap("explain", err)
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		return wire.ExplainResponse{}, err
	}
	dialect, err := parseDialect(req.Dialect)
	if err != nil {
		return wire.ExplainResponse{}, err
	}
	cq, err := s.b.CompileDialect(ctx, dialect, req.SQL, mode)
	if err != nil {
		return wire.ExplainResponse{}, aqerr.Wrap("explain", err)
	}
	text := "-- dialect: " + string(cq.Dialect) + "\n-- plan:\n"
	for _, line := range cq.Plan.Describe() {
		text += "--   " + line + "\n"
	}
	text += "-- streaming: " + cq.Plan.Stream.Describe() + "\n" + cq.XQuery()
	return wire.ExplainResponse{Text: text}, nil
}

// createView registers a logical data service through the backend.
func (s *Server) createView(ctx context.Context, req wire.CreateViewRequest) error {
	if _, err := s.lookupSession(req.Session); err != nil {
		return err
	}
	if err := s.fault(ctx, "srv/view"); err != nil {
		return aqerr.Wrap("create view", err)
	}
	return s.b.DefineView(req.Path, req.Name, req.SQL)
}

// lookupMeta serves one metadata lookup, encoding the typed catalog
// failures so the client can reconstruct them.
func (s *Server) lookupMeta(ctx context.Context, req wire.LookupRequest) (wire.LookupResponse, error) {
	if err := s.fault(ctx, "srv/meta"); err != nil {
		return wire.LookupResponse{}, aqerr.Wrap("metadata lookup", err)
	}
	ref := catalog.TableRef{Catalog: req.Catalog, Schema: req.Schema, Table: req.Table}
	meta, err := catalog.LookupContext(ctx, s.b.Metadata(), ref)
	if err != nil {
		var nf *catalog.NotFoundError
		if errors.As(err, &nf) {
			return wire.LookupResponse{NotFound: true}, nil
		}
		var amb *catalog.AmbiguousError
		if errors.As(err, &amb) {
			return wire.LookupResponse{Ambiguous: amb.Schemas}, nil
		}
		return wire.LookupResponse{}, aqerr.Wrap("metadata lookup", err)
	}
	return wire.LookupResponse{Meta: meta}, nil
}

// parseDialect decodes the wire dialect name ("" defaults to SQL-92, so
// pre-dialect clients interoperate unchanged). Unknown names are a typed
// permanent error: retrying cannot help.
func parseDialect(name string) (qfront.Dialect, error) {
	fe, err := qfront.Lookup(qfront.Dialect(name))
	if err != nil {
		return "", aqerr.Errorf(aqerr.KindPermanent, "prepare", "%v", err)
	}
	return fe.Dialect(), nil
}

// parseMode decodes the wire result-mode name ("" defaults to text, the
// driver's default).
func parseMode(mode string) (translator.ResultMode, error) {
	switch mode {
	case "", "text":
		return translator.ModeText, nil
	case "xml":
		return translator.ModeXML, nil
	default:
		return 0, aqerr.Errorf(aqerr.KindPermanent, "prepare", "unknown result mode %q", mode)
	}
}

// resultColumns projects a compiled query's result schema.
func resultColumns(cq *qcache.CompiledQuery) []resultset.Column {
	cols := make([]resultset.Column, len(cq.Res.Columns))
	for i, c := range cq.Res.Columns {
		cols[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName,
			Type: c.Type, Nullable: c.Nullable, Precision: c.Precision, Scale: c.Scale}
	}
	return cols
}

// wireColumns encodes a result schema for transit.
func wireColumns(cols []resultset.Column) []wire.Column {
	out := make([]wire.Column, len(cols))
	for i, c := range cols {
		out[i] = wire.Column{Label: c.Label, ElementName: c.ElementName,
			Type: int(c.Type), Nullable: c.Nullable, Precision: c.Precision, Scale: c.Scale}
	}
	return out
}

// wireError flattens an error for transit, classifying unclassified ones
// on the way (so every wire error carries a kind). Retry-After hints on
// shed errors travel with it.
func wireError(op string, err error) *wire.Error {
	err = aqerr.Wrap(op, err)
	var qe *aqerr.QueryError
	if errors.As(err, &qe) {
		msg := ""
		if qe.Err != nil {
			msg = qe.Err.Error()
		}
		return &wire.Error{Kind: qe.Kind.String(), Op: qe.Op, Msg: msg,
			RetryAfterMS: int64(aqerr.RetryAfterHint(err) / time.Millisecond)}
	}
	return &wire.Error{Kind: aqerr.KindUnknown.String(), Op: op, Msg: err.Error()}
}
