package server

import (
	"container/list"
	"context"
	"sync"
	"time"

	"repro/internal/aqerr"
	"repro/internal/obsv"
)

// admission.go replaces the count-only admission semaphore with a
// cost-aware weighted one. Every execute is scored before it runs: the
// compiled artifact's cost estimate (qcache.CompiledQuery.Cost, cache-hot)
// divides by CostPerSlot into a slot weight, so a point lookup weighs 1
// and a large scan-join weighs many. The semaphore's capacity is
// MaxConcurrentQueries slots — the count-only behavior is the special
// case where every query weighs 1.
//
// Three layers of degradation, in order of onset:
//
//  1. Weighted admission — cheap queries keep flowing while an expensive
//     scan holds most of the capacity; an arriving query that does not fit
//     waits in a bounded FIFO queue.
//  2. Deadline-aware queue timeout — a waiter is shed (typed unavailable,
//     Retry-After hint) after AdmissionWait, or sooner when the client's
//     remaining deadline budget is shorter: work that cannot finish inside
//     the caller's deadline is never admitted.
//  3. Brownout — queue overflow and queue timeouts raise a pressure level
//     that halves the admissible weight ceiling per step. Under sustained
//     overload the server progressively refuses the most expensive
//     queries up front (predicted cost, fail-fast, Retry-After = remaining
//     brownout) while weight-1 traffic is never brownout-shed. The level
//     decays one step per BrownoutDecay once pressure events stop.

// admission is the weighted semaphore plus its queue and brownout state.
type admission struct {
	capacity    int64
	costPerSlot int64
	maxWeight   int64
	queueLimit  int
	wait        time.Duration
	decay       time.Duration

	mu       sync.Mutex
	inFlight int64      // weighted slots held
	queue    *list.List // FIFO of *waiter
	peak     int64
	queuePeak int64

	brownoutLevel int
	maxLevel      int
	lastPressure  time.Time

	shedQueueFull    int64
	shedQueueTimeout int64
	shedBrownout     int64
	brownoutEngaged  int64
}

type waiter struct {
	weight int64
	ready  chan struct{} // closed under admission.mu when granted
}

func newAdmission(cfg Config) *admission {
	a := &admission{
		capacity:    int64(cfg.MaxConcurrentQueries),
		costPerSlot: cfg.CostPerSlot,
		maxWeight:   cfg.MaxQueryWeight,
		queueLimit:  cfg.AdmissionQueue,
		wait:        cfg.AdmissionWait,
		decay:       cfg.BrownoutDecay,
		queue:       list.New(),
	}
	// Brownout bottoms out where the ceiling reaches weight 1: below that
	// there is nothing left to shed by cost.
	for w := a.maxWeight; w > 1; w >>= 1 {
		a.maxLevel++
	}
	return a
}

// weightFor converts a compiled cost estimate into admission slots:
// 1 + (cost-1)/CostPerSlot, clamped to MaxQueryWeight. Cost weighting
// disabled (CostPerSlot < 0) pins every query at weight 1 — the legacy
// count-only behavior.
func (a *admission) weightFor(cost int64) int64 {
	if a.costPerSlot < 0 || cost <= 1 {
		return 1
	}
	w := 1 + (cost-1)/a.costPerSlot
	if w > a.maxWeight {
		w = a.maxWeight
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shedErr builds the typed unavailable a shed query fails fast with.
func shedErr(format string, retryAfter time.Duration, args ...any) error {
	qe := aqerr.Errorf(aqerr.KindUnavailable, "admit", format, args...)
	qe.RetryAfter = retryAfter
	return qe
}

// admit blocks until weight slots are granted, the wait times out, or ctx
// ends. budget is the client's remaining deadline (0 = none): the queue
// wait never exceeds it, so a request that would be admitted only after
// its caller gave up is shed instead.
func (a *admission) admit(ctx context.Context, weight int64, budget time.Duration) error {
	now := time.Now()
	a.mu.Lock()
	a.decayLocked(now)
	if a.brownoutLevel > 0 && weight > a.ceilingLocked() {
		a.shedBrownout++
		retry := a.decay - now.Sub(a.lastPressure)
		if retry < time.Millisecond {
			retry = time.Millisecond
		}
		level := a.brownoutLevel
		a.mu.Unlock()
		obsv.Global.ShedBrownout.Inc()
		return shedErr("brownout level %d: predicted cost too high (weight %d > ceiling %d)",
			retry, level, weight, a.ceiling(level))
	}
	if a.queue.Len() == 0 && a.inFlight+weight <= a.capacity {
		a.grantDirectLocked(weight)
		a.mu.Unlock()
		return nil
	}
	if a.queue.Len() >= a.queueLimit {
		a.shedQueueFull++
		a.raisePressureLocked(now)
		a.mu.Unlock()
		obsv.Global.ShedQueueFull.Inc()
		return shedErr("admission queue full (%d waiting)", a.wait, a.queueLimit)
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	el := a.queue.PushBack(w)
	if d := int64(a.queue.Len()); d > a.queuePeak {
		a.queuePeak = d
	}
	obsv.Global.AdmissionQueueDepth.Add(1)
	obsv.Global.AdmissionQueuePeak.SetMax(int64(a.queue.Len()))
	a.mu.Unlock()

	wait := a.wait
	deadlineShed := false
	if budget > 0 && budget < wait {
		wait = budget
		deadlineShed = true
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-w.ready:
		obsv.Global.AdmissionQueueDepth.Add(-1)
		return nil
	case <-t.C:
		if !a.abandonWaiter(el, w, true) {
			return nil // granted while the timer fired
		}
		obsv.Global.ShedQueueTimeout.Inc()
		if deadlineShed {
			// The client's budget ran out first: its deadline is the real
			// failure, not server capacity.
			return aqerr.Wrap("admit", context.DeadlineExceeded)
		}
		return shedErr("admission timed out after %v (server saturated)", a.wait, wait)
	case <-ctx.Done():
		if !a.abandonWaiter(el, w, false) {
			return nil
		}
		return aqerr.Wrap("admit", ctx.Err())
	}
}

// abandonWaiter removes a timed-out or cancelled waiter from the queue.
// Returns false when the grant won the race — the caller holds its slots
// and must proceed. pressure marks the abandonment as an overload signal
// (queue timeout) rather than a caller cancellation.
func (a *admission) abandonWaiter(el *list.Element, w *waiter, pressure bool) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	obsv.Global.AdmissionQueueDepth.Add(-1)
	select {
	case <-w.ready:
		return false
	default:
	}
	a.queue.Remove(el)
	if pressure {
		a.shedQueueTimeout++
		a.raisePressureLocked(time.Now())
	}
	// Removing a heavy queue head may unblock lighter successors.
	a.grantQueueLocked()
	return true
}

// grantDirectLocked books weight slots for an immediately admitted query.
func (a *admission) grantDirectLocked(weight int64) {
	a.inFlight += weight
	if a.inFlight > a.peak {
		a.peak = a.inFlight
	}
	obsv.Global.WeightedInFlight.Add(weight)
	obsv.Global.WeightedPeak.SetMax(a.inFlight)
}

// grantQueueLocked admits queued waiters FIFO while they fit.
func (a *admission) grantQueueLocked() {
	for a.queue.Len() > 0 {
		front := a.queue.Front()
		w := front.Value.(*waiter)
		if a.inFlight+w.weight > a.capacity {
			return
		}
		a.queue.Remove(front)
		a.grantDirectLocked(w.weight)
		close(w.ready)
	}
}

// release returns weight slots and wakes whatever now fits.
func (a *admission) release(weight int64) {
	a.mu.Lock()
	a.inFlight -= weight
	obsv.Global.WeightedInFlight.Add(-weight)
	a.grantQueueLocked()
	a.mu.Unlock()
}

// ceilingLocked is the maximum admissible weight at the current brownout
// level; weight-1 queries always pass.
func (a *admission) ceilingLocked() int64 { return a.ceiling(a.brownoutLevel) }

func (a *admission) ceiling(level int) int64 {
	c := a.maxWeight >> level
	if c < 1 {
		c = 1
	}
	return c
}

// raisePressureLocked records one overload event (queue overflow or queue
// timeout): the brownout level steps up, at most once per decay interval
// so a single burst of timeouts counts as one escalation, not fifty.
func (a *admission) raisePressureLocked(now time.Time) {
	if !a.lastPressure.IsZero() && now.Sub(a.lastPressure) < a.decay/4 && a.brownoutLevel > 0 {
		a.lastPressure = now
		return
	}
	if a.brownoutLevel < a.maxLevel {
		a.brownoutLevel++
		a.brownoutEngaged++
		obsv.Global.BrownoutEngaged.Inc()
		obsv.Global.BrownoutLevel.Set(int64(a.brownoutLevel))
	}
	a.lastPressure = now
}

// decayLocked steps the brownout level down once per quiet decay interval.
func (a *admission) decayLocked(now time.Time) {
	if a.brownoutLevel == 0 || a.decay <= 0 {
		return
	}
	for a.brownoutLevel > 0 && now.Sub(a.lastPressure) >= a.decay {
		a.brownoutLevel--
		a.lastPressure = a.lastPressure.Add(a.decay)
	}
	if a.brownoutLevel == 0 {
		a.lastPressure = time.Time{}
	}
	obsv.Global.BrownoutLevel.Set(int64(a.brownoutLevel))
}

// snapshot reads the gauges for Stats.
func (a *admission) snapshot() (inFlight, peak, queueDepth, queuePeak, shedFull, shedTimeout, shedBrownout int64, level int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.decayLocked(time.Now())
	return a.inFlight, a.peak, int64(a.queue.Len()), a.queuePeak,
		a.shedQueueFull, a.shedQueueTimeout, a.shedBrownout, int64(a.brownoutLevel)
}
