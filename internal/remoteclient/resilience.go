package remoteclient

import (
	"context"
	"time"

	"repro/internal/aqerr"
	"repro/internal/obsv"
	"repro/internal/resilient"
)

// Options tunes the client-side resilience net every Client carries.
// Zero fields take the defaults below; Dial and Loopback use all
// defaults, DialOptions and LoopbackOptions take explicit knobs.
//
// Retries apply only to idempotent verbs. The catalog and stats verbs
// are read-only; execute is idempotent because every request carries an
// exec key the server replays the same cursor for; fetch is idempotent
// because every chunk carries a sequence number the server replays
// byte-identically. CREATE VIEW is the one non-idempotent verb and is
// never retried.
type Options struct {
	// MaxRetries is the number of re-attempts after the first failure of
	// an idempotent verb (default 3; negative disables retries).
	MaxRetries int
	// BaseBackoff is the first retry's backoff; attempt n waits
	// ~BaseBackoff·2ⁿ⁻¹ with deterministic jitter. A server Retry-After
	// hint overrides the schedule for that attempt (default 2ms).
	BaseBackoff time.Duration
	// BreakerThreshold is the consecutive transport-fault count that
	// opens this client's per-server circuit breaker (default 5;
	// negative disables it). Only failures with no server verdict —
	// refused connections, resets, damaged response bodies — count;
	// any typed server reply, including a shed, proves the server alive
	// and closes the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the open breaker waits before letting
	// a half-open probe through (default 100ms).
	BreakerCooldown time.Duration
	// HedgeDelay arms hedged fetches: when a fetch chunk has not
	// answered after this long, a duplicate request (same sequence
	// number, so the server replays rather than advances) races it and
	// the first answer wins. Zero disables hedging (the default): it
	// trades duplicate server work for tail latency, which is not a
	// trade to make silently.
	HedgeDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 2 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 100 * time.Millisecond
	}
	return o
}

// retryable reports whether an idempotent verb should re-attempt after
// err: transport-level transient failures, and typed sheds carrying a
// Retry-After hint (the server explicitly invited the retry). Unhinted
// unavailables (open breaker, session gone) are not retried in place —
// per the aqerr contract they are retriable only from scratch.
func retryable(err error) bool {
	return aqerr.Transient(err) || aqerr.RetryAfterHint(err) > 0
}

// breakerFault filters one verb outcome for the per-server breaker.
// Only transient-kind failures — the classification post gives every
// exchange that died without a server verdict — count as faults. Any
// other outcome (success, typed shed, permanent error, caller
// cancellation) proves nothing is wrong with the path to the server and
// resets the consecutive-fault count.
func breakerFault(err error) error {
	if err == nil || !aqerr.Transient(err) {
		return nil
	}
	return err
}

// postRetry is the resilient form of Client.post: breaker gate, then up
// to 1+MaxRetries attempts for idempotent verbs, backing off between
// attempts (honoring a server Retry-After hint over the local
// schedule). Each attempt decodes into a fresh response value so a
// half-decoded failure never pollutes the retry's result.
func postRetry[Resp any](ctx context.Context, c *Client, op, path string, in any, idempotent bool) (Resp, error) {
	var zero Resp
	if err := c.br.Allow(); err != nil {
		return zero, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			obsv.Global.RemoteRetries.Inc()
			delay := aqerr.RetryAfterHint(lastErr)
			if delay <= 0 {
				delay = resilient.Backoff(c.opts.BaseBackoff, attempt, op+" "+c.base)
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return zero, aqerr.Wrap(op, err)
			}
		}
		var resp Resp
		err := c.post(ctx, op, path, in, &resp)
		c.br.Record(breakerFault(err))
		if err == nil {
			if attempt > 0 {
				obsv.Global.RemoteRetrySuccesses.Inc()
			}
			return resp, nil
		}
		lastErr = err
		if !idempotent || attempt >= c.opts.MaxRetries || !retryable(err) || ctx.Err() != nil {
			return zero, err
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BreakerState reports the client's per-server circuit breaker position
// for status displays (aqlshell's \r).
func (c *Client) BreakerState() resilient.BreakerState { return c.br.State() }
