// Package remoteclient is the thin-driver side of the wire protocol: the
// paper's client-side JDBC driver reimagined for this codebase. A Client
// speaks the internal/wire JSON protocol to an aqlserve server and
// presents the same two surfaces the in-process platform does:
//
//   - the query surface (Query/QueryStreamMode returning *resultset.Rows,
//     Prepare returning reusable statements, Explain, DefineView), and
//   - the catalog surface (Client implements catalog.Source, including
//     the typed NotFoundError/AmbiguousError shapes), so metadata-hungry
//     tools browse a remote server exactly as they browse a local catalog.
//
// Result rows stream: execute opens a server-side cursor and the returned
// Rows pulls chunks over fetch calls through a RowCursor, preserving the
// platform's incremental delivery — first row before last row exists —
// across the wire. Mid-stream failures arrive as typed errors after any
// rows that preceded them (a truncated stream is never silent), and a
// cancelled client context surfaces as a timeout-kind error wrapping
// context.Canceled, distinguishable from server-side failures.
//
// Two transports exist: Dial speaks real HTTP to a remote address, and
// Loopback binds a client directly to a server's http.Handler in process
// — no sockets, no file descriptors — which is what lets the load harness
// simulate thousands of concurrent clients against one server.
package remoteclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/resultset"
	"repro/internal/translator"
	"repro/internal/wire"
	"repro/internal/xdm"

	"encoding/json"
)

// Client is one wire session against an aqlserve server. It is safe for
// concurrent use; all its state after the handshake is immutable.
type Client struct {
	hc      *http.Client
	base    string
	session string
}

// dialClient is the single pooled HTTP client every Dial session shares.
// Each verb is one POST, so without keep-alive pooling a busy client fleet
// re-handshakes TCP per request; one transport with a per-host idle pool
// amortizes connections across all sessions to the same server.
var dialClient = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Dial connects to a server over real HTTP and opens a session. All dialed
// clients share one pooled, keep-alive transport.
func Dial(baseURL string) (*Client, error) {
	return connect(baseURL, dialClient)
}

// Loopback binds a client directly to a server handler in-process: every
// request is a function call through an in-memory transport, so thousands
// of concurrent clients cost goroutines, not sockets.
func Loopback(h http.Handler) (*Client, error) {
	return connect("http://loopback", &http.Client{Transport: loopbackTransport{h: h}})
}

func connect(base string, hc *http.Client) (*Client, error) {
	c := &Client{hc: hc, base: strings.TrimSuffix(base, "/")}
	var resp wire.HandshakeResponse
	if err := c.post(context.Background(), "handshake", wire.PathHandshake,
		wire.HandshakeRequest{Client: "remoteclient"}, &resp); err != nil {
		return nil, err
	}
	c.session = resp.Session
	return c, nil
}

// Session returns the server-issued session token.
func (c *Client) Session() string { return c.session }

// Close ends the session, closing its server-side cursors and prepared
// statements. Closing an already-closed (or reaped) session succeeds.
func (c *Client) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp wire.CloseSessionResponse
	return c.post(ctx, "close session", wire.PathCloseSession,
		wire.CloseSessionRequest{Session: c.session}, &resp)
}

// loopbackTransport serves each request by calling the handler directly.
type loopbackTransport struct {
	h http.Handler
}

func (t loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	rw := &memResponse{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(rw, req)
	if err := req.Context().Err(); err != nil {
		// The handler returned because the caller's context died (a stall
		// fault cancelled mid-request): surface the cancellation, as a real
		// transport would.
		return nil, err
	}
	return &http.Response{
		Status:     http.StatusText(rw.code),
		StatusCode: rw.code,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     rw.header,
		Body:       io.NopCloser(bytes.NewReader(rw.buf.Bytes())),
		Request:    req,
	}, nil
}

// memResponse is the minimal in-memory http.ResponseWriter behind the
// loopback transport.
type memResponse struct {
	header http.Header
	buf    bytes.Buffer
	code   int
	wrote  bool
}

func (m *memResponse) Header() http.Header { return m.header }

func (m *memResponse) WriteHeader(code int) {
	if !m.wrote {
		m.wrote = true
		m.code = code
	}
}

func (m *memResponse) Write(p []byte) (int, error) {
	m.wrote = true
	return m.buf.Write(p)
}

// post performs one JSON request/response exchange. Transport failures
// (including context cancellation) classify through aqerr.Wrap; protocol
// failures decode the server's wire.Error back into a typed QueryError.
func (c *Client) post(ctx context.Context, op, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return aqerr.Errorf(aqerr.KindInternal, op, "encode request: %v", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return aqerr.Errorf(aqerr.KindInternal, op, "build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := c.hc.Do(req)
	if err != nil {
		return aqerr.Wrap(op, err) // ctx cancellation lands here → timeout kind
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var er wire.ErrorResponse
		if derr := json.NewDecoder(res.Body).Decode(&er); derr == nil && er.Error != nil {
			return decodeError(er.Error)
		}
		return aqerr.Errorf(aqerr.KindUnknown, op, "server returned HTTP %d", res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return aqerr.Errorf(aqerr.KindTransient, op, "malformed response: %v", err)
	}
	return nil
}

// decodeError rebuilds a typed QueryError from its wire form, so
// errors.As/Kind-based handling is identical on both sides of the wire.
func decodeError(we *wire.Error) error {
	return aqerr.New(aqerr.ParseKind(we.Kind), we.Op, errors.New(we.Msg))
}

// encodeArgs converts Go parameter values to typed wire atoms.
func encodeArgs(op string, args []any) ([]*wire.Atom, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]*wire.Atom, len(args))
	for i, a := range args {
		v, err := xdm.FromGo(a)
		if err != nil {
			return nil, aqerr.Errorf(aqerr.KindPermanent, op, "parameter %d: %v", i+1, err)
		}
		out[i] = &wire.Atom{T: int(v.Type()), V: v.Lexical()}
	}
	return out, nil
}

// clientColumns decodes a wire result schema.
func clientColumns(cols []wire.Column) []resultset.Column {
	out := make([]resultset.Column, len(cols))
	for i, c := range cols {
		out[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName,
			Type: catalog.SQLType(c.Type), Nullable: c.Nullable, Precision: c.Precision, Scale: c.Scale}
	}
	return out
}

// Query runs ad-hoc SQL in the default text result mode.
func (c *Client) Query(ctx context.Context, sql string, args ...any) (*resultset.Rows, error) {
	return c.QueryStreamMode(ctx, translator.ModeText, sql, args...)
}

// QueryStreamMode runs ad-hoc SQL in an explicit result mode, returning a
// streaming result set whose rows arrive in fetch-sized chunks. ctx
// governs the whole stream: cancelling it fails the next fetch with a
// timeout-kind error wrapping the context error.
func (c *Client) QueryStreamMode(ctx context.Context, mode translator.ResultMode, sql string, args ...any) (*resultset.Rows, error) {
	wargs, err := encodeArgs("execute", args)
	if err != nil {
		return nil, err
	}
	return c.execute(ctx, wire.ExecuteRequest{Session: c.session, SQL: sql, Mode: wire.ModeName(mode), Args: wargs})
}

func (c *Client) execute(ctx context.Context, req wire.ExecuteRequest) (*resultset.Rows, error) {
	var resp wire.ExecuteResponse
	if err := c.post(ctx, "execute", wire.PathExecute, req, &resp); err != nil {
		return nil, err
	}
	cur := &remoteCursor{c: c, ctx: ctx, cursor: resp.Cursor, cols: clientColumns(resp.Columns)}
	return resultset.NewStreaming(cur), nil
}

// Stmt is a prepared statement pinned in the server session.
type Stmt struct {
	c      *Client
	id     int64
	cols   []resultset.Column
	params int
}

// Prepare compiles a statement server-side and pins it in the session's
// prepared table. Each execution re-resolves through the server's compile
// cache, so catalog changes (CREATE VIEW) transparently recompile.
func (c *Client) Prepare(ctx context.Context, sql string, mode translator.ResultMode) (*Stmt, error) {
	var resp wire.PrepareResponse
	err := c.post(ctx, "prepare", wire.PathPrepare,
		wire.PrepareRequest{Session: c.session, SQL: sql, Mode: wire.ModeName(mode)}, &resp)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: resp.Stmt, cols: clientColumns(resp.Columns), params: resp.ParamCount}, nil
}

// Columns returns the prepared statement's result schema.
func (s *Stmt) Columns() []resultset.Column { return s.cols }

// ParamCount returns the number of ? placeholders.
func (s *Stmt) ParamCount() int { return s.params }

// Execute runs the prepared statement with the given parameters.
func (s *Stmt) Execute(ctx context.Context, args ...any) (*resultset.Rows, error) {
	wargs, err := encodeArgs("execute", args)
	if err != nil {
		return nil, err
	}
	return s.c.execute(ctx, wire.ExecuteRequest{Session: s.c.session, Stmt: s.id, Args: wargs})
}

// Explain compiles a statement remotely and returns the rendered plan.
func (c *Client) Explain(ctx context.Context, sql string, mode translator.ResultMode) (string, error) {
	var resp wire.ExplainResponse
	err := c.post(ctx, "explain", wire.PathExplain,
		wire.ExplainRequest{Session: c.session, SQL: sql, Mode: wire.ModeName(mode)}, &resp)
	return resp.Text, err
}

// DefineView registers a logical data service on the server.
func (c *Client) DefineView(ctx context.Context, path, name, sql string) error {
	var resp wire.CreateViewResponse
	return c.post(ctx, "create view", wire.PathCreateView,
		wire.CreateViewRequest{Session: c.session, Path: path, Name: name, SQL: sql}, &resp)
}

// ServerStats fetches the server's counter block and pipeline snapshot.
func (c *Client) ServerStats(ctx context.Context) (wire.StatsResponse, error) {
	var resp wire.StatsResponse
	err := c.post(ctx, "stats", wire.PathStats, wire.StatsRequest{}, &resp)
	return resp, err
}

// Lookup implements catalog.Source against the remote catalog.
func (c *Client) Lookup(ref catalog.TableRef) (*catalog.TableMeta, error) {
	return c.LookupContext(context.Background(), ref)
}

// LookupContext implements catalog.ContextSource, reconstructing the
// typed not-found/ambiguous failures a local catalog would return.
func (c *Client) LookupContext(ctx context.Context, ref catalog.TableRef) (*catalog.TableMeta, error) {
	var resp wire.LookupResponse
	err := c.post(ctx, "metadata lookup", wire.PathMetaLookup,
		wire.LookupRequest{Session: c.session, Catalog: ref.Catalog, Schema: ref.Schema, Table: ref.Table}, &resp)
	if err != nil {
		return nil, err
	}
	switch {
	case resp.NotFound:
		return nil, &catalog.NotFoundError{Ref: ref}
	case len(resp.Ambiguous) > 0:
		return nil, &catalog.AmbiguousError{Ref: ref, Schemas: resp.Ambiguous}
	case resp.Meta == nil:
		return nil, fmt.Errorf("remoteclient: empty metadata response for %s", ref)
	}
	return resp.Meta, nil
}

// Tables implements catalog.Source.
func (c *Client) Tables() ([]*catalog.TableMeta, error) {
	var resp wire.MetasResponse
	err := c.post(context.Background(), "metadata tables", wire.PathMetaTables,
		wire.MetasRequest{Session: c.session}, &resp)
	return resp.Metas, err
}

// Procedures implements catalog.Source.
func (c *Client) Procedures() ([]*catalog.TableMeta, error) {
	var resp wire.MetasResponse
	err := c.post(context.Background(), "metadata procedures", wire.PathMetaProcs,
		wire.MetasRequest{Session: c.session}, &resp)
	return resp.Metas, err
}

// remoteCursor is the fetch-chunked resultset.RowCursor behind remote
// queries. Rows buffer one chunk at a time; EOF and errors are terminal
// and sticky, and an in-band error is delivered only after the rows that
// preceded it (truncation semantics match the in-process fault path).
type remoteCursor struct {
	c      *Client
	ctx    context.Context
	cursor int64
	cols   []resultset.Column

	buf     [][]*wire.Atom
	pos     int
	eof     bool
	pending error
	closed  bool
}

// Columns implements resultset.RowCursor.
func (rc *remoteCursor) Columns() []resultset.Column { return rc.cols }

// Next implements resultset.RowCursor: one decoded row per call, io.EOF
// after the last.
func (rc *remoteCursor) Next() ([]xdm.Atomic, error) {
	for {
		if rc.pos < len(rc.buf) {
			row := rc.buf[rc.pos]
			rc.pos++
			return decodeRow(row, rc.cols)
		}
		if rc.pending != nil {
			return nil, rc.pending
		}
		if rc.eof || rc.closed {
			return nil, io.EOF
		}
		var resp wire.FetchResponse
		if err := rc.c.post(rc.ctx, "fetch", wire.PathFetch,
			wire.FetchRequest{Session: rc.c.session, Cursor: rc.cursor}, &resp); err != nil {
			rc.pending = err
			return nil, err
		}
		rc.buf, rc.pos = resp.Rows, 0
		switch {
		case resp.Error != nil:
			rc.pending = decodeError(resp.Error)
		case resp.EOF:
			rc.eof = true
		case len(resp.Rows) == 0:
			// Defensive: a chunk with no rows and no terminal marker would
			// spin this loop; treat it as a protocol error.
			rc.pending = aqerr.Errorf(aqerr.KindInternal, "fetch", "empty fetch chunk without EOF")
		}
	}
}

// Close implements resultset.RowCursor, releasing the server-side cursor
// (which cancels the remote evaluation). It uses its own deadline rather
// than the stream context, so cancelling a query still cleans up its
// server state.
//
// The two ways a cursor closes have different stakes. Mid-stream, the
// close IS the cancellation — if it fails the server may keep evaluating,
// so the error surfaces. After the stream already ended (EOF or a
// delivered error), the server has released the query's admission slot
// and the close only reclaims the session's cursor-table entry; session
// close and the idle reaper reclaim it anyway, so a failure of that
// hygiene call must not retroactively fail a fully-delivered query.
func (rc *remoteCursor) Close() error {
	if rc.closed {
		return nil
	}
	rc.closed = true
	rc.buf = nil
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp wire.CloseCursorResponse
	err := rc.c.post(ctx, "close cursor", wire.PathCloseCursor,
		wire.CloseCursorRequest{Session: rc.c.session, Cursor: rc.cursor}, &resp)
	if rc.eof || rc.pending != nil {
		return nil // best-effort cleanup after a terminal stream
	}
	return err
}

// decodeRow re-parses one wire row into atomic values (nil = SQL NULL).
func decodeRow(row []*wire.Atom, cols []resultset.Column) ([]xdm.Atomic, error) {
	out := make([]xdm.Atomic, len(cols))
	for i := range cols {
		if i >= len(row) || row[i] == nil {
			continue
		}
		v, err := xdm.ParseAtomic(row[i].V, xdm.AtomicType(row[i].T))
		if err != nil {
			return nil, aqerr.Errorf(aqerr.KindInternal, "decode row", "column %d: %v", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}
