// Package remoteclient is the thin-driver side of the wire protocol: the
// paper's client-side JDBC driver reimagined for this codebase. A Client
// speaks the internal/wire JSON protocol to an aqlserve server and
// presents the same two surfaces the in-process platform does:
//
//   - the query surface (Query/QueryStreamMode returning *resultset.Rows,
//     Prepare returning reusable statements, Explain, DefineView), and
//   - the catalog surface (Client implements catalog.Source, including
//     the typed NotFoundError/AmbiguousError shapes), so metadata-hungry
//     tools browse a remote server exactly as they browse a local catalog.
//
// Result rows stream: execute opens a server-side cursor and the returned
// Rows pulls chunks over fetch calls through a RowCursor, preserving the
// platform's incremental delivery — first row before last row exists —
// across the wire. Mid-stream failures arrive as typed errors after any
// rows that preceded them (a truncated stream is never silent), and a
// cancelled client context surfaces as a timeout-kind error wrapping
// context.Canceled, distinguishable from server-side failures.
//
// Two transports exist: Dial speaks real HTTP to a remote address, and
// Loopback binds a client directly to a server's http.Handler in process
// — no sockets, no file descriptors — which is what lets the load harness
// simulate thousands of concurrent clients against one server.
//
// Every client carries a resilience net (see Options): transport
// failures classify as typed transient errors and idempotent verbs
// retry with backoff, honoring server Retry-After hints; a per-server
// circuit breaker fails fast when the transport itself is down; every
// execute carries an idempotency key and every fetch a sequence number,
// so a retried or hedged duplicate replays the server's cached chunk
// byte-identically instead of skipping or doubling rows. Each verb also
// forwards the caller's remaining context deadline as an explicit
// budget header, so the server never keeps working on a request its
// caller has already abandoned.
package remoteclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/obsv"
	"repro/internal/resilient"
	"repro/internal/resultset"
	"repro/internal/translator"
	"repro/internal/wire"
	"repro/internal/xdm"

	"encoding/json"
)

// Client is one wire session against an aqlserve server. It is safe for
// concurrent use; all its configuration after the handshake is
// immutable (the breaker and exec-key counter are internally
// synchronized).
type Client struct {
	hc      *http.Client
	base    string
	session string
	opts    Options
	br      *resilient.Breaker
	execSeq atomic.Int64
}

// dialClient is the single pooled HTTP client every Dial session shares.
// Each verb is one POST, so without keep-alive pooling a busy client fleet
// re-handshakes TCP per request; one transport with a per-host idle pool
// amortizes connections across all sessions to the same server.
var dialClient = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Dial connects to a server over real HTTP and opens a session with
// default resilience Options. All dialed clients share one pooled,
// keep-alive transport.
func Dial(baseURL string) (*Client, error) {
	return DialOptions(baseURL, Options{})
}

// DialOptions is Dial with explicit resilience knobs.
func DialOptions(baseURL string, opts Options) (*Client, error) {
	return connect(baseURL, dialClient, opts)
}

// Loopback binds a client directly to a server handler in-process: every
// request is a function call through an in-memory transport, so thousands
// of concurrent clients cost goroutines, not sockets.
func Loopback(h http.Handler) (*Client, error) {
	return LoopbackOptions(h, Options{})
}

// LoopbackOptions is Loopback with explicit resilience knobs.
func LoopbackOptions(h http.Handler, opts Options) (*Client, error) {
	return connect("http://loopback", &http.Client{Transport: loopbackTransport{h: h}}, opts)
}

func connect(base string, hc *http.Client, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{hc: hc, base: strings.TrimSuffix(base, "/"), opts: opts}
	c.br = resilient.NewBreaker("server "+c.base, opts.BreakerThreshold, opts.BreakerCooldown)
	// A lost handshake response leaks a session until the idle reaper
	// collects it, which is why retrying it here is safe.
	resp, err := postRetry[wire.HandshakeResponse](context.Background(), c, "handshake", wire.PathHandshake,
		wire.HandshakeRequest{Client: "remoteclient"}, true)
	if err != nil {
		return nil, err
	}
	c.session = resp.Session
	return c, nil
}

// Session returns the server-issued session token.
func (c *Client) Session() string { return c.session }

// Close ends the session, closing its server-side cursors and prepared
// statements. Closing an already-closed (or reaped) session succeeds.
func (c *Client) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := postRetry[wire.CloseSessionResponse](ctx, c, "close session", wire.PathCloseSession,
		wire.CloseSessionRequest{Session: c.session}, true)
	return err
}

// loopbackTransport serves each request by calling the handler directly.
type loopbackTransport struct {
	h http.Handler
}

func (t loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	rw := &memResponse{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(rw, req)
	if err := req.Context().Err(); err != nil {
		// The handler returned because the caller's context died (a stall
		// fault cancelled mid-request): surface the cancellation, as a real
		// transport would.
		return nil, err
	}
	return &http.Response{
		Status:     http.StatusText(rw.code),
		StatusCode: rw.code,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     rw.header,
		Body:       io.NopCloser(bytes.NewReader(rw.buf.Bytes())),
		Request:    req,
	}, nil
}

// memResponse is the minimal in-memory http.ResponseWriter behind the
// loopback transport.
type memResponse struct {
	header http.Header
	buf    bytes.Buffer
	code   int
	wrote  bool
}

func (m *memResponse) Header() http.Header { return m.header }

func (m *memResponse) WriteHeader(code int) {
	if !m.wrote {
		m.wrote = true
		m.code = code
	}
}

func (m *memResponse) Write(p []byte) (int, error) {
	m.wrote = true
	return m.buf.Write(p)
}

// post performs one JSON request/response exchange. Protocol failures
// decode the server's wire.Error back into a typed QueryError. Transport
// failures are classified here, and the split matters to every caller up
// to Rows.Err(): the caller's own context expiry surfaces as a
// timeout-kind error still matching errors.Is(ctx.Err()), while every
// other way an exchange can die without a server verdict — refused or
// reset connections, a response body cut off mid-stream — is a typed
// transient error, never an untyped one a retry loop or breaker would
// have to string-match. The caller's remaining deadline also travels as
// an explicit budget header, so the server can stop (or never start)
// work the client will not wait for.
func (c *Client) post(ctx context.Context, op, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return aqerr.Errorf(aqerr.KindInternal, op, "encode request: %v", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return aqerr.Errorf(aqerr.KindInternal, op, "build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(wire.BudgetHeader, strconv.FormatInt(ms, 10))
		}
	}
	res, err := c.hc.Do(req)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return aqerr.Wrap(op, err) // the caller gave up → timeout kind
		}
		return aqerr.New(aqerr.KindTransient, op, err) // server never answered
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var er wire.ErrorResponse
		if derr := json.NewDecoder(res.Body).Decode(&er); derr == nil && er.Error != nil {
			return decodeError(er.Error)
		}
		// A non-OK status whose error body did not survive the trip: the
		// server's verdict is unknown, the transport is suspect.
		return aqerr.Errorf(aqerr.KindTransient, op, "server returned HTTP %d with unreadable error body", res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return aqerr.Errorf(aqerr.KindTransient, op, "malformed response: %v", err)
	}
	return nil
}

// decodeError rebuilds a typed QueryError from its wire form, so
// errors.As/Kind-based handling — including the Retry-After hint on a
// shed — is identical on both sides of the wire.
func decodeError(we *wire.Error) error {
	qe := aqerr.New(aqerr.ParseKind(we.Kind), we.Op, errors.New(we.Msg))
	if we.RetryAfterMS > 0 {
		qe.RetryAfter = time.Duration(we.RetryAfterMS) * time.Millisecond
	}
	return qe
}

// encodeArgs converts Go parameter values to typed wire atoms.
func encodeArgs(op string, args []any) ([]*wire.Atom, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]*wire.Atom, len(args))
	for i, a := range args {
		v, err := xdm.FromGo(a)
		if err != nil {
			return nil, aqerr.Errorf(aqerr.KindPermanent, op, "parameter %d: %v", i+1, err)
		}
		out[i] = &wire.Atom{T: int(v.Type()), V: v.Lexical()}
	}
	return out, nil
}

// clientColumns decodes a wire result schema.
func clientColumns(cols []wire.Column) []resultset.Column {
	out := make([]resultset.Column, len(cols))
	for i, c := range cols {
		out[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName,
			Type: catalog.SQLType(c.Type), Nullable: c.Nullable, Precision: c.Precision, Scale: c.Scale}
	}
	return out
}

// Query runs ad-hoc SQL in the default text result mode.
func (c *Client) Query(ctx context.Context, sql string, args ...any) (*resultset.Rows, error) {
	return c.QueryStreamMode(ctx, translator.ModeText, sql, args...)
}

// QueryStreamMode runs ad-hoc SQL in an explicit result mode, returning a
// streaming result set whose rows arrive in fetch-sized chunks. ctx
// governs the whole stream: cancelling it fails the next fetch with a
// timeout-kind error wrapping the context error.
func (c *Client) QueryStreamMode(ctx context.Context, mode translator.ResultMode, sql string, args ...any) (*resultset.Rows, error) {
	return c.QueryDialect(ctx, "", mode, sql, args...)
}

// QueryDialect is QueryStreamMode with an explicit query dialect. The
// dialect name travels on the wire; empty means SQL-92, so the request a
// pre-dialect client would send is byte-identical.
func (c *Client) QueryDialect(ctx context.Context, dialect string, mode translator.ResultMode, text string, args ...any) (*resultset.Rows, error) {
	wargs, err := encodeArgs("execute", args)
	if err != nil {
		return nil, err
	}
	return c.execute(ctx, wire.ExecuteRequest{Session: c.session, SQL: text, Mode: wire.ModeName(mode), Dialect: dialect, Args: wargs})
}

func (c *Client) execute(ctx context.Context, req wire.ExecuteRequest) (*resultset.Rows, error) {
	// The exec key makes this verb idempotent: a retry after a lost
	// response replays the already-opened cursor instead of running the
	// query twice. The explicit budget lets the server clamp evaluation —
	// and bound the admission queue wait — to what the caller will
	// actually wait for.
	req.ExecKey = "x" + strconv.FormatInt(c.execSeq.Add(1), 10)
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.BudgetMS = ms
		}
	}
	resp, err := postRetry[wire.ExecuteResponse](ctx, c, "execute", wire.PathExecute, req, true)
	if err != nil {
		return nil, err
	}
	cur := &remoteCursor{c: c, ctx: ctx, cursor: resp.Cursor, cols: clientColumns(resp.Columns)}
	return resultset.NewStreaming(cur), nil
}

// Stmt is a prepared statement pinned in the server session.
type Stmt struct {
	c      *Client
	id     int64
	cols   []resultset.Column
	params int
}

// Prepare compiles a statement server-side and pins it in the session's
// prepared table. Each execution re-resolves through the server's compile
// cache, so catalog changes (CREATE VIEW) transparently recompile.
func (c *Client) Prepare(ctx context.Context, sql string, mode translator.ResultMode) (*Stmt, error) {
	return c.PrepareDialect(ctx, "", sql, mode)
}

// PrepareDialect is Prepare with an explicit query dialect ("" = SQL-92).
func (c *Client) PrepareDialect(ctx context.Context, dialect, text string, mode translator.ResultMode) (*Stmt, error) {
	// Retry-safe: a duplicate prepare pins a second copy of the statement,
	// reclaimed with the session — never a semantic change.
	resp, err := postRetry[wire.PrepareResponse](ctx, c, "prepare", wire.PathPrepare,
		wire.PrepareRequest{Session: c.session, SQL: text, Mode: wire.ModeName(mode), Dialect: dialect}, true)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: resp.Stmt, cols: clientColumns(resp.Columns), params: resp.ParamCount}, nil
}

// Columns returns the prepared statement's result schema.
func (s *Stmt) Columns() []resultset.Column { return s.cols }

// ParamCount returns the number of ? placeholders.
func (s *Stmt) ParamCount() int { return s.params }

// Execute runs the prepared statement with the given parameters.
func (s *Stmt) Execute(ctx context.Context, args ...any) (*resultset.Rows, error) {
	wargs, err := encodeArgs("execute", args)
	if err != nil {
		return nil, err
	}
	return s.c.execute(ctx, wire.ExecuteRequest{Session: s.c.session, Stmt: s.id, Args: wargs})
}

// Explain compiles a statement remotely and returns the rendered plan.
func (c *Client) Explain(ctx context.Context, sql string, mode translator.ResultMode) (string, error) {
	return c.ExplainDialect(ctx, "", sql, mode)
}

// ExplainDialect is Explain with an explicit query dialect ("" = SQL-92).
func (c *Client) ExplainDialect(ctx context.Context, dialect, text string, mode translator.ResultMode) (string, error) {
	resp, err := postRetry[wire.ExplainResponse](ctx, c, "explain", wire.PathExplain,
		wire.ExplainRequest{Session: c.session, SQL: text, Mode: wire.ModeName(mode), Dialect: dialect}, true)
	return resp.Text, err
}

// DefineView registers a logical data service on the server. It is the
// one verb with a durable side effect, so it is never retried: a lost
// response must surface to the caller, not risk a second registration.
func (c *Client) DefineView(ctx context.Context, path, name, sql string) error {
	_, err := postRetry[wire.CreateViewResponse](ctx, c, "create view", wire.PathCreateView,
		wire.CreateViewRequest{Session: c.session, Path: path, Name: name, SQL: sql}, false)
	return err
}

// ServerStats fetches the server's counter block and pipeline snapshot.
func (c *Client) ServerStats(ctx context.Context) (wire.StatsResponse, error) {
	return postRetry[wire.StatsResponse](ctx, c, "stats", wire.PathStats, wire.StatsRequest{}, true)
}

// Lookup implements catalog.Source against the remote catalog.
func (c *Client) Lookup(ref catalog.TableRef) (*catalog.TableMeta, error) {
	return c.LookupContext(context.Background(), ref)
}

// LookupContext implements catalog.ContextSource, reconstructing the
// typed not-found/ambiguous failures a local catalog would return.
func (c *Client) LookupContext(ctx context.Context, ref catalog.TableRef) (*catalog.TableMeta, error) {
	resp, err := postRetry[wire.LookupResponse](ctx, c, "metadata lookup", wire.PathMetaLookup,
		wire.LookupRequest{Session: c.session, Catalog: ref.Catalog, Schema: ref.Schema, Table: ref.Table}, true)
	if err != nil {
		return nil, err
	}
	switch {
	case resp.NotFound:
		return nil, &catalog.NotFoundError{Ref: ref}
	case len(resp.Ambiguous) > 0:
		return nil, &catalog.AmbiguousError{Ref: ref, Schemas: resp.Ambiguous}
	case resp.Meta == nil:
		return nil, fmt.Errorf("remoteclient: empty metadata response for %s", ref)
	}
	return resp.Meta, nil
}

// Tables implements catalog.Source.
func (c *Client) Tables() ([]*catalog.TableMeta, error) {
	resp, err := postRetry[wire.MetasResponse](context.Background(), c, "metadata tables", wire.PathMetaTables,
		wire.MetasRequest{Session: c.session}, true)
	return resp.Metas, err
}

// Procedures implements catalog.Source.
func (c *Client) Procedures() ([]*catalog.TableMeta, error) {
	resp, err := postRetry[wire.MetasResponse](context.Background(), c, "metadata procedures", wire.PathMetaProcs,
		wire.MetasRequest{Session: c.session}, true)
	return resp.Metas, err
}

// remoteCursor is the fetch-chunked resultset.RowCursor behind remote
// queries. Rows buffer one chunk at a time; EOF and errors are terminal
// and sticky, and an in-band error is delivered only after the rows that
// preceded it (truncation semantics match the in-process fault path).
type remoteCursor struct {
	c      *Client
	ctx    context.Context
	cursor int64
	cols   []resultset.Column

	seq     int64 // last successfully consumed fetch sequence number
	buf     [][]*wire.Atom
	pos     int
	eof     bool
	pending error
	closed  bool
}

// Columns implements resultset.RowCursor.
func (rc *remoteCursor) Columns() []resultset.Column { return rc.cols }

// Next implements resultset.RowCursor: one decoded row per call, io.EOF
// after the last.
func (rc *remoteCursor) Next() ([]xdm.Atomic, error) {
	for {
		if rc.pos < len(rc.buf) {
			row := rc.buf[rc.pos]
			rc.pos++
			return decodeRow(row, rc.cols)
		}
		if rc.pending != nil {
			return nil, rc.pending
		}
		if rc.eof || rc.closed {
			return nil, io.EOF
		}
		seq := rc.seq + 1
		resp, err := rc.fetchChunk(seq)
		if err != nil {
			rc.pending = err
			return nil, err
		}
		if resp.Error != nil && rc.c.opts.MaxRetries > 0 && aqerr.Transient(decodeError(resp.Error)) {
			// An in-band transient error may have damaged only this
			// transmission (a chunk truncated mid-flight travels as its
			// prefix plus the error). One same-sequence replay recovers the
			// server's intact cached chunk; a genuinely failed cursor
			// replays the identical error and it is delivered below.
			obsv.Global.RemoteRetries.Inc()
			if r2, err2 := rc.fetchChunk(seq); err2 == nil {
				if r2.Error == nil {
					obsv.Global.RemoteRetrySuccesses.Inc()
				}
				resp = r2
			}
		}
		rc.seq = seq
		rc.buf, rc.pos = resp.Rows, 0
		switch {
		case resp.Error != nil:
			rc.pending = decodeError(resp.Error)
		case resp.EOF:
			rc.eof = true
		case len(resp.Rows) == 0:
			// Defensive: a chunk with no rows and no terminal marker would
			// spin this loop; treat it as a protocol error.
			rc.pending = aqerr.Errorf(aqerr.KindInternal, "fetch", "empty fetch chunk without EOF")
		}
	}
}

// fetchChunk pulls one sequenced chunk, optionally hedged: when the
// first request has not answered within HedgeDelay, an identical
// request (same sequence number, so the server replays rather than
// advances) races it and the first answer wins. The loser is cancelled
// and drains into a buffered channel, so a hedge never leaks a
// goroutine past the pull that spawned it.
func (rc *remoteCursor) fetchChunk(seq int64) (wire.FetchResponse, error) {
	c := rc.c
	req := wire.FetchRequest{Session: c.session, Cursor: rc.cursor, Seq: seq}
	if c.opts.HedgeDelay <= 0 {
		return postRetry[wire.FetchResponse](rc.ctx, c, "fetch", wire.PathFetch, req, true)
	}
	hctx, cancel := context.WithCancel(rc.ctx)
	defer cancel()
	type outcome struct {
		resp   wire.FetchResponse
		err    error
		hedged bool
	}
	ch := make(chan outcome, 2)
	launch := func(hedged bool) {
		resp, err := postRetry[wire.FetchResponse](hctx, c, "fetch", wire.PathFetch, req, true)
		ch <- outcome{resp: resp, err: err, hedged: hedged}
	}
	go launch(false)
	timer := time.NewTimer(c.opts.HedgeDelay)
	defer timer.Stop()
	outstanding, hedgeLaunched := 1, false
	for {
		select {
		case o := <-ch:
			outstanding--
			if o.err == nil || outstanding == 0 {
				if o.err == nil && o.hedged {
					obsv.Global.HedgeWins.Inc()
				}
				return o.resp, o.err
			}
			// The first arrival failed while its twin is still in flight:
			// let the twin's outcome decide.
		case <-timer.C:
			if !hedgeLaunched {
				hedgeLaunched = true
				outstanding++
				obsv.Global.FetchHedges.Inc()
				go launch(true)
			}
		}
	}
}

// Close implements resultset.RowCursor, releasing the server-side cursor
// (which cancels the remote evaluation). It uses its own deadline rather
// than the stream context, so cancelling a query still cleans up its
// server state.
//
// The two ways a cursor closes have different stakes. Mid-stream, the
// close IS the cancellation — if it fails the server may keep evaluating,
// so the error surfaces. After the stream already ended (EOF or a
// delivered error), the server has released the query's admission slot
// and the close only reclaims the session's cursor-table entry; session
// close and the idle reaper reclaim it anyway, so a failure of that
// hygiene call must not retroactively fail a fully-delivered query.
func (rc *remoteCursor) Close() error {
	if rc.closed {
		return nil
	}
	rc.closed = true
	rc.buf = nil
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := postRetry[wire.CloseCursorResponse](ctx, rc.c, "close cursor", wire.PathCloseCursor,
		wire.CloseCursorRequest{Session: rc.c.session, Cursor: rc.cursor}, true)
	if rc.eof || rc.pending != nil {
		return nil // best-effort cleanup after a terminal stream
	}
	return err
}

// decodeRow re-parses one wire row into atomic values (nil = SQL NULL).
func decodeRow(row []*wire.Atom, cols []resultset.Column) ([]xdm.Atomic, error) {
	out := make([]xdm.Atomic, len(cols))
	for i := range cols {
		if i >= len(row) || row[i] == nil {
			continue
		}
		v, err := xdm.ParseAtomic(row[i].V, xdm.AtomicType(row[i].T))
		if err != nil {
			return nil, aqerr.Errorf(aqerr.KindInternal, "decode row", "column %d: %v", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}
