package catalog

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"time"
)

// Federation is the mediator-side catalog of a multi-source deployment: a
// registry of named backends (each an arbitrary Source — an in-memory
// Application, an XML-file-backed one, a latency-simulating Remote, ...)
// presented as one Source to the translator and driver.
//
// Each backend gets its own client-side Cache, so the caching, single-flight
// and stale-while-revalidate behavior of §3.5 applies per source and one
// backend's invalidation or outage never churns the entries — or the
// metadata generation — of the others. Resolution of an unqualified
// TableRef consults every backend in registration order; a reference whose
// Catalog names a registered source is pinned to that backend alone, which
// is also how callers keep resolution isolated from unrelated degraded
// sources.
type Federation struct {
	// Name is the federation's own catalog name, used only for display.
	Name string
	// FreshFor is applied to each backend's Cache at registration time;
	// zero keeps entries fresh forever.
	FreshFor time.Duration

	mu       sync.RWMutex
	names    []string // registration order
	backends map[string]*Cache
	// epoch is the topology generation: it advances when a source is
	// registered. Per-source metadata epochs live in each backend's Cache —
	// deliberately NOT folded in here, so invalidating one source does not
	// retire plans compiled against the others.
	epoch uint64
}

// NewFederation builds an empty federation.
func NewFederation(name string) *Federation {
	return &Federation{Name: name, backends: make(map[string]*Cache)}
}

// Register adds a named backend, wrapping it in its own Cache. Registering
// a name twice replaces the backend (and advances the topology epoch either
// way). Source names are case-insensitive at resolution time.
func (f *Federation) Register(name string, src Source) {
	c := NewCache(src)
	c.FreshFor = f.FreshFor
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.backends[name]; !ok {
		f.names = append(f.names, name)
	}
	f.backends[name] = c
	f.epoch++
}

// SourceNames returns the registered source names in registration order.
func (f *Federation) SourceNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string(nil), f.names...)
}

// Backend returns the named backend's Cache, or nil.
func (f *Federation) Backend(name string) *Cache {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, n := range f.names {
		if strings.EqualFold(n, name) {
			return f.backends[n]
		}
	}
	return nil
}

// InvalidateSource drops the named backend's cache entries and advances its
// metadata epoch, leaving every other source's cache and epoch untouched.
func (f *Federation) InvalidateSource(name string) {
	if c := f.Backend(name); c != nil {
		c.Invalidate()
	}
}

// SourceGeneration returns the named backend's metadata epoch (zero for an
// unknown source). The compiled-query cache keys each cached plan on the
// epochs of exactly the sources it touches.
func (f *Federation) SourceGeneration(name string) uint64 {
	if c := f.Backend(name); c != nil {
		return c.Generation()
	}
	return 0
}

// SourceStats returns the named backend's cache statistics.
func (f *Federation) SourceStats(name string) (CacheStats, bool) {
	if c := f.Backend(name); c != nil {
		return c.Stats(), true
	}
	return CacheStats{}, false
}

// Generation returns the topology epoch: it advances only when the set of
// registered sources changes, never on per-source invalidation.
func (f *Federation) Generation() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.epoch
}

// snapshot returns the name list and backend map for lock-free iteration.
func (f *Federation) snapshot() ([]string, map[string]*Cache) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.names, f.backends
}

// Lookup implements Source.
func (f *Federation) Lookup(ref TableRef) (*TableMeta, error) {
	return f.LookupContext(context.Background(), ref)
}

// LookupContext implements ContextSource, resolving ref across every
// registered backend. A ref whose Catalog names a registered source is
// pinned to that backend (the Catalog qualifier is consumed by the pin).
// Otherwise each backend is consulted in registration order: per-source
// not-found answers are skipped, matches from more than one source raise an
// AmbiguousError naming the sources involved, and an infrastructure failure
// from any backend propagates — resolution cannot be known complete without
// that backend's answer. (Per-source caches absorb such failures after
// warm-up: cached negative answers are authoritative.)
func (f *Federation) LookupContext(ctx context.Context, ref TableRef) (*TableMeta, error) {
	names, backends := f.snapshot()

	if ref.Catalog != "" {
		for _, name := range names {
			if strings.EqualFold(ref.Catalog, name) {
				pinned := ref
				pinned.Catalog = ""
				meta, err := LookupContext(ctx, backends[name], pinned)
				if err != nil {
					return nil, stampAmbiguous(err, name)
				}
				return stampMeta(meta, name), nil
			}
		}
	}

	type hit struct {
		source string
		meta   *TableMeta
	}
	var hits []hit
	var ambSchemas []string
	var ambSources []string
	for _, name := range names {
		meta, err := LookupContext(ctx, backends[name], ref)
		var nf *NotFoundError
		var amb *AmbiguousError
		switch {
		case err == nil:
			hits = append(hits, hit{source: name, meta: meta})
		case errors.As(err, &nf):
			// This source simply doesn't have the table.
		case errors.As(err, &amb):
			ambSchemas = append(ambSchemas, amb.Schemas...)
			ambSources = append(ambSources, name)
		default:
			return nil, err
		}
	}

	if len(hits) == 1 && len(ambSources) == 0 {
		return stampMeta(hits[0].meta, hits[0].source), nil
	}
	if len(hits) == 0 && len(ambSources) == 0 {
		return nil, &NotFoundError{Ref: ref}
	}
	if len(hits) == 0 && len(ambSources) == 1 {
		// Ambiguity wholly inside one source: report it as that source's.
		sort.Strings(ambSchemas)
		return nil, &AmbiguousError{Ref: ref, Schemas: ambSchemas, Sources: ambSources}
	}
	schemas := ambSchemas
	sources := ambSources
	for _, h := range hits {
		schemas = append(schemas, h.meta.Schema)
		sources = append(sources, h.source)
	}
	sort.Strings(schemas)
	// Sources stay in registration order (ambiguous-within first, then
	// matches) — dedup while preserving that order.
	return nil, &AmbiguousError{Ref: ref, Schemas: schemas, Sources: dedupInOrder(sources)}
}

// Tables implements Source: the concatenation of every backend's listing in
// registration order (each backend's own listing is already sorted), every
// entry stamped with its source name — a deterministic ordering for
// DatabaseMetaData browsing.
func (f *Federation) Tables() ([]*TableMeta, error) {
	return f.list(func(c *Cache) ([]*TableMeta, error) { return c.Tables() })
}

// Procedures implements Source.
func (f *Federation) Procedures() ([]*TableMeta, error) {
	return f.list(func(c *Cache) ([]*TableMeta, error) { return c.Procedures() })
}

func (f *Federation) list(get func(*Cache) ([]*TableMeta, error)) ([]*TableMeta, error) {
	names, backends := f.snapshot()
	var out []*TableMeta
	for _, name := range names {
		metas, err := get(backends[name])
		if err != nil {
			return nil, err
		}
		for _, m := range metas {
			out = append(out, stampMeta(m, name))
		}
	}
	return out, nil
}

// stampMeta returns a copy of meta attributed to the registered source name.
// Backends share cached *TableMeta pointers, so the federation never
// mutates them in place.
func stampMeta(meta *TableMeta, source string) *TableMeta {
	if meta == nil {
		return nil
	}
	m := *meta
	m.Source = source
	return &m
}

// stampAmbiguous rewrites a pinned backend's AmbiguousError to carry the
// federation-level source name; other errors pass through.
func stampAmbiguous(err error, source string) error {
	var amb *AmbiguousError
	if errors.As(err, &amb) {
		return &AmbiguousError{Ref: amb.Ref, Schemas: amb.Schemas, Sources: []string{source}}
	}
	return err
}

func dedupInOrder(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
