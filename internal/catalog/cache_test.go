package catalog

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// scriptedSource is a Source whose behavior tests control call by call:
// it can fail, block until released, and counts backend round trips.
type scriptedSource struct {
	mu    sync.Mutex
	meta  *TableMeta
	err   error
	calls int
	block chan struct{} // when non-nil, Lookup waits for close
}

func newScriptedSource(t *testing.T) *scriptedSource {
	t.Helper()
	meta, err := Demo().Lookup(TableRef{Table: "CUSTOMERS"})
	if err != nil {
		t.Fatal(err)
	}
	return &scriptedSource{meta: meta}
}

func (s *scriptedSource) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.err = err
}

func (s *scriptedSource) Lookup(ref TableRef) (*TableMeta, error) {
	s.mu.Lock()
	s.calls++
	err := s.err
	block := s.block
	s.mu.Unlock()
	if block != nil {
		<-block
	}
	if err != nil {
		return nil, err
	}
	return s.meta, nil
}

func (s *scriptedSource) Tables() ([]*TableMeta, error)     { return []*TableMeta{s.meta}, nil }
func (s *scriptedSource) Procedures() ([]*TableMeta, error) { return nil, nil }

func (s *scriptedSource) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func TestRemoteDelayInterruptible(t *testing.T) {
	remote := &Remote{Inner: Demo(), Latency: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := remote.LookupContext(ctx, TableRef{Table: "CUSTOMERS"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled lookup slept %v", elapsed)
	}
}

func TestRemoteDeadlineInterruptsDelay(t *testing.T) {
	remote := &Remote{Inner: Demo(), Latency: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := remote.LookupContext(ctx, TableRef{Table: "CUSTOMERS"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestCacheStaleServeDuringOutage(t *testing.T) {
	src := newScriptedSource(t)
	cache := NewCache(src)
	cache.FreshFor = time.Nanosecond // every entry expires immediately
	ref := TableRef{Table: "CUSTOMERS"}

	meta, err := cache.Lookup(ref)
	if err != nil || meta == nil {
		t.Fatalf("warm lookup: %v", err)
	}
	if s := cache.Stats(); s.Degraded {
		t.Fatal("healthy cache should not report degraded")
	}

	// Backend goes hard-down; expired entries must serve stale.
	src.fail(errors.New("connection refused"))
	time.Sleep(2 * time.Nanosecond)
	for i := 0; i < 3; i++ {
		got, err := cache.Lookup(ref)
		if err != nil {
			t.Fatalf("outage lookup %d: %v", i, err)
		}
		if got != meta {
			t.Fatalf("outage lookup %d returned wrong meta", i)
		}
	}
	s := cache.Stats()
	if !s.Degraded {
		t.Fatal("outage should flag the cache degraded")
	}
	if s.StaleServes != 3 {
		t.Fatalf("stale serves = %d, want 3", s.StaleServes)
	}

	// Backend recovers: refresh succeeds and the flag clears.
	src.fail(nil)
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatalf("recovered lookup: %v", err)
	}
	if s := cache.Stats(); s.Degraded {
		t.Fatal("recovery should clear the degraded flag")
	}
}

func TestCacheBackendFailureNotCached(t *testing.T) {
	src := newScriptedSource(t)
	src.fail(errors.New("boom"))
	cache := NewCache(src)
	ref := TableRef{Table: "CUSTOMERS"}

	// No prior entry: the failure propagates and is NOT cached as an
	// answer — every lookup retries the backend.
	for i := 0; i < 3; i++ {
		if _, err := cache.Lookup(ref); err == nil {
			t.Fatalf("lookup %d should fail", i)
		}
	}
	if n := src.callCount(); n != 3 {
		t.Fatalf("backend calls = %d, want 3 (failures must not be cached)", n)
	}
	if s := cache.Stats(); !s.Degraded {
		t.Fatal("failing backend should flag degradation")
	}

	// Recovery: next lookup succeeds and is cached again.
	src.fail(nil)
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	if n := src.callCount(); n != 4 {
		t.Fatalf("backend calls = %d, want 4 (success cached)", n)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	src := newScriptedSource(t)
	src.block = make(chan struct{})
	cache := NewCache(src)
	ref := TableRef{Table: "CUSTOMERS"}

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cache.Lookup(ref)
		}(i)
	}
	// Wait until every goroutine has either started the fetch or parked
	// on the in-flight entry, then release the backend.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := cache.Stats()
		if s.Misses+s.Shared >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never converged: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(src.block)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	if n := src.callCount(); n != 1 {
		t.Fatalf("backend calls = %d, want 1 (single-flight)", n)
	}
	s := cache.Stats()
	if s.Misses != 1 || s.Shared != 7 {
		t.Fatalf("stats = %+v, want 1 miss and 7 shared", s)
	}
}

func TestCacheSharedWaiterHonorsContext(t *testing.T) {
	src := newScriptedSource(t)
	src.block = make(chan struct{})
	defer close(src.block)
	cache := NewCache(src)
	ref := TableRef{Table: "CUSTOMERS"}

	go cache.Lookup(ref) // occupies the flight
	deadline := time.Now().Add(5 * time.Second)
	for src.callCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fetch never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := cache.LookupContext(ctx, ref)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestCacheZeroFreshForNeverExpires(t *testing.T) {
	src := newScriptedSource(t)
	cache := NewCache(src)
	ref := TableRef{Table: "CUSTOMERS"}
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	src.fail(errors.New("down"))
	// FreshFor zero: the entry stays fresh forever, so the outage is
	// invisible and no stale accounting happens.
	for i := 0; i < 3; i++ {
		if _, err := cache.Lookup(ref); err != nil {
			t.Fatal(err)
		}
	}
	s := cache.Stats()
	if s.StaleServes != 0 || s.Degraded {
		t.Fatalf("stats = %+v, want no staleness with FreshFor=0", s)
	}
	if n := src.callCount(); n != 1 {
		t.Fatalf("backend calls = %d, want 1", n)
	}
}

func (s *scriptedSource) swap(meta *TableMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meta = meta
}

func TestGenerationStableThroughWarmup(t *testing.T) {
	cache := NewCache(Demo())
	if g := cache.Generation(); g != 0 {
		t.Fatalf("fresh cache generation = %d", g)
	}
	for _, table := range []string{"CUSTOMERS", "PAYMENTS", "PO_CUSTOMERS"} {
		if _, err := cache.Lookup(TableRef{Table: table}); err != nil {
			t.Fatal(err)
		}
	}
	// First-time fetches are warm-up, not change: artifacts compiled while
	// the cache fills must stay valid.
	if g := cache.Generation(); g != 0 {
		t.Fatalf("warm-up advanced generation to %d", g)
	}
}

func TestGenerationAdvancesOnInvalidate(t *testing.T) {
	cache := NewCache(Demo())
	before := cache.Generation()
	cache.Invalidate()
	if g := cache.Generation(); g != before+1 {
		t.Fatalf("generation = %d, want %d", g, before+1)
	}
}

func TestGenerationAdvancesWhenRefreshChangesEntry(t *testing.T) {
	src := newScriptedSource(t)
	cache := NewCache(src)
	cache.FreshFor = time.Nanosecond // every access refreshes
	ref := TableRef{Table: "CUSTOMERS"}
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	// Same answer on refresh: no epoch change.
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	if g := cache.Generation(); g != 0 {
		t.Fatalf("unchanged refresh advanced generation to %d", g)
	}
	// Now the backend's answer differs (a redeployed data service).
	changed := *src.meta
	changedFn := *changed.Function
	changedFn.Name = "CUSTOMERS_V2"
	changed.Function = &changedFn
	src.swap(&changed)
	time.Sleep(time.Millisecond)
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	if g := cache.Generation(); g != 1 {
		t.Fatalf("changed refresh left generation at %d, want 1", g)
	}
}

func TestGenerationAdvancesOnceOnDegrade(t *testing.T) {
	src := newScriptedSource(t)
	cache := NewCache(src)
	cache.FreshFor = time.Nanosecond
	ref := TableRef{Table: "CUSTOMERS"}
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	src.fail(errors.New("backend down"))
	time.Sleep(time.Millisecond)
	// Stale-served through the outage; entering the degraded state retires
	// the epoch exactly once, however long the outage lasts.
	for i := 0; i < 3; i++ {
		if _, err := cache.Lookup(ref); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if g := cache.Generation(); g != 1 {
		t.Fatalf("degraded generation = %d, want exactly 1 bump", g)
	}
	if !cache.Stats().Degraded {
		t.Fatal("cache should report degraded")
	}
}
