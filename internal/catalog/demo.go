package catalog

// Demo builds the metadata for the demo application used throughout the
// paper's examples: an application "TestApp" with one project
// "TestDataServices" holding the CUSTOMERS, PAYMENTS, PO_CUSTOMERS and
// PO_ITEMS data services, plus a parameterized getCustomerById function
// (surfaced as a stored procedure). The corresponding row data is produced
// by the workload generator in internal/bench.
func Demo() *Application {
	app := &Application{Name: "TestApp"}
	app.AddDSFile(&DSFile{
		Path: "TestDataServices",
		Name: "CUSTOMERS",
		Functions: []*Function{
			NewRelationalImport("TestDataServices", "CUSTOMERS", []Column{
				{Name: "CUSTOMERID", Type: SQLInteger},
				{Name: "CUSTOMERNAME", Type: SQLVarchar, Nullable: true, Precision: 64},
				{Name: "CITY", Type: SQLVarchar, Nullable: true, Precision: 32},
				{Name: "SIGNUPDATE", Type: SQLDate, Nullable: true},
			}),
			{
				Name:           "getCustomerById",
				RowElement:     "CUSTOMERS",
				Namespace:      "ld:TestDataServices/CUSTOMERS",
				SchemaLocation: "ld:TestDataServices/schemas/CUSTOMERS.xsd",
				Columns: []Column{
					{Name: "CUSTOMERID", Type: SQLInteger},
					{Name: "CUSTOMERNAME", Type: SQLVarchar, Nullable: true, Precision: 64},
					{Name: "CITY", Type: SQLVarchar, Nullable: true, Precision: 32},
					{Name: "SIGNUPDATE", Type: SQLDate, Nullable: true},
				},
				Params: []Parameter{{Name: "id", Type: SQLInteger}},
			},
		},
	})
	app.AddDSFile(&DSFile{
		Path: "TestDataServices",
		Name: "PAYMENTS",
		Functions: []*Function{
			NewRelationalImport("TestDataServices", "PAYMENTS", []Column{
				{Name: "PAYMENTID", Type: SQLInteger},
				{Name: "CUSTID", Type: SQLInteger},
				{Name: "PAYMENT", Type: SQLDecimal, Nullable: true, Precision: 10, Scale: 2},
				{Name: "PAYDATE", Type: SQLDate, Nullable: true},
			}),
		},
	})
	app.AddDSFile(&DSFile{
		Path: "TestDataServices",
		Name: "PO_CUSTOMERS",
		Functions: []*Function{
			NewRelationalImport("TestDataServices", "PO_CUSTOMERS", []Column{
				{Name: "ORDERID", Type: SQLInteger},
				{Name: "CUSTOMERID", Type: SQLInteger},
				{Name: "ORDERDATE", Type: SQLDate, Nullable: true},
				{Name: "STATUS", Type: SQLVarchar, Nullable: true, Precision: 16},
				{Name: "TOTAL", Type: SQLDecimal, Nullable: true, Precision: 10, Scale: 2},
			}),
		},
	})
	app.AddDSFile(&DSFile{
		Path: "TestDataServices",
		Name: "PO_ITEMS",
		Functions: []*Function{
			NewRelationalImport("TestDataServices", "PO_ITEMS", []Column{
				{Name: "ITEMID", Type: SQLInteger},
				{Name: "ORDERID", Type: SQLInteger},
				{Name: "PRODUCT", Type: SQLVarchar, Nullable: true, Precision: 48},
				{Name: "QUANTITY", Type: SQLInteger, Nullable: true},
				{Name: "PRICE", Type: SQLDecimal, Nullable: true, Precision: 10, Scale: 2},
			}),
		},
	})
	return app
}
