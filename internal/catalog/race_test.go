package catalog

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheConcurrentLookups hammers one Cache from many goroutines —
// mixed hits, misses, negative entries, stats reads, and invalidations —
// so `go test -race` can prove the shared map and counters are guarded.
func TestCacheConcurrentLookups(t *testing.T) {
	cache := NewCache(Demo())
	refs := []TableRef{
		{Table: "CUSTOMERS"},
		{Table: "PAYMENTS"},
		{Table: "PO_CUSTOMERS"},
		{Table: "PO_ITEMS"},
		{Schema: "TestDataServices/CUSTOMERS", Table: "CUSTOMERS"},
		{Table: "NO_SUCH_TABLE"}, // negative entry
	}

	const goroutines = 16
	const iters = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ref := refs[(g+i)%len(refs)]
				meta, err := cache.Lookup(ref)
				if ref.Table == "NO_SUCH_TABLE" {
					if err == nil {
						t.Errorf("lookup %v: expected error", ref)
						return
					}
				} else if err != nil || meta == nil {
					t.Errorf("lookup %v: %v", ref, err)
					return
				}
				if i%37 == 0 {
					_ = cache.Stats()
				}
				if g == 0 && i%101 == 0 {
					cache.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()

	stats := cache.Stats()
	if stats.Hits+stats.Misses != goroutines*iters {
		t.Fatalf("hits+misses = %d, want %d", stats.Hits+stats.Misses, goroutines*iters)
	}
	if stats.Misses == 0 || stats.Hits == 0 {
		t.Fatalf("degenerate stats: %+v", stats)
	}
}

// TestCacheConcurrentOverRemote layers the cache over a Remote (which
// keeps its own guarded call counter) and checks both stay consistent
// under parallel load.
func TestCacheConcurrentOverRemote(t *testing.T) {
	remote := &Remote{Inner: Demo()}
	cache := NewCache(remote)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := cache.Lookup(TableRef{Table: "CUSTOMERS"}); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	stats := cache.Stats()
	if stats.Hits+stats.Misses != 8*200 {
		t.Fatalf("lookups = %d", stats.Hits+stats.Misses)
	}
	// Every remote round trip corresponds to a recorded miss (several
	// goroutines may miss the same cold key concurrently; both counters
	// see the same set of calls).
	if remote.Calls() != stats.Misses {
		t.Fatalf("remote calls = %d, cache misses = %d", remote.Calls(), stats.Misses)
	}
}

// TestCacheStressManyKeys creates contention on distinct keys so map
// growth happens under concurrent access.
func TestCacheStressManyKeys(t *testing.T) {
	app := &Application{Name: "Stress"}
	var cols = []Column{{Name: "C0", Type: SQLInteger}}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("T%d", i)
		app.AddDSFile(&DSFile{
			Path:      "Stress",
			Name:      name,
			Functions: []*Function{NewRelationalImport("Stress", name, cols)},
		})
	}
	cache := NewCache(app)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				ref := TableRef{Table: fmt.Sprintf("T%d", (i+g*7)%64)}
				if _, err := cache.Lookup(ref); err != nil {
					t.Errorf("lookup %v: %v", ref, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
