// Package catalog models the AquaLogic DSP artifacts the JDBC driver
// queries — applications, projects, data service (.ds) files, and data
// service functions — together with the SQL-side analogies the paper's
// Figure 2 establishes:
//
//	application name      → SQL catalog name
//	path to .ds file      → SQL schema name
//	parameterless function→ SQL table
//	function w/ params    → SQL stored procedure
//	row-element children  → SQL columns
//
// The package also implements the metadata access pattern of §3.5: a Source
// that answers lookups (in production, a remote metadata API; here, either
// an in-memory source or a latency-simulating remote wrapper) and a
// client-side Cache in front of it.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/xdm"
)

// SQLType enumerates the SQL-92 column types the driver surfaces through
// result-set metadata.
type SQLType int

// SQL column types.
const (
	SQLUnknown SQLType = iota
	SQLInteger
	SQLSmallint
	SQLDecimal
	SQLDouble
	SQLVarchar
	SQLChar
	SQLBoolean
	SQLDate
	SQLTime
	SQLTimestamp
)

// String returns the SQL spelling of the type.
func (t SQLType) String() string {
	switch t {
	case SQLInteger:
		return "INTEGER"
	case SQLSmallint:
		return "SMALLINT"
	case SQLDecimal:
		return "DECIMAL"
	case SQLDouble:
		return "DOUBLE"
	case SQLVarchar:
		return "VARCHAR"
	case SQLChar:
		return "CHAR"
	case SQLBoolean:
		return "BOOLEAN"
	case SQLDate:
		return "DATE"
	case SQLTime:
		return "TIME"
	case SQLTimestamp:
		return "TIMESTAMP"
	default:
		return "UNKNOWN"
	}
}

// XSD returns the XML Schema type name recorded in the data service's .xsd
// for columns of this SQL type.
func (t SQLType) XSD() string {
	switch t {
	case SQLInteger, SQLSmallint:
		return "xs:int"
	case SQLDecimal:
		return "xs:decimal"
	case SQLDouble:
		return "xs:double"
	case SQLVarchar, SQLChar:
		return "xs:string"
	case SQLBoolean:
		return "xs:boolean"
	case SQLDate:
		return "xs:date"
	case SQLTime:
		return "xs:time"
	case SQLTimestamp:
		return "xs:dateTime"
	default:
		return "xs:anySimpleType"
	}
}

// Atomic returns the xdm atomic type used to represent column values of
// this SQL type inside the XQuery engine.
func (t SQLType) Atomic() xdm.AtomicType {
	switch t {
	case SQLInteger, SQLSmallint:
		return xdm.TypeInteger
	case SQLDecimal:
		return xdm.TypeDecimal
	case SQLDouble:
		return xdm.TypeDouble
	case SQLVarchar, SQLChar:
		return xdm.TypeString
	case SQLBoolean:
		return xdm.TypeBoolean
	case SQLDate:
		return xdm.TypeDate
	case SQLTime:
		return xdm.TypeTime
	case SQLTimestamp:
		return xdm.TypeDateTime
	default:
		return xdm.TypeUntyped
	}
}

// SQLTypeFromName parses a SQL type spelling (as written in a CAST) back to
// a SQLType.
func SQLTypeFromName(name string) SQLType {
	switch strings.ToUpper(name) {
	case "INTEGER", "INT":
		return SQLInteger
	case "SMALLINT":
		return SQLSmallint
	case "DECIMAL", "DEC", "NUMERIC":
		return SQLDecimal
	case "DOUBLE", "FLOAT", "REAL":
		return SQLDouble
	case "VARCHAR", "CHARACTER VARYING":
		return SQLVarchar
	case "CHAR", "CHARACTER":
		return SQLChar
	case "BOOLEAN":
		return SQLBoolean
	case "DATE":
		return SQLDate
	case "TIME":
		return SQLTime
	case "TIMESTAMP":
		return SQLTimestamp
	default:
		return SQLUnknown
	}
}

// Column describes one simple-typed child element of a function's row
// element — a SQL column in the driver's table view.
type Column struct {
	Name     string
	Type     SQLType
	Nullable bool
	// Precision and Scale carry DECIMAL(p, s) / VARCHAR(n) facets for
	// result-set metadata; zero means unspecified.
	Precision int
	Scale     int
}

// Parameter is a formal parameter of a parameterized data service function
// (surfaced as a stored procedure in the SQL view).
type Parameter struct {
	Name string
	Type SQLType
}

// Function is a data service function. A parameterless function whose
// return type is a flat element sequence is presented as a SQL table; a
// parameterized one as a stored procedure.
type Function struct {
	Name string
	// RowElement is the local name of the element each returned row is
	// wrapped in (CUSTOMERS in the paper's examples).
	RowElement string
	// Namespace is the target namespace of the function's schema, e.g.
	// "ld:TestDataServices/CUSTOMERS".
	Namespace string
	// SchemaLocation is the .xsd location used in generated schema
	// imports, e.g. "ld:TestDataServices/schemas/CUSTOMERS.xsd".
	SchemaLocation string
	Columns        []Column
	Params         []Parameter
}

// IsTable reports whether the function appears as a SQL table (no
// parameters) rather than a stored procedure.
func (f *Function) IsTable() bool { return len(f.Params) == 0 }

// Column returns the named column (case-insensitive, as SQL identifiers
// are) and whether it exists.
func (f *Function) Column(name string) (Column, bool) {
	for _, c := range f.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return Column{}, false
}

// DSFile is a data service (.ds) file: a named collection of functions.
// Path is the project/folder path; Path + "/" + Name forms the SQL schema
// name (Figure 2's analogy (ii)).
type DSFile struct {
	Path      string // e.g. "TestDataServices" or "Demo/Sales"
	Name      string // e.g. "CUSTOMERS"
	Functions []*Function
}

// SchemaName returns the SQL schema name the driver presents for this .ds
// file.
func (d *DSFile) SchemaName() string {
	if d.Path == "" {
		return d.Name
	}
	return d.Path + "/" + d.Name
}

// Function returns the named function (case-insensitive) and whether it
// exists.
func (d *DSFile) Function(name string) (*Function, bool) {
	for _, f := range d.Functions {
		if strings.EqualFold(f.Name, name) {
			return f, true
		}
	}
	return nil, false
}

// Application is an AquaLogic DSP application: the SQL catalog. Deployed
// applications change at runtime (DefineView adds virtual .ds files while
// connections keep querying), so the file list is guarded.
type Application struct {
	Name string

	mu      sync.RWMutex
	DSFiles []*DSFile // guarded by mu; mutate via AddDSFile, read via dsFiles
}

// AddDSFile appends a data service file to the application.
func (a *Application) AddDSFile(d *DSFile) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.DSFiles = append(a.DSFiles, d)
}

// dsFiles snapshots the file list for lock-free iteration (DSFile
// contents are immutable after registration; only the list grows).
func (a *Application) dsFiles() []*DSFile {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.DSFiles
}

// TableRef identifies a table (data service function) by the SQL names the
// driver exposes. Schema and Catalog may be empty for unqualified
// references; resolution then requires the table name to be unambiguous.
type TableRef struct {
	Catalog string
	Schema  string
	Table   string
}

func (r TableRef) String() string {
	var parts []string
	if r.Catalog != "" {
		parts = append(parts, r.Catalog)
	}
	if r.Schema != "" {
		parts = append(parts, r.Schema)
	}
	parts = append(parts, r.Table)
	return strings.Join(parts, ".")
}

// TableMeta is everything the translator needs to know about one table
// (§3.5 items (i) and (ii)): the function's location for schema imports
// and the column metadata for validation and wildcard expansion.
type TableMeta struct {
	Schema   string // SQL schema name (the .ds path)
	Source   string // backend that owns the table (the application or federation source name)
	Function *Function
}

// NotFoundError reports a failed metadata lookup.
type NotFoundError struct {
	Ref TableRef
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("catalog: no such table %s", e.Ref)
}

// AmbiguousError reports an unqualified table name matching functions in
// more than one schema — or, in a federation, across more than one source.
type AmbiguousError struct {
	Ref     TableRef
	Schemas []string
	// Sources names the federated backends involved when the collision
	// crosses source boundaries; empty for single-source ambiguity.
	Sources []string
}

func (e *AmbiguousError) Error() string {
	if len(e.Sources) > 0 {
		return fmt.Sprintf("catalog: table name %s is ambiguous across sources %s (schemas %s)",
			e.Ref.Table, strings.Join(e.Sources, ", "), strings.Join(e.Schemas, ", "))
	}
	return fmt.Sprintf("catalog: table name %s is ambiguous across schemas %s",
		e.Ref.Table, strings.Join(e.Schemas, ", "))
}

// Source answers metadata lookups. Implementations: the in-memory
// Application itself, a Remote simulation with injected latency, and a
// Cache layered over either.
type Source interface {
	// Lookup resolves a table reference to its metadata.
	Lookup(ref TableRef) (*TableMeta, error)
	// Tables lists every table (parameterless flat function) the source
	// exposes, for DatabaseMetaData-style browsing.
	Tables() ([]*TableMeta, error)
	// Procedures lists every parameterized function.
	Procedures() ([]*TableMeta, error)
}

// Lookup implements Source directly on the application.
func (a *Application) Lookup(ref TableRef) (*TableMeta, error) {
	if ref.Catalog != "" && !strings.EqualFold(ref.Catalog, a.Name) {
		return nil, &NotFoundError{Ref: ref}
	}
	var matches []*TableMeta
	for _, ds := range a.dsFiles() {
		if ref.Schema != "" && !schemaMatches(ref.Schema, ds) {
			continue
		}
		if f, ok := ds.Function(ref.Table); ok {
			matches = append(matches, &TableMeta{Schema: ds.SchemaName(), Source: a.Name, Function: f})
		}
	}
	switch len(matches) {
	case 0:
		return nil, &NotFoundError{Ref: ref}
	case 1:
		return matches[0], nil
	default:
		schemas := make([]string, len(matches))
		for i, m := range matches {
			schemas[i] = m.Schema
		}
		sort.Strings(schemas)
		return nil, &AmbiguousError{Ref: ref, Schemas: schemas}
	}
}

// schemaMatches compares a SQL schema reference against a .ds file. The
// full path ("TestDataServices/CUSTOMERS") matches exactly; a bare .ds
// name matches when unambiguous at the name level (reporting tools often
// emit only the last path segment).
func schemaMatches(ref string, ds *DSFile) bool {
	if strings.EqualFold(ref, ds.SchemaName()) {
		return true
	}
	return strings.EqualFold(ref, ds.Name)
}

// Tables implements Source.
func (a *Application) Tables() ([]*TableMeta, error) {
	var out []*TableMeta
	for _, ds := range a.dsFiles() {
		for _, f := range ds.Functions {
			if f.IsTable() {
				out = append(out, &TableMeta{Schema: ds.SchemaName(), Source: a.Name, Function: f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Schema != out[j].Schema {
			return out[i].Schema < out[j].Schema
		}
		return out[i].Function.Name < out[j].Function.Name
	})
	return out, nil
}

// Procedures implements Source.
func (a *Application) Procedures() ([]*TableMeta, error) {
	var out []*TableMeta
	for _, ds := range a.dsFiles() {
		for _, f := range ds.Functions {
			if !f.IsTable() {
				out = append(out, &TableMeta{Schema: ds.SchemaName(), Source: a.Name, Function: f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Schema != out[j].Schema {
			return out[i].Schema < out[j].Schema
		}
		return out[i].Function.Name < out[j].Function.Name
	})
	return out, nil
}

// NewRelationalImport builds the Function a DSP metadata import would
// produce for a relational table (the paper's Example 2): namespace
// "ld:<path>/<name>", schema location "ld:<path>/schemas/<name>.xsd", row
// element named after the table.
func NewRelationalImport(path, name string, cols []Column) *Function {
	return &Function{
		Name:           name,
		RowElement:     name,
		Namespace:      "ld:" + path + "/" + name,
		SchemaLocation: "ld:" + path + "/schemas/" + name + ".xsd",
		Columns:        cols,
	}
}
