package catalog

import (
	"errors"
	"testing"
	"time"

	"repro/internal/xdm"
)

// TestArtifactMappingFigure2 checks the SQL-analogy mapping of the paper's
// Figure 2: application→catalog, .ds path→schema, function→table,
// row-element children→columns.
func TestArtifactMappingFigure2(t *testing.T) {
	app := Demo()
	if app.Name != "TestApp" {
		t.Fatalf("catalog name = %q", app.Name)
	}
	meta, err := app.Lookup(TableRef{Table: "CUSTOMERS"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Schema != "TestDataServices/CUSTOMERS" {
		t.Fatalf("schema = %q", meta.Schema)
	}
	f := meta.Function
	if !f.IsTable() {
		t.Fatal("CUSTOMERS() must present as a table")
	}
	if f.Namespace != "ld:TestDataServices/CUSTOMERS" {
		t.Fatalf("namespace = %q", f.Namespace)
	}
	if f.SchemaLocation != "ld:TestDataServices/schemas/CUSTOMERS.xsd" {
		t.Fatalf("schema location = %q", f.SchemaLocation)
	}
	col, ok := f.Column("CUSTOMERNAME")
	if !ok || col.Type != SQLVarchar || !col.Nullable {
		t.Fatalf("column = %+v ok=%v", col, ok)
	}
	if _, ok := f.Column("customerid"); !ok {
		t.Fatal("column lookup must be case-insensitive")
	}
}

func TestArtifactMappingParameterizedFunction(t *testing.T) {
	app := Demo()
	meta, err := app.Lookup(TableRef{Table: "getCustomerById"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Function.IsTable() {
		t.Fatal("parameterized function must present as a procedure, not a table")
	}
	procs, err := app.Procedures()
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 || procs[0].Function.Name != "getCustomerById" {
		t.Fatalf("procedures = %+v", procs)
	}
}

func TestLookupQualification(t *testing.T) {
	app := Demo()
	// Fully qualified.
	if _, err := app.Lookup(TableRef{Catalog: "TestApp", Schema: "TestDataServices/CUSTOMERS", Table: "CUSTOMERS"}); err != nil {
		t.Fatal(err)
	}
	// Last-segment schema shorthand.
	if _, err := app.Lookup(TableRef{Schema: "CUSTOMERS", Table: "CUSTOMERS"}); err != nil {
		t.Fatal(err)
	}
	// Wrong catalog.
	if _, err := app.Lookup(TableRef{Catalog: "Other", Table: "CUSTOMERS"}); err == nil {
		t.Fatal("wrong catalog should fail")
	}
	// Case-insensitive table name.
	if _, err := app.Lookup(TableRef{Table: "customers"}); err != nil {
		t.Fatal("table lookup must be case-insensitive")
	}
	var nf *NotFoundError
	_, err := app.Lookup(TableRef{Table: "NO_SUCH"})
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v", err)
	}
}

func TestLookupAmbiguity(t *testing.T) {
	app := Demo()
	// Add a second CUSTOMERS function in another schema.
	app.AddDSFile(&DSFile{
		Path: "OtherProject",
		Name: "CUSTOMERS",
		Functions: []*Function{
			NewRelationalImport("OtherProject", "CUSTOMERS", []Column{{Name: "ID", Type: SQLInteger}}),
		},
	})
	var amb *AmbiguousError
	_, err := app.Lookup(TableRef{Table: "CUSTOMERS"})
	if !errors.As(err, &amb) {
		t.Fatalf("err = %v", err)
	}
	if len(amb.Schemas) != 2 {
		t.Fatalf("schemas = %v", amb.Schemas)
	}
	// Qualifying by schema disambiguates.
	meta, err := app.Lookup(TableRef{Schema: "OtherProject/CUSTOMERS", Table: "CUSTOMERS"})
	if err != nil || meta.Schema != "OtherProject/CUSTOMERS" {
		t.Fatalf("meta = %+v err = %v", meta, err)
	}
}

func TestTablesListing(t *testing.T) {
	app := Demo()
	tables, err := app.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("tables = %d", len(tables))
	}
	// Sorted by schema then name; parameterized function excluded.
	for _, m := range tables {
		if !m.Function.IsTable() {
			t.Fatalf("%s should not be in table listing", m.Function.Name)
		}
	}
}

func TestSQLTypeMappings(t *testing.T) {
	cases := []struct {
		t      SQLType
		sql    string
		xsd    string
		atomic xdm.AtomicType
	}{
		{SQLInteger, "INTEGER", "xs:int", xdm.TypeInteger},
		{SQLSmallint, "SMALLINT", "xs:int", xdm.TypeInteger},
		{SQLDecimal, "DECIMAL", "xs:decimal", xdm.TypeDecimal},
		{SQLDouble, "DOUBLE", "xs:double", xdm.TypeDouble},
		{SQLVarchar, "VARCHAR", "xs:string", xdm.TypeString},
		{SQLChar, "CHAR", "xs:string", xdm.TypeString},
		{SQLBoolean, "BOOLEAN", "xs:boolean", xdm.TypeBoolean},
		{SQLDate, "DATE", "xs:date", xdm.TypeDate},
		{SQLTime, "TIME", "xs:time", xdm.TypeTime},
		{SQLTimestamp, "TIMESTAMP", "xs:dateTime", xdm.TypeDateTime},
	}
	for _, c := range cases {
		if c.t.String() != c.sql || c.t.XSD() != c.xsd || c.t.Atomic() != c.atomic {
			t.Fatalf("%v: %s %s %v", c.t, c.t.String(), c.t.XSD(), c.t.Atomic())
		}
		if SQLTypeFromName(c.sql) != c.t {
			t.Fatalf("round trip of %s", c.sql)
		}
	}
	if SQLTypeFromName("BLOB") != SQLUnknown {
		t.Fatal("unknown type should map to SQLUnknown")
	}
	if SQLTypeFromName("INT") != SQLInteger || SQLTypeFromName("NUMERIC") != SQLDecimal {
		t.Fatal("type synonyms should normalize")
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	app := Demo()
	remote := &Remote{Inner: app}
	cache := NewCache(remote)
	ref := TableRef{Table: "CUSTOMERS"}
	for i := 0; i < 5; i++ {
		if _, err := cache.Lookup(ref); err != nil {
			t.Fatal(err)
		}
	}
	stats := cache.Stats()
	if stats.Misses != 1 || stats.Hits != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	if remote.Calls() != 1 {
		t.Fatalf("remote calls = %d", remote.Calls())
	}
}

func TestCacheNegativeCaching(t *testing.T) {
	app := Demo()
	remote := &Remote{Inner: app}
	cache := NewCache(remote)
	ref := TableRef{Table: "MISSING"}
	for i := 0; i < 3; i++ {
		if _, err := cache.Lookup(ref); err == nil {
			t.Fatal("lookup should fail")
		}
	}
	if remote.Calls() != 1 {
		t.Fatalf("negative result should be cached; remote calls = %d", remote.Calls())
	}
}

func TestCacheInvalidate(t *testing.T) {
	app := Demo()
	remote := &Remote{Inner: app}
	cache := NewCache(remote)
	ref := TableRef{Table: "CUSTOMERS"}
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	cache.Invalidate()
	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	if remote.Calls() != 2 {
		t.Fatalf("invalidate should force a refetch; calls = %d", remote.Calls())
	}
}

func TestCacheConcurrentUse(t *testing.T) {
	cache := NewCache(Demo())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				cache.Lookup(TableRef{Table: "CUSTOMERS"})
				cache.Lookup(TableRef{Table: "PAYMENTS"})
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	stats := cache.Stats()
	if stats.Hits+stats.Misses+stats.Shared != 1600 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRemoteLatency(t *testing.T) {
	remote := &Remote{Inner: Demo(), Latency: 2 * time.Millisecond}
	start := time.Now()
	if _, err := remote.Lookup(TableRef{Table: "CUSTOMERS"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
	if _, err := remote.Tables(); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Procedures(); err != nil {
		t.Fatal(err)
	}
	if remote.Calls() != 3 {
		t.Fatalf("calls = %d", remote.Calls())
	}
}

func TestDSFileSchemaName(t *testing.T) {
	d := &DSFile{Path: "", Name: "X"}
	if d.SchemaName() != "X" {
		t.Fatalf("schema = %q", d.SchemaName())
	}
	d = &DSFile{Path: "A/B", Name: "X"}
	if d.SchemaName() != "A/B/X" {
		t.Fatalf("schema = %q", d.SchemaName())
	}
}

func TestTableRefString(t *testing.T) {
	r := TableRef{Catalog: "C", Schema: "S", Table: "T"}
	if r.String() != "C.S.T" {
		t.Fatalf("got %q", r.String())
	}
	r = TableRef{Table: "T"}
	if r.String() != "T" {
		t.Fatalf("got %q", r.String())
	}
}
