package catalog

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/xdm"
)

// LoadXMLApplication reads an XML application document — the on-disk form
// of a deployed data-service project — into an in-memory Application plus
// the row data each parameterless function serves, keyed by the function's
// target namespace. The format mirrors what the catalog models:
//
//	<application name="FilesApp">
//	  <dataservice path="FileServices" name="REGIONS">
//	    <function name="REGIONS">
//	      <column name="REGIONID" type="INTEGER"/>
//	      <column name="NAME" type="VARCHAR" nullable="true" precision="32"/>
//	      <rows>
//	        <REGIONS><REGIONID>1</REGIONID><NAME>EMEA</NAME></REGIONS>
//	      </rows>
//	    </function>
//	  </dataservice>
//	</application>
//
// It backs the federation's "XML-file source" flavor: the returned
// Application answers metadata lookups like any other, and the row map is
// registered with the engine so queries against the file-backed tables
// evaluate exactly like in-memory ones.
func LoadXMLApplication(r io.Reader) (*Application, map[string][]*xdm.Element, error) {
	doc, err := xdm.Parse(r)
	if err != nil {
		return nil, nil, fmt.Errorf("catalog: load XML application: %w", err)
	}
	root := doc.Root()
	if root == nil || root.Name.Local != "application" {
		return nil, nil, fmt.Errorf("catalog: load XML application: expected <application> root")
	}
	name, _ := root.Attribute("name")
	if name == "" {
		return nil, nil, fmt.Errorf("catalog: load XML application: <application> needs a name attribute")
	}
	app := &Application{Name: name}
	rows := make(map[string][]*xdm.Element)
	for _, dsEl := range root.ChildElements("dataservice") {
		dsName, _ := dsEl.Attribute("name")
		if dsName == "" {
			return nil, nil, fmt.Errorf("catalog: load XML application: <dataservice> needs a name attribute")
		}
		path, _ := dsEl.Attribute("path")
		ds := &DSFile{Path: path, Name: dsName}
		for _, fnEl := range dsEl.ChildElements("function") {
			fnName, _ := fnEl.Attribute("name")
			if fnName == "" {
				return nil, nil, fmt.Errorf("catalog: load XML application: <function> in %s needs a name attribute", ds.SchemaName())
			}
			cols, err := parseColumns(fnEl)
			if err != nil {
				return nil, nil, fmt.Errorf("catalog: load XML application: function %s.%s: %w", ds.SchemaName(), fnName, err)
			}
			fn := NewRelationalImport(ds.Path, fnName, cols)
			ds.Functions = append(ds.Functions, fn)
			if rowsEl := fnEl.FirstChildElement("rows"); rowsEl != nil {
				var data []*xdm.Element
				for _, child := range rowsEl.Children {
					if el, ok := child.(*xdm.Element); ok {
						xdm.TrimBoundaryWhitespace(el)
						data = append(data, el)
					}
				}
				rows[fn.Namespace] = data
			}
		}
		app.AddDSFile(ds)
	}
	return app, rows, nil
}

func parseColumns(fnEl *xdm.Element) ([]Column, error) {
	var cols []Column
	for _, colEl := range fnEl.ChildElements("column") {
		name, _ := colEl.Attribute("name")
		if name == "" {
			return nil, fmt.Errorf("<column> needs a name attribute")
		}
		typeName, _ := colEl.Attribute("type")
		t := SQLTypeFromName(typeName)
		if t == SQLUnknown {
			return nil, fmt.Errorf("column %s has unknown type %q", name, typeName)
		}
		col := Column{Name: name, Type: t}
		if v, ok := colEl.Attribute("nullable"); ok {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return nil, fmt.Errorf("column %s: bad nullable %q", name, v)
			}
			col.Nullable = b
		}
		if v, ok := colEl.Attribute("precision"); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("column %s: bad precision %q", name, v)
			}
			col.Precision = n
		}
		if v, ok := colEl.Attribute("scale"); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("column %s: bad scale %q", name, v)
			}
			col.Scale = n
		}
		cols = append(cols, col)
	}
	return cols, nil
}
