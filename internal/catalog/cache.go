package catalog

import (
	"sync"
	"time"

	"repro/internal/obsv"
)

// Remote wraps a Source and injects a fixed latency per call, simulating
// the round trip to the AquaLogic DSP server's remote metadata API. The
// paper's design caches fetched table metadata locally precisely because
// this round trip is not free; the benchmark harness uses Remote to make
// the cache's effect measurable.
type Remote struct {
	Inner   Source
	Latency time.Duration

	mu    sync.Mutex
	calls int
}

// Lookup implements Source with simulated round-trip delay.
func (r *Remote) Lookup(ref TableRef) (*TableMeta, error) {
	r.delay()
	return r.Inner.Lookup(ref)
}

// Tables implements Source.
func (r *Remote) Tables() ([]*TableMeta, error) {
	r.delay()
	return r.Inner.Tables()
}

// Procedures implements Source.
func (r *Remote) Procedures() ([]*TableMeta, error) {
	r.delay()
	return r.Inner.Procedures()
}

// Calls returns how many remote round trips have been made.
func (r *Remote) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

func (r *Remote) delay() {
	r.mu.Lock()
	r.calls++
	r.mu.Unlock()
	if r.Latency > 0 {
		time.Sleep(r.Latency)
	}
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits   int
	Misses int
}

// Cache is the client-side metadata cache of §3.5: "Fetched table metadata
// is cached locally for further use." Negative results (not-found,
// ambiguous) are also cached, since reporting tools retry bad names.
// Cache is safe for concurrent use.
type Cache struct {
	Inner Source

	mu      sync.Mutex
	entries map[TableRef]cacheEntry
	stats   CacheStats
}

type cacheEntry struct {
	meta *TableMeta
	err  error
}

// NewCache builds a cache over src.
func NewCache(src Source) *Cache {
	return &Cache{Inner: src, entries: make(map[TableRef]cacheEntry)}
}

// Lookup implements Source, consulting the cache first. Hits and misses
// are counted both per cache (Stats) and process-wide (obsv.Global).
func (c *Cache) Lookup(ref TableRef) (*TableMeta, error) {
	c.mu.Lock()
	if e, ok := c.entries[ref]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		obsv.Global.CacheHits.Inc()
		return e.meta, e.err
	}
	c.stats.Misses++
	c.mu.Unlock()
	obsv.Global.CacheMisses.Inc()

	meta, err := c.Inner.Lookup(ref)

	c.mu.Lock()
	c.entries[ref] = cacheEntry{meta: meta, err: err}
	c.mu.Unlock()
	return meta, err
}

// Tables implements Source (pass-through; listing is a browsing operation,
// not on the per-query hot path).
func (c *Cache) Tables() ([]*TableMeta, error) { return c.Inner.Tables() }

// Procedures implements Source (pass-through).
func (c *Cache) Procedures() ([]*TableMeta, error) { return c.Inner.Procedures() }

// Stats returns a snapshot of hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Invalidate drops every cached entry (e.g. after a data service
// redeployment).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[TableRef]cacheEntry)
}
