package catalog

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"time"

	"repro/internal/obsv"
)

// ContextSource is an optional extension of Source whose lookups observe
// context cancellation and deadlines. Sources that make (or simulate)
// remote round trips implement it so a cancelled query does not strand a
// goroutine mid-fetch.
type ContextSource interface {
	Source
	LookupContext(ctx context.Context, ref TableRef) (*TableMeta, error)
}

// LookupContext resolves ref through src on the context-aware path when
// src implements ContextSource, falling back to the plain Lookup
// otherwise. A nil ctx behaves like context.Background().
func LookupContext(ctx context.Context, src Source, ref TableRef) (*TableMeta, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cs, ok := src.(ContextSource); ok {
			return cs.LookupContext(ctx, ref)
		}
	}
	return src.Lookup(ref)
}

// Remote wraps a Source and injects a fixed latency per call, simulating
// the round trip to the AquaLogic DSP server's remote metadata API. The
// paper's design caches fetched table metadata locally precisely because
// this round trip is not free; the benchmark harness uses Remote to make
// the cache's effect measurable.
type Remote struct {
	Inner   Source
	Latency time.Duration

	mu    sync.Mutex
	calls int
}

// Lookup implements Source with simulated round-trip delay.
func (r *Remote) Lookup(ref TableRef) (*TableMeta, error) {
	return r.LookupContext(context.Background(), ref)
}

// LookupContext implements ContextSource: the simulated round trip is
// interruptible, so a cancelled query returns promptly instead of
// stranding a goroutine in time.Sleep.
func (r *Remote) LookupContext(ctx context.Context, ref TableRef) (*TableMeta, error) {
	if err := r.delay(ctx); err != nil {
		return nil, err
	}
	return LookupContext(ctx, r.Inner, ref)
}

// Tables implements Source.
func (r *Remote) Tables() ([]*TableMeta, error) {
	if err := r.delay(context.Background()); err != nil {
		return nil, err
	}
	return r.Inner.Tables()
}

// Procedures implements Source.
func (r *Remote) Procedures() ([]*TableMeta, error) {
	if err := r.delay(context.Background()); err != nil {
		return nil, err
	}
	return r.Inner.Procedures()
}

// Calls returns how many remote round trips have been made.
func (r *Remote) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// delay simulates the round trip, waking early if ctx is done.
func (r *Remote) delay(ctx context.Context) error {
	r.mu.Lock()
	r.calls++
	r.mu.Unlock()
	if r.Latency <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(r.Latency)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CacheStats reports cache effectiveness and degradation state.
type CacheStats struct {
	Hits   int
	Misses int
	// StaleServes counts lookups answered from an expired entry because
	// the backend refresh failed (the §3.5 cache degrading gracefully
	// through an outage instead of failing the query).
	StaleServes int
	// Shared counts lookups that coalesced onto another goroutine's
	// in-flight fetch of the same reference (single-flight deduplication).
	Shared int
	// Degraded is true while the most recent backend fetch failed — the
	// Stats-visible staleness flag: answers may be stale until the
	// backend recovers.
	Degraded bool
}

// Cache is the client-side metadata cache of §3.5: "Fetched table metadata
// is cached locally for further use." Negative answers (not-found,
// ambiguous) are authoritative and also cached, since reporting tools
// retry bad names; backend failures are never cached as answers.
//
// Beyond plain memoization the cache provides two resilience behaviors:
//
//   - single-flight deduplication: concurrent lookups of the same
//     reference share one backend fetch;
//   - stale-while-revalidate: entries older than FreshFor are refreshed
//     on access, and if the refresh fails with a backend error the stale
//     entry is served instead (counted and flagged in Stats) — a backend
//     outage degrades metadata to stale answers, not hard failures.
//
// FreshFor zero (the default) keeps every entry fresh forever, the
// original fetch-once behavior. Cache is safe for concurrent use.
type Cache struct {
	Inner Source
	// FreshFor bounds entry freshness; zero means entries never expire.
	FreshFor time.Duration

	mu       sync.Mutex
	entries  map[TableRef]cacheEntry
	flights  map[TableRef]*flight
	stats    CacheStats
	degraded bool
	// generation counts metadata epochs: it advances when the cache is
	// invalidated, when a refresh replaces an entry with different
	// metadata, and when the backend first degrades. Consumers that derive
	// artifacts from metadata (the compiled-query cache) key on it, so a
	// catalog change or outage retires every artifact compiled before it.
	generation uint64
}

type cacheEntry struct {
	meta    *TableMeta
	err     error // authoritative negative answer (not-found/ambiguous)
	fetched time.Time
}

// flight is one in-progress backend fetch; concurrent lookups of the same
// ref wait on done and share the result.
type flight struct {
	done chan struct{}
	meta *TableMeta
	err  error
}

// NewCache builds a cache over src.
func NewCache(src Source) *Cache {
	return &Cache{
		Inner:   src,
		entries: make(map[TableRef]cacheEntry),
		flights: make(map[TableRef]*flight),
	}
}

// Lookup implements Source, consulting the cache first. Hits and misses
// are counted both per cache (Stats) and process-wide (obsv.Global).
func (c *Cache) Lookup(ref TableRef) (*TableMeta, error) {
	return c.LookupContext(context.Background(), ref)
}

// LookupContext implements ContextSource.
func (c *Cache) LookupContext(ctx context.Context, ref TableRef) (*TableMeta, error) {
	c.mu.Lock()
	if e, ok := c.entries[ref]; ok && c.fresh(e) {
		c.stats.Hits++
		c.mu.Unlock()
		obsv.Global.CacheHits.Inc()
		return e.meta, e.err
	}
	if fl, ok := c.flights[ref]; ok {
		// Another goroutine is already fetching this ref: share its result.
		c.stats.Shared++
		c.mu.Unlock()
		obsv.Global.SingleFlightShared.Inc()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fl.err != nil {
			return c.serveStaleOr(ref, fl.err)
		}
		return fl.meta, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[ref] = fl
	c.stats.Misses++
	c.mu.Unlock()
	obsv.Global.CacheMisses.Inc()

	meta, err := LookupContext(ctx, c.Inner, ref)

	c.mu.Lock()
	if err == nil || authoritative(err) {
		if old, ok := c.entries[ref]; ok && !entryEquivalent(old, meta, err) {
			// A refresh changed this table's metadata: queries compiled
			// against the old answer are stale.
			c.generation++
		}
		c.entries[ref] = cacheEntry{meta: meta, err: err, fetched: time.Now()}
		c.degraded = false
	} else {
		// A backend failure is not an answer: leave any stale entry in
		// place and flag degradation. Entering the degraded state retires
		// the current metadata epoch too — stale-served answers may no
		// longer match the backend.
		if !c.degraded {
			c.generation++
		}
		c.degraded = true
	}
	fl.meta, fl.err = meta, err
	delete(c.flights, ref)
	c.mu.Unlock()
	close(fl.done)

	if err != nil && !authoritative(err) {
		return c.serveStaleOr(ref, err)
	}
	return meta, err
}

// fresh reports whether an entry is within its freshness window. Callers
// hold c.mu.
func (c *Cache) fresh(e cacheEntry) bool {
	return c.FreshFor <= 0 || time.Since(e.fetched) <= c.FreshFor
}

// serveStaleOr answers a failed backend fetch: if an expired entry exists
// it is served stale (counted and flagged); otherwise the failure
// propagates.
func (c *Cache) serveStaleOr(ref TableRef, fetchErr error) (*TableMeta, error) {
	if errors.Is(fetchErr, context.Canceled) || errors.Is(fetchErr, context.DeadlineExceeded) {
		// The caller gave up; stale serving is for backend outages.
		return nil, fetchErr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[ref]
	if !ok {
		return nil, fetchErr
	}
	c.stats.StaleServes++
	obsv.Global.StaleServes.Inc()
	return e.meta, e.err
}

// entryEquivalent reports whether a freshly fetched answer matches the
// cached one — same metadata content and the same (or equally absent)
// authoritative error. First-time fetches never pass through here, so
// cache warm-up does not advance the generation.
func entryEquivalent(old cacheEntry, meta *TableMeta, err error) bool {
	if (old.err == nil) != (err == nil) {
		return false
	}
	if old.err != nil && old.err.Error() != err.Error() {
		return false
	}
	return reflect.DeepEqual(old.meta, meta)
}

// authoritative reports whether a lookup error is a definitive answer
// about the name (cacheable) rather than an infrastructure failure.
func authoritative(err error) bool {
	var nf *NotFoundError
	var amb *AmbiguousError
	return errors.As(err, &nf) || errors.As(err, &amb)
}

// Tables implements Source (pass-through; listing is a browsing operation,
// not on the per-query hot path).
func (c *Cache) Tables() ([]*TableMeta, error) { return c.Inner.Tables() }

// Procedures implements Source (pass-through).
func (c *Cache) Procedures() ([]*TableMeta, error) { return c.Inner.Procedures() }

// Stats returns a snapshot of hit/miss/degradation counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Degraded = c.degraded
	return s
}

// Invalidate drops every cached entry (e.g. after a data service
// redeployment), clears the degradation flag, and advances the metadata
// generation.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[TableRef]cacheEntry)
	c.degraded = false
	c.generation++
}

// Generation returns the current metadata epoch. It advances on
// Invalidate, on a refresh that changes an entry, and on the transition
// into the degraded state; derived-artifact caches key on it.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}
