package xdm

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSequenceEmptyAndSingleton(t *testing.T) {
	var s Sequence
	if !s.Empty() {
		t.Fatal("nil sequence should be empty")
	}
	if _, err := s.Singleton(); err == nil {
		t.Fatal("Singleton on empty sequence should error")
	}
	s = SequenceOf(Integer(1))
	it, err := s.Singleton()
	if err != nil {
		t.Fatalf("Singleton: %v", err)
	}
	if it.(Integer) != 1 {
		t.Fatalf("got %v", it)
	}
	s = SequenceOf(Integer(1), Integer(2))
	if _, err := s.Singleton(); err == nil {
		t.Fatal("Singleton on 2-item sequence should error")
	}
}

func TestSequenceOfDropsNil(t *testing.T) {
	s := SequenceOf(nil, Integer(7), nil)
	if len(s) != 1 {
		t.Fatalf("expected 1 item, got %d", len(s))
	}
}

func TestConcat(t *testing.T) {
	s := Concat(SequenceOf(Integer(1)), nil, SequenceOf(Integer(2), Integer(3)))
	if len(s) != 3 {
		t.Fatalf("expected 3 items, got %d", len(s))
	}
	if s[2].(Integer) != 3 {
		t.Fatalf("unexpected order: %v", s)
	}
}

func TestQNameEqualIgnoresPrefix(t *testing.T) {
	a := QName{Space: "urn:x", Prefix: "p", Local: "n"}
	b := QName{Space: "urn:x", Prefix: "q", Local: "n"}
	if !a.Equal(b) {
		t.Fatal("names with same URI+local should be equal")
	}
	c := QName{Space: "urn:y", Local: "n"}
	if a.Equal(c) {
		t.Fatal("different namespace should not be equal")
	}
}

func TestElementStringValue(t *testing.T) {
	e := NewElement("ROW")
	id := NewTextElement("ID", "42")
	name := NewTextElement("NAME", "Sue")
	e.AddChild(id)
	e.AddChild(name)
	if got := e.StringValue(); got != "42Sue" {
		t.Fatalf("string value = %q", got)
	}
	if got := id.StringValue(); got != "42" {
		t.Fatalf("leaf string value = %q", got)
	}
}

func TestChildElements(t *testing.T) {
	e := NewElement("ROW")
	e.AddChild(NewTextElement("A", "1"))
	e.AddChild(NewTextElement("B", "2"))
	e.AddChild(NewTextElement("A", "3"))
	if got := len(e.ChildElements("A")); got != 2 {
		t.Fatalf("A children = %d", got)
	}
	if got := len(e.ChildElements("*")); got != 3 {
		t.Fatalf("* children = %d", got)
	}
	if e.FirstChildElement("B") == nil || e.FirstChildElement("C") != nil {
		t.Fatal("FirstChildElement lookup wrong")
	}
}

func TestElementClone(t *testing.T) {
	e := NewElement("ROW")
	e.SetAttr(QName{Local: "k"}, "v")
	e.AddChild(NewTextElement("A", "1"))
	cp := e.Clone()
	cp.ChildElements("A")[0].Children[0].(*Text).Value = "mutated"
	cp.SetAttr(QName{Local: "k"}, "changed")
	if e.ChildElements("A")[0].StringValue() != "1" {
		t.Fatal("clone shares child text")
	}
	if v, _ := e.Attribute("k"); v != "v" {
		t.Fatal("clone shares attributes")
	}
}

func TestAtomizeAndStringValue(t *testing.T) {
	el := NewTextElement("ID", "10")
	s := Atomize(SequenceOf(el, Integer(5)))
	if len(s) != 2 {
		t.Fatalf("len = %d", len(s))
	}
	if u, ok := s[0].(Untyped); !ok || string(u) != "10" {
		t.Fatalf("atomized node = %#v", s[0])
	}
	if s[1].(Integer) != 5 {
		t.Fatalf("atomic passthrough = %#v", s[1])
	}
	if StringValue(el) != "10" || StringValue(Integer(5)) != "5" {
		t.Fatal("StringValue wrong")
	}
}

func TestEffectiveBool(t *testing.T) {
	cases := []struct {
		in   Sequence
		want bool
		err  bool
	}{
		{nil, false, false},
		{SequenceOf(NewElement("X")), true, false},
		{SequenceOf(Boolean(true)), true, false},
		{SequenceOf(Boolean(false)), false, false},
		{SequenceOf(String("")), false, false},
		{SequenceOf(String("x")), true, false},
		{SequenceOf(Untyped("")), false, false},
		{SequenceOf(Integer(0)), false, false},
		{SequenceOf(Integer(3)), true, false},
		{SequenceOf(Double(0)), false, false},
		{SequenceOf(Integer(1), Integer(2)), false, true},
	}
	for i, c := range cases {
		got, err := EffectiveBool(c.in)
		if (err != nil) != c.err {
			t.Fatalf("case %d: err = %v", i, err)
		}
		if err == nil && got != c.want {
			t.Fatalf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestCompareAtomicPromotion(t *testing.T) {
	cases := []struct {
		a, b Atomic
		op   CompareOp
		want bool
	}{
		{Integer(1), Integer(1), OpEq, true},
		{Integer(1), Decimal(1.5), OpLt, true},
		{Decimal(2.5), Double(2.5), OpEq, true},
		{Untyped("10"), Integer(10), OpEq, true},
		{Untyped("10"), Integer(9), OpGt, true},
		{Integer(10), Untyped("10"), OpGe, true},
		{Untyped("abc"), String("abc"), OpEq, true},
		{Untyped("a"), Untyped("b"), OpLt, true},
		{String("Sue"), String("Sue"), OpEq, true},
		{Boolean(false), Boolean(true), OpLt, true},
		{String("b"), String("a"), OpNe, true},
		{Integer(5), Integer(5), OpLe, true},
	}
	for i, c := range cases {
		got, err := CompareAtomic(c.a, c.b, c.op)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Fatalf("case %d: %v %v %v = %v, want %v", i, c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestCompareAtomicErrors(t *testing.T) {
	if _, err := CompareAtomic(Boolean(true), Integer(1), OpEq); err == nil {
		t.Fatal("boolean vs integer should not compare")
	}
	if _, err := CompareAtomic(Untyped("zz"), Integer(1), OpEq); err == nil {
		t.Fatal("non-numeric untyped vs integer should fail cast")
	}
}

func TestTemporalComparison(t *testing.T) {
	d1 := Date{T: time.Date(2006, 1, 2, 0, 0, 0, 0, time.UTC)}
	d2 := Date{T: time.Date(2006, 3, 4, 0, 0, 0, 0, time.UTC)}
	lt, err := CompareAtomic(d1, d2, OpLt)
	if err != nil || !lt {
		t.Fatalf("date compare: %v %v", lt, err)
	}
	// String vs temporal compares lexically (ISO order == temporal order).
	ok, err := CompareAtomic(String("2006-01-02"), d2, OpLt)
	if err != nil || !ok {
		t.Fatalf("string-vs-date compare: %v %v", ok, err)
	}
	// Untyped casts to the temporal type.
	ok, err = CompareAtomic(Untyped("2006-01-02"), d1, OpEq)
	if err != nil || !ok {
		t.Fatalf("untyped-vs-date compare: %v %v", ok, err)
	}
}

func TestArithPromotion(t *testing.T) {
	got, err := Arith(Integer(2), Integer(3), OpAdd)
	if err != nil || got.(Integer) != 5 {
		t.Fatalf("2+3 = %v, %v", got, err)
	}
	got, err = Arith(Integer(7), Integer(2), OpDiv)
	if err != nil {
		t.Fatalf("7 div 2: %v", err)
	}
	if d, ok := got.(Decimal); !ok || float64(d) != 3.5 {
		t.Fatalf("7 div 2 = %#v (XQuery div promotes to decimal)", got)
	}
	got, err = Arith(Decimal(1.5), Integer(2), OpMul)
	if err != nil || float64(got.(Decimal)) != 3.0 {
		t.Fatalf("1.5*2 = %v, %v", got, err)
	}
	got, err = Arith(Double(1), Integer(2), OpSub)
	if err != nil || float64(got.(Double)) != -1 {
		t.Fatalf("1e0-2 = %v, %v", got, err)
	}
	got, err = Arith(Untyped("4"), Integer(2), OpDiv)
	if err != nil || float64(got.(Double)) != 2 {
		t.Fatalf("untyped arithmetic should go through double: %v, %v", got, err)
	}
	if _, err := Arith(Integer(1), Integer(0), OpMod); err == nil {
		t.Fatal("mod by zero should error")
	}
	if _, err := Arith(String("a"), Integer(1), OpAdd); err == nil {
		t.Fatal("string arithmetic should error")
	}
	got, err = Arith(Integer(7), Integer(3), OpMod)
	if err != nil || got.(Integer) != 1 {
		t.Fatalf("7 mod 3 = %v, %v", got, err)
	}
}

func TestNegate(t *testing.T) {
	if v, err := Negate(Integer(5)); err != nil || v.(Integer) != -5 {
		t.Fatalf("negate int: %v %v", v, err)
	}
	if v, err := Negate(Decimal(2.5)); err != nil || float64(v.(Decimal)) != -2.5 {
		t.Fatalf("negate decimal: %v %v", v, err)
	}
	if v, err := Negate(Untyped("3")); err != nil || float64(v.(Double)) != -3 {
		t.Fatalf("negate untyped: %v %v", v, err)
	}
	if _, err := Negate(String("x")); err == nil {
		t.Fatal("negate string should error")
	}
}

func TestCastLexicalForms(t *testing.T) {
	cases := []struct {
		in      Atomic
		target  AtomicType
		lexical string
	}{
		{Untyped(" 42 "), TypeInteger, "42"},
		{Untyped("10.0"), TypeInteger, "10"},
		{String("3.25"), TypeDecimal, "3.25"},
		{Integer(5), TypeDouble, "5"},
		{Integer(1), TypeBoolean, "true"},
		{Boolean(true), TypeInteger, "1"},
		{Decimal(2.75), TypeInteger, "2"},
		{Double(3.99), TypeInteger, "3"},
		{String("true"), TypeBoolean, "true"},
		{String("0"), TypeBoolean, "false"},
		{Integer(42), TypeString, "42"},
		{String("2006-01-02"), TypeDate, "2006-01-02"},
		{String("13:14:15"), TypeTime, "13:14:15"},
		{String("2006-01-02T13:14:15"), TypeDateTime, "2006-01-02T13:14:15"},
		{String("INF"), TypeDouble, "INF"},
	}
	for i, c := range cases {
		got, err := Cast(c.in, c.target)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Type() != c.target {
			t.Fatalf("case %d: type = %v", i, got.Type())
		}
		if got.Lexical() != c.lexical {
			t.Fatalf("case %d: lexical = %q want %q", i, got.Lexical(), c.lexical)
		}
	}
}

func TestCastErrors(t *testing.T) {
	if _, err := Cast(String("abc"), TypeInteger); err == nil {
		t.Fatal("string 'abc' to integer should fail")
	}
	if _, err := Cast(String("1.5"), TypeInteger); err == nil {
		t.Fatal("non-integral decimal lexical to integer should fail")
	}
	if _, err := Cast(String("maybe"), TypeBoolean); err == nil {
		t.Fatal("bad boolean lexical should fail")
	}
	if _, err := Cast(Double(math.NaN()), TypeInteger); err == nil {
		t.Fatal("NaN to integer should fail")
	}
	if _, err := Cast(String("not-a-date"), TypeDate); err == nil {
		t.Fatal("bad date lexical should fail")
	}
}

func TestCastDateTimeConversions(t *testing.T) {
	dt, err := ParseAtomic("2006-01-02T13:14:15", TypeDateTime)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Cast(dt, TypeDate)
	if err != nil || d.Lexical() != "2006-01-02" {
		t.Fatalf("dateTime→date: %v %v", d, err)
	}
	tm, err := Cast(dt, TypeTime)
	if err != nil || tm.Lexical() != "13:14:15" {
		t.Fatalf("dateTime→time: %v %v", tm, err)
	}
	d2, err := ParseAtomic("2006-01-02", TypeDate)
	if err != nil {
		t.Fatal(err)
	}
	dt2, err := Cast(d2, TypeDateTime)
	if err != nil || dt2.Lexical() != "2006-01-02T00:00:00" {
		t.Fatalf("date→dateTime: %v %v", dt2, err)
	}
}

func TestMarshalEscaping(t *testing.T) {
	e := NewElement("ROW")
	e.AddChild(NewTextElement("NAME", `Acme <Widgets> & "Sons"`))
	got := Marshal(e)
	want := `<ROW><NAME>Acme &lt;Widgets&gt; &amp; "Sons"</NAME></ROW>`
	if got != want {
		t.Fatalf("got %s", got)
	}
}

func TestMarshalWhitespaceRoundTrip(t *testing.T) {
	// A literal CR in text is normalized to LF by any conforming parser,
	// and literal tab/newline in attributes normalize to spaces; only
	// character references survive the trip.
	e := NewElement("ROW")
	e.SetAttr(QName{Local: "note"}, "a\tb\nc\rd")
	e.AddChild(NewTextElement("MEMO", "line1\r\nline2\rend"))
	doc, err := ParseString(Marshal(e))
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if got, _ := root.Attribute("note"); got != "a\tb\nc\rd" {
		t.Fatalf("attr = %q", got)
	}
	if got := root.FirstChildElement("MEMO").StringValue(); got != "line1\r\nline2\rend" {
		t.Fatalf("text = %q", got)
	}
}

func TestMarshalNamespaceAndAttrs(t *testing.T) {
	e := &Element{Name: QName{Space: "ld:Test/CUSTOMERS", Prefix: "ns0", Local: "CUSTOMERS"}}
	e.SetAttr(QName{Local: "id"}, `a"b`)
	e.AddChild(NewTextElement("CUSTOMERID", "55"))
	got := Marshal(e)
	want := `<ns0:CUSTOMERS xmlns:ns0="ld:Test/CUSTOMERS" id="a&quot;b"><CUSTOMERID>55</CUSTOMERID></ns0:CUSTOMERS>`
	if got != want {
		t.Fatalf("got %s", got)
	}
}

func TestMarshalEmptyElement(t *testing.T) {
	if got := Marshal(NewElement("NIL")); got != "<NIL/>" {
		t.Fatalf("got %s", got)
	}
}

func TestMarshalSequence(t *testing.T) {
	s := SequenceOf(Integer(1), Integer(2), NewTextElement("X", "y"), Integer(3))
	got := MarshalSequence(s)
	if got != "1 2<X>y</X>3" {
		t.Fatalf("got %q", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `<RECORDSET><RECORD><ID>55</ID><NAME>Joe &amp; Sons</NAME></RECORD><RECORD><ID>23</ID><NAME>Sue</NAME></RECORD></RECORDSET>`
	doc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if root == nil || root.Name.Local != "RECORDSET" {
		t.Fatalf("root = %v", root)
	}
	recs := root.ChildElements("RECORD")
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].FirstChildElement("NAME").StringValue() != "Joe & Sons" {
		t.Fatalf("unescape failed: %q", recs[0].FirstChildElement("NAME").StringValue())
	}
	if Marshal(root) != src {
		t.Fatalf("round trip:\n in: %s\nout: %s", src, Marshal(root))
	}
}

func TestParseNamespaces(t *testing.T) {
	src := `<ns0:CUSTOMERS xmlns:ns0="ld:Test/CUSTOMERS"><CUSTOMERID>55</CUSTOMERID></ns0:CUSTOMERS>`
	el, err := ParseElement(src)
	if err != nil {
		t.Fatal(err)
	}
	if el.Name.Space != "ld:Test/CUSTOMERS" || el.Name.Local != "CUSTOMERS" {
		t.Fatalf("name = %+v", el.Name)
	}
	if el.FirstChildElement("CUSTOMERID").StringValue() != "55" {
		t.Fatal("child lookup through namespaced parent failed")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("<A><B></A>"); err == nil {
		t.Fatal("mismatched tags should fail")
	}
	if _, err := ParseElement(""); err == nil {
		t.Fatal("empty payload should fail")
	}
}

func TestTrimBoundaryWhitespace(t *testing.T) {
	doc, err := ParseString("<A>\n  <B>x</B>\n  <C> keep me </C>\n</A>")
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	TrimBoundaryWhitespace(root)
	if len(root.Children) != 2 {
		t.Fatalf("children = %d: %v", len(root.Children), Marshal(root))
	}
	if root.FirstChildElement("C").StringValue() != " keep me " {
		t.Fatal("non-boundary text must be preserved")
	}
}

func TestDeepEqual(t *testing.T) {
	a := NewElement("R")
	a.AddChild(NewTextElement("ID", "1"))
	b := a.Clone()
	if !DeepEqual(SequenceOf(a), SequenceOf(b)) {
		t.Fatal("clones should be deep-equal")
	}
	b.ChildElements("ID")[0].Children[0].(*Text).Value = "2"
	if DeepEqual(SequenceOf(a), SequenceOf(b)) {
		t.Fatal("different text should not be deep-equal")
	}
	if !DeepEqual(SequenceOf(Integer(1)), SequenceOf(Decimal(1))) {
		t.Fatal("numerically equal atomics should be deep-equal")
	}
	if DeepEqual(SequenceOf(Integer(1)), SequenceOf(a)) {
		t.Fatal("atomic vs node should not be deep-equal")
	}
	if DeepEqual(SequenceOf(Integer(1)), SequenceOf(Integer(1), Integer(2))) {
		t.Fatal("length mismatch should not be deep-equal")
	}
}

func TestSortKeyDistinguishesNullFromEmpty(t *testing.T) {
	withEmpty := NewElement("R")
	withEmpty.AddChild(NewElement("A")) // empty element: value "", but present
	withoutA := NewElement("R")         // column absent: SQL NULL
	if SortKey(withEmpty) == SortKey(withoutA) {
		t.Fatal("empty string and NULL must have distinct row keys")
	}
}

func TestSortedAtomics(t *testing.T) {
	s := SequenceOf(Integer(3), Integer(1), Integer(2))
	atoms := SortedAtomics(s)
	if len(atoms) != 3 || atoms[0].(Integer) != 1 || atoms[2].(Integer) != 3 {
		t.Fatalf("sorted = %v", atoms)
	}
}

func TestMarshalIndentReadable(t *testing.T) {
	e := NewElement("RECORDSET")
	r := NewElement("RECORD")
	r.AddChild(NewTextElement("ID", "1"))
	e.AddChild(r)
	out := MarshalIndent(e)
	if !strings.Contains(out, "  <RECORD>") || !strings.Contains(out, "    <ID>1</ID>") {
		t.Fatalf("indentation wrong:\n%s", out)
	}
}

func TestEscapeTextFastPath(t *testing.T) {
	s := "plain text without specials"
	if EscapeText(s) != s {
		t.Fatal("fast path should return input unchanged")
	}
}
