// Package xdm implements the subset of the XQuery 1.0 Data Model that the
// AquaLogic-style SQL-to-XQuery pipeline needs: sequences of items, where an
// item is either an atomic value (typed per XML Schema) or an XML node.
//
// The package also provides the data-model operations the XQuery evaluator is
// built on: atomization (fn:data), string value, effective boolean value,
// value and general comparisons with type promotion, arithmetic, and casts.
package xdm

import (
	"fmt"
	"strings"
)

// Item is a single member of an XQuery sequence: an atomic value or a node.
type Item interface {
	// Kind reports the item's dynamic kind for diagnostics and dispatch.
	Kind() ItemKind
	// String returns a human-readable rendering (not XML serialization;
	// see Marshal for that).
	String() string
}

// ItemKind discriminates the dynamic type of an Item.
type ItemKind int

// Item kinds.
const (
	KindAtomic ItemKind = iota
	KindElement
	KindText
	KindAttribute
	KindDocument
)

func (k ItemKind) String() string {
	switch k {
	case KindAtomic:
		return "atomic"
	case KindElement:
		return "element"
	case KindText:
		return "text"
	case KindAttribute:
		return "attribute"
	case KindDocument:
		return "document"
	default:
		return fmt.Sprintf("ItemKind(%d)", int(k))
	}
}

// Sequence is the universal value of the XQuery data model: an ordered list
// of items. A nil or empty Sequence is the empty sequence, which plays the
// role of SQL NULL throughout the translation scheme.
type Sequence []Item

// Empty reports whether the sequence has no items (XQuery fn:empty).
func (s Sequence) Empty() bool { return len(s) == 0 }

// Singleton returns the sole item of a one-item sequence.
// It returns an error for the empty sequence or a longer one.
func (s Sequence) Singleton() (Item, error) {
	switch len(s) {
	case 1:
		return s[0], nil
	case 0:
		return nil, fmt.Errorf("xdm: expected singleton, got empty sequence")
	default:
		return nil, fmt.Errorf("xdm: expected singleton, got sequence of %d items", len(s))
	}
}

// Append returns s extended with items; it exists for readability at call
// sites that assemble result sequences.
func (s Sequence) Append(items ...Item) Sequence { return append(s, items...) }

// Concat concatenates sequences into a new sequence.
func Concat(seqs ...Sequence) Sequence {
	n := 0
	for _, s := range seqs {
		n += len(s)
	}
	out := make(Sequence, 0, n)
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}

// SequenceOf builds a sequence from items, dropping nils.
func SequenceOf(items ...Item) Sequence {
	out := make(Sequence, 0, len(items))
	for _, it := range items {
		if it != nil {
			out = append(out, it)
		}
	}
	return out
}

func (s Sequence) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// QName is an expanded XML name. Prefix is retained for serialization only;
// equality is by namespace URI and local part, per the XML data model.
type QName struct {
	Space  string // namespace URI, may be empty
	Prefix string // lexical prefix used when serializing, may be empty
	Local  string
}

// Equal reports whether two names match by (namespace, local) pair.
func (q QName) Equal(o QName) bool { return q.Space == o.Space && q.Local == o.Local }

func (q QName) String() string {
	if q.Prefix != "" {
		return q.Prefix + ":" + q.Local
	}
	return q.Local
}

// Node is an XML node item. The model keeps only what the JDBC-driver
// pipeline touches: documents, elements, attributes and text.
type Node interface {
	Item
	// StringValue returns the node's string value per the XQuery data
	// model (concatenation of descendant text for elements/documents).
	StringValue() string
}

// Attr is an attribute node attached to an element.
type Attr struct {
	Name  QName
	Value string
}

// Kind implements Item.
func (a *Attr) Kind() ItemKind { return KindAttribute }

// StringValue implements Node.
func (a *Attr) StringValue() string { return a.Value }

func (a *Attr) String() string { return fmt.Sprintf("attribute %s=%q", a.Name, a.Value) }

// Text is a text node.
type Text struct {
	Value string
}

// Kind implements Item.
func (t *Text) Kind() ItemKind { return KindText }

// StringValue implements Node.
func (t *Text) StringValue() string { return t.Value }

func (t *Text) String() string { return fmt.Sprintf("text %q", t.Value) }

// Element is an element node with attributes and ordered children
// (elements and text nodes).
type Element struct {
	Name     QName
	Attrs    []*Attr
	Children []Node
}

// Kind implements Item.
func (e *Element) Kind() ItemKind { return KindElement }

// StringValue implements Node: the concatenated text of all descendants.
func (e *Element) StringValue() string {
	var b strings.Builder
	e.appendText(&b)
	return b.String()
}

func (e *Element) appendText(b *strings.Builder) {
	for _, c := range e.Children {
		switch c := c.(type) {
		case *Text:
			b.WriteString(c.Value)
		case *Element:
			c.appendText(b)
		}
	}
}

func (e *Element) String() string { return fmt.Sprintf("element %s", e.Name) }

// AddChild appends a child node.
func (e *Element) AddChild(n Node) { e.Children = append(e.Children, n) }

// AddText appends a text child (no-op for the empty string, matching the
// data model's prohibition on empty text nodes).
func (e *Element) AddText(s string) {
	if s != "" {
		e.Children = append(e.Children, &Text{Value: s})
	}
}

// SetAttr sets or replaces an attribute by name.
func (e *Element) SetAttr(name QName, value string) {
	for _, a := range e.Attrs {
		if a.Name.Equal(name) {
			a.Value = value
			return
		}
	}
	e.Attrs = append(e.Attrs, &Attr{Name: name, Value: value})
}

// Attribute returns the value of the named attribute.
func (e *Element) Attribute(local string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// ChildElements returns the element children whose local name matches local.
// A "*" local name matches every element child. This is the child axis step
// the generated XQueries use ($row/COLUMN).
func (e *Element) ChildElements(local string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok && (local == "*" || el.Name.Local == local) {
			out = append(out, el)
		}
	}
	return out
}

// FirstChildElement returns the first element child with the local name, or
// nil if absent. Absence of a column element is how SQL NULL travels.
func (e *Element) FirstChildElement(local string) *Element {
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok && el.Name.Local == local {
			return el
		}
	}
	return nil
}

// Clone returns a deep copy of the element.
func (e *Element) Clone() *Element {
	cp := &Element{Name: e.Name}
	if len(e.Attrs) > 0 {
		cp.Attrs = make([]*Attr, len(e.Attrs))
		for i, a := range e.Attrs {
			dup := *a
			cp.Attrs[i] = &dup
		}
	}
	if len(e.Children) > 0 {
		cp.Children = make([]Node, len(e.Children))
		for i, c := range e.Children {
			switch c := c.(type) {
			case *Element:
				cp.Children[i] = c.Clone()
			case *Text:
				cp.Children[i] = &Text{Value: c.Value}
			default:
				cp.Children[i] = c
			}
		}
	}
	return cp
}

// Document is a document node; the pipeline uses it only when parsing whole
// XML payloads on the result-handling path.
type Document struct {
	Children []Node
}

// Kind implements Item.
func (d *Document) Kind() ItemKind { return KindDocument }

// StringValue implements Node.
func (d *Document) StringValue() string {
	var b strings.Builder
	for _, c := range d.Children {
		switch c := c.(type) {
		case *Text:
			b.WriteString(c.Value)
		case *Element:
			c.appendText(&b)
		}
	}
	return b.String()
}

func (d *Document) String() string { return "document" }

// Root returns the document's root element, or nil.
func (d *Document) Root() *Element {
	for _, c := range d.Children {
		if el, ok := c.(*Element); ok {
			return el
		}
	}
	return nil
}

// NewElement is a convenience constructor for an element with a local name
// in no namespace.
func NewElement(local string) *Element { return &Element{Name: QName{Local: local}} }

// NewTextElement builds <local>text</local>.
func NewTextElement(local, text string) *Element {
	e := NewElement(local)
	e.AddText(text)
	return e
}

// Atomize implements fn:data over a sequence: atomic items pass through,
// nodes contribute their typed value. Untyped node content becomes
// xs:untypedAtomic so that comparisons can promote it contextually.
func Atomize(s Sequence) Sequence {
	out := make(Sequence, 0, len(s))
	for _, it := range s {
		switch v := it.(type) {
		case Node:
			out = append(out, Untyped(v.StringValue()))
		default:
			out = append(out, it)
		}
	}
	return out
}

// StringValue returns the string value of any item.
func StringValue(it Item) string {
	switch v := it.(type) {
	case Node:
		return v.StringValue()
	case Atomic:
		return v.Lexical()
	default:
		return it.String()
	}
}

// EffectiveBool computes the XQuery effective boolean value of a sequence:
// empty is false; a sequence whose first item is a node is true; a singleton
// boolean/number/string follows the usual rules.
func EffectiveBool(s Sequence) (bool, error) {
	if len(s) == 0 {
		return false, nil
	}
	if _, ok := s[0].(Node); ok {
		return true, nil
	}
	if len(s) > 1 {
		return false, fmt.Errorf("xdm: effective boolean value of sequence of %d atomic items is undefined", len(s))
	}
	switch v := s[0].(type) {
	case Boolean:
		return bool(v), nil
	case String:
		return len(v) > 0, nil
	case Untyped:
		return len(v) > 0, nil
	case Integer:
		return v != 0, nil
	case Decimal:
		return v != 0, nil
	case Double:
		return v == v && v != 0, nil // NaN is false
	default:
		return false, fmt.Errorf("xdm: effective boolean value undefined for %s", s[0].Kind())
	}
}

// DeepEqual reports whether two sequences are deep-equal per fn:deep-equal
// (pairwise: atomic values compare eq, nodes compare structurally).
func DeepEqual(a, b Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !deepEqualItem(a[i], b[i]) {
			return false
		}
	}
	return true
}

func deepEqualItem(a, b Item) bool {
	an, aok := a.(Node)
	bn, bok := b.(Node)
	if aok != bok {
		return false
	}
	if aok {
		return deepEqualNode(an, bn)
	}
	av, aIsAtomic := a.(Atomic)
	bv, bIsAtomic := b.(Atomic)
	if !aIsAtomic || !bIsAtomic {
		return false
	}
	eq, err := CompareAtomic(av, bv, OpEq)
	return err == nil && eq
}

func deepEqualNode(a, b Node) bool {
	switch a := a.(type) {
	case *Text:
		bt, ok := b.(*Text)
		return ok && a.Value == bt.Value
	case *Attr:
		ba, ok := b.(*Attr)
		return ok && a.Name.Equal(ba.Name) && a.Value == ba.Value
	case *Element:
		be, ok := b.(*Element)
		if !ok || !a.Name.Equal(be.Name) || len(a.Attrs) != len(be.Attrs) || len(a.Children) != len(be.Children) {
			return false
		}
		for _, attr := range a.Attrs {
			v, found := be.Attribute(attr.Name.Local)
			if !found || v != attr.Value {
				return false
			}
		}
		for i := range a.Children {
			if !deepEqualNode(a.Children[i], be.Children[i]) {
				return false
			}
		}
		return true
	case *Document:
		bd, ok := b.(*Document)
		if !ok || len(a.Children) != len(bd.Children) {
			return false
		}
		for i := range a.Children {
			if !deepEqualNode(a.Children[i], bd.Children[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
