package xdm

import (
	"strings"
	"testing"
)

// TestCastMatrix exercises every meaningful source→target cast pair.
func TestCastMatrix(t *testing.T) {
	d, _ := ParseAtomic("2006-07-05", TypeDate)
	dt, _ := ParseAtomic("2006-07-05T10:20:30", TypeDateTime)
	tm, _ := ParseAtomic("10:20:30", TypeTime)

	cases := []struct {
		in     Atomic
		target AtomicType
		want   string
		fails  bool
	}{
		// → boolean
		{Integer(0), TypeBoolean, "false", false},
		{Decimal(1.5), TypeBoolean, "true", false},
		{Double(0), TypeBoolean, "false", false},
		{Untyped("1"), TypeBoolean, "true", false},
		{d, TypeBoolean, "", true},
		// → integer
		{Boolean(false), TypeInteger, "0", false},
		{Decimal(-2.9), TypeInteger, "-2", false},
		{Double(7.99), TypeInteger, "7", false},
		{d, TypeInteger, "", true},
		// → decimal
		{Boolean(true), TypeDecimal, "1", false},
		{Boolean(false), TypeDecimal, "0", false},
		{Integer(3), TypeDecimal, "3", false},
		{Double(2.25), TypeDecimal, "2.25", false},
		{Untyped("x"), TypeDecimal, "", true},
		{d, TypeDecimal, "", true},
		// → double
		{Boolean(true), TypeDouble, "1", false},
		{Boolean(false), TypeDouble, "0", false},
		{Decimal(0.5), TypeDouble, "0.5", false},
		{Untyped("-INF"), TypeDouble, "-INF", false},
		{Untyped("NaN"), TypeDouble, "NaN", false},
		{d, TypeDouble, "", true},
		// → string / untyped
		{dt, TypeString, "2006-07-05T10:20:30", false},
		{tm, TypeUntyped, "10:20:30", false},
		// temporal conversions
		{dt, TypeDate, "2006-07-05", false},
		{dt, TypeTime, "10:20:30", false},
		{d, TypeDateTime, "2006-07-05T00:00:00", false},
		{Integer(5), TypeDate, "", true},
		{Boolean(true), TypeTime, "", true},
	}
	for i, c := range cases {
		got, err := Cast(c.in, c.target)
		if c.fails {
			if err == nil {
				t.Errorf("case %d: Cast(%v, %v) should fail, got %v", i, c.in, c.target, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("case %d: Cast(%v, %v): %v", i, c.in, c.target, err)
			continue
		}
		if got.Lexical() != c.want {
			t.Errorf("case %d: Cast(%v, %v) = %q, want %q", i, c.in, c.target, got.Lexical(), c.want)
		}
	}
}

// TestArithBranches covers decimal/double arithmetic including the error
// branches (division and modulus by zero are errors for exact numerics but
// defined for doubles).
func TestArithBranches(t *testing.T) {
	if _, err := Arith(Decimal(1), Decimal(0), OpDiv); err == nil {
		t.Fatal("decimal division by zero should error")
	}
	if _, err := Arith(Decimal(1), Decimal(0), OpMod); err == nil {
		t.Fatal("decimal modulus by zero should error")
	}
	v, err := Arith(Double(1), Double(0), OpDiv)
	if err != nil || v.Lexical() != "INF" {
		t.Fatalf("1e0 div 0 = %v, %v (IEEE semantics)", v, err)
	}
	v, err = Arith(Decimal(7.5), Decimal(2), OpMod)
	if err != nil || v.Lexical() != "1.5" {
		t.Fatalf("7.5 mod 2 = %v, %v", v, err)
	}
	v, err = Arith(Double(9), Integer(2), OpMod)
	if err != nil || v.Lexical() != "1" {
		t.Fatalf("9e0 mod 2 = %v, %v", v, err)
	}
	// Subtraction and multiplication in decimal class.
	v, _ = Arith(Decimal(5), Decimal(1.5), OpSub)
	if v.Lexical() != "3.5" {
		t.Fatalf("5 - 1.5 = %v", v)
	}
}

// TestStringersAndKinds pins the diagnostic renderings used in error
// messages (they appear in user-facing driver errors).
func TestStringersAndKinds(t *testing.T) {
	d, _ := ParseAtomic("2006-07-05", TypeDate)
	tm, _ := ParseAtomic("10:00:00", TypeTime)
	dt, _ := ParseAtomic("2006-07-05T10:00:00", TypeDateTime)
	items := []struct {
		it   Item
		kind ItemKind
		str  string
	}{
		{String("x"), KindAtomic, `"x"`},
		{Untyped("u"), KindAtomic, `untypedAtomic("u")`},
		{Boolean(true), KindAtomic, "true"},
		{Integer(7), KindAtomic, "7"},
		{Decimal(1.5), KindAtomic, "1.5"},
		{Double(2), KindAtomic, "2"},
		{d, KindAtomic, "2006-07-05"},
		{tm, KindAtomic, "10:00:00"},
		{dt, KindAtomic, "2006-07-05T10:00:00"},
		{NewElement("E"), KindElement, "element E"},
		{&Text{Value: "t"}, KindText, `text "t"`},
		{&Attr{Name: QName{Local: "a"}, Value: "v"}, KindAttribute, `attribute a="v"`},
		{&Document{}, KindDocument, "document"},
	}
	for i, c := range items {
		if c.it.Kind() != c.kind {
			t.Errorf("case %d: kind = %v", i, c.it.Kind())
		}
		if c.it.String() != c.str {
			t.Errorf("case %d: String() = %q, want %q", i, c.it.String(), c.str)
		}
	}
	for k := KindAtomic; k <= KindDocument; k++ {
		if strings.Contains(k.String(), "ItemKind(") {
			t.Errorf("missing name for kind %d", k)
		}
	}
	if (Sequence{Integer(1), Integer(2)}).String() != "(1, 2)" {
		t.Fatal("sequence String")
	}
	if (QName{Prefix: "p", Local: "l"}).String() != "p:l" {
		t.Fatal("qname String")
	}
}

func TestMarshalStandaloneNodes(t *testing.T) {
	// A document and a bare attribute/text serialize sensibly.
	doc := &Document{Children: []Node{NewTextElement("A", "x")}}
	if Marshal(doc) != "<A>x</A>" {
		t.Fatalf("doc = %q", Marshal(doc))
	}
	if Marshal(&Text{Value: "a<b"}) != "a&lt;b" {
		t.Fatal("text marshal")
	}
	if Marshal(&Attr{Name: QName{Local: "k"}, Value: "v<"}) != "v&lt;" {
		t.Fatal("attr marshal")
	}
	if doc.StringValue() != "x" {
		t.Fatal("doc string value")
	}
	// Default-namespace element (no prefix).
	e := &Element{Name: QName{Space: "urn:d", Local: "E"}}
	if got := Marshal(e); got != `<E xmlns="urn:d"/>` {
		t.Fatalf("default ns = %q", got)
	}
}

func TestSequenceAppend(t *testing.T) {
	s := Sequence{}.Append(Integer(1)).Append(Integer(2), Integer(3))
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
}

func TestOperatorStringers(t *testing.T) {
	ops := []string{OpEq.String(), OpNe.String(), OpLt.String(), OpLe.String(), OpGt.String(), OpGe.String()}
	if strings.Join(ops, " ") != "eq ne lt le gt ge" {
		t.Fatalf("compare ops = %v", ops)
	}
	arith := []string{OpAdd.String(), OpSub.String(), OpMul.String(), OpDiv.String(), OpMod.String()}
	if strings.Join(arith, " ") != "+ - * div mod" {
		t.Fatalf("arith ops = %v", arith)
	}
	for at := TypeUntyped; at <= TypeDateTime; at++ {
		if strings.Contains(at.String(), "AtomicType(") {
			t.Errorf("missing name for atomic type %d", at)
		}
	}
}

func TestDateVsDateTimePromotion(t *testing.T) {
	d, _ := ParseAtomic("2006-07-05", TypeDate)
	dtMidnight, _ := ParseAtomic("2006-07-05T00:00:00", TypeDateTime)
	dtLater, _ := ParseAtomic("2006-07-05T10:00:00", TypeDateTime)
	eq, err := CompareAtomic(d, dtMidnight, OpEq)
	if err != nil || !eq {
		t.Fatalf("date vs midnight dateTime: %v %v", eq, err)
	}
	lt, err := CompareAtomic(d, dtLater, OpLt)
	if err != nil || !lt {
		t.Fatalf("date vs later dateTime: %v %v", lt, err)
	}
	gt, err := CompareAtomic(dtLater, d, OpGt)
	if err != nil || !gt {
		t.Fatalf("dateTime vs date: %v %v", gt, err)
	}
	// Time still does not compare with date.
	tm, _ := ParseAtomic("10:00:00", TypeTime)
	if _, err := CompareAtomic(tm, d, OpEq); err == nil {
		t.Fatal("time vs date should not compare")
	}
}
