package xdm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// AtomicType enumerates the XML Schema atomic types the pipeline uses. SQL
// column types map onto these (INTEGER→xs:integer, VARCHAR→xs:string,
// DECIMAL→xs:decimal, DOUBLE/FLOAT→xs:double, DATE→xs:date, …).
type AtomicType int

// Atomic types, ordered so that numeric promotion can compare ranks
// (integer < decimal < double).
const (
	TypeUntyped AtomicType = iota
	TypeString
	TypeBoolean
	TypeInteger
	TypeDecimal
	TypeDouble
	TypeDate
	TypeTime
	TypeDateTime
)

// String returns the xs: name of the type as it appears in generated XQuery.
func (t AtomicType) String() string {
	switch t {
	case TypeUntyped:
		return "xs:untypedAtomic"
	case TypeString:
		return "xs:string"
	case TypeBoolean:
		return "xs:boolean"
	case TypeInteger:
		return "xs:integer"
	case TypeDecimal:
		return "xs:decimal"
	case TypeDouble:
		return "xs:double"
	case TypeDate:
		return "xs:date"
	case TypeTime:
		return "xs:time"
	case TypeDateTime:
		return "xs:dateTime"
	default:
		return fmt.Sprintf("AtomicType(%d)", int(t))
	}
}

// Numeric reports whether the type participates in arithmetic promotion.
func (t AtomicType) Numeric() bool {
	return t == TypeInteger || t == TypeDecimal || t == TypeDouble
}

// Temporal reports whether the type is a date/time type.
func (t AtomicType) Temporal() bool {
	return t == TypeDate || t == TypeTime || t == TypeDateTime
}

// Atomic is an atomic value item.
type Atomic interface {
	Item
	// Type returns the value's atomic type.
	Type() AtomicType
	// Lexical returns the canonical lexical form (what serialize-atomic
	// emits and what casting from string parses).
	Lexical() string
}

// Untyped is xs:untypedAtomic: the type of atomized element content in a
// schemaless world. It promotes to whatever the other comparison operand is.
type Untyped string

// Kind implements Item.
func (Untyped) Kind() ItemKind { return KindAtomic }

// Type implements Atomic.
func (Untyped) Type() AtomicType { return TypeUntyped }

// Lexical implements Atomic.
func (v Untyped) Lexical() string { return string(v) }

func (v Untyped) String() string { return fmt.Sprintf("untypedAtomic(%q)", string(v)) }

// String is xs:string.
type String string

// Kind implements Item.
func (String) Kind() ItemKind { return KindAtomic }

// Type implements Atomic.
func (String) Type() AtomicType { return TypeString }

// Lexical implements Atomic.
func (v String) Lexical() string { return string(v) }

func (v String) String() string { return strconv.Quote(string(v)) }

// Boolean is xs:boolean.
type Boolean bool

// Kind implements Item.
func (Boolean) Kind() ItemKind { return KindAtomic }

// Type implements Atomic.
func (Boolean) Type() AtomicType { return TypeBoolean }

// Lexical implements Atomic.
func (v Boolean) Lexical() string {
	if v {
		return "true"
	}
	return "false"
}

func (v Boolean) String() string { return v.Lexical() }

// Integer is xs:integer (64-bit here, ample for SQL-92 reporting workloads).
type Integer int64

// Kind implements Item.
func (Integer) Kind() ItemKind { return KindAtomic }

// Type implements Atomic.
func (Integer) Type() AtomicType { return TypeInteger }

// Lexical implements Atomic.
func (v Integer) Lexical() string { return strconv.FormatInt(int64(v), 10) }

func (v Integer) String() string { return v.Lexical() }

// Decimal is xs:decimal. It is represented as a float64; the translator's
// contract (shape of results, not bit-exact money arithmetic) tolerates
// this, and DESIGN.md records the approximation.
type Decimal float64

// Kind implements Item.
func (Decimal) Kind() ItemKind { return KindAtomic }

// Type implements Atomic.
func (Decimal) Type() AtomicType { return TypeDecimal }

// Lexical implements Atomic.
func (v Decimal) Lexical() string { return formatDecimal(float64(v)) }

func (v Decimal) String() string { return v.Lexical() }

// Double is xs:double.
type Double float64

// Kind implements Item.
func (Double) Kind() ItemKind { return KindAtomic }

// Type implements Atomic.
func (Double) Type() AtomicType { return TypeDouble }

// Lexical implements Atomic.
func (v Double) Lexical() string {
	f := float64(v)
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func (v Double) String() string { return v.Lexical() }

// Date is xs:date (time-of-day zeroed, UTC).
type Date struct{ T time.Time }

// Kind implements Item.
func (Date) Kind() ItemKind { return KindAtomic }

// Type implements Atomic.
func (Date) Type() AtomicType { return TypeDate }

// Lexical implements Atomic.
func (v Date) Lexical() string { return v.T.Format("2006-01-02") }

func (v Date) String() string { return v.Lexical() }

// Time is xs:time.
type Time struct{ T time.Time }

// Kind implements Item.
func (Time) Kind() ItemKind { return KindAtomic }

// Type implements Atomic.
func (Time) Type() AtomicType { return TypeTime }

// Lexical implements Atomic.
func (v Time) Lexical() string { return v.T.Format("15:04:05") }

func (v Time) String() string { return v.Lexical() }

// DateTime is xs:dateTime.
type DateTime struct{ T time.Time }

// Kind implements Item.
func (DateTime) Kind() ItemKind { return KindAtomic }

// Type implements Atomic.
func (DateTime) Type() AtomicType { return TypeDateTime }

// Lexical implements Atomic.
func (v DateTime) Lexical() string { return v.T.Format("2006-01-02T15:04:05") }

func (v DateTime) String() string { return v.Lexical() }

// formatDecimal renders a decimal without exponent notation, trimming
// trailing zeros but keeping at least one integer digit.
func formatDecimal(f float64) string {
	s := strconv.FormatFloat(f, 'f', -1, 64)
	return s
}

// CompareOp is a value-comparison operator.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "eq"
	case OpNe:
		return "ne"
	case OpLt:
		return "lt"
	case OpLe:
		return "le"
	case OpGt:
		return "gt"
	case OpGe:
		return "ge"
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// CompareAtomic applies a value comparison to two atomic values, promoting
// numerics and casting untypedAtomic to the other operand's type (the
// XQuery general-comparison rule the generated queries rely on).
func CompareAtomic(a, b Atomic, op CompareOp) (bool, error) {
	c, err := OrderAtomic(a, b)
	if err != nil {
		return false, err
	}
	switch op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("xdm: unknown comparison operator %v", op)
	}
}

// OrderAtomic returns -1, 0 or +1 ordering two atomic values after
// promotion. It is the comparator the order-by and group-by implementations
// use as well.
func OrderAtomic(a, b Atomic) (int, error) {
	a2, b2, err := promotePair(a, b)
	if err != nil {
		return 0, err
	}
	switch av := a2.(type) {
	case String:
		return strings.Compare(string(av), string(b2.(String))), nil
	case Untyped:
		return strings.Compare(string(av), string(b2.(Untyped))), nil
	case Boolean:
		bv := b2.(Boolean)
		switch {
		case bool(av) == bool(bv):
			return 0, nil
		case !bool(av):
			return -1, nil
		default:
			return 1, nil
		}
	case Integer:
		bv := b2.(Integer)
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		default:
			return 0, nil
		}
	case Decimal:
		return orderFloat(float64(av), float64(b2.(Decimal))), nil
	case Double:
		return orderFloat(float64(av), float64(b2.(Double))), nil
	case Date:
		return orderTime(av.T, b2.(Date).T), nil
	case Time:
		return orderTime(av.T, b2.(Time).T), nil
	case DateTime:
		return orderTime(av.T, b2.(DateTime).T), nil
	default:
		return 0, fmt.Errorf("xdm: cannot order %s values", a2.Type())
	}
}

func orderFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func orderTime(a, b time.Time) int {
	switch {
	case a.Before(b):
		return -1
	case a.After(b):
		return 1
	default:
		return 0
	}
}

// promotePair converts two atomic values to a common type for comparison:
// untypedAtomic casts to the other operand's type (or string when both are
// untyped); numerics promote integer→decimal→double; otherwise the types
// must already agree.
func promotePair(a, b Atomic) (Atomic, Atomic, error) {
	at, bt := a.Type(), b.Type()
	if at == bt {
		return a, b, nil
	}
	if at == TypeUntyped {
		ca, err := Cast(a, bt)
		if err != nil {
			return nil, nil, err
		}
		return ca, b, nil
	}
	if bt == TypeUntyped {
		cb, err := Cast(b, at)
		if err != nil {
			return nil, nil, err
		}
		return a, cb, nil
	}
	if at.Numeric() && bt.Numeric() {
		target := at
		if bt > target {
			target = bt
		}
		ca, err := Cast(a, target)
		if err != nil {
			return nil, nil, err
		}
		cb, err := Cast(b, target)
		if err != nil {
			return nil, nil, err
		}
		return ca, cb, nil
	}
	// Date promotes to dateTime (midnight), the conversion JDBC clients
	// exercise when binding time.Time parameters against DATE columns.
	if at == TypeDate && bt == TypeDateTime || at == TypeDateTime && bt == TypeDate {
		ca, err := Cast(a, TypeDateTime)
		if err != nil {
			return nil, nil, err
		}
		cb, err := Cast(b, TypeDateTime)
		if err != nil {
			return nil, nil, err
		}
		return ca, cb, nil
	}
	// xs:string and xs:untypedAtomic already handled; other date/time
	// pairings and booleans only compare with themselves.
	if at == TypeString && bt.Temporal() || bt == TypeString && at.Temporal() {
		// Allow lexical comparison of strings against temporal values:
		// ISO-8601 lexical order equals temporal order.
		return String(a.Lexical()), String(b.Lexical()), nil
	}
	return nil, nil, fmt.Errorf("xdm: cannot compare %s with %s", at, bt)
}

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "div"
	case OpMod:
		return "mod"
	default:
		return fmt.Sprintf("ArithOp(%d)", int(op))
	}
}

// Arith applies arithmetic with XQuery numeric promotion. Untyped operands
// are cast to xs:double first, per the XQuery arithmetic rules.
func Arith(a, b Atomic, op ArithOp) (Atomic, error) {
	var err error
	if a.Type() == TypeUntyped {
		if a, err = Cast(a, TypeDouble); err != nil {
			return nil, err
		}
	}
	if b.Type() == TypeUntyped {
		if b, err = Cast(b, TypeDouble); err != nil {
			return nil, err
		}
	}
	if !a.Type().Numeric() || !b.Type().Numeric() {
		return nil, fmt.Errorf("xdm: arithmetic %v undefined for %s and %s", op, a.Type(), b.Type())
	}
	target := a.Type()
	if b.Type() > target {
		target = b.Type()
	}
	// Integer division in XQuery's div returns a decimal; SQL-92 integer
	// division truncates. The translator emits idiv-like semantics via
	// casts, so plain div here follows XQuery and promotes to decimal.
	if op == OpDiv && target == TypeInteger {
		target = TypeDecimal
	}
	ca, err := Cast(a, target)
	if err != nil {
		return nil, err
	}
	cb, err := Cast(b, target)
	if err != nil {
		return nil, err
	}
	switch target {
	case TypeInteger:
		x, y := int64(ca.(Integer)), int64(cb.(Integer))
		switch op {
		case OpAdd:
			return Integer(x + y), nil
		case OpSub:
			return Integer(x - y), nil
		case OpMul:
			return Integer(x * y), nil
		case OpMod:
			if y == 0 {
				return nil, fmt.Errorf("xdm: modulus by zero")
			}
			return Integer(x % y), nil
		}
	case TypeDecimal:
		x, y := floatOf(ca), floatOf(cb)
		v, err := floatArith(x, y, op, false)
		if err != nil {
			return nil, err
		}
		return Decimal(v), nil
	case TypeDouble:
		x, y := floatOf(ca), floatOf(cb)
		v, err := floatArith(x, y, op, true)
		if err != nil {
			return nil, err
		}
		return Double(v), nil
	}
	return nil, fmt.Errorf("xdm: arithmetic %v undefined for %s", op, target)
}

func floatOf(a Atomic) float64 {
	switch v := a.(type) {
	case Integer:
		return float64(v)
	case Decimal:
		return float64(v)
	case Double:
		return float64(v)
	default:
		return math.NaN()
	}
}

func floatArith(x, y float64, op ArithOp, isDouble bool) (float64, error) {
	switch op {
	case OpAdd:
		return x + y, nil
	case OpSub:
		return x - y, nil
	case OpMul:
		return x * y, nil
	case OpDiv:
		if y == 0 && !isDouble {
			return 0, fmt.Errorf("xdm: decimal division by zero")
		}
		return x / y, nil
	case OpMod:
		if y == 0 && !isDouble {
			return 0, fmt.Errorf("xdm: modulus by zero")
		}
		return math.Mod(x, y), nil
	default:
		return 0, fmt.Errorf("xdm: unknown arithmetic operator %v", op)
	}
}

// Negate returns the numeric negation of a.
func Negate(a Atomic) (Atomic, error) {
	switch v := a.(type) {
	case Integer:
		return Integer(-v), nil
	case Decimal:
		return Decimal(-v), nil
	case Double:
		return Double(-v), nil
	case Untyped:
		c, err := Cast(v, TypeDouble)
		if err != nil {
			return nil, err
		}
		return Negate(c)
	default:
		return nil, fmt.Errorf("xdm: cannot negate %s", a.Type())
	}
}
