package xdm

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document into the data model. It is used on the
// result-handling path that materializes XML (the baseline mode the paper's
// §4 improves on) and by tests that round-trip serialized output.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	doc := &Document{}
	var stack []*Element
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xdm: parse XML: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := &Element{Name: qnameOf(t.Name)}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue // namespace declarations are structural, not attributes
				}
				el.Attrs = append(el.Attrs, &Attr{Name: qnameOf(a.Name), Value: a.Value})
			}
			if len(stack) == 0 {
				doc.Children = append(doc.Children, el)
			} else {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xdm: parse XML: unexpected end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := string(t)
			if len(stack) == 0 {
				if strings.TrimSpace(text) != "" {
					return nil, fmt.Errorf("xdm: parse XML: text outside root element")
				}
				continue
			}
			if text == "" {
				continue
			}
			top := stack[len(stack)-1]
			// Merge adjacent character data into one text node.
			if n := len(top.Children); n > 0 {
				if prev, ok := top.Children[n-1].(*Text); ok {
					prev.Value += text
					continue
				}
			}
			top.Children = append(top.Children, &Text{Value: text})
		case xml.Comment, xml.ProcInst, xml.Directive:
			// The data model subset ignores these.
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xdm: parse XML: %d unclosed element(s)", len(stack))
	}
	return doc, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// ParseElement parses a payload expected to contain exactly one root
// element and returns it.
func ParseElement(s string) (*Element, error) {
	doc, err := ParseString(s)
	if err != nil {
		return nil, err
	}
	root := doc.Root()
	if root == nil {
		return nil, fmt.Errorf("xdm: parse XML: no root element")
	}
	return root, nil
}

func qnameOf(n xml.Name) QName {
	return QName{Space: n.Space, Local: n.Local}
}

// TrimBoundaryWhitespace removes whitespace-only text nodes from an element
// subtree; pretty-printed XML round-trips through Parse produce them and
// the row-shaped comparisons in tests don't want them.
func TrimBoundaryWhitespace(e *Element) {
	kept := e.Children[:0]
	for _, c := range e.Children {
		switch c := c.(type) {
		case *Text:
			if strings.TrimSpace(c.Value) != "" {
				kept = append(kept, c)
			}
		case *Element:
			TrimBoundaryWhitespace(c)
			kept = append(kept, c)
		default:
			kept = append(kept, c)
		}
	}
	e.Children = kept
}
