package xdm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Property: integer values survive a round trip through their lexical form.
func TestQuickIntegerLexicalRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		v := Integer(n)
		back, err := ParseAtomic(v.Lexical(), TypeInteger)
		return err == nil && back.(Integer) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: finite doubles survive a lexical round trip.
func TestQuickDoubleLexicalRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		v := Double(x)
		back, err := ParseAtomic(v.Lexical(), TypeDouble)
		return err == nil && float64(back.(Double)) == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EscapeText output never contains raw markup characters, and
// unescaping the three entities recovers the input.
func TestQuickEscapeTextRoundTrip(t *testing.T) {
	unescape := strings.NewReplacer("&lt;", "<", "&gt;", ">", "&#xD;", "\r", "&amp;", "&")
	f := func(s string) bool {
		esc := EscapeText(s)
		if strings.ContainsAny(esc, "<>") {
			return false
		}
		return unescape.Replace(esc) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OrderAtomic over integers is a total order consistent with Go's.
func TestQuickOrderAtomicConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		cmp, err := OrderAtomic(Integer(a), Integer(b))
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Antisymmetry over strings.
	g := func(a, b string) bool {
		c1, err1 := OrderAtomic(String(a), String(b))
		c2, err2 := OrderAtomic(String(b), String(a))
		return err1 == nil && err2 == nil && sign(c1) == -sign(c2)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

// Property: comparison after promotion agrees between Integer and Decimal
// representations of the same value.
func TestQuickPromotionAgreement(t *testing.T) {
	f := func(a int32, b int32) bool {
		eqII, err1 := CompareAtomic(Integer(a), Integer(b), OpEq)
		eqID, err2 := CompareAtomic(Integer(a), Decimal(float64(b)), OpEq)
		eqDI, err3 := CompareAtomic(Decimal(float64(a)), Integer(b), OpEq)
		return err1 == nil && err2 == nil && err3 == nil && eqII == eqID && eqID == eqDI
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Marshal/Parse round-trips flat row elements built from
// arbitrary text values (the result-handling XML path's core invariant).
func TestQuickXMLRoundTrip(t *testing.T) {
	f := func(v1, v2 string) bool {
		if !validXMLText(v1) || !validXMLText(v2) {
			return true // skip values XML cannot carry (control chars)
		}
		row := NewElement("RECORD")
		row.AddChild(NewTextElement("A", v1))
		row.AddChild(NewTextElement("B", v2))
		doc, err := ParseString(Marshal(row))
		if err != nil {
			return false
		}
		root := doc.Root()
		a := root.FirstChildElement("A")
		b := root.FirstChildElement("B")
		gotA, gotB := "", ""
		if a != nil {
			gotA = a.StringValue()
		}
		if b != nil {
			gotB = b.StringValue()
		}
		// Empty text never creates a text node, so "" round-trips to "".
		return gotA == v1 && gotB == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// validXMLText reports whether every rune is a legal XML 1.0 character
// (encoding/xml rejects most control characters).
func validXMLText(s string) bool {
	for _, r := range s {
		if r == 0x9 || r == 0xA || r == 0xD {
			continue
		}
		if r < 0x20 || (r >= 0xD800 && r <= 0xDFFF) || r == 0xFFFE || r == 0xFFFF {
			return false
		}
	}
	return true
}

// Property: SortKey distinguishes any two rows that differ in some
// column's presence or value.
func TestQuickSortKeyDiscriminates(t *testing.T) {
	f := func(v1, v2 string, present bool) bool {
		r1 := NewElement("R")
		r1.AddChild(NewTextElement("A", v1))
		r2 := NewElement("R")
		if present {
			r2.AddChild(NewTextElement("A", v2))
		}
		same := present && v1 == v2
		return (SortKey(r1) == SortKey(r2)) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
