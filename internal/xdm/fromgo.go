package xdm

import (
	"fmt"
	"time"
)

// FromGo converts a Go value to an atomic value, accepting the types
// database/sql users pass as statement parameters. It is the single
// Go-to-XDM parameter conversion shared by the aqualogic facade and the
// remote client, so a parameter bound over the wire means exactly what it
// means in process.
func FromGo(v any) (Atomic, error) {
	switch v := v.(type) {
	case int:
		return Integer(v), nil
	case int32:
		return Integer(v), nil
	case int64:
		return Integer(v), nil
	case float32:
		return Double(v), nil
	case float64:
		return Double(v), nil
	case bool:
		return Boolean(v), nil
	case string:
		return String(v), nil
	case []byte:
		return String(string(v)), nil
	case time.Time:
		return DateTime{T: v}, nil
	case Atomic:
		return v, nil
	default:
		return nil, fmt.Errorf("unsupported parameter type %T", v)
	}
}
