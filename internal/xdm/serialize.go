package xdm

import (
	"fmt"
	"sort"
	"strings"
)

// EscapeText escapes XML text content: the three markup characters, plus
// carriage return as a character reference — parsers normalize a literal
// CR to LF (XML 1.0 §2.11), so only &#xD; round-trips.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>\r") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '\r':
			b.WriteString("&#xD;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeAttr escapes XML attribute values: text escapes plus quotes, plus
// tab and newline as character references — attribute-value normalization
// (XML 1.0 §3.3.3) turns the literal characters into spaces.
func escapeAttr(s string) string {
	s = EscapeText(s)
	s = strings.ReplaceAll(s, `"`, "&quot;")
	s = strings.ReplaceAll(s, "\t", "&#x9;")
	return strings.ReplaceAll(s, "\n", "&#xA;")
}

// Marshal serializes a node to compact XML (no indentation). Namespace
// declarations are emitted for prefixed names, with the prefix-to-URI map
// gathered from the subtree.
func Marshal(n Node) string {
	var b strings.Builder
	marshalNode(&b, n)
	return b.String()
}

// MarshalSequence serializes every node in the sequence and the lexical
// form of every atomic item, space-separating adjacent atomics, which is
// XQuery's default sequence serialization.
func MarshalSequence(s Sequence) string {
	var b strings.Builder
	prevAtomic := false
	for _, it := range s {
		switch v := it.(type) {
		case Node:
			marshalNode(&b, v)
			prevAtomic = false
		case Atomic:
			if prevAtomic {
				b.WriteByte(' ')
			}
			b.WriteString(EscapeText(v.Lexical()))
			prevAtomic = true
		}
	}
	return b.String()
}

func marshalNode(b *strings.Builder, n Node) {
	switch n := n.(type) {
	case *Text:
		b.WriteString(EscapeText(n.Value))
	case *Element:
		marshalElement(b, n, nil)
	case *Document:
		for _, c := range n.Children {
			marshalNode(b, c)
		}
	case *Attr:
		// A bare attribute outside an element serializes as its value.
		b.WriteString(EscapeText(n.Value))
	}
}

func marshalElement(b *strings.Builder, e *Element, declared map[string]string) {
	b.WriteByte('<')
	b.WriteString(e.Name.String())
	// Emit a namespace declaration when the element's name is in a
	// namespace not yet declared on an ancestor.
	var localDecl map[string]string
	if e.Name.Space != "" && declared[e.Name.Prefix] != e.Name.Space {
		localDecl = map[string]string{}
		for k, v := range declared {
			localDecl[k] = v
		}
		localDecl[e.Name.Prefix] = e.Name.Space
		if e.Name.Prefix == "" {
			fmt.Fprintf(b, ` xmlns=%q`, e.Name.Space)
		} else {
			fmt.Fprintf(b, ` xmlns:%s=%q`, e.Name.Prefix, e.Name.Space)
		}
	}
	scope := declared
	if localDecl != nil {
		scope = localDecl
	}
	for _, a := range e.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name.String())
		b.WriteString(`="`)
		b.WriteString(escapeAttr(a.Value))
		b.WriteByte('"')
	}
	if len(e.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	for _, c := range e.Children {
		switch c := c.(type) {
		case *Text:
			b.WriteString(EscapeText(c.Value))
		case *Element:
			marshalElement(b, c, scope)
		}
	}
	b.WriteString("</")
	b.WriteString(e.Name.String())
	b.WriteByte('>')
}

// MarshalIndent serializes a node with two-space indentation, for human
// consumption (shell output, examples, documentation).
func MarshalIndent(n Node) string {
	var b strings.Builder
	marshalIndentNode(&b, n, 0)
	return b.String()
}

func marshalIndentNode(b *strings.Builder, n Node, depth int) {
	switch n := n.(type) {
	case *Text:
		indent(b, depth)
		b.WriteString(EscapeText(n.Value))
		b.WriteByte('\n')
	case *Document:
		for _, c := range n.Children {
			marshalIndentNode(b, c, depth)
		}
	case *Element:
		indent(b, depth)
		if onlyText(n) {
			var inner strings.Builder
			marshalElement(&inner, n, nil)
			b.WriteString(inner.String())
			b.WriteByte('\n')
			return
		}
		b.WriteByte('<')
		b.WriteString(n.Name.String())
		if n.Name.Space != "" {
			if n.Name.Prefix == "" {
				fmt.Fprintf(b, ` xmlns=%q`, n.Name.Space)
			} else {
				fmt.Fprintf(b, ` xmlns:%s=%q`, n.Name.Prefix, n.Name.Space)
			}
		}
		for _, a := range n.Attrs {
			fmt.Fprintf(b, ` %s="%s"`, a.Name, escapeAttr(a.Value))
		}
		if len(n.Children) == 0 {
			b.WriteString("/>\n")
			return
		}
		b.WriteString(">\n")
		for _, c := range n.Children {
			marshalIndentNode(b, c, depth+1)
		}
		indent(b, depth)
		b.WriteString("</")
		b.WriteString(n.Name.String())
		b.WriteString(">\n")
	}
}

func onlyText(e *Element) bool {
	for _, c := range e.Children {
		if _, ok := c.(*Text); !ok {
			return false
		}
	}
	return true
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// SortKey builds a deterministic string key for a row element, used when the
// engine needs set semantics over rows (UNION/INTERSECT/EXCEPT, DISTINCT).
// Child elements contribute name=value pairs; absent children (SQL NULL)
// are distinguishable from empty strings.
func SortKey(e *Element) string {
	parts := make([]string, 0, len(e.Children))
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok {
			parts = append(parts, el.Name.Local+"\x00="+el.StringValue())
		}
	}
	return strings.Join(parts, "\x00|")
}

// SortedAtomics returns a copy of the sequence's atomic items in ascending
// order; non-atomic items are atomized first. Used by distinct-values and
// by tests that need order-insensitive comparison.
func SortedAtomics(s Sequence) []Atomic {
	atoms := make([]Atomic, 0, len(s))
	for _, it := range Atomize(s) {
		if a, ok := it.(Atomic); ok {
			atoms = append(atoms, a)
		}
	}
	sort.Slice(atoms, func(i, j int) bool {
		c, err := OrderAtomic(atoms[i], atoms[j])
		if err != nil {
			return atoms[i].Lexical() < atoms[j].Lexical()
		}
		return c < 0
	})
	return atoms
}
