package xdm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Cast converts an atomic value to the target type following the XQuery
// casting rules the generated queries depend on (xs:integer(...),
// xs:decimal(...), etc.). Lexical forms are trimmed of surrounding
// whitespace, as XML Schema's whiteSpace=collapse facet requires.
func Cast(a Atomic, target AtomicType) (Atomic, error) {
	if a.Type() == target {
		return a, nil
	}
	switch target {
	case TypeString:
		return String(a.Lexical()), nil
	case TypeUntyped:
		return Untyped(a.Lexical()), nil
	case TypeBoolean:
		return castBoolean(a)
	case TypeInteger:
		return castInteger(a)
	case TypeDecimal:
		return castDecimal(a)
	case TypeDouble:
		return castDouble(a)
	case TypeDate:
		return castTemporal(a, TypeDate)
	case TypeTime:
		return castTemporal(a, TypeTime)
	case TypeDateTime:
		return castTemporal(a, TypeDateTime)
	default:
		return nil, fmt.Errorf("xdm: cannot cast %s to %s", a.Type(), target)
	}
}

func castBoolean(a Atomic) (Atomic, error) {
	switch v := a.(type) {
	case Integer:
		return Boolean(v != 0), nil
	case Decimal:
		return Boolean(v != 0), nil
	case Double:
		return Boolean(v == v && v != 0), nil
	case String, Untyped:
		switch strings.TrimSpace(a.Lexical()) {
		case "true", "1":
			return Boolean(true), nil
		case "false", "0":
			return Boolean(false), nil
		default:
			return nil, castErr(a, TypeBoolean)
		}
	default:
		return nil, castErr(a, TypeBoolean)
	}
}

func castInteger(a Atomic) (Atomic, error) {
	switch v := a.(type) {
	case Boolean:
		if v {
			return Integer(1), nil
		}
		return Integer(0), nil
	case Decimal:
		return Integer(int64(math.Trunc(float64(v)))), nil
	case Double:
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, castErr(a, TypeInteger)
		}
		return Integer(int64(math.Trunc(f))), nil
	case String, Untyped:
		s := strings.TrimSpace(a.Lexical())
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			// SQL tools routinely push "10.0" at integer columns;
			// accept a decimal lexical whose value is integral.
			f, ferr := strconv.ParseFloat(s, 64)
			if ferr != nil || f != math.Trunc(f) {
				return nil, castErr(a, TypeInteger)
			}
			return Integer(int64(f)), nil
		}
		return Integer(n), nil
	default:
		return nil, castErr(a, TypeInteger)
	}
}

func castDecimal(a Atomic) (Atomic, error) {
	switch v := a.(type) {
	case Boolean:
		if v {
			return Decimal(1), nil
		}
		return Decimal(0), nil
	case Integer:
		return Decimal(float64(v)), nil
	case Double:
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, castErr(a, TypeDecimal)
		}
		return Decimal(f), nil
	case String, Untyped:
		f, err := strconv.ParseFloat(strings.TrimSpace(a.Lexical()), 64)
		if err != nil {
			return nil, castErr(a, TypeDecimal)
		}
		return Decimal(f), nil
	default:
		return nil, castErr(a, TypeDecimal)
	}
}

func castDouble(a Atomic) (Atomic, error) {
	switch v := a.(type) {
	case Boolean:
		if v {
			return Double(1), nil
		}
		return Double(0), nil
	case Integer:
		return Double(float64(v)), nil
	case Decimal:
		return Double(float64(v)), nil
	case String, Untyped:
		s := strings.TrimSpace(a.Lexical())
		switch s {
		case "INF":
			return Double(math.Inf(1)), nil
		case "-INF":
			return Double(math.Inf(-1)), nil
		case "NaN":
			return Double(math.NaN()), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, castErr(a, TypeDouble)
		}
		return Double(f), nil
	default:
		return nil, castErr(a, TypeDouble)
	}
}

var temporalLayouts = map[AtomicType][]string{
	TypeDate:     {"2006-01-02"},
	TypeTime:     {"15:04:05.999999999", "15:04:05"},
	TypeDateTime: {"2006-01-02T15:04:05.999999999", "2006-01-02T15:04:05", "2006-01-02 15:04:05"},
}

func castTemporal(a Atomic, target AtomicType) (Atomic, error) {
	switch v := a.(type) {
	case Date:
		if target == TypeDateTime {
			return DateTime{T: v.T}, nil
		}
	case DateTime:
		switch target {
		case TypeDate:
			y, m, d := v.T.Date()
			return Date{T: time.Date(y, m, d, 0, 0, 0, 0, time.UTC)}, nil
		case TypeTime:
			return Time{T: time.Date(0, 1, 1, v.T.Hour(), v.T.Minute(), v.T.Second(), v.T.Nanosecond(), time.UTC)}, nil
		}
	case String, Untyped:
		s := strings.TrimSpace(a.Lexical())
		for _, layout := range temporalLayouts[target] {
			if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
				switch target {
				case TypeDate:
					return Date{T: t}, nil
				case TypeTime:
					return Time{T: t}, nil
				case TypeDateTime:
					return DateTime{T: t}, nil
				}
			}
		}
		_ = v
	}
	return nil, castErr(a, target)
}

func castErr(a Atomic, target AtomicType) error {
	return fmt.Errorf("xdm: cannot cast %s %q to %s", a.Type(), a.Lexical(), target)
}

// ParseAtomic parses a lexical form directly into the given type; it is the
// entry point for reading typed column values from XML payloads and from
// the text-delimited result format.
func ParseAtomic(lexical string, t AtomicType) (Atomic, error) {
	return Cast(Untyped(lexical), t)
}
