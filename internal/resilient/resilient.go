// Package resilient implements the production-side defenses of the
// resilience net: retry with exponential backoff and jitter around
// transient failures, a per-data-service circuit breaker that fails fast
// through outages, and panic containment for data service functions. It
// composes over the same two surfaces faultnet attacks — the catalog
// metadata source and the engine's data service functions — and is wired
// outside the chaos layer, so injected faults hit the defenses exactly the
// way real network faults would.
//
// The third defense, stale-while-revalidate metadata serving, lives in
// catalog.Cache itself (the cache owns the entries); Config.StaleTTL is
// plumbed there by the aqualogic facade.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/obsv"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// Config is the resilience knob set the aqualogic facade exposes as
// ResilienceConfig. Zero fields take the defaults below.
type Config struct {
	// MaxRetries is the number of re-attempts after the first failure of
	// a transient operation (default 3; negative disables retries).
	MaxRetries int
	// BaseBackoff is the first retry's backoff; attempt n waits
	// ~BaseBackoff·2ⁿ⁻¹ with ±50% deterministic jitter (default 1ms).
	BaseBackoff time.Duration
	// BreakerThreshold is the consecutive-fault count that opens a data
	// service's circuit breaker (default 5; negative disables breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting a
	// half-open probe through (default 100ms).
	BreakerCooldown time.Duration
	// StaleTTL is the metadata cache's freshness window; entries older
	// than this refresh on access and serve stale when the refresh fails.
	// Zero keeps entries fresh forever (no staleness, no degradation).
	// Applied to catalog.Cache.FreshFor by the facade, not here.
	StaleTTL time.Duration
	// MaxRows caps any query's result size (0 = unlimited). Applied to
	// xqeval.Limits by the facade.
	MaxRows int64
	// QueryTimeout bounds statement execution for callers without their
	// own deadline. Applied to the driver Server by the facade.
	QueryTimeout time.Duration
	// CompileCacheEntries bounds the shared compiled-query cache (0 keeps
	// the qcache default; negative disables compiled-query caching, the
	// memory-starved degraded mode). Applied to qcache.Config by the
	// facade, not here.
	CompileCacheEntries int
	// MaxSessions caps concurrently open wire sessions. Applied to the
	// network server's config by cmd/aqlserve, not here (default 4096).
	MaxSessions int
	// MaxConcurrentQueries sizes the network server's admission semaphore:
	// evaluations in flight at once across all sessions (default 256).
	MaxConcurrentQueries int
	// SessionIdleTimeout is how long a wire session may sit idle before
	// the server reaps it, closing its cursors and cancelling their
	// evaluations (default 60s).
	SessionIdleTimeout time.Duration
}

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 100 * time.Millisecond
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 4096
	}
	if c.MaxConcurrentQueries == 0 {
		c.MaxConcurrentQueries = 256
	}
	if c.SessionIdleTimeout == 0 {
		c.SessionIdleTimeout = 60 * time.Second
	}
	return c
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffFor computes attempt n's backoff: exponential in n with ±50%
// jitter derived deterministically from the operation name, so concurrent
// retries of different operations desynchronize without a shared RNG.
func backoffFor(base time.Duration, attempt int, opHash uint64) time.Duration {
	d := base << uint(attempt-1)
	if d <= 0 || d > 10*time.Second {
		d = 10 * time.Second
	}
	frac := float64(splitmix64(opHash^uint64(attempt))>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d))
}

func hashOp(op string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(op))
	return h.Sum64()
}

// Do runs fn with retries: transient failures re-attempt up to
// cfg.MaxRetries times with exponential backoff; permanent failures,
// context expiry, and non-fault errors return immediately. A panic in fn
// is contained to its attempt and retried as a transient failure — the
// operations Do guards (metadata lookups, data service calls) are
// read-only, so a crashed attempt leaves nothing to unwind. On error the
// zero T is returned — partial results from a failed attempt (truncated
// row sequences) are always discarded, never patched together. Exhausted
// retries surface as a typed unavailable error wrapping the last failure.
func Do[T any](ctx context.Context, cfg Config, op string, fn func(context.Context) (T, error)) (T, error) {
	var zero T
	var lastErr error
	opHash := hashOp(op)
	attempt1 := func(ctx context.Context) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				obsv.Global.PanicsRecovered.Inc()
				out = zero
				err = aqerr.Errorf(aqerr.KindTransient, op, "recovered panic: %v", r)
			}
		}()
		return fn(ctx)
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			obsv.Global.Retries.Inc()
			if err := sleep(ctx, backoffFor(cfg.BaseBackoff, attempt, opHash)); err != nil {
				return zero, aqerr.Wrap(op, err)
			}
		}
		out, err := attempt1(ctx)
		if err == nil {
			if attempt > 0 {
				obsv.Global.RetrySuccesses.Inc()
			}
			return out, nil
		}
		lastErr = err
		if !aqerr.Transient(err) || ctx.Err() != nil {
			return zero, err
		}
		if attempt >= cfg.MaxRetries {
			break
		}
	}
	return zero, aqerr.New(aqerr.KindUnavailable, op,
		fmt.Errorf("retries exhausted after %d attempts: %w", cfg.MaxRetries+1, lastErr))
}

// Backoff returns attempt n's (n ≥ 1) retry delay for op: the same
// exponential schedule with deterministic ±50% jitter Do uses, exported
// for callers that manage their own retry loops (the remote client's wire
// verbs, whose retry decision — idempotency, Retry-After hints — is
// richer than Do's transient-only rule).
func Backoff(base time.Duration, attempt int, op string) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt < 1 {
		attempt = 1
	}
	return backoffFor(base, attempt, hashOp(op))
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes calls through, counting consecutive faults.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets a single probe through; its outcome decides
	// between closing and reopening.
	BreakerHalfOpen
)

// String returns the state's display name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is one data service's circuit breaker.
type Breaker struct {
	name      string
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a closed breaker; threshold <= 0 disables it (Allow
// always passes, Record never opens).
func NewBreaker(name string, threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{name: name, threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call may proceed: nil when closed or when this
// caller wins the half-open probe slot, a fast-fail unavailable error when
// open.
func (b *Breaker) Allow() error {
	if b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return nil // this caller is the probe
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	obsv.Global.BreakerFastFails.Inc()
	return aqerr.Errorf(aqerr.KindUnavailable, b.name,
		"circuit breaker open (%d consecutive faults)", b.failures)
}

// Record folds one call outcome into the breaker: infrastructure faults
// count toward the threshold, successes and query-semantic errors reset
// it, context cancellation is neutral (the caller gave up; the backend's
// health is unknown).
func (b *Breaker) Record(err error) {
	if b.threshold <= 0 {
		return
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		b.mu.Lock()
		b.probing = false
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil || !aqerr.Fault(err) {
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	b.failures++
	b.probing = false
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		if b.state != BreakerOpen {
			obsv.Global.BreakerOpens.Inc()
		}
		b.state = BreakerOpen
		b.openedAt = time.Now()
	}
}

// State returns the breaker's current position (resolving an elapsed
// cooldown to half-open for observability).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && time.Since(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// NewSource wraps a metadata source with retries: transient lookup
// failures (network blips, injected chaos) re-attempt with backoff before
// the caller — usually catalog.Cache, which adds stale-serving on top —
// sees them.
func NewSource(inner catalog.Source, cfg Config) catalog.Source {
	return &guardedSource{inner: inner, cfg: cfg.WithDefaults()}
}

type guardedSource struct {
	inner catalog.Source
	cfg   Config
}

func (g *guardedSource) Lookup(ref catalog.TableRef) (*catalog.TableMeta, error) {
	return g.LookupContext(context.Background(), ref)
}

func (g *guardedSource) LookupContext(ctx context.Context, ref catalog.TableRef) (*catalog.TableMeta, error) {
	return Do(ctx, g.cfg, "metadata lookup "+ref.String(), func(ctx context.Context) (*catalog.TableMeta, error) {
		return catalog.LookupContext(ctx, g.inner, ref)
	})
}

func (g *guardedSource) Tables() ([]*catalog.TableMeta, error)     { return g.inner.Tables() }
func (g *guardedSource) Procedures() ([]*catalog.TableMeta, error) { return g.inner.Procedures() }

// EngineGuard is the data-service defense: one circuit breaker per data
// service function plus retries and panic containment around every call.
// Install its Middleware on the engine after (outside) any fault
// injection.
type EngineGuard struct {
	cfg Config

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewEngineGuard builds the guard.
func NewEngineGuard(cfg Config) *EngineGuard {
	return &EngineGuard{cfg: cfg.WithDefaults(), breakers: make(map[string]*Breaker)}
}

// BreakerFor returns (creating on first use) the named function's breaker.
func (g *EngineGuard) BreakerFor(name string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.breakers[name]
	if !ok {
		b = NewBreaker("data service "+name, g.cfg.BreakerThreshold, g.cfg.BreakerCooldown)
		g.breakers[name] = b
	}
	return b
}

// Snapshot returns the current state of every breaker the guard has
// created, keyed by the data service function name it guards — how the
// federation layer reports per-source breaker health without reaching
// into breaker internals.
func (g *EngineGuard) Snapshot() map[string]BreakerState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]BreakerState, len(g.breakers))
	for name, b := range g.breakers {
		out[name] = b.State()
	}
	return out
}

// Middleware returns the engine middleware applying breaker, retries, and
// panic recovery to every data service call.
func (g *EngineGuard) Middleware() xqeval.Middleware {
	return func(name string, fn xqeval.ContextFunc) xqeval.ContextFunc {
		br := g.BreakerFor(name)
		op := "data service " + name
		return func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			if err := br.Allow(); err != nil {
				return nil, err
			}
			// Do contains per-attempt panics, so a crashing data service
			// is retried like any other transient fault.
			out, err := Do(ctx, g.cfg, op, func(ctx context.Context) (xdm.Sequence, error) {
				return fn(ctx, args)
			})
			br.Record(err)
			return out, err
		}
	}
}
