package resilient

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/faultnet"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

func fastCfg() Config {
	return Config{MaxRetries: 3, BaseBackoff: 100 * time.Microsecond,
		BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond}
}

func transientErr() error {
	return aqerr.Errorf(aqerr.KindTransient, "test", "blip")
}

func TestRetryRescuesTransient(t *testing.T) {
	calls := 0
	out, err := Do(context.Background(), fastCfg(), "op", func(context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, transientErr()
		}
		return 42, nil
	})
	if err != nil || out != 42 {
		t.Fatalf("out=%d err=%v", out, err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	_, err := Do(context.Background(), fastCfg(), "op", func(context.Context) (int, error) {
		calls++
		return 0, aqerr.Errorf(aqerr.KindPermanent, "test", "rejected")
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: calls = %d", calls)
	}
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindPermanent {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryExhaustionIsUnavailable(t *testing.T) {
	cfg := fastCfg()
	calls := 0
	_, err := Do(context.Background(), cfg, "op", func(context.Context) (int, error) {
		calls++
		return 0, transientErr()
	})
	if calls != cfg.MaxRetries+1 {
		t.Fatalf("calls = %d, want %d", calls, cfg.MaxRetries+1)
	}
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindUnavailable {
		t.Fatalf("err = %v, want unavailable", err)
	}
}

func TestRetryDiscardsPartialResults(t *testing.T) {
	// A truncated attempt returns data AND an error; the retry layer must
	// never leak the partial value.
	_, err := Do(context.Background(), Config{MaxRetries: 1, BaseBackoff: time.Microsecond}.WithDefaults(),
		"op", func(context.Context) ([]int, error) {
			return []int{1, 2}, transientErr()
		})
	if err == nil {
		t.Fatal("want error")
	}
	out, _ := Do(context.Background(), Config{MaxRetries: 1, BaseBackoff: time.Microsecond},
		"op", func(context.Context) ([]int, error) {
			return []int{1, 2}, transientErr()
		})
	if out != nil {
		t.Fatalf("partial result leaked: %v", out)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := Do(ctx, Config{MaxRetries: 100, BaseBackoff: time.Millisecond}, "op",
		func(context.Context) (int, error) {
			calls++
			cancel()
			return 0, transientErr()
		})
	if err == nil {
		t.Fatal("want error")
	}
	if calls != 1 {
		t.Fatalf("retried after cancellation: calls = %d", calls)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker("svc", 3, 20*time.Millisecond)
	fault := aqerr.Errorf(aqerr.KindTransient, "svc", "down")

	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.Record(fault)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}

	// Open: fast-fail, and fast (the whole point).
	start := time.Now()
	err := b.Allow()
	if err == nil {
		t.Fatal("open breaker allowed a call")
	}
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindUnavailable {
		t.Fatalf("fast-fail err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("fast-fail was not fast")
	}

	// After the cooldown: one probe; success closes.
	time.Sleep(25 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", b.State())
	}
}

func TestBreakerHalfOpenReopens(t *testing.T) {
	b := NewBreaker("svc", 1, 10*time.Millisecond)
	b.Record(aqerr.Errorf(aqerr.KindPermanent, "svc", "down"))
	if b.State() != BreakerOpen {
		t.Fatal("threshold 1 should open immediately")
	}
	time.Sleep(15 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatal("probe refused")
	}
	b.Record(aqerr.Errorf(aqerr.KindPermanent, "svc", "still down"))
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe should reopen, state = %v", b.State())
	}
}

func TestBreakerIgnoresSemanticErrors(t *testing.T) {
	b := NewBreaker("svc", 2, time.Minute)
	for i := 0; i < 10; i++ {
		b.Record(fmt.Errorf("xquery dynamic error: bad query"))
	}
	if b.State() != BreakerClosed {
		t.Fatal("query-semantic errors must not open the breaker")
	}
}

func TestEngineGuardRecoversPanics(t *testing.T) {
	e := xqeval.New()
	calls := 0
	e.RegisterContext("urn:t", "FLAKY", func(context.Context, []xdm.Sequence) (xdm.Sequence, error) {
		calls++
		if calls == 1 {
			panic("poisoned row")
		}
		return xdm.SequenceOf(xdm.Integer(7)), nil
	})
	e.Use(NewEngineGuard(fastCfg()).Middleware())
	out, err := e.Call("urn:t", "FLAKY", nil)
	if err != nil {
		t.Fatalf("retry after recovered panic failed: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestEngineGuardBreakerFailsFastDuringOutage(t *testing.T) {
	e := xqeval.New()
	calls := 0
	e.RegisterContext("urn:t", "DOWN", func(context.Context, []xdm.Sequence) (xdm.Sequence, error) {
		calls++
		return nil, aqerr.Errorf(aqerr.KindTransient, "wire", "connection refused")
	})
	cfg := fastCfg()
	cfg.BreakerCooldown = time.Minute
	g := NewEngineGuard(cfg)
	e.Use(g.Middleware())

	// Drive the breaker open (each engine call retries internally, so a
	// few calls cross the consecutive-fault threshold).
	for i := 0; i < cfg.BreakerThreshold; i++ {
		if _, err := e.Call("urn:t", "DOWN", nil); err == nil {
			t.Fatal("down service should fail")
		}
	}
	if g.BreakerFor("DOWN").State() != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", g.BreakerFor("DOWN").State())
	}

	// Open breaker: the backend is no longer consulted at all.
	before := calls
	start := time.Now()
	_, err := e.Call("urn:t", "DOWN", nil)
	if err == nil {
		t.Fatal("open breaker should fail fast")
	}
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) || qe.Kind != aqerr.KindUnavailable {
		t.Fatalf("fast-fail err = %v", err)
	}
	if calls != before {
		t.Fatal("open breaker still reached the backend")
	}
	if time.Since(start) > time.Second {
		t.Fatal("fast-fail took too long")
	}
}

func TestSourceGuardRetriesChaos(t *testing.T) {
	// Metadata through chaos at a high transient rate: retries should
	// rescue essentially every lookup.
	inj := faultnet.New(faultnet.Config{Seed: 11, Rate: 0.4, Kinds: []faultnet.Kind{faultnet.KindTransient}})
	cfg := fastCfg()
	cfg.MaxRetries = 8
	src := NewSource(inj.Source(catalog.Demo()), cfg)
	for i := 0; i < 50; i++ {
		if _, err := src.Lookup(catalog.TableRef{Table: "CUSTOMERS"}); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
}

func TestStaleMetadataDuringHardDown(t *testing.T) {
	// The full degradation ladder for metadata: cache + retries over a
	// backend that goes hard-down. Queries keep answering from stale
	// entries and the degradation is visible in Stats.
	inner := &switchableSource{src: catalog.Demo()}
	cfg := fastCfg()
	cfg.MaxRetries = 1
	cache := catalog.NewCache(NewSource(inner, cfg))
	cache.FreshFor = time.Nanosecond
	ref := catalog.TableRef{Table: "CUSTOMERS"}

	if _, err := cache.Lookup(ref); err != nil {
		t.Fatal(err)
	}
	inner.setDown(true)
	time.Sleep(time.Millisecond)
	meta, err := cache.Lookup(ref)
	if err != nil || meta == nil {
		t.Fatalf("hard-down lookup should serve stale, got %v", err)
	}
	s := cache.Stats()
	if !s.Degraded || s.StaleServes == 0 {
		t.Fatalf("stats = %+v, want degraded with stale serves", s)
	}
}

// switchableSource simulates a backend that can be taken hard-down.
// A panic inside a metadata lookup must be contained to the attempt and
// retried, exactly like a transient error — the fuzz net caught an
// injected metadata panic escaping through the translator.
func TestSourceGuardRecoversPanics(t *testing.T) {
	app := catalog.Demo()
	calls := 0
	src := NewSource(sourceFunc(func(ref catalog.TableRef) (*catalog.TableMeta, error) {
		calls++
		if calls == 1 {
			panic("metadata backend crashed")
		}
		return app.Lookup(ref)
	}), fastCfg())
	meta, err := src.Lookup(catalog.TableRef{Table: "CUSTOMERS"})
	if err != nil {
		t.Fatalf("retry after recovered metadata panic failed: %v", err)
	}
	if meta == nil || calls != 2 {
		t.Fatalf("meta=%v calls=%d, want meta and 2 calls", meta, calls)
	}
}

type sourceFunc func(ref catalog.TableRef) (*catalog.TableMeta, error)

func (f sourceFunc) Lookup(ref catalog.TableRef) (*catalog.TableMeta, error) { return f(ref) }
func (f sourceFunc) Tables() ([]*catalog.TableMeta, error)                   { return nil, nil }
func (f sourceFunc) Procedures() ([]*catalog.TableMeta, error)               { return nil, nil }

type switchableSource struct {
	src  catalog.Source
	down bool
}

func (s *switchableSource) setDown(d bool) { s.down = d }

func (s *switchableSource) Lookup(ref catalog.TableRef) (*catalog.TableMeta, error) {
	if s.down {
		return nil, aqerr.Errorf(aqerr.KindTransient, "wire", "connection refused")
	}
	return s.src.Lookup(ref)
}
func (s *switchableSource) Tables() ([]*catalog.TableMeta, error)     { return s.src.Tables() }
func (s *switchableSource) Procedures() ([]*catalog.TableMeta, error) { return s.src.Procedures() }
