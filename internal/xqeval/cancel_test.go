package xqeval

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

// bigEngine registers a table large enough that its self-cross-join takes
// meaningfully long.
func bigEngine(rows int) *Engine {
	e := New()
	data := make([]*xdm.Element, rows)
	for i := range data {
		r := xdm.NewElement("T")
		r.AddChild(xdm.NewTextElement("N", xdm.Integer(i).Lexical()))
		data[i] = r
	}
	e.RegisterRows("urn:big", "T", data)
	return e
}

func crossJoinQuery() *xquery.Query {
	return &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "b", Namespace: "urn:big", Location: "big.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "x", In: xquery.Call("b:T")},
				&xquery.For{Var: "y", In: xquery.Call("b:T")},
				&xquery.For{Var: "z", In: xquery.Call("b:T")},
			},
			Return: xquery.Num("1"),
		},
	}
}

func TestEvalCancellation(t *testing.T) {
	e := bigEngine(300) // 300³ tuples — far too many to finish quickly
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.EvalWithContext(ctx, crossJoinQuery(), nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation did not observe cancellation")
	}
}

func TestEvalDeadline(t *testing.T) {
	e := bigEngine(300)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.EvalWithContext(ctx, crossJoinQuery(), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("deadline observed too late: %v", time.Since(start))
	}
}

func TestEvalContextCompletesNormally(t *testing.T) {
	e := bigEngine(5)
	out, err := e.EvalWithContext(context.Background(), crossJoinQuery(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 125 {
		t.Fatalf("rows = %d", len(out))
	}
}

func TestEvalStringFrontDoor(t *testing.T) {
	e := bigEngine(3)
	out, err := e.EvalString(`
		import schema namespace b = "urn:big" at "big.xsd";
		fn:count(for $x in b:T() where ($x/N >= 1) return $x)`)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].(xdm.Integer) != 2 {
		t.Fatalf("count = %v", out[0])
	}
	if _, err := e.EvalString("for $x"); err != nil {
		var pe *xquery.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("err type = %T", err)
		}
	} else {
		t.Fatal("bad XQuery should fail to compile")
	}
}
