package xqeval

// Failure injection: a data service function is an external integration
// point (database, Web service, custom code), so the engine must surface
// its failures as query errors without panicking or corrupting state.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

func failingEngine(failAfter int) *Engine {
	e := New()
	calls := 0
	e.Register("urn:flaky", "ROWS", func(args []xdm.Sequence) (xdm.Sequence, error) {
		calls++
		if calls > failAfter {
			return nil, errors.New("backend unavailable")
		}
		row := xdm.NewElement("ROWS")
		row.AddChild(xdm.NewTextElement("N", "1"))
		return xdm.SequenceOf(row), nil
	})
	return e
}

func flakyQuery() *xquery.Query {
	return &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "f", Namespace: "urn:flaky", Location: "flaky.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{&xquery.For{Var: "r", In: xquery.Call("f:ROWS")}},
			Return:  xquery.Call("fn:data", xquery.ChildPath("r", "N")),
		},
	}
}

func TestDataServiceErrorPropagates(t *testing.T) {
	e := failingEngine(0)
	_, err := e.Eval(flakyQuery())
	if err == nil || !strings.Contains(err.Error(), "backend unavailable") {
		t.Fatalf("err = %v", err)
	}
}

func TestEngineUsableAfterFailure(t *testing.T) {
	e := failingEngine(1)
	// First call succeeds.
	out, err := e.Eval(flakyQuery())
	if err != nil || len(out) != 1 {
		t.Fatalf("first eval: %v %v", out, err)
	}
	// Second fails.
	if _, err := e.Eval(flakyQuery()); err == nil {
		t.Fatal("second eval should fail")
	}
	// Other functions on the same engine keep working.
	e.RegisterRows("urn:ok", "T", []*xdm.Element{xdm.NewElement("T")})
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "k", Namespace: "urn:ok", Location: "ok.xsd"},
		}},
		Body: xquery.Call("fn:count", xquery.Call("k:T")),
	}
	out, err = e.Eval(q)
	if err != nil || out[0].(xdm.Integer) != 1 {
		t.Fatalf("engine corrupted after failure: %v %v", out, err)
	}
}

func TestErrorInsideOuterJoinFilter(t *testing.T) {
	// Failure surfaced from inside a filter predicate (the outer-join
	// pattern evaluates the right side per left row in the naive pipeline).
	// The planner hoists the loop-invariant let, so the planned pipeline
	// calls the backend once and never reaches the injected failure — the
	// error-timing divergence XQuery §2.3.4 permits an optimizer. Both
	// behaviors are pinned here.
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "f", Namespace: "urn:flaky", Location: "flaky.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "l", In: &xquery.Seq{Items: []xquery.Expr{xquery.Num("1"), xquery.Num("2"), xquery.Num("3")}}},
				&xquery.Let{Var: "t", Expr: &xquery.Filter{
					Base:       xquery.Call("f:ROWS"),
					Predicates: []xquery.Expr{xquery.Call("fn:true")},
				}},
			},
			Return: xquery.Call("fn:count", xquery.VarRef("t")),
		},
	}
	_, err := failingEngine(2).EvalNaiveWithTrace(context.Background(), q, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "backend unavailable") {
		t.Fatalf("naive err = %v", err)
	}
	out, err := failingEngine(2).Eval(q)
	if err != nil {
		t.Fatalf("planned eval should hoist the invariant let past the failure: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("planned eval rows = %d, want 3", len(out))
	}
}

func TestDynamicErrorType(t *testing.T) {
	e := New()
	_, err := e.Eval(&xquery.Query{Body: xquery.Call("fn:no-such")})
	var dyn *Error
	if !errors.As(err, &dyn) {
		t.Fatalf("err type = %T", err)
	}
	if !strings.Contains(dyn.Error(), "dynamic error") {
		t.Fatalf("message = %q", dyn.Error())
	}
}

func TestCallUnknownFunction(t *testing.T) {
	e := New()
	if _, err := e.Call("urn:none", "F", nil); err == nil {
		t.Fatal("Call of unregistered function should fail")
	}
}
