package xqeval

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/xdm"
)

// statsTestRows builds n flat rows named name with an ID column (unique)
// and a REGION column (two values).
func statsTestRows(name string, n int) []*xdm.Element {
	rows := make([]*xdm.Element, n)
	for i := 0; i < n; i++ {
		row := xdm.NewElement(name)
		row.AddChild(xdm.NewTextElement("ID", strconv.Itoa(i+1)))
		row.AddChild(xdm.NewTextElement("REGION", []string{"EAST", "WEST"}[i%2]))
		rows[i] = row
	}
	return rows
}

func TestCollectSourceStats(t *testing.T) {
	e := New()
	e.RegisterRows("ld:StatsTest", "CUSTOMERS", statsTestRows("CUSTOMERS", 40))

	gen0 := e.StatsGeneration()
	if _, ok := e.SourceStats("ld:StatsTest", "CUSTOMERS"); ok {
		t.Fatal("stats present before collection")
	}
	s, err := e.CollectSourceStats(context.Background(), "ld:StatsTest", "CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 40 || s.Sampled != 40 {
		t.Fatalf("rows/sampled = %d/%d, want 40/40", s.Rows, s.Sampled)
	}
	if d := s.DistinctFor("ID"); d != 40 {
		t.Fatalf("distinct ID = %d, want 40", d)
	}
	if d := s.DistinctFor("REGION"); d != 2 {
		t.Fatalf("distinct REGION = %d, want 2", d)
	}
	if s.AvgRowBytes <= 0 {
		t.Fatalf("avg row bytes = %d", s.AvgRowBytes)
	}
	if e.StatsGeneration() != gen0+1 {
		t.Fatalf("eager collection must advance the generation: %d → %d", gen0, e.StatsGeneration())
	}
	if got, ok := e.SourceStats("ld:StatsTest", "CUSTOMERS"); !ok || got != s {
		t.Fatal("collected stats not served back")
	}

	e.InvalidateSourceStats()
	if _, ok := e.SourceStats("ld:StatsTest", "CUSTOMERS"); ok {
		t.Fatal("stats survived invalidation")
	}
	if e.StatsGeneration() != gen0+2 {
		t.Fatalf("invalidation must advance the generation: got %d", e.StatsGeneration())
	}
}

// TestObserveSourceStatsIsSilent locks the lazy-collection contract: the
// first observation wins, later ones are ignored, and the generation never
// moves — so a first scan cannot churn the compile cache.
func TestObserveSourceStatsIsSilent(t *testing.T) {
	e := New()
	gen0 := e.StatsGeneration()
	first := e.ObserveSourceStats("ld:StatsTest", "T", rowsAsSequence(statsTestRows("T", 5)))
	if first.Rows != 5 {
		t.Fatalf("observed rows = %d, want 5", first.Rows)
	}
	second := e.ObserveSourceStats("ld:StatsTest", "T", rowsAsSequence(statsTestRows("T", 9)))
	if second != first || second.Rows != 5 {
		t.Fatalf("second observation overwrote the first: %+v", second)
	}
	if e.StatsGeneration() != gen0 {
		t.Fatal("lazy observation must not advance the generation")
	}
}

func rowsAsSequence(rows []*xdm.Element) xdm.Sequence {
	seq := make(xdm.Sequence, len(rows))
	for i, r := range rows {
		seq[i] = r
	}
	return seq
}

// TestStatsSamplingScales checks the bounded-sample estimates: row count
// stays exact past the sampling bound, and distinct counts extrapolate
// linearly, capped at the row count.
func TestStatsSamplingScales(t *testing.T) {
	n := 5000
	s := statsFromRows(rowsAsSequence(statsTestRows("T", n)))
	if s.Rows != int64(n) {
		t.Fatalf("rows = %d, want %d", s.Rows, n)
	}
	if s.Sampled != statsSampleRows {
		t.Fatalf("sampled = %d, want %d", s.Sampled, statsSampleRows)
	}
	if d := s.DistinctFor("ID"); d != int64(n) {
		t.Fatalf("unique column must extrapolate to the row count: %d", d)
	}
	if d := s.DistinctFor("REGION"); d < 1 || d > 8 {
		t.Fatalf("two-valued column extrapolated to %d", d)
	}
}

// statsJoinQuery joins two sources on two equi-conjuncts. Structurally the
// first conjunct (REGION, 2 distinct values on the build side) would be
// the hash key; statistics should flip the choice to CID.
const statsJoinQuery = `import schema namespace b = "ld:StatsTest" at "StatsTest.xsd";
for $c in b:CUSTOMERS()
for $p in b:PAYMENTS()
where $c/REGION = $p/REGION and $c/ID = $p/CID
return <R>{$c/ID}{$p/PAYMENT}</R>`

func statsJoinEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	e.RegisterRows("ld:StatsTest", "CUSTOMERS", statsTestRows("CUSTOMERS", 12))
	payments := make([]*xdm.Element, 30)
	for i := range payments {
		row := xdm.NewElement("PAYMENTS")
		row.AddChild(xdm.NewTextElement("CID", strconv.Itoa(i%12+1)))
		row.AddChild(xdm.NewTextElement("REGION", []string{"EAST", "WEST"}[i%2]))
		row.AddChild(xdm.NewTextElement("PAYMENT", strconv.Itoa(100+i)))
		payments[i] = row
	}
	e.RegisterRows("ld:StatsTest", "PAYMENTS", payments)
	return e
}

// TestStatsCostAnnotationsAndKeyChoice is the cost-model test: with stats
// collected, the plan reports per-scan cardinalities and hash-join cost
// lines, picks the higher-distinct conjunct as the hash key, and still
// computes the exact same result as the structural plan.
func TestStatsCostAnnotationsAndKeyChoice(t *testing.T) {
	e := statsJoinEngine(t)
	ctx := context.Background()
	q, err := Compile(statsJoinQuery)
	if err != nil {
		t.Fatal(err)
	}

	structural := NewPlan(q)
	sdesc := strings.Join(structural.Describe(), "\n")
	if !strings.Contains(sdesc, "stats: none") {
		t.Fatalf("structural plan claims stats:\n%s", sdesc)
	}
	if strings.Contains(sdesc, "stats-picked key") {
		t.Fatalf("structural plan cannot stats-pick a key:\n%s", sdesc)
	}

	for _, src := range []string{"CUSTOMERS", "PAYMENTS"} {
		if _, err := e.CollectSourceStats(ctx, "ld:StatsTest", src); err != nil {
			t.Fatal(err)
		}
	}
	costed := NewPlanStats(q, e)
	desc := strings.Join(costed.Describe(), "\n")
	for _, want := range []string{
		"stats: 2 scans",
		"[invariant, ~12 rows]",
		"cost: ~30 build rows",
		"key CID ~",
		"stats-picked key",
	} {
		if !strings.Contains(desc, want) {
			t.Fatalf("costed plan missing %q:\n%s", want, desc)
		}
	}

	want, err := e.EvalPlanWithTrace(ctx, structural, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalPlanWithTrace(ctx, costed, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := xdm.MarshalSequence(got), xdm.MarshalSequence(want); g != w {
		t.Fatalf("stats-picked key changed the result\ngot:  %s\nwant: %s", g, w)
	}
}

// TestLazyObservationFeedsNextCompile walks the production lazy path: the
// first planned execution observes the scanned sources without touching
// the generation; a plan compiled afterwards carries their cardinalities.
func TestLazyObservationFeedsNextCompile(t *testing.T) {
	e := statsJoinEngine(t)
	q, err := Compile(statsJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.StatsSources != 0 {
		t.Fatalf("cold plan saw %d stats scans", cold.StatsSources)
	}
	gen0 := e.StatsGeneration()
	if _, err := e.EvalPlanWithTrace(context.Background(), cold, nil, nil); err != nil {
		t.Fatal(err)
	}
	if e.StatsGeneration() != gen0 {
		t.Fatal("lazy observation during execution advanced the generation")
	}
	warm, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.StatsSources == 0 {
		t.Fatal("recompile after first execution saw no observed stats")
	}
}
