package xqeval

import (
	"context"
	"strings"
	"testing"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

func joinEngine(left, right xdm.Sequence) *Engine {
	e := New()
	e.Register("urn:j", "L", func(args []xdm.Sequence) (xdm.Sequence, error) { return left, nil })
	e.Register("urn:j", "R", func(args []xdm.Sequence) (xdm.Sequence, error) { return right, nil })
	return e
}

func joinQuery(op string) *xquery.Query {
	return &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "j", Namespace: "urn:j", Location: "j.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "a", In: xquery.Call("j:L")},
				&xquery.For{Var: "b", In: xquery.Call("j:R")},
				&xquery.Where{Cond: &xquery.Binary{Op: op, Left: xquery.VarRef("a"), Right: xquery.VarRef("b")}},
			},
			Return: &xquery.Seq{Items: []xquery.Expr{xquery.VarRef("a"), xquery.VarRef("b")}},
		},
	}
}

// diffEval evaluates q planned and naive and requires identical outcomes.
func diffEval(t *testing.T, e *Engine, q *xquery.Query) xdm.Sequence {
	t.Helper()
	planned, perr := e.EvalWithTrace(context.Background(), q, nil, nil)
	naive, nerr := e.EvalNaiveWithTrace(context.Background(), q, nil, nil)
	if (perr == nil) != (nerr == nil) {
		t.Fatalf("error divergence: planned=%v naive=%v", perr, nerr)
	}
	if perr != nil {
		return nil
	}
	if got, want := xdm.MarshalSequence(planned), xdm.MarshalSequence(naive); got != want {
		t.Fatalf("result divergence:\nplanned: %s\nnaive:   %s", got, want)
	}
	return planned
}

func atoms(vs ...xdm.Atomic) xdm.Sequence {
	s := make(xdm.Sequence, len(vs))
	for i, v := range vs {
		s[i] = v
	}
	return s
}

func TestPlanDetectsHashJoin(t *testing.T) {
	for _, op := range []string{"=", "eq"} {
		p := NewPlan(joinQuery(op))
		if p.HashJoins != 1 {
			t.Fatalf("op %s: HashJoins = %d, want 1", op, p.HashJoins)
		}
		text := strings.Join(p.Describe(), "\n")
		if !strings.Contains(text, "hash join $b in j:R()") {
			t.Fatalf("op %s: Describe missing hash join line:\n%s", op, text)
		}
	}
}

func TestHashJoinMixedTypeClasses(t *testing.T) {
	// Every promotion class the comparison rules let meet without a
	// dynamic error: typed numerics vs untyped numerals (promoted through
	// the probe's type), strings vs untyped (lexical). The planned hash
	// join must agree with the naive nested loop pair for pair — note
	// Untyped("01") matches Integer 1 numerically but not Untyped("1")
	// lexically, which is exactly what the dual s:/n: key forms encode.
	left := atoms(xdm.Integer(1), xdm.Double(2.5), xdm.Decimal(2), xdm.String("1"), xdm.Untyped("01"))
	right := atoms(xdm.Untyped("1"), xdm.Untyped("2"), xdm.Untyped("01"))
	e := joinEngine(left, right)
	out := diffEval(t, e, joinQuery("="))
	if len(out) != 10 { // 5 matching pairs, two items each
		t.Fatalf("len = %d, want 10: %s", len(out), xdm.MarshalSequence(out))
	}
}

func TestHashJoinValueCompare(t *testing.T) {
	left := atoms(xdm.Untyped("10"), xdm.Untyped("20"), xdm.Untyped("absent"))
	right := atoms(xdm.Untyped("20"), xdm.Untyped("10"), xdm.Untyped("10"))
	e := joinEngine(left, right)
	out := diffEval(t, e, joinQuery("eq"))
	if len(out) != 6 { // (10,10)x2 + (20,20), two items per match
		t.Fatalf("len = %d, want 6", len(out))
	}
}

func TestHashJoinNaNSemantics(t *testing.T) {
	// OrderAtomic treats NaN as equal to every number, so an untyped "NaN"
	// on the build side matches numeric probes in the naive pipeline; the
	// residual list must preserve that.
	left := atoms(xdm.Double(5))
	right := atoms(xdm.Untyped("NaN"), xdm.Untyped("7"))
	e := joinEngine(left, right)
	out := diffEval(t, e, joinQuery("="))
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2 (Double 5 matches untyped NaN)", len(out))
	}
}

func TestHashJoinErrorParityOnResidual(t *testing.T) {
	// Booleans only compare with booleans: naive errors on the first
	// (number, boolean) pair; the residual list must reproduce that.
	left := atoms(xdm.Integer(1))
	right := atoms(xdm.Boolean(true))
	e := joinEngine(left, right)
	diffEval(t, e, joinQuery("=")) // both sides must error identically
}

func TestHashJoinEmptyAndMultiItemKeys(t *testing.T) {
	// Join on element children: some rows have no key child (empty key —
	// never matches), one has two (general comparison matches either).
	mk := func(name string, keys ...string) *xdm.Element {
		el := xdm.NewElement(name)
		for _, k := range keys {
			el.AddChild(xdm.NewTextElement("K", k))
		}
		return el
	}
	left := xdm.Sequence{mk("L", "1"), mk("L", "2"), mk("L")}
	right := xdm.Sequence{mk("R", "9", "2"), mk("R"), mk("R", "1")}
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "j", Namespace: "urn:j", Location: "j.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "a", In: xquery.Call("j:L")},
				&xquery.For{Var: "b", In: xquery.Call("j:R")},
				&xquery.Where{Cond: &xquery.Binary{Op: "=",
					Left:  xquery.ChildPath("a", "K"),
					Right: xquery.ChildPath("b", "K")}},
			},
			Return: &xquery.Seq{Items: []xquery.Expr{
				xquery.Call("fn:data", xquery.ChildPath("a", "K")),
				xquery.Call("fn:data", xquery.ChildPath("b", "K")),
			}},
		},
	}
	e := joinEngine(left, right)
	out := diffEval(t, e, q)
	if len(out) != 5 { // ("1","1") and ("2", ("9","2") both atoms)
		t.Fatalf("len = %d: %s", len(out), xdm.MarshalSequence(out))
	}
}

func TestPlanPredicatePushdown(t *testing.T) {
	// where references only $a, so it must run before the $b loop.
	q := joinQuery("=")
	flwor := q.Body.(*xquery.FLWOR)
	flwor.Clauses[2] = &xquery.Where{Cond: &xquery.Binary{Op: "and",
		Left:  &xquery.Binary{Op: "=", Left: xquery.VarRef("a"), Right: xquery.Str("x")},
		Right: &xquery.Binary{Op: "=", Left: xquery.VarRef("a"), Right: xquery.VarRef("b")}}}
	p := NewPlan(q)
	if p.PredicatesPushed != 1 {
		t.Fatalf("PredicatesPushed = %d, want 1", p.PredicatesPushed)
	}
	if p.HashJoins != 1 {
		t.Fatalf("HashJoins = %d, want 1 (the $a = $b conjunct)", p.HashJoins)
	}
	fp := p.flwors[flwor]
	ops := fp.segments[0].ops
	// for $a, filter [$a = "x"], hash-join $b.
	if len(ops) != 3 || ops[0].kind != opKindFor || ops[1].kind != opKindFilter || !ops[1].pushed ||
		ops[2].kind != opKindFor || ops[2].hash == nil {
		t.Fatalf("unexpected pipeline: %v", p.Describe())
	}
	// And the engine result matches naive.
	e := joinEngine(atoms(xdm.String("x"), xdm.String("z")), atoms(xdm.Untyped("x"), xdm.Untyped("z")))
	out := diffEval(t, e, q)
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
}

func TestPlanInvariantHoisting(t *testing.T) {
	// let and inner for sources that ignore the outer variable are
	// invariant; a source referencing it is not.
	q := joinQuery("=")
	flwor := q.Body.(*xquery.FLWOR)
	flwor.Clauses = []xquery.Clause{
		&xquery.For{Var: "a", In: xquery.Call("j:L")},
		&xquery.Let{Var: "n", Expr: xquery.Call("fn:count", xquery.Call("j:R"))},
		&xquery.Let{Var: "m", Expr: xquery.Call("fn:count", xquery.VarRef("a"))},
		&xquery.For{Var: "b", In: xquery.Call("j:R")},
	}
	flwor.Return = &xquery.Seq{Items: []xquery.Expr{xquery.VarRef("n"), xquery.VarRef("m")}}
	p := NewPlan(q)
	if p.InvariantsHoisted != 2 { // let $n and for $b; let $m is variant
		t.Fatalf("InvariantsHoisted = %d, want 2", p.InvariantsHoisted)
	}
	e := joinEngine(atoms(xdm.Integer(1), xdm.Integer(2)), atoms(xdm.Integer(3)))
	diffEval(t, e, q)
}

func TestPlanInvariantForEvaluatedOnce(t *testing.T) {
	calls := 0
	e := New()
	e.Register("urn:j", "L", func([]xdm.Sequence) (xdm.Sequence, error) {
		return atoms(xdm.Integer(1), xdm.Integer(2), xdm.Integer(3)), nil
	})
	e.Register("urn:j", "R", func([]xdm.Sequence) (xdm.Sequence, error) {
		calls++
		return atoms(xdm.Integer(2)), nil
	})
	q := joinQuery("=")
	out, err := e.EvalWithContext(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("inner source evaluated %d times, want 1", calls)
	}
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
}

func TestPlanGroupByBarrier(t *testing.T) {
	// A predicate on the grouping key cannot move before the group by.
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "j", Namespace: "urn:j", Location: "j.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "r", In: xquery.Call("j:L")},
				&xquery.GroupBy{InVar: "r", PartitionVar: "part",
					Keys: []xquery.GroupKey{{Expr: xquery.VarRef("r"), Var: "k"}}},
				&xquery.Where{Cond: &xquery.Binary{Op: ">",
					Left: xquery.Call("fn:count", xquery.VarRef("part")), Right: xquery.Num("1")}},
			},
			Return: xquery.VarRef("k"),
		},
	}
	p := NewPlan(q)
	if p.PredicatesPushed != 0 {
		t.Fatalf("PredicatesPushed = %d, want 0 (group-by barrier)", p.PredicatesPushed)
	}
	fp := p.flwors[q.Body.(*xquery.FLWOR)]
	if len(fp.segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(fp.segments))
	}
	if len(fp.segments[1].ops) != 1 || fp.segments[1].ops[0].kind != opKindFilter {
		t.Fatalf("HAVING filter not in post-group segment: %v", p.Describe())
	}
	e := joinEngine(atoms(xdm.Untyped("a"), xdm.Untyped("b"), xdm.Untyped("a")), nil)
	out := diffEval(t, e, q)
	if len(out) != 1 || out[0].(xdm.Atomic).Lexical() != "a" {
		t.Fatalf("out = %s", xdm.MarshalSequence(out))
	}
}

func TestPlanShadowedBindersFallBack(t *testing.T) {
	// Variable shadowing makes "earliest binding" ambiguous; the planner
	// must keep everything at its original position.
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "j", Namespace: "urn:j", Location: "j.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "x", In: xquery.Call("j:L")},
				&xquery.For{Var: "x", In: xquery.Call("j:R")},
				&xquery.Where{Cond: &xquery.Binary{Op: "=", Left: xquery.VarRef("x"), Right: xquery.Str("r")}},
			},
			Return: xquery.VarRef("x"),
		},
	}
	p := NewPlan(q)
	if p.PredicatesPushed != 0 || p.HashJoins != 0 || p.InvariantsHoisted != 0 {
		t.Fatalf("shadowed FLWOR must not be rewritten: %+v", p)
	}
	e := joinEngine(atoms(xdm.String("l")), atoms(xdm.String("r")))
	out := diffEval(t, e, q)
	if len(out) != 1 {
		t.Fatalf("len = %d, want 1", len(out))
	}
}

func TestPlanOrderByCrossable(t *testing.T) {
	// A filter written after order by runs before the sort (filtering
	// commutes with a stable sort) — and results still match naive.
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "j", Namespace: "urn:j", Location: "j.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "r", In: xquery.Call("j:L")},
				&xquery.OrderByClause{Specs: []xquery.OrderSpec{{Expr: xquery.VarRef("r"), Descending: true}}},
				&xquery.Where{Cond: &xquery.Binary{Op: "!=", Left: xquery.VarRef("r"), Right: xquery.Str("b")}},
			},
			Return: xquery.VarRef("r"),
		},
	}
	p := NewPlan(q)
	if p.PredicatesPushed != 1 {
		t.Fatalf("PredicatesPushed = %d, want 1", p.PredicatesPushed)
	}
	e := joinEngine(atoms(xdm.Untyped("a"), xdm.Untyped("b"), xdm.Untyped("c")), nil)
	out := diffEval(t, e, q)
	if got := xdm.MarshalSequence(out); got != "c a" {
		t.Fatalf("out = %q, want %q", got, "c a")
	}
}

func TestHashJoinPreservesNestedLoopOrder(t *testing.T) {
	// Matches must emit in build-source order per probe tuple, exactly as
	// the naive inner loop would.
	left := atoms(xdm.Untyped("k"))
	right := atoms(xdm.Untyped("k"), xdm.Untyped("z"), xdm.Untyped("k"), xdm.Untyped("k"))
	e := joinEngine(left, right)
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "j", Namespace: "urn:j", Location: "j.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "a", In: xquery.Call("j:L")},
				&xquery.For{Var: "b", In: xquery.Call("j:R"), At: ""},
				&xquery.Where{Cond: &xquery.Binary{Op: "=", Left: xquery.VarRef("a"), Right: xquery.VarRef("b")}},
			},
			Return: xquery.VarRef("b"),
		},
	}
	out := diffEval(t, e, q)
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
}

func TestPlanPositionalVarDisablesHash(t *testing.T) {
	// `at` positions refer to the unfiltered source; a hash join would
	// renumber them, so the planner must not use one.
	q := joinQuery("=")
	q.Body.(*xquery.FLWOR).Clauses[1].(*xquery.For).At = "pos"
	q.Body.(*xquery.FLWOR).Return = xquery.VarRef("pos")
	p := NewPlan(q)
	if p.HashJoins != 0 {
		t.Fatalf("HashJoins = %d, want 0 with a positional variable", p.HashJoins)
	}
	e := joinEngine(atoms(xdm.Untyped("q")), atoms(xdm.Untyped("p"), xdm.Untyped("q")))
	out := diffEval(t, e, q)
	if xdm.MarshalSequence(out) != "2" {
		t.Fatalf("out = %s, want 2", xdm.MarshalSequence(out))
	}
}
