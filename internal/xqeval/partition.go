package xqeval

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obsv"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// partition.go is the engine side of federated horizontal partitioning: a
// data service function whose rows are split across shards living on
// different federated sources. Registration installs both a serial
// shard-concatenation function (so naive evaluation, static checking, and
// structural plans see an ordinary data service) and a PartitionSpec the
// cost-based planner discovers through the PartitionProvider interface.
// Stats-built plans then scatter the shard calls concurrently and gather
// them in shard order — byte-identical to the serial concatenation — with
// two per-shard pushdowns when an equality conjunct pins the shard key:
// partition pruning (only the shards the key can live on are called) and a
// per-shard filter/projection that trims rows before they enter the central
// pipeline. The central plan keeps the original conjunct as a filter, so
// pushdown never changes which tuples survive.

// ShardSpec locates one shard of a partitioned data service: the federated
// source it lives on (attribution and fault isolation) and the engine
// function serving its rows.
type ShardSpec struct {
	Source    string
	Namespace string
	Local     string
}

// PartitionSpec describes a horizontally partitioned data service function.
type PartitionSpec struct {
	// Key is the shard-key column (child element) name.
	Key string
	// Shards lists the shards in concatenation order — the serial result is
	// shard 0's rows, then shard 1's, and so on, and the scatter-gather
	// path preserves exactly that order.
	Shards []ShardSpec
	// ShardFor maps a shard-key value to the index of the only shard whose
	// rows can compare equal to it, or -1 when unknown (which disables
	// pruning for that probe). The contract is what makes pruning sound:
	// rows outside the returned shard never satisfy KEY = value.
	ShardFor func(xdm.Atomic) int
	// Partial tolerates degraded shards: a shard call failing with a
	// non-cancellation error is skipped (and counted) instead of failing
	// the scan — the partial-results mode of a federated mediator.
	Partial bool
}

// RegisterPartitioned installs a partitioned data service function: the
// namespace/local pair evaluates as the in-order concatenation of its
// shards' rows, and stats-built plans additionally see the spec for
// scatter-gather execution with shard pruning. Each shard function must be
// registered separately (typically with RegisterSourceRows under its own
// source, giving it per-source fault sites and breakers); shard calls go
// through the middleware chain on both the serial and the scattered path.
func (e *Engine) RegisterPartitioned(namespace, local string, spec *PartitionSpec) {
	e.RegisterContext(namespace, local, func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("xqeval: %s takes no arguments", local)
		}
		var out xdm.Sequence
		for _, sh := range spec.Shards {
			rows, err := e.CallContext(ctx, sh.Namespace, sh.Local, nil)
			if err != nil {
				if spec.Partial && !isContextErr(err) {
					obsv.Global.ShardsSkipped.Inc()
					continue
				}
				return nil, err
			}
			out = append(out, rows...)
		}
		return out, nil
	})
	e.mu.Lock()
	if e.partitions == nil {
		e.partitions = make(map[funcKey]*PartitionSpec)
	}
	e.partitions[funcKey{namespace, local}] = spec
	e.mu.Unlock()
}

// SourcePartition returns the partition spec registered for a function, if
// any. It makes the Engine a PartitionProvider for the planner.
func (e *Engine) SourcePartition(namespace, local string) (*PartitionSpec, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	spec, ok := e.partitions[funcKey{namespace, local}]
	return spec, ok
}

// PartitionProvider is the optional StatsProvider extension through which
// stats-built plans discover partitioned scans. Structural plans (no
// provider) and naive evaluation keep the serial concatenation function —
// they are the differential oracle the scattered path is held to.
type PartitionProvider interface {
	SourcePartition(namespace, local string) (*PartitionSpec, bool)
}

// partitionPlan is the plan-time annotation of one partitioned for: the
// spec, plus the shard-key pin found among the for's conjuncts (nil when
// none) and the projection column set when every use of the for variable is
// a plain column path (nil disables projection).
type partitionPlan struct {
	spec *PartitionSpec
	// pinCond is an unconsumed conjunct of the form $v/KEY = probe (either
	// side order) whose probe references no FLWOR-local variable, so it is
	// evaluable once per execution; pinProbe is its probe side and
	// pinValueCmp records `eq` vs `=` semantics. The conjunct stays in the
	// central pipeline as a filter — pushdown only pre-trims.
	pinCond     xquery.Expr
	pinProbe    xquery.Expr
	pinValueCmp bool
	// projCols, when non-nil, lists the only columns the FLWOR ever reads
	// off the for variable; shards' rows are projected down to them.
	projCols []string
}

// findShardPin looks among the conjuncts placed at slot j for an equality
// of the shard key column against an expression free of FLWOR-local
// variables. Unlike hash-join candidates the probe side may be constant —
// that is the interesting pruning case — and the conjunct is NOT consumed.
func findShardPin(c *xquery.For, conds []pendingCond, j int, spec *PartitionSpec) (cond, probe xquery.Expr, valueCmp, ok bool) {
	for i := range conds {
		pc := &conds[i]
		if pc.slot != j || pc.consumed {
			continue
		}
		b, okb := pc.cond.(*xquery.Binary)
		if !okb || (b.Op != "=" && b.Op != "eq") {
			continue
		}
		var probeSide xquery.Expr
		if joinKeyColumn(b.Left, c.Var) == spec.Key {
			probeSide = b.Right
		} else if joinKeyColumn(b.Right, c.Var) == spec.Key {
			probeSide = b.Left
		} else {
			continue
		}
		// The probe must not touch the for variable (or any other variable
		// bound inside the FLWOR later than evaluation time — conservatively,
		// none that the key side doesn't already preclude): findShardPin runs
		// with localBefore excluded by construction, so it only needs to
		// reject probes using the for variable itself or later bindings.
		if xquery.UsesVars(probeSide, map[string]bool{c.Var: true}) {
			continue
		}
		return pc.cond, probeSide, b.Op == "eq", true
	}
	return nil, nil, false, false
}

// projectionColumns reports whether every use of the for variable inside
// the FLWOR is a path whose first step is a plain named child (no wildcard,
// no predicates on that step) — the shape under which projecting shard rows
// down to the referenced columns is invisible to the rest of the query —
// and returns the referenced column set (plus the shard key, which the
// pushed filter reads). Any bare or non-path use disables projection.
func projectionColumns(f *xquery.FLWOR, forVar, key string) []string {
	safeBase := map[*xquery.Var]bool{}
	cols := map[string]bool{key: true}
	safe := true
	xquery.WalkExprs(f, func(e xquery.Expr) bool {
		switch e := e.(type) {
		case *xquery.Path:
			if v, ok := e.Base.(*xquery.Var); ok && v.Name == forVar {
				if len(e.Steps) > 0 && e.Steps[0].Name != "*" && len(e.Steps[0].Predicates) == 0 {
					safeBase[v] = true
					cols[e.Steps[0].Name] = true
				}
			}
		case *xquery.Var:
			if e.Name == forVar && !safeBase[e] {
				safe = false
			}
		}
		return safe
	})
	if !safe {
		return nil
	}
	out := make([]string, 0, len(cols))
	for c := range cols {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// shardOutcome is one scattered shard call's result.
type shardOutcome struct {
	rows    xdm.Sequence
	err     error
	skipped bool
}

// gatherPartitioned evaluates a partitioned for by scatter-gather:
// optionally prune to the shards a pinned key value can live on, call the
// selected shards concurrently (bounded by the engine's worker config),
// and concatenate their rows in shard order — the serial concatenation
// order, which is what keeps federated results byte-identical to the
// single-source oracle. With pushdown enabled the pinned conjunct also
// filters each shard's rows (the central filter re-checks survivors, so
// the surviving tuple set is unchanged) and rows are projected down to the
// referenced columns. transformed reports whether the returned sequence
// differs from the plain concatenation (pruned, filtered, projected, or a
// partial-mode skip) — such sequences must not feed the statistics store.
func (ex *flworExec) gatherPartitioned(op *planOp, t *scope) (seq xdm.Sequence, transformed bool, err error) {
	part := op.part
	spec := part.spec
	cfg := t.engine.Exec()
	pushdown := !cfg.DisablePartitionPushdown

	selected := make([]int, len(spec.Shards))
	for i := range selected {
		selected[i] = i
	}
	pinActive := false
	if pushdown && part.pinProbe != nil && spec.ShardFor != nil {
		if pruned, ok := ex.pruneShards(part, spec, t); ok {
			obsv.Global.ShardsPruned.Add(int64(len(selected) - len(pruned)))
			selected = pruned
			pinActive = true
			transformed = true
		}
	}

	outcomes := make([]shardOutcome, len(selected))
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, shardIdx := range selected {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, sh ShardSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			rows, err := t.engine.CallContext(t.goCtx, sh.Namespace, sh.Local, nil)
			if err != nil && spec.Partial && !isContextErr(err) {
				outcomes[i] = shardOutcome{skipped: true, err: err}
				return
			}
			outcomes[i] = shardOutcome{rows: rows, err: err}
		}(i, spec.Shards[shardIdx])
	}
	wg.Wait()

	obsv.Global.FederatedScans.Inc()
	for i, shardIdx := range selected {
		sh := spec.Shards[shardIdx]
		oc := &outcomes[i]
		if oc.skipped {
			obsv.Global.ShardsSkipped.Inc()
			transformed = true
			continue
		}
		if oc.err != nil {
			return nil, false, oc.err
		}
		obsv.Global.ShardScans.Inc()
		obsv.Global.SourceScans.Add(sh.Source, 1)
		rows := oc.rows
		if pushdown && pinActive && part.pinCond != nil {
			rows, err = ex.filterShardRows(op, part, t, rows)
			if err != nil {
				return nil, false, err
			}
			transformed = true
		}
		if pushdown && part.projCols != nil {
			rows = projectRows(rows, part.projCols)
			transformed = true
		}
		seq = append(seq, rows...)
	}
	return seq, transformed, nil
}

// pruneShards evaluates the pin probe once and maps its atoms to shard
// indices. ok is false — no pruning — when the probe cannot be evaluated
// here (its error, if real, will resurface in the central filter), when any
// atom maps outside the shard set, or when `eq` semantics face a non-
// singleton probe (the central filter owns that dynamic error).
func (ex *flworExec) pruneShards(part *partitionPlan, spec *PartitionSpec, t *scope) ([]int, bool) {
	probe, err := evalExpr(part.pinProbe, t)
	if err != nil {
		return nil, false
	}
	atoms := xdm.Atomize(probe)
	if part.pinValueCmp && len(atoms) != 1 {
		return nil, false
	}
	if len(atoms) == 0 {
		// KEY = () matches nothing and raises nothing: zero shards.
		return nil, true
	}
	set := map[int]bool{}
	for _, a := range atoms {
		at, ok := a.(xdm.Atomic)
		if !ok {
			return nil, false
		}
		idx := spec.ShardFor(at)
		if idx < 0 || idx >= len(spec.Shards) {
			return nil, false
		}
		set[idx] = true
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out, true
}

// filterShardRows applies the pinned conjunct to each shard row — the
// predicate pushdown. The central pipeline re-evaluates the same conjunct
// on survivors, so this can only shrink the rows flowing into the pipeline,
// never change the result.
func (ex *flworExec) filterShardRows(op *planOp, part *partitionPlan, t *scope, rows xdm.Sequence) (xdm.Sequence, error) {
	out := rows[:0:0]
	for _, it := range rows {
		ok, err := evalEBV(part.pinCond, t.bind(op.forClause.Var, xdm.SequenceOf(it)))
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, it)
		}
	}
	return out, nil
}

// projectRows rebuilds each flat row element keeping only the referenced
// columns (simulating a projected per-source subquery: narrower rows enter
// the central pipeline).
func projectRows(rows xdm.Sequence, cols []string) xdm.Sequence {
	keep := make(map[string]bool, len(cols))
	for _, c := range cols {
		keep[c] = true
	}
	out := make(xdm.Sequence, len(rows))
	for i, it := range rows {
		el, ok := it.(*xdm.Element)
		if !ok {
			out[i] = it
			continue
		}
		proj := &xdm.Element{Name: el.Name, Attrs: el.Attrs}
		for _, ch := range el.Children {
			if cel, ok := ch.(*xdm.Element); ok && keep[cel.Name.Local] {
				proj.Children = append(proj.Children, cel)
			}
		}
		out[i] = proj
	}
	return out
}
