package xqeval

import (
	"strings"
	"testing"

	"repro/internal/xquery"
)

func checkSrc(t *testing.T, e *Engine, src string, external ...string) error {
	t.Helper()
	q, err := xquery.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e.Check(q, external)
}

func checkEngine() *Engine {
	e := New()
	e.RegisterRows("urn:t", "T", nil)
	return e
}

const checkProlog = `import schema namespace t = "urn:t" at "t.xsd";` + "\n"

func TestCheckAcceptsValidQueries(t *testing.T) {
	e := checkEngine()
	good := []string{
		checkProlog + `for $x in t:T() where ($x/A = 1) return fn:data($x/B)`,
		checkProlog + `fn:count(t:T())`,
		checkProlog + `for $r in t:T() group $r as $p by $r/K as $k return ($k, fn:count($p))`,
		checkProlog + `let $v := t:T() for $x in $v order by $x/N return <R><N>{fn:data($x/N)}</N></R>`,
		`some $q in (1, 2, 3) satisfies ($q = 2)`,
		`xs:integer("42") + 1`,
		`for $x at $i in (1, 2) return $i`,
	}
	for _, src := range good {
		if err := checkSrc(t, e, src); err != nil {
			t.Errorf("Check(%q) = %v, want nil", src, err)
		}
	}
}

func TestCheckRejectsStaticErrors(t *testing.T) {
	e := checkEngine()
	bad := []struct{ src, want string }{
		{`$nope`, "unbound variable"},
		{`fn:no-such(1)`, "unknown function"},
		{`xs:nonsense(1)`, "unknown cast target"},
		{`ns9:F()`, "prefix not bound"},
		{checkProlog + `t:MISSING()`, "no data service function"},
		{`for $x in (1) return $y`, "unbound variable $y"},
		{`for $x in (1, 2) group $z as $p by $x as $k return $k`, "unbound variable $z"},
		{checkProlog + `for $x in t:T() return xs:bogus($x)`, "unknown cast target"},
	}
	for _, c := range bad {
		err := checkSrc(t, e, c.src)
		if err == nil {
			t.Errorf("Check(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Check(%q) error %q missing %q", c.src, err, c.want)
		}
		if _, ok := err.(*StaticError); !ok {
			t.Errorf("Check(%q) error type %T", c.src, err)
		}
	}
}

func TestCheckExternalVariables(t *testing.T) {
	e := checkEngine()
	if err := checkSrc(t, e, `$p1 + 1`); err == nil {
		t.Fatal("undeclared external should fail")
	}
	if err := checkSrc(t, e, `$p1 + 1`, "p1"); err != nil {
		t.Fatalf("declared external failed: %v", err)
	}
}

func TestCheckScoping(t *testing.T) {
	e := checkEngine()
	// A FLWOR variable is not visible outside its FLWOR.
	src := `(for $x in (1) return $x, $x)`
	if err := checkSrc(t, e, src); err == nil {
		t.Fatal("FLWOR variable must not leak to siblings")
	}
	// Quantified variable scope likewise.
	if err := checkSrc(t, e, `(some $q in (1) satisfies $q, $q)`); err == nil {
		t.Fatal("quantified variable must not leak")
	}
}

// TestCheckAgreesWithEval: for every translated conformance query shape the
// Check pass must accept what Eval executes (tested indirectly through the
// translator round-trip suite); here we just confirm Check + Eval agree on
// a representative generated query.
func TestCheckThenEval(t *testing.T) {
	e := New()
	e.RegisterRows("urn:t", "T", nil)
	src := checkProlog + `fn:string-join(
		let $actualQuery := <RECORDSET>{for $x in t:T() return <RECORD><N>{fn:data($x/N)}</N></RECORD>}</RECORDSET>
		for $tokenQuery in $actualQuery/RECORD
		return (">", fn-bea:if-empty(fn-bea:xml-escape(fn-bea:serialize-atomic(fn:data($tokenQuery/N))), "&null;"))
	, "")`
	q, err := xquery.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Check(q, nil); err != nil {
		t.Fatalf("check: %v", err)
	}
	if _, err := e.Eval(q); err != nil {
		t.Fatalf("eval: %v", err)
	}
}
