package xqeval

import (
	"context"
	"math"
	"strings"
	"time"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

// evalFuncCall dispatches a function call: xs:* constructor functions,
// data service functions resolved through schema-import prefixes, then the
// fn:/fn-bea: builtin library.
func evalFuncCall(e *xquery.FuncCall, env *scope) (xdm.Sequence, error) {
	prefix, local := xquery.FuncName(e.Name)

	if prefix == "xs" {
		if _, ok := castTargets[e.Name]; ok {
			if len(e.Args) != 1 {
				return nil, dynErr("%s expects 1 argument", e.Name)
			}
			return evalCast(&xquery.Cast{Type: e.Name, Operand: e.Args[0]}, env)
		}
	}

	if ns, ok := env.namespace(prefix); ok {
		fn, found := env.engine.lookup(ns, local)
		if !found {
			return nil, dynErr("no data service function %s in namespace %s", local, ns)
		}
		args := make([]xdm.Sequence, len(e.Args))
		for i, a := range e.Args {
			v, err := evalExpr(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		ctx := env.goCtx
		if ctx == nil {
			ctx = context.Background()
		}
		return fn(ctx, args)
	}

	// FETCH FIRST's fn:subsequence(rows, 1, n) spelling short-circuits in
	// every evaluation mode — planned and naive alike — so the limit stops
	// the producing pipeline instead of truncating a finished sequence.
	// Both differential-oracle sides take this path, keeping them aligned.
	if limit, inner, ok := subsequenceLimit(e); ok {
		var out xdm.Sequence
		err := streamLimited(inner, env, limit, func(it xdm.Item) error {
			out = append(out, it)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}

	builtin, ok := builtins[e.Name]
	if !ok {
		return nil, dynErr("unknown function %s", e.Name)
	}
	if builtin.minArgs >= 0 && len(e.Args) < builtin.minArgs {
		return nil, dynErr("%s expects at least %d argument(s), got %d", e.Name, builtin.minArgs, len(e.Args))
	}
	if builtin.maxArgs >= 0 && len(e.Args) > builtin.maxArgs {
		return nil, dynErr("%s expects at most %d argument(s), got %d", e.Name, builtin.maxArgs, len(e.Args))
	}
	args := make([]xdm.Sequence, len(e.Args))
	for i, a := range e.Args {
		v, err := evalExpr(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return builtin.impl(args)
}

type builtinFunc struct {
	minArgs int
	maxArgs int // -1 = unbounded
	impl    func(args []xdm.Sequence) (xdm.Sequence, error)
}

// builtins is the function library the generated queries use: the fn:
// subset of XQuery 1.0 Functions & Operators, plus the fn-bea: extension
// namespace the paper's result-handling wrapper and SQL function mapping
// rely on. The fn-bea: set is reconstructed from the paper's usage
// (if-empty, xml-escape, serialize-atomic) and extended where SQL-92
// semantics diverge from fn: semantics (sql-sum vs fn:sum over empty, SQL
// LIKE patterns, row-set operations with bag semantics).
var builtins map[string]builtinFunc

func init() {
	builtins = map[string]builtinFunc{
		// --- accessors and cardinality ---
		"fn:data":   {1, 1, fnData},
		"fn:string": {1, 1, fnString},
		"fn:empty":  {1, 1, fnEmpty},
		"fn:exists": {1, 1, fnExists},
		"fn:count":  {1, 1, fnCount},
		"fn:not":    {1, 1, fnNot},
		"fn:boolean": {1, 1, func(args []xdm.Sequence) (xdm.Sequence, error) {
			b, err := xdm.EffectiveBool(args[0])
			if err != nil {
				return nil, dynErr("%v", err)
			}
			return xdm.SequenceOf(xdm.Boolean(b)), nil
		}},
		"fn:true":  {0, 0, func([]xdm.Sequence) (xdm.Sequence, error) { return xdm.SequenceOf(xdm.Boolean(true)), nil }},
		"fn:false": {0, 0, func([]xdm.Sequence) (xdm.Sequence, error) { return xdm.SequenceOf(xdm.Boolean(false)), nil }},

		// --- aggregates (XQuery semantics) ---
		"fn:sum":             {1, 1, fnSum},
		"fn:avg":             {1, 1, fnAvg},
		"fn:min":             {1, 1, fnMin},
		"fn:max":             {1, 1, fnMax},
		"fn:distinct-values": {1, 1, fnDistinctValues},
		"fn:subsequence":     {2, 3, fnSubsequence},
		"fn:reverse": {1, 1, func(args []xdm.Sequence) (xdm.Sequence, error) {
			out := make(xdm.Sequence, len(args[0]))
			for i, it := range args[0] {
				out[len(out)-1-i] = it
			}
			return out, nil
		}},

		// --- strings ---
		"fn:concat":          {2, -1, fnConcat},
		"fn:string-join":     {2, 2, fnStringJoin},
		"fn:upper-case":      {1, 1, stringFunc(strings.ToUpper)},
		"fn:lower-case":      {1, 1, stringFunc(strings.ToLower)},
		"fn:string-length":   {1, 1, fnStringLength},
		"fn:substring":       {2, 3, fnSubstring},
		"fn:contains":        {2, 2, fnContains},
		"fn:starts-with":     {2, 2, fnStartsWith},
		"fn:ends-with":       {2, 2, fnEndsWith},
		"fn:normalize-space": {1, 1, stringFunc(func(s string) string { return strings.Join(strings.Fields(s), " ") })},

		// --- numerics ---
		"fn:abs":     {1, 1, numericFunc(math.Abs)},
		"fn:floor":   {1, 1, numericFunc(math.Floor)},
		"fn:ceiling": {1, 1, numericFunc(math.Ceil)},
		"fn:round":   {1, 1, numericFunc(func(f float64) float64 { return math.Floor(f + 0.5) })},

		// --- dates ---
		"fn:year-from-date":        {1, 1, temporalPart("year")},
		"fn:month-from-date":       {1, 1, temporalPart("month")},
		"fn:day-from-date":         {1, 1, temporalPart("day")},
		"fn:hours-from-time":       {1, 1, temporalPart("hours")},
		"fn:minutes-from-time":     {1, 1, temporalPart("minutes")},
		"fn:seconds-from-time":     {1, 1, temporalPart("seconds")},
		"fn:year-from-dateTime":    {1, 1, temporalPart("year")},
		"fn:month-from-dateTime":   {1, 1, temporalPart("month")},
		"fn:day-from-dateTime":     {1, 1, temporalPart("day")},
		"fn:hours-from-dateTime":   {1, 1, temporalPart("hours")},
		"fn:minutes-from-dateTime": {1, 1, temporalPart("minutes")},
		"fn:seconds-from-dateTime": {1, 1, temporalPart("seconds")},
		"fn:current-date": {0, 0, func([]xdm.Sequence) (xdm.Sequence, error) {
			now := time.Now().UTC()
			return xdm.SequenceOf(xdm.Date{T: time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, time.UTC)}), nil
		}},
		"fn:current-time": {0, 0, func([]xdm.Sequence) (xdm.Sequence, error) {
			return xdm.SequenceOf(xdm.Time{T: time.Now().UTC()}), nil
		}},
		"fn:current-dateTime": {0, 0, func([]xdm.Sequence) (xdm.Sequence, error) {
			return xdm.SequenceOf(xdm.DateTime{T: time.Now().UTC()}), nil
		}},

		// --- fn-bea: extensions ---
		"fn-bea:if-empty":         {2, 2, beaIfEmpty},
		"fn-bea:xml-escape":       {1, 1, stringFunc(xdm.EscapeText)},
		"fn-bea:serialize-atomic": {1, 1, beaSerializeAtomic},
		"fn-bea:sql-like":         {2, 3, beaSQLLike},
		"fn-bea:sql-sum":          {1, 1, beaSQLAgg(fnSum)},
		"fn-bea:sql-avg":          {1, 1, beaSQLAgg(fnAvg)},
		"fn-bea:sql-min":          {1, 1, beaSQLAgg(fnMin)},
		"fn-bea:sql-max":          {1, 1, beaSQLAgg(fnMax)},
		"fn-bea:trim":             {1, 2, beaTrim(strings.Trim, strings.TrimSpace)},
		"fn-bea:trim-left":        {1, 2, beaTrim(strings.TrimLeft, func(s string) string { return strings.TrimLeft(s, " \t\r\n") })},
		"fn-bea:trim-right":       {1, 2, beaTrim(strings.TrimRight, func(s string) string { return strings.TrimRight(s, " \t\r\n") })},
		"fn-bea:distinct-rows":    {1, 1, beaDistinctRows},
		"fn-bea:rows-except":      {3, 3, beaRowsSetOp(false)},
		"fn-bea:rows-intersect":   {3, 3, beaRowsSetOp(true)},
		"fn-bea:position":         {2, 2, beaPosition},
		"fn-bea:repeat":           {2, 2, beaRepeat},
	}
}

func fnData(args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Atomize(args[0]), nil
}

func fnString(args []xdm.Sequence) (xdm.Sequence, error) {
	if args[0].Empty() {
		return xdm.SequenceOf(xdm.String("")), nil
	}
	it, err := args[0].Singleton()
	if err != nil {
		return nil, dynErr("fn:string: %v", err)
	}
	return xdm.SequenceOf(xdm.String(xdm.StringValue(it))), nil
}

func fnEmpty(args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.SequenceOf(xdm.Boolean(args[0].Empty())), nil
}

func fnExists(args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.SequenceOf(xdm.Boolean(!args[0].Empty())), nil
}

func fnCount(args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.SequenceOf(xdm.Integer(len(args[0]))), nil
}

func fnNot(args []xdm.Sequence) (xdm.Sequence, error) {
	b, err := xdm.EffectiveBool(args[0])
	if err != nil {
		return nil, dynErr("fn:not: %v", err)
	}
	return xdm.SequenceOf(xdm.Boolean(!b)), nil
}

// numericAtoms atomizes a sequence and casts untyped members to double,
// the XQuery aggregate preparation step.
func numericAtoms(s xdm.Sequence) ([]xdm.Atomic, error) {
	atoms := xdm.Atomize(s)
	out := make([]xdm.Atomic, 0, len(atoms))
	for _, it := range atoms {
		a := it.(xdm.Atomic)
		if a.Type() == xdm.TypeUntyped {
			c, err := xdm.Cast(a, xdm.TypeDouble)
			if err != nil {
				return nil, dynErr("aggregate over non-numeric value %q", a.Lexical())
			}
			a = c
		}
		out = append(out, a)
	}
	return out, nil
}

func fnSum(args []xdm.Sequence) (xdm.Sequence, error) {
	atoms, err := numericAtoms(args[0])
	if err != nil {
		return nil, err
	}
	if len(atoms) == 0 {
		return xdm.SequenceOf(xdm.Integer(0)), nil // fn:sum(()) = 0
	}
	acc := atoms[0]
	for _, a := range atoms[1:] {
		acc, err = xdm.Arith(acc, a, xdm.OpAdd)
		if err != nil {
			return nil, dynErr("fn:sum: %v", err)
		}
	}
	return xdm.SequenceOf(acc), nil
}

func fnAvg(args []xdm.Sequence) (xdm.Sequence, error) {
	atoms, err := numericAtoms(args[0])
	if err != nil {
		return nil, err
	}
	if len(atoms) == 0 {
		return nil, nil // fn:avg(()) = ()
	}
	sum, err := fnSum(args)
	if err != nil {
		return nil, err
	}
	res, err := xdm.Arith(sum[0].(xdm.Atomic), xdm.Integer(int64(len(atoms))), xdm.OpDiv)
	if err != nil {
		return nil, dynErr("fn:avg: %v", err)
	}
	return xdm.SequenceOf(res), nil
}

func fnMin(args []xdm.Sequence) (xdm.Sequence, error) { return extreme(args[0], true) }
func fnMax(args []xdm.Sequence) (xdm.Sequence, error) { return extreme(args[0], false) }

func extreme(s xdm.Sequence, min bool) (xdm.Sequence, error) {
	atoms := xdm.Atomize(s)
	if len(atoms) == 0 {
		return nil, nil
	}
	// Per F&O, fn:min/fn:max treat xs:untypedAtomic inputs as xs:double.
	// When an untyped value is non-numeric, fall back to string comparison
	// for the whole sequence (lenient engine behavior for schemaless
	// string columns).
	vals := make([]xdm.Atomic, len(atoms))
	numeric := true
	for i, it := range atoms {
		a := it.(xdm.Atomic)
		vals[i] = a
		if a.Type() == xdm.TypeUntyped {
			if _, err := xdm.Cast(a, xdm.TypeDouble); err != nil {
				numeric = false
			}
		}
	}
	if numeric {
		for i, a := range vals {
			if a.Type() == xdm.TypeUntyped {
				c, err := xdm.Cast(a, xdm.TypeDouble)
				if err != nil {
					return nil, dynErr("min/max: %v", err)
				}
				vals[i] = c
			}
		}
	}
	best := vals[0]
	for _, a := range vals[1:] {
		cmp, err := xdm.OrderAtomic(a, best)
		if err != nil {
			return nil, dynErr("min/max: %v", err)
		}
		if (min && cmp < 0) || (!min && cmp > 0) {
			best = a
		}
	}
	return xdm.SequenceOf(best), nil
}

// fnSubsequence implements fn:subsequence with the rounding rules of F&O:
// items at positions p with round(start) <= p < round(start)+round(length).
func fnSubsequence(args []xdm.Sequence) (xdm.Sequence, error) {
	src := args[0]
	start, err := seqFloat(args[1], "fn:subsequence start")
	if err != nil {
		return nil, err
	}
	length := math.Inf(1)
	if len(args) == 3 {
		length, err = seqFloat(args[2], "fn:subsequence length")
		if err != nil {
			return nil, err
		}
	}
	lo := math.Floor(start + 0.5)
	hi := lo + math.Floor(length+0.5)
	var out xdm.Sequence
	for i, it := range src {
		p := float64(i + 1)
		if p >= lo && p < hi {
			out = append(out, it)
		}
	}
	return out, nil
}

func fnDistinctValues(args []xdm.Sequence) (xdm.Sequence, error) {
	atoms := xdm.Atomize(args[0])
	var out xdm.Sequence
	seen := map[string]bool{}
	for _, it := range atoms {
		a := it.(xdm.Atomic)
		// Distinctness by promoted value: use a normalized key of type
		// class + canonical lexical so 1 and 1.0 collapse.
		key := distinctKey(a)
		if !seen[key] {
			seen[key] = true
			out = append(out, a)
		}
	}
	return out, nil
}

func distinctKey(a xdm.Atomic) string {
	switch a.Type() {
	case xdm.TypeInteger, xdm.TypeDecimal, xdm.TypeDouble:
		d, err := xdm.Cast(a, xdm.TypeDouble)
		if err != nil {
			return "n:" + a.Lexical()
		}
		return "n:" + d.Lexical()
	case xdm.TypeString, xdm.TypeUntyped:
		return "s:" + a.Lexical()
	default:
		return a.Type().String() + ":" + a.Lexical()
	}
}

func fnConcat(args []xdm.Sequence) (xdm.Sequence, error) {
	var b strings.Builder
	for _, a := range args {
		if a.Empty() {
			continue // fn:concat treats () as ""
		}
		it, err := a.Singleton()
		if err != nil {
			return nil, dynErr("fn:concat: %v", err)
		}
		b.WriteString(xdm.StringValue(it))
	}
	return xdm.SequenceOf(xdm.String(b.String())), nil
}

func fnStringJoin(args []xdm.Sequence) (xdm.Sequence, error) {
	sep := ""
	if !args[1].Empty() {
		it, err := args[1].Singleton()
		if err != nil {
			return nil, dynErr("fn:string-join separator: %v", err)
		}
		sep = xdm.StringValue(it)
	}
	parts := make([]string, len(args[0]))
	for i, it := range args[0] {
		parts[i] = xdm.StringValue(it)
	}
	return xdm.SequenceOf(xdm.String(strings.Join(parts, sep))), nil
}

// stringFunc lifts a string transformation into a builtin with ()→()
// propagation.
func stringFunc(f func(string) string) func([]xdm.Sequence) (xdm.Sequence, error) {
	return func(args []xdm.Sequence) (xdm.Sequence, error) {
		if args[0].Empty() {
			return nil, nil
		}
		it, err := args[0].Singleton()
		if err != nil {
			return nil, dynErr("string function: %v", err)
		}
		return xdm.SequenceOf(xdm.String(f(xdm.StringValue(it)))), nil
	}
}

func fnStringLength(args []xdm.Sequence) (xdm.Sequence, error) {
	if args[0].Empty() {
		return nil, nil
	}
	it, err := args[0].Singleton()
	if err != nil {
		return nil, dynErr("fn:string-length: %v", err)
	}
	return xdm.SequenceOf(xdm.Integer(len([]rune(xdm.StringValue(it))))), nil
}

func fnSubstring(args []xdm.Sequence) (xdm.Sequence, error) {
	if args[0].Empty() {
		return nil, nil
	}
	src := []rune(seqString(args[0]))
	start, err := seqFloat(args[1], "fn:substring start")
	if err != nil {
		return nil, err
	}
	length := math.Inf(1)
	if len(args) == 3 {
		length, err = seqFloat(args[2], "fn:substring length")
		if err != nil {
			return nil, err
		}
	}
	// XQuery substring: 1-based, rounds, position p kept iff
	// round(start) <= p < round(start)+round(length).
	lo := math.Floor(start + 0.5)
	hi := lo + math.Floor(length+0.5)
	var b strings.Builder
	for i, r := range src {
		p := float64(i + 1)
		if p >= lo && p < hi {
			b.WriteRune(r)
		}
	}
	return xdm.SequenceOf(xdm.String(b.String())), nil
}

func fnContains(args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.SequenceOf(xdm.Boolean(strings.Contains(seqString(args[0]), seqString(args[1])))), nil
}

func fnStartsWith(args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.SequenceOf(xdm.Boolean(strings.HasPrefix(seqString(args[0]), seqString(args[1])))), nil
}

func fnEndsWith(args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.SequenceOf(xdm.Boolean(strings.HasSuffix(seqString(args[0]), seqString(args[1])))), nil
}

func numericFunc(f func(float64) float64) func([]xdm.Sequence) (xdm.Sequence, error) {
	return func(args []xdm.Sequence) (xdm.Sequence, error) {
		if args[0].Empty() {
			return nil, nil
		}
		a, err := singletonAtomicSeq(args[0], "numeric function argument")
		if err != nil {
			return nil, err
		}
		switch a.Type() {
		case xdm.TypeInteger:
			v := f(float64(a.(xdm.Integer)))
			return xdm.SequenceOf(xdm.Integer(int64(v))), nil
		case xdm.TypeDecimal:
			return xdm.SequenceOf(xdm.Decimal(f(float64(a.(xdm.Decimal))))), nil
		case xdm.TypeDouble:
			return xdm.SequenceOf(xdm.Double(f(float64(a.(xdm.Double))))), nil
		case xdm.TypeUntyped:
			c, err := xdm.Cast(a, xdm.TypeDouble)
			if err != nil {
				return nil, dynErr("%v", err)
			}
			return xdm.SequenceOf(xdm.Double(f(float64(c.(xdm.Double))))), nil
		default:
			return nil, dynErr("numeric function over %s", a.Type())
		}
	}
}

func temporalPart(part string) func([]xdm.Sequence) (xdm.Sequence, error) {
	return func(args []xdm.Sequence) (xdm.Sequence, error) {
		if args[0].Empty() {
			return nil, nil
		}
		a, err := singletonAtomicSeq(args[0], "temporal function argument")
		if err != nil {
			return nil, err
		}
		var tv time.Time
		switch v := a.(type) {
		case xdm.Date:
			tv = v.T
		case xdm.Time:
			tv = v.T
		case xdm.DateTime:
			tv = v.T
		case xdm.Untyped, xdm.String:
			if dt, err := xdm.Cast(a, xdm.TypeDateTime); err == nil {
				tv = dt.(xdm.DateTime).T
			} else if d, err := xdm.Cast(a, xdm.TypeDate); err == nil {
				tv = d.(xdm.Date).T
			} else if tm, err := xdm.Cast(a, xdm.TypeTime); err == nil {
				tv = tm.(xdm.Time).T
			} else {
				return nil, dynErr("cannot extract %s from %q", part, a.Lexical())
			}
		default:
			return nil, dynErr("cannot extract %s from %s", part, a.Type())
		}
		var n int
		switch part {
		case "year":
			n = tv.Year()
		case "month":
			n = int(tv.Month())
		case "day":
			n = tv.Day()
		case "hours":
			n = tv.Hour()
		case "minutes":
			n = tv.Minute()
		case "seconds":
			n = tv.Second()
		}
		return xdm.SequenceOf(xdm.Integer(n)), nil
	}
}

func beaIfEmpty(args []xdm.Sequence) (xdm.Sequence, error) {
	if args[0].Empty() {
		return args[1], nil
	}
	return args[0], nil
}

func beaSerializeAtomic(args []xdm.Sequence) (xdm.Sequence, error) {
	if args[0].Empty() {
		return nil, nil
	}
	a, err := singletonAtomicSeq(args[0], "fn-bea:serialize-atomic argument")
	if err != nil {
		return nil, err
	}
	return xdm.SequenceOf(xdm.String(a.Lexical())), nil
}

// beaSQLLike implements SQL-92 LIKE: % matches any run, _ any single
// character, with an optional single-character escape.
func beaSQLLike(args []xdm.Sequence) (xdm.Sequence, error) {
	if args[0].Empty() || args[1].Empty() {
		return nil, nil // NULL LIKE … is unknown
	}
	s := seqString(args[0])
	pattern := seqString(args[1])
	escape := ""
	if len(args) == 3 && !args[2].Empty() {
		escape = seqString(args[2])
		if len([]rune(escape)) != 1 {
			return nil, dynErr("LIKE escape must be a single character, got %q", escape)
		}
	}
	ok, err := likeMatch(s, pattern, escape)
	if err != nil {
		return nil, err
	}
	return xdm.SequenceOf(xdm.Boolean(ok)), nil
}

// likeMatch matches SQL LIKE patterns via backtracking on %.
func likeMatch(s, pattern, escape string) (bool, error) {
	type token struct {
		kind byte // 'c' literal char, '_' any one, '%' any run
		ch   rune
	}
	var toks []token
	esc := rune(0)
	if escape != "" {
		esc = []rune(escape)[0]
	}
	runes := []rune(pattern)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch {
		case esc != 0 && r == esc:
			if i+1 >= len(runes) {
				return false, dynErr("LIKE pattern ends with escape character")
			}
			i++
			toks = append(toks, token{kind: 'c', ch: runes[i]})
		case r == '%':
			toks = append(toks, token{kind: '%'})
		case r == '_':
			toks = append(toks, token{kind: '_'})
		default:
			toks = append(toks, token{kind: 'c', ch: r})
		}
	}
	str := []rune(s)
	var match func(si, ti int) bool
	match = func(si, ti int) bool {
		for ti < len(toks) {
			t := toks[ti]
			switch t.kind {
			case '%':
				for k := si; k <= len(str); k++ {
					if match(k, ti+1) {
						return true
					}
				}
				return false
			case '_':
				if si >= len(str) {
					return false
				}
				si++
				ti++
			default:
				if si >= len(str) || str[si] != t.ch {
					return false
				}
				si++
				ti++
			}
		}
		return si == len(str)
	}
	return match(0, 0), nil
}

// beaSQLAgg wraps an fn: aggregate with SQL empty-input semantics:
// aggregates over zero (non-NULL) inputs yield NULL (the empty sequence).
func beaSQLAgg(inner func([]xdm.Sequence) (xdm.Sequence, error)) func([]xdm.Sequence) (xdm.Sequence, error) {
	return func(args []xdm.Sequence) (xdm.Sequence, error) {
		if args[0].Empty() {
			return nil, nil
		}
		return inner(args)
	}
}

func beaTrim(cut func(string, string) string, plain func(string) string) func([]xdm.Sequence) (xdm.Sequence, error) {
	return func(args []xdm.Sequence) (xdm.Sequence, error) {
		if args[0].Empty() {
			return nil, nil
		}
		s := seqString(args[0])
		if len(args) == 2 && !args[1].Empty() {
			return xdm.SequenceOf(xdm.String(cut(s, seqString(args[1])))), nil
		}
		return xdm.SequenceOf(xdm.String(plain(s))), nil
	}
}

// beaDistinctRows keeps the first occurrence of each distinct row element,
// where row identity is the (column name, value) list — the row-set
// DISTINCT/UNION primitive.
func beaDistinctRows(args []xdm.Sequence) (xdm.Sequence, error) {
	seen := map[string]bool{}
	var out xdm.Sequence
	for _, it := range args[0] {
		el, ok := it.(*xdm.Element)
		if !ok {
			return nil, dynErr("fn-bea:distinct-rows over non-element item")
		}
		key := xdm.SortKey(el)
		if !seen[key] {
			seen[key] = true
			out = append(out, el)
		}
	}
	return out, nil
}

// beaRowsSetOp implements EXCEPT/INTERSECT over row elements with SQL
// semantics. The third argument is the ALL flag: with ALL, bag semantics
// (per-duplicate counting); without, set semantics over distinct rows.
func beaRowsSetOp(intersect bool) func([]xdm.Sequence) (xdm.Sequence, error) {
	return func(args []xdm.Sequence) (xdm.Sequence, error) {
		all := false
		if !args[2].Empty() {
			b, err := xdm.EffectiveBool(args[2])
			if err != nil {
				return nil, dynErr("set-op ALL flag: %v", err)
			}
			all = b
		}
		rightCount := map[string]int{}
		for _, it := range args[1] {
			el, ok := it.(*xdm.Element)
			if !ok {
				return nil, dynErr("row set operation over non-element item")
			}
			rightCount[xdm.SortKey(el)]++
		}
		var out xdm.Sequence
		emitted := map[string]bool{}
		for _, it := range args[0] {
			el, ok := it.(*xdm.Element)
			if !ok {
				return nil, dynErr("row set operation over non-element item")
			}
			key := xdm.SortKey(el)
			inRight := rightCount[key] > 0
			switch {
			case all && intersect:
				if inRight {
					rightCount[key]--
					out = append(out, el)
				}
			case all && !intersect:
				if inRight {
					rightCount[key]--
				} else {
					out = append(out, el)
				}
			case intersect:
				if inRight && !emitted[key] {
					emitted[key] = true
					out = append(out, el)
				}
			default: // EXCEPT DISTINCT
				if !inRight && !emitted[key] {
					emitted[key] = true
					out = append(out, el)
				}
			}
		}
		return out, nil
	}
}

// beaPosition returns the 1-based position of needle in haystack (SQL
// POSITION), 0 when absent.
func beaPosition(args []xdm.Sequence) (xdm.Sequence, error) {
	if args[0].Empty() || args[1].Empty() {
		return nil, nil
	}
	needle := seqString(args[0])
	hay := seqString(args[1])
	if needle == "" {
		return xdm.SequenceOf(xdm.Integer(1)), nil
	}
	idx := strings.Index(hay, needle)
	if idx < 0 {
		return xdm.SequenceOf(xdm.Integer(0)), nil
	}
	return xdm.SequenceOf(xdm.Integer(len([]rune(hay[:idx])) + 1)), nil
}

// beaRepeat repeats a string n times (used by padding translations).
func beaRepeat(args []xdm.Sequence) (xdm.Sequence, error) {
	if args[0].Empty() || args[1].Empty() {
		return nil, nil
	}
	n, err := seqFloat(args[1], "fn-bea:repeat count")
	if err != nil {
		return nil, err
	}
	if n < 0 {
		n = 0
	}
	return xdm.SequenceOf(xdm.String(strings.Repeat(seqString(args[0]), int(n)))), nil
}

func seqString(s xdm.Sequence) string {
	if s.Empty() {
		return ""
	}
	return xdm.StringValue(s[0])
}

func seqFloat(s xdm.Sequence, what string) (float64, error) {
	a, err := singletonAtomicSeq(s, what)
	if err != nil {
		return 0, err
	}
	d, err := xdm.Cast(a, xdm.TypeDouble)
	if err != nil {
		return 0, dynErr("%s: %v", what, err)
	}
	return float64(d.(xdm.Double)), nil
}

func singletonAtomicSeq(s xdm.Sequence, what string) (xdm.Atomic, error) {
	atoms := xdm.Atomize(s)
	it, err := atoms.Singleton()
	if err != nil {
		return nil, dynErr("%s: %v", what, err)
	}
	return it.(xdm.Atomic), nil
}
