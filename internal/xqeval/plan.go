package xqeval

import (
	"fmt"
	"strings"

	"repro/internal/obsv"
	"repro/internal/xquery"
)

// plan.go is the query planner: a static pass over a parsed query that
// rewrites each FLWOR's clause list into an executable pipeline with three
// optimizations the paper's translator deliberately leaves to the server
// (§3.4/§3.5): loop-invariant hoisting of for-sources and let-expressions,
// where-conjunct decomposition with predicate pushdown, and hash execution
// of equi-join conjuncts. The plan is immutable after construction — one
// plan is shared by every execution of a prepared statement, concurrently —
// and all per-run state lives in the executor (plan_exec.go).
//
// The planner never changes which tuples a query produces; it may change
// *whether and when dynamic errors surface* (a predicate evaluated earlier
// can raise an error the naive pipeline never reached, and a hash probe
// skips comparisons the naive nested loop would have performed). XQuery
// §2.3.4 explicitly permits this latitude, and the differential tests pin
// the value-level equivalence on the whole generated-query corpus.

// Plan is an optimized execution plan for one query. Build it once with
// NewPlan and evaluate with Engine.EvalPlanWithTrace; the zero decisions
// case degrades to the naive pipeline's behavior at streaming cost.
type Plan struct {
	Query *xquery.Query

	// Stream is the body's streaming decomposition (stream.go): how — and
	// whether — EvalStream can deliver rows incrementally. Compiled-query
	// artifacts carry it, so cached statements stream without re-analysis.
	Stream *StreamPlan

	flwors  map[*xquery.FLWOR]*flworPlan
	ordered []*flworPlan

	// Static decision counts across all FLWORs in the query.
	HashJoins         int
	PredicatesPushed  int
	InvariantsHoisted int
	// StatsSources counts scans the cost model annotated with an estimated
	// cardinality — zero when the plan was built without statistics (the
	// structural fallback) or before any source had been observed.
	StatsSources int
	// PartitionedScans counts scans of partitioned data services the plan
	// will scatter-gather; ShardPins counts those whose shard key is pinned
	// by an equality conjunct (eligible for partition pruning).
	PartitionedScans int
	ShardPins        int
}

// StatsProvider supplies per-data-service statistics to the planner; the
// Engine implements it (stats.go). A nil provider yields the structural
// plan — identical decisions to the pre-statistics planner.
type StatsProvider interface {
	SourceStats(namespace, local string) (*SourceStats, bool)
}

// scanRef statically identifies a for-source as one registered data
// service function: a zero-argument call through a prolog-bound prefix.
// It is the key under which statistics are collected and looked up.
type scanRef struct {
	prefix    string
	namespace string
	local     string
}

// flworPlan is the pipeline for one FLWOR: streaming segments separated by
// materializing barriers (group by / order by).
type flworPlan struct {
	id       int
	flwor    *xquery.FLWOR
	segments []planSegment
	// numStates sizes the per-execution state array (invariant caches and
	// hash tables, keyed by op stateIdx).
	numStates int
	// eager marks a stats-built plan: invariant states and hash tables are
	// materialized up front (before the tuple loop) rather than lazily on
	// the first tuple, enabling the empty-build early-out and the parallel
	// executor's shared read-only build tables. Error *timing* may differ
	// from the lazy path (§2.3.4 latitude); values never do.
	eager bool
}

// planSegment is a run of streaming ops ending at an optional barrier
// clause that must see the whole tuple set at once.
type planSegment struct {
	ops     []planOp
	barrier xquery.Clause // *xquery.GroupBy or *xquery.OrderByClause; nil on the final segment
}

type opKind int

const (
	opKindFor opKind = iota
	opKindLet
	opKindFilter
)

// planOp is one streaming pipeline operator.
type planOp struct {
	kind opKind

	forClause *xquery.For // opKindFor
	letClause *xquery.Let // opKindLet
	cond      xquery.Expr // opKindFilter: one where-conjunct

	// invariant marks a for/let whose expression references no FLWOR-local
	// variable bound earlier in the pipeline: it is evaluated once per
	// FLWOR execution (lazily, on the first tuple) instead of once per
	// tuple.
	invariant bool
	// hoisted marks an invariant op that the naive pipeline would actually
	// have re-evaluated (a for precedes it) — the cases worth counting.
	hoisted bool
	// pushed marks a filter placed earlier than its originating where
	// clause.
	pushed bool
	// stateIdx indexes the executor's per-run state array; -1 when the op
	// carries no state.
	stateIdx int

	// hash turns an invariant for into a hash join.
	hash *hashJoinSpec

	// scan is set when the for-source is a statically resolvable data
	// service call — the statistics key for lazy collection and cost
	// lookup. estRows is the stats-estimated source cardinality, -1 when
	// unknown (no provider, or source not yet observed).
	scan    *scanRef
	estRows int64

	// part annotates an invariant scan of a partitioned data service
	// (partition.go): the executor scatter-gathers its shards instead of
	// calling the serial concatenation function. Only stats-built plans
	// carry it, so the structural plan and the naive pipeline remain the
	// single-source differential oracle.
	part *partitionPlan
}

// hashJoinSpec executes an equi-join conjunct as a build/probe hash join:
// buildExpr depends only on the for variable (evaluated once per source
// item to build the table), probeExpr only on variables bound earlier
// (evaluated once per incoming tuple to probe it).
type hashJoinSpec struct {
	cond      xquery.Expr // the original conjunct, for EXPLAIN output
	probeExpr xquery.Expr
	buildExpr xquery.Expr
	// valueCmp distinguishes `eq` (value comparison) from `=` (general,
	// existential comparison); the executor verifies every hash candidate
	// under the exact operator semantics.
	valueCmp bool

	// Cost-model annotations (stats-built plans only; see pickHashConjunct).
	// keyCol is the build-side key column when the build expression is a
	// single-step path off the for variable; estBuild/estDistinct are the
	// estimated build cardinality and key distinctness (-1/0 = unknown);
	// statsPick records that statistics chose this key over at least one
	// other hashable equi-conjunct.
	keyCol      string
	estBuild    int64
	estDistinct int64
	statsPick   bool
}

// NewPlan plans every FLWOR in the query body structurally, with no
// statistics input. The result is immutable and safe for concurrent
// executions. The differential oracle compares this plan against the naive
// pipeline, so its decisions stay purely syntactic.
func NewPlan(q *xquery.Query) *Plan {
	return buildPlan(q, nil)
}

// NewPlanStats plans with a statistics provider: scans resolved against
// the prolog's schema imports are annotated with estimated cardinalities,
// hash joins carry build-side cost estimates, and when a join offers
// several hashable equi-conjuncts the highest-distinct key wins (an
// order-preserving choice — unchosen conjuncts remain ordinary filters, so
// the tuple stream is identical to the structural plan's). Stats-built
// plans also evaluate invariant states eagerly, which lets empty build
// sides short-circuit whole segments. A provider with no observations
// degrades to exactly the structural plan, plus eagerness.
func NewPlanStats(q *xquery.Query, sp StatsProvider) *Plan {
	return buildPlan(q, sp)
}

func buildPlan(q *xquery.Query, sp StatsProvider) *Plan {
	p := &Plan{Query: q, Stream: planStream(q.Body), flwors: map[*xquery.FLWOR]*flworPlan{}}
	pc := &planCtx{sp: sp, prefixes: map[string]string{}}
	for _, imp := range q.Prolog.SchemaImports {
		pc.prefixes[imp.Prefix] = imp.Namespace
	}
	xquery.WalkExprs(q.Body, func(e xquery.Expr) bool {
		if f, ok := e.(*xquery.FLWOR); ok {
			fp := planFLWOR(f, p, pc)
			fp.id = len(p.ordered) + 1
			p.flwors[f] = fp
			p.ordered = append(p.ordered, fp)
		}
		return true
	})
	obsv.Global.PlansBuilt.Inc()
	obsv.Global.PlanHashJoins.Add(int64(p.HashJoins))
	obsv.Global.PlanPredicatesPushed.Add(int64(p.PredicatesPushed))
	obsv.Global.PlanInvariantsHoisted.Add(int64(p.InvariantsHoisted))
	return p
}

// planCtx carries per-query planning inputs: the prolog's prefix bindings
// (to resolve scan sources) and the optional statistics provider.
type planCtx struct {
	prefixes map[string]string
	sp       StatsProvider
}

// resolveScan recognizes a for-source of the form prefix:LOCAL() — a
// zero-argument data service call through a prolog-bound prefix.
func (pc *planCtx) resolveScan(e xquery.Expr) *scanRef {
	fc, ok := e.(*xquery.FuncCall)
	if !ok || len(fc.Args) != 0 {
		return nil
	}
	i := strings.IndexByte(fc.Name, ':')
	if i < 0 {
		return nil
	}
	prefix, local := fc.Name[:i], fc.Name[i+1:]
	ns, ok := pc.prefixes[prefix]
	if !ok {
		return nil
	}
	return &scanRef{prefix: prefix, namespace: ns, local: local}
}

// sourceStats looks up statistics for a resolved scan; nil when no
// provider is installed or the source has not been observed.
func (pc *planCtx) sourceStats(ref *scanRef) *SourceStats {
	if pc.sp == nil || ref == nil {
		return nil
	}
	st, ok := pc.sp.SourceStats(ref.namespace, ref.local)
	if !ok {
		return nil
	}
	return st
}

// pipeEntry is one non-where clause during planning, with the set of local
// variables bound once it has run.
type pipeEntry struct {
	clause     xquery.Clause
	boundAfter map[string]bool
}

// pendingCond is one where-conjunct awaiting placement. slot is the entry
// index it runs after (-1 = before the first entry, i.e. once per FLWOR
// execution).
type pendingCond struct {
	cond     xquery.Expr
	slot     int
	pushed   bool
	consumed bool // absorbed into a hash join
}

func planFLWOR(f *xquery.FLWOR, p *Plan, pc *planCtx) *flworPlan {
	fp := &flworPlan{flwor: f, eager: pc.sp != nil}

	entries, conds, rewrite := layoutFLWOR(f)

	// Assemble segments: filters attach right after the entry their slot
	// names; barriers close the running segment.
	var segs []planSegment
	var cur planSegment
	emitFilters := func(slot int) {
		for i := range conds {
			c := &conds[i]
			if c.slot != slot || c.consumed {
				continue
			}
			cur.ops = append(cur.ops, planOp{kind: opKindFilter, cond: c.cond, pushed: c.pushed, stateIdx: -1})
			if c.pushed {
				p.PredicatesPushed++
			}
		}
	}

	emitFilters(-1)
	sawFor := false
	for j, ent := range entries {
		localBefore := map[string]bool{}
		if j > 0 {
			localBefore = entries[j-1].boundAfter
		}
		switch c := ent.clause.(type) {
		case *xquery.For:
			op := planOp{kind: opKindFor, forClause: c, stateIdx: -1, estRows: -1}
			if rewrite && !xquery.UsesVars(c.In, localBefore) {
				op.invariant = true
				op.hoisted = sawFor
				op.stateIdx = fp.numStates
				fp.numStates++
				if op.hoisted {
					p.InvariantsHoisted++
				}
				op.scan = pc.resolveScan(c.In)
				st := pc.sourceStats(op.scan)
				if st != nil {
					op.estRows = st.Rows
					p.StatsSources++
				}
				if c.At == "" {
					if spec := pickHashConjunct(c, conds, j, localBefore, st); spec != nil {
						op.hash = spec
						p.HashJoins++
					}
				}
				if op.scan != nil {
					if pp, ok := pc.sp.(PartitionProvider); ok {
						if spec, ok := pp.SourcePartition(op.scan.namespace, op.scan.local); ok {
							op.part = &partitionPlan{spec: spec}
							p.PartitionedScans++
							// Positional binding pins row indices to the full
							// concatenation; pruning and filtering would shift
							// them, so the pushdowns require no `at` clause.
							if c.At == "" {
								if cond, probe, valueCmp, ok := findShardPin(c, conds, j, spec); ok {
									op.part.pinCond = cond
									op.part.pinProbe = probe
									op.part.pinValueCmp = valueCmp
									p.ShardPins++
								}
								op.part.projCols = projectionColumns(f, c.Var, spec.Key)
							}
						}
					}
				}
			}
			cur.ops = append(cur.ops, op)
			sawFor = true
		case *xquery.Let:
			op := planOp{kind: opKindLet, letClause: c, stateIdx: -1}
			if rewrite && !xquery.UsesVars(c.Expr, localBefore) {
				op.invariant = true
				op.hoisted = sawFor
				op.stateIdx = fp.numStates
				fp.numStates++
				if op.hoisted {
					p.InvariantsHoisted++
				}
			}
			cur.ops = append(cur.ops, op)
		case *xquery.GroupBy, *xquery.OrderByClause:
			cur.barrier = ent.clause
			segs = append(segs, cur)
			cur = planSegment{}
		}
		emitFilters(j)
	}
	segs = append(segs, cur)
	fp.segments = segs
	return fp
}

// layoutFLWOR splits a FLWOR's clauses into pipeline entries and placed
// where-conjuncts. rewrite is false when the clause list shadows a variable
// name — then every conjunct stays at its original position and no op is
// treated as invariant, because "earliest binding" is ambiguous. (The
// translator never emits shadowing; this guards hand-written queries.)
func layoutFLWOR(f *xquery.FLWOR) (entries []pipeEntry, conds []pendingCond, rewrite bool) {
	rewrite = true
	seen := map[string]bool{}
	binder := func(name string) {
		if name == "" {
			return
		}
		if seen[name] {
			rewrite = false
		}
		seen[name] = true
	}
	for _, cl := range f.Clauses {
		switch c := cl.(type) {
		case *xquery.For:
			binder(c.Var)
			binder(c.At)
		case *xquery.Let:
			binder(c.Var)
		case *xquery.GroupBy:
			for _, k := range c.Keys {
				binder(k.Var)
			}
			binder(c.PartitionVar)
		}
	}

	bound := map[string]bool{}
	lastGroupBy := -1
	for _, cl := range f.Clauses {
		switch c := cl.(type) {
		case *xquery.Where:
			origin := len(entries) - 1
			for _, conj := range xquery.SplitConjuncts(c.Cond) {
				slot := origin
				if rewrite {
					slot = placeConjunct(conj, entries, bound, lastGroupBy, origin)
				}
				conds = append(conds, pendingCond{cond: conj, slot: slot, pushed: slot < origin})
			}
		default:
			next := cloneVarSet(bound)
			switch c := cl.(type) {
			case *xquery.For:
				next[c.Var] = true
				if c.At != "" {
					next[c.At] = true
				}
			case *xquery.Let:
				next[c.Var] = true
			case *xquery.GroupBy:
				for _, k := range c.Keys {
					next[k.Var] = true
				}
				next[c.PartitionVar] = true
				lastGroupBy = len(entries)
			}
			entries = append(entries, pipeEntry{clause: cl, boundAfter: next})
			bound = next
		}
	}
	return entries, conds, rewrite
}

// placeConjunct finds the earliest entry index after which every local
// variable the conjunct references is bound, never crossing a group-by
// barrier (grouping changes tuple multiplicity, so filters must not move
// from after it to before it). A conjunct referencing a variable no entry
// binds stays at its original position so the naive pipeline's unbound-
// variable error timing is preserved.
func placeConjunct(conj xquery.Expr, entries []pipeEntry, localAll map[string]bool, lastGroupBy, origin int) int {
	local := localFreeVars(conj, localAll)
	minSlot := -1
	if lastGroupBy >= 0 {
		minSlot = lastGroupBy
	}
	for j := minSlot; j <= origin; j++ {
		var boundAfter map[string]bool
		if j >= 0 {
			boundAfter = entries[j].boundAfter
		}
		if subsetOf(local, boundAfter) {
			return j
		}
	}
	return origin
}

// pickHashConjunct looks among the conjuncts placed at slot j for
// equi-joins the for clause can execute as a hash join: one comparison side
// referencing exactly the for variable, the other referencing only earlier
// bindings (at least one, so it is a genuine join and not a constant
// filter). Without statistics the first match wins — the original
// structural rule. With statistics and several candidates, the key with the
// highest estimated distinctness wins (fewest expected matches per probe);
// every unchosen candidate remains an ordinary filter, so the choice never
// changes which tuples flow or in what order. The chosen conjunct is
// consumed.
func pickHashConjunct(c *xquery.For, conds []pendingCond, j int, localBefore map[string]bool, st *SourceStats) *hashJoinSpec {
	type candidate struct {
		pc   *pendingCond
		spec *hashJoinSpec
	}
	var cands []candidate
	for i := range conds {
		pc := &conds[i]
		if pc.slot != j || pc.consumed {
			continue
		}
		b, ok := pc.cond.(*xquery.Binary)
		if !ok || (b.Op != "=" && b.Op != "eq") {
			continue
		}
		spec := classifyJoinSides(b, c.Var, localBefore)
		if spec == nil {
			continue
		}
		spec.valueCmp = b.Op == "eq"
		spec.keyCol = joinKeyColumn(spec.buildExpr, c.Var)
		spec.estBuild = -1
		if st != nil {
			spec.estBuild = st.Rows
			spec.estDistinct = st.DistinctFor(spec.keyCol)
		}
		cands = append(cands, candidate{pc, spec})
	}
	if len(cands) == 0 {
		return nil
	}
	best := 0
	if st != nil && len(cands) > 1 {
		for i := 1; i < len(cands); i++ {
			if cands[i].spec.estDistinct > cands[best].spec.estDistinct {
				best = i
			}
		}
		cands[best].spec.statsPick = best != 0
	}
	cands[best].pc.consumed = true
	return cands[best].spec
}

// joinKeyColumn extracts the build-side key column when the expression is a
// bare single-step child path off the for variable ($v/COL) — the shape
// every translator-generated equi-join takes. Other shapes cost-annotate
// with an unknown key.
func joinKeyColumn(e xquery.Expr, forVar string) string {
	p, ok := e.(*xquery.Path)
	if !ok || len(p.Steps) != 1 || p.Steps[0].Name == "*" || len(p.Steps[0].Predicates) != 0 {
		return ""
	}
	v, ok := p.Base.(*xquery.Var)
	if !ok || v.Name != forVar {
		return ""
	}
	return p.Steps[0].Name
}

func classifyJoinSides(b *xquery.Binary, forVar string, localBefore map[string]bool) *hashJoinSpec {
	forOnly := map[string]bool{forVar: true}
	leftLocal := localFreeVars(b.Left, mergeVarSets(localBefore, forOnly))
	rightLocal := localFreeVars(b.Right, mergeVarSets(localBefore, forOnly))
	switch {
	case isExactly(leftLocal, forVar) && len(rightLocal) > 0 && subsetOf(rightLocal, localBefore):
		return &hashJoinSpec{cond: b, buildExpr: b.Left, probeExpr: b.Right}
	case isExactly(rightLocal, forVar) && len(leftLocal) > 0 && subsetOf(leftLocal, localBefore):
		return &hashJoinSpec{cond: b, buildExpr: b.Right, probeExpr: b.Left}
	}
	return nil
}

// localFreeVars restricts an expression's free variables to the FLWOR-local
// binder set — outer and external variables are fixed for a whole FLWOR
// execution and never constrain placement.
func localFreeVars(e xquery.Expr, local map[string]bool) map[string]bool {
	out := map[string]bool{}
	for v := range xquery.FreeVars(e) {
		if local[v] {
			out[v] = true
		}
	}
	return out
}

func subsetOf(sub, super map[string]bool) bool {
	for v := range sub {
		if !super[v] {
			return false
		}
	}
	return true
}

func isExactly(set map[string]bool, name string) bool {
	return len(set) == 1 && set[name]
}

func cloneVarSet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in)+2)
	for k := range in {
		out[k] = true
	}
	return out
}

func mergeVarSets(a, b map[string]bool) map[string]bool {
	out := cloneVarSet(a)
	for k := range b {
		out[k] = true
	}
	return out
}

// Describe renders the plan as indented text lines for EXPLAIN output:
// one summary line, then each FLWOR's pipeline in execution order.
func (p *Plan) Describe() []string {
	stats := "none"
	if p.StatsSources > 0 {
		stats = fmt.Sprintf("%d scans", p.StatsSources)
	}
	lines := []string{fmt.Sprintf("flwors: %d, hash joins: %d, predicates pushed: %d, invariants hoisted: %d, stats: %s",
		len(p.ordered), p.HashJoins, p.PredicatesPushed, p.InvariantsHoisted, stats)}
	for _, fp := range p.ordered {
		lines = append(lines, fmt.Sprintf("flwor %d:", fp.id))
		for _, seg := range fp.segments {
			for _, op := range seg.ops {
				lines = append(lines, "  "+describeOp(op))
			}
			if seg.barrier != nil {
				lines = append(lines, "  "+describeBarrier(seg.barrier))
			}
		}
	}
	return lines
}

func describeOp(op planOp) string {
	switch op.kind {
	case opKindFor:
		var b strings.Builder
		if op.hash != nil {
			fmt.Fprintf(&b, "hash join $%s in %s", op.forClause.Var, exprText(op.forClause.In))
			fmt.Fprintf(&b, " [build %s probe %s]", exprText(op.hash.buildExpr), exprText(op.hash.probeExpr))
			if h := op.hash; h.estBuild >= 0 {
				key := h.keyCol
				if key == "" {
					key = "?"
				}
				fmt.Fprintf(&b, " [cost: ~%d build rows, key %s ~%d distinct", h.estBuild, key, h.estDistinct)
				if h.estDistinct > 0 {
					matches := h.estBuild / h.estDistinct
					if matches < 1 {
						matches = 1
					}
					fmt.Fprintf(&b, ", ~%d matches/probe", matches)
				}
				if h.statsPick {
					b.WriteString(", stats-picked key")
				}
				b.WriteString("]")
			}
			return b.String()
		}
		fmt.Fprintf(&b, "for $%s in %s", op.forClause.Var, exprText(op.forClause.In))
		if op.invariant {
			if op.estRows >= 0 {
				fmt.Fprintf(&b, " [invariant, ~%d rows]", op.estRows)
			} else {
				b.WriteString(" [invariant]")
			}
		}
		if op.part != nil {
			fmt.Fprintf(&b, " [partitioned: %d shards on %s", len(op.part.spec.Shards), op.part.spec.Key)
			if op.part.pinCond != nil {
				b.WriteString(", shard-pinned")
			}
			if op.part.projCols != nil {
				fmt.Fprintf(&b, ", project %s", strings.Join(op.part.projCols, "+"))
			}
			b.WriteString("]")
		}
		return b.String()
	case opKindLet:
		s := fmt.Sprintf("let $%s := %s", op.letClause.Var, exprText(op.letClause.Expr))
		if op.invariant {
			s += " [invariant]"
		}
		return s
	case opKindFilter:
		s := "filter " + exprText(op.cond)
		if op.pushed {
			s += " [pushed]"
		}
		return s
	default:
		return "?"
	}
}

func describeBarrier(c xquery.Clause) string {
	switch c := c.(type) {
	case *xquery.GroupBy:
		keys := make([]string, len(c.Keys))
		for i, k := range c.Keys {
			keys[i] = fmt.Sprintf("%s as $%s", exprText(k.Expr), k.Var)
		}
		return fmt.Sprintf("group $%s as $%s by %s", c.InVar, c.PartitionVar, strings.Join(keys, ", "))
	case *xquery.OrderByClause:
		specs := make([]string, len(c.Specs))
		for i, s := range c.Specs {
			specs[i] = exprText(s.Expr)
			if s.Descending {
				specs[i] += " descending"
			}
		}
		return "order by " + strings.Join(specs, ", ")
	default:
		return fmt.Sprintf("%T", c)
	}
}

// exprText renders an expression on one line (FLWORs serialize multi-line).
func exprText(e xquery.Expr) string {
	return strings.Join(strings.Fields(xquery.String(e)), " ")
}
