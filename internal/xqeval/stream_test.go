package xqeval

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

// recordsetBody builds the generated-query XML shape around rows:
// <RECORDSET>{ rows }</RECORDSET>.
func recordsetBody(rows xquery.Expr) *xquery.ElementCtor {
	return &xquery.ElementCtor{Name: "RECORDSET",
		Content: []xquery.ElemContent{&xquery.Enclosed{Expr: rows}}}
}

// streamingCrossQuery is a RECORDSET-wrapped cross join over b:T — a
// streamable query whose full evaluation is rows² tuples.
func streamingCrossQuery() *xquery.Query {
	inner := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: "x", In: xquery.Call("b:T")},
			&xquery.For{Var: "y", In: xquery.Call("b:T")},
		},
		Return: &xquery.ElementCtor{Name: "RECORD", Content: []xquery.ElemContent{
			xquery.TextElem("N", xquery.ChildPath("x", "N")),
		}},
	}
	return &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "b", Namespace: "urn:big", Location: "big.xsd"},
		}},
		Body: recordsetBody(inner),
	}
}

func TestStreamPlanKinds(t *testing.T) {
	rows := &xquery.FLWOR{
		Clauses: []xquery.Clause{&xquery.For{Var: "x", In: xquery.Call("b:T")}},
		Return: &xquery.ElementCtor{Name: "RECORD", Content: []xquery.ElemContent{
			xquery.TextElem("N", xquery.ChildPath("x", "N")),
		}},
	}

	xml := planStream(recordsetBody(rows))
	if xml.Kind != StreamXMLRows || !xml.Streamable() {
		t.Fatalf("XML wrapper classified %v, want xml rows", xml.Kind)
	}

	// The §4 text wrapper: fn:string-join over a let/for FLWOR tokenizing
	// $actualQuery/RECORD — exactly what translator.wrapTextMode emits.
	text := planStream(xquery.Call("fn:string-join",
		&xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.Let{Var: "actualQuery", Expr: recordsetBody(rows)},
				&xquery.For{Var: "tokenQuery", In: xquery.ChildPath("actualQuery", "RECORD")},
			},
			Return: &xquery.Seq{Items: []xquery.Expr{
				xquery.Str(">"), xquery.ChildPath("tokenQuery", "N"),
			}},
		},
		xquery.Str("")))
	if text.Kind != StreamTextRows || !text.Streamable() {
		t.Fatalf("text wrapper classified %v, want text rows", text.Kind)
	}
	if text.tokenVar != "tokenQuery" {
		t.Fatalf("tokenVar = %q", text.tokenVar)
	}

	// A body with no recognized row-stream decomposition materializes, and a
	// return referencing the whole recordset variable must refuse to stream.
	if sp := planStream(rows); sp.Streamable() {
		t.Fatalf("bare FLWOR classified %v, want materialized", sp.Kind)
	}
	leaky := planStream(xquery.Call("fn:string-join",
		&xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.Let{Var: "actualQuery", Expr: recordsetBody(rows)},
				&xquery.For{Var: "tokenQuery", In: xquery.ChildPath("actualQuery", "RECORD")},
			},
			Return: xquery.Call("fn:count", xquery.VarRef("actualQuery")),
		},
		xquery.Str("")))
	if leaky.Streamable() {
		t.Fatal("return referencing the recordset variable must not stream")
	}

	for _, sp := range []*StreamPlan{xml, text, nil} {
		if sp.Describe() == "" {
			t.Fatal("Describe must always render")
		}
	}
}

// TestEvalStreamMatchesEval: the streamed items, concatenated, must equal
// the RECORD children of the materialized evaluation's RECORDSET.
func TestEvalStreamMatchesEval(t *testing.T) {
	e := bigEngine(20)
	q := streamingCrossQuery()

	out, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	it, err := out.Singleton()
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, rec := range it.(*xdm.Element).ChildElements("RECORD") {
		want.WriteString(xdm.MarshalSequence(xdm.SequenceOf(rec)))
		want.WriteByte('\n')
	}

	cur := e.EvalStreamNaive(context.Background(), q, nil, nil)
	defer cur.Close()
	if !cur.RowAligned() {
		t.Fatal("RECORDSET query should stream row-aligned")
	}
	var got strings.Builder
	rows := 0
	for {
		chunk, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows++
		got.WriteString(xdm.MarshalSequence(chunk))
		got.WriteByte('\n')
	}
	if got.String() != want.String() {
		t.Fatalf("streamed items diverged from materialized evaluation\ngot:  %s\nwant: %s",
			got.String(), want.String())
	}
	if rows != 400 {
		t.Fatalf("streamed %d rows, want 400", rows)
	}
}

// TestCursorCloseCancelsEvaluation: closing a cursor with rows in flight
// must cancel the producer's evaluation — the tuple counter stays far below
// the query's full cardinality.
func TestCursorCloseCancelsEvaluation(t *testing.T) {
	e := bigEngine(300) // 90 000 tuples if run to completion
	cur := e.EvalStreamNaive(context.Background(), streamingCrossQuery(), nil, nil)
	for i := 0; i < 5; i++ {
		if _, err := cur.Next(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("deliberate close surfaced an error: %v", err)
	}
	_, tuples := cur.Stats()
	// 5 consumed + the bounded producer buffer; anywhere near 90 000 means
	// the evaluation ran to completion after Close.
	if tuples > 2000 {
		t.Fatalf("closed cursor evaluated %d tuples, want far fewer than 90000", tuples)
	}
	if _, err := cur.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
}

// TestCursorContextCancellation: cancelling the evaluation context
// mid-stream surfaces context.Canceled from Next and Err.
func TestCursorContextCancellation(t *testing.T) {
	e := bigEngine(300)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cur := e.EvalStreamNaive(ctx, streamingCrossQuery(), nil, nil)
	defer cur.Close()
	if _, err := cur.Next(); err != nil {
		t.Fatalf("first row: %v", err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := cur.Next()
		if err == nil {
			if time.Now().After(deadline) {
				t.Fatal("cancellation never surfaced")
			}
			continue // buffered rows may still drain
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		break
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
}

// TestCursorPrimeSurfacesEarlyErrors: failures before the first row (an
// unbound data source) must surface synchronously from Prime.
func TestCursorPrimeSurfacesEarlyErrors(t *testing.T) {
	e := New() // no b:T registered
	cur := e.EvalStreamNaive(context.Background(), streamingCrossQuery(), nil, nil)
	defer cur.Close()
	if err := cur.Prime(); err == nil {
		t.Fatal("Prime over an unbound source must fail")
	}
}

// TestCursorConcurrentNextClose hammers Next from several goroutines while
// another closes the cursor — the consumer surface is mutex-protected, so
// this pins the locking under -race.
func TestCursorConcurrentNextClose(t *testing.T) {
	e := bigEngine(60) // 3600 rows
	for round := 0; round < 4; round++ {
		cur := e.EvalStreamNaive(context.Background(), streamingCrossQuery(), nil, nil)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, err := cur.Next(); err != nil {
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(round) * 100 * time.Microsecond)
			cur.Close()
		}()
		wg.Wait()
		if err := cur.Err(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestStreamLimitShortCircuit: fn:subsequence(rows, 1, n) — FETCH FIRST —
// stops the naive evaluator after n tuples, both streamed and materialized.
func TestStreamLimitShortCircuit(t *testing.T) {
	inner := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: "x", In: xquery.Call("b:T")},
			&xquery.For{Var: "y", In: xquery.Call("b:T")},
		},
		Return: &xquery.ElementCtor{Name: "RECORD", Content: []xquery.ElemContent{
			xquery.TextElem("N", xquery.ChildPath("x", "N")),
		}},
	}
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "b", Namespace: "urn:big", Location: "big.xsd"},
		}},
		Body: recordsetBody(xquery.Call("fn:subsequence", inner,
			&xquery.NumberLit{Text: "1"}, &xquery.NumberLit{Text: "10"})),
	}
	e := bigEngine(300) // 90 000 tuples without the short circuit

	// Streamed path.
	cur := e.EvalStreamNaive(context.Background(), q, nil, nil)
	n := 0
	for {
		_, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	cur.Close()
	if n != 10 {
		t.Fatalf("streamed %d rows, want 10", n)
	}
	if _, tuples := cur.Stats(); tuples > 12 {
		t.Fatalf("streamed FETCH FIRST evaluated %d tuples, want O(10)", tuples)
	}

	// Materialized path: evalFuncCall takes the same short circuit.
	out, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	it, err := out.Singleton()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(it.(*xdm.Element).ChildElements("RECORD")); got != 10 {
		t.Fatalf("materialized %d rows, want 10", got)
	}
}
