package xqeval

import (
	"context"
	"errors"
	"testing"

	"repro/internal/aqerr"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

func limitKind(t *testing.T, err error) aqerr.Kind {
	t.Helper()
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *aqerr.QueryError", err, err)
	}
	return qe.Kind
}

func TestMaxRowsAborts(t *testing.T) {
	e := bigEngine(100)
	e.SetLimits(Limits{MaxRows: 10})
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "b", Namespace: "urn:big", Location: "big.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{&xquery.For{Var: "x", In: xquery.Call("b:T")}},
			Return:  xquery.Num("1"),
		},
	}
	for name, eval := range map[string]func() (xdm.Sequence, error){
		"planned": func() (xdm.Sequence, error) { return e.Eval(q) },
		"naive": func() (xdm.Sequence, error) {
			return e.EvalNaiveWithTrace(context.Background(), q, nil, nil)
		},
	} {
		_, err := eval()
		if err == nil {
			t.Fatalf("%s: query over limit should fail", name)
		}
		if k := limitKind(t, err); k != aqerr.KindResourceLimit {
			t.Fatalf("%s: kind = %v, want resource-limit", name, k)
		}
	}
}

func TestMaxTuplesAborts(t *testing.T) {
	e := bigEngine(50) // 50³ = 125k tuples, limit far below
	e.SetLimits(Limits{MaxTuples: 1000})
	_, err := e.Eval(crossJoinQuery())
	if err == nil {
		t.Fatal("cross join over tuple limit should fail")
	}
	if k := limitKind(t, err); k != aqerr.KindResourceLimit {
		t.Fatalf("kind = %v, want resource-limit", k)
	}
}

func TestLimitsOffByDefault(t *testing.T) {
	e := bigEngine(20)
	q := crossJoinQuery()
	out, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20*20*20 {
		t.Fatalf("rows = %d", len(out))
	}
}

func TestMiddlewareOrderAndLateRegistration(t *testing.T) {
	e := New()
	var order []string
	mw := func(tag string) Middleware {
		return func(name string, fn ContextFunc) ContextFunc {
			return func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
				order = append(order, tag+":"+name)
				return fn(ctx, args)
			}
		}
	}
	e.RegisterRows("urn:t", "EARLY", nil)
	e.Use(mw("inner"))
	e.Use(mw("outer")) // installed later = outermost
	e.RegisterRows("urn:t", "LATE", nil)

	for _, name := range []string{"EARLY", "LATE"} {
		order = nil
		if _, err := e.Call("urn:t", name, nil); err != nil {
			t.Fatal(err)
		}
		want := []string{"outer:" + name, "inner:" + name}
		if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
			t.Fatalf("%s middleware order = %v, want %v", name, order, want)
		}
	}
}

func TestCallContextReachesFunction(t *testing.T) {
	e := New()
	e.RegisterContext("urn:t", "CTX", func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return nil, ctx.Err()
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.CallContext(ctx, "urn:t", "CTX", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := e.Call("urn:t", "CTX", nil); err != nil {
		t.Fatalf("background call: %v", err)
	}
}
