package xqeval

import (
	"math"
	"sort"

	"repro/internal/xdm"
)

// plan_exec.go executes a flworPlan. All mutable run state lives here, in
// flworExec, created fresh per FLWOR execution — the plan itself is shared
// and immutable. Tuples stream through each segment's ops via a recursive
// feed (no intermediate []*scope materialization); only barriers (group by,
// order by) collect the tuple set, reusing the naive applyClause
// implementations so barrier semantics are byte-identical.

// flworExec is one execution of one FLWOR plan.
type flworExec struct {
	fp     *flworPlan
	states []opState
}

// opState is the lazily-filled per-run state of one op: the cached
// sequence of an invariant for/let, and the hash table of a hash join.
// transformed marks a partitioned scan whose gathered sequence differs
// from the plain shard concatenation (pruned, filtered, projected, or a
// partial-mode skip) — such sequences must not feed the statistics store.
type opState struct {
	done        bool
	transformed bool
	seq         xdm.Sequence
	hash        *hashTable
}

// tupleSink receives each tuple that survives a segment's ops.
type tupleSink func(t *scope) error

// execPlannedFLWOR runs the planned pipeline and materializes the result —
// the sequence-valued entry point evalFLWOR uses.
func execPlannedFLWOR(fp *flworPlan, env *scope) (xdm.Sequence, error) {
	var out xdm.Sequence
	err := execPlannedFLWORTo(fp, env, func(v xdm.Sequence) error {
		out = append(out, v...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// execPlannedFLWORTo runs the planned pipeline, delivering each tuple's
// return value to emit as it is produced. The final segment streams
// straight from the tuple sink into emit — this is the cursor boundary
// EvalStream pulls from; earlier segments materialize for their barrier.
//
// Stats-built (eager) plans materialize each segment's invariant states and
// hash tables before its tuple loop, which enables two things the lazy path
// cannot do: an empty invariant source or build side proves the segment
// emits nothing, so the whole tuple loop is skipped; and with the shared
// state read-only from then on, an eligible segment can fan its outer scan
// out to morsel workers (parallel.go) without synchronizing on it.
func execPlannedFLWORTo(fp *flworPlan, env *scope, emit func(xdm.Sequence) error) error {
	ex := &flworExec{fp: fp, states: make([]opState, fp.numStates)}
	tuples := []*scope{env}
	for si, seg := range fp.segments {
		final := si == len(fp.segments)-1
		dead := false
		if fp.eager && len(tuples) > 0 {
			var err error
			dead, err = ex.prepare(seg.ops, tuples[0])
			if err != nil {
				return err
			}
		}
		if final {
			if dead {
				return nil
			}
			if cfg, ok := ex.canParallel(seg.ops, tuples); ok {
				_, err := ex.runParallel(seg.ops, tuples[0], cfg, true, emit)
				return err
			}
			for _, t := range tuples {
				err := ex.feed(seg.ops, 0, t, func(t2 *scope) error {
					if err := t2.checkCancel(); err != nil {
						return err
					}
					v, err := evalExpr(fp.flwor.Return, t2)
					if err != nil {
						return err
					}
					if err := t2.countRows(len(v)); err != nil {
						return err
					}
					return emit(v)
				})
				if err != nil {
					return err
				}
			}
			return nil
		}
		var next []*scope
		if !dead {
			if cfg, ok := ex.canParallel(seg.ops, tuples); ok {
				var err error
				next, err = ex.runParallel(seg.ops, tuples[0], cfg, false, nil)
				if err != nil {
					return err
				}
			} else {
				for _, t := range tuples {
					err := ex.feed(seg.ops, 0, t, func(t2 *scope) error {
						next = append(next, t2)
						return nil
					})
					if err != nil {
						return err
					}
				}
			}
		}
		if seg.barrier != nil {
			var err error
			next, err = applyClause(seg.barrier, next)
			if err != nil {
				return err
			}
		}
		tuples = next
	}
	return nil
}

// prepare eagerly fills every invariant state in one segment's ops,
// evaluating against t (soundly: invariance means the expressions see
// identical bindings from every tuple). It reports dead=true as soon as an
// invariant for's source — hash build side included — is empty: no tuple
// can survive that op, so the caller skips the segment's tuple loop
// entirely. Freshly scanned sources feed the statistics store on the way
// past (stats.go).
func (ex *flworExec) prepare(ops []planOp, t *scope) (dead bool, err error) {
	for i := range ops {
		op := &ops[i]
		if !op.invariant {
			continue
		}
		st := &ex.states[op.stateIdx]
		switch op.kind {
		case opKindFor:
			if !st.done {
				var s xdm.Sequence
				var err error
				if op.part != nil {
					s, st.transformed, err = ex.gatherPartitioned(op, t)
				} else {
					s, err = evalExpr(op.forClause.In, t)
				}
				if err != nil {
					return false, err
				}
				if !st.transformed {
					maybeObserveScan(t, op, s)
				}
				st.seq, st.done = s, true
			}
			if op.hash != nil && st.hash == nil {
				h, err := buildHashTable(op, t, st.seq)
				if err != nil {
					return false, err
				}
				st.hash = h
			}
			if len(st.seq) == 0 {
				return true, nil
			}
		case opKindLet:
			if !st.done {
				s, err := evalExpr(op.letClause.Expr, t)
				if err != nil {
					return false, err
				}
				st.seq, st.done = s, true
			}
		}
	}
	return false, nil
}

// feed pushes one tuple through ops[i:], calling out for each survivor.
func (ex *flworExec) feed(ops []planOp, i int, t *scope, out tupleSink) error {
	if i == len(ops) {
		return out(t)
	}
	op := &ops[i]
	switch op.kind {
	case opKindFilter:
		ok, err := evalEBV(op.cond, t)
		if err != nil {
			return err
		}
		if !ok {
			t.prune(1)
			return nil
		}
		return ex.feed(ops, i+1, t, out)

	case opKindLet:
		var v xdm.Sequence
		if op.invariant {
			st := &ex.states[op.stateIdx]
			if !st.done {
				// Invariance means the expression sees identical bindings
				// from every tuple, so evaluating against the first one is
				// sound.
				s, err := evalExpr(op.letClause.Expr, t)
				if err != nil {
					return err
				}
				st.seq, st.done = s, true
			}
			v = st.seq
		} else {
			var err error
			v, err = evalExpr(op.letClause.Expr, t)
			if err != nil {
				return err
			}
		}
		return ex.feed(ops, i+1, t.bind(op.letClause.Var, v), out)

	case opKindFor:
		if err := t.checkCancel(); err != nil {
			return err
		}
		var seq xdm.Sequence
		if op.invariant {
			st := &ex.states[op.stateIdx]
			if !st.done {
				var s xdm.Sequence
				var err error
				if op.part != nil {
					s, st.transformed, err = ex.gatherPartitioned(op, t)
				} else {
					s, err = evalExpr(op.forClause.In, t)
				}
				if err != nil {
					return err
				}
				if !st.transformed {
					maybeObserveScan(t, op, s)
				}
				st.seq, st.done = s, true
			}
			seq = st.seq
		} else {
			var err error
			seq, err = evalExpr(op.forClause.In, t)
			if err != nil {
				return err
			}
		}
		if op.hash != nil {
			return ex.probeHash(ops, i, op, t, seq, out)
		}
		for idx, it := range seq {
			if err := t.countTuple(); err != nil {
				return err
			}
			nt := t.bind(op.forClause.Var, xdm.SequenceOf(it))
			if op.forClause.At != "" {
				nt = nt.bind(op.forClause.At, xdm.SequenceOf(xdm.Integer(idx+1)))
			}
			if err := ex.feed(ops, i+1, nt, out); err != nil {
				return err
			}
		}
		return nil
	}
	return dynErr("unknown plan op")
}

// probeHash executes a hash-join for: build once from the cached source
// items, then per tuple evaluate the probe key and emit only the matching
// items, in source order. Every candidate is re-verified under the exact
// comparison semantics, so bucket collisions (and the deliberately lossy
// key normalization) can only cost time, never change results.
func (ex *flworExec) probeHash(ops []planOp, i int, op *planOp, t *scope, items xdm.Sequence, out tupleSink) error {
	st := &ex.states[op.stateIdx]
	if st.hash == nil {
		h, err := buildHashTable(op, t, items)
		if err != nil {
			return err
		}
		st.hash = h
	}
	probe, err := evalExpr(op.hash.probeExpr, t)
	if err != nil {
		return err
	}
	probeAtoms := xdm.Atomize(probe)
	matched := 0
	for _, ci := range st.hash.candidates(probeAtoms, op.hash.valueCmp) {
		ok, err := verifyJoinPair(probeAtoms, st.hash.keys[ci], op.hash.valueCmp)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		matched++
		if err := t.countTuple(); err != nil {
			return err
		}
		nt := t.bind(op.forClause.Var, xdm.SequenceOf(st.hash.items[ci]))
		if err := ex.feed(ops, i+1, nt, out); err != nil {
			return err
		}
	}
	t.prune(int64(len(items) - matched))
	return nil
}

// verifyJoinPair applies the original comparison operator to one probe /
// build-key pair (both already atomized; atomization is idempotent).
func verifyJoinPair(probe, key xdm.Sequence, valueCmp bool) (bool, error) {
	var v xdm.Sequence
	var err error
	if valueCmp {
		v, err = evalValueCompare(probe, key, xdm.OpEq)
	} else {
		v, err = evalGeneralCompare(probe, key, xdm.OpEq)
	}
	if err != nil {
		return false, err
	}
	if v.Empty() {
		return false, nil
	}
	return bool(v[0].(xdm.Boolean)), nil
}

// hashTable is the build side of one hash join.
type hashTable struct {
	items xdm.Sequence
	// keys[i] is item i's atomized join key.
	keys []xdm.Sequence
	// buckets maps normalized key forms to item indices.
	buckets map[string][]int
	// residual lists items whose key cannot be normalized (booleans,
	// temporals, NaN-valued numerics, multi-item keys under `eq`); they
	// are verified against every probe, preserving naive error and
	// mixed-type comparison behavior for those values.
	residual []int
}

func buildHashTable(op *planOp, t *scope, items xdm.Sequence) (*hashTable, error) {
	h := &hashTable{
		items:   items,
		keys:    make([]xdm.Sequence, len(items)),
		buckets: make(map[string][]int, len(items)),
	}
	for i, it := range items {
		if i&255 == 0 {
			if err := t.checkCancel(); err != nil {
				return nil, err
			}
		}
		kseq, err := evalExpr(op.hash.buildExpr, t.bind(op.forClause.Var, xdm.SequenceOf(it)))
		if err != nil {
			return nil, err
		}
		key := xdm.Atomize(kseq)
		h.keys[i] = key
		if key.Empty() {
			// An empty key matches nothing under either comparison and can
			// raise no comparison error: drop the item entirely.
			continue
		}
		if op.hash.valueCmp && len(key) != 1 {
			// Value comparison against a multi-item key is a dynamic error
			// in the naive pipeline; keep the item where every probe will
			// trip over it.
			h.residual = append(h.residual, i)
			continue
		}
		forms, ok := normalizeKeyAtoms(key)
		if !ok {
			h.residual = append(h.residual, i)
			continue
		}
		for _, f := range forms {
			h.buckets[f] = append(h.buckets[f], i)
		}
	}
	return h, nil
}

// candidates returns the item indices a probe key must be verified
// against, ascending (= the naive inner-loop order). Unhashable probes
// degrade to scanning every item.
func (h *hashTable) candidates(probe xdm.Sequence, valueCmp bool) []int {
	if probe.Empty() {
		// Empty compares false against everything, errors never: no
		// candidates at all.
		return nil
	}
	if valueCmp && len(probe) != 1 {
		// The naive pipeline raises a singleton error on the first build
		// item it meets; scan so verification reproduces it.
		return h.allItems()
	}
	seen := make(map[int]bool, len(h.residual))
	var cand []int
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			cand = append(cand, i)
		}
	}
	for _, i := range h.residual {
		add(i)
	}
	for _, a := range probe {
		forms, ok := atomKeyForms(a.(xdm.Atomic))
		if !ok {
			return h.allItems()
		}
		for _, f := range forms {
			for _, i := range h.buckets[f] {
				add(i)
			}
		}
	}
	sort.Ints(cand)
	return cand
}

func (h *hashTable) allItems() []int {
	all := make([]int, len(h.items))
	for i := range all {
		all[i] = i
	}
	return all
}

// normalizeKeyAtoms returns every bucket form a key sequence should be
// filed under; ok is false if any atom has no normal form (the whole item
// then goes to the residual list).
func normalizeKeyAtoms(atoms xdm.Sequence) ([]string, bool) {
	var forms []string
	for _, a := range atoms {
		f, ok := atomKeyForms(a.(xdm.Atomic))
		if !ok {
			return nil, false
		}
		forms = append(forms, f...)
	}
	return forms, true
}

// atomKeyForms normalizes one atomic value into bucket-key strings chosen
// so that any two atoms the evaluator's promotion rules could find equal
// share at least one form:
//
//   - all numerics promote through float64, so they file under the double's
//     lexical form ("n:…");
//   - strings file under their lexical form ("s:…");
//   - untyped atomics compare as strings against strings/untyped and as
//     numbers against numerics, so they file under both applicable forms;
//   - booleans and temporals (which also compare lexically against
//     strings), plus anything NaN-valued (which OrderAtomic treats as equal
//     to every number), have no safe form and stay in the residual list.
func atomKeyForms(a xdm.Atomic) ([]string, bool) {
	switch t := a.Type(); {
	case t == xdm.TypeString:
		return []string{"s:" + a.Lexical()}, true
	case t.Numeric():
		d, err := xdm.Cast(a, xdm.TypeDouble)
		if err != nil || math.IsNaN(float64(d.(xdm.Double))) {
			return nil, false
		}
		return []string{"n:" + d.Lexical()}, true
	case t == xdm.TypeUntyped:
		if d, err := xdm.Cast(a, xdm.TypeDouble); err == nil {
			if math.IsNaN(float64(d.(xdm.Double))) {
				return nil, false
			}
			return []string{"s:" + a.Lexical(), "n:" + d.Lexical()}, true
		}
		return []string{"s:" + a.Lexical()}, true
	default:
		return nil, false
	}
}
