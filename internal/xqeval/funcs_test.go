package xqeval

import (
	"strings"
	"testing"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

// callF evaluates a builtin by name with pre-evaluated argument sequences.
func callF(t *testing.T, name string, args ...xdm.Sequence) xdm.Sequence {
	t.Helper()
	b, ok := builtins[name]
	if !ok {
		t.Fatalf("no builtin %s", name)
	}
	out, err := b.impl(args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func seq(items ...xdm.Item) xdm.Sequence { return xdm.SequenceOf(items...) }

func TestFnDataAndString(t *testing.T) {
	el := xdm.NewTextElement("X", "42")
	out := callF(t, "fn:data", seq(el))
	if string(out[0].(xdm.Untyped)) != "42" {
		t.Fatalf("out = %v", out)
	}
	out = callF(t, "fn:string", seq(el))
	if string(out[0].(xdm.String)) != "42" {
		t.Fatalf("out = %v", out)
	}
	out = callF(t, "fn:string", nil)
	if string(out[0].(xdm.String)) != "" {
		t.Fatalf("fn:string(()) = %v", out)
	}
}

func TestFnCardinality(t *testing.T) {
	if callF(t, "fn:empty", nil)[0].(xdm.Boolean) != true {
		t.Fatal("empty(()) should be true")
	}
	if callF(t, "fn:exists", seq(xdm.Integer(1)))[0].(xdm.Boolean) != true {
		t.Fatal("exists((1)) should be true")
	}
	if callF(t, "fn:count", seq(xdm.Integer(1), xdm.Integer(2)))[0].(xdm.Integer) != 2 {
		t.Fatal("count = 2")
	}
	if callF(t, "fn:not", seq(xdm.Boolean(false)))[0].(xdm.Boolean) != true {
		t.Fatal("not(false) should be true")
	}
}

func TestFnAggregates(t *testing.T) {
	nums := seq(xdm.Integer(1), xdm.Integer(2), xdm.Integer(3))
	if callF(t, "fn:sum", nums)[0].(xdm.Integer) != 6 {
		t.Fatal("sum")
	}
	if callF(t, "fn:sum", nil)[0].(xdm.Integer) != 0 {
		t.Fatal("fn:sum(()) should be 0 per XQuery")
	}
	avg := callF(t, "fn:avg", nums)
	if float64(avg[0].(xdm.Decimal)) != 2 {
		t.Fatalf("avg = %v", avg)
	}
	if !callF(t, "fn:avg", nil).Empty() {
		t.Fatal("fn:avg(()) should be empty")
	}
	if callF(t, "fn:min", nums)[0].(xdm.Integer) != 1 {
		t.Fatal("min")
	}
	if callF(t, "fn:max", nums)[0].(xdm.Integer) != 3 {
		t.Fatal("max")
	}
	// Untyped values promote to double.
	mixed := seq(xdm.Untyped("1.5"), xdm.Integer(2))
	if v := callF(t, "fn:sum", mixed); float64(v[0].(xdm.Double)) != 3.5 {
		t.Fatalf("sum untyped = %v", v)
	}
	// min/max over strings.
	names := seq(xdm.String("b"), xdm.String("a"), xdm.String("c"))
	if string(callF(t, "fn:min", names)[0].(xdm.String)) != "a" {
		t.Fatal("min strings")
	}
}

func TestFnSQLAggregatesNullOnEmpty(t *testing.T) {
	if !callF(t, "fn-bea:sql-sum", nil).Empty() {
		t.Fatal("sql-sum(()) should be NULL")
	}
	if !callF(t, "fn-bea:sql-max", nil).Empty() {
		t.Fatal("sql-max(()) should be NULL")
	}
	if callF(t, "fn-bea:sql-sum", seq(xdm.Integer(2), xdm.Integer(3)))[0].(xdm.Integer) != 5 {
		t.Fatal("sql-sum over values")
	}
}

func TestFnDistinctValues(t *testing.T) {
	out := callF(t, "fn:distinct-values", seq(
		xdm.Integer(1), xdm.Decimal(1.0), xdm.Integer(2), xdm.String("x"), xdm.Untyped("x")))
	if len(out) != 3 {
		t.Fatalf("distinct = %v", out)
	}
}

func TestFnStrings(t *testing.T) {
	if s := callF(t, "fn:concat", seq(xdm.String("a")), nil, seq(xdm.Integer(5))); string(s[0].(xdm.String)) != "a5" {
		t.Fatalf("concat = %v", s)
	}
	j := callF(t, "fn:string-join", seq(xdm.String("a"), xdm.String("b")), seq(xdm.String("-")))
	if string(j[0].(xdm.String)) != "a-b" {
		t.Fatalf("join = %v", j)
	}
	if string(callF(t, "fn:upper-case", seq(xdm.String("sue")))[0].(xdm.String)) != "SUE" {
		t.Fatal("upper")
	}
	if string(callF(t, "fn:lower-case", seq(xdm.String("SUE")))[0].(xdm.String)) != "sue" {
		t.Fatal("lower")
	}
	if callF(t, "fn:string-length", seq(xdm.String("héllo")))[0].(xdm.Integer) != 5 {
		t.Fatal("string-length must count runes")
	}
	if !callF(t, "fn:string-length", nil).Empty() {
		t.Fatal("string-length(()) is empty")
	}
	if callF(t, "fn:contains", seq(xdm.String("hello")), seq(xdm.String("ell")))[0].(xdm.Boolean) != true {
		t.Fatal("contains")
	}
	if callF(t, "fn:starts-with", seq(xdm.String("hello")), seq(xdm.String("he")))[0].(xdm.Boolean) != true {
		t.Fatal("starts-with")
	}
	if callF(t, "fn:ends-with", seq(xdm.String("hello")), seq(xdm.String("lo")))[0].(xdm.Boolean) != true {
		t.Fatal("ends-with")
	}
	if string(callF(t, "fn:normalize-space", seq(xdm.String("  a  b ")))[0].(xdm.String)) != "a b" {
		t.Fatal("normalize-space")
	}
}

func TestFnSubstring(t *testing.T) {
	s := seq(xdm.String("motor car"))
	if got := string(callF(t, "fn:substring", s, seq(xdm.Integer(6)))[0].(xdm.String)); got != " car" {
		t.Fatalf("substring from 6 = %q", got)
	}
	if got := string(callF(t, "fn:substring", s, seq(xdm.Integer(4)), seq(xdm.Integer(3)))[0].(xdm.String)); got != "or " {
		t.Fatalf("substring(4,3) = %q", got)
	}
	if !callF(t, "fn:substring", nil, seq(xdm.Integer(1))).Empty() {
		t.Fatal("substring of () is ()")
	}
}

func TestFnNumerics(t *testing.T) {
	if callF(t, "fn:abs", seq(xdm.Integer(-5)))[0].(xdm.Integer) != 5 {
		t.Fatal("abs")
	}
	if float64(callF(t, "fn:floor", seq(xdm.Decimal(2.7)))[0].(xdm.Decimal)) != 2 {
		t.Fatal("floor")
	}
	if float64(callF(t, "fn:ceiling", seq(xdm.Decimal(2.1)))[0].(xdm.Decimal)) != 3 {
		t.Fatal("ceiling")
	}
	if float64(callF(t, "fn:round", seq(xdm.Decimal(2.5)))[0].(xdm.Decimal)) != 3 {
		t.Fatal("round half up")
	}
	if float64(callF(t, "fn:round", seq(xdm.Double(-2.5)))[0].(xdm.Double)) != -2 {
		t.Fatal("round(-2.5) = -2 per XQuery")
	}
	if !callF(t, "fn:abs", nil).Empty() {
		t.Fatal("abs(()) is ()")
	}
}

func TestFnTemporalParts(t *testing.T) {
	d, err := xdm.ParseAtomic("2006-07-05", xdm.TypeDate)
	if err != nil {
		t.Fatal(err)
	}
	if callF(t, "fn:year-from-date", seq(d))[0].(xdm.Integer) != 2006 {
		t.Fatal("year")
	}
	if callF(t, "fn:month-from-date", seq(d))[0].(xdm.Integer) != 7 {
		t.Fatal("month")
	}
	if callF(t, "fn:day-from-date", seq(d))[0].(xdm.Integer) != 5 {
		t.Fatal("day")
	}
	dt, _ := xdm.ParseAtomic("2006-07-05T13:14:15", xdm.TypeDateTime)
	if callF(t, "fn:hours-from-dateTime", seq(dt))[0].(xdm.Integer) != 13 {
		t.Fatal("hours")
	}
	// Untyped input (atomized element content) casts on demand.
	if callF(t, "fn:year-from-date", seq(xdm.Untyped("1999-12-31")))[0].(xdm.Integer) != 1999 {
		t.Fatal("year from untyped")
	}
}

func TestBeaIfEmpty(t *testing.T) {
	out := callF(t, "fn-bea:if-empty", nil, seq(xdm.String("dflt")))
	if string(out[0].(xdm.String)) != "dflt" {
		t.Fatalf("out = %v", out)
	}
	out = callF(t, "fn-bea:if-empty", seq(xdm.String("x")), seq(xdm.String("dflt")))
	if string(out[0].(xdm.String)) != "x" {
		t.Fatalf("out = %v", out)
	}
}

func TestBeaXMLEscapeAndSerializeAtomic(t *testing.T) {
	out := callF(t, "fn-bea:xml-escape", seq(xdm.String("a<b&c")))
	if string(out[0].(xdm.String)) != "a&lt;b&amp;c" {
		t.Fatalf("out = %v", out)
	}
	out = callF(t, "fn-bea:serialize-atomic", seq(xdm.Decimal(2.5)))
	if string(out[0].(xdm.String)) != "2.5" {
		t.Fatalf("out = %v", out)
	}
	if !callF(t, "fn-bea:serialize-atomic", nil).Empty() {
		t.Fatal("serialize-atomic(()) is ()")
	}
}

func TestBeaSQLLike(t *testing.T) {
	cases := []struct {
		s, pattern, escape string
		want               bool
	}{
		{"hello", "hello", "", true},
		{"hello", "h%", "", true},
		{"hello", "%llo", "", true},
		{"hello", "h_llo", "", true},
		{"hello", "h_l", "", false},
		{"hello", "%", "", true},
		{"", "%", "", true},
		{"", "_", "", false},
		{"50%", "50!%", "!", true},
		{"50x", "50!%", "!", false},
		{"a_b", "a!_b", "!", true},
		{"axb", "a!_b", "!", false},
		{"abc", "ABC", "", false}, // LIKE is case-sensitive
		{"100% sure", "100!% s%", "!", true},
	}
	for _, c := range cases {
		args := []xdm.Sequence{seq(xdm.String(c.s)), seq(xdm.String(c.pattern))}
		if c.escape != "" {
			args = append(args, seq(xdm.String(c.escape)))
		}
		b, ok := builtins["fn-bea:sql-like"]
		if !ok {
			t.Fatal("missing sql-like")
		}
		out, err := b.impl(args)
		if err != nil {
			t.Fatalf("%q LIKE %q: %v", c.s, c.pattern, err)
		}
		if bool(out[0].(xdm.Boolean)) != c.want {
			t.Fatalf("%q LIKE %q (esc %q) = %v, want %v", c.s, c.pattern, c.escape, out[0], c.want)
		}
	}
	// NULL propagation.
	if !callF(t, "fn-bea:sql-like", nil, seq(xdm.String("%"))).Empty() {
		t.Fatal("NULL LIKE p should be empty")
	}
	// Bad escape.
	b := builtins["fn-bea:sql-like"]
	if _, err := b.impl([]xdm.Sequence{seq(xdm.String("x")), seq(xdm.String("x")), seq(xdm.String("ab"))}); err == nil {
		t.Fatal("multi-char escape should error")
	}
	if _, err := b.impl([]xdm.Sequence{seq(xdm.String("x")), seq(xdm.String("x!")), seq(xdm.String("!"))}); err == nil {
		t.Fatal("trailing escape should error")
	}
}

func TestBeaTrim(t *testing.T) {
	if string(callF(t, "fn-bea:trim", seq(xdm.String("  x  ")))[0].(xdm.String)) != "x" {
		t.Fatal("trim")
	}
	if string(callF(t, "fn-bea:trim-left", seq(xdm.String("  x  ")))[0].(xdm.String)) != "x  " {
		t.Fatal("trim-left")
	}
	if string(callF(t, "fn-bea:trim-right", seq(xdm.String("  x  ")))[0].(xdm.String)) != "  x" {
		t.Fatal("trim-right")
	}
	if string(callF(t, "fn-bea:trim", seq(xdm.String("xxaxx")), seq(xdm.String("x")))[0].(xdm.String)) != "a" {
		t.Fatal("trim with cutset")
	}
}

func rowOf(cols ...string) *xdm.Element {
	r := xdm.NewElement("RECORD")
	for i := 0; i+1 < len(cols); i += 2 {
		r.AddChild(xdm.NewTextElement(cols[i], cols[i+1]))
	}
	return r
}

func TestBeaDistinctRows(t *testing.T) {
	rows := seq(rowOf("A", "1", "B", "x"), rowOf("A", "1", "B", "x"), rowOf("A", "2", "B", "x"))
	out := callF(t, "fn-bea:distinct-rows", rows)
	if len(out) != 2 {
		t.Fatalf("distinct rows = %d", len(out))
	}
}

func TestBeaRowsExcept(t *testing.T) {
	left := seq(rowOf("A", "1"), rowOf("A", "1"), rowOf("A", "2"), rowOf("A", "3"))
	right := seq(rowOf("A", "1"), rowOf("A", "3"))
	// EXCEPT DISTINCT: {2}
	out := callF(t, "fn-bea:rows-except", left, right, seq(xdm.Boolean(false)))
	if len(out) != 1 || out[0].(*xdm.Element).FirstChildElement("A").StringValue() != "2" {
		t.Fatalf("except = %v", out)
	}
	// EXCEPT ALL: one "1" survives (2 minus 1), plus "2" → {1, 2}
	out = callF(t, "fn-bea:rows-except", left, right, seq(xdm.Boolean(true)))
	if len(out) != 2 {
		t.Fatalf("except all = %d rows", len(out))
	}
}

func TestBeaRowsIntersect(t *testing.T) {
	left := seq(rowOf("A", "1"), rowOf("A", "1"), rowOf("A", "2"))
	right := seq(rowOf("A", "1"), rowOf("A", "1"), rowOf("A", "3"))
	out := callF(t, "fn-bea:rows-intersect", left, right, seq(xdm.Boolean(false)))
	if len(out) != 1 {
		t.Fatalf("intersect = %d rows", len(out))
	}
	out = callF(t, "fn-bea:rows-intersect", left, right, seq(xdm.Boolean(true)))
	if len(out) != 2 {
		t.Fatalf("intersect all = %d rows", len(out))
	}
}

func TestBeaPositionAndRepeat(t *testing.T) {
	if callF(t, "fn-bea:position", seq(xdm.String("ll")), seq(xdm.String("hello")))[0].(xdm.Integer) != 3 {
		t.Fatal("position")
	}
	if callF(t, "fn-bea:position", seq(xdm.String("zz")), seq(xdm.String("hello")))[0].(xdm.Integer) != 0 {
		t.Fatal("position missing = 0")
	}
	if callF(t, "fn-bea:position", seq(xdm.String("")), seq(xdm.String("hello")))[0].(xdm.Integer) != 1 {
		t.Fatal("position empty needle = 1")
	}
	if string(callF(t, "fn-bea:repeat", seq(xdm.String("ab")), seq(xdm.Integer(3)))[0].(xdm.String)) != "ababab" {
		t.Fatal("repeat")
	}
}

func TestXSConstructorFunctionCall(t *testing.T) {
	// xs:integer("42") called as a function (not a Cast node).
	e := New()
	q := &xquery.Query{Body: xquery.Call("xs:integer", xquery.Str("42"))}
	out, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].(xdm.Integer) != 42 {
		t.Fatalf("out = %v", out)
	}
}

func TestBuiltinArityChecking(t *testing.T) {
	e := New()
	if _, err := e.Eval(&xquery.Query{Body: xquery.Call("fn:count")}); err == nil || !strings.Contains(err.Error(), "at least") {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Eval(&xquery.Query{Body: xquery.Call("fn:empty", &xquery.EmptySeq{}, &xquery.EmptySeq{})}); err == nil || !strings.Contains(err.Error(), "at most") {
		t.Fatalf("err = %v", err)
	}
}
