package xqeval

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
	"repro/internal/xdm"
)

// stats.go is the engine's per-data-service statistics store: row counts,
// per-column distinct-key estimates, and average row widths, keyed like the
// function registry (namespace × local name). Statistics feed the planner's
// cost model (NewPlanStats): estimated scan cardinalities and hash-join
// selectivities rendered in EXPLAIN, and the choice of hash key when a join
// offers several equi-conjuncts.
//
// Collection is lazy by default — the first planned scan of a source
// observes its row sequence on the way past, at a bounded sampling cost —
// and eager on demand via CollectSourceStats (the facade's AnalyzeStats
// walks the catalog and calls it per table). Lazy observations accumulate
// silently: plans compiled afterwards see them, already-cached plans keep
// running (they are still correct, just costed blind) and the compile
// cache stays stable under steady load. The explicit refresh
// (CollectSourceStats) and invalidation advance a generation counter the
// compile cache keys artifacts under, so an ANALYZE-style refresh retires
// every plan costed against the old numbers, exactly as a catalog change
// retires artifacts keyed under the metadata generation.

// statsSampleRows bounds the per-observation sampling work: distinct-key
// and row-width estimates are computed from at most this many rows and
// scaled to the full cardinality.
const statsSampleRows = 2048

// SourceStats describes one data service function's result set.
type SourceStats struct {
	// Rows is the exact row count of the observed result sequence.
	Rows int64
	// AvgRowBytes is the mean flat-row payload size (element names plus
	// text values) over the sampled prefix.
	AvgRowBytes int64
	// Distinct maps a column (child element) name to its estimated
	// distinct-value count, scaled up from the sample when the source was
	// larger than the sampling bound; values never exceed Rows.
	Distinct map[string]int64
	// Sampled is how many rows the estimates were computed from.
	Sampled int64
}

// DistinctFor returns the distinct-key estimate for a column, or 0 when
// the column was never observed (absent or always NULL in the sample).
func (s *SourceStats) DistinctFor(col string) int64 {
	if s == nil || s.Distinct == nil {
		return 0
	}
	return s.Distinct[col]
}

// sourceStatsStore is the engine-side cache. A zero value is ready to use.
type sourceStatsStore struct {
	mu    sync.RWMutex
	stats map[funcKey]*SourceStats
	gen   atomic.Uint64
	// srcGens (guarded by mu) are per-federated-source statistics epochs:
	// an eager collection on a source-tagged function advances only its own
	// source's epoch, so a stats refresh on one backend retires only the
	// compiled plans that touch it. Untagged (single-source) collections
	// advance the global gen, the historical behavior.
	srcGens map[string]uint64
}

// SourceStats returns the cached statistics for one data service function.
// It is the StatsProvider the planner consults; hit/miss counts aggregate
// into obsv.Global.
func (e *Engine) SourceStats(namespace, local string) (*SourceStats, bool) {
	e.srcStats.mu.RLock()
	s, ok := e.srcStats.stats[funcKey{namespace, local}]
	e.srcStats.mu.RUnlock()
	if ok {
		obsv.Global.SourceStatsHits.Inc()
	} else {
		obsv.Global.SourceStatsMisses.Inc()
	}
	return s, ok
}

// StatsGeneration is the statistics epoch: it advances on every eager
// collection (CollectSourceStats) and on InvalidateSourceStats — never on
// lazy observation, which would churn the compile cache on every first
// scan. The compile cache keys artifacts under it so explicit stats
// refreshes retire stale plans.
func (e *Engine) StatsGeneration() uint64 {
	return e.srcStats.gen.Load()
}

// SourceStatsGeneration is the per-federated-source statistics epoch:
// advanced by eager collections on functions registered under that source
// name. Zero for sources never eagerly collected. The compiled-query cache
// folds it (with the source's metadata epoch) into per-source plan
// validity.
func (e *Engine) SourceStatsGeneration(source string) uint64 {
	e.srcStats.mu.RLock()
	defer e.srcStats.mu.RUnlock()
	return e.srcStats.srcGens[source]
}

// InvalidateSourceStats drops every cached statistic and advances the
// generation — called when the catalog changes underneath the engine
// (view definition, fault/resilience stack rebuild), since the shapes and
// cardinalities behind the function registry may have changed with it.
// Per-source epochs advance too: everything may have changed.
func (e *Engine) InvalidateSourceStats() {
	e.srcStats.mu.Lock()
	e.srcStats.stats = nil
	for src := range e.srcStats.srcGens {
		e.srcStats.srcGens[src]++
	}
	e.srcStats.mu.Unlock()
	e.srcStats.gen.Add(1)
}

// ObserveSourceStats records statistics computed from one full result
// sequence of the named function — the lazy collection path. The first
// observation wins (results of a parameterless source are stable between
// catalog changes) and the generation does NOT advance, so cached plans
// are undisturbed. Returns the stored stats.
func (e *Engine) ObserveSourceStats(namespace, local string, rows xdm.Sequence) *SourceStats {
	key := funcKey{namespace, local}
	e.srcStats.mu.RLock()
	s, ok := e.srcStats.stats[key]
	e.srcStats.mu.RUnlock()
	if ok {
		return s
	}
	s = statsFromRows(rows)
	e.srcStats.mu.Lock()
	defer e.srcStats.mu.Unlock()
	if prior, ok := e.srcStats.stats[key]; ok {
		// Lost the race to a concurrent observer; first wins.
		return prior
	}
	if e.srcStats.stats == nil {
		e.srcStats.stats = make(map[funcKey]*SourceStats)
	}
	e.srcStats.stats[key] = s
	return s
}

// CollectSourceStats eagerly (re)collects statistics for one parameterless
// data service function by invoking it — the catalog-walk hook behind the
// facade's AnalyzeStats. Unlike lazy observation it overwrites any prior
// numbers and advances the statistics generation, retiring compiled
// artifacts costed against them.
func (e *Engine) CollectSourceStats(ctx context.Context, namespace, local string) (*SourceStats, error) {
	out, err := e.CallContext(ctx, namespace, local, nil)
	if err != nil {
		return nil, err
	}
	s := statsFromRows(out)
	source := e.registeredSource(namespace, local)
	e.srcStats.mu.Lock()
	if e.srcStats.stats == nil {
		e.srcStats.stats = make(map[funcKey]*SourceStats)
	}
	e.srcStats.stats[funcKey{namespace, local}] = s
	if source != "" {
		// A source-tagged refresh retires only plans touching this source.
		if e.srcStats.srcGens == nil {
			e.srcStats.srcGens = make(map[string]uint64)
		}
		e.srcStats.srcGens[source]++
	}
	e.srcStats.mu.Unlock()
	if source == "" {
		e.srcStats.gen.Add(1)
	}
	return s, nil
}

// registeredSource returns the federated source a function was registered
// under, or "" for single-source registrations.
func (e *Engine) registeredSource(namespace, local string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if reg, ok := e.funcs[funcKey{namespace, local}]; ok {
		return reg.source
	}
	return ""
}

// maybeObserveScan is the lazy collection hook: invariant planned scans of
// a statically-resolved source pass their freshly evaluated sequence here.
// Already-observed sources return in one read-locked map probe.
func maybeObserveScan(env *scope, op *planOp, seq xdm.Sequence) {
	if op.scan == nil || env == nil || env.engine == nil {
		return
	}
	e := env.engine
	e.srcStats.mu.RLock()
	_, ok := e.srcStats.stats[funcKey{op.scan.namespace, op.scan.local}]
	e.srcStats.mu.RUnlock()
	if ok {
		return
	}
	e.ObserveSourceStats(op.scan.namespace, op.scan.local, seq)
}

// statsFromRows computes SourceStats from a result sequence: the exact row
// count, and distinct/width estimates over at most statsSampleRows rows.
// Distinct counts scale linearly from the sampled fraction — crude, but a
// usable selectivity signal for equi-join key choice — and are capped at
// the row count.
func statsFromRows(rows xdm.Sequence) *SourceStats {
	s := &SourceStats{Rows: int64(len(rows))}
	sample := len(rows)
	if sample > statsSampleRows {
		sample = statsSampleRows
	}
	s.Sampled = int64(sample)
	if sample == 0 {
		return s
	}
	distinct := make(map[string]map[string]struct{})
	var bytes int64
	for _, it := range rows[:sample] {
		el, ok := it.(*xdm.Element)
		if !ok {
			continue
		}
		for _, ch := range el.Children {
			col, ok := ch.(*xdm.Element)
			if !ok {
				continue
			}
			v := col.StringValue()
			bytes += int64(len(col.Name.Local) + len(v))
			set := distinct[col.Name.Local]
			if set == nil {
				set = make(map[string]struct{})
				distinct[col.Name.Local] = set
			}
			set[v] = struct{}{}
		}
	}
	s.AvgRowBytes = bytes / int64(sample)
	s.Distinct = make(map[string]int64, len(distinct))
	for col, set := range distinct {
		d := int64(len(set))
		if s.Sampled < s.Rows && d > 0 {
			// Scale the sampled distinct count to the full cardinality;
			// saturated samples (every sampled value unique) extrapolate to
			// a unique key, which is the common join-key case.
			d = d * s.Rows / s.Sampled
		}
		if d > s.Rows {
			d = s.Rows
		}
		s.Distinct[col] = d
	}
	return s
}
