package xqeval

// cost.go scores a plan for admission control: a single int64 "row visits"
// estimate of how much work one execution performs. The server's cost-aware
// admission (internal/server) converts the score into semaphore weight, so
// an expensive scan-join holds many slots while point lookups keep flowing.
//
// The model is deliberately coarse — it only has to rank queries, not
// predict runtimes. When statistics are available (estRows/estBuild from
// stats.go) the score is cardinality-driven; without them it degrades to a
// structural complexity estimate: every unresolved scan is assumed to be
// costDefaultScanRows rows, every dependent (non-invariant) for a small
// fan-out, so joins still multiply and nesting still compounds. Both paths
// are pure functions of the immutable plan, so the score is computed once
// at compile time and rides the cached artifact (qcache) — admission
// scoring is cache-hot.

const (
	// costDefaultScanRows is the assumed cardinality of a data-service scan
	// whose statistics have not been observed — the structural fallback.
	costDefaultScanRows = 1000
	// costDependentFanout is the assumed per-tuple yield of a dependent
	// (tuple-correlated) for, e.g. iterating child elements of a row.
	costDependentFanout = 4
	// costCap saturates the score so pathological nesting cannot overflow;
	// anything at the cap sheds first under brownout regardless.
	costCap = int64(1) << 40
)

// CostEstimate returns the plan's admission score: an estimate of total
// tuple visits across every FLWOR in the query. Nested FLWORs (subqueries)
// are summed rather than multiplied by their outer cardinality — cheaper to
// compute, and still monotone in the shapes the translator generates. The
// result is ≥ 1 and saturates at a fixed cap.
func (p *Plan) CostEstimate() int64 {
	if p == nil {
		return 1
	}
	total := int64(0)
	for _, fp := range p.ordered {
		total = costSatAdd(total, fp.cost())
	}
	if total < 1 {
		return 1
	}
	return total
}

// cost walks one FLWOR's pipeline keeping a running tuple-count estimate.
func (fp *flworPlan) cost() int64 {
	var total int64
	tuples := int64(1)
	for _, seg := range fp.segments {
		for _, op := range seg.ops {
			switch op.kind {
			case opKindFor:
				rows := op.estRows
				if rows < 0 {
					if op.scan != nil || op.invariant {
						rows = costDefaultScanRows
					} else {
						rows = costDependentFanout
					}
				}
				if rows < 1 {
					rows = 1
				}
				if op.hash != nil {
					// Build once, probe once per incoming tuple; the tuple
					// stream grows by the expected matches per probe.
					build := op.hash.estBuild
					if build < 0 {
						build = rows
					}
					total = costSatAdd(total, build)
					total = costSatAdd(total, tuples)
					matches := int64(1)
					if op.hash.estDistinct > 0 {
						matches = build / op.hash.estDistinct
						if matches < 1 {
							matches = 1
						}
					}
					tuples = costSatMul(tuples, matches)
				} else {
					// Nested iteration: the cross product is visited.
					tuples = costSatMul(tuples, rows)
					total = costSatAdd(total, tuples)
				}
			case opKindLet:
				total = costSatAdd(total, tuples)
			case opKindFilter:
				total = costSatAdd(total, tuples)
				// Assume half the tuples survive each filter, floor 1 —
				// enough to keep filtered joins cheaper than raw products.
				if tuples > 1 {
					tuples /= 2
				}
			}
		}
		if seg.barrier != nil {
			// Grouping/sorting materializes and reorders the tuple set.
			total = costSatAdd(total, tuples)
		}
	}
	return total
}

func costSatAdd(a, b int64) int64 {
	s := a + b
	if s < a || s > costCap {
		return costCap
	}
	return s
}

func costSatMul(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 1
	}
	if a > costCap/b {
		return costCap
	}
	return a * b
}
