package xqeval

import (
	"testing"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

// Regression: group-by map keys used to concatenate a multi-item key
// sequence's lexical forms with no separator, so the keys ("AB") and
// ("A","B") landed in the same group. Items are now length-prefixed.
func TestGroupByMultiItemKeyNoCollision(t *testing.T) {
	mk := func(keys ...string) *xdm.Element {
		el := xdm.NewElement("ROW")
		for _, k := range keys {
			el.AddChild(xdm.NewTextElement("K", k))
		}
		return el
	}
	rows := xdm.Sequence{mk("AB"), mk("A", "B"), mk("AB")}
	e := joinEngine(rows, nil)
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "j", Namespace: "urn:j", Location: "j.xsd"},
		}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "r", In: xquery.Call("j:L")},
				&xquery.GroupBy{InVar: "r", PartitionVar: "part",
					Keys: []xquery.GroupKey{{Expr: xquery.Call("fn:data", xquery.ChildPath("r", "K")), Var: "k"}}},
			},
			Return: xquery.Call("fn:count", xquery.VarRef("part")),
		},
	}
	out := diffEval(t, e, q)
	// ("AB") appears twice, ("A","B") once — two distinct groups.
	if got := xdm.MarshalSequence(out); got != "2 1" {
		t.Fatalf("group sizes = %q, want \"2 1\" (keys must not collide)", got)
	}
}
