package xqeval

import (
	"testing"

	"repro/internal/xquery"
)

func costOf(t *testing.T, src string, sp StatsProvider) int64 {
	t.Helper()
	q, err := xquery.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if sp != nil {
		return NewPlanStats(q, sp).CostEstimate()
	}
	return NewPlan(q).CostEstimate()
}

const costProlog = `import schema namespace j="urn:j" at "j.xsd";`

// Structural fallback: with no statistics, joins must still rank above
// single scans, and single scans above constant bodies.
func TestCostEstimateStructuralOrdering(t *testing.T) {
	constant := costOf(t, `<r/>`, nil)
	scan := costOf(t, costProlog+` for $a in j:L() return $a`, nil)
	join := costOf(t, costProlog+` for $a in j:L() for $b in j:R() where $a/K = $b/K return $a`, nil)
	if !(constant < scan && scan < join) {
		t.Fatalf("structural ordering violated: constant=%d scan=%d join=%d", constant, scan, join)
	}
	if constant < 1 {
		t.Fatalf("cost must be >= 1, got %d", constant)
	}
}

type fixedStats map[string]*SourceStats

func (f fixedStats) SourceStats(ns, local string) (*SourceStats, bool) {
	s, ok := f[local]
	return s, ok
}

// Stats-driven scoring: a big scan must outrank a small one, and a hash
// join must score far below the nested-loop cross product of its inputs.
func TestCostEstimateUsesStats(t *testing.T) {
	sp := fixedStats{
		"L": {Rows: 100000, Distinct: map[string]int64{"K": 100000}},
		"R": {Rows: 10, Distinct: map[string]int64{"K": 10}},
	}
	big := costOf(t, costProlog+` for $a in j:L() return $a`, sp)
	small := costOf(t, costProlog+` for $a in j:R() return $a`, sp)
	if big <= small {
		t.Fatalf("big scan (%d) must outrank small scan (%d)", big, small)
	}
	join := costOf(t, costProlog+` for $a in j:L() for $b in j:R() where $a/K = $b/K return $a`, sp)
	// Hash execution: ~100k probes + 10 build rows, nowhere near the 1M
	// cross product.
	if join >= 1000000 {
		t.Fatalf("hash join cost %d looks like a cross product", join)
	}
	if join <= big/2 {
		t.Fatalf("join cost %d should not undercut its own probe input %d", join, big)
	}
}

// Saturation: deep nesting must cap, not overflow into a negative score.
func TestCostEstimateSaturates(t *testing.T) {
	src := costProlog + ` for $a in j:L() for $b in j:L() for $c in j:L() for $d in j:L() for $e in j:L() return $a`
	sp := fixedStats{"L": {Rows: 1 << 30}}
	got := costOf(t, src, sp)
	if got <= 0 || got > costCap {
		t.Fatalf("saturated cost out of range: %d", got)
	}
	if got != costCap {
		t.Fatalf("expected cap %d, got %d", costCap, got)
	}
}
