package xqeval

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/aqerr"
	"repro/internal/obsv"
	"repro/internal/xdm"
)

// parallel.go is the morsel-style parallel executor. An eligible segment —
// eager plan, a single driving tuple, an invariant non-hash outer for whose
// source is already materialized — partitions that source into fixed-size
// morsels claimed by a bounded worker pool. Each worker runs the segment's
// remaining ops (filters, dependent fors/lets, hash-join probes against the
// shared read-only build tables) over its morsel, buffering results; the
// calling goroutine merges buffers strictly in morsel order, so the emitted
// stream is byte-identical to the serial path's and ORDER BY barriers see
// tuples in the exact serial sequence (the ordered-merge requirement comes
// for free). A window of in-flight morsels (2× workers) bounds speculation
// ahead of the merge point, which is what keeps FETCH FIRST short-circuits
// cheap: when the limiter's stop sentinel comes back through emit, at most
// window × morsel-size items were processed beyond the limit, and the
// shared context cancels every worker promptly.
//
// Resource limits are enforced in two stages. Workers charge a shared
// atomic budget (parCounters) seeded from the evaluation's counters, which
// bounds the total work speculation can buffer: once the budget trips,
// every later speculative charge trips too. But the budget is only a bound,
// not a verdict — it both overcharges (morsels ahead of the merge point
// that a FETCH FIRST short-circuit or an earlier error will discard) and
// undercharges (a late-indexed morsel can run before an earlier one has
// charged) relative to serial order. So a worker-side trip is tentative
// (speculativeLimit), and the merger keeps the authoritative serial
// counters: exactly what serial execution would have charged for everything
// merged so far. Any morsel whose recorded charges would cross a limit at
// its serial position — and any morsel that tripped speculatively or was
// truncated by a sibling's cancellation — is re-run single-threaded against
// those counters (everything it reads is immutable, so the re-run IS the
// serial execution of that morsel, at the cost of re-invoking its source
// calls). The result: rows delivered, the error surfaced, and the counters
// folded back into the caller are all byte-identical to the serial path,
// on success, on limit trips, on evaluation errors, and under FETCH FIRST
// — the only latitude left is external cancellation, whose timing is
// inherently racy in both paths.

// ExecConfig configures parallel query execution. The zero value resolves
// to GOMAXPROCS workers; Workers=1 (or any negative value) forces the
// serial path, which is byte-identical anyway.
type ExecConfig struct {
	// Workers caps the worker pool per parallel segment. 0 resolves to
	// runtime.GOMAXPROCS(0); 1 or less disables parallel execution.
	Workers int
	// MorselSize is the number of outer-scan items per work unit
	// (default 1024). Smaller morsels balance skewed per-item cost at more
	// coordination overhead.
	MorselSize int
	// MinParallelItems is the smallest outer scan worth fanning out
	// (default 4096); below it the serial path always wins.
	MinParallelItems int
	// DisablePartitionPushdown turns off shard pruning and the per-shard
	// filter/projection on partitioned scans (partition.go) — shards are
	// still scattered concurrently, but every shard's full rows flow into
	// the central pipeline. The federation benchmark's on/off toggle.
	DisablePartitionPushdown bool
}

func (c ExecConfig) withDefaults() ExecConfig {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MorselSize <= 0 {
		c.MorselSize = 1024
	}
	if c.MinParallelItems <= 0 {
		c.MinParallelItems = 4096
	}
	return c
}

// parCounters is the shared row/tuple budget across one parallel segment's
// workers. Seeded from the evaluation's counters before the fan-out, it
// bounds the total work speculation can buffer; it is deliberately NOT
// folded back into the caller — the merge loop's serial counters are the
// authoritative values, so charges by discarded morsels are refunded.
type parCounters struct {
	rows   atomic.Int64
	tuples atomic.Int64
}

// speculativeLimit wraps a MaxRows/MaxTuples error raised against the
// shared speculative budget. The budget counts every worker's charges in
// whatever order they land, so a trip proves only that parallel
// speculation hit the cap — not that serial execution would have. The
// merger treats it as a checkpoint: the morsel is re-run single-threaded
// against the authoritative serial counters, and only a trip in that
// re-run surfaces. A speculativeLimit therefore never crosses the
// executor's boundary.
type speculativeLimit struct{ err error }

func (e *speculativeLimit) Error() string { return e.err.Error() }
func (e *speculativeLimit) Unwrap() error { return e.err }

// speculativeLimitErr builds a tentative budget-trip error. It bypasses
// limitErr on purpose: obsv's ResourceLimitHits counts evaluations a guard
// actually aborted, and a tentative trip may yet be refuted at the merge
// point (the authoritative re-run goes through limitErr if it trips).
func speculativeLimitErr(format string, args ...any) error {
	return &speculativeLimit{aqerr.Errorf(aqerr.KindResourceLimit, "evaluate", format, args...)}
}

func isSpeculativeLimit(err error) bool {
	var s *speculativeLimit
	return errors.As(err, &s)
}

// canParallel reports whether one segment qualifies for morsel execution
// under the engine's installed ExecConfig, returning the resolved config.
// The shape requirements: exactly one driving tuple (so morsels partition
// one scan, not a cross product), an invariant plain for as the first op
// with its source already materialized by prepare (eager plans only), at
// least MinParallelItems of it, a live evaluation (counters present), and
// not already inside a parallel region (no nested fan-out).
func (ex *flworExec) canParallel(ops []planOp, tuples []*scope) (ExecConfig, bool) {
	if !ex.fp.eager || len(tuples) != 1 {
		return ExecConfig{}, false
	}
	base := tuples[0]
	if base.engine == nil || base.counters == nil || base.par != nil {
		return ExecConfig{}, false
	}
	if len(ops) == 0 || ops[0].kind != opKindFor || !ops[0].invariant || ops[0].hash != nil {
		return ExecConfig{}, false
	}
	st := &ex.states[ops[0].stateIdx]
	if !st.done {
		return ExecConfig{}, false
	}
	cfg := base.engine.Exec()
	if cfg.Workers <= 1 || len(st.seq) < cfg.MinParallelItems {
		return ExecConfig{}, false
	}
	return cfg, true
}

// morselResult is one morsel's buffered output: return values on the final
// segment, surviving tuple scopes on a barrier segment, and the first
// error the morsel hit (processing stops there, so vals/tups hold the
// morsel's pre-error prefix). The charge ledger — how many tuples the
// morsel charged in total, and the running tuple count at the moment each
// val was buffered — is what lets the merge loop advance the authoritative
// serial counters exactly, including through a mid-morsel FETCH FIRST stop.
type morselResult struct {
	vals []xdm.Sequence
	tups []*scope
	err  error

	rowsCharged   int64
	tuplesCharged int64
	tupleAt       []int64
}

// runParallel fans ops[0]'s materialized source out to morsel workers.
// With final=true each surviving tuple's return value is buffered and the
// merger forwards buffers to emit in morsel order; otherwise the surviving
// scopes are collected and returned (the caller's barrier input), fixed up
// to the caller's context and counters since execution is single-threaded
// again from there.
func (ex *flworExec) runParallel(ops []planOp, base *scope, cfg ExecConfig, final bool, emit func(xdm.Sequence) error) ([]*scope, error) {
	op := &ops[0]
	seq := ex.states[op.stateIdx].seq
	num := (len(seq) + cfg.MorselSize - 1) / cfg.MorselSize
	workers := min(cfg.Workers, num)
	window := min(workers*2, num)

	parentCtx := base.goCtx
	if parentCtx == nil {
		parentCtx = context.Background()
	}
	workCtx, cancel := context.WithCancel(parentCtx)

	par := &parCounters{}
	par.rows.Store(base.counters.rows)
	par.tuples.Store(base.counters.tuples)

	results := make([]*morselResult, num)
	done := make([]chan struct{}, num)
	for i := range done {
		done[i] = make(chan struct{})
	}
	// tokens is the speculation window: a worker takes one to claim a
	// morsel, the merger returns it when that morsel is flushed. Claims are
	// strictly ascending, so the set of claimed morsels is always a prefix
	// of [0, num).
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}
	var claim, completed, workerSteps, workerPruned atomic.Int64

	obsv.Global.ParallelWorkers.Add(int64(workers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := &evalCounters{}
			defer func() {
				workerSteps.Add(wc.steps)
				workerPruned.Add(wc.pruned)
			}()
			ws := *base
			ws.goCtx = workCtx
			ws.counters = wc
			ws.par = par
			for {
				select {
				case <-workCtx.Done():
					return
				case <-tokens:
				}
				m := int(claim.Add(1)) - 1
				if m >= num {
					return
				}
				r := &morselResult{}
				ex.runMorsel(ops, &ws, seq, m*cfg.MorselSize, min((m+1)*cfg.MorselSize, len(seq)), final, r)
				results[m] = r
				close(done[m])
				completed.Add(1)
				if r.err != nil && !isSpeculativeLimit(r.err) {
					// A genuine error: cancel siblings promptly; the merger
					// decides what surfaces. Tentative budget trips must NOT
					// cancel — a tripped budget makes every later speculative
					// charge trip immediately, so the remaining morsels drain
					// cheaply while the merger re-checks serially.
					cancel()
					return
				}
			}
		}()
	}

	// serRows/serTuples are the authoritative serial counters: exactly what
	// the serial path would have charged for everything merged so far. They
	// advance only at the merge point, so charges by morsels that are
	// discarded (past a FETCH FIRST stop, beyond an error) are refunded for
	// free, and join folds them — never the speculative budget — back into
	// the caller's counters.
	serRows := base.counters.rows
	serTuples := base.counters.tuples

	// join tears the pool down and folds worker accounting back into the
	// caller's counters — on every exit path, including mid-merge errors.
	joined := false
	join := func() {
		if joined {
			return
		}
		joined = true
		cancel()
		wg.Wait()
		base.counters.rows = serRows
		base.counters.tuples = serTuples
		base.counters.steps += workerSteps.Load()
		base.counters.pruned += workerPruned.Load()
	}
	defer join()

	// flush hands one morsel's buffered rows to emit in order, advancing
	// the serial counters per row so an early stop (the FETCH FIRST
	// limiter's sentinel coming back through emit, a cursor-side abort)
	// leaves them exactly where serial execution would have stopped
	// charging.
	flush := func(r *morselResult, tupleBase int64) error {
		for i, v := range r.vals {
			serRows += int64(len(v))
			if i < len(r.tupleAt) {
				serTuples = tupleBase + r.tupleAt[i]
			}
			if err := emit(v); err != nil {
				return err
			}
		}
		return nil
	}

	// Merge strictly in morsel order — the emitted stream is exactly the
	// serial one.
	var collected []*scope
	for m := 0; m < num; m++ {
		if !joined {
			select {
			case <-done[m]:
			case <-workCtx.Done():
				// The pool is winding down — external cancellation, or a
				// sibling worker cancelled after a genuine error. Unclaimed
				// morsels will never close their done channel, so blocking
				// on done[m] could hang a cancelled query forever. Settle
				// the workers instead: after the join every claimed morsel's
				// result is final, and the merge continues deterministically
				// over what was actually produced.
				join()
			}
		}
		r := results[m]
		if r == nil {
			// Only reachable after join. Claims are strictly ascending and a
			// worker abandons the claim loop only on cancellation, so a nil
			// slot means the pool observed cancellation before any worker
			// reached morsel m — and any genuine worker error would sit at a
			// claimed, hence earlier, already-merged slot. The cancellation
			// is therefore external; surface the caller's context error.
			if err := parentCtx.Err(); err != nil {
				return nil, err
			}
			return nil, context.Canceled
		}

		tupleBase := serTuples
		rerun := false
		switch {
		case r.err != nil && isSpeculativeLimit(r.err):
			// Tentative budget trip — only the serial counters can tell
			// whether it is real.
			rerun = true
		case r.err != nil && isContextErr(r.err):
			// Truncated by the pool's cancellation, not by its own work.
			// Under external cancellation the re-run aborts on its first
			// cancel check and surfaces the context error; under a
			// sibling's cancel (parent still live) it completes the morsel
			// exactly as serial execution would have, so the rows delivered
			// ahead of the sibling's error match the serial prefix.
			rerun = true
		default:
			// Clean result or genuine error: the buffered prefix is exactly
			// what serial execution produced — unless the morsel's charges
			// cross a resource limit at its serial position. The worker
			// checked them against the shared budget, which can run behind
			// serial order (a late morsel may charge before an earlier one
			// has), so the crossing must be re-found serially to trip at
			// the exact row serial execution trips at.
			lim := base.limits
			rerun = (lim.MaxRows > 0 && serRows+r.rowsCharged > lim.MaxRows) ||
				(lim.MaxTuples > 0 && serTuples+r.tuplesCharged > lim.MaxTuples)
		}

		switch {
		case rerun:
			// Re-run the morsel single-threaded against the authoritative
			// serial counters. Everything it reads — the source sequence,
			// invariant states, hash build tables — is immutable, so this
			// is the serial execution of the morsel, concurrent-safe even
			// while sibling workers are still speculating.
			rc := &evalCounters{rows: serRows, tuples: serTuples}
			rs := *base
			rs.goCtx = parentCtx
			rs.counters = rc
			rs.par = nil
			rr := &morselResult{}
			ex.runMorsel(ops, &rs, seq, m*cfg.MorselSize, min((m+1)*cfg.MorselSize, len(seq)), final, rr)
			base.counters.steps += rc.steps
			base.counters.pruned += rc.pruned
			if final {
				if err := flush(rr, tupleBase); err != nil {
					// Includes the FETCH FIRST stop sentinel, which serial
					// execution hits before any error later in the morsel.
					join()
					return nil, err
				}
			} else {
				collected = append(collected, rr.tups...)
			}
			serRows, serTuples = rc.rows, rc.tuples
			if rr.err != nil {
				// Authoritative: the exact error, after the exact row
				// prefix, that serial execution produces.
				join()
				return nil, rr.err
			}

		case r.err != nil:
			// Genuine error with charges inside every limit: the buffered
			// prefix is the serial prefix. Deliver it, then the error —
			// unless a FETCH FIRST stop lands first, which serial execution
			// would also have hit first.
			if final {
				if err := flush(r, tupleBase); err != nil {
					join()
					return nil, err
				}
			}
			serTuples = tupleBase + r.tuplesCharged
			join()
			return nil, r.err

		default:
			if final {
				if err := flush(r, tupleBase); err != nil {
					join()
					return nil, err
				}
			} else {
				collected = append(collected, r.tups...)
			}
			serTuples = tupleBase + r.tuplesCharged
		}

		results[m] = nil
		obsv.Global.MorselsProcessed.Inc()
		obsv.Global.MergeBacklog.SetMax(completed.Load() - int64(m+1))
		if !joined {
			tokens <- struct{}{}
		}
	}
	join()
	if !final {
		// Execution is single-threaded past the fan-in: re-home the
		// surviving scopes on the caller's context and counters (derived
		// scopes copy these fields from the head they are bound off).
		for _, t := range collected {
			t.goCtx = base.goCtx
			t.counters = base.counters
			t.par = nil
		}
	}
	return collected, nil
}

// runMorsel processes outer-scan items [start,end) through ops[1:],
// buffering into r and stopping at the first error. ws.counters doubles as
// the charge ledger: the deltas accumulated here are what the merge loop
// replays against the authoritative serial counters. The same code serves
// the worker pass (ws.par set, charges checked against the shared budget)
// and the merge-time authoritative re-run (ws.par nil, charges checked
// serially).
func (ex *flworExec) runMorsel(ops []planOp, ws *scope, seq xdm.Sequence, start, end int, final bool, r *morselResult) {
	rows0, tups0 := ws.counters.rows, ws.counters.tuples
	defer func() {
		r.rowsCharged = ws.counters.rows - rows0
		r.tuplesCharged = ws.counters.tuples - tups0
	}()
	var sink tupleSink
	if final {
		sink = func(t2 *scope) error {
			if err := t2.checkCancel(); err != nil {
				return err
			}
			v, err := evalExpr(ex.fp.flwor.Return, t2)
			if err != nil {
				return err
			}
			// Charge before buffering — a row is never buffered without
			// having been counted — and record the tuple watermark so the
			// merger can advance the serial counters row by row.
			if err := t2.countRows(len(v)); err != nil {
				return err
			}
			r.tupleAt = append(r.tupleAt, ws.counters.tuples-tups0)
			r.vals = append(r.vals, v)
			return nil
		}
	} else {
		sink = func(t2 *scope) error {
			r.tups = append(r.tups, t2)
			return nil
		}
	}
	op := &ops[0]
	for idx := start; idx < end; idx++ {
		if err := ws.checkCancel(); err != nil {
			r.err = err
			return
		}
		if err := ws.countTuple(); err != nil {
			r.err = err
			return
		}
		nt := ws.bind(op.forClause.Var, xdm.SequenceOf(seq[idx]))
		if op.forClause.At != "" {
			nt = nt.bind(op.forClause.At, xdm.SequenceOf(xdm.Integer(idx+1)))
		}
		if err := ex.feed(ops, 1, nt, sink); err != nil {
			r.err = err
			return
		}
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
