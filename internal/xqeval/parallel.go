package xqeval

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
	"repro/internal/xdm"
)

// parallel.go is the morsel-style parallel executor. An eligible segment —
// eager plan, a single driving tuple, an invariant non-hash outer for whose
// source is already materialized — partitions that source into fixed-size
// morsels claimed by a bounded worker pool. Each worker runs the segment's
// remaining ops (filters, dependent fors/lets, hash-join probes against the
// shared read-only build tables) over its morsel, buffering results; the
// calling goroutine merges buffers strictly in morsel order, so the emitted
// stream is byte-identical to the serial path's and ORDER BY barriers see
// tuples in the exact serial sequence (the ordered-merge requirement comes
// for free). A window of in-flight morsels (2× workers) bounds speculation
// ahead of the merge point, which is what keeps FETCH FIRST short-circuits
// cheap: when the limiter's stop sentinel comes back through emit, at most
// window × morsel-size items were processed beyond the limit, and the
// shared context cancels every worker promptly.
//
// Row/tuple resource limits are charged against a single shared atomic
// budget seeded from (and folded back into) the evaluation's counters, so
// MaxRows/MaxTuples are never exceeded no matter how morsels interleave;
// speculation can only make a limit trip earlier, never deliver more.

// ExecConfig configures parallel query execution. The zero value resolves
// to GOMAXPROCS workers; Workers=1 (or any negative value) forces the
// serial path, which is byte-identical anyway.
type ExecConfig struct {
	// Workers caps the worker pool per parallel segment. 0 resolves to
	// runtime.GOMAXPROCS(0); 1 or less disables parallel execution.
	Workers int
	// MorselSize is the number of outer-scan items per work unit
	// (default 1024). Smaller morsels balance skewed per-item cost at more
	// coordination overhead.
	MorselSize int
	// MinParallelItems is the smallest outer scan worth fanning out
	// (default 4096); below it the serial path always wins.
	MinParallelItems int
}

func (c ExecConfig) withDefaults() ExecConfig {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MorselSize <= 0 {
		c.MorselSize = 1024
	}
	if c.MinParallelItems <= 0 {
		c.MinParallelItems = 4096
	}
	return c
}

// parCounters is the shared row/tuple budget across one parallel segment's
// workers. Seeded from the evaluation's counters before the fan-out and
// folded back after the join, it makes countRows/countTuple atomic in
// worker scopes (scope.par) so resource limits hold exactly.
type parCounters struct {
	rows   atomic.Int64
	tuples atomic.Int64
}

// canParallel reports whether one segment qualifies for morsel execution
// under the engine's installed ExecConfig, returning the resolved config.
// The shape requirements: exactly one driving tuple (so morsels partition
// one scan, not a cross product), an invariant plain for as the first op
// with its source already materialized by prepare (eager plans only), at
// least MinParallelItems of it, a live evaluation (counters present), and
// not already inside a parallel region (no nested fan-out).
func (ex *flworExec) canParallel(ops []planOp, tuples []*scope) (ExecConfig, bool) {
	if !ex.fp.eager || len(tuples) != 1 {
		return ExecConfig{}, false
	}
	base := tuples[0]
	if base.engine == nil || base.counters == nil || base.par != nil {
		return ExecConfig{}, false
	}
	if len(ops) == 0 || ops[0].kind != opKindFor || !ops[0].invariant || ops[0].hash != nil {
		return ExecConfig{}, false
	}
	st := &ex.states[ops[0].stateIdx]
	if !st.done {
		return ExecConfig{}, false
	}
	cfg := base.engine.Exec()
	if cfg.Workers <= 1 || len(st.seq) < cfg.MinParallelItems {
		return ExecConfig{}, false
	}
	return cfg, true
}

// morselResult is one morsel's buffered output: return values on the final
// segment, surviving tuple scopes on a barrier segment, and the first
// error the morsel hit (processing stops there, so vals/tups hold the
// morsel's pre-error prefix).
type morselResult struct {
	vals []xdm.Sequence
	tups []*scope
	err  error
}

// runParallel fans ops[0]'s materialized source out to morsel workers.
// With final=true each surviving tuple's return value is buffered and the
// merger forwards buffers to emit in morsel order; otherwise the surviving
// scopes are collected and returned (the caller's barrier input), fixed up
// to the caller's context and counters since execution is single-threaded
// again from there.
func (ex *flworExec) runParallel(ops []planOp, base *scope, cfg ExecConfig, final bool, emit func(xdm.Sequence) error) ([]*scope, error) {
	op := &ops[0]
	seq := ex.states[op.stateIdx].seq
	num := (len(seq) + cfg.MorselSize - 1) / cfg.MorselSize
	workers := min(cfg.Workers, num)
	window := min(workers*2, num)

	parentCtx := base.goCtx
	if parentCtx == nil {
		parentCtx = context.Background()
	}
	workCtx, cancel := context.WithCancel(parentCtx)

	par := &parCounters{}
	par.rows.Store(base.counters.rows)
	par.tuples.Store(base.counters.tuples)

	results := make([]*morselResult, num)
	done := make([]chan struct{}, num)
	for i := range done {
		done[i] = make(chan struct{})
	}
	// tokens is the speculation window: a worker takes one to claim a
	// morsel, the merger returns it when that morsel is flushed. Claims are
	// strictly ascending, so every morsel the merger waits on was claimed
	// and will close its done channel.
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}
	var claim, completed, workerSteps, workerPruned atomic.Int64

	obsv.Global.ParallelWorkers.Add(int64(workers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := &evalCounters{}
			defer func() {
				workerSteps.Add(wc.steps)
				workerPruned.Add(wc.pruned)
			}()
			ws := *base
			ws.goCtx = workCtx
			ws.counters = wc
			ws.par = par
			for {
				select {
				case <-workCtx.Done():
					return
				case <-tokens:
				}
				m := int(claim.Add(1)) - 1
				if m >= num {
					return
				}
				r := &morselResult{}
				ex.runMorsel(ops, &ws, seq, m*cfg.MorselSize, min((m+1)*cfg.MorselSize, len(seq)), final, r)
				results[m] = r
				close(done[m])
				completed.Add(1)
				if r.err != nil {
					// Cancel siblings promptly; the merger selects the
					// error to surface.
					cancel()
					return
				}
			}
		}()
	}

	// join tears the pool down and folds worker accounting back into the
	// caller's counters — on every exit path, including mid-merge errors.
	joined := false
	join := func() {
		if joined {
			return
		}
		joined = true
		cancel()
		wg.Wait()
		base.counters.rows = par.rows.Load()
		base.counters.tuples = par.tuples.Load()
		base.counters.steps += workerSteps.Load()
		base.counters.pruned += workerPruned.Load()
	}
	defer join()

	// Merge strictly in morsel order — the emitted stream is exactly the
	// serial one.
	var collected []*scope
	for m := 0; m < num; m++ {
		<-done[m]
		r := results[m]
		if r.err != nil {
			join()
			return nil, ex.selectError(results, m, r, final, emit)
		}
		if final {
			for _, v := range r.vals {
				if err := emit(v); err != nil {
					// Includes the FETCH FIRST limiter's stop sentinel:
					// propagate unwrapped after cancelling the pool.
					join()
					return nil, err
				}
			}
		} else {
			collected = append(collected, r.tups...)
		}
		results[m] = nil
		obsv.Global.MorselsProcessed.Inc()
		obsv.Global.MergeBacklog.SetMax(completed.Load() - int64(m+1))
		tokens <- struct{}{}
	}
	join()
	if !final {
		// Execution is single-threaded past the fan-in: re-home the
		// surviving scopes on the caller's context and counters (derived
		// scopes copy these fields from the head they are bound off).
		for _, t := range collected {
			t.goCtx = base.goCtx
			t.counters = base.counters
			t.par = nil
		}
	}
	return collected, nil
}

// runMorsel processes outer-scan items [start,end) through ops[1:],
// buffering into r and stopping at the first error.
func (ex *flworExec) runMorsel(ops []planOp, ws *scope, seq xdm.Sequence, start, end int, final bool, r *morselResult) {
	var sink tupleSink
	if final {
		sink = func(t2 *scope) error {
			if err := t2.checkCancel(); err != nil {
				return err
			}
			v, err := evalExpr(ex.fp.flwor.Return, t2)
			if err != nil {
				return err
			}
			// Charge the shared budget before buffering: a row is never
			// delivered without having been counted, so MaxRows holds
			// across every interleaving.
			if err := t2.countRows(len(v)); err != nil {
				return err
			}
			r.vals = append(r.vals, v)
			return nil
		}
	} else {
		sink = func(t2 *scope) error {
			r.tups = append(r.tups, t2)
			return nil
		}
	}
	op := &ops[0]
	for idx := start; idx < end; idx++ {
		if err := ws.checkCancel(); err != nil {
			r.err = err
			return
		}
		if err := ws.countTuple(); err != nil {
			r.err = err
			return
		}
		nt := ws.bind(op.forClause.Var, xdm.SequenceOf(seq[idx]))
		if op.forClause.At != "" {
			nt = nt.bind(op.forClause.At, xdm.SequenceOf(xdm.Integer(idx+1)))
		}
		if err := ex.feed(ops, 1, nt, sink); err != nil {
			r.err = err
			return
		}
	}
}

// selectError picks the error to surface when the merge hits an errored
// morsel m. A genuine evaluation error cancels the pool, so later-claimed
// morsels (and cancelled siblings at earlier indices) report context
// errors that serial execution would never have produced; preferring the
// first non-context error in morsel order recovers the serial-most
// failure. When the erroring morsel is m itself on the final segment, its
// buffered prefix is emitted first — the rows serial execution delivered
// before failing. The pool is already joined; results reads are safe.
func (ex *flworExec) selectError(results []*morselResult, m int, r *morselResult, final bool, emit func(xdm.Sequence) error) error {
	chosen, idx := r.err, m
	if isContextErr(chosen) {
		for j := m + 1; j < len(results); j++ {
			if rj := results[j]; rj != nil && rj.err != nil && !isContextErr(rj.err) {
				chosen, idx = rj.err, j
				break
			}
		}
	}
	if final && idx == m {
		for _, v := range r.vals {
			if err := emit(v); err != nil {
				return err
			}
		}
	}
	return chosen
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
