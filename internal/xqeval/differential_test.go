// Differential correctness net for the query planner: every query the
// translator generates for the EXPLAIN golden corpus and the translator
// fuzz seeds, in both result modes, must evaluate to an identical sequence
// planned and naive. The planner is licensed to change error timing
// (XQuery §2.3.4) but never a successful query's value — this test is the
// proof over the whole generated-query corpus, against the demo dataset.
//
// It lives outside package xqeval because it needs internal/demo and
// internal/translator, both of which depend on xqeval.
package xqeval_test

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/translator"
	"repro/internal/xdm"
)

// differentialCorpus is the union of the driver's EXPLAIN golden SQL and
// the translator fuzz seeds (deduplicated).
func differentialCorpus() []string {
	raw := []string{
		// EXPLAIN golden corpus (internal/driver/explain_golden_test.go).
		"SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS",
		"SELECT * FROM CUSTOMERS",
		"SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID",
		"SELECT A.CUSTOMERNAME, B.PAYMENT FROM CUSTOMERS A LEFT OUTER JOIN PAYMENTS B ON A.CUSTOMERID = B.CUSTID",
		"SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1",
		"SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS",
		"SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS WHERE PAYMENT > 100)",
		"SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY DESC",
		"SELECT UPPER(CUSTOMERNAME), LENGTH(CITY) FROM CUSTOMERS WHERE CITY IS NOT NULL",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ? AND CITY = ?",
		// Translator fuzz seeds (internal/translator/fuzz_test.go).
		"SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS)",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?",
		"SELECT CAST(CUSTOMERID AS VARCHAR(10)) FROM CUSTOMERS ORDER BY 1",
		"SELECT COUNT(DISTINCT CITY), MIN(SIGNUPDATE) FROM CUSTOMERS",
		"SELECT EXTRACT(YEAR FROM PAYDATE), SUM(PAYMENT) FROM PAYMENTS GROUP BY EXTRACT(YEAR FROM PAYDATE)",
		"SELECT * FROM PO_CUSTOMERS WHERE STATUS = 'OPEN' AND TOTAL BETWEEN 10 AND 500",
		"SELECT CUSTOMERID FROM CUSTOMERS EXCEPT SELECT CUSTID FROM PAYMENTS",
	}
	seen := map[string]bool{}
	var out []string
	for _, s := range raw {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// bindParams builds plausible external variable bindings $p1…$pN for a
// translation — numeric parameters get an in-range customer id, the rest a
// demo city name — so parameterized corpus queries run non-trivially.
func bindParams(res *translator.Result) map[string]xdm.Sequence {
	if res.ParamCount == 0 {
		return nil
	}
	ext := make(map[string]xdm.Sequence, res.ParamCount)
	for i := 0; i < res.ParamCount; i++ {
		var v xdm.Atomic
		switch res.ParamTypes[i] {
		case catalog.SQLInteger, catalog.SQLSmallint, catalog.SQLDecimal, catalog.SQLDouble:
			v = xdm.Integer(1005)
		default:
			v = xdm.String("Springfield")
		}
		ext["p"+strconv.Itoa(i+1)] = xdm.SequenceOf(v)
	}
	return ext
}

func TestPlannedMatchesNaiveOnCorpus(t *testing.T) {
	app, _, engine := demo.Setup(demo.DefaultSizes)
	checked := 0
	for _, mode := range []translator.ResultMode{translator.ModeXML, translator.ModeText} {
		trans := translator.New(catalog.NewCache(app))
		trans.Options.Mode = mode
		for _, sql := range differentialCorpus() {
			res, err := trans.Translate(sql)
			if err != nil {
				t.Fatalf("mode %v: %q must translate: %v", mode, sql, err)
			}
			ext := bindParams(res)
			planned, perr := engine.EvalWithContext(context.Background(), res.Query, ext)
			naive, nerr := engine.EvalNaiveWithTrace(context.Background(), res.Query, ext, nil)
			if (perr == nil) != (nerr == nil) {
				t.Fatalf("mode %v: %q: error divergence\nplanned: %v\nnaive:   %v", mode, sql, perr, nerr)
			}
			if perr != nil {
				t.Fatalf("mode %v: %q must evaluate: %v", mode, sql, perr)
			}
			if got, want := xdm.MarshalSequence(planned), xdm.MarshalSequence(naive); got != want {
				t.Fatalf("mode %v: %q: result divergence\nplanned: %s\nnaive:   %s", mode, sql, got, want)
			}
			checked++
		}
	}
	if checked < 38 { // 19 distinct statements × 2 modes
		t.Fatalf("corpus shrank: only %d checks ran", checked)
	}
}

// FuzzPlanDifferential extends translator fuzzing through the optimizer:
// any SQL the translator accepts is evaluated planned and naive over a
// small demo dataset, and any divergence (or planner panic) fails.
func FuzzPlanDifferential(f *testing.F) {
	for _, s := range differentialCorpus() {
		f.Add(s)
	}
	// Small dataset: the naive evaluator materializes full cross products,
	// and fuzz inputs can join a table with itself several times.
	app, _, engine := demo.Setup(demo.Sizes{Customers: 8, PaymentsPerCustomer: 2, Orders: 10, ItemsPerOrder: 2})
	trans := translator.New(catalog.NewCache(app))
	f.Fuzz(func(t *testing.T, sql string) {
		res, err := trans.Translate(sql)
		if err != nil {
			return
		}
		if strings.Contains(res.XQuery(), "fn:current-") {
			return // nondeterministic between the two evaluations
		}
		ext := bindParams(res)
		planned, perr := engine.EvalWithContext(context.Background(), res.Query, ext)
		naive, nerr := engine.EvalNaiveWithTrace(context.Background(), res.Query, ext, nil)
		if perr != nil || nerr != nil {
			// Error-presence divergence is permitted: conjunct splitting
			// drops the naive evaluator's `and` short-circuit, which
			// XQuery §3.6.1 never guaranteed, and §2.3.4 lets an optimizer
			// change when dynamic errors surface. Value divergence on a
			// doubly-successful query is the bug this fuzzer hunts.
			return
		}
		if got, want := xdm.MarshalSequence(planned), xdm.MarshalSequence(naive); got != want {
			t.Fatalf("%q: result divergence\nplanned: %s\nnaive:   %s", sql, got, want)
		}
	})
}
