// Differential and safety nets for the morsel-parallel executor: every
// query the translator generates for the corpus must evaluate to a
// byte-identical sequence at every degree of parallelism, materialized and
// streamed; resource limits must hold exactly under speculation; FETCH
// FIRST, mid-stream Close, cancellation, and worker errors must all
// terminate promptly and surface the same way the serial path does.
//
// Like the planner differential, it lives outside package xqeval because
// it needs internal/demo and internal/translator.
package xqeval_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/translator"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// parallelExec is the test configuration: tiny morsels and threshold so
// even the demo dataset's scans fan out.
func parallelExec(workers int) xqeval.ExecConfig {
	return xqeval.ExecConfig{Workers: workers, MorselSize: 8, MinParallelItems: 2}
}

// externalNames lists $p1…$pN for CompileAST's static check.
func externalNames(n int) []string {
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "p" + strconv.Itoa(i+1)
	}
	return out
}

// drainCursor pulls a cursor dry, returning the concatenated items.
func drainCursor(cur *xqeval.Cursor) (xdm.Sequence, error) {
	defer cur.Close()
	var out xdm.Sequence
	for {
		chunk, err := cur.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, chunk...)
	}
}

// TestParallelMatchesSerialOnCorpus is the parallel executor's core
// contract: across the whole generated-query corpus, both result modes,
// materialized and streamed, workers∈{2,8} produce byte-identical output
// to workers=1 (the plain serial path).
func TestParallelMatchesSerialOnCorpus(t *testing.T) {
	app, _, engine := demo.Setup(demo.DefaultSizes)
	defer engine.SetExec(xqeval.ExecConfig{})
	ctx := context.Background()
	checked := 0
	for _, mode := range []translator.ResultMode{translator.ModeXML, translator.ModeText} {
		trans := translator.New(catalog.NewCache(app))
		trans.Options.Mode = mode
		for _, sql := range differentialCorpus() {
			res, err := trans.Translate(sql)
			if err != nil {
				t.Fatalf("mode %v: %q must translate: %v", mode, sql, err)
			}
			plan, err := engine.CompileAST(res.Query, externalNames(res.ParamCount))
			if err != nil {
				t.Fatalf("mode %v: %q must compile: %v", mode, sql, err)
			}
			ext := bindParams(res)

			engine.SetExec(parallelExec(1))
			serial, err := engine.EvalPlanWithTrace(ctx, plan, ext, nil)
			if err != nil {
				t.Fatalf("mode %v: %q must evaluate serially: %v", mode, sql, err)
			}
			want := xdm.MarshalSequence(serial)
			serialStream, err := drainCursor(engine.EvalStream(ctx, plan, ext, nil))
			if err != nil {
				t.Fatalf("mode %v: %q must stream serially: %v", mode, sql, err)
			}
			wantStream := xdm.MarshalSequence(serialStream)

			for _, workers := range []int{2, 8} {
				engine.SetExec(parallelExec(workers))
				got, err := engine.EvalPlanWithTrace(ctx, plan, ext, nil)
				if err != nil {
					t.Fatalf("mode %v, workers %d: %q must evaluate: %v", mode, workers, sql, err)
				}
				if g := xdm.MarshalSequence(got); g != want {
					t.Fatalf("mode %v, workers %d: %q diverges from serial\ngot:  %s\nwant: %s", mode, workers, sql, g, want)
				}
				streamed, err := drainCursor(engine.EvalStream(ctx, plan, ext, nil))
				if err != nil {
					t.Fatalf("mode %v, workers %d: %q must stream: %v", mode, workers, sql, err)
				}
				if g := xdm.MarshalSequence(streamed); g != wantStream {
					t.Fatalf("mode %v, workers %d: %q streamed diverges from serial\ngot:  %s\nwant: %s", mode, workers, sql, g, wantStream)
				}
				checked++
			}
		}
	}
	if checked < 76 { // 19 distinct statements × 2 modes × 2 worker counts
		t.Fatalf("corpus shrank: only %d checks ran", checked)
	}
}

// parallelScanSetup builds an engine with one n-row source and a compiled
// single-scan query over it, configured for aggressive fan-out.
func parallelScanSetup(t testing.TB, n int) (*xqeval.Engine, *xqeval.Plan) {
	t.Helper()
	rows := make([]*xdm.Element, n)
	for i := 0; i < n; i++ {
		row := xdm.NewElement("T")
		row.AddChild(xdm.NewTextElement("ID", strconv.Itoa(i)))
		row.AddChild(xdm.NewTextElement("VAL", fmt.Sprintf("v%d", i%7)))
		rows[i] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:ParTest", "T", rows)
	q, err := xqeval.Compile(`import schema namespace p = "ld:ParTest" at "ParTest.xsd";
for $r in p:T()
return <ROW>{$r/ID}</ROW>`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetExec(parallelExec(8))
	return e, plan
}

// TestParallelLimits proves MaxRows/MaxTuples hold exactly under
// speculation: the shared atomic budget makes the limit trip with a typed
// error and never lets more than the cap be delivered.
func TestParallelLimits(t *testing.T) {
	ctx := context.Background()

	e, plan := parallelScanSetup(t, 200)
	e.SetLimits(xqeval.Limits{MaxRows: 17})
	if _, err := e.EvalPlanWithTrace(ctx, plan, nil, nil); err == nil {
		t.Fatal("MaxRows=17 over 200 rows must error")
	} else {
		var qe *aqerr.QueryError
		if !errors.As(err, &qe) || qe.Kind != aqerr.KindResourceLimit {
			t.Fatalf("limit error not typed KindResourceLimit: %v", err)
		}
	}
	delivered, err := drainCursor(e.EvalStream(ctx, plan, nil, nil))
	if err == nil {
		t.Fatal("streamed MaxRows=17 over 200 rows must error")
	}
	if len(delivered) > 17 {
		t.Fatalf("stream delivered %d rows past MaxRows=17", len(delivered))
	}

	e2, plan2 := parallelScanSetup(t, 200)
	e2.SetLimits(xqeval.Limits{MaxTuples: 50})
	if _, err := e2.EvalPlanWithTrace(ctx, plan2, nil, nil); err == nil {
		t.Fatal("MaxTuples=50 over 200 tuples must error")
	} else {
		var qe *aqerr.QueryError
		if !errors.As(err, &qe) || qe.Kind != aqerr.KindResourceLimit {
			t.Fatalf("tuple-limit error not typed KindResourceLimit: %v", err)
		}
	}
}

// TestParallelFetchFirstShortCircuit streams a FETCH FIRST-shaped query
// (fn:subsequence, the translator's spelling) under parallel execution:
// exactly the first k rows come back, identical to serial, and the
// limiter's short-circuit tears the pool down rather than scanning out
// the source.
func TestParallelFetchFirstShortCircuit(t *testing.T) {
	ctx := context.Background()
	rows := make([]*xdm.Element, 5000)
	for i := range rows {
		row := xdm.NewElement("T")
		row.AddChild(xdm.NewTextElement("ID", strconv.Itoa(i)))
		rows[i] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:ParTest", "T", rows)
	q, err := xqeval.Compile(`import schema namespace p = "ld:ParTest" at "ParTest.xsd";
fn:subsequence(for $r in p:T() return <ROW>{$r/ID}</ROW>, 1, 5)`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	e.SetExec(parallelExec(1))
	serial, err := drainCursor(e.EvalStream(ctx, plan, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	e.SetExec(parallelExec(8))
	par, err := drainCursor(e.EvalStream(ctx, plan, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != 5 {
		t.Fatalf("FETCH FIRST 5 delivered %d rows", len(par))
	}
	if got, want := xdm.MarshalSequence(par), xdm.MarshalSequence(serial); got != want {
		t.Fatalf("parallel FETCH FIRST diverges from serial\ngot:  %s\nwant: %s", got, want)
	}
}

// parallelStreamSetup builds an engine whose compiled query streams rows
// through the translator's RECORDSET shape (so the cursor pulls the
// parallel executor through the real row-stream path), with the FLWOR body
// wrapped by extra XQuery supplied via wrap (e.g. a FETCH FIRST
// fn:subsequence).
func parallelStreamSetup(t testing.TB, n int, wrapOpen, wrapClose string) (*xqeval.Engine, *xqeval.Plan) {
	t.Helper()
	rows := make([]*xdm.Element, n)
	for i := 0; i < n; i++ {
		row := xdm.NewElement("T")
		row.AddChild(xdm.NewTextElement("ID", strconv.Itoa(i)))
		rows[i] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:ParTest", "T", rows)
	q, err := xqeval.Compile(`import schema namespace p = "ld:ParTest" at "ParTest.xsd";
<RECORDSET>{` + wrapOpen + `for $r in p:T() return <ROW>{$r/ID}</ROW>` + wrapClose + `}</RECORDSET>`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetExec(parallelExec(8))
	return e, plan
}

// TestParallelFetchFirstUnderRowLimit pins the limits × FETCH FIRST
// interaction: with MaxRows strictly between the fetch limit and the
// speculation ceiling, workers overrun the shared budget while the merge
// point never reaches it. Serial execution succeeds (the limiter stops the
// pipeline before MaxRows), so parallel execution must too — the
// speculative trip is refuted at the merge point, never surfaced.
func TestParallelFetchFirstUnderRowLimit(t *testing.T) {
	ctx := context.Background()
	rows := make([]*xdm.Element, 5000)
	for i := range rows {
		row := xdm.NewElement("T")
		row.AddChild(xdm.NewTextElement("ID", strconv.Itoa(i)))
		rows[i] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:ParTest", "T", rows)
	// Per-row latency lets the speculating workers charge well past MaxRows
	// before the merge point has flushed the fetch limit's 20 rows.
	e.RegisterContext("ld:ParTest", "SLOW", func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		time.Sleep(20 * time.Microsecond)
		return args[0], nil
	})
	q, err := xqeval.Compile(`import schema namespace p = "ld:ParTest" at "ParTest.xsd";
<RECORDSET>{fn:subsequence(for $r in p:T() return <ROW>{p:SLOW($r/ID)}</ROW>, 1, 20)}</RECORDSET>`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetLimits(xqeval.Limits{MaxRows: 40})

	e.SetExec(parallelExec(1))
	serial, err := drainCursor(e.EvalStream(ctx, plan, nil, nil))
	if err != nil {
		t.Fatalf("serial FETCH FIRST under MaxRows must succeed: %v", err)
	}
	for i := 0; i < 20; i++ { // the race is scheduling-dependent; iterate
		e.SetExec(parallelExec(8))
		par, err := drainCursor(e.EvalStream(ctx, plan, nil, nil))
		if err != nil {
			t.Fatalf("iter %d: parallel FETCH FIRST under MaxRows must succeed like serial: %v", i, err)
		}
		if got, want := xdm.MarshalSequence(par), xdm.MarshalSequence(serial); got != want {
			t.Fatalf("iter %d: parallel diverges from serial\ngot:  %s\nwant: %s", i, got, want)
		}
	}
}

// TestParallelRowLimitPrefixMatchesSerial trips MaxRows for real and
// checks full serial fidelity: the streamed prefix delivered before the
// error and the typed error itself must both match the serial run —
// morsels whose charges straddle the limit are re-run against the
// authoritative serial counters, so the trip lands on the exact serial
// row.
func TestParallelRowLimitPrefixMatchesSerial(t *testing.T) {
	ctx := context.Background()
	e, plan := parallelStreamSetup(t, 200, "", "")
	e.SetLimits(xqeval.Limits{MaxRows: 17})

	e.SetExec(parallelExec(1))
	serialPrefix, serr := drainCursor(e.EvalStream(ctx, plan, nil, nil))
	if serr == nil {
		t.Fatal("serial MaxRows=17 over 200 rows must error")
	}
	for i := 0; i < 20; i++ {
		e.SetExec(parallelExec(8))
		parPrefix, perr := drainCursor(e.EvalStream(ctx, plan, nil, nil))
		if perr == nil {
			t.Fatalf("iter %d: parallel MaxRows=17 must error like serial", i)
		}
		var qe *aqerr.QueryError
		if !errors.As(perr, &qe) || qe.Kind != aqerr.KindResourceLimit {
			t.Fatalf("iter %d: limit error not typed KindResourceLimit: %v", i, perr)
		}
		if got, want := xdm.MarshalSequence(parPrefix), xdm.MarshalSequence(serialPrefix); got != want {
			t.Fatalf("iter %d: pre-error prefix diverges from serial\ngot:  %s\nwant: %s", i, got, want)
		}
	}
}

// TestParallelErrorPrefixMatchesSerial streams a query whose source
// rejects one row deep in the scan: the rows delivered before the error,
// and the error itself, must be byte-identical to the serial run even
// though the failing worker cancels its siblings mid-morsel (the merge
// point re-runs poisoned morsels serially instead of discarding them).
func TestParallelErrorPrefixMatchesSerial(t *testing.T) {
	ctx := context.Background()
	rows := make([]*xdm.Element, 500)
	for i := range rows {
		row := xdm.NewElement("T")
		row.AddChild(xdm.NewTextElement("ID", strconv.Itoa(i)))
		rows[i] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:ParTest", "T", rows)
	e.RegisterContext("ld:ParTest", "CHECKED", func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args) == 1 && len(args[0]) == 1 {
			if el, ok := args[0][0].(*xdm.Element); ok && el.StringValue() == "137" {
				return nil, errors.New("checked source rejected row 137")
			}
		}
		return args[0], nil
	})
	q, err := xqeval.Compile(`import schema namespace p = "ld:ParTest" at "ParTest.xsd";
<RECORDSET>{for $r in p:T() return <ROW>{p:CHECKED($r/ID)}</ROW>}</RECORDSET>`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	e.SetExec(parallelExec(1))
	serialPrefix, serr := drainCursor(e.EvalStream(ctx, plan, nil, nil))
	if serr == nil {
		t.Fatal("serial run must surface the source error")
	}
	for i := 0; i < 10; i++ {
		e.SetExec(parallelExec(8))
		parPrefix, perr := drainCursor(e.EvalStream(ctx, plan, nil, nil))
		if perr == nil || !strings.Contains(perr.Error(), "rejected row 137") {
			t.Fatalf("iter %d: parallel surfaced the wrong error: %v (serial: %v)", i, perr, serr)
		}
		if got, want := xdm.MarshalSequence(parPrefix), xdm.MarshalSequence(serialPrefix); got != want {
			t.Fatalf("iter %d: pre-error prefix diverges from serial\ngot:  %s\nwant: %s", i, got, want)
		}
	}
}

// TestParallelTupleAccountingMatchesSerial checks the merge point refunds
// speculative charges: after a FETCH FIRST short-circuit, the evaluation's
// folded-back tuple counter (surfaced via Cursor.Stats) must equal the
// serial run's exactly, not include the window of morsels workers
// processed past the stop.
func TestParallelTupleAccountingMatchesSerial(t *testing.T) {
	ctx := context.Background()
	e, plan := parallelStreamSetup(t, 5000, "fn:subsequence(", ", 1, 20)")

	e.SetExec(parallelExec(1))
	cur := e.EvalStream(ctx, plan, nil, nil)
	if _, err := drainCursor(cur); err != nil {
		t.Fatal(err)
	}
	_, serialTuples := cur.Stats()

	e.SetExec(parallelExec(8))
	pcur := e.EvalStream(ctx, plan, nil, nil)
	if _, err := drainCursor(pcur); err != nil {
		t.Fatal(err)
	}
	if _, parTuples := pcur.Stats(); parTuples != serialTuples {
		t.Fatalf("parallel tuple accounting diverges after FETCH FIRST: parallel=%d serial=%d (speculative charges not refunded)", parTuples, serialTuples)
	}
}

// TestParallelCancellationNoHang is the deadlock regression for external
// cancellation: when the context dies while some workers sit between
// morsels, they can exit with later morsels never claimed, and a merge
// loop blocking solely on those morsels' done channels would hang forever.
// Cancellation is raced against the scan repeatedly; every evaluation must
// return within the watchdog.
func TestParallelCancellationNoHang(t *testing.T) {
	rows := make([]*xdm.Element, 2000)
	for i := range rows {
		row := xdm.NewElement("T")
		row.AddChild(xdm.NewTextElement("ID", strconv.Itoa(i)))
		rows[i] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:ParTest", "T", rows)
	e.RegisterContext("ld:ParTest", "SLOW", func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Microsecond):
		}
		return args[0], nil
	})
	q, err := xqeval.Compile(`import schema namespace p = "ld:ParTest" at "ParTest.xsd";
for $r in p:T()
return p:SLOW($r/ID)`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetExec(xqeval.ExecConfig{Workers: 8, MorselSize: 4, MinParallelItems: 2})

	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		// Vary the cancellation point across the scan so some iterations
		// catch workers idle between morsels.
		timer := time.AfterFunc(time.Duration(i)*200*time.Microsecond, cancel)
		ret := make(chan error, 1)
		go func() {
			_, err := e.EvalPlanWithTrace(ctx, plan, nil, nil)
			ret <- err
		}()
		select {
		case err := <-ret:
			if err == nil {
				t.Fatalf("iter %d: cancelled evaluation must error", i)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("iter %d: cancelled parallel evaluation hung", i)
		}
		timer.Stop()
		cancel()
	}
}

// TestParallelMidStreamClose closes a parallel streaming cursor with most
// of the scan still pending: Close must cancel the workers, wait for the
// producer, and return with no goroutine left running (the race detector
// and -count=1 goroutine accounting in CI catch leaks).
func TestParallelMidStreamClose(t *testing.T) {
	e, plan := parallelScanSetup(t, 2000)
	cur := e.EvalStream(context.Background(), plan, nil, nil)
	for i := 0; i < 3; i++ {
		if _, err := cur.Next(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := cur.Next(); err == nil {
		t.Fatal("Next after Close must not yield rows")
	}
}

// TestParallelCancellation cancels the evaluation context mid-flight: the
// pool must stop promptly (well before the serial cost of the remaining
// rows) and surface an error.
func TestParallelCancellation(t *testing.T) {
	rows := make([]*xdm.Element, 1000)
	for i := range rows {
		row := xdm.NewElement("T")
		row.AddChild(xdm.NewTextElement("ID", strconv.Itoa(i)))
		rows[i] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:ParTest", "T", rows)
	e.RegisterContext("ld:ParTest", "SLOW", func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
		return args[0], nil
	})
	q, err := xqeval.Compile(`import schema namespace p = "ld:ParTest" at "ParTest.xsd";
for $r in p:T()
return p:SLOW($r/ID)`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetExec(parallelExec(8))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := e.EvalPlanWithTrace(ctx, plan, nil, nil); err == nil {
		t.Fatal("cancelled evaluation must error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v; workers did not stop promptly", elapsed)
	}
}

// TestParallelWorkerErrorSurfaces injects a per-row failure deep in one
// morsel: the evaluation must surface that error (not a sibling's
// cancellation), exactly as the serial path does.
func TestParallelWorkerErrorSurfaces(t *testing.T) {
	rows := make([]*xdm.Element, 500)
	for i := range rows {
		row := xdm.NewElement("T")
		row.AddChild(xdm.NewTextElement("ID", strconv.Itoa(i)))
		rows[i] = row
	}
	e := xqeval.New()
	e.RegisterRows("ld:ParTest", "T", rows)
	e.RegisterContext("ld:ParTest", "CHECKED", func(ctx context.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args) == 1 && len(args[0]) == 1 {
			if el, ok := args[0][0].(*xdm.Element); ok && el.StringValue() == "137" {
				return nil, errors.New("checked source rejected row 137")
			}
		}
		return args[0], nil
	})
	q, err := xqeval.Compile(`import schema namespace p = "ld:ParTest" at "ParTest.xsd";
for $r in p:T()
return p:CHECKED($r/ID)`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.CompileAST(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	e.SetExec(parallelExec(1))
	_, serr := e.EvalPlanWithTrace(context.Background(), plan, nil, nil)
	e.SetExec(parallelExec(8))
	_, perr := e.EvalPlanWithTrace(context.Background(), plan, nil, nil)
	if serr == nil || perr == nil {
		t.Fatalf("both paths must fail: serial=%v parallel=%v", serr, perr)
	}
	if !strings.Contains(perr.Error(), "rejected row 137") {
		t.Fatalf("parallel surfaced the wrong error: %v (serial: %v)", perr, serr)
	}
}

// FuzzParallelDifferential extends the plan fuzzer across the parallelism
// axis: any SQL the translator accepts is evaluated serially and at 8
// workers over the same compiled plan; divergence in values, or in error
// presence, fails. (Parallel execution has no §2.3.4 latitude against its
// own serial run — both execute the identical eager plan.)
func FuzzParallelDifferential(f *testing.F) {
	for _, s := range differentialCorpus() {
		f.Add(s)
	}
	app, _, engine := demo.Setup(demo.Sizes{Customers: 8, PaymentsPerCustomer: 2, Orders: 10, ItemsPerOrder: 2})
	trans := translator.New(catalog.NewCache(app))
	f.Fuzz(func(t *testing.T, sql string) {
		res, err := trans.Translate(sql)
		if err != nil {
			return
		}
		if strings.Contains(res.XQuery(), "fn:current-") {
			return // nondeterministic between the two evaluations
		}
		plan, err := engine.CompileAST(res.Query, externalNames(res.ParamCount))
		if err != nil {
			return
		}
		ext := bindParams(res)
		engine.SetExec(xqeval.ExecConfig{Workers: 1, MorselSize: 4, MinParallelItems: 2})
		serial, serr := engine.EvalPlanWithTrace(context.Background(), plan, ext, nil)
		engine.SetExec(xqeval.ExecConfig{Workers: 8, MorselSize: 4, MinParallelItems: 2})
		par, perr := engine.EvalPlanWithTrace(context.Background(), plan, ext, nil)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("%q: error-presence divergence\nserial:   %v\nparallel: %v", sql, serr, perr)
		}
		if serr != nil {
			return
		}
		if got, want := xdm.MarshalSequence(par), xdm.MarshalSequence(serial); got != want {
			t.Fatalf("%q: result divergence\nparallel: %s\nserial:   %s", sql, got, want)
		}
	})
}
