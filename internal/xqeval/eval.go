package xqeval

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

// evalExpr evaluates any expression to a sequence.
func evalExpr(e xquery.Expr, env *scope) (xdm.Sequence, error) {
	if err := env.step(); err != nil {
		return nil, err
	}
	switch e := e.(type) {
	case *xquery.StringLit:
		return xdm.SequenceOf(xdm.String(e.Value)), nil
	case *xquery.NumberLit:
		return evalNumberLit(e)
	case *xquery.EmptySeq:
		return nil, nil
	case *xquery.Var:
		v, ok := env.lookupVar(e.Name)
		if !ok {
			return nil, dynErr("unbound variable $%s", e.Name)
		}
		return v, nil
	case *xquery.ContextItem:
		if !env.hasCtx {
			return nil, dynErr("context item is undefined")
		}
		return xdm.SequenceOf(env.ctx), nil
	case *xquery.RelPath:
		if !env.hasCtx {
			return nil, dynErr("relative path with undefined context item")
		}
		return evalSteps(xdm.SequenceOf(env.ctx), e.Steps, env)
	case *xquery.FuncCall:
		return evalFuncCall(e, env)
	case *xquery.Path:
		base, err := evalExpr(e.Base, env)
		if err != nil {
			return nil, err
		}
		return evalSteps(base, e.Steps, env)
	case *xquery.Filter:
		base, err := evalExpr(e.Base, env)
		if err != nil {
			return nil, err
		}
		return applyPredicates(base, e.Predicates, env)
	case *xquery.Binary:
		return evalBinary(e, env)
	case *xquery.Unary:
		return evalUnary(e, env)
	case *xquery.If:
		cond, err := evalExpr(e.Cond, env)
		if err != nil {
			return nil, err
		}
		b, err := xdm.EffectiveBool(cond)
		if err != nil {
			return nil, dynErr("%v", err)
		}
		if b {
			return evalExpr(e.Then, env)
		}
		return evalExpr(e.Else, env)
	case *xquery.Cast:
		return evalCast(e, env)
	case *xquery.Seq:
		var out xdm.Sequence
		for _, it := range e.Items {
			v, err := evalExpr(it, env)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	case *xquery.Quantified:
		return evalQuantified(e, env)
	case *xquery.FLWOR:
		return evalFLWOR(e, env)
	case *xquery.ElementCtor:
		el, err := constructElement(e, env)
		if err != nil {
			return nil, err
		}
		return xdm.SequenceOf(el), nil
	default:
		return nil, dynErr("unsupported expression %T", e)
	}
}

func evalNumberLit(e *xquery.NumberLit) (xdm.Sequence, error) {
	text := e.Text
	var a xdm.Atomic
	var err error
	switch {
	case strings.ContainsAny(text, "eE"):
		a, err = xdm.ParseAtomic(text, xdm.TypeDouble)
	case strings.Contains(text, "."):
		a, err = xdm.ParseAtomic(text, xdm.TypeDecimal)
	default:
		a, err = xdm.ParseAtomic(text, xdm.TypeInteger)
	}
	if err != nil {
		return nil, dynErr("bad numeric literal %q: %v", text, err)
	}
	return xdm.SequenceOf(a), nil
}

// evalSteps applies child-axis steps with predicates to every node in base,
// in document order (per-item order here).
func evalSteps(base xdm.Sequence, steps []xquery.PathStep, env *scope) (xdm.Sequence, error) {
	cur := base
	for _, step := range steps {
		var next xdm.Sequence
		for _, it := range cur {
			switch n := it.(type) {
			case *xdm.Element:
				for _, c := range n.ChildElements(step.Name) {
					next = append(next, c)
				}
			case *xdm.Document:
				if root := n.Root(); root != nil && (step.Name == "*" || root.Name.Local == step.Name) {
					next = append(next, root)
				}
			default:
				return nil, dynErr("path step %s applied to %s item", step.Name, it.Kind())
			}
		}
		var err error
		next, err = applyPredicates(next, step.Predicates, env)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// applyPredicates filters a sequence through each predicate in turn. A
// predicate evaluating to a single number selects by position (1-based);
// anything else filters by effective boolean value with the candidate item
// as context.
func applyPredicates(seq xdm.Sequence, preds []xquery.Expr, env *scope) (xdm.Sequence, error) {
	for _, pred := range preds {
		var kept xdm.Sequence
		for i, it := range seq {
			v, err := evalExpr(pred, env.withContext(it))
			if err != nil {
				return nil, err
			}
			if len(v) == 1 {
				if a, ok := v[0].(xdm.Atomic); ok && a.Type().Numeric() {
					pos, err := xdm.Cast(a, xdm.TypeInteger)
					if err == nil {
						if int(pos.(xdm.Integer)) == i+1 {
							kept = append(kept, it)
						}
						continue
					}
				}
			}
			b, err := xdm.EffectiveBool(v)
			if err != nil {
				return nil, dynErr("predicate: %v", err)
			}
			if b {
				kept = append(kept, it)
			}
		}
		seq = kept
	}
	return seq, nil
}

var valueCompareOps = map[string]xdm.CompareOp{
	"eq": xdm.OpEq, "ne": xdm.OpNe, "lt": xdm.OpLt,
	"le": xdm.OpLe, "gt": xdm.OpGt, "ge": xdm.OpGe,
}

var generalCompareOps = map[string]xdm.CompareOp{
	"=": xdm.OpEq, "!=": xdm.OpNe, "<": xdm.OpLt,
	"<=": xdm.OpLe, ">": xdm.OpGt, ">=": xdm.OpGe,
}

var arithOps = map[string]xdm.ArithOp{
	"+": xdm.OpAdd, "-": xdm.OpSub, "*": xdm.OpMul,
	"div": xdm.OpDiv, "mod": xdm.OpMod,
}

func evalBinary(e *xquery.Binary, env *scope) (xdm.Sequence, error) {
	switch e.Op {
	case "and":
		l, err := evalEBV(e.Left, env)
		if err != nil {
			return nil, err
		}
		if !l {
			return xdm.SequenceOf(xdm.Boolean(false)), nil
		}
		r, err := evalEBV(e.Right, env)
		if err != nil {
			return nil, err
		}
		return xdm.SequenceOf(xdm.Boolean(r)), nil
	case "or":
		l, err := evalEBV(e.Left, env)
		if err != nil {
			return nil, err
		}
		if l {
			return xdm.SequenceOf(xdm.Boolean(true)), nil
		}
		r, err := evalEBV(e.Right, env)
		if err != nil {
			return nil, err
		}
		return xdm.SequenceOf(xdm.Boolean(r)), nil
	}

	left, err := evalExpr(e.Left, env)
	if err != nil {
		return nil, err
	}
	right, err := evalExpr(e.Right, env)
	if err != nil {
		return nil, err
	}

	if op, ok := generalCompareOps[e.Op]; ok {
		return evalGeneralCompare(left, right, op)
	}
	if op, ok := valueCompareOps[e.Op]; ok {
		return evalValueCompare(left, right, op)
	}
	if op, ok := arithOps[e.Op]; ok {
		// Arithmetic propagates the empty sequence (SQL NULL).
		if left.Empty() || right.Empty() {
			return nil, nil
		}
		la, err := singletonAtomic(left, "arithmetic operand")
		if err != nil {
			return nil, err
		}
		ra, err := singletonAtomic(right, "arithmetic operand")
		if err != nil {
			return nil, err
		}
		res, err := xdm.Arith(la, ra, op)
		if err != nil {
			return nil, dynErr("%v", err)
		}
		return xdm.SequenceOf(res), nil
	}
	return nil, dynErr("unsupported operator %q", e.Op)
}

// evalGeneralCompare implements XQuery general comparison: existential
// semantics over the atomized operands; comparisons against the empty
// sequence are false (how SQL NULL predicates become "unknown" → filtered).
func evalGeneralCompare(left, right xdm.Sequence, op xdm.CompareOp) (xdm.Sequence, error) {
	la := xdm.Atomize(left)
	ra := xdm.Atomize(right)
	for _, l := range la {
		for _, r := range ra {
			ok, err := xdm.CompareAtomic(l.(xdm.Atomic), r.(xdm.Atomic), op)
			if err != nil {
				return nil, dynErr("%v", err)
			}
			if ok {
				return xdm.SequenceOf(xdm.Boolean(true)), nil
			}
		}
	}
	return xdm.SequenceOf(xdm.Boolean(false)), nil
}

// evalValueCompare implements value comparison: empty operands yield the
// empty sequence; singletons compare after atomization.
func evalValueCompare(left, right xdm.Sequence, op xdm.CompareOp) (xdm.Sequence, error) {
	if left.Empty() || right.Empty() {
		return nil, nil
	}
	la, err := singletonAtomic(left, "value comparison operand")
	if err != nil {
		return nil, err
	}
	ra, err := singletonAtomic(right, "value comparison operand")
	if err != nil {
		return nil, err
	}
	ok, err := xdm.CompareAtomic(la, ra, op)
	if err != nil {
		return nil, dynErr("%v", err)
	}
	return xdm.SequenceOf(xdm.Boolean(ok)), nil
}

func singletonAtomic(s xdm.Sequence, what string) (xdm.Atomic, error) {
	atoms := xdm.Atomize(s)
	it, err := atoms.Singleton()
	if err != nil {
		return nil, dynErr("%s: %v", what, err)
	}
	a, ok := it.(xdm.Atomic)
	if !ok {
		return nil, dynErr("%s is not atomic", what)
	}
	return a, nil
}

func evalUnary(e *xquery.Unary, env *scope) (xdm.Sequence, error) {
	v, err := evalExpr(e.Operand, env)
	if err != nil {
		return nil, err
	}
	if v.Empty() {
		return nil, nil
	}
	a, err := singletonAtomic(v, "unary operand")
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "-":
		res, err := xdm.Negate(a)
		if err != nil {
			return nil, dynErr("%v", err)
		}
		return xdm.SequenceOf(res), nil
	case "+":
		return xdm.SequenceOf(a), nil
	default:
		return nil, dynErr("unsupported unary operator %q", e.Op)
	}
}

var castTargets = map[string]xdm.AtomicType{
	"xs:string":        xdm.TypeString,
	"xs:boolean":       xdm.TypeBoolean,
	"xs:integer":       xdm.TypeInteger,
	"xs:int":           xdm.TypeInteger,
	"xs:long":          xdm.TypeInteger,
	"xs:short":         xdm.TypeInteger,
	"xs:decimal":       xdm.TypeDecimal,
	"xs:double":        xdm.TypeDouble,
	"xs:float":         xdm.TypeDouble,
	"xs:date":          xdm.TypeDate,
	"xs:time":          xdm.TypeTime,
	"xs:dateTime":      xdm.TypeDateTime,
	"xs:untypedAtomic": xdm.TypeUntyped,
}

func evalCast(e *xquery.Cast, env *scope) (xdm.Sequence, error) {
	target, ok := castTargets[e.Type]
	if !ok {
		return nil, dynErr("unknown cast target %s", e.Type)
	}
	v, err := evalExpr(e.Operand, env)
	if err != nil {
		return nil, err
	}
	if v.Empty() {
		return nil, nil // cast of () is () — NULL propagation
	}
	a, err := singletonAtomic(v, "cast operand")
	if err != nil {
		return nil, err
	}
	res, err := xdm.Cast(a, target)
	if err != nil {
		return nil, dynErr("%v", err)
	}
	return xdm.SequenceOf(res), nil
}

func evalQuantified(e *xquery.Quantified, env *scope) (xdm.Sequence, error) {
	in, err := evalExpr(e.In, env)
	if err != nil {
		return nil, err
	}
	for _, it := range in {
		inner := env.bind(e.Var, xdm.SequenceOf(it))
		// Quantified predicates over row elements also see the item as
		// context, so relative paths work inside `satisfies`.
		inner = inner.withContext(it)
		ok, err := evalEBV(e.Satisfies, inner)
		if err != nil {
			return nil, err
		}
		if e.Every && !ok {
			return xdm.SequenceOf(xdm.Boolean(false)), nil
		}
		if !e.Every && ok {
			return xdm.SequenceOf(xdm.Boolean(true)), nil
		}
	}
	return xdm.SequenceOf(xdm.Boolean(e.Every)), nil
}

func evalEBV(e xquery.Expr, env *scope) (bool, error) {
	v, err := evalExpr(e, env)
	if err != nil {
		return false, err
	}
	b, err := xdm.EffectiveBool(v)
	if err != nil {
		return false, dynErr("%v", err)
	}
	return b, nil
}

// evalFLWOR runs the clause pipeline over a tuple stream of environments.
// When the active plan covers this FLWOR, the planned streaming executor
// takes over; otherwise the naive materializing pipeline below runs.
func evalFLWOR(f *xquery.FLWOR, env *scope) (xdm.Sequence, error) {
	if env.plan != nil {
		if fp, ok := env.plan.flwors[f]; ok {
			return execPlannedFLWOR(fp, env)
		}
	}
	tuples := []*scope{env}
	for _, clause := range f.Clauses {
		var err error
		tuples, err = applyClause(clause, tuples)
		if err != nil {
			return nil, err
		}
	}
	var out xdm.Sequence
	for _, t := range tuples {
		if err := t.checkCancel(); err != nil {
			return nil, err
		}
		v, err := evalExpr(f.Return, t)
		if err != nil {
			return nil, err
		}
		if err := t.countRows(len(v)); err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func applyClause(clause xquery.Clause, tuples []*scope) ([]*scope, error) {
	switch c := clause.(type) {
	case *xquery.For:
		var next []*scope
		for _, t := range tuples {
			if err := t.checkCancel(); err != nil {
				return nil, err
			}
			seq, err := evalExpr(c.In, t)
			if err != nil {
				return nil, err
			}
			for i, it := range seq {
				if err := t.countTuple(); err != nil {
					return nil, err
				}
				nt := t.bind(c.Var, xdm.SequenceOf(it))
				if c.At != "" {
					nt = nt.bind(c.At, xdm.SequenceOf(xdm.Integer(i+1)))
				}
				next = append(next, nt)
			}
		}
		return next, nil

	case *xquery.Let:
		next := make([]*scope, len(tuples))
		for i, t := range tuples {
			v, err := evalExpr(c.Expr, t)
			if err != nil {
				return nil, err
			}
			next[i] = t.bind(c.Var, v)
		}
		return next, nil

	case *xquery.Where:
		var next []*scope
		for _, t := range tuples {
			ok, err := evalEBV(c.Cond, t)
			if err != nil {
				return nil, err
			}
			if ok {
				next = append(next, t)
			}
		}
		return next, nil

	case *xquery.GroupBy:
		return applyGroupBy(c, tuples)

	case *xquery.OrderByClause:
		return applyOrderBy(c, tuples)

	default:
		return nil, dynErr("unsupported FLWOR clause %T", clause)
	}
}

// applyGroupBy implements the BEA group-by extension: tuples are
// partitioned by their key values; each output tuple binds the key
// variables to the group's key values and the partition variable to the
// concatenation of the grouped variable's values across the group's
// members. Groups appear in first-encounter order.
func applyGroupBy(c *xquery.GroupBy, tuples []*scope) ([]*scope, error) {
	type group struct {
		first     *scope
		keyValues []xdm.Sequence
		partition xdm.Sequence
	}
	var order []string
	groups := map[string]*group{}
	for _, t := range tuples {
		if err := t.checkCancel(); err != nil {
			return nil, err
		}
		keyValues := make([]xdm.Sequence, len(c.Keys))
		var keyBuilder strings.Builder
		for i, k := range c.Keys {
			v, err := evalExpr(k.Expr, t)
			if err != nil {
				return nil, err
			}
			keyValues[i] = xdm.Atomize(v)
			// Key for map lookup: type-insensitive lexical form with
			// NULL (empty) distinguished. Each item is length-prefixed so
			// the keys ("AB") and ("A","B") cannot collide.
			if keyValues[i].Empty() {
				keyBuilder.WriteString("\x00N")
			} else {
				keyBuilder.WriteString("\x00V")
				for _, item := range keyValues[i] {
					lex := item.(xdm.Atomic).Lexical()
					keyBuilder.WriteString(strconv.Itoa(len(lex)))
					keyBuilder.WriteByte('\x00')
					keyBuilder.WriteString(lex)
				}
			}
		}
		key := keyBuilder.String()
		g, ok := groups[key]
		if !ok {
			g = &group{first: t, keyValues: keyValues}
			groups[key] = g
			order = append(order, key)
		}
		member, ok := t.lookupVar(c.InVar)
		if !ok {
			return nil, dynErr("group by: unbound variable $%s", c.InVar)
		}
		g.partition = append(g.partition, member...)
	}
	next := make([]*scope, 0, len(order))
	for _, key := range order {
		g := groups[key]
		nt := g.first
		for i, k := range c.Keys {
			nt = nt.bind(k.Var, g.keyValues[i])
		}
		nt = nt.bind(c.PartitionVar, g.partition)
		next = append(next, nt)
	}
	return next, nil
}

// applyOrderBy stable-sorts tuples by the order specs. The empty sequence
// sorts least unless EmptyGreatest is set.
func applyOrderBy(c *xquery.OrderByClause, tuples []*scope) ([]*scope, error) {
	keys := make([][]xdm.Sequence, len(tuples))
	for i, t := range tuples {
		if err := t.checkCancel(); err != nil {
			return nil, err
		}
		keys[i] = make([]xdm.Sequence, len(c.Specs))
		for j, s := range c.Specs {
			v, err := evalExpr(s.Expr, t)
			if err != nil {
				return nil, err
			}
			keys[i][j] = xdm.Atomize(v)
		}
	}
	idx := make([]int, len(tuples))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		for j, s := range c.Specs {
			cmp, err := compareOrderKeys(keys[idx[a]][j], keys[idx[b]][j], s.EmptyGreatest)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if cmp != 0 {
				if s.Descending {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	next := make([]*scope, len(tuples))
	for i, j := range idx {
		next[i] = tuples[j]
	}
	return next, nil
}

func compareOrderKeys(a, b xdm.Sequence, emptyGreatest bool) (int, error) {
	ae, be := a.Empty(), b.Empty()
	switch {
	case ae && be:
		return 0, nil
	case ae:
		if emptyGreatest {
			return 1, nil
		}
		return -1, nil
	case be:
		if emptyGreatest {
			return -1, nil
		}
		return 1, nil
	}
	av, aok := a[0].(xdm.Atomic)
	bv, bok := b[0].(xdm.Atomic)
	if !aok || !bok {
		return 0, dynErr("order by key is not atomic")
	}
	cmp, err := xdm.OrderAtomic(av, bv)
	if err != nil {
		// Mixed-type keys order by lexical form rather than failing the
		// whole query, matching lenient engine behavior.
		return strings.Compare(av.Lexical(), bv.Lexical()), nil
	}
	return cmp, nil
}

// constructElement builds an element from a constructor: nested
// constructors become child elements, text content becomes text nodes, and
// enclosed expressions contribute their result sequences (nodes copied,
// atomics space-joined into text, per XQuery content construction).
func constructElement(e *xquery.ElementCtor, env *scope) (*xdm.Element, error) {
	el := &xdm.Element{Name: xdm.QName{Local: e.Name}}
	for _, c := range e.Content {
		switch c := c.(type) {
		case *xquery.TextContent:
			el.AddText(c.Text)
		case *xquery.ElementCtor:
			child, err := constructElement(c, env)
			if err != nil {
				return nil, err
			}
			el.AddChild(child)
		case *xquery.Enclosed:
			v, err := evalExpr(c.Expr, env)
			if err != nil {
				return nil, err
			}
			appendContent(el, v)
		}
	}
	return el, nil
}

func appendContent(el *xdm.Element, seq xdm.Sequence) {
	prevAtomic := false
	for _, it := range seq {
		switch v := it.(type) {
		case *xdm.Element:
			el.AddChild(v)
			prevAtomic = false
		case *xdm.Text:
			el.AddChild(&xdm.Text{Value: v.Value})
			prevAtomic = false
		case *xdm.Document:
			for _, c := range v.Children {
				el.AddChild(c)
			}
			prevAtomic = false
		case xdm.Atomic:
			text := v.Lexical()
			if prevAtomic {
				text = " " + text
			}
			el.AddText(text)
			prevAtomic = true
		}
	}
}
