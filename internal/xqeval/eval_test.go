package xqeval

import (
	"strings"
	"testing"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

// testEngine builds an engine with a small CUSTOMERS/PAYMENTS data set
// matching the paper's examples.
func testEngine() *Engine {
	e := New()
	e.RegisterRows("ld:TestDataServices/CUSTOMERS", "CUSTOMERS", []*xdm.Element{
		customerRow(55, "Joe"),
		customerRow(23, "Sue"),
		customerRow(40, "Ann"),
	})
	// Payment rows: Joe has two payments, Sue one, Ann none.
	e.RegisterRows("ld:TestDataServices/PAYMENTS", "PAYMENTS", []*xdm.Element{
		paymentRow(1, 55, "100.50"),
		paymentRow(2, 55, "75.00"),
		paymentRow(3, 23, "12.25"),
	})
	return e
}

func customerRow(id int, name string) *xdm.Element {
	row := xdm.NewElement("CUSTOMERS")
	row.AddChild(xdm.NewTextElement("CUSTOMERID", itoa(id)))
	row.AddChild(xdm.NewTextElement("CUSTOMERNAME", name))
	return row
}

func paymentRow(pid, cust int, amount string) *xdm.Element {
	row := xdm.NewElement("PAYMENTS")
	row.AddChild(xdm.NewTextElement("PAYMENTID", itoa(pid)))
	row.AddChild(xdm.NewTextElement("CUSTID", itoa(cust)))
	row.AddChild(xdm.NewTextElement("PAYMENT", amount))
	return row
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func customersQuery(body xquery.Expr) *xquery.Query {
	return &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{
			{Prefix: "ns0", Namespace: "ld:TestDataServices/CUSTOMERS", Location: "ld:TestDataServices/schemas/CUSTOMERS.xsd"},
			{Prefix: "ns1", Namespace: "ld:TestDataServices/PAYMENTS", Location: "ld:TestDataServices/schemas/PAYMENTS.xsd"},
		}},
		Body: body,
	}
}

func evalBody(t *testing.T, body xquery.Expr) xdm.Sequence {
	t.Helper()
	out, err := testEngine().Eval(customersQuery(body))
	if err != nil {
		t.Fatalf("eval: %v\nquery:\n%s", err, xquery.String(body))
	}
	return out
}

func TestEvalLiteralsAndVars(t *testing.T) {
	out := evalBody(t, xquery.Str("hello"))
	if len(out) != 1 || out[0].(xdm.String) != "hello" {
		t.Fatalf("out = %v", out)
	}
	out = evalBody(t, xquery.Num("42"))
	if out[0].(xdm.Integer) != 42 {
		t.Fatalf("out = %v", out)
	}
	out = evalBody(t, xquery.Num("2.5"))
	if out[0].(xdm.Decimal) != 2.5 {
		t.Fatalf("out = %v", out)
	}
	out = evalBody(t, xquery.Num("1e2"))
	if out[0].(xdm.Double) != 100 {
		t.Fatalf("out = %v", out)
	}
	if _, err := testEngine().Eval(customersQuery(xquery.VarRef("nope"))); err == nil {
		t.Fatal("unbound variable should error")
	}
}

func TestEvalDataServiceFunction(t *testing.T) {
	out := evalBody(t, xquery.Call("ns0:CUSTOMERS"))
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	if out[0].(*xdm.Element).FirstChildElement("CUSTOMERNAME").StringValue() != "Joe" {
		t.Fatal("first row should be Joe")
	}
}

func TestEvalUnknownFunction(t *testing.T) {
	_, err := testEngine().Eval(customersQuery(xquery.Call("ns0:NOPE")))
	if err == nil || !strings.Contains(err.Error(), "no data service function") {
		t.Fatalf("err = %v", err)
	}
	_, err = testEngine().Eval(customersQuery(xquery.Call("fn:no-such")))
	if err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("err = %v", err)
	}
}

// TestEvalExample3Shape runs the paper's Example 3: for over CUSTOMERS with
// a where on CUSTOMERNAME eq "Sue".
func TestEvalExample3Shape(t *testing.T) {
	f := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: "c", In: xquery.Call("ns0:CUSTOMERS")},
			&xquery.Where{Cond: &xquery.Binary{Op: "eq",
				Left:  xquery.ChildPath("c", "CUSTOMERNAME"),
				Right: xquery.Str("Sue")}},
		},
		Return: &xquery.ElementCtor{Name: "RECORD", Content: []xquery.ElemContent{
			xquery.TextElem("CUSTOMERS.CUSTOMERID", xquery.Call("fn:data", xquery.ChildPath("c", "CUSTOMERID"))),
			xquery.TextElem("CUSTOMERS.CUSTOMERNAME", xquery.Call("fn:data", xquery.ChildPath("c", "CUSTOMERNAME"))),
		}},
	}
	out := evalBody(t, f)
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	rec := out[0].(*xdm.Element)
	if rec.FirstChildElement("CUSTOMERS.CUSTOMERID").StringValue() != "23" {
		t.Fatalf("record = %s", xdm.Marshal(rec))
	}
}

func TestEvalLetBindsFullSequence(t *testing.T) {
	f := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.Let{Var: "all", Expr: xquery.Call("ns0:CUSTOMERS")},
		},
		Return: xquery.Call("fn:count", xquery.VarRef("all")),
	}
	out := evalBody(t, f)
	if out[0].(xdm.Integer) != 3 {
		t.Fatalf("count = %v", out)
	}
}

func TestEvalNestedForProducesCrossProduct(t *testing.T) {
	f := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: "c", In: xquery.Call("ns0:CUSTOMERS")},
			&xquery.For{Var: "p", In: xquery.Call("ns1:PAYMENTS")},
		},
		Return: xquery.Num("1"),
	}
	out := evalBody(t, f)
	if len(out) != 9 {
		t.Fatalf("cross product size = %d", len(out))
	}
}

func TestEvalJoinViaWhere(t *testing.T) {
	f := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: "c", In: xquery.Call("ns0:CUSTOMERS")},
			&xquery.For{Var: "p", In: xquery.Call("ns1:PAYMENTS")},
			&xquery.Where{Cond: &xquery.Binary{Op: "=",
				Left:  xquery.ChildPath("c", "CUSTOMERID"),
				Right: xquery.ChildPath("p", "CUSTID")}},
		},
		Return: xquery.Call("fn:data", xquery.ChildPath("p", "PAYMENT")),
	}
	out := evalBody(t, f)
	if len(out) != 3 {
		t.Fatalf("join rows = %d: %v", len(out), out)
	}
}

// TestEvalOuterJoinFilterShape exercises the paper's Example 10 pattern:
// let $t := ns1:PAYMENTS()[($c/CUSTOMERID = CUSTID)] with if-empty handling.
func TestEvalOuterJoinFilterShape(t *testing.T) {
	f := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: "c", In: xquery.Call("ns0:CUSTOMERS")},
			&xquery.Let{Var: "t", Expr: &xquery.Filter{
				Base: xquery.Call("ns1:PAYMENTS"),
				Predicates: []xquery.Expr{&xquery.Binary{Op: "=",
					Left:  xquery.ChildPath("c", "CUSTOMERID"),
					Right: &xquery.RelPath{Steps: []xquery.PathStep{{Name: "CUSTID"}}},
				}},
			}},
		},
		Return: &xquery.If{
			Cond: xquery.Call("fn:empty", xquery.VarRef("t")),
			Then: &xquery.ElementCtor{Name: "RECORD", Content: []xquery.ElemContent{
				xquery.TextElem("NAME", xquery.Call("fn:data", xquery.ChildPath("c", "CUSTOMERNAME"))),
			}},
			Else: &xquery.FLWOR{
				Clauses: []xquery.Clause{&xquery.For{Var: "p", In: xquery.VarRef("t")}},
				Return: &xquery.ElementCtor{Name: "RECORD", Content: []xquery.ElemContent{
					xquery.TextElem("NAME", xquery.Call("fn:data", xquery.ChildPath("c", "CUSTOMERNAME"))),
					xquery.TextElem("PAYMENT", xquery.Call("fn:data", xquery.ChildPath("p", "PAYMENT"))),
				}},
			},
		},
	}
	out := evalBody(t, f)
	// Joe×2 + Sue×1 + Ann (no payments, preserved) = 4 records.
	if len(out) != 4 {
		t.Fatalf("left outer join rows = %d", len(out))
	}
	var annRec *xdm.Element
	for _, it := range out {
		rec := it.(*xdm.Element)
		if rec.FirstChildElement("NAME").StringValue() == "Ann" {
			annRec = rec
		}
	}
	if annRec == nil {
		t.Fatal("Ann must be preserved by the outer join")
	}
	if annRec.FirstChildElement("PAYMENT") != nil {
		t.Fatal("Ann must have no PAYMENT element (NULL)")
	}
}

func TestEvalGroupByPartitions(t *testing.T) {
	// group payments by CUSTID; count and sum per group.
	f := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: "p", In: xquery.Call("ns1:PAYMENTS")},
			&xquery.GroupBy{InVar: "p", PartitionVar: "part", Keys: []xquery.GroupKey{
				{Expr: xquery.ChildPath("p", "CUSTID"), Var: "cust"},
			}},
		},
		Return: &xquery.ElementCtor{Name: "G", Content: []xquery.ElemContent{
			xquery.TextElem("CUST", xquery.VarRef("cust")),
			xquery.TextElem("N", xquery.Call("fn:count", xquery.VarRef("part"))),
			xquery.TextElem("SUM", xquery.Call("fn:sum", xquery.Call("fn:data", xquery.ChildPath("part", "PAYMENT")))),
		}},
	}
	out := evalBody(t, f)
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	g0 := out[0].(*xdm.Element) // first-encounter order: CUSTID 55
	if g0.FirstChildElement("CUST").StringValue() != "55" ||
		g0.FirstChildElement("N").StringValue() != "2" ||
		g0.FirstChildElement("SUM").StringValue() != "175.5" {
		t.Fatalf("group 0 = %s", xdm.Marshal(g0))
	}
	g1 := out[1].(*xdm.Element)
	if g1.FirstChildElement("CUST").StringValue() != "23" || g1.FirstChildElement("N").StringValue() != "1" {
		t.Fatalf("group 1 = %s", xdm.Marshal(g1))
	}
}

func TestEvalGroupByNullKeysFormOneGroup(t *testing.T) {
	e := New()
	r1 := xdm.NewElement("T") // no K child: NULL key
	r2 := xdm.NewElement("T")
	r3 := xdm.NewElement("T")
	r3.AddChild(xdm.NewTextElement("K", "x"))
	e.RegisterRows("urn:t", "T", []*xdm.Element{r1, r2, r3})
	q := &xquery.Query{
		Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{{Prefix: "t", Namespace: "urn:t", Location: "t.xsd"}}},
		Body: &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: "r", In: xquery.Call("t:T")},
				&xquery.GroupBy{InVar: "r", PartitionVar: "p", Keys: []xquery.GroupKey{
					{Expr: xquery.ChildPath("r", "K"), Var: "k"},
				}},
			},
			Return: xquery.Call("fn:count", xquery.VarRef("p")),
		},
	}
	out, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %d (NULL keys must group together)", len(out))
	}
	if out[0].(xdm.Integer) != 2 {
		t.Fatalf("NULL group size = %v", out[0])
	}
}

func TestEvalOrderBy(t *testing.T) {
	f := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: "c", In: xquery.Call("ns0:CUSTOMERS")},
			&xquery.OrderByClause{Specs: []xquery.OrderSpec{
				{Expr: xquery.ChildPath("c", "CUSTOMERNAME")},
			}},
		},
		Return: xquery.Call("fn:data", xquery.ChildPath("c", "CUSTOMERNAME")),
	}
	out := evalBody(t, f)
	got := []string{}
	for _, it := range out {
		got = append(got, string(it.(xdm.Untyped)))
	}
	if strings.Join(got, ",") != "Ann,Joe,Sue" {
		t.Fatalf("order = %v", got)
	}
}

func TestEvalOrderByDescendingAndNumeric(t *testing.T) {
	f := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: "c", In: xquery.Call("ns0:CUSTOMERS")},
			&xquery.OrderByClause{Specs: []xquery.OrderSpec{
				{Expr: &xquery.Cast{Type: "xs:integer", Operand: xquery.Call("fn:data", xquery.ChildPath("c", "CUSTOMERID"))}, Descending: true},
			}},
		},
		Return: xquery.Call("fn:data", xquery.ChildPath("c", "CUSTOMERID")),
	}
	out := evalBody(t, f)
	got := []string{}
	for _, it := range out {
		got = append(got, string(it.(xdm.Untyped)))
	}
	if strings.Join(got, ",") != "55,40,23" {
		t.Fatalf("order = %v", got)
	}
}

func TestEvalOrderByEmptyLeastAndGreatest(t *testing.T) {
	e := New()
	mk := func(v string) *xdm.Element {
		r := xdm.NewElement("T")
		if v != "" {
			r.AddChild(xdm.NewTextElement("V", v))
		}
		return r
	}
	e.RegisterRows("urn:t", "T", []*xdm.Element{mk("b"), mk(""), mk("a")})
	run := func(emptyGreatest bool) []string {
		q := &xquery.Query{
			Prolog: xquery.Prolog{SchemaImports: []xquery.SchemaImport{{Prefix: "t", Namespace: "urn:t", Location: "x"}}},
			Body: &xquery.FLWOR{
				Clauses: []xquery.Clause{
					&xquery.For{Var: "r", In: xquery.Call("t:T")},
					&xquery.OrderByClause{Specs: []xquery.OrderSpec{
						{Expr: xquery.ChildPath("r", "V"), EmptyGreatest: emptyGreatest},
					}},
				},
				Return: xquery.Call("fn:string-join", &xquery.Seq{Items: []xquery.Expr{
					xquery.Call("fn:string", xquery.Call("fn-bea:if-empty", xquery.Call("fn:data", xquery.ChildPath("r", "V")), xquery.Str("NULL"))),
				}}, xquery.Str("")),
			},
		}
		out, err := e.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, it := range out {
			got = append(got, string(it.(xdm.String)))
		}
		return got
	}
	if got := run(false); strings.Join(got, ",") != "NULL,a,b" {
		t.Fatalf("empty least order = %v", got)
	}
	if got := run(true); strings.Join(got, ",") != "a,b,NULL" {
		t.Fatalf("empty greatest order = %v", got)
	}
}

func TestEvalGeneralVsValueComparison(t *testing.T) {
	// General = over sequences is existential.
	seq := &xquery.Seq{Items: []xquery.Expr{xquery.Num("1"), xquery.Num("2"), xquery.Num("3")}}
	out := evalBody(t, &xquery.Binary{Op: "=", Left: seq, Right: xquery.Num("2")})
	if out[0].(xdm.Boolean) != true {
		t.Fatal("existential = failed")
	}
	// Value comparison over empty yields empty.
	out = evalBody(t, &xquery.Binary{Op: "eq", Left: &xquery.EmptySeq{}, Right: xquery.Num("2")})
	if !out.Empty() {
		t.Fatalf("eq with empty operand = %v", out)
	}
	// General comparison over empty yields false.
	out = evalBody(t, &xquery.Binary{Op: "=", Left: &xquery.EmptySeq{}, Right: xquery.Num("2")})
	if out[0].(xdm.Boolean) != false {
		t.Fatal("general = with empty should be false")
	}
}

func TestEvalArithmeticNullPropagation(t *testing.T) {
	out := evalBody(t, &xquery.Binary{Op: "+", Left: &xquery.EmptySeq{}, Right: xquery.Num("2")})
	if !out.Empty() {
		t.Fatalf("() + 2 = %v, want ()", out)
	}
	out = evalBody(t, &xquery.Binary{Op: "*", Left: xquery.Num("6"), Right: xquery.Num("7")})
	if out[0].(xdm.Integer) != 42 {
		t.Fatalf("6*7 = %v", out)
	}
	out = evalBody(t, &xquery.Binary{Op: "div", Left: xquery.Num("7"), Right: xquery.Num("2")})
	if out[0].(xdm.Decimal) != 3.5 {
		t.Fatalf("7 div 2 = %v", out)
	}
	out = evalBody(t, &xquery.Binary{Op: "mod", Left: xquery.Num("7"), Right: xquery.Num("3")})
	if out[0].(xdm.Integer) != 1 {
		t.Fatalf("7 mod 3 = %v", out)
	}
}

func TestEvalLogicShortCircuit(t *testing.T) {
	// false and <error> should not evaluate the right side.
	out := evalBody(t, &xquery.Binary{Op: "and",
		Left:  xquery.Call("fn:false"),
		Right: xquery.Call("fn:no-such-function")})
	if out[0].(xdm.Boolean) != false {
		t.Fatalf("out = %v", out)
	}
	out = evalBody(t, &xquery.Binary{Op: "or",
		Left:  xquery.Call("fn:true"),
		Right: xquery.Call("fn:no-such-function")})
	if out[0].(xdm.Boolean) != true {
		t.Fatalf("out = %v", out)
	}
}

func TestEvalIfAndQuantified(t *testing.T) {
	out := evalBody(t, &xquery.If{
		Cond: xquery.Call("fn:true"),
		Then: xquery.Str("yes"),
		Else: xquery.Str("no"),
	})
	if string(out[0].(xdm.String)) != "yes" {
		t.Fatalf("out = %v", out)
	}
	// some customer has name Sue
	out = evalBody(t, &xquery.Quantified{
		Var: "c", In: xquery.Call("ns0:CUSTOMERS"),
		Satisfies: &xquery.Binary{Op: "=",
			Left:  xquery.ChildPath("c", "CUSTOMERNAME"),
			Right: xquery.Str("Sue")},
	})
	if out[0].(xdm.Boolean) != true {
		t.Fatal("some failed")
	}
	// every customer has id > 10
	out = evalBody(t, &xquery.Quantified{
		Every: true,
		Var:   "c", In: xquery.Call("ns0:CUSTOMERS"),
		Satisfies: &xquery.Binary{Op: ">",
			Left:  xquery.ChildPath("c", "CUSTOMERID"),
			Right: xquery.Num("10")},
	})
	if out[0].(xdm.Boolean) != true {
		t.Fatal("every failed")
	}
	out = evalBody(t, &xquery.Quantified{
		Every: true,
		Var:   "c", In: xquery.Call("ns0:CUSTOMERS"),
		Satisfies: &xquery.Binary{Op: ">",
			Left:  xquery.ChildPath("c", "CUSTOMERID"),
			Right: xquery.Num("30")},
	})
	if out[0].(xdm.Boolean) != false {
		t.Fatal("every should be false")
	}
}

func TestEvalCastOfEmptyIsEmpty(t *testing.T) {
	out := evalBody(t, &xquery.Cast{Type: "xs:integer", Operand: &xquery.EmptySeq{}})
	if !out.Empty() {
		t.Fatalf("cast(()) = %v", out)
	}
}

func TestEvalElementConstruction(t *testing.T) {
	ctor := &xquery.ElementCtor{Name: "ROW", Content: []xquery.ElemContent{
		&xquery.TextContent{Text: "prefix "},
		&xquery.ElementCtor{Name: "INNER", Content: []xquery.ElemContent{
			&xquery.Enclosed{Expr: &xquery.Seq{Items: []xquery.Expr{xquery.Num("1"), xquery.Num("2")}}},
		}},
	}}
	out := evalBody(t, ctor)
	got := xdm.Marshal(out[0].(*xdm.Element))
	want := "<ROW>prefix <INNER>1 2</INNER></ROW>"
	if got != want {
		t.Fatalf("got %s want %s", got, want)
	}
}

func TestEvalPositionalPredicate(t *testing.T) {
	out := evalBody(t, &xquery.Filter{
		Base:       xquery.Call("ns0:CUSTOMERS"),
		Predicates: []xquery.Expr{xquery.Num("2")},
	})
	if len(out) != 1 || out[0].(*xdm.Element).FirstChildElement("CUSTOMERNAME").StringValue() != "Sue" {
		t.Fatalf("out = %v", out)
	}
}

func TestEvalExternalVariables(t *testing.T) {
	q := customersQuery(&xquery.Binary{Op: "+", Left: xquery.VarRef("p1"), Right: xquery.Num("1")})
	out, err := testEngine().EvalWith(q, map[string]xdm.Sequence{
		"p1": xdm.SequenceOf(xdm.Integer(41)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].(xdm.Integer) != 42 {
		t.Fatalf("out = %v", out)
	}
}

func TestEvalPathOverAtomicErrors(t *testing.T) {
	_, err := testEngine().Eval(customersQuery(&xquery.Path{
		Base:  xquery.Num("1"),
		Steps: []xquery.PathStep{{Name: "X"}},
	}))
	if err == nil {
		t.Fatal("path over atomic should error")
	}
}
