package xqeval

import (
	"fmt"
	"strings"

	"repro/internal/xquery"
)

// StaticError is a static (compile-time) error: the query references a
// function or variable that cannot exist at runtime. Real XQuery engines
// reject such queries before execution; Check gives this engine the same
// front-loaded failure behavior for its textual front door.
type StaticError struct {
	Msg string
}

func (e *StaticError) Error() string { return "xquery static error: " + e.Msg }

func staticErr(format string, args ...any) error {
	return &StaticError{Msg: fmt.Sprintf(format, args...)}
}

// Check statically validates a query against this engine: every function
// must resolve (schema-import prefix + registered data service function,
// or a known fn:/fn-bea:/xs: builtin) and every variable reference must be
// bound by an enclosing FLWOR or quantified expression, or declared
// external.
func (e *Engine) Check(q *xquery.Query, external []string) error {
	prefixes := map[string]string{}
	for _, imp := range q.Prolog.SchemaImports {
		prefixes[imp.Prefix] = imp.Namespace
	}
	bound := map[string]bool{}
	for _, v := range external {
		bound[v] = true
	}
	c := &checker{engine: e, prefixes: prefixes}
	return c.expr(q.Body, bound)
}

type checker struct {
	engine   *Engine
	prefixes map[string]string
}

// expr validates an expression under the given variable bindings. bound is
// treated as immutable: clause-introduced bindings copy it.
func (c *checker) expr(e xquery.Expr, bound map[string]bool) error {
	switch e := e.(type) {
	case nil:
		return staticErr("missing expression")
	case *xquery.StringLit, *xquery.NumberLit, *xquery.EmptySeq, *xquery.ContextItem, *xquery.RelPath:
		return nil
	case *xquery.Var:
		if !bound[e.Name] {
			return staticErr("unbound variable $%s", e.Name)
		}
		return nil
	case *xquery.FuncCall:
		if err := c.funcName(e); err != nil {
			return err
		}
		for _, a := range e.Args {
			if err := c.expr(a, bound); err != nil {
				return err
			}
		}
		return nil
	case *xquery.Path:
		if err := c.expr(e.Base, bound); err != nil {
			return err
		}
		for _, s := range e.Steps {
			for _, p := range s.Predicates {
				if err := c.expr(p, bound); err != nil {
					return err
				}
			}
		}
		return nil
	case *xquery.Filter:
		if err := c.expr(e.Base, bound); err != nil {
			return err
		}
		for _, p := range e.Predicates {
			if err := c.expr(p, bound); err != nil {
				return err
			}
		}
		return nil
	case *xquery.Binary:
		if err := c.expr(e.Left, bound); err != nil {
			return err
		}
		return c.expr(e.Right, bound)
	case *xquery.Unary:
		return c.expr(e.Operand, bound)
	case *xquery.If:
		if err := c.expr(e.Cond, bound); err != nil {
			return err
		}
		if err := c.expr(e.Then, bound); err != nil {
			return err
		}
		return c.expr(e.Else, bound)
	case *xquery.Cast:
		if _, ok := castTargets[e.Type]; !ok {
			return staticErr("unknown cast target %s", e.Type)
		}
		return c.expr(e.Operand, bound)
	case *xquery.Seq:
		for _, it := range e.Items {
			if err := c.expr(it, bound); err != nil {
				return err
			}
		}
		return nil
	case *xquery.Quantified:
		if err := c.expr(e.In, bound); err != nil {
			return err
		}
		inner := copyBound(bound)
		inner[e.Var] = true
		return c.expr(e.Satisfies, inner)
	case *xquery.FLWOR:
		inner := copyBound(bound)
		for _, clause := range e.Clauses {
			switch clause := clause.(type) {
			case *xquery.For:
				if err := c.expr(clause.In, inner); err != nil {
					return err
				}
				inner[clause.Var] = true
				if clause.At != "" {
					inner[clause.At] = true
				}
			case *xquery.Let:
				if err := c.expr(clause.Expr, inner); err != nil {
					return err
				}
				inner[clause.Var] = true
			case *xquery.Where:
				if err := c.expr(clause.Cond, inner); err != nil {
					return err
				}
			case *xquery.GroupBy:
				if !inner[clause.InVar] {
					return staticErr("group clause over unbound variable $%s", clause.InVar)
				}
				for _, k := range clause.Keys {
					if err := c.expr(k.Expr, inner); err != nil {
						return err
					}
					inner[k.Var] = true
				}
				inner[clause.PartitionVar] = true
			case *xquery.OrderByClause:
				for _, s := range clause.Specs {
					if err := c.expr(s.Expr, inner); err != nil {
						return err
					}
				}
			default:
				return staticErr("unknown FLWOR clause %T", clause)
			}
		}
		if e.Return == nil {
			return staticErr("FLWOR without a return clause")
		}
		return c.expr(e.Return, inner)
	case *xquery.ElementCtor:
		for _, content := range e.Content {
			switch content := content.(type) {
			case *xquery.Enclosed:
				if err := c.expr(content.Expr, bound); err != nil {
					return err
				}
			case *xquery.ElementCtor:
				if err := c.expr(content, bound); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return staticErr("unknown expression %T", e)
	}
}

func (c *checker) funcName(f *xquery.FuncCall) error {
	prefix, local := xquery.FuncName(f.Name)
	if prefix == "xs" {
		if _, ok := castTargets[f.Name]; ok {
			return nil
		}
		return staticErr("unknown constructor function %s", f.Name)
	}
	if ns, ok := c.prefixes[prefix]; ok {
		if _, found := c.engine.lookup(ns, local); !found {
			return staticErr("no data service function %s in namespace %s", local, ns)
		}
		return nil
	}
	if _, ok := builtins[f.Name]; ok {
		return nil
	}
	if strings.Contains(f.Name, ":") {
		return staticErr("unknown function %s (prefix not bound by a schema import)", f.Name)
	}
	return staticErr("unknown function %s", f.Name)
}

func copyBound(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m)+4)
	for k, v := range m {
		out[k] = v
	}
	return out
}
