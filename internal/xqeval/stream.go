package xqeval

import (
	"context"
	"errors"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// stream.go is the pull side of the evaluator: a Volcano-style cursor over
// the generated query's row stream. The translator always builds results
// through one of two fixed top-level shapes — the XML mode's
// <RECORDSET>{rows}</RECORDSET> constructor, or the §4 text mode's
// fn:string-join over a per-RECORD token FLWOR — and both expose a
// row-producing expression whose items can be emitted one at a time instead
// of materialized into a sequence. planStream recognizes those shapes
// statically (the decomposition rides on the Plan, so compiled-query
// artifacts carry it), and EvalStream runs the row expression through the
// planned executor's existing tuple sink, delivering rows to the consumer
// as they are produced. GROUP BY and ORDER BY remain the only
// materialization points (they are barriers inside the FLWOR pipeline);
// set operations pass through fn-bea:distinct-rows and therefore fall back
// to whole-body evaluation before streaming out.
//
// FETCH FIRST n ROWS ONLY — translated as fn:subsequence(rows, 1, n) —
// short-circuits here: the limiter stops the producing pipeline after n
// rows instead of truncating a finished sequence. Stopping early can
// suppress dynamic errors a full evaluation would have raised in rows the
// consumer never asked for; XQuery §2.3.4 grants exactly that latitude,
// and the differential tests pin value-level equivalence.

// StreamKind classifies how a query body decomposes into a row stream.
type StreamKind int

const (
	// StreamMaterialized means the body has no recognized row-stream shape:
	// the whole body is evaluated first, then its items are emitted.
	StreamMaterialized StreamKind = iota
	// StreamXMLRows is the XML result shape: each emitted chunk is one item
	// of the RECORDSET constructor's content (one RECORD element per row).
	StreamXMLRows
	// StreamTextRows is the §4 text shape: each emitted chunk is one row's
	// delimiter/value token sequence.
	StreamTextRows
)

// String names the kind for EXPLAIN output.
func (k StreamKind) String() string {
	switch k {
	case StreamXMLRows:
		return "xml rows"
	case StreamTextRows:
		return "text rows"
	default:
		return "materialized"
	}
}

// StreamPlan is the static streaming decomposition of one query body,
// computed at plan time and shared by every execution.
type StreamPlan struct {
	Kind StreamKind

	// rows produces the row items (the RECORDSET constructor's enclosed
	// expression); nil when Kind is StreamMaterialized.
	rows xquery.Expr
	// tokenVar/ret replay the text wrapper's per-RECORD token FLWOR: for
	// each streamed RECORD element, ret evaluates with tokenVar bound to it.
	tokenVar string
	ret      xquery.Expr
}

// Streamable reports whether rows can be produced incrementally.
func (sp *StreamPlan) Streamable() bool {
	return sp != nil && sp.Kind != StreamMaterialized
}

// Describe renders the decomposition for the EXPLAIN status footer.
func (sp *StreamPlan) Describe() string {
	if sp.Streamable() {
		return "row cursor (" + sp.Kind.String() + "); barriers: group by / order by segments materialize"
	}
	return "materialized (body has no row-stream decomposition)"
}

// planStream pattern-matches the translator's two generated top-level
// shapes. Anything else — including hand-written XQuery — degrades to
// StreamMaterialized, which is always correct.
func planStream(body xquery.Expr) *StreamPlan {
	if rows, ok := recordsetRows(body); ok {
		return &StreamPlan{Kind: StreamXMLRows, rows: rows}
	}
	fc, ok := body.(*xquery.FuncCall)
	if !ok || fc.Name != "fn:string-join" || len(fc.Args) != 2 {
		return &StreamPlan{Kind: StreamMaterialized}
	}
	if sep, ok := fc.Args[1].(*xquery.StringLit); !ok || sep.Value != "" {
		return &StreamPlan{Kind: StreamMaterialized}
	}
	f, ok := fc.Args[0].(*xquery.FLWOR)
	if !ok || len(f.Clauses) != 2 {
		return &StreamPlan{Kind: StreamMaterialized}
	}
	let, okLet := f.Clauses[0].(*xquery.Let)
	forC, okFor := f.Clauses[1].(*xquery.For)
	if !okLet || !okFor || forC.At != "" {
		return &StreamPlan{Kind: StreamMaterialized}
	}
	rows, ok := recordsetRows(let.Expr)
	if !ok {
		return &StreamPlan{Kind: StreamMaterialized}
	}
	path, ok := forC.In.(*xquery.Path)
	if !ok || len(path.Steps) != 1 || path.Steps[0].Name != "RECORD" || len(path.Steps[0].Predicates) != 0 {
		return &StreamPlan{Kind: StreamMaterialized}
	}
	base, ok := path.Base.(*xquery.Var)
	if !ok || base.Name != let.Var {
		return &StreamPlan{Kind: StreamMaterialized}
	}
	// The token expression must not see the whole recordset — per-row
	// evaluation would otherwise change its meaning.
	if xquery.FreeVars(f.Return)[let.Var] {
		return &StreamPlan{Kind: StreamMaterialized}
	}
	return &StreamPlan{Kind: StreamTextRows, rows: rows, tokenVar: forC.Var, ret: f.Return}
}

// recordsetRows unwraps <RECORDSET>{rows}</RECORDSET>.
func recordsetRows(e xquery.Expr) (xquery.Expr, bool) {
	ec, ok := e.(*xquery.ElementCtor)
	if !ok || ec.Name != "RECORDSET" || len(ec.Content) != 1 {
		return nil, false
	}
	enc, ok := ec.Content[0].(*xquery.Enclosed)
	if !ok {
		return nil, false
	}
	return enc.Expr, true
}

// streamBuffer is the cursor channel's capacity: enough slack that the
// producer is rarely blocked on a consumer doing per-row work, small enough
// that early termination leaves only a bounded number of rows in flight.
const streamBuffer = 64

// Cursor is the pull end of a streaming evaluation. The producing goroutine
// evaluates the query and pushes one chunk per row into a bounded channel;
// Next pulls them. Next returns io.EOF after the last row, or the
// evaluation's error. Close is idempotent, cancels the evaluation through
// the context plumbing, and waits for the producer to exit — after Close
// returns, no evaluation work is running.
type Cursor struct {
	ch     chan xdm.Sequence
	errCh  chan error
	cancel context.CancelFunc

	aligned bool
	start   time.Time

	closed atomic.Bool

	mu         sync.Mutex
	done       bool
	err        error
	pending    xdm.Sequence
	hasPending bool
	sawFirst   bool

	produced atomic.Int64
	consumed atomic.Int64
	peak     atomic.Int64
	finished atomic.Bool

	counters *evalCounters
}

// RowAligned reports whether each chunk is exactly one result row (true
// for the recognized XML and text shapes; false for the materialized
// fallback, where chunks are arbitrary result items).
func (c *Cursor) RowAligned() bool { return c.aligned }

// emit delivers one chunk from the producing goroutine, giving up when the
// cursor's context is cancelled (Close, statement close, or deadline).
func (c *Cursor) emit(ctx context.Context, chunk xdm.Sequence) error {
	select {
	case c.ch <- chunk:
		inFlight := c.produced.Add(1) - c.consumed.Load()
		for {
			p := c.peak.Load()
			if inFlight <= p || c.peak.CompareAndSwap(p, inFlight) {
				break
			}
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Next returns the next chunk, io.EOF after the last one, or the
// evaluation's error. Safe for use concurrently with Close.
func (c *Cursor) Next() (xdm.Sequence, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next()
}

func (c *Cursor) next() (xdm.Sequence, error) {
	if c.hasPending {
		chunk := c.pending
		c.pending, c.hasPending = nil, false
		return chunk, nil
	}
	if c.done {
		if c.err != nil {
			return nil, c.err
		}
		return nil, io.EOF
	}
	if c.closed.Load() {
		return nil, io.EOF
	}
	chunk, ok := <-c.ch
	if ok {
		c.consumed.Add(1)
		if !c.sawFirst {
			c.sawFirst = true
			obsv.Global.TimeToFirstRow.Observe(time.Since(c.start))
		}
		return chunk, nil
	}
	c.err = <-c.errCh
	// A producer aborted by a deliberate Close ends with context.Canceled;
	// that is termination working as designed, not an error.
	if c.closed.Load() && errors.Is(c.err, context.Canceled) {
		c.err = nil
	}
	c.done = true
	c.finishMetrics()
	if c.err != nil {
		return nil, c.err
	}
	return nil, io.EOF
}

// Prime pulls the first chunk and holds it for the next call to Next, so
// errors raised before the first row (missing data services, injected
// faults at source-call time, bad bindings) surface synchronously to the
// caller that opened the cursor. An empty result primes successfully.
func (c *Cursor) Prime() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasPending || c.done || c.closed.Load() {
		return c.err
	}
	chunk, err := c.next()
	if err == io.EOF {
		return nil
	}
	if err != nil {
		return err
	}
	c.pending, c.hasPending = chunk, true
	return nil
}

// Close cancels the evaluation (if still running), drains the channel so
// the producer goroutine exits, and releases the cursor. It is idempotent
// and never reports the cancellation its own call caused as an error.
func (c *Cursor) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.cancel()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending, c.hasPending = nil, false
	for !c.done {
		_, ok := <-c.ch
		if ok {
			c.consumed.Add(1)
			continue
		}
		err := <-c.errCh
		c.done = true
		if err != nil && !errors.Is(err, context.Canceled) {
			c.err = err
		}
	}
	c.finishMetrics()
	return nil
}

// Err returns the evaluation error the stream terminated with, if any.
func (c *Cursor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats reports the evaluation's step and tuple counters. Valid once the
// stream has terminated (Next returned io.EOF or an error, or Close
// returned); the producing goroutine has exited by then.
func (c *Cursor) Stats() (steps, tuples int64) {
	return c.counters.steps, c.counters.tuples
}

func (c *Cursor) finishMetrics() {
	if c.finished.Swap(true) {
		return
	}
	obsv.Global.PeakInFlightRows.SetMax(c.peak.Load())
}

// EvalStream evaluates a planned query as a row stream. The returned
// cursor owns a goroutine until it is exhausted or closed; callers must
// call Close (reading through io.EOF also releases it).
func (e *Engine) EvalStream(ctx context.Context, p *Plan, external map[string]xdm.Sequence, tr *obsv.Trace) *Cursor {
	return e.evalStream(ctx, p.Query, p, p.Stream, external, tr)
}

// EvalStreamNaive streams without planning — the differential oracle's
// second side, mirroring EvalNaiveWithTrace.
func (e *Engine) EvalStreamNaive(ctx context.Context, q *xquery.Query, external map[string]xdm.Sequence, tr *obsv.Trace) *Cursor {
	return e.evalStream(ctx, q, nil, planStream(q.Body), external, tr)
}

func (e *Engine) evalStream(ctx context.Context, q *xquery.Query, p *Plan, sp *StreamPlan, external map[string]xdm.Sequence, tr *obsv.Trace) *Cursor {
	sctx, cancel := context.WithCancel(ctx)
	counters := &evalCounters{}
	env := &scope{engine: e, prefixes: map[string]string{}, goCtx: sctx, counters: counters, plan: p, limits: e.Limits()}
	for _, imp := range q.Prolog.SchemaImports {
		env.prefixes[imp.Prefix] = imp.Namespace
	}
	if len(external) > 0 {
		env.vars = make(map[string]xdm.Sequence, len(external))
		for k, v := range external {
			env.vars[k] = v
		}
	}
	span := tr.StartStage(obsv.StageEvaluate)
	cur := &Cursor{
		ch:       make(chan xdm.Sequence, streamBuffer),
		errCh:    make(chan error, 1),
		cancel:   cancel,
		aligned:  sp.Streamable(),
		start:    time.Now(),
		counters: counters,
	}
	go func() {
		var emitted int
		err := runStream(q.Body, sp, env, func(chunk xdm.Sequence) error {
			if err := cur.emit(sctx, chunk); err != nil {
				return err
			}
			emitted++
			return nil
		})
		obsv.Global.QueriesExecuted.Inc()
		obsv.Global.EvalSteps.Add(counters.steps)
		obsv.Global.TuplesPruned.Add(counters.pruned)
		span.SetOutput(emitted)
		span.Add("steps", counters.steps)
		span.Add("tuples", counters.tuples)
		if counters.pruned > 0 {
			span.Add("pruned", counters.pruned)
		}
		span.End()
		cur.errCh <- err
		close(cur.ch)
	}()
	return cur
}

// runStream drives the decomposed body into emit, one chunk per row (or
// per item in the materialized fallback).
func runStream(body xquery.Expr, sp *StreamPlan, env *scope, emit func(xdm.Sequence) error) error {
	switch sp.Kind {
	case StreamXMLRows:
		return streamItems(sp.rows, env, func(it xdm.Item) error {
			return emit(xdm.SequenceOf(it))
		})
	case StreamTextRows:
		return streamItems(sp.rows, env, func(it xdm.Item) error {
			return streamTextTokens(it, sp, env, emit)
		})
	default:
		out, err := evalExpr(body, env)
		if err != nil {
			return err
		}
		for _, it := range out {
			if err := emit(xdm.SequenceOf(it)); err != nil {
				return err
			}
		}
		return nil
	}
}

// streamTextTokens replays the text wrapper's `for $tokenQuery in
// $actualQuery/RECORD return (tokens)` for one streamed rows item, without
// ever building the RECORDSET element: element children named RECORD become
// rows, documents splice their children (as enclosed content would), and
// anything else is dropped exactly as the /RECORD step drops non-element
// content.
func streamTextTokens(it xdm.Item, sp *StreamPlan, env *scope, emit func(xdm.Sequence) error) error {
	switch n := it.(type) {
	case *xdm.Element:
		if n.Name.Local != "RECORD" {
			return nil
		}
		if err := env.countTuple(); err != nil {
			return err
		}
		t := env.bind(sp.tokenVar, xdm.SequenceOf(n))
		if err := t.checkCancel(); err != nil {
			return err
		}
		v, err := evalExpr(sp.ret, t)
		if err != nil {
			return err
		}
		if err := t.countRows(len(v)); err != nil {
			return err
		}
		return emit(v)
	case *xdm.Document:
		for _, ch := range n.Children {
			el, ok := ch.(*xdm.Element)
			if !ok {
				continue
			}
			if err := streamTextTokens(el, sp, env, emit); err != nil {
				return err
			}
		}
		return nil
	default:
		return nil
	}
}

// streamItems produces a row expression's items one at a time: FLWORs run
// through the planned executor's tuple sink (or the naive segmented
// streamer), sequences stream element-wise, and fn:subsequence(rows, 1, n)
// — the translated FETCH FIRST — stops the producer after n items. Every
// other expression evaluates whole and emits item by item.
func streamItems(e xquery.Expr, env *scope, emitItem func(xdm.Item) error) error {
	switch n := e.(type) {
	case *xquery.FLWOR:
		emitSeq := func(v xdm.Sequence) error {
			for _, it := range v {
				if err := emitItem(it); err != nil {
					return err
				}
			}
			return nil
		}
		if env.plan != nil {
			if fp, ok := env.plan.flwors[n]; ok {
				return execPlannedFLWORTo(fp, env, emitSeq)
			}
		}
		return streamNaiveFLWOR(n, env, emitSeq)

	case *xquery.Seq:
		for _, item := range n.Items {
			if err := streamItems(item, env, emitItem); err != nil {
				return err
			}
		}
		return nil

	case *xquery.FuncCall:
		if limit, inner, ok := subsequenceLimit(n); ok {
			return streamLimited(inner, env, limit, emitItem)
		}
	}
	v, err := evalExpr(e, env)
	if err != nil {
		return err
	}
	for _, it := range v {
		if err := emitItem(it); err != nil {
			return err
		}
	}
	return nil
}

// streamLimited streams inner's first limit items and then stops the
// producing pipeline with a sentinel caught here — the cursor-boundary
// short circuit behind FETCH FIRST. The sentinel is unique per limiter so
// a nested outer limit propagates through an inner one.
func streamLimited(inner xquery.Expr, env *scope, limit int64, emitItem func(xdm.Item) error) error {
	if limit <= 0 {
		return nil
	}
	stop := errors.New("xqeval: stream limit reached")
	remaining := limit
	err := streamItems(inner, env, func(it xdm.Item) error {
		if err := emitItem(it); err != nil {
			return err
		}
		remaining--
		if remaining == 0 {
			return stop
		}
		return nil
	})
	if err == stop { //nolint:errorlint // sentinel identity, never wrapped
		return nil
	}
	return err
}

// subsequenceLimit matches the translator's FETCH FIRST spelling —
// fn:subsequence(rows, 1, n) with plain integer literals. Only that exact
// form short-circuits; any other subsequence call keeps fnSubsequence's
// general F&O rounding semantics. (For start=1 and integer n ≥ 0 the F&O
// bounds floor(1+0.5)=1 .. 1+floor(n+0.5)=1+n select exactly the first n
// items, so stopping after n is value-identical.)
func subsequenceLimit(fc *xquery.FuncCall) (limit int64, inner xquery.Expr, ok bool) {
	if fc.Name != "fn:subsequence" || len(fc.Args) != 3 {
		return 0, nil, false
	}
	start, ok1 := intLiteral(fc.Args[1])
	n, ok2 := intLiteral(fc.Args[2])
	if !ok1 || !ok2 || start != 1 || n < 0 {
		return 0, nil, false
	}
	return n, fc.Args[0], true
}

func intLiteral(e xquery.Expr) (int64, bool) {
	lit, ok := e.(*xquery.NumberLit)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(lit.Text, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// streamNaiveFLWOR is the unplanned pipeline with a streaming tail: every
// clause up to and including the last barrier runs through applyClause
// (byte-identical barrier semantics), and the remaining for/let/where
// suffix streams tuples depth-first into the return clause.
func streamNaiveFLWOR(f *xquery.FLWOR, env *scope, emit func(xdm.Sequence) error) error {
	last := -1
	for i, c := range f.Clauses {
		switch c.(type) {
		case *xquery.GroupBy, *xquery.OrderByClause:
			last = i
		}
	}
	tuples := []*scope{env}
	var err error
	for _, c := range f.Clauses[:last+1] {
		tuples, err = applyClause(c, tuples)
		if err != nil {
			return err
		}
	}
	rest := f.Clauses[last+1:]
	for _, t := range tuples {
		err := streamClauses(rest, t, func(t2 *scope) error {
			if err := t2.checkCancel(); err != nil {
				return err
			}
			v, err := evalExpr(f.Return, t2)
			if err != nil {
				return err
			}
			if err := t2.countRows(len(v)); err != nil {
				return err
			}
			return emit(v)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// streamClauses pushes one tuple depth-first through a barrier-free clause
// suffix. For/let/where produce tuples in the same order as the naive
// breadth-first applyClause pipeline; only error timing can differ, which
// XQuery §2.3.4 permits.
func streamClauses(clauses []xquery.Clause, t *scope, sink tupleSink) error {
	if len(clauses) == 0 {
		return sink(t)
	}
	switch c := clauses[0].(type) {
	case *xquery.For:
		if err := t.checkCancel(); err != nil {
			return err
		}
		seq, err := evalExpr(c.In, t)
		if err != nil {
			return err
		}
		for i, it := range seq {
			if err := t.countTuple(); err != nil {
				return err
			}
			nt := t.bind(c.Var, xdm.SequenceOf(it))
			if c.At != "" {
				nt = nt.bind(c.At, xdm.SequenceOf(xdm.Integer(i+1)))
			}
			if err := streamClauses(clauses[1:], nt, sink); err != nil {
				return err
			}
		}
		return nil
	case *xquery.Let:
		v, err := evalExpr(c.Expr, t)
		if err != nil {
			return err
		}
		return streamClauses(clauses[1:], t.bind(c.Var, v), sink)
	case *xquery.Where:
		ok, err := evalEBV(c.Cond, t)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return streamClauses(clauses[1:], t, sink)
	default:
		return dynErr("unsupported FLWOR clause %T", clauses[0])
	}
}
