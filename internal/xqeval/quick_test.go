package xqeval

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// Property: likeMatch agrees with a regexp-based reference implementation
// over the {a, b, %, _} alphabet (no escapes).
func TestQuickLikeMatchesReference(t *testing.T) {
	alphabet := []byte{'a', 'b', '%', '_'}
	f := func(sSeed, pSeed []byte) bool {
		s := fromAlphabet(sSeed, []byte{'a', 'b'})
		p := fromAlphabet(pSeed, alphabet)
		got, err := likeMatch(s, p, "")
		if err != nil {
			return false
		}
		return got == referenceLike(s, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: with an escape character, escaped wildcards match literally.
func TestQuickLikeEscapeLiteral(t *testing.T) {
	f := func(seed []byte) bool {
		s := fromAlphabet(seed, []byte{'a', '%', '_'})
		// Build a pattern that escapes every wildcard in s: it must match
		// exactly s and nothing with substitutions.
		var p strings.Builder
		for i := 0; i < len(s); i++ {
			if s[i] == '%' || s[i] == '_' {
				p.WriteByte('!')
			}
			p.WriteByte(s[i])
		}
		got, err := likeMatch(s, p.String(), "!")
		return err == nil && got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func fromAlphabet(seed []byte, alphabet []byte) string {
	var b strings.Builder
	for _, x := range seed {
		b.WriteByte(alphabet[int(x)%len(alphabet)])
	}
	// Bound the size: the backtracking matcher is exponential in
	// pathological %-runs, which real SQL patterns do not exhibit.
	s := b.String()
	if len(s) > 12 {
		s = s[:12]
	}
	return s
}

func referenceLike(s, pattern string) bool {
	var re strings.Builder
	re.WriteString("^")
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '%':
			re.WriteString("(?s).*")
		case '_':
			re.WriteString("(?s).")
		default:
			re.WriteString(regexp.QuoteMeta(string(pattern[i])))
		}
	}
	re.WriteString("$")
	return regexp.MustCompile(re.String()).MatchString(s)
}
