package pathfront

import (
	"strings"

	"repro/internal/qfront"
)

// tokKind classifies path-template tokens.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tKeyword
	tString // 'literal'
	tInt
	tDec
	tFloat
	tParam // ?
	tOp    // punctuation and operators
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tIdent:
		return "identifier"
	case tKeyword:
		return "keyword"
	case tString:
		return "string literal"
	case tInt:
		return "integer literal"
	case tDec:
		return "decimal literal"
	case tFloat:
		return "float literal"
	case tParam:
		return "parameter marker"
	default:
		return "operator"
	}
}

// pathKeywords is the language's reserved-word set. Identifiers matching
// case-insensitively lex as keywords, like the SQL front end's lexer.
var pathKeywords = map[string]bool{
	"MATCH": true, "WHERE": true, "RETURN": true, "DISTINCT": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "TAKE": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "NULL": true,
	"IS": true,
}

type token struct {
	kind tokKind
	text string
	pos  qfront.Pos
}

func (t token) is(keyword string) bool    { return t.kind == tKeyword && t.text == keyword }
func (t token) isOp(spelling string) bool { return t.kind == tOp && t.text == spelling }

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tString:
		return "'" + t.text + "'"
	default:
		return t.text
	}
}

// lex tokenizes path-template text. Plain identifiers uppercase (the
// language is case-insensitive, like SQL); string literals unescape
// doubled quotes; `#` starts a comment running to end of line.
func lex(src string) ([]token, error) {
	lx := &plexer{src: src, line: 1, col: 1}
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}

type plexer struct {
	src       string
	off       int
	line, col int
}

func (lx *plexer) pos() qfront.Pos { return qfront.Pos{Line: lx.line, Col: lx.col} }

func (lx *plexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *plexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *plexer) advance() byte {
	b := lx.src[lx.off]
	lx.off++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *plexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		switch b := lx.peek(); {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '#':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
func isIdentPart(b byte) bool { return isIdentStart(b) || isDigit(b) }

func (lx *plexer) next() (token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return token{kind: tEOF, pos: start}, nil
	}
	b := lx.peek()
	switch {
	case isIdentStart(b):
		return lx.lexIdent(start), nil
	case isDigit(b) || (b == '.' && isDigit(lx.peekAt(1))):
		return lx.lexNumber(start)
	case b == '\'':
		return lx.lexString(start)
	case b == '?':
		lx.advance()
		return token{kind: tParam, text: "?", pos: start}, nil
	default:
		return lx.lexOperator(start)
	}
}

func (lx *plexer) lexIdent(start qfront.Pos) token {
	begin := lx.off
	for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	text := strings.ToUpper(lx.src[begin:lx.off])
	if pathKeywords[text] {
		return token{kind: tKeyword, text: text, pos: start}
	}
	return token{kind: tIdent, text: text, pos: start}
}

func (lx *plexer) lexNumber(start qfront.Pos) (token, error) {
	begin := lx.off
	kind := tInt
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' && isDigit(lx.peekAt(1)) {
		kind = tDec
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if b := lx.peek(); b == 'e' || b == 'E' {
		n := 1
		if c := lx.peekAt(1); c == '+' || c == '-' {
			n = 2
		}
		if isDigit(lx.peekAt(n)) {
			kind = tFloat
			for i := 0; i < n; i++ {
				lx.advance()
			}
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
	}
	if isIdentStart(lx.peek()) {
		return token{}, errAt(lx.pos(), "malformed number: unexpected %q", string(lx.peek()))
	}
	return token{kind: kind, text: lx.src[begin:lx.off], pos: start}, nil
}

func (lx *plexer) lexString(start qfront.Pos) (token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for lx.off < len(lx.src) {
		c := lx.advance()
		if c == '\'' {
			if lx.peek() == '\'' { // doubled quote escapes one quote
				lx.advance()
				b.WriteByte('\'')
				continue
			}
			return token{kind: tString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
	}
	return token{}, errAt(start, "unterminated string literal")
}

// twoByteOps are the multi-character operator spellings, checked before
// single characters.
var twoByteOps = []string{"->", "!=", "<>", "<=", ">="}

func (lx *plexer) lexOperator(start qfront.Pos) (token, error) {
	rest := lx.src[lx.off:]
	for _, op := range twoByteOps {
		if strings.HasPrefix(rest, op) {
			lx.advance()
			lx.advance()
			return token{kind: tOp, text: op, pos: start}, nil
		}
	}
	switch b := lx.peek(); b {
	case '(', ')', '[', ']', ',', '.', ':', '=', '<', '>', '-', '+', '*', '/', ';':
		lx.advance()
		return token{kind: tOp, text: string(b), pos: start}, nil
	default:
		return token{}, errAt(start, "unexpected character %q", string(b))
	}
}
