package pathfront

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/qfront"
	"repro/internal/sqlparser"
)

// TestLowering checks the relational lowering end to end: the parsed
// statement's canonical rendering must be exactly the equivalent SQL.
func TestLowering(t *testing.T) {
	cases := []struct {
		path string
		sql  string
	}{
		{
			"match (c:CUSTOMERS) return c.CUSTOMERID, c.CUSTOMERNAME",
			"SELECT C.CUSTOMERID, C.CUSTOMERNAME FROM CUSTOMERS AS C",
		},
		{
			"match (c:customers) return c",
			"SELECT C.* FROM CUSTOMERS AS C",
		},
		{
			"match (c:CUSTOMERS) return *",
			"SELECT * FROM CUSTOMERS AS C",
		},
		{
			"match (c:CUSTOMERS)-[CUSTOMERID = CUSTID]->(p:PAYMENTS) return c.CUSTOMERNAME, p.PAYMENT",
			"SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS AS C, PAYMENTS AS P WHERE C.CUSTOMERID = P.CUSTID",
		},
		{
			"match (c:CUSTOMERS)-[CUSTOMERID=CUSTID]->(p:PAYMENTS) where p.PAYMENT > 100 return c.CUSTOMERNAME",
			"SELECT C.CUSTOMERNAME FROM CUSTOMERS AS C, PAYMENTS AS P WHERE (C.CUSTOMERID = P.CUSTID AND P.PAYMENT > 100)",
		},
		{
			"match (a:CUSTOMERS)-[CUSTOMERID=CUSTID]->(b:PAYMENTS)-[b.CUSTID=d.CUSTID]->(d:PAYMENTS) return a.CUSTOMERNAME",
			"SELECT A.CUSTOMERNAME FROM CUSTOMERS AS A, PAYMENTS AS B, PAYMENTS AS D WHERE (A.CUSTOMERID = B.CUSTID AND B.CUSTID = D.CUSTID)",
		},
		{
			"match (c:CUSTOMERS) where c.CITY = 'Oslo' or not c.CUSTOMERID >= 10 return distinct c.CITY",
			"SELECT DISTINCT C.CITY FROM CUSTOMERS AS C WHERE (C.CITY = 'Oslo' OR NOT (C.CUSTOMERID >= 10))",
		},
		{
			"match (c:CUSTOMERS) where c.CITY is not null return c.CITY order by c.CITY desc take 5",
			"SELECT C.CITY FROM CUSTOMERS AS C WHERE C.CITY IS NOT NULL ORDER BY C.CITY DESC FETCH FIRST 5 ROWS ONLY",
		},
		{
			"match (c:CUSTOMERS) where c.CUSTOMERID = ? and c.CITY != ? return c.CUSTOMERNAME as NAME",
			"SELECT C.CUSTOMERNAME AS NAME FROM CUSTOMERS AS C WHERE (C.CUSTOMERID = ? AND C.CITY <> ?)",
		},
		{
			"match (p:PAYMENTS) return p.PAYMENT * 2 + 1 as SCALED order by 1",
			"SELECT P.PAYMENT * 2 + 1 AS SCALED FROM PAYMENTS AS P ORDER BY 1",
		},
		{
			// A repeated binder names the same node, not a new FROM entry.
			"match (c:CUSTOMERS)-[CUSTOMERID=CUSTID]->(p:PAYMENTS), (c:CUSTOMERS) return c.CUSTOMERNAME",
			"SELECT C.CUSTOMERNAME FROM CUSTOMERS AS C, PAYMENTS AS P WHERE C.CUSTOMERID = P.CUSTID",
		},
		{
			// Multi-column edges AND in pattern order.
			"match (a:T1)-[X=Y, a.Z=b.W]->(b:T2) return a.X",
			"SELECT A.X FROM T1 AS A, T2 AS B WHERE (A.X = B.Y AND A.Z = B.W)",
		},
		{
			// A trailing semicolon is tolerated, like the SQL front end.
			"match (c:CUSTOMERS) return c.CITY;",
			"SELECT C.CITY FROM CUSTOMERS AS C",
		},
	}
	for _, tc := range cases {
		stmt, err := Parse(tc.path)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.path, err)
		}
		if got := stmt.SQL(); got != tc.sql {
			t.Errorf("lowering of %q:\n got %s\nwant %s", tc.path, got, tc.sql)
		}
		// The rendered form must be valid SQL-92: the two front ends meet
		// on one AST, so path output re-parses through the SQL parser.
		if _, err := sqlparser.Parse(stmt.SQL()); err != nil {
			t.Errorf("rendered SQL %q does not re-parse: %v", stmt.SQL(), err)
		}
	}
}

// TestParamNumbering checks `?` markers number left to right, as the
// driver's p1…pN binding requires.
func TestParamNumbering(t *testing.T) {
	stmt, err := Parse("match (c:T) where c.A = ? and c.B = ? return c.A take 3")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.ParamCount != 2 {
		t.Fatalf("ParamCount = %d, want 2", stmt.ParamCount)
	}
	if stmt.Limit != 3 {
		t.Fatalf("Limit = %d, want 3", stmt.Limit)
	}
	var idx []int
	qfront.WalkExpr(stmt.Body.(*qfront.QuerySpec).Where, func(e qfront.Expr) bool {
		if p, ok := e.(*qfront.Param); ok {
			idx = append(idx, p.Index)
		}
		return true
	})
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 {
		t.Fatalf("param indexes = %v, want [1 2]", idx)
	}
}

// TestErrors checks errors are typed with real positions into the
// path-template source.
func TestErrors(t *testing.T) {
	cases := []struct {
		src     string
		line    int
		col     int
		wantMsg string
	}{
		{"", 1, 1, "expected MATCH"},
		{"match c:CUSTOMERS) return c", 1, 7, `expected "("`},
		{"match (c:CUSTOMERS) return", 1, 27, "expected expression"},
		{"match (c:CUSTOMERS)\nwhere c.CITY = return c.CITY", 2, 16, "expected expression"},
		{"match (c:CUSTOMERS) where c.X = 'unterminated return c.X", 1, 33, "unterminated string"},
		{"match (c:CUSTOMERS), (c:PAYMENTS) return c", 1, 23, "already bound"},
		{"match (c:CUSTOMERS) return c.CITY trailing", 1, 35, "expected end of statement"},
		{"match (c:CUSTOMERS) return c.CITY; extra", 1, 36, "expected end of statement"},
		{"match (c:CUSTOMERS) return c.CITY take x", 1, 40, "expected row count"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", tc.src)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("Parse(%q) error %T is not *ParseError: %v", tc.src, err, err)
		}
		if pe.Pos.Line != tc.line || pe.Pos.Col != tc.col {
			t.Errorf("Parse(%q) error at %v, want line %d col %d (%v)", tc.src, pe.Pos, tc.line, tc.col, err)
		}
		if !strings.Contains(pe.Msg, tc.wantMsg) {
			t.Errorf("Parse(%q) msg %q, want substring %q", tc.src, pe.Msg, tc.wantMsg)
		}
	}
}

// TestNormalize checks cache-key normalization collapses what cannot
// matter and preserves what can.
func TestNormalize(t *testing.T) {
	same := []string{
		"match (c:CUSTOMERS) return c.CITY",
		"match  (c:customers)  return  c.city",
		"match (C:Customers) # pattern\nreturn C.City",
	}
	first, err := (Front{}).Normalize(same[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range same[1:] {
		got, err := (Front{}).Normalize(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Errorf("Normalize(%q) = %q, want %q", s, got, first)
		}
	}
	other, err := (Front{}).Normalize("match (c:CUSTOMERS) return c.'CITY' is wrong")
	if err == nil && other == first {
		t.Error("distinct statement normalized to the same key")
	}
	if _, err := (Front{}).Normalize("match (c:T) where x = 'unterminated"); err == nil {
		t.Error("Normalize accepted text that cannot lex")
	}
}
