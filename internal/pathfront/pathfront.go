// Package pathfront is the second query front end: a small path-template
// language (graph-pattern navigation over registered data services,
// SPARQL-like in spirit, Cypher-like in spelling) that parses to the
// shared typed AST in internal/qfront. It exists to prove — and keep
// proven — that the translation kernel is front-end agnostic: everything
// after stage one (semantic validation, resultset-node restructuring,
// XQuery generation, planning, statistics-driven parallel execution,
// compile caching, streaming cursors, EXPLAIN) is inherited unchanged.
//
// The language:
//
//	match (c:CUSTOMERS)-[CUSTOMERID = CUSTID]->(p:PAYMENTS)
//	where p.PAYMENT > 100 and c.CITY = 'Oslo'
//	return c.CUSTOMERNAME as NAME, p.PAYMENT
//	order by p.PAYMENT desc
//	take 10
//
// A `match` clause declares node patterns — `(binder:TABLE)` pairs — and
// edges between adjacent nodes. An edge `-[L = R]->` is an equi-join:
// its left column defaults to the left node's binder and its right
// column to the right node's (qualify explicitly, `-[a.X = b.Y]->`, to
// join non-adjacent binders). Multiple comma-separated patterns and
// multi-column edges `-[A = B, C = D]->` are allowed. `where` takes
// boolean conditions (comparisons, and/or/not, arithmetic, `?`
// parameters). `return` projects columns (`binder.COL`, optionally
// aliased with `as`), a whole node (`return c` — the binder's columns,
// SQL's C.*), or everything (`*`); `distinct`, `order by … [asc|desc]`,
// and `take n` (SQL's FETCH FIRST n ROWS ONLY) complete the statement.
//
// Every construct lowers onto the relational AST: nodes become FROM
// items with aliases, edges become equi-join conditions ANDed into the
// WHERE clause (where the planner's structural join detection finds them
// — path queries hash-join exactly like the equivalent SQL), and the
// clause tail maps one-to-one. The canonical rendering of the parsed
// statement (SelectStmt.SQL()) is therefore valid SQL-92, which the
// differential tests exploit: a path query and its rendered SQL must
// produce byte-identical results through both front ends.
//
// Errors are typed (*ParseError) and carry 1-based positions into the
// path-template source, mirroring the SQL front end's contract.
package pathfront

import (
	"fmt"

	"repro/internal/obsv"
	"repro/internal/qfront"
)

// Front is the path-template front end, registered under
// qfront.DialectPath at init.
type Front struct{}

func init() { qfront.Register(Front{}) }

// Dialect implements qfront.Frontend.
func (Front) Dialect() qfront.Dialect { return qfront.DialectPath }

// Parse implements qfront.Frontend: lex + parse with the same staged
// observation the SQL front end records, so EXPLAIN of a path statement
// shows its own stage-one spans.
func (Front) Parse(text string, tr *obsv.Trace) (*qfront.SelectStmt, error) {
	sp := tr.StartStage(obsv.StageLex)
	sp.SetInput(len(text))
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	sp.SetOutput(len(toks))
	sp.End()

	sp = tr.StartStage(obsv.StageParse)
	sp.SetInput(len(toks))
	stmt, err := parseTokens(toks)
	if err != nil {
		return nil, err
	}
	sp.Add("params", int64(stmt.ParamCount))
	sp.End()
	return stmt, nil
}

// Normalize implements qfront.Frontend: the compile-cache key form.
// Lexing collapses whitespace, comments, and keyword/identifier case;
// each token renders type-tagged and length-delimited so distinct
// statements never collide. The cache key additionally carries the
// dialect, so identical text under the SQL front end keys separately.
func (Front) Normalize(text string) (string, error) {
	toks, err := lex(text)
	if err != nil {
		return "", err
	}
	var b []byte
	for _, t := range toks {
		if t.kind == tEOF {
			break
		}
		b = fmt.Appendf(b, "%d:%d:%s ", int(t.kind), len(t.text), t.text)
	}
	return string(b), nil
}

// Parse is the package-level convenience used by tests and tools: parse
// path-template text without tracing.
func Parse(text string) (*qfront.SelectStmt, error) {
	return Front{}.Parse(text, nil)
}

// ParseError is a syntax error in path-template text, with a 1-based
// source position.
type ParseError struct {
	Pos qfront.Pos
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("path syntax error at %s: %s", e.Pos, e.Msg)
}

func errAt(pos qfront.Pos, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
