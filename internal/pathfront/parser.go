package pathfront

import (
	"strconv"

	"repro/internal/qfront"
)

// parseTokens parses a lexed path-template statement onto the shared AST.
func parseTokens(toks []token) (*qfront.SelectStmt, error) {
	p := &parser{toks: toks, binders: map[string]*qfront.TableName{}}
	stmt, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon, matching the SQL front end's tolerance
	// (shells and scripts habitually terminate statements with one).
	if p.cur().isOp(";") {
		p.advance()
	}
	if t := p.cur(); t.kind != tEOF {
		return nil, errAt(t.pos, "expected end of statement, found %s", t)
	}
	return stmt, nil
}

type parser struct {
	toks   []token
	i      int
	params int
	// binders maps each declared node binder to its FROM entry, so a
	// binder repeated across patterns refers to one node and `return b`
	// can be recognized as a whole-node projection.
	binders map[string]*qfront.TableName
	from    []qfront.TableRef
	edges   []qfront.Expr
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(n int) token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.i+n]
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

func (p *parser) expectOp(spelling string) (token, error) {
	if t := p.cur(); t.isOp(spelling) {
		return p.advance(), nil
	}
	return token{}, errAt(p.cur().pos, "expected %q, found %s", spelling, p.cur())
}

func (p *parser) expectKeyword(kw string) (token, error) {
	if t := p.cur(); t.is(kw) {
		return p.advance(), nil
	}
	return token{}, errAt(p.cur().pos, "expected %s, found %s", kw, p.cur())
}

func (p *parser) expectIdent() (token, error) {
	if t := p.cur(); t.kind == tIdent {
		return p.advance(), nil
	}
	return token{}, errAt(p.cur().pos, "expected identifier, found %s", p.cur())
}

// parseQuery := MATCH chain (',' chain)* [WHERE cond]
//
//	RETURN [DISTINCT] item (',' item)*
//	[ORDER BY order (',' order)*] [TAKE int]
func (p *parser) parseQuery() (*qfront.SelectStmt, error) {
	start, err := p.expectKeyword("MATCH")
	if err != nil {
		return nil, err
	}
	for {
		if err := p.parseChain(); err != nil {
			return nil, err
		}
		if !p.cur().isOp(",") {
			break
		}
		p.advance()
	}

	var where qfront.Expr
	if p.cur().is("WHERE") {
		p.advance()
		if where, err = p.parseCond(); err != nil {
			return nil, err
		}
	}

	spec := &qfront.QuerySpec{Pos: start.pos, From: p.from}
	if _, err := p.expectKeyword("RETURN"); err != nil {
		return nil, err
	}
	if p.cur().is("DISTINCT") {
		p.advance()
		spec.Distinct = true
	}
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		spec.Items = append(spec.Items, item)
		if !p.cur().isOp(",") {
			break
		}
		p.advance()
	}

	// Edge conditions fold left in pattern order, then the WHERE clause —
	// the same association `A = B AND C = D AND <cond>` parses to in SQL,
	// so the rendered statement round-trips byte-identically.
	for _, e := range p.edges {
		spec.Where = conj(spec.Where, e)
	}
	spec.Where = conj(spec.Where, where)

	stmt := &qfront.SelectStmt{Pos: start.pos, Body: spec, Limit: -1}

	if p.cur().is("ORDER") {
		p.advance()
		if _, err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			o, err := p.parseOrder()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, o)
			if !p.cur().isOp(",") {
				break
			}
			p.advance()
		}
	}

	if p.cur().is("TAKE") {
		p.advance()
		t := p.cur()
		if t.kind != tInt {
			return nil, errAt(t.pos, "expected row count after TAKE, found %s", t)
		}
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, errAt(t.pos, "row count %q out of range", t.text)
		}
		stmt.Limit = n
	}

	stmt.ParamCount = p.params
	return stmt, nil
}

func conj(a, b qfront.Expr) qfront.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &qfront.BinaryExpr{Pos: a.Position(), Op: qfront.BinAnd, Left: a, Right: b}
}

// parseChain := node (edge node)*
func (p *parser) parseChain() error {
	left, err := p.parseNode()
	if err != nil {
		return err
	}
	for p.cur().isOp("-") {
		p.advance()
		if _, err := p.expectOp("["); err != nil {
			return err
		}
		type pair struct{ l, r *qfront.ColumnRef }
		var pairs []pair
		for {
			l, err := p.parseEdgeCol()
			if err != nil {
				return err
			}
			if _, err := p.expectOp("="); err != nil {
				return err
			}
			r, err := p.parseEdgeCol()
			if err != nil {
				return err
			}
			pairs = append(pairs, pair{l, r})
			if !p.cur().isOp(",") {
				break
			}
			p.advance()
		}
		if _, err := p.expectOp("]"); err != nil {
			return err
		}
		if _, err := p.expectOp("->"); err != nil {
			return err
		}
		right, err := p.parseNode()
		if err != nil {
			return err
		}
		// Unqualified edge columns default to the adjacent nodes: the
		// left side to the left node's binder, the right side to the
		// right node's.
		for _, pr := range pairs {
			if pr.l.Qualifier == "" {
				pr.l.Qualifier = left.RangeVar()
			}
			if pr.r.Qualifier == "" {
				pr.r.Qualifier = right.RangeVar()
			}
			p.edges = append(p.edges, &qfront.BinaryExpr{
				Pos: pr.l.Pos, Op: qfront.BinEq, Left: pr.l, Right: pr.r,
			})
		}
		left = right
	}
	return nil
}

// parseNode := '(' binder ':' name ('.' name)* ')'
func (p *parser) parseNode() (*qfront.TableName, error) {
	if _, err := p.expectOp("("); err != nil {
		return nil, err
	}
	binder, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectOp(":"); err != nil {
		return nil, err
	}
	var parts []string
	for {
		part, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part.text)
		if !p.cur().isOp(".") {
			break
		}
		p.advance()
	}
	if _, err := p.expectOp(")"); err != nil {
		return nil, err
	}

	tn := &qfront.TableName{Pos: binder.pos, Alias: binder.text}
	switch len(parts) {
	case 1:
		tn.Name = parts[0]
	case 2:
		tn.Schema, tn.Name = parts[0], parts[1]
	case 3:
		tn.Catalog, tn.Schema, tn.Name = parts[0], parts[1], parts[2]
	default:
		return nil, errAt(binder.pos, "table name has too many qualifiers (at most catalog.schema.name)")
	}

	if prev, ok := p.binders[binder.text]; ok {
		// The same binder may recur across patterns — it names the same
		// node — but it cannot rebind to a different table.
		if prev.Catalog != tn.Catalog || prev.Schema != tn.Schema || prev.Name != tn.Name {
			return nil, errAt(binder.pos, "binder %s already bound to %s", binder.text, prev.SQL())
		}
		return prev, nil
	}
	p.binders[binder.text] = tn
	p.from = append(p.from, tn)
	return tn, nil
}

// parseEdgeCol := ident | ident '.' ident — a column in an edge pattern,
// optionally qualified by a binder.
func (p *parser) parseEdgeCol() (*qfront.ColumnRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &qfront.ColumnRef{Pos: first.pos, Column: first.text}
	if p.cur().isOp(".") {
		p.advance()
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Qualifier, ref.Column = first.text, col.text
	}
	return ref, nil
}

// parseItem := '*' | binder | expr ['as' ident]
func (p *parser) parseItem() (qfront.SelectItem, error) {
	t := p.cur()
	if t.isOp("*") {
		p.advance()
		return qfront.SelectItem{Pos: t.pos, Wildcard: true}, nil
	}
	// A bare identifier naming a declared binder (not followed by '.')
	// projects the whole node: SQL's B.* wildcard.
	if t.kind == tIdent && p.binders[t.text] != nil && !p.at(1).isOp(".") {
		p.advance()
		return qfront.SelectItem{Pos: t.pos, Wildcard: true, Qualifier: t.text}, nil
	}
	e, err := p.parseCond()
	if err != nil {
		return qfront.SelectItem{}, err
	}
	item := qfront.SelectItem{Pos: t.pos, Expr: e}
	if p.cur().is("AS") {
		p.advance()
		alias, err := p.expectIdent()
		if err != nil {
			return qfront.SelectItem{}, err
		}
		item.Alias = alias.text
	}
	return item, nil
}

// parseOrder := expr ['asc'|'desc'] — an integer literal is a SQL-92
// ordinal reference into the return list.
func (p *parser) parseOrder() (qfront.OrderItem, error) {
	t := p.cur()
	e, err := p.parseCond()
	if err != nil {
		return qfront.OrderItem{}, err
	}
	o := qfront.OrderItem{Pos: t.pos, Expr: e}
	switch {
	case p.cur().is("DESC"):
		p.advance()
		o.Desc = true
	case p.cur().is("ASC"):
		p.advance()
	}
	return o, nil
}

// Condition grammar, loosest to tightest:
//
//	cond    := conj ('or' conj)*
//	conj    := negation ('and' negation)*
//	negation:= 'not' negation | cmp
//	cmp     := sum [cmpop sum] | sum 'is' ['not'] 'null'
//	sum     := product (('+'|'-') product)*
//	product := unary (('*'|'/') unary)*
//	unary   := '-' unary | primary
//	primary := literal | '?' | column | '(' cond ')'
func (p *parser) parseCond() (qfront.Expr, error) {
	left, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	for p.cur().is("OR") {
		op := p.advance()
		right, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		left = &qfront.BinaryExpr{Pos: op.pos, Op: qfront.BinOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseConj() (qfront.Expr, error) {
	left, err := p.parseNegation()
	if err != nil {
		return nil, err
	}
	for p.cur().is("AND") {
		op := p.advance()
		right, err := p.parseNegation()
		if err != nil {
			return nil, err
		}
		left = &qfront.BinaryExpr{Pos: op.pos, Op: qfront.BinAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNegation() (qfront.Expr, error) {
	if t := p.cur(); t.is("NOT") {
		p.advance()
		inner, err := p.parseNegation()
		if err != nil {
			return nil, err
		}
		return &qfront.UnaryExpr{Pos: t.pos, Op: qfront.UnaryNot, Operand: inner}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]qfront.BinaryOp{
	"=": qfront.BinEq, "!=": qfront.BinNe, "<>": qfront.BinNe,
	"<": qfront.BinLt, "<=": qfront.BinLe, ">": qfront.BinGt, ">=": qfront.BinGe,
}

func (p *parser) parseCmp() (qfront.Expr, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.is("IS") {
		p.advance()
		not := false
		if p.cur().is("NOT") {
			p.advance()
			not = true
		}
		if _, err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &qfront.IsNullExpr{Pos: t.pos, Not: not, Operand: left}, nil
	}
	if t := p.cur(); t.kind == tOp {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			right, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return &qfront.BinaryExpr{Pos: t.pos, Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseSum() (qfront.Expr, error) {
	left, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op qfront.BinaryOp
		switch {
		case t.isOp("+"):
			op = qfront.BinAdd
		case t.isOp("-"):
			op = qfront.BinSub
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseProduct()
		if err != nil {
			return nil, err
		}
		left = &qfront.BinaryExpr{Pos: t.pos, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseProduct() (qfront.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op qfront.BinaryOp
		switch {
		case t.isOp("*"):
			op = qfront.BinMul
		case t.isOp("/"):
			op = qfront.BinDiv
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &qfront.BinaryExpr{Pos: t.pos, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (qfront.Expr, error) {
	if t := p.cur(); t.isOp("-") {
		p.advance()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &qfront.UnaryExpr{Pos: t.pos, Op: qfront.UnaryMinus, Operand: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (qfront.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tInt:
		p.advance()
		return &qfront.Literal{Pos: t.pos, Type: qfront.LitInteger, Text: t.text}, nil
	case tDec:
		p.advance()
		return &qfront.Literal{Pos: t.pos, Type: qfront.LitDecimal, Text: t.text}, nil
	case tFloat:
		p.advance()
		return &qfront.Literal{Pos: t.pos, Type: qfront.LitFloat, Text: t.text}, nil
	case tString:
		p.advance()
		return &qfront.Literal{Pos: t.pos, Type: qfront.LitString, Text: t.text}, nil
	case tParam:
		p.advance()
		p.params++
		return &qfront.Param{Pos: t.pos, Index: p.params}, nil
	case tKeyword:
		if t.text == "NULL" {
			p.advance()
			return &qfront.Literal{Pos: t.pos, Type: qfront.LitNull, Text: "NULL"}, nil
		}
	case tIdent:
		first := p.advance()
		ref := &qfront.ColumnRef{Pos: first.pos, Column: first.text}
		if p.cur().isOp(".") {
			p.advance()
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref.Qualifier, ref.Column = first.text, col.text
		}
		return ref, nil
	case tOp:
		if t.text == "(" {
			p.advance()
			inner, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, errAt(t.pos, "expected expression, found %s", t)
}
