package pathfront

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sqlparser"
)

// FuzzPathFrontend checks the contract the kernel relies on: whatever
// bytes a client sends as a path statement, the front end returns
// (*SelectStmt, error) — it never panics and never loops, and every
// error is a typed *ParseError with a real 1-based position. When a
// statement parses, its canonical rendering must be valid SQL-92 (the
// two front ends meet on one AST, so path output re-parses through the
// SQL front end).
func FuzzPathFrontend(f *testing.F) {
	seeds := []string{
		"match (c:CUSTOMERS) return *",
		"match (c:CUSTOMERS) return c",
		"match (c:customers) return c.CUSTOMERID, c.CUSTOMERNAME as NAME",
		"match (c:CUSTOMERS)-[CUSTOMERID = CUSTID]->(p:PAYMENTS) return c.CUSTOMERNAME, p.PAYMENT",
		"match (c:CUSTOMERS)-[CUSTOMERID=CUSTID]->(p:PAYMENTS) where p.PAYMENT > 100 and c.CITY = 'Oslo' return c.CUSTOMERNAME order by p.PAYMENT desc take 10",
		"match (a:T1)-[X=Y, a.Z=b.W]->(b:T2) return a.X",
		"match (a:CUSTOMERS)-[CUSTOMERID=CUSTID]->(b:PAYMENTS)-[b.CUSTID=d.CUSTID]->(d:PAYMENTS) return distinct a.CUSTOMERNAME",
		"match (c:CUSTOMERS) where c.CITY is not null return c.CITY order by 1 asc",
		"match (c:CUSTOMERS) where c.CUSTOMERID = ? and not c.CITY != ? return c.CUSTOMERNAME",
		"match (p:PAYMENTS) return p.PAYMENT * 2 + 1 as SCALED, -p.PAYMENT / 1.5e2",
		"match (c:APP.PUBLIC.CUSTOMERS) # qualified\nreturn c.CITY",
		"match (c:CUSTOMERS), (p:PAYMENTS) where c.CUSTOMERID = p.CUSTID return c.CITY",
		"match (c:'CUSTOMERS') return c",
		"match (c:CUSTOMERS) return c.CITY take -1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			if stmt != nil {
				t.Fatalf("non-nil stmt alongside error %v", err)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not *ParseError: %v (input %q)", err, err, src)
			}
			if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
				t.Fatalf("error position %v is not 1-based (input %q)", pe.Pos, src)
			}
			return
		}
		rendered := stmt.SQL()
		if strings.TrimSpace(rendered) == "" {
			t.Fatalf("parsed statement renders empty (input %q)", src)
		}
		if _, err := sqlparser.Parse(rendered); err != nil {
			t.Fatalf("rendered SQL %q (from path %q) does not re-parse: %v", rendered, src, err)
		}
	})
}
