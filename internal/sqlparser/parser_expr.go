package sqlparser

import "strings"

// Expression grammar, SQL-92 precedence from loosest to tightest:
//
//	expr        := or
//	or          := and (OR and)*
//	and         := not (AND not)*
//	not         := NOT not | predicate
//	predicate   := rowValue [comparison | BETWEEN | IN | LIKE | IS NULL]
//	rowValue    := term ((+|-|'||') term)*
//	term        := factor ((*|/) factor)*
//	factor      := [+|-] primary
//	primary     := literal | ? | column | function | CASE | CAST | '(' … ')'
func (p *parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Is("OR") {
		pos := p.advance().Pos
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Pos: pos, Op: BinOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().Is("AND") {
		pos := p.advance().Pos
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Pos: pos, Op: BinAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().Is("NOT") {
		pos := p.advance().Pos
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: UnaryNot, Operand: inner}, nil
	}
	return p.parsePredicate()
}

var comparisonOps = map[string]BinaryOp{
	"=": BinEq, "<>": BinNe, "<": BinLt, "<=": BinLe, ">": BinGt, ">=": BinGe,
}

func (p *parser) parsePredicate() (Expr, error) {
	// EXISTS (subquery)
	if p.peek().Is("EXISTS") {
		pos := p.advance().Pos
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Pos: pos, Subquery: sub}, nil
	}

	left, err := p.parseRowValue()
	if err != nil {
		return nil, err
	}

	// Comparison, possibly quantified.
	if p.peek().Type == TokOp {
		if op, ok := comparisonOps[p.peek().Text]; ok {
			pos := p.advance().Pos
			if p.peek().Is("ANY") || p.peek().Is("SOME") || p.peek().Is("ALL") {
				quant := QuantAny
				if p.peek().Is("ALL") {
					quant = QuantAll
				}
				p.advance()
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				sub, err := p.parseSelectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &QuantifiedExpr{Pos: pos, Op: op, Quant: quant, Left: left, Subquery: sub}, nil
			}
			right, err := p.parseRowValue()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Pos: pos, Op: op, Left: left, Right: right}, nil
		}
	}

	not := false
	notPos := p.peek().Pos
	if p.peek().Is("NOT") &&
		(p.peekAt(1).Is("BETWEEN") || p.peekAt(1).Is("IN") || p.peekAt(1).Is("LIKE")) {
		p.advance()
		not = true
	}

	switch {
	case p.peek().Is("BETWEEN"):
		pos := p.advance().Pos
		low, err := p.parseRowValue()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AND"); err != nil {
			return nil, err
		}
		high, err := p.parseRowValue()
		if err != nil {
			return nil, err
		}
		if not {
			pos = notPos
		}
		return &BetweenExpr{Pos: pos, Not: not, Operand: left, Low: low, High: high}, nil

	case p.peek().Is("IN"):
		pos := p.advance().Pos
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &InExpr{Pos: pos, Not: not, Operand: left}
		if p.peek().Is("SELECT") {
			sub, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			in.Subquery = sub
		} else {
			for {
				e, err := p.parseRowValue()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return in, nil

	case p.peek().Is("LIKE"):
		pos := p.advance().Pos
		pattern, err := p.parseRowValue()
		if err != nil {
			return nil, err
		}
		like := &LikeExpr{Pos: pos, Not: not, Operand: left, Pattern: pattern}
		if p.accept("ESCAPE") {
			esc, err := p.parseRowValue()
			if err != nil {
				return nil, err
			}
			like.Escape = esc
		}
		return like, nil

	case p.peek().Is("IS"):
		pos := p.advance().Pos
		isNot := p.accept("NOT")
		if err := p.expect("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Pos: pos, Not: isNot, Operand: left}, nil
	}

	if not {
		return nil, errAt(notPos, "expected BETWEEN, IN or LIKE after NOT")
	}
	return left, nil
}

func (p *parser) parseRowValue() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.peek().IsOp("+"):
			op = BinAdd
		case p.peek().IsOp("-"):
			op = BinSub
		case p.peek().IsOp("||"):
			op = BinConcat
		default:
			return left, nil
		}
		pos := p.advance().Pos
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Pos: pos, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.peek().IsOp("*"):
			op = BinMul
		case p.peek().IsOp("/"):
			op = BinDiv
		default:
			return left, nil
		}
		pos := p.advance().Pos
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Pos: pos, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	switch {
	case p.peek().IsOp("-"):
		pos := p.advance().Pos
		operand, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: UnaryMinus, Operand: operand}, nil
	case p.peek().IsOp("+"):
		pos := p.advance().Pos
		operand, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: UnaryPlus, Operand: operand}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	pos := t.Pos
	switch t.Type {
	case TokInteger:
		p.advance()
		return &Literal{Pos: pos, Type: LitInteger, Text: t.Text}, nil
	case TokDecimal:
		p.advance()
		return &Literal{Pos: pos, Type: LitDecimal, Text: t.Text}, nil
	case TokFloat:
		p.advance()
		return &Literal{Pos: pos, Type: LitFloat, Text: t.Text}, nil
	case TokString:
		p.advance()
		return &Literal{Pos: pos, Type: LitString, Text: t.Text}, nil
	case TokParam:
		p.advance()
		p.paramCount++
		return &Param{Pos: pos, Index: p.paramCount}, nil
	case TokKeyword:
		return p.parseKeywordPrimary()
	case TokIdent, TokQuotedIdent:
		return p.parseNamePrimary()
	case TokOp:
		if t.Text == "(" {
			p.advance()
			if p.peek().Is("SELECT") {
				sub, err := p.parseSelectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Pos: pos, Query: sub}, nil
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.peek().IsOp(",") {
				// Row value constructor: (a, b, …).
				row := &RowExpr{Pos: pos, Items: []Expr{inner}}
				for p.acceptOp(",") {
					item, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					row.Items = append(row.Items, item)
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return row, nil
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, errAt(pos, "expected expression, found %s", t)
}

// parseKeywordPrimary handles expressions that begin with a reserved word:
// NULL, TRUE/FALSE, CASE, CAST, datetime literals, special built-in
// function syntax, and keyword-named functions (COUNT, SUM, UPPER, …).
func (p *parser) parseKeywordPrimary() (Expr, error) {
	t := p.peek()
	pos := t.Pos
	switch t.Text {
	case "NULL":
		p.advance()
		return &Literal{Pos: pos, Type: LitNull, Text: "NULL"}, nil
	case "TRUE":
		p.advance()
		return &Literal{Pos: pos, Type: LitBoolean, Text: "true"}, nil
	case "FALSE":
		p.advance()
		return &Literal{Pos: pos, Type: LitBoolean, Text: "false"}, nil
	case "DATE", "TIME", "TIMESTAMP":
		// Datetime literal: DATE '2006-01-02'. Only when followed by a
		// string; otherwise fall through (e.g. a column named DATE is
		// not valid SQL-92 anyway, so this is safe).
		if p.peekAt(1).Type == TokString {
			p.advance()
			lit := p.advance()
			var lt LiteralType
			switch t.Text {
			case "DATE":
				lt = LitDate
			case "TIME":
				lt = LitTime
			default:
				lt = LitTimestamp
			}
			return &Literal{Pos: pos, Type: lt, Text: lit.Text}, nil
		}
		return nil, errAt(pos, "expected string literal after %s", t.Text)
	case "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP":
		p.advance()
		return &FuncCall{Pos: pos, Name: t.Text}, nil
	case "CASE":
		return p.parseCase()
	case "CAST":
		return p.parseCast()
	case "EXTRACT":
		return p.parseExtract()
	case "POSITION":
		return p.parsePosition()
	case "SUBSTRING":
		return p.parseSubstring()
	case "TRIM":
		return p.parseTrim()
	}
	if functionKeywords[t.Text] && p.peekAt(1).IsOp("(") {
		return p.parseFuncCall()
	}
	return nil, errAt(pos, "expected expression, found %s", t)
}

// parseNamePrimary parses a column reference or a function call beginning
// with an identifier.
func (p *parser) parseNamePrimary() (Expr, error) {
	pos := p.peek().Pos
	if p.peekAt(1).IsOp("(") {
		return p.parseFuncCall()
	}
	first := p.advance().Text
	parts := []string{first}
	for p.peek().IsOp(".") {
		p.advance()
		name, err := p.expectIdent("name after '.'")
		if err != nil {
			return nil, err
		}
		parts = append(parts, name)
	}
	ref := &ColumnRef{Pos: pos}
	switch len(parts) {
	case 1:
		ref.Column = parts[0]
	case 2:
		ref.Qualifier, ref.Column = parts[0], parts[1]
	default:
		ref.SchemaParts = parts[:len(parts)-2]
		ref.Qualifier = parts[len(parts)-2]
		ref.Column = parts[len(parts)-1]
	}
	return ref, nil
}

func (p *parser) parseFuncCall() (Expr, error) {
	pos := p.peek().Pos
	name := strings.ToUpper(p.advance().Text)
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	f := &FuncCall{Pos: pos, Name: name}
	if p.acceptOp(")") {
		return f, nil
	}
	if p.peek().IsOp("*") && name == "COUNT" {
		p.advance()
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.accept("DISTINCT") {
		f.Distinct = true
	} else {
		p.accept("ALL")
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, arg)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if f.Distinct && len(f.Args) != 1 {
		return nil, errAt(pos, "%s(DISTINCT …) takes exactly one argument", name)
	}
	return f, nil
}

func (p *parser) parseCase() (Expr, error) {
	pos := p.advance().Pos // CASE
	c := &CaseExpr{Pos: pos}
	if !p.peek().Is("WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.accept("WHEN") {
		when, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{When: when, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, errAt(pos, "CASE requires at least one WHEN clause")
	}
	if p.accept("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expect("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCast() (Expr, error) {
	pos := p.advance().Pos // CAST
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	operand, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	tn, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CastExpr{Pos: pos, Operand: operand, Type: tn}, nil
}

func (p *parser) parseTypeName() (TypeName, error) {
	t := p.peek()
	if t.Type != TokKeyword && t.Type != TokIdent {
		return TypeName{}, errAt(t.Pos, "expected type name, found %s", t)
	}
	p.advance()
	tn := TypeName{Name: t.Text, Precision: -1, Scale: -1}
	switch t.Text {
	case "CHARACTER", "CHAR":
		tn.Name = "CHAR"
		if p.accept("VARYING") { // CHARACTER VARYING
			tn.Name = "VARCHAR"
		}
	case "DOUBLE":
		p.accept("PRECISION")
		tn.Name = "DOUBLE"
	case "DEC", "NUMERIC":
		tn.Name = "DECIMAL"
	case "INT":
		tn.Name = "INTEGER"
	}
	if p.acceptOp("(") {
		prec := p.peek()
		if prec.Type != TokInteger {
			return TypeName{}, errAt(prec.Pos, "expected precision, found %s", prec)
		}
		p.advance()
		tn.Precision = atoiSafe(prec.Text)
		if p.acceptOp(",") {
			sc := p.peek()
			if sc.Type != TokInteger {
				return TypeName{}, errAt(sc.Pos, "expected scale, found %s", sc)
			}
			p.advance()
			tn.Scale = atoiSafe(sc.Text)
		}
		if err := p.expectOp(")"); err != nil {
			return TypeName{}, err
		}
	}
	return tn, nil
}

func atoiSafe(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n
}

// parseExtract parses EXTRACT(field FROM expr) into a FuncCall named
// EXTRACT_<FIELD>.
func (p *parser) parseExtract() (Expr, error) {
	pos := p.advance().Pos
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	field := p.peek()
	if field.Type != TokIdent && field.Type != TokKeyword {
		return nil, errAt(field.Pos, "expected datetime field, found %s", field)
	}
	p.advance()
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &FuncCall{Pos: pos, Name: "EXTRACT_" + field.Text, Args: []Expr{arg}}, nil
}

// parsePosition parses POSITION(needle IN haystack) into POSITION(needle, haystack).
func (p *parser) parsePosition() (Expr, error) {
	pos := p.advance().Pos
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	needle, err := p.parseRowValue()
	if err != nil {
		return nil, err
	}
	if err := p.expect("IN"); err != nil {
		return nil, err
	}
	hay, err := p.parseRowValue()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &FuncCall{Pos: pos, Name: "POSITION", Args: []Expr{needle, hay}}, nil
}

// parseSubstring parses both SUBSTRING(x FROM start [FOR len]) and the
// comma form SUBSTRING(x, start [, len]).
func (p *parser) parseSubstring() (Expr, error) {
	pos := p.advance().Pos
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	src, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	f := &FuncCall{Pos: pos, Name: "SUBSTRING", Args: []Expr{src}}
	if p.accept("FROM") {
		start, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, start)
		if p.accept("FOR") {
			length, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, length)
		}
	} else {
		for p.acceptOp(",") {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, arg)
		}
	}
	if len(f.Args) < 2 {
		return nil, errAt(pos, "SUBSTRING requires a start position")
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return f, nil
}

// parseTrim parses TRIM([LEADING|TRAILING|BOTH] [chars] FROM str) and the
// plain TRIM(str) form, producing TRIM/LTRIM/RTRIM calls.
func (p *parser) parseTrim() (Expr, error) {
	pos := p.advance().Pos
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	name := "TRIM"
	switch {
	case p.accept("LEADING"):
		name = "LTRIM"
	case p.accept("TRAILING"):
		name = "RTRIM"
	case p.accept("BOTH"):
		name = "TRIM"
	}
	var args []Expr
	if !p.peek().Is("FROM") {
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, first)
	}
	if p.accept("FROM") {
		src, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// Normalize to (source [, chars]) argument order.
		if len(args) == 1 {
			args = []Expr{src, args[0]}
		} else {
			args = []Expr{src}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return nil, errAt(pos, "TRIM requires an argument")
	}
	return &FuncCall{Pos: pos, Name: name, Args: args}, nil
}
