package sqlparser

import (
	"testing"
	"testing/quick"
)

// Property: the lexer terminates without panicking on arbitrary input,
// returning either tokens or a positioned error.
func TestQuickLexNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		toks, err := Lex(s)
		if err != nil {
			_, isParseErr := err.(*ParseError)
			return isParseErr
		}
		return len(toks) > 0 && toks[len(toks)-1].Type == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser terminates without panicking on arbitrary input.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser terminates on arbitrary *token-shaped* input —
// strings assembled from SQL fragments, which reach much deeper into the
// grammar than raw random bytes.
func TestQuickParseFragmentSoup(t *testing.T) {
	fragments := []string{
		"SELECT", "FROM", "WHERE", "GROUP BY", "ORDER BY", "HAVING",
		"JOIN", "LEFT", "OUTER", "ON", "AND", "OR", "NOT", "IN", "LIKE",
		"BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "AS",
		"UNION", "EXCEPT", "INTERSECT", "DISTINCT", "NULL", "IS",
		"T", "A", "B", "X1", "*", ",", "(", ")", ".", "=", "<", ">",
		"<>", "+", "-", "/", "'str'", "42", "5.5", "?", "COUNT", "SUM",
	}
	f := func(seed []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		src := ""
		for _, b := range seed {
			src += fragments[int(b)%len(fragments)] + " "
		}
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: for statements that parse, SQL() is a fixed point — rendering
// and re-parsing yields the same rendering (the canonicalization the
// translator's textual GROUP BY matching relies on).
func TestQuickSQLRenderFixedPoint(t *testing.T) {
	// Use fragment soup as a statement generator; most inputs fail to
	// parse, and the few that parse must round-trip.
	fragments := []string{
		"SELECT", "FROM", "WHERE", "AND", "OR", "NOT",
		"T", "U", "A", "B", "*", ",", "=", "<", ">", "(", ")",
		"'s'", "1", "2.5", "COUNT", "ORDER BY", "GROUP BY", "DESC",
	}
	parsedCount := 0
	f := func(seed []byte) bool {
		src := ""
		for _, b := range seed {
			src += fragments[int(b)%len(fragments)] + " "
		}
		stmt, err := Parse(src)
		if err != nil {
			return true
		}
		parsedCount++
		rendered := stmt.SQL()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Logf("rendered SQL failed to reparse: %q (from %q): %v", rendered, src, err)
			return false
		}
		return stmt2.SQL() == rendered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	if parsedCount == 0 {
		t.Log("note: no random fragment soup parsed; fixed-point property unexercised this run")
	}
}
