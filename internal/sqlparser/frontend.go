package sqlparser

import (
	"strconv"
	"strings"

	"repro/internal/obsv"
	"repro/internal/qfront"
)

// Front is the SQL-92 query front end: stage one of the translation
// pipeline packaged behind the qfront.Frontend seam. It is registered
// under qfront.DialectSQL at init, the way database/sql drivers
// self-register.
type Front struct{}

func init() { qfront.Register(Front{}) }

// Dialect implements qfront.Frontend.
func (Front) Dialect() qfront.Dialect { return qfront.DialectSQL }

// Parse implements qfront.Frontend: syntactic recognition, observed as
// separate lex and parse spans (the spans the EXPLAIN stage trace has
// always shown for SQL statements).
func (Front) Parse(sql string, tr *obsv.Trace) (*qfront.SelectStmt, error) {
	sp := tr.StartStage(obsv.StageLex)
	sp.SetInput(len(sql))
	toks, err := Lex(sql)
	if err != nil {
		return nil, err
	}
	sp.SetOutput(len(toks))
	sp.End()

	sp = tr.StartStage(obsv.StageParse)
	sp.SetInput(len(toks))
	stmt, err := ParseTokens(toks)
	if err != nil {
		return nil, err
	}
	sp.Add("params", int64(stmt.ParamCount))
	sp.End()
	return stmt, nil
}

// Normalize implements qfront.Frontend: the compile-cache key form of a
// SQL statement. Lexing collapses whitespace, comments, and keyword /
// identifier case while preserving everything meaning-bearing (delimited
// identifiers keep case, literals keep exact text). Each token renders
// as type:len:text so no two distinct token streams collide.
func (Front) Normalize(sql string) (string, error) {
	toks, err := Lex(sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(sql) + len(toks)*4)
	for _, t := range toks {
		if t.Type == TokEOF {
			break
		}
		b.WriteString(strconv.Itoa(int(t.Type)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(len(t.Text)))
		b.WriteByte(':')
		b.WriteString(t.Text)
		b.WriteByte(' ')
	}
	return b.String(), nil
}
