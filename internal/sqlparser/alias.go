package sqlparser

import "repro/internal/qfront"

// The typed query AST moved to internal/qfront so translation is no
// longer welded to the SQL-92 surface: the kernel consumes qfront nodes,
// and every front end (this package's SQL-92 parser, the path-template
// parser in internal/pathfront) produces them. These aliases keep the
// historical sqlparser names working for existing importers — they are
// the same types, not copies, so values flow freely across the seam.

// Statement and clause nodes.
type (
	Node         = qfront.Node
	SelectStmt   = qfront.SelectStmt
	QueryExpr    = qfront.QueryExpr
	QuerySpec    = qfront.QuerySpec
	SetOpType    = qfront.SetOpType
	SetOpExpr    = qfront.SetOpExpr
	SelectItem   = qfront.SelectItem
	OrderItem    = qfront.OrderItem
	TableRef     = qfront.TableRef
	TableName    = qfront.TableName
	DerivedTable = qfront.DerivedTable
	JoinType     = qfront.JoinType
	JoinExpr     = qfront.JoinExpr
)

// Expression nodes.
type (
	Expr           = qfront.Expr
	ColumnRef      = qfront.ColumnRef
	LiteralType    = qfront.LiteralType
	Literal        = qfront.Literal
	Param          = qfront.Param
	UnaryOp        = qfront.UnaryOp
	UnaryExpr      = qfront.UnaryExpr
	BinaryOp       = qfront.BinaryOp
	BinaryExpr     = qfront.BinaryExpr
	FuncCall       = qfront.FuncCall
	WhenClause     = qfront.WhenClause
	CaseExpr       = qfront.CaseExpr
	TypeName       = qfront.TypeName
	CastExpr       = qfront.CastExpr
	BetweenExpr    = qfront.BetweenExpr
	InExpr         = qfront.InExpr
	ExistsExpr     = qfront.ExistsExpr
	LikeExpr       = qfront.LikeExpr
	IsNullExpr     = qfront.IsNullExpr
	SubqueryExpr   = qfront.SubqueryExpr
	Quantifier     = qfront.Quantifier
	QuantifiedExpr = qfront.QuantifiedExpr
	RowExpr        = qfront.RowExpr
)

// Set operations.
const (
	SetUnion     = qfront.SetUnion
	SetExcept    = qfront.SetExcept
	SetIntersect = qfront.SetIntersect
)

// Join types.
const (
	JoinInner      = qfront.JoinInner
	JoinLeftOuter  = qfront.JoinLeftOuter
	JoinRightOuter = qfront.JoinRightOuter
	JoinFullOuter  = qfront.JoinFullOuter
	JoinCross      = qfront.JoinCross
)

// Literal types.
const (
	LitInteger   = qfront.LitInteger
	LitDecimal   = qfront.LitDecimal
	LitFloat     = qfront.LitFloat
	LitString    = qfront.LitString
	LitBoolean   = qfront.LitBoolean
	LitNull      = qfront.LitNull
	LitDate      = qfront.LitDate
	LitTime      = qfront.LitTime
	LitTimestamp = qfront.LitTimestamp
)

// Unary operators.
const (
	UnaryMinus = qfront.UnaryMinus
	UnaryPlus  = qfront.UnaryPlus
	UnaryNot   = qfront.UnaryNot
)

// Binary operators.
const (
	BinAdd    = qfront.BinAdd
	BinSub    = qfront.BinSub
	BinMul    = qfront.BinMul
	BinDiv    = qfront.BinDiv
	BinConcat = qfront.BinConcat
	BinEq     = qfront.BinEq
	BinNe     = qfront.BinNe
	BinLt     = qfront.BinLt
	BinLe     = qfront.BinLe
	BinGt     = qfront.BinGt
	BinGe     = qfront.BinGe
	BinAnd    = qfront.BinAnd
	BinOr     = qfront.BinOr
)

// Quantifiers.
const (
	QuantAny = qfront.QuantAny
	QuantAll = qfront.QuantAll
)

// Walk helpers.
var (
	WalkExpr          = qfront.WalkExpr
	ContainsAggregate = qfront.ContainsAggregate
	CollectColumnRefs = qfront.CollectColumnRefs
	CollectAggregates = qfront.CollectAggregates
	CollectParams     = qfront.CollectParams
	WalkTableRefs     = qfront.WalkTableRefs
)
