package sqlparser

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestLexKeywordsAndIdents(t *testing.T) {
	toks := lexAll(t, "select Foo froM customers")
	want := []struct {
		typ  TokenType
		text string
	}{
		{TokKeyword, "SELECT"},
		{TokIdent, "FOO"},
		{TokKeyword, "FROM"},
		{TokIdent, "CUSTOMERS"},
		{TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Type != w.typ || toks[i].Text != w.text {
			t.Fatalf("tok %d = %v %q, want %v %q", i, toks[i].Type, toks[i].Text, w.typ, w.text)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexAll(t, "SELECT\n  X")
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Fatalf("SELECT pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Fatalf("X pos = %v", toks[1].Pos)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		typ  TokenType
		text string
	}{
		{"42", TokInteger, "42"},
		{"5.6", TokDecimal, "5.6"},
		{".1", TokDecimal, ".1"},
		{"10.", TokDecimal, "10."},
		{"1e3", TokFloat, "1e3"},
		{"2.5E-1", TokFloat, "2.5E-1"},
		{"7E+2", TokFloat, "7E+2"},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src)
		if toks[0].Type != c.typ || toks[0].Text != c.text {
			t.Fatalf("%q → %v %q, want %v %q", c.src, toks[0].Type, toks[0].Text, c.typ, c.text)
		}
	}
}

func TestLexMalformedNumber(t *testing.T) {
	if _, err := Lex("12abc"); err == nil {
		t.Fatal("12abc should be a lexical error")
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks := lexAll(t, "'it''s'")
	if toks[0].Type != TokString || toks[0].Text != "it's" {
		t.Fatalf("got %v %q", toks[0].Type, toks[0].Text)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Fatal("unterminated string should error")
	}
}

func TestLexQuotedIdent(t *testing.T) {
	toks := lexAll(t, `"Mixed Case ""x"""`)
	if toks[0].Type != TokQuotedIdent || toks[0].Text != `Mixed Case "x"` {
		t.Fatalf("got %v %q", toks[0].Type, toks[0].Text)
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Fatal("unterminated delimited identifier should error")
	}
	if _, err := Lex(`""`); err == nil {
		t.Fatal("empty delimited identifier should error")
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexAll(t, "a<>b<=c>=d!=e||f")
	var ops []string
	for _, tok := range toks {
		if tok.Type == TokOp {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<>", "<=", ">=", "<>", "||"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, "SELECT -- line comment\n/* block\ncomment */ 1")
	if len(toks) != 3 { // SELECT, 1, EOF
		t.Fatalf("tokens = %v", toks)
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Fatal("unterminated block comment should error")
	}
}

func TestLexParam(t *testing.T) {
	toks := lexAll(t, "x = ?")
	if toks[2].Type != TokParam {
		t.Fatalf("got %v", toks[2])
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Lex("SELECT @"); err == nil {
		t.Fatal("@ should be a lexical error")
	}
}
